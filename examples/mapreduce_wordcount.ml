(* MapReduce-like letter counting (Section 5.4).

   TM2C plays the master node: workers claim chunks of the input from
   a shared transactional counter and merge their letter histograms
   into shared totals atomically — no coordinator, no locks. One DTM
   core serves the whole chip since the transactional load is low.

   The demo compares 1 worker vs 47 workers and verifies the parallel
   histogram bit-for-bit against a host-side count.

     dune exec examples/mapreduce_wordcount.exe *)

open Tm2c_core
open Tm2c_apps

let input_kb = 1024
let chunk_kb = 8

let run ~total =
  let cfg =
    { Runtime.default_config with total_cores = total; service_cores = 1; seed = 3 }
  in
  let t = Runtime.create cfg in
  let mr =
    Mapreduce.create t ~seed:13 ~input_bytes:(input_kb * 1024)
      ~chunk_bytes:(chunk_kb * 1024)
  in
  let r = Workload.run_to_completion t (fun _core ctx _prng -> Mapreduce.worker ctx mr) in
  assert (Mapreduce.histogram mr = Mapreduce.expected_histogram mr);
  (r.Workload.duration_ms, Array.length (Runtime.app_cores t), Mapreduce.histogram mr)

let () =
  Printf.printf "MapReduce letter count: %d KB input, %d KB chunks, 1 DTM core\n\n"
    input_kb chunk_kb;
  let d2, w2, _ = run ~total:2 in
  let d48, w48, hist = run ~total:48 in
  Printf.printf "%2d worker(s): %8.1f ms\n" w2 d2;
  Printf.printf "%2d worker(s): %8.1f ms  (speedup %.1fx)\n\n" w48 d48 (d2 /. d48);
  print_string "letter counts: ";
  Array.iteri
    (fun i c -> if i < 6 then Printf.printf "%c=%d " (Char.chr (Char.code 'a' + i)) c)
    hist;
  print_endline "...";
  print_endline "parallel histogram verified against the host-side count: OK"
