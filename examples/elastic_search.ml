(* Elastic transactions on a search structure (Section 6).

   A sorted linked list is hammered with 80% lookups / 20% updates by
   23 application cores. The same workload runs three ways:

   - normal transactions: every node visited during the search holds a
     read lock until commit, so any concurrent insert anywhere along
     the traversed prefix is a WAR conflict;
   - elastic-early: read locks are released as the search window
     advances (two extra messages per step);
   - elastic-read: no read locks at all during the search — each step
     re-validates the previous node against shared memory, trading
     messages for (cheaper) memory accesses.

     dune exec examples/elastic_search.exe *)

open Tm2c_core
open Tm2c_apps

let n_elems = 512

let run mode =
  let cfg = { Runtime.default_config with seed = 21 } in
  let t = Runtime.create cfg in
  let list = Linkedlist.create t in
  Linkedlist.populate list (Runtime.fork_prng t) ~n:n_elems ~key_range:(2 * n_elems);
  let r =
    Workload.drive t ~duration_ns:40e6 (fun _core ctx prng () ->
        let k = Tm2c_engine.Prng.int prng (2 * n_elems) in
        let p = Tm2c_engine.Prng.int prng 100 in
        if p < 20 then
          if p land 1 = 0 then ignore (Linkedlist.tx_add ~mode ctx list k)
          else ignore (Linkedlist.tx_remove ~mode ctx list k)
        else ignore (Linkedlist.tx_contains ~mode ctx list k))
  in
  Linkedlist.check_invariants list;
  (mode, r)

let label = function
  | `Normal -> "normal"
  | `Elastic_early -> "elastic-early"
  | `Elastic_read -> "elastic-read"

let () =
  Printf.printf
    "Sorted linked list (%d elements), 20%% updates, 24 app cores on the SCC\n\n"
    n_elems;
  let results = List.map run [ `Normal; `Elastic_early; `Elastic_read ] in
  let base =
    match results with (_, r) :: _ -> r.Workload.throughput_ops_ms | [] -> 1.0
  in
  List.iter
    (fun (mode, r) ->
      Printf.printf "%-15s %8.1f ops/ms  %6.1f%% commit rate  %5.2fx vs normal  (%d messages)\n"
        (label mode) r.Workload.throughput_ops_ms r.Workload.commit_rate
        (r.Workload.throughput_ops_ms /. base)
        r.Workload.messages)
    results;
  print_endline
    "\nThe searches' false WAR conflicts vanish in both elastic modes (commit\n\
     rate ~100%), but only elastic-read also eliminates the per-node lock\n\
     messages - on the SCC a shared-memory access is far cheaper than a\n\
     message round trip, hence the large win (Fig. 7b)."
