(* Bank demo (the Section 5.3 motivating application).

   A 48-core SCC runs a bank: most cores stream small transfer
   transactions, one core repeatedly computes the full balance — the
   long, conflict-prone transaction that livelocks naive contention
   management. The demo runs the same workload under no-CM and under
   FairCM, showing the livelock collapse and its resolution, and
   checks that the total balance is conserved in both cases (aborted
   transactions leave no trace).

     dune exec examples/bank_demo.exe *)

open Tm2c_core
open Tm2c_apps

let accounts = 512

let run policy =
  let cfg = { Runtime.default_config with policy; seed = 7 } in
  let t = Runtime.create cfg in
  let bank = Bank.create t ~accounts ~initial:1000 in
  let reader = (Runtime.app_cores t).(0) in
  let balances = ref 0 in
  let r =
    Workload.drive t ~duration_ns:40e6 (fun core ctx prng ->
        if core = reader then (fun () ->
          (* The long transaction: reads every account. *)
          ignore (Bank.tx_balance ctx bank);
          incr balances)
        else fun () ->
          let src = Tm2c_engine.Prng.int prng accounts
          and dst = Tm2c_engine.Prng.int prng accounts in
          Bank.tx_transfer ctx bank ~src ~dst ~amount:1)
  in
  Printf.printf "%-15s %10.1f ops/ms %8.1f%% commit rate %6d balances %s\n"
    (Cm.name policy) r.Workload.throughput_ops_ms r.Workload.commit_rate !balances
    (if Bank.total bank = accounts * 1000 then "(total conserved)"
     else "(TOTAL VIOLATED!)");
  assert (Bank.total bank = accounts * 1000)

let () =
  Printf.printf
    "Bank: 23 transfer cores vs 1 balance core on the 48-core SCC (24 DTM cores)\n\n";
  List.iter run [ Cm.No_cm; Cm.Backoff_retry; Cm.Offset_greedy; Cm.Wholly; Cm.Fair_cm ];
  print_endline
    "\nFairCM sustains the transfer throughput by deprioritizing the long\n\
     balance transactions (they pay with retries; nobody starves: every\n\
     transaction that keeps retrying eventually wins on cumulative time)."
