(* Quickstart: the smallest complete TM2C program.

   Builds a simulated 8-core SCC (4 application cores + 4 DTM service
   cores), shares one counter and one two-slot "pair" in simulated
   shared memory, and runs transactions from every application core.
   The pair is updated so that its two slots must always sum to zero —
   the final check only passes because transactions are atomic.

     dune exec examples/quickstart.exe *)

open Tm2c_core

let () =
  (* 1. Configure the machine: platform, core split, contention
     manager. FairCM is TM2C's starvation-free companion manager. *)
  let cfg =
    {
      Runtime.default_config with
      total_cores = 8;
      service_cores = 4;
      policy = Cm.Fair_cm;
    }
  in
  let t = Runtime.create cfg in

  (* 2. Allocate shared data. Addresses are plain ints into the
     simulated shared memory; address 0 is the null pointer. *)
  let alloc = Runtime.alloc t in
  let counter = Tm2c_memory.Alloc.alloc alloc ~words:1 in
  let pair = Tm2c_memory.Alloc.alloc alloc ~words:2 in

  (* 3. Start the DTM service cores. *)
  Runtime.start_services t;

  (* 4. Give every application core a transactional program. *)
  Array.iter
    (fun core ->
      let ctx = Runtime.app_ctx t core in
      let prng = Runtime.fork_prng t in
      Runtime.spawn_app t core (fun () ->
          for _ = 1 to 100 do
            (* A transaction: read-modify-write of the counter plus an
               opposite-signed update of the pair. Atomicity guarantees
               no increment is lost and the pair always sums to 0. *)
            let delta = 1 + Tm2c_engine.Prng.int prng 9 in
            Tx.atomic ctx (fun () ->
                Tx.write ctx counter (Tx.read ctx counter + 1);
                Tx.write ctx pair (Tx.read ctx pair + delta);
                Tx.write ctx (pair + 1) (Tx.read ctx (pair + 1) - delta))
          done))
    (Runtime.app_cores t);

  (* 5. Run the simulation to completion and inspect the results. *)
  let _events = Runtime.run t () in
  let shmem = Runtime.shmem t in
  let final = Tm2c_memory.Shmem.peek shmem counter in
  let sum = Tm2c_memory.Shmem.peek shmem pair + Tm2c_memory.Shmem.peek shmem (pair + 1) in
  let stats = Runtime.stats t in
  Printf.printf "counter = %d (expected %d)\n" final
    (100 * Array.length (Runtime.app_cores t));
  Printf.printf "pair sum = %d (expected 0)\n" sum;
  Printf.printf "commits = %d, aborts = %d, commit rate = %.1f%%\n"
    (Stats.total_commits stats) (Stats.total_aborts stats) (Stats.commit_rate stats);
  Printf.printf "virtual time = %.2f ms\n"
    (Tm2c_engine.Sim.now (Runtime.sim t) /. 1e6);
  assert (final = 100 * Array.length (Runtime.app_cores t));
  assert (sum = 0);
  print_endline "quickstart: OK"
