(* Contention-manager duel: starvation in action (Section 4).

   Every application core increments the same shared counter — the
   worst case for any TM. The demo races all five contention managers
   on identical hardware and seeds, reporting throughput, commit rate
   and the worst number of attempts any single transaction needed
   (the empirical starvation witness).

   Under no-CM the workload livelocks: the run is cut by the horizon
   with (almost) nothing committed. The two starvation-free managers,
   Wholly and FairCM (Properties 2 and 3), keep the worst-case number
   of attempts bounded.

     dune exec examples/contention_duel.exe *)

open Tm2c_core

let run policy =
  let cfg =
    {
      Runtime.default_config with
      total_cores = 16;
      service_cores = 8;
      policy;
      seed = 5;
    }
  in
  let t = Runtime.create cfg in
  let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  let r =
    Tm2c_apps.Workload.drive t ~duration_ns:20e6 (fun _core ctx _prng () ->
        Tx.atomic ctx (fun () -> Tx.write ctx counter (Tx.read ctx counter + 1)))
  in
  Printf.printf "%-15s %8.1f ops/ms %8.1f%% commits %8d worst-attempts %6d  %s\n"
    (Cm.name policy) r.Tm2c_apps.Workload.throughput_ops_ms
    r.Tm2c_apps.Workload.commit_rate r.Tm2c_apps.Workload.commits
    r.Tm2c_apps.Workload.worst_attempts
    (if Cm.starvation_free policy then "[starvation-free]" else "")

let () =
  print_endline "8 cores incrementing one shared word for 20 virtual ms:\n";
  List.iter run Cm.all;
  print_endline
    "\nNo-CM aborts whoever detects the conflict and retries immediately -\n\
     with symmetric retries nobody wins: a livelock. Back-off-Retry's\n\
     randomization usually escapes it. Offset-Greedy orders transactions\n\
     by estimated start time but clock skew can produce inconsistent\n\
     views. Wholly (fewest commits wins) and FairCM (least successful\n\
     transactional time wins) are total orders rotating across cores:\n\
     every transaction eventually has the highest priority and commits."
