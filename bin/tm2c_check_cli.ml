(* tm2c-check: replay a recorded run history through the checkers.

   The input is the machine-readable history log written by
   tm2c-sim --history FILE (the complete event stream, not the 64K
   ring tail). The full oracle stack runs over it:

   - the serializability + opacity oracle, which reconstructs
     per-attempt read/write sets, replays serialized transactions
     against versioned memory, reports any conflict-graph cycle with
     a minimal witness, and snapshot-checks every aborted attempt's
     read prefix;
   - the DS-Lock protocol checker, which validates the two-phase
     locking discipline against a shadow lock table;
   - the liveness monitor, which bounds per-core abort chains.

   By default the streaming checker consumes the log line by line, so
   memory stays bounded by the run's concurrency window no matter how
   large the file is; --streaming=false loads the log and runs the
   batch oracle (whose report carries more replay detail).

   Exit status: 0 when every checker passes, 1 on violations,
   2 on an unreadable or malformed history log. *)

open Cmdliner

let write_witness witness report =
  match witness with
  | Some wpath ->
      let oc = open_out wpath in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc report);
      Printf.printf "wrote witness to %s\n" wpath
  | None -> ()

let run_streaming path budget opacity witness =
  let s =
    Tm2c_check.Stream.create ~liveness_budget:budget ~opacity ()
  in
  match Tm2c_check.Histlog.iter_file path (Tm2c_check.Stream.feed s) with
  | exception Sys_error msg ->
      Printf.eprintf "tm2c-check: %s\n" msg;
      exit 2
  | exception Failure msg ->
      Printf.eprintf "tm2c-check: %s: %s\n" path msg;
      exit 2
  | _n_events ->
      let v = Tm2c_check.Stream.finish s in
      Format.printf "%a" Tm2c_check.Stream.pp_verdict v;
      if Tm2c_check.Stream.passed v then
        Format.printf "PASS: %d events, all checkers clean@."
          v.Tm2c_check.Stream.d_events
      else begin
        Format.printf "%a" Tm2c_check.Stream.pp_witness s;
        write_witness witness (Tm2c_check.Stream.report_string s);
        exit 1
      end

let run_batch path budget opacity witness =
  match Tm2c_check.Histlog.load path with
  | exception Sys_error msg ->
      Printf.eprintf "tm2c-check: %s\n" msg;
      exit 2
  | exception Failure msg ->
      Printf.eprintf "tm2c-check: %s: %s\n" path msg;
      exit 2
  | events ->
      let result =
        Tm2c_check.Check.run_list ~liveness_budget:budget ~opacity events
      in
      Format.printf "%a" Tm2c_check.Check.pp_summary result;
      if Tm2c_check.Check.passed result then
        Format.printf "PASS: %d events, all checkers clean@."
          result.Tm2c_check.Check.history.Tm2c_check.History.n_events
      else begin
        Format.printf "%a" Tm2c_check.Check.pp_witness result;
        write_witness witness (Tm2c_check.Check.report_string result);
        exit 1
      end

let run path budget opacity streaming witness =
  if streaming then run_streaming path budget opacity witness
  else run_batch path budget opacity witness

let cmd =
  let path =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"HISTORY"
             ~doc:"History log written by tm2c-sim --history.")
  in
  let budget =
    Arg.(value & opt int Tm2c_check.Check.default_liveness_budget
         & info [ "budget" ] ~docv:"N"
             ~doc:"Liveness budget: a core aborting $(docv) consecutive \
                   attempts without a commit is a violation.")
  in
  let opacity =
    Arg.(value & opt bool true
         & info [ "opacity" ] ~docv:"BOOL"
             ~doc:"Snapshot-check aborted attempts' read prefixes \
                   (default). $(b,--opacity=false) restricts the oracle to \
                   serializability of committed transactions.")
  in
  let streaming =
    Arg.(value & opt bool true
         & info [ "streaming" ] ~docv:"BOOL"
             ~doc:"Consume the log line by line through the bounded-memory \
                   streaming checker (default). $(b,--streaming=false) loads \
                   the whole log and runs the batch oracle.")
  in
  let witness =
    Arg.(value & opt (some string) None
         & info [ "witness" ] ~docv:"FILE"
             ~doc:"On failure, also write the verdict and violation witness \
                   to $(docv).")
  in
  let doc = "Check a recorded TM2C run for serializability, opacity, protocol, and liveness violations" in
  Cmd.v (Cmd.info "tm2c-check" ~doc)
    Term.(const run $ path $ budget $ opacity $ streaming $ witness)

let () = exit (Cmd.eval cmd)
