(* tm2c-check: replay a recorded run history through the checkers.

   The input is the machine-readable history log written by
   tm2c-sim --history FILE (the complete event stream, not the 64K
   ring tail). Three checkers run over it:

   - the serializability oracle, which reconstructs per-attempt
     read/write sets, replays committed transactions against
     versioned memory, and reports any conflict-graph cycle with a
     minimal witness;
   - the DS-Lock protocol checker, which validates the two-phase
     locking discipline against a shadow lock table;
   - the liveness monitor, which bounds per-core abort chains.

   Exit status: 0 when every checker passes, 1 on violations,
   2 on an unreadable or malformed history log. *)

open Cmdliner

let run path budget witness =
  match Tm2c_check.Histlog.load path with
  | exception Sys_error msg ->
      Printf.eprintf "tm2c-check: %s\n" msg;
      exit 2
  | exception Failure msg ->
      Printf.eprintf "tm2c-check: %s: %s\n" path msg;
      exit 2
  | events ->
      let result = Tm2c_check.Check.run ~liveness_budget:budget events in
      Format.printf "%a" Tm2c_check.Check.pp_summary result;
      if Tm2c_check.Check.passed result then
        Format.printf "PASS: %d events, all checkers clean@."
          result.Tm2c_check.Check.history.Tm2c_check.History.n_events
      else begin
        Format.printf "%a" Tm2c_check.Check.pp_witness result;
        (match witness with
        | Some wpath ->
            let oc = open_out wpath in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Tm2c_check.Check.report_string result));
            Printf.printf "wrote witness to %s\n" wpath
        | None -> ());
        exit 1
      end

let cmd =
  let path =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"HISTORY"
             ~doc:"History log written by tm2c-sim --history.")
  in
  let budget =
    Arg.(value & opt int Tm2c_check.Check.default_liveness_budget
         & info [ "budget" ] ~docv:"N"
             ~doc:"Liveness budget: a core aborting $(docv) consecutive \
                   attempts without a commit is a violation.")
  in
  let witness =
    Arg.(value & opt (some string) None
         & info [ "witness" ] ~docv:"FILE"
             ~doc:"On failure, also write the verdict and violation witness \
                   to $(docv).")
  in
  let doc = "Check a recorded TM2C run for serializability, protocol, and liveness violations" in
  Cmd.v (Cmd.info "tm2c-check" ~doc) Term.(const run $ path $ budget $ witness)

let () = exit (Cmd.eval cmd)
