(* tm2c-sim: run a single TM2C workload on the simulated many-core
   with every knob exposed — platform, core counts, deployment,
   contention manager, write-acquisition mode, benchmark and mix.

   Examples:
     tm2c-sim --bench bank --cores 48 --cm faircm --balance 20
     tm2c-sim --bench hashtable --cores 32 --buckets 64 --updates 30
     tm2c-sim --bench list --elastic read --cores 16
     tm2c-sim --bench mapreduce --input-kb 2048 --chunk-kb 8 *)

open Cmdliner
open Tm2c_core
open Tm2c_apps

type bench = Bank | Hashtable | List_bench | Mapreduce | Counter

let bench_conv =
  let parse = function
    | "bank" -> Ok Bank
    | "hashtable" | "ht" -> Ok Hashtable
    | "list" | "linkedlist" -> Ok List_bench
    | "mapreduce" | "mr" -> Ok Mapreduce
    | "counter" -> Ok Counter
    | s -> Error (`Msg (Printf.sprintf "unknown benchmark %S" s))
  in
  Arg.conv (parse, fun fmt b ->
      Format.pp_print_string fmt
        (match b with
        | Bank -> "bank"
        | Hashtable -> "hashtable"
        | List_bench -> "list"
        | Mapreduce -> "mapreduce"
        | Counter -> "counter"))

let platform_conv =
  let parse = function
    | "scc" -> Ok Tm2c_noc.Platform.scc
    | "scc800" -> Ok Tm2c_noc.Platform.scc800
    | "opteron" | "multicore" -> Ok Tm2c_noc.Platform.opteron
    | s -> (
        match int_of_string_opt s with
        | Some i when i >= 0 && i <= 4 -> Ok (Tm2c_noc.Platform.scc_setting i)
        | Some _ | None -> Error (`Msg (Printf.sprintf "unknown platform %S" s)))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt p.Tm2c_noc.Platform.name)

let cm_conv =
  let parse s =
    match Cm.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown contention manager %S" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Cm.name p))

let elastic_conv =
  let parse = function
    | "none" | "normal" -> Ok `Normal
    | "early" -> Ok `Elastic_early
    | "read" -> Ok `Elastic_read
    | s -> Error (`Msg (Printf.sprintf "unknown elastic mode %S" s))
  in
  Arg.conv (parse, fun fmt m ->
      Format.pp_print_string fmt
        (match m with
        | `Normal -> "normal"
        | `Elastic_early -> "early"
        | `Elastic_read -> "read"))

let report t (r : Workload.result) =
  Printf.printf "duration      %10.2f ms (virtual)\n" r.Workload.duration_ms;
  Printf.printf "operations    %10d\n" r.Workload.ops;
  Printf.printf "throughput    %10.2f ops/ms\n" r.Workload.throughput_ops_ms;
  Printf.printf "commits       %10d\n" r.Workload.commits;
  Printf.printf "aborts        %10d\n" r.Workload.aborts;
  if Float.is_nan r.Workload.commit_rate then
    Printf.printf "commit rate          n/a (no commits)\n"
  else Printf.printf "commit rate   %10.2f %%\n" r.Workload.commit_rate;
  Printf.printf "worst attempts%10d\n" r.Workload.worst_attempts;
  Printf.printf "messages      %10d\n" r.Workload.messages;
  Printf.printf "sim events    %10d\n" r.Workload.events;
  let obs = Runtime.obs t in
  if Obs.total obs > 0 then begin
    Printf.printf "abort causes  ";
    List.iter
      (fun (c, n) -> Printf.printf "%s=%d " (Types.conflict_to_string c) n)
      (Obs.by_conflict obs);
    print_newline ();
    List.iteri
      (fun i ({ Obs.winner; victim; conflict }, count, addr) ->
        if i < 5 then
          Printf.printf "  core %d aborted core %d  %dx (%s, last addr %d)\n" winner
            victim count
            (Types.conflict_to_string conflict)
            addr)
      (Obs.dump obs)
  end;
  let fl = Runtime.faults t in
  let fc = Tm2c_noc.Fault.counters fl in
  if
    Tm2c_noc.Fault.injected fl > 0
    || fc.Tm2c_noc.Fault.resends > 0
    || fc.Tm2c_noc.Fault.leases_reclaimed > 0
  then
    Printf.printf
      "faults        %10d injected (drop %d, dup %d, delay %d, reorder %d, \
       partition %d, crash %d, scrash %d); %d resends, %d absorbed, %d \
       leases reclaimed\n"
      (Tm2c_noc.Fault.injected fl)
      fc.Tm2c_noc.Fault.dropped fc.Tm2c_noc.Fault.duplicated
      fc.Tm2c_noc.Fault.delayed fc.Tm2c_noc.Fault.reordered
      fc.Tm2c_noc.Fault.partitioned fc.Tm2c_noc.Fault.crashes
      fc.Tm2c_noc.Fault.server_crashes fc.Tm2c_noc.Fault.resends
      fc.Tm2c_noc.Fault.absorbed fc.Tm2c_noc.Fault.leases_reclaimed;
  if Runtime.replicas t > 0 || fc.Tm2c_noc.Fault.cache_evicted > 0 then
    Printf.printf
      "replication   %10d mutations shipped; %d failovers, %d stale-epoch \
       rejections, %d response-cache evictions\n"
      fc.Tm2c_noc.Fault.replicated fc.Tm2c_noc.Fault.failovers
      fc.Tm2c_noc.Fault.stale_rejections fc.Tm2c_noc.Fault.cache_evicted;
  let net = (Runtime.env t).System.net in
  let m = Tm2c_noc.Network.metrics net in
  let lat = m.Tm2c_noc.Network.latency in
  if Tm2c_engine.Sketch.count lat > 0 then
    Printf.printf
      "msg latency   %10.0f ns mean (p50 %.0f, p99 %.0f, p99.9 %.0f, max %.0f)\n"
      (Tm2c_engine.Sketch.mean lat)
      (Tm2c_engine.Sketch.percentile lat 50.0)
      (Tm2c_engine.Sketch.percentile lat 99.0)
      (Tm2c_engine.Sketch.percentile lat 99.9)
      (Tm2c_engine.Sketch.max_value lat);
  let cl = (Runtime.env t).System.commit_lat in
  if Tm2c_engine.Sketch.count cl > 0 then
    Printf.printf
      "commit lat    %10.0f ns mean (p50 %.0f, p99 %.0f, p99.9 %.0f, max %.0f)\n"
      (Tm2c_engine.Sketch.mean cl)
      (Tm2c_engine.Sketch.percentile cl 50.0)
      (Tm2c_engine.Sketch.percentile cl 99.0)
      (Tm2c_engine.Sketch.percentile cl 99.9)
      (Tm2c_engine.Sketch.max_value cl);
  if Runtime.sink_high_water t > 0 then
    Printf.printf "trace sink    %10d events held (high water)\n"
      (Runtime.sink_high_water t);
  List.iter
    (fun s ->
      let qmean, qmax = Dtm.queue_depth_stats s in
      let omean, omax = Dtm.occupancy_stats s in
      Printf.printf
        "dtm core %-3d  %10d served  queue %.2f mean / %d max  locks %.2f mean / %d max\n"
        (Dtm.core s) (Dtm.served s) qmean qmax omean omax)
    (Runtime.servers t)

let dump_trace t oc =
  let tr = Runtime.trace t in
  Printf.fprintf oc "-- event trace: %d events (capacity %d, %d dropped) --\n"
    (Tm2c_engine.Trace.length tr)
    (Tm2c_engine.Trace.capacity tr)
    (Tm2c_engine.Trace.dropped tr);
  Tm2c_engine.Trace.iter tr (fun time ev ->
      Printf.fprintf oc "%14.1f  %s\n" time (Event.to_string ev))

let warn_overflow t =
  let tr = Runtime.trace t in
  let dropped = Tm2c_engine.Trace.dropped tr in
  if dropped > 0 then
    Printf.eprintf
      "warning: trace ring overflowed — the %d oldest events were lost \
       (capacity %d); the dump and any Perfetto export hold only the tail \
       of the run\n%!"
      dropped
      (Tm2c_engine.Trace.capacity tr)

let fault_plan_conv =
  let parse s =
    match Tm2c_noc.Fault.of_spec s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Tm2c_noc.Fault.to_spec p))

let run bench platform cm cores service multitask eager fault_plan timeout_ns
    lease_ns replicas watchdog_ms trace trace_out json perfetto timeseries_ms
    metrics_out metrics_window_ms self_profile check streaming history witness
    duration_ms seed balance accounts buckets updates elastic size input_kb
    chunk_kb =
  let deployment = if multitask then Runtime.Multitask else Runtime.Dedicated in
  let service = match service with Some s -> s | None -> max 1 (cores / 2) in
  let cfg =
    {
      Runtime.platform;
      total_cores = cores;
      service_cores = (if multitask then cores else service);
      deployment;
      policy = cm;
      wmode = (if eager then Tx.Eager else Tx.Lazy);
      batching = true;
      max_skew_ns = 3_000.0;
      seed;
      mem_words = 1 lsl 20;
    }
  in
  let duration_ns = duration_ms *. 1e6 in
  let t = Runtime.create cfg in
  (match fault_plan with
  | Some plan -> Runtime.set_fault_plan t plan
  | None -> ());
  if timeout_ns > 0.0 || lease_ns > 0.0 then
    Runtime.set_hardening t ~timeout_ns ~lease_ns ();
  if replicas > 0 then Runtime.enable_replication t ~replicas;
  if watchdog_ms > 0.0 then
    Runtime.enable_watchdog t ~window_ns:(watchdog_ms *. 1e6) ~stall_windows:3;
  let tracing = trace || trace_out <> None || perfetto <> None in
  if tracing then Runtime.enable_tracing t;
  (* The checkers need the complete history, not the 64K ring tail:
     tap the trace's sink before any process runs. By default the
     streaming checker and the history-log writer consume events
     online (sharing the sink through a fanout), so neither the run's
     events nor the log are ever resident in memory; --streaming=false
     captures everything in a collector and batch-checks at the end. *)
  let stream_check, hist_writer, collector =
    if streaming then begin
      let s = if check then Some (Tm2c_check.Stream.create ()) else None in
      let w = Option.map Tm2c_check.Histlog.create_writer history in
      (match (s, w) with
      | Some s, Some w ->
          Tm2c_engine.Trace.set_sink (Runtime.trace t)
            (Some
               (Tm2c_engine.Trace.fanout (Tm2c_check.Stream.feed s)
                  (Tm2c_check.Histlog.put w)));
          Tm2c_engine.Trace.enable (Runtime.trace t)
      | Some s, None -> Tm2c_check.Stream.attach s (Runtime.trace t)
      | None, Some w ->
          Tm2c_engine.Trace.set_sink (Runtime.trace t)
            (Some (Tm2c_check.Histlog.put w));
          Tm2c_engine.Trace.enable (Runtime.trace t)
      | None, None -> ());
      (match s with
      | Some s ->
          (* The streaming checker retains a window, not the run:
             report its node high-water as the sink footprint. *)
          Runtime.set_sink_high_water t (fun () ->
              Tm2c_check.Stream.peak_nodes s)
      | None -> ());
      (s, w, None)
    end
    else if check || history <> None then begin
      let c = Tm2c_check.Collector.create () in
      Tm2c_check.Collector.attach c (Runtime.trace t);
      Runtime.set_sink_high_water t (fun () -> Tm2c_check.Collector.length c);
      (None, None, Some c)
    end
    else (None, None, None)
  in
  if json <> None then begin
    (* The JSON export carries phase attribution and a time-series, so
       a plain --json run gets both without extra flags. *)
    Runtime.enable_profiling t;
    let window_ms =
      match timeseries_ms with Some w -> w | None -> duration_ms /. 32.0
    in
    Runtime.enable_timeseries t ~window_ns:(window_ms *. 1e6)
  end;
  (* Flight recorder: streamed snapshots with --metrics-out, and the
     in-memory final snapshot whenever the JSON export wants one. *)
  let metrics_oc = Option.map open_out metrics_out in
  if metrics_oc <> None || json <> None then begin
    let window_ms =
      match metrics_window_ms with Some w -> w | None -> duration_ms /. 16.0
    in
    Runtime.enable_recorder t
      ~window_ns:(window_ms *. 1e6)
      ?out:(Option.map (fun oc -> output_string oc) metrics_oc)
      ()
  end;
  if self_profile then Runtime.enable_self_profile t ~clock:Unix.gettimeofday;
  Printf.printf "TM2C on %s: %d cores (%d app / %d DTM, %s), %s, %s writes\n\n"
    platform.Tm2c_noc.Platform.name cores
    (Array.length (Runtime.app_cores t))
    (Array.length (Runtime.dtm_cores t))
    (if multitask then "multitasked" else "dedicated")
    (Cm.name cm)
    (if eager then "eager" else "lazy");
  let r =
    match bench with
    | Bank ->
        let bank = Bank.create t ~accounts ~initial:1000 in
        let r =
          Workload.drive t ~duration_ns (fun _core ctx prng () ->
              if Tm2c_engine.Prng.int prng 100 < balance then
                ignore (Bank.tx_balance ctx bank)
              else begin
                let src = Tm2c_engine.Prng.int prng accounts
                and dst = Tm2c_engine.Prng.int prng accounts in
                Bank.tx_transfer ctx bank ~src ~dst ~amount:1
              end)
        in
        Printf.printf "total balance %10d (conserved: %b)\n" (Bank.total bank)
          (Bank.total bank = accounts * 1000);
        r
    | Hashtable ->
        let ht = Hashtable.create t ~n_buckets:buckets in
        Hashtable.populate ht (Runtime.fork_prng t) ~n:size ~key_range:(2 * size);
        let r =
          Workload.drive t ~duration_ns (fun _core ctx prng () ->
              let k = Tm2c_engine.Prng.int prng (2 * size) in
              let p = Tm2c_engine.Prng.int prng 100 in
              if p < updates then
                if p land 1 = 0 then ignore (Hashtable.tx_add ctx ht k)
                else ignore (Hashtable.tx_remove ctx ht k)
              else ignore (Hashtable.tx_contains ctx ht k))
        in
        Hashtable.check_invariants ht;
        Printf.printf "final size    %10d\n" (Hashtable.size ht);
        r
    | List_bench ->
        let l = Linkedlist.create t in
        Linkedlist.populate l (Runtime.fork_prng t) ~n:size ~key_range:(2 * size);
        let r =
          Workload.drive t ~duration_ns (fun _core ctx prng () ->
              let k = Tm2c_engine.Prng.int prng (2 * size) in
              let p = Tm2c_engine.Prng.int prng 100 in
              if p < updates then
                if p land 1 = 0 then ignore (Linkedlist.tx_add ~mode:elastic ctx l k)
                else ignore (Linkedlist.tx_remove ~mode:elastic ctx l k)
              else ignore (Linkedlist.tx_contains ~mode:elastic ctx l k))
        in
        Linkedlist.check_invariants l;
        Printf.printf "final size    %10d\n" (Linkedlist.size l);
        r
    | Mapreduce ->
        let mr =
          Mapreduce.create t ~seed ~input_bytes:(input_kb * 1024)
            ~chunk_bytes:(chunk_kb * 1024)
        in
        let r =
          Workload.run_to_completion t (fun _core ctx _prng -> Mapreduce.worker ctx mr)
        in
        Printf.printf "histogram ok  %10b\n"
          (Mapreduce.histogram mr = Mapreduce.expected_histogram mr);
        r
    | Counter ->
        let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
        let r =
          Workload.drive t ~duration_ns (fun _core ctx _prng () ->
              Tx.atomic ctx (fun () -> Tx.write ctx counter (Tx.read ctx counter + 1)))
        in
        Printf.printf "counter       %10d\n"
          (Tm2c_memory.Shmem.peek (Runtime.shmem t) counter);
        r
  in
  report t r;
  (match metrics_oc with
  | Some oc ->
      (* drive paths finished the recorder inside collect; the eof
         marker is already in the stream. *)
      close_out oc;
      Printf.printf "wrote metrics snapshots to %s (%d windows)\n"
        (Option.get metrics_out)
        (match Runtime.recorder t with
        | Some rec_ -> Tm2c_core.Recorder.n_windows rec_
        | None -> 0)
  | None -> ());
  if self_profile then begin
    let prof = Runtime.self_profile t in
    let total = Array.fold_left (fun a (_, s, _) -> a +. s) 0.0 prof in
    if total > 0.0 then begin
      Printf.printf "host profile  %10.3f s measured\n" total;
      Array.iter
        (fun (name, seconds, samples) ->
          if samples > 0 then
            Printf.printf "  %-18s %8.3f s  %5.1f %%  (%d dispatches)\n" name
              seconds
              (100.0 *. seconds /. total)
              samples)
        prof
    end
  end;
  if tracing then warn_overflow t;
  (match trace_out with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> dump_trace t oc);
      Printf.printf "wrote trace dump to %s\n" path
  | None ->
      if trace then begin
        print_newline ();
        dump_trace t stdout
      end);
  (match json with
  | Some path ->
      Tm2c_harness.Json.to_file path (Tm2c_harness.Report.run_json t r);
      Printf.printf "wrote run JSON to %s\n" path
  | None -> ());
  (match perfetto with
  | Some path ->
      let doc =
        Tm2c_harness.Perfetto.export ~app:(Runtime.app_cores t)
          ~dtm:(Runtime.dtm_cores t) (Runtime.trace t)
      in
      (* Timeline files get large; skip the pretty-printer. *)
      Tm2c_harness.Json.to_file ~indent:false path doc;
      Printf.printf "wrote Perfetto timeline to %s (open in ui.perfetto.dev)\n"
        path
  | None -> ());
  let write_witness report =
    match witness with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc report);
        Printf.printf "wrote witness to %s\n" path
    | None -> ()
  in
  (match hist_writer with
  | Some w ->
      let n = Tm2c_check.Histlog.written w in
      Tm2c_check.Histlog.close_writer w;
      Printf.printf "wrote history log to %s (%d events)\n"
        (Option.get history) n
  | None -> ());
  (match stream_check with
  | Some s ->
      (* With a replicated service a wedge is a broken promise, and a
         watchdog-armed run wants the wedged cores named: arm the
         liveness monitor's stuck detection before closing out. *)
      if replicas > 0 || Runtime.wedged t then
        Tm2c_check.Stream.set_stuck_after_ns s 1e6;
      let v = Tm2c_check.Stream.finish s in
      print_newline ();
      Format.printf "%a" Tm2c_check.Stream.pp_verdict v;
      if not (Tm2c_check.Stream.passed v) then begin
        Format.printf "%a" Tm2c_check.Stream.pp_witness s;
        write_witness (Tm2c_check.Stream.report_string s);
        exit 1
      end
  | None -> ());
  (match collector with
  | None -> ()
  | Some c ->
      (match history with
      | Some path ->
          Tm2c_check.Histlog.save path (Tm2c_check.Collector.iter c);
          Printf.printf "wrote history log to %s (%d events)\n" path
            (Tm2c_check.Collector.length c)
      | None -> ());
      if check then begin
        let result =
          if replicas > 0 || Runtime.wedged t then
            Tm2c_check.Check.run ~stuck_after_ns:1e6
              (Tm2c_check.Collector.iter c)
          else Tm2c_check.Check.run (Tm2c_check.Collector.iter c)
        in
        print_newline ();
        Format.printf "%a" Tm2c_check.Check.pp_summary result;
        if not (Tm2c_check.Check.passed result) then begin
          Format.printf "%a" Tm2c_check.Check.pp_witness result;
          write_witness (Tm2c_check.Check.report_string result);
          exit 1
        end
      end);
  if Runtime.wedged t then begin
    Printf.eprintf
      "watchdog: no attempt resolved (commit or abort) across consecutive \
       windows — run cut short, exiting nonzero\n";
    exit 2
  end

let cmd =
  let bench =
    Arg.(value & opt bench_conv Bank
         & info [ "bench"; "b" ] ~docv:"BENCH"
             ~doc:"Benchmark: bank, hashtable, list, mapreduce, counter.")
  in
  let platform =
    Arg.(value & opt platform_conv Tm2c_noc.Platform.scc
         & info [ "platform"; "p" ] ~docv:"PLATFORM"
             ~doc:"Platform: scc, scc800, opteron, or an SCC setting 0-4.")
  in
  let cm =
    Arg.(value & opt cm_conv Cm.Fair_cm
         & info [ "cm" ] ~docv:"CM"
             ~doc:"Contention manager: nocm, backoff, offset-greedy, wholly, faircm.")
  in
  let cores = Arg.(value & opt int 48 & info [ "cores"; "n" ] ~doc:"Total cores.") in
  let service =
    Arg.(value & opt (some int) None
         & info [ "service" ] ~doc:"DTM service cores (default: half).")
  in
  let multitask =
    Arg.(value & flag & info [ "multitask" ] ~doc:"Multitasked deployment.")
  in
  let eager =
    Arg.(value & flag & info [ "eager" ] ~doc:"Eager write-lock acquisition.")
  in
  let fault_plan =
    Arg.(value & opt (some fault_plan_conv) None
         & info [ "fault-plan" ] ~docv:"SPEC"
             ~doc:"Deterministic fault plan, e.g. \
                   $(b,drop=0.01,dup=0.02,delay=0.05\\@2000,stall=8\\@1e6+5e5,crash=3\\@2e6) \
                   or $(b,none). Faults draw from their own PRNG stream, so \
                   $(b,none) is bit-for-bit the unfaulted run.")
  in
  let timeout_ns =
    Arg.(value & opt float 0.0
         & info [ "timeout-ns" ] ~docv:"NS"
             ~doc:"DTM request timeout in virtual ns (0 disables): resend \
                   with the same sequence number on expiry, exponential \
                   backoff, duplicates absorbed server-side.")
  in
  let lease_ns =
    Arg.(value & opt float 0.0
         & info [ "lease-ns" ] ~docv:"NS"
             ~doc:"Lock lease in virtual ns (0 disables): a holder blocking \
                   a request past its lease is reclaimed under a status-word \
                   CAS (recovers orphan locks of crashed cores).")
  in
  let replicas =
    Arg.(value & opt int 0
         & info [ "replicas" ] ~docv:"N"
             ~doc:"Replicated DS-lock service (0 or 1): each primary ships \
                   its lock-table mutations to a backup server; clients that \
                   exhaust their resend patience bump the partition epoch and \
                   fail over to it. Requires --timeout-ns and the dedicated \
                   deployment.")
  in
  let watchdog_ms =
    Arg.(value & opt float 0.0
         & info [ "watchdog-ms" ] ~docv:"MS"
             ~doc:"Liveness watchdog window in virtual ms (0 disables): three \
                   consecutive windows without a commit while processes \
                   remain cut the run short and exit nonzero.")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Record the event trace and dump an interleaved log after \
                   the run (keep the run small: the ring holds 64K events).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the event-trace dump to $(docv) instead of \
                   interleaving it with the report on stdout. Implies \
                   tracing.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Export the full run record (result, per-core stats, \
                   network, DTM, abort causality, per-phase latency \
                   attribution, time-series) as JSON to $(docv). Enables \
                   profiling and the simulated-time sampler.")
  in
  let perfetto =
    Arg.(value & opt (some string) None
         & info [ "perfetto" ] ~docv:"FILE"
             ~doc:"Export the event trace as a Chrome trace_event timeline \
                   to $(docv) — open it in ui.perfetto.dev or \
                   chrome://tracing. Implies tracing.")
  in
  let timeseries_ms =
    Arg.(value & opt (some float) None
         & info [ "timeseries-ms" ] ~docv:"MS"
             ~doc:"Sampler window in virtual milliseconds for the --json \
                   time-series (default: duration/32).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Stream flight-recorder snapshots to $(docv): one \
                   OpenMetrics-style text block per window (windowed counter \
                   deltas, latency quantiles, per-partition DTM gauges, \
                   top-K links and abort-blame pairs), '# eof'-terminated. \
                   Memory stays constant in run length.")
  in
  let metrics_window_ms =
    Arg.(value & opt (some float) None
         & info [ "metrics-window-ms" ] ~docv:"MS"
             ~doc:"Flight-recorder window in virtual milliseconds (default: \
                   duration/16).")
  in
  let self_profile =
    Arg.(value & flag
         & info [ "self-profile" ]
             ~doc:"Attribute host (wall-clock) time to simulator categories \
                   — wheel, delay resume, mailbox delivery, callback, DTM, \
                   network — and print the shares after the run. Virtual \
                   results are unchanged.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Run the complete event history through the \
                   serializability + opacity oracle, the DS-Lock protocol \
                   checker, and the liveness monitor; print a verdict and \
                   exit nonzero (with a witness) on any violation.")
  in
  let streaming =
    Arg.(value & opt bool true
         & info [ "streaming" ] ~docv:"BOOL"
             ~doc:"Check (and write --history) online through the \
                   bounded-memory streaming pipeline riding the trace sink \
                   (default). $(b,--streaming=false) captures the whole \
                   event stream and runs the batch oracle at the end.")
  in
  let history =
    Arg.(value & opt (some string) None
         & info [ "history" ] ~docv:"FILE"
             ~doc:"Write the complete event history (not just the 64K ring \
                   tail) as a machine-readable log to $(docv) — replay it \
                   later with tm2c-check.")
  in
  let witness =
    Arg.(value & opt (some string) None
         & info [ "witness" ] ~docv:"FILE"
             ~doc:"With --check: on failure, also write the checker verdict \
                   and violation witness to $(docv).")
  in
  let duration =
    Arg.(value & opt float 50.0 & info [ "duration" ] ~doc:"Virtual milliseconds.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let balance =
    Arg.(value & opt int 20 & info [ "balance" ] ~doc:"Bank: percent balance ops.")
  in
  let accounts =
    Arg.(value & opt int 1024 & info [ "accounts" ] ~doc:"Bank: number of accounts.")
  in
  let buckets =
    Arg.(value & opt int 64 & info [ "buckets" ] ~doc:"Hash table: buckets.")
  in
  let updates =
    Arg.(value & opt int 20 & info [ "updates" ] ~doc:"Percent update operations.")
  in
  let elastic =
    Arg.(value & opt elastic_conv `Normal
         & info [ "elastic" ] ~doc:"List: elastic mode (normal, early, read).")
  in
  let size =
    Arg.(value & opt int 512 & info [ "size" ] ~doc:"Initial structure size.")
  in
  let input_kb =
    Arg.(value & opt int 1024 & info [ "input-kb" ] ~doc:"MapReduce: input KB.")
  in
  let chunk_kb =
    Arg.(value & opt int 8 & info [ "chunk-kb" ] ~doc:"MapReduce: chunk KB.")
  in
  let doc = "Run a TM2C workload on the simulated many-core" in
  Cmd.v (Cmd.info "tm2c-sim" ~doc)
    Term.(
      const run $ bench $ platform $ cm $ cores $ service $ multitask $ eager
      $ fault_plan $ timeout_ns $ lease_ns $ replicas $ watchdog_ms $ trace
      $ trace_out $ json $ perfetto $ timeseries_ms $ metrics_out
      $ metrics_window_ms $ self_profile $ check $ streaming $ history $ witness
      $ duration $ seed $ balance $ accounts $ buckets $ updates $ elastic
      $ size $ input_kb $ chunk_kb)

let () = exit (Cmd.eval cmd)
