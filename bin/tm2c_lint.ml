(* tm2c-lint: AST-based static analyzer over the project's own
   sources (see lib/analysis/). Walks the given roots (default:
   lib bench bin), prints one "file:line: rule: message" per active
   finding, and exits 1 if any survive the waiver table.

   --json FILE       full machine-readable report (findings, summary,
                     domain-safety inventory)
   --inventory FILE  domain-safety inventory only (the CI artifact)
   --verbose         also print waived findings with justifications *)

let usage = "tm2c-lint [--json FILE] [--inventory FILE] [--verbose] [ROOT...]"

let () =
  let json_out = ref None and inv_out = ref None and verbose = ref false in
  let roots = ref [] in
  Arg.parse
    [
      ("--json", Arg.String (fun f -> json_out := Some f), "FILE write the full JSON report");
      ( "--inventory",
        Arg.String (fun f -> inv_out := Some f),
        "FILE write the domain-safety inventory" );
      ("--verbose", Arg.Set verbose, " print waived findings too");
    ]
    (fun r -> roots := r :: !roots)
    usage;
  let cfg =
    match List.rev !roots with
    | [] -> Tm2c_analysis.Lint.default_config
    | roots -> { Tm2c_analysis.Lint.default_config with roots }
  in
  let report =
    try Tm2c_analysis.Lint.run cfg
    with Failure msg ->
      prerr_endline msg;
      exit 2
  in
  (match !json_out with
  | Some f ->
      Tm2c_analysis.Lint.write_file f (Tm2c_analysis.Lint.findings_json report)
  | None -> ());
  (match !inv_out with
  | Some f ->
      Tm2c_analysis.Lint.write_file f (Tm2c_analysis.Lint.inventory_json report)
  | None -> ());
  if !verbose then
    List.iter
      (fun (fd : Tm2c_analysis.Finding.t) ->
        if fd.Tm2c_analysis.Finding.waived then
          Printf.printf "waived: %s [%s]\n"
            (Tm2c_analysis.Finding.to_string fd)
            (Option.value ~default:"" fd.Tm2c_analysis.Finding.justification))
      report.Tm2c_analysis.Lint.findings;
  match Tm2c_analysis.Lint.active report with
  | [] ->
      let n = List.length report.Tm2c_analysis.Lint.findings in
      Printf.printf "tm2c-lint: clean (%d waived finding(s), %d inventory entr%s)\n"
        n
        (List.length report.Tm2c_analysis.Lint.inventory)
        (if List.length report.Tm2c_analysis.Lint.inventory = 1 then "y" else "ies")
  | fs ->
      List.iter
        (fun fd -> prerr_endline (Tm2c_analysis.Finding.to_string fd))
        fs;
      Printf.eprintf "tm2c-lint: %d active finding(s)\n" (List.length fs);
      exit 1
