(* Benchmark harness entry point: regenerates every table and figure
   of the paper's evaluation (Sections 5-7). Run
   [dune exec bench/main.exe -- --list] for the index, or pass
   experiment ids ("fig5c", "all", "micro", ...). *)

open Cmdliner

let run_bench ids full smoke json check streaming list_only =
  if list_only then begin
    print_endline "Available experiments:";
    List.iter
      (fun e ->
        Printf.printf "  %-10s %s\n" e.Tm2c_harness.Harness.id
          e.Tm2c_harness.Harness.description)
      Tm2c_harness.Harness.all;
    print_endline "  micro      Bechamel micro-benchmarks of core primitives"
  end
  else begin
    let scale =
      if full then Tm2c_harness.Exp.full
      else if smoke then Tm2c_harness.Exp.smoke
      else Tm2c_harness.Exp.quick
    in
    Printf.printf "TM2C benchmark harness (scale: %s)\n%!" scale.Tm2c_harness.Exp.label;
    let ids = if ids = [] then [ "all"; "micro" ] else ids in
    let micro = List.mem "micro" ids in
    let ids = List.filter (fun id -> id <> "micro") ids in
    let failures =
      if ids <> [] then
        Tm2c_harness.Harness.run_ids ?json ~check ~streaming ids scale
      else 0
    in
    if micro then Micro.run ();
    if failures > 0 then begin
      Printf.eprintf "\n%d checker violation(s) — see above\n%!" failures;
      exit 1
    end
  end

let ids_arg =
  let doc =
    "Experiment ids to run (e.g. fig5a). Default: all + micro. 'micro' runs \
     the Bechamel micro-benchmarks."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let full_arg =
  let doc = "Run at paper scale (longer windows, bigger structures)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let smoke_arg =
  let doc = "Run at CI smoke scale (seconds per experiment)." in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let json_arg =
  let doc =
    "Write results and observability metrics (per-core counters, abort \
     causality, network latency histogram, DTM queue depths) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let check_arg =
  let doc =
    "Run every run's event history through the serializability + opacity, \
     lock protocol, and liveness checkers; exit nonzero on any violation."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let streaming_arg =
  let doc =
    "With --check: check online through the bounded-memory streaming \
     pipeline (default). --streaming=false captures each run whole and \
     batch-checks it."
  in
  Arg.(value & opt bool true & info [ "streaming" ] ~docv:"BOOL" ~doc)

let list_arg =
  let doc = "List available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let cmd =
  let doc = "Regenerate the tables and figures of the TM2C paper (EuroSys 2012)" in
  Cmd.v
    (Cmd.info "tm2c-bench" ~doc)
    Term.(
      const run_bench $ ids_arg $ full_arg $ smoke_arg $ json_arg $ check_arg
      $ streaming_arg $ list_arg)

let () = exit (Cmd.eval cmd)
