(* Bechamel micro-benchmarks of the host-side primitives underlying
   the simulator and the TM2C protocol: event heap, PRNG, lock table,
   contention-manager decisions, and a small end-to-end simulation. *)

open Bechamel
open Toolkit
open Tm2c_engine
open Tm2c_core

let bench_heap =
  Test.make ~name:"heap-push-pop-256" (Staged.stage (fun () ->
      let h = Heap.create () in
      for i = 0 to 255 do
        Heap.push h (float_of_int ((i * 7919) mod 997)) i
      done;
      let rec drain () = match Heap.pop_min h with Some _ -> drain () | None -> () in
      drain ()))

let bench_prng =
  let prng = Prng.create ~seed:1 in
  Test.make ~name:"prng-next" (Staged.stage (fun () -> ignore (Prng.next prng)))

let mk_holder core =
  {
    Types.h_core = core;
    h_attempt = core * 3;
    h_est_start_ns = float_of_int (core * 17);
    h_committed = core;
    h_effective_ns = float_of_int (core * 29);
    h_granted_ns = 0.0;
  }

let bench_locktable =
  Test.make ~name:"locktable-acquire-release" (Staged.stage (fun () ->
      let lt = Locktable.create () in
      for a = 0 to 63 do
        Locktable.add_reader lt a (mk_holder (a mod 8))
      done;
      for a = 0 to 63 do
        Locktable.remove_reader lt a ~core:(a mod 8) ~attempt:((a mod 8) * 3)
      done))

let bench_cm =
  let requester = mk_holder 1 in
  let enemies = List.init 4 (fun i -> mk_holder (i + 2)) in
  Test.make ~name:"faircm-decide" (Staged.stage (fun () ->
      ignore (Cm.decide Cm.Fair_cm ~requester ~enemies)))

let bench_sim =
  Test.make ~name:"sim-1k-events" (Staged.stage (fun () ->
      let sim = Sim.create () in
      for _ = 1 to 10 do
        Sim.spawn sim (fun () ->
            for _ = 1 to 50 do
              Sim.delay 10.0
            done)
      done;
      ignore (Sim.run sim ())))

let bench_tm2c =
  Test.make ~name:"tm2c-100-counter-txs" (Staged.stage (fun () ->
      let cfg = { Runtime.default_config with total_cores = 4; service_cores = 2 } in
      let t = Runtime.create cfg in
      let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
      Runtime.start_services t;
      Array.iter
        (fun core ->
          let ctx = Runtime.app_ctx t core in
          Runtime.spawn_app t core (fun () ->
              for _ = 1 to 50 do
                Tx.atomic ctx (fun () ->
                    Tx.write ctx counter (Tx.read ctx counter + 1))
              done))
        (Runtime.app_cores t);
      ignore (Runtime.run t ())))

let tests =
  Test.make_grouped ~name:"tm2c"
    [ bench_heap; bench_prng; bench_locktable; bench_cm; bench_sim; bench_tm2c ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "\nMicro-benchmarks (ns per run, OLS estimate):";
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "  %-32s %12.1f %s\n" name est measure
          | Some [] | None -> Printf.printf "  %-32s (no estimate)\n" name)
        tbl)
    merged;
  flush stdout
