(* Source lint over lib/: the simulator must stay deterministic and
   typed, so the scanner forbids, in any .ml/.mli under lib/,

   - wall-clock reads ([Unix.gettimeofday], [Sys.time]) — virtual
     time comes from the engine; host time is observability-only;
   - [Obj.magic] — the only sanctioned uses are the generic-array
     dummy slots in the event-set and mailbox backing stores;
   - naked [failwith "..."] on a bare string literal — failures must
     carry context (format the message, or use a typed error);

   and requires every module in lib/tm2c and lib/engine to publish an
   interface file. Waivers are explicit and file-scoped, listed below
   with their justification.

   It also enforces exporter exhaustiveness: every constructor of
   [Event.t] (parsed from lib/tm2c/event.mli) must be mentioned, as a
   whole word, in each event exporter — the history log
   (lib/check/histlog.ml), the Perfetto timeline
   (lib/harness/perfetto.ml) and the flight recorder's event counter
   (lib/tm2c/recorder.ml) — so a new event cannot silently vanish
   from any of the three output formats. (The exporters avoid
   wildcard matches for the same reason; this rule catches the
   helper-table case the type checker cannot.)

   Usage: lint <lib-root>. Exits 1 and prints file:line: rule for
   every finding. *)

(* (file suffix, pattern) pairs exempted from the ban. *)
let waivers =
  [
    (* Host-side wall-clock benchmarking is the harness's job; the
       measured quantity is real elapsed time, not simulated time. *)
    ("lib/harness/harness.ml", "Unix.gettimeofday");
    (* The imperative binary heap needs an inhabitant of an arbitrary
       element type for its backing-array dummy slot; the cast is
       confined to that one constant and documented in place. *)
    ("lib/engine/heap.ml", "Obj.magic");
    (* Same dummy-slot pattern: calendar-queue bucket vectors and the
       mailbox ring / timed-delivery slots are generic backing arrays
       whose dead cells must not retain payloads. *)
    ("lib/engine/wheel.ml", "Obj.magic");
    ("lib/engine/mailbox.ml", "Obj.magic");
  ]

let mli_required_dirs = [ "tm2c"; "engine" ]

let findings = ref []

let report file line rule =
  findings := Printf.sprintf "%s:%d: %s" file line rule :: !findings

let contains_at line pat i =
  i + String.length pat <= String.length line
  && String.sub line i (String.length pat) = pat

let contains line pat =
  let n = String.length line and m = String.length pat in
  let rec go i = i + m <= n && (contains_at line pat i || go (i + 1)) in
  go 0

(* [failwith] whose argument starts with a string literal. *)
let naked_failwith line =
  let n = String.length line in
  let pat = "failwith" in
  let rec skip_blank i = if i < n && (line.[i] = ' ' || line.[i] = '(') then skip_blank (i + 1) else i in
  let rec go i =
    if i + String.length pat > n then false
    else if contains_at line pat i then
      let j = skip_blank (i + String.length pat) in
      (j < n && line.[j] = '"') || go (i + 1)
    else go (i + 1)
  in
  go 0

let waived file pat =
  List.exists
    (fun (suffix, p) ->
      p = pat
      && String.length file >= String.length suffix
      && String.sub file (String.length file - String.length suffix)
           (String.length suffix)
         = suffix)
    waivers

let scan_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      try
        while true do
          let line = input_line ic in
          incr lineno;
          List.iter
            (fun pat ->
              if contains line pat && not (waived file pat) then
                report file !lineno
                  (Printf.sprintf "forbidden call %s (virtual time / typed code only)" pat))
            [ "Unix.gettimeofday"; "Sys.time"; "Obj.magic" ];
          if naked_failwith line then
            report file !lineno
              "naked failwith on a string literal — format a contextual message"
        done
      with End_of_file -> ())

let rec walk dir =
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then walk path
      else if
        Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
      then scan_file path)
    (Sys.readdir dir)

let check_mli_coverage root =
  List.iter
    (fun sub ->
      let dir = Filename.concat root sub in
      if Sys.file_exists dir && Sys.is_directory dir then
        Array.iter
          (fun entry ->
            let path = Filename.concat dir entry in
            if Filename.check_suffix entry ".ml" && not (Sys.is_directory path)
            then
              let mli = path ^ "i" in
              if not (Sys.file_exists mli) then
                report path 1
                  "module has no interface file (.mli required in this \
                   directory)")
          (Sys.readdir dir))
    mli_required_dirs

(* ---- exporter exhaustiveness ---- *)

let is_ident c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let read_all file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Constructor names of [Event.t]: every "| Name" line of the .mli
   (the type has one variant per line; payload records may span
   further lines, which carry no "|"). *)
let event_constructors file =
  let names = ref [] in
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          let n = String.length line in
          let i = ref 0 in
          while !i < n && line.[!i] = ' ' do incr i done;
          if !i + 2 < n && line.[!i] = '|' && line.[!i + 1] = ' ' then begin
            let s = !i + 2 in
            if line.[s] >= 'A' && line.[s] <= 'Z' then begin
              let e = ref s in
              while !e < n && is_ident line.[!e] do incr e done;
              names := String.sub line s (!e - s) :: !names
            end
          end
        done
      with End_of_file -> ());
  List.rev !names

(* Whole-word occurrence, so "Service" is not satisfied by
   "Service_done". *)
let mentions_word text word =
  let n = String.length text and m = String.length word in
  let rec go i =
    if i + m > n then false
    else if
      contains_at text word i
      && (i = 0 || not (is_ident text.[i - 1]))
      && (i + m = n || not (is_ident text.[i + m]))
    then true
    else go (i + 1)
  in
  go 0

let check_exporters root =
  let event_mli = Filename.concat root "tm2c/event.mli" in
  let exporters =
    [ "check/histlog.ml"; "harness/perfetto.ml"; "tm2c/recorder.ml" ]
  in
  if not (Sys.file_exists event_mli) then
    report event_mli 1 "event.mli not found (exporter-exhaustiveness rule)"
  else begin
    let ctors = event_constructors event_mli in
    if List.length ctors < 10 then
      report event_mli 1
        (Printf.sprintf
           "only %d Event constructors parsed — the exhaustiveness rule lost \
            its anchor"
           (List.length ctors));
    List.iter
      (fun rel ->
        let path = Filename.concat root rel in
        if not (Sys.file_exists path) then
          report path 1 "event exporter missing (exhaustiveness rule)"
        else
          let text = read_all path in
          List.iter
            (fun ctor ->
              if not (mentions_word text ctor) then
                report path 1
                  (Printf.sprintf
                     "event exporter does not handle Event.%s — every \
                      constructor must reach every output format"
                     ctor))
            ctors)
      exporters
  end

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "lib" in
  if not (Sys.file_exists root && Sys.is_directory root) then begin
    Printf.eprintf "lint: library root %s not found\n" root;
    exit 2
  end;
  walk root;
  check_mli_coverage root;
  check_exporters root;
  match List.sort compare !findings with
  | [] -> print_endline "lint: clean"
  | fs ->
      List.iter prerr_endline fs;
      Printf.eprintf "lint: %d finding(s)\n" (List.length fs);
      exit 1
