(* Source lint over lib/: the simulator must stay deterministic and
   typed, so the scanner forbids, in any .ml/.mli under lib/,

   - wall-clock reads ([Unix.gettimeofday], [Sys.time]) — virtual
     time comes from the engine; host time is observability-only;
   - [Obj.magic] — the only sanctioned uses are the generic-array
     dummy slots in the event-set and mailbox backing stores;
   - naked [failwith "..."] on a bare string literal — failures must
     carry context (format the message, or use a typed error);

   and requires every module in lib/tm2c and lib/engine to publish an
   interface file. Waivers are explicit and file-scoped, listed below
   with their justification.

   Usage: lint <lib-root>. Exits 1 and prints file:line: rule for
   every finding. *)

(* (file suffix, pattern) pairs exempted from the ban. *)
let waivers =
  [
    (* Host-side wall-clock benchmarking is the harness's job; the
       measured quantity is real elapsed time, not simulated time. *)
    ("lib/harness/harness.ml", "Unix.gettimeofday");
    (* The imperative binary heap needs an inhabitant of an arbitrary
       element type for its backing-array dummy slot; the cast is
       confined to that one constant and documented in place. *)
    ("lib/engine/heap.ml", "Obj.magic");
    (* Same dummy-slot pattern: calendar-queue bucket vectors and the
       mailbox ring / timed-delivery slots are generic backing arrays
       whose dead cells must not retain payloads. *)
    ("lib/engine/wheel.ml", "Obj.magic");
    ("lib/engine/mailbox.ml", "Obj.magic");
  ]

let mli_required_dirs = [ "tm2c"; "engine" ]

let findings = ref []

let report file line rule =
  findings := Printf.sprintf "%s:%d: %s" file line rule :: !findings

let contains_at line pat i =
  i + String.length pat <= String.length line
  && String.sub line i (String.length pat) = pat

let contains line pat =
  let n = String.length line and m = String.length pat in
  let rec go i = i + m <= n && (contains_at line pat i || go (i + 1)) in
  go 0

(* [failwith] whose argument starts with a string literal. *)
let naked_failwith line =
  let n = String.length line in
  let pat = "failwith" in
  let rec skip_blank i = if i < n && (line.[i] = ' ' || line.[i] = '(') then skip_blank (i + 1) else i in
  let rec go i =
    if i + String.length pat > n then false
    else if contains_at line pat i then
      let j = skip_blank (i + String.length pat) in
      (j < n && line.[j] = '"') || go (i + 1)
    else go (i + 1)
  in
  go 0

let waived file pat =
  List.exists
    (fun (suffix, p) ->
      p = pat
      && String.length file >= String.length suffix
      && String.sub file (String.length file - String.length suffix)
           (String.length suffix)
         = suffix)
    waivers

let scan_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      try
        while true do
          let line = input_line ic in
          incr lineno;
          List.iter
            (fun pat ->
              if contains line pat && not (waived file pat) then
                report file !lineno
                  (Printf.sprintf "forbidden call %s (virtual time / typed code only)" pat))
            [ "Unix.gettimeofday"; "Sys.time"; "Obj.magic" ];
          if naked_failwith line then
            report file !lineno
              "naked failwith on a string literal — format a contextual message"
        done
      with End_of_file -> ())

let rec walk dir =
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then walk path
      else if
        Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
      then scan_file path)
    (Sys.readdir dir)

let check_mli_coverage root =
  List.iter
    (fun sub ->
      let dir = Filename.concat root sub in
      if Sys.file_exists dir && Sys.is_directory dir then
        Array.iter
          (fun entry ->
            let path = Filename.concat dir entry in
            if Filename.check_suffix entry ".ml" && not (Sys.is_directory path)
            then
              let mli = path ^ "i" in
              if not (Sys.file_exists mli) then
                report path 1
                  "module has no interface file (.mli required in this \
                   directory)")
          (Sys.readdir dir))
    mli_required_dirs

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "lib" in
  if not (Sys.file_exists root && Sys.is_directory root) then begin
    Printf.eprintf "lint: library root %s not found\n" root;
    exit 2
  end;
  walk root;
  check_mli_coverage root;
  match List.sort compare !findings with
  | [] -> print_endline "lint: clean"
  | fs ->
      List.iter prerr_endline fs;
      Printf.eprintf "lint: %d finding(s)\n" (List.length fs);
      exit 1
