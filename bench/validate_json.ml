(* Smoke-target validator: parse an exported results file and require
   the metric families the observability layer promises — including the
   schema-v2 phase attribution, time-series, and trace-ring sections —
   and check the phase-accounting invariant: per core, the committed
   phase sums equal the total committed-attempt time (1e-6 relative).
   Exits non-zero (failwith) when the export is malformed, incomplete,
   or out of tolerance.

   Accepts both shapes: a harness export ({schema_version, scale,
   experiments: [{runs: [...]}]}) and a single tm2c-sim --json run
   record (the run object itself, recognized by its "config" field). *)

open Tm2c_harness

let tolerance = 1e-6

(* tm2c-lint --json reports ("tool":"tm2c-lint"): the summary must
   reconcile with the findings list, every finding carries its anchor
   and rule, waived findings carry their justification, and inventory
   entries carry a known status. *)
let validate_lint path v =
  let fail fmt = Printf.ksprintf (fun m -> failwith (path ^ ": " ^ m)) fmt in
  (match Json.member "version" v with
  | Some (Json.Int 1) -> ()
  | _ -> fail "lint report: version 1 expected");
  let int_at p =
    match Option.bind (Json.path p v) Json.to_int_opt with
    | Some n -> n
    | None -> fail "lint report: missing %s" (String.concat "." p)
  in
  let total = int_at [ "summary"; "total" ]
  and active = int_at [ "summary"; "active" ]
  and waived = int_at [ "summary"; "waived" ] in
  if total <> active + waived then
    fail "lint report: summary total %d <> %d active + %d waived" total active
      waived;
  let list_at k =
    match Json.member k v with
    | Some (Json.List l) -> l
    | _ -> fail "lint report: %s list missing" k
  in
  let findings = list_at "findings" in
  if List.length findings <> total then
    fail "lint report: %d findings in the list, summary says %d"
      (List.length findings) total;
  let n_waived = ref 0 in
  List.iteri
    (fun i f ->
      let str k =
        match Json.member k f with
        | Some (Json.String s) when s <> "" -> s
        | _ -> fail "lint report: finding %d missing %s" i k
      in
      ignore (str "file");
      ignore (str "rule");
      ignore (str "message");
      (match Option.bind (Json.member "line" f) Json.to_int_opt with
      | Some n when n >= 0 -> ()
      | _ -> fail "lint report: finding %d missing line" i);
      match Json.member "waived" f with
      | Some (Json.Bool true) ->
          incr n_waived;
          ignore (str "justification")
      | Some (Json.Bool false) -> ()
      | _ -> fail "lint report: finding %d missing waived flag" i)
    findings;
  if !n_waived <> waived then
    fail "lint report: %d waived findings in the list, summary says %d"
      !n_waived waived;
  let inventory = list_at "inventory" in
  List.iteri
    (fun i e ->
      let str k =
        match Json.member k e with
        | Some (Json.String s) when s <> "" -> s
        | _ -> fail "lint report: inventory entry %d missing %s" i k
      in
      ignore (str "file");
      ignore (str "name");
      ignore (str "kind");
      match str "status" with
      | "violation" | "const-table" -> ()
      | "allowlisted" -> ignore (str "justification")
      | s -> fail "lint report: inventory entry %d has unknown status %s" i s)
    inventory;
  Printf.printf
    "%s: valid tm2c-lint report (%d findings, %d active, %d inventory \
     entries)\n"
    path total active (List.length inventory)

let () =
  let path = Sys.argv.(1) in
  let v = Json.of_file path in
  (match Json.member "tool" v with
  | Some (Json.String "tm2c-lint") ->
      validate_lint path v;
      exit 0
  | _ -> ());
  let fail fmt = Printf.ksprintf (fun m -> failwith (path ^ ": " ^ m)) fmt in
  let require doc p =
    if Json.path p doc = None then fail "missing %s" (String.concat "." p)
  in
  (* Collect every run in the file. *)
  let runs =
    match Json.member "experiments" v with
    | Some (Json.List exps) ->
        require v [ "scale" ];
        (* v2 exports (no "faults" section) are still accepted; the
           faults rules below only run on runs that carry the section,
           which v3 made mandatory and v4 extended. *)
        (match Json.member "schema_version" v with
        | Some (Json.Int (2 | 3 | 4 | 5 | 6)) -> ()
        | Some (Json.Int n) -> fail "schema_version %d, expected 2..6" n
        | _ -> fail "missing schema_version");
        List.concat_map
          (fun e ->
            match Json.member "runs" e with
            | Some (Json.List rs) -> rs
            | _ -> fail "experiment without runs")
          exps
    | Some _ -> fail "experiments is not a list"
    | None ->
        if Json.member "config" v = None then
          fail "neither a harness export nor a run record";
        [ v ]
  in
  (match runs with [] -> fail "no runs" | _ -> ());
  let first_run = List.hd runs in
  List.iter (require first_run)
    [
      [ "config"; "policy" ];
      [ "result"; "commits" ];
      [ "result"; "aborts" ];
      [ "cores" ];
      [ "network"; "sent" ];
      [ "network"; "latency_ns"; "count" ];
      [ "network"; "latency_ns"; "sum" ];
      [ "dtm" ];
      [ "aborts"; "by_conflict"; "RAW" ];
      [ "aborts"; "by_conflict"; "WAW" ];
      [ "aborts"; "by_conflict"; "WAR" ];
      [ "aborts"; "by_conflict"; "STATUS" ];
      (* v2 additions *)
      [ "phases"; "enabled" ];
      [ "phases"; "names" ];
      [ "phases"; "committed" ];
      [ "phases"; "aborted" ];
      [ "trace"; "dropped" ];
      [ "trace"; "capacity" ];
      [ "timeseries"; "window_ns" ];
      [ "timeseries"; "t_ns" ];
      [ "timeseries"; "channels"; "commits"; "values" ];
      [ "timeseries"; "channels"; "queue_depth_mean"; "values" ];
    ];
  (* v3+ faults section: mandatory when the export is schema v3 or v4
     (single run records always carry it), checked for internal
     consistency on every run that has it. *)
  (match Json.member "schema_version" v with
  | Some (Json.Int (3 | 4)) | None ->
      List.iter (require first_run)
        [
          [ "faults"; "plan" ];
          [ "faults"; "injected" ];
          [ "faults"; "resends" ];
          [ "faults"; "leases_reclaimed" ];
        ]
  | _ -> ());
  (match Json.member "schema_version" v with
  | Some (Json.Int (4 | 5 | 6)) ->
      List.iter (require first_run)
        [
          [ "faults"; "replicas" ];
          [ "faults"; "replicated" ];
          [ "faults"; "failovers" ];
          [ "faults"; "stale_rejections" ];
          [ "faults"; "cache_evicted" ];
          [ "wedged" ];
        ]
  | _ -> ());
  (* v5: quantile sketches replace the histograms, the trace section
     carries the checker sink's high-water mark, and every run gains a
     "metrics" section — the flight recorder's final snapshot. *)
  (match Json.member "schema_version" v with
  | Some (Json.Int (5 | 6)) | None ->
      List.iter (require first_run)
        [
          [ "network"; "latency_ns"; "p999" ];
          [ "network"; "latency_ns"; "rel_error" ];
          [ "trace"; "sink_high_water" ];
          [ "metrics"; "window_ns" ];
          [ "metrics"; "n_windows" ];
          [ "metrics"; "counters"; "commits"; "total" ];
          [ "metrics"; "counters"; "commits"; "windowed_sum" ];
          [ "metrics"; "sketches"; "commit_latency_ns"; "p99" ];
          [ "metrics"; "events" ];
          [ "metrics"; "host_profile"; "wheel"; "seconds" ];
        ]
  | _ -> ());
  (* v6: the open-loop section (admission / shedding / goodput) and the
     horizon flag. *)
  (match Json.member "schema_version" v with
  | Some (Json.Int 6) | None ->
      List.iter (require first_run)
        [
          [ "result"; "horizon_hit" ];
          [ "openloop"; "policy" ];
          [ "openloop"; "offered" ];
          [ "openloop"; "e2e_latency_ns"; "p999" ];
        ]
  | _ -> ());
  (* Open-loop accounting invariants, on every run carrying the
     section: every offered arrival is either admitted or shed (none
     vanish), admitted work is either executed or expired on the queue
     (the remainder is the drain backlog), and goodput <= completed <=
     executed (a request completes at most once, counted good only
     within its deadline). *)
  List.iteri
    (fun ri run ->
      match Json.member "openloop" run with
      | None -> ()
      | Some o ->
          let count k =
            match Option.bind (Json.member k o) Json.to_int_opt with
            | Some n when n >= 0 -> n
            | Some n -> fail "run %d: openloop.%s negative (%d)" ri k n
            | None -> fail "run %d: openloop.%s missing or not an integer" ri k
          in
          let offered = count "offered"
          and admitted = count "admitted"
          and shed = count "shed"
          and expired = count "expired"
          and executed = count "executed"
          and completed = count "completed"
          and goodput = count "goodput" in
          if offered <> admitted + shed then
            fail "run %d: openloop.offered %d <> %d admitted + %d shed" ri
              offered admitted shed;
          if executed + expired > admitted then
            fail "run %d: openloop %d executed + %d expired > %d admitted" ri
              executed expired admitted;
          if goodput > completed then
            fail "run %d: openloop.goodput %d > completed %d" ri goodput
              completed;
          if completed > executed then
            fail "run %d: openloop.completed %d > executed %d" ri completed
              executed;
          ignore (count "wasted");
          ignore (count "retries");
          ignore (count "retry_exhausted");
          ignore (count "queue_peak"))
    runs;
  List.iteri
    (fun ri run ->
      match Json.member "faults" run with
      | None -> ()
      | Some f ->
          let count k =
            match Option.bind (Json.member k f) Json.to_int_opt with
            | Some n when n >= 0 -> n
            | Some n -> fail "run %d: faults.%s negative (%d)" ri k n
            | None -> fail "run %d: faults.%s missing or not an integer" ri k
          in
          let injected = count "injected" in
          (* A v4-era record carries the reorder/partition/server-crash
             counters in the breakdown; a v3 record predates them.
             Presence of "reordered" tells the two apart (harness
             exports and single-run records alike). *)
          let parts =
            count "dropped" + count "duplicated" + count "delayed"
            + count "crashes"
            +
            if Json.member "reordered" f <> None then
              count "reordered" + count "partitioned" + count "server_crashes"
            else 0
          in
          if injected <> parts then
            fail "run %d: faults.injected %d <> breakdown sum %d" ri injected
              parts;
          ignore (count "resends");
          ignore (count "absorbed");
          ignore (count "leases_reclaimed"))
    runs;
  (* Sketch-quantile monotonicity (v5), on every run: walk the whole
     record and require p50 <= p90 <= p99 (<= p999) of every sketch
     summary — any object carrying the quantile ladder. Estimates come
     from cumulative bucket walks at increasing ranks, so a violation
     means the sketch (or an exporter) is broken. *)
  let quantiles = ref 0 in
  let qnum obj k = Option.bind (Json.member k obj) Json.to_float_opt in
  let rec walk_quantiles ri ctx j =
    match j with
    | Json.Obj fields ->
        (match (qnum j "p50", qnum j "p90", qnum j "p99") with
        | Some p50, Some p90, Some p99 ->
            let ladder =
              match qnum j "p999" with
              | Some p999 -> [ (p50, p90, "p50<=p90"); (p90, p99, "p90<=p99"); (p99, p999, "p99<=p999") ]
              | None -> [ (p50, p90, "p50<=p90"); (p90, p99, "p90<=p99") ]
            in
            List.iter
              (fun (lo, hi, label) ->
                if lo > hi then
                  fail "run %d: %s: quantile inversion %s (%.6g > %.6g)" ri ctx
                    label lo hi)
              ladder;
            incr quantiles
        | _ -> ());
        List.iter (fun (k, v) -> walk_quantiles ri (ctx ^ "." ^ k) v) fields
    | Json.List items -> List.iter (walk_quantiles ri ctx) items
    | _ -> ()
  in
  List.iteri (fun ri run -> walk_quantiles ri "run" run) runs;
  (* Flight-recorder invariants (v5), on every run that carries the
     metrics section: the sum of emitted windowed deltas telescopes to
     the counter's total (the windowed stream lost nothing), and the
     recorder's headline counters agree with the result section. *)
  List.iteri
    (fun ri run ->
      match Json.member "metrics" run with
      | None -> ()
      | Some m ->
          (match Json.member "counters" m with
          | Some (Json.Obj cs) ->
              List.iter
                (fun (name, c) ->
                  let num k =
                    match Option.bind (Json.member k c) Json.to_float_opt with
                    | Some f -> f
                    | None ->
                        fail "run %d: metrics.counters.%s missing %s" ri name k
                  in
                  let total = num "total" and windowed = num "windowed_sum" in
                  if
                    Float.abs (total -. windowed)
                    > tolerance *. Float.max (Float.abs total) 1.0
                  then
                    fail
                      "run %d: metrics.counters.%s windowed sum %.6g <> total \
                       %.6g (a window went missing)"
                      ri name windowed total)
                cs
          | _ -> fail "run %d: metrics.counters missing" ri);
          let counter_total name =
            match
              Option.bind
                (Json.path [ "counters"; name; "total" ] m)
                Json.to_float_opt
            with
            | Some f -> f
            | None -> fail "run %d: metrics.counters.%s missing" ri name
          in
          let result_int name =
            match
              Option.bind (Json.path [ "result"; name ] run) Json.to_int_opt
            with
            | Some n -> n
            | None -> fail "run %d: result.%s missing" ri name
          in
          List.iter
            (fun (cname, rname) ->
              let c = counter_total cname and r = result_int rname in
              if int_of_float c <> r then
                fail "run %d: metrics.counters.%s.total %.0f <> result.%s %d"
                  ri cname c rname r)
            [ ("ops", "ops"); ("commits", "commits"); ("aborts", "aborts") ];
          match Option.bind (Json.member "n_windows" m) Json.to_int_opt with
          | Some n when n >= 1 -> ()
          | Some n -> fail "run %d: metrics.n_windows %d < 1" ri n
          | None -> fail "run %d: metrics.n_windows missing" ri)
    runs;
  (* Phase-accounting invariant, on every run in the file: the
     instrumentation charges each telescoping segment of a committed
     attempt to exactly one phase, so the sums must reconcile. *)
  let checked = ref 0 in
  List.iteri
    (fun ri run ->
      match Json.path [ "phases"; "committed" ] run with
      | Some (Json.List cores) ->
          List.iter
            (fun entry ->
              let num k =
                match Option.bind (Json.member k entry) Json.to_float_opt with
                | Some f -> f
                | None -> fail "run %d: core entry missing %s" ri k
              in
              let core =
                match Option.bind (Json.member "core" entry) Json.to_int_opt with
                | Some c -> c
                | None -> fail "run %d: core entry missing core id" ri
              in
              let total = num "total_attempt_ns" in
              let phases = num "phase_sum_ns" in
              if Float.abs (phases -. total) > tolerance *. Float.max total 1.0
              then
                fail
                  "run %d core %d: phase sums %.6f ns vs attempt total %.6f ns \
                   (relative error %.3e > %g)"
                  ri core phases total
                  (Float.abs (phases -. total) /. Float.max total 1.0)
                  tolerance;
              incr checked)
            cores
      | _ -> fail "run %d: phases.committed missing" ri)
    runs;
  Printf.printf
    "%s: valid export (%d runs, %d per-core phase sums within %g, %d quantile \
     ladders monotone)\n"
    path (List.length runs) !checked tolerance !quantiles
