(* Smoke-target validator: parse an exported results file and require
   the metric families the observability layer promises — including the
   schema-v2 phase attribution, time-series, and trace-ring sections —
   and check the phase-accounting invariant: per core, the committed
   phase sums equal the total committed-attempt time (1e-6 relative).
   Exits non-zero (failwith) when the export is malformed, incomplete,
   or out of tolerance.

   Accepts both shapes: a harness export ({schema_version, scale,
   experiments: [{runs: [...]}]}) and a single tm2c-sim --json run
   record (the run object itself, recognized by its "config" field). *)

open Tm2c_harness

let tolerance = 1e-6

let () =
  let path = Sys.argv.(1) in
  let v = Json.of_file path in
  let fail fmt = Printf.ksprintf (fun m -> failwith (path ^ ": " ^ m)) fmt in
  let require doc p =
    if Json.path p doc = None then fail "missing %s" (String.concat "." p)
  in
  (* Collect every run in the file. *)
  let runs =
    match Json.member "experiments" v with
    | Some (Json.List exps) ->
        require v [ "scale" ];
        (* v2 exports (no "faults" section) are still accepted; the
           faults rules below only run on runs that carry the section,
           which v3 made mandatory and v4 extended. *)
        (match Json.member "schema_version" v with
        | Some (Json.Int (2 | 3 | 4)) -> ()
        | Some (Json.Int n) -> fail "schema_version %d, expected 2, 3 or 4" n
        | _ -> fail "missing schema_version");
        List.concat_map
          (fun e ->
            match Json.member "runs" e with
            | Some (Json.List rs) -> rs
            | _ -> fail "experiment without runs")
          exps
    | Some _ -> fail "experiments is not a list"
    | None ->
        if Json.member "config" v = None then
          fail "neither a harness export nor a run record";
        [ v ]
  in
  (match runs with [] -> fail "no runs" | _ -> ());
  let first_run = List.hd runs in
  List.iter (require first_run)
    [
      [ "config"; "policy" ];
      [ "result"; "commits" ];
      [ "result"; "aborts" ];
      [ "cores" ];
      [ "network"; "sent" ];
      [ "network"; "latency_ns"; "count" ];
      [ "network"; "latency_ns"; "sum" ];
      [ "dtm" ];
      [ "aborts"; "by_conflict"; "RAW" ];
      [ "aborts"; "by_conflict"; "WAW" ];
      [ "aborts"; "by_conflict"; "WAR" ];
      [ "aborts"; "by_conflict"; "STATUS" ];
      (* v2 additions *)
      [ "phases"; "enabled" ];
      [ "phases"; "names" ];
      [ "phases"; "committed" ];
      [ "phases"; "aborted" ];
      [ "trace"; "dropped" ];
      [ "trace"; "capacity" ];
      [ "timeseries"; "window_ns" ];
      [ "timeseries"; "t_ns" ];
      [ "timeseries"; "channels"; "commits"; "values" ];
      [ "timeseries"; "channels"; "queue_depth_mean"; "values" ];
    ];
  (* v3+ faults section: mandatory when the export is schema v3 or v4
     (single run records always carry it), checked for internal
     consistency on every run that has it. *)
  (match Json.member "schema_version" v with
  | Some (Json.Int (3 | 4)) | None ->
      List.iter (require first_run)
        [
          [ "faults"; "plan" ];
          [ "faults"; "injected" ];
          [ "faults"; "resends" ];
          [ "faults"; "leases_reclaimed" ];
        ]
  | _ -> ());
  (match Json.member "schema_version" v with
  | Some (Json.Int 4) ->
      List.iter (require first_run)
        [
          [ "faults"; "replicas" ];
          [ "faults"; "replicated" ];
          [ "faults"; "failovers" ];
          [ "faults"; "stale_rejections" ];
          [ "faults"; "cache_evicted" ];
          [ "wedged" ];
        ]
  | _ -> ());
  List.iteri
    (fun ri run ->
      match Json.member "faults" run with
      | None -> ()
      | Some f ->
          let count k =
            match Option.bind (Json.member k f) Json.to_int_opt with
            | Some n when n >= 0 -> n
            | Some n -> fail "run %d: faults.%s negative (%d)" ri k n
            | None -> fail "run %d: faults.%s missing or not an integer" ri k
          in
          let injected = count "injected" in
          (* A v4-era record carries the reorder/partition/server-crash
             counters in the breakdown; a v3 record predates them.
             Presence of "reordered" tells the two apart (harness
             exports and single-run records alike). *)
          let parts =
            count "dropped" + count "duplicated" + count "delayed"
            + count "crashes"
            +
            if Json.member "reordered" f <> None then
              count "reordered" + count "partitioned" + count "server_crashes"
            else 0
          in
          if injected <> parts then
            fail "run %d: faults.injected %d <> breakdown sum %d" ri injected
              parts;
          ignore (count "resends");
          ignore (count "absorbed");
          ignore (count "leases_reclaimed"))
    runs;
  (* Phase-accounting invariant, on every run in the file: the
     instrumentation charges each telescoping segment of a committed
     attempt to exactly one phase, so the sums must reconcile. *)
  let checked = ref 0 in
  List.iteri
    (fun ri run ->
      match Json.path [ "phases"; "committed" ] run with
      | Some (Json.List cores) ->
          List.iter
            (fun entry ->
              let num k =
                match Option.bind (Json.member k entry) Json.to_float_opt with
                | Some f -> f
                | None -> fail "run %d: core entry missing %s" ri k
              in
              let core =
                match Option.bind (Json.member "core" entry) Json.to_int_opt with
                | Some c -> c
                | None -> fail "run %d: core entry missing core id" ri
              in
              let total = num "total_attempt_ns" in
              let phases = num "phase_sum_ns" in
              if Float.abs (phases -. total) > tolerance *. Float.max total 1.0
              then
                fail
                  "run %d core %d: phase sums %.6f ns vs attempt total %.6f ns \
                   (relative error %.3e > %g)"
                  ri core phases total
                  (Float.abs (phases -. total) /. Float.max total 1.0)
                  tolerance;
              incr checked)
            cores
      | _ -> fail "run %d: phases.committed missing" ri)
    runs;
  Printf.printf "%s: valid export (%d runs, %d per-core phase sums within %g)\n"
    path (List.length runs) !checked tolerance
