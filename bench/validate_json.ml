(* Smoke-target validator: parse an exported results file and require
   the metric families the observability layer promises. Exits
   non-zero (failwith) when the export is malformed or incomplete. *)

open Tm2c_harness

let () =
  let path = Sys.argv.(1) in
  let v = Json.of_file path in
  let require doc p =
    if Json.path p doc = None then
      failwith (Printf.sprintf "%s: missing %s" path (String.concat "." p))
  in
  require v [ "schema_version" ];
  require v [ "scale" ];
  let first_run =
    match Json.path [ "experiments" ] v with
    | Some (Json.List (e :: _)) -> (
        match Json.member "runs" e with
        | Some (Json.List (run :: _)) -> run
        | _ -> failwith (path ^ ": experiment has no runs"))
    | _ -> failwith (path ^ ": no experiments")
  in
  List.iter (require first_run)
    [
      [ "config"; "policy" ];
      [ "result"; "commits" ];
      [ "result"; "aborts" ];
      [ "cores" ];
      [ "network"; "sent" ];
      [ "network"; "latency_ns"; "count" ];
      [ "dtm" ];
      [ "aborts"; "by_conflict"; "RAW" ];
      [ "aborts"; "by_conflict"; "WAW" ];
      [ "aborts"; "by_conflict"; "WAR" ];
    ];
  Printf.printf "%s: valid export\n" path
