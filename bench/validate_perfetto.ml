(* Smoke-target validator for --perfetto output: well-formed
   trace_event JSON, monotone per-track timestamps, non-negative
   durations, and paired flow arrows (see Perfetto.validate). *)

open Tm2c_harness

let () =
  let path = Sys.argv.(1) in
  match Perfetto.validate_file path with
  | Ok () ->
      let n =
        match Json.member "traceEvents" (Json.of_file path) with
        | Some (Json.List l) -> List.length l
        | _ -> 0
      in
      Printf.printf "%s: valid Perfetto timeline (%d events)\n" path n
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
