(* Deterministic fault-injection fuzzer: sweep seeds x fault plans x
   the six @check workload shapes, replay every run's complete event
   history through the checker stack (serializability oracle, DS-Lock
   protocol, liveness), and — per shape x seed — require that the
   empty plan reproduces the no-fault run's committed/aborted counts
   exactly (the fault layer draws from its own PRNG stream, so merely
   enabling it must not perturb the schedule).

   On a checker failure the driver greedily shrinks the fault plan
   (dropping whole components, then zeroing individual rates) to a
   minimal still-failing (seed, plan) pair, prints it with a paste-able
   tm2c-sim repro command, and writes fuzz_repro.txt plus the checker
   witness to fuzz_witness.txt for CI artifact upload.

   --wedge runs the deliberately wedged configuration instead: crash a
   lock-holder under a requester-loses contention manager with leases
   disabled, and require that the liveness monitor *detects* the wedge
   (the run itself always terminates: the virtual horizon is hard) —
   then that leases alone un-wedge the same (seed, crash) pair.

   --failover is the server-side analogue: crash the DS-lock server
   owning the hot word. Without replication the run must wedge (zero
   commits, watchdog trips, wedged cores flagged); with --replicas 1
   the clients must fail over to the backup and finish with every
   checker green. --failover-smoke sweeps a mid-run server crash with
   replication over all six shapes for CI. *)

open Tm2c_core
open Tm2c_noc
open Tm2c_check

let timeout_ns = 60_000.0

let lease_ns = 250_000.0

type shape = {
  sh_name : string;
  sh_cores : int;
  sh_duration_ms : float;
  sh_policy : Cm.policy;
  sh_wmode : Tx.wmode;
  sh_flags : string;  (* extra tm2c-sim flags for the repro command *)
  sh_body : Runtime.t -> duration_ns:float -> Tm2c_apps.Workload.result;
}

(* The six @check shapes (bench/dune), at fuzz-friendly durations. *)
let shapes =
  let open Tm2c_apps in
  let counter t ~duration_ns =
    let c = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
    Workload.drive t ~duration_ns (fun _core ctx _prng () ->
        Tx.atomic ctx (fun () -> Tx.write ctx c (Tx.read ctx c + 1)))
  in
  let bank t ~duration_ns =
    let accounts = 1024 in
    let b = Bank.create t ~accounts ~initial:1000 in
    Workload.drive t ~duration_ns (fun _core ctx prng () ->
        if Tm2c_engine.Prng.int prng 100 < 20 then ignore (Bank.tx_balance ctx b)
        else
          let src = Tm2c_engine.Prng.int prng accounts
          and dst = Tm2c_engine.Prng.int prng accounts in
          Bank.tx_transfer ctx b ~src ~dst ~amount:1)
  in
  let hashtable t ~duration_ns =
    let size = 512 in
    let ht = Hashtable.create t ~n_buckets:64 in
    Hashtable.populate ht (Runtime.fork_prng t) ~n:size ~key_range:(2 * size);
    let r =
      Workload.drive t ~duration_ns (fun _core ctx prng () ->
          let k = Tm2c_engine.Prng.int prng (2 * size) in
          let p = Tm2c_engine.Prng.int prng 100 in
          if p < 20 then
            if p land 1 = 0 then ignore (Hashtable.tx_add ctx ht k)
            else ignore (Hashtable.tx_remove ctx ht k)
          else ignore (Hashtable.tx_contains ctx ht k))
    in
    Hashtable.check_invariants ht;
    r
  in
  let list_bench mode t ~duration_ns =
    let size = 64 in
    let l = Linkedlist.create t in
    Linkedlist.populate l (Runtime.fork_prng t) ~n:size ~key_range:(2 * size);
    let r =
      Workload.drive t ~duration_ns (fun _core ctx prng () ->
          let k = Tm2c_engine.Prng.int prng (2 * size) in
          let p = Tm2c_engine.Prng.int prng 100 in
          if p < 20 then
            if p land 1 = 0 then ignore (Linkedlist.tx_add ~mode ctx l k)
            else ignore (Linkedlist.tx_remove ~mode ctx l k)
          else ignore (Linkedlist.tx_contains ~mode ctx l k))
    in
    Linkedlist.check_invariants l;
    r
  in
  [
    {
      sh_name = "counter/16";
      sh_cores = 16;
      sh_duration_ms = 1.0;
      sh_policy = Cm.Fair_cm;
      sh_wmode = Tx.Lazy;
      sh_flags = "--bench counter --cores 16";
      sh_body = counter;
    };
    {
      sh_name = "bank/48";
      sh_cores = 48;
      sh_duration_ms = 1.0;
      sh_policy = Cm.Fair_cm;
      sh_wmode = Tx.Lazy;
      sh_flags = "--bench bank --cores 48";
      sh_body = bank;
    };
    {
      sh_name = "hashtable/16";
      sh_cores = 16;
      sh_duration_ms = 1.0;
      sh_policy = Cm.Fair_cm;
      sh_wmode = Tx.Lazy;
      sh_flags = "--bench hashtable --cores 16";
      sh_body = hashtable;
    };
    {
      sh_name = "hashtable/16-eager";
      sh_cores = 16;
      sh_duration_ms = 1.0;
      sh_policy = Cm.Fair_cm;
      sh_wmode = Tx.Eager;
      sh_flags = "--bench hashtable --cores 16 --eager";
      sh_body = hashtable;
    };
    {
      sh_name = "list/16";
      sh_cores = 16;
      sh_duration_ms = 2.0;
      sh_policy = Cm.Fair_cm;
      sh_wmode = Tx.Lazy;
      sh_flags = "--bench list --cores 16 --size 64";
      sh_body = list_bench `Normal;
    };
    {
      sh_name = "list/16-elastic-early";
      sh_cores = 16;
      sh_duration_ms = 2.0;
      sh_policy = Cm.Fair_cm;
      sh_wmode = Tx.Lazy;
      sh_flags = "--bench list --cores 16 --size 64 --elastic early";
      sh_body = list_bench `Elastic_early;
    };
  ]

(* Fault plans under test. Stall core 0 is always a DTM core
   (dedicated deployment places servers on the even ids); crash core 3
   is always an application core. *)
let plan_matrix ~smoke =
  let specs =
    if smoke then
      [
        "drop=0.01,dup=0.02";
        "delay=0.05@2000,reorder=0.1@3000";
        "drop=0.005,dup=0.01,delay=0.02@1500,stall=0@3e5+2e5,crash=3@5e5,part=1-4@1e5+2e5";
      ]
    else
      [
        "drop=0.01";
        "dup=0.02";
        "delay=0.05@2000";
        "reorder=0.1@3000";
        "part=1-4@1e5+2e5";
        "drop=0.01,dup=0.02,delay=0.05@2000";
        "stall=0@3e5+2e5";
        "crash=3@5e5";
        "drop=0.005,dup=0.01,delay=0.02@1500,reorder=0.05@2500,stall=0@3e5+2e5,crash=3@5e5,part=1-4@1e5+2e5";
      ]
  in
  List.map
    (fun s ->
      match Fault.of_spec s with
      | Ok p -> p
      | Error m -> failwith (Printf.sprintf "bad built-in plan %S: %s" s m))
    specs

let make_runtime sh ~seed =
  Runtime.create
    {
      Runtime.platform = Tm2c_noc.Platform.scc;
      total_cores = sh.sh_cores;
      service_cores = sh.sh_cores / 2;
      deployment = Runtime.Dedicated;
      policy = sh.sh_policy;
      wmode = sh.sh_wmode;
      batching = true;
      max_skew_ns = 3_000.0;
      seed;
      mem_words = 1 lsl 18;
    }

(* One run: returns the workload result and (when [collect]) the
   complete event history for checker replay. *)
let run_shape ?(replicas = 0) sh ~seed ~plan ~hardened ~collect =
  let t = make_runtime sh ~seed in
  (match plan with Some p -> Runtime.set_fault_plan t p | None -> ());
  if hardened then Runtime.set_hardening t ~timeout_ns ~lease_ns ();
  if replicas > 0 then Runtime.enable_replication t ~replicas;
  let col =
    if collect then begin
      let c = Collector.create () in
      Collector.attach c (Runtime.trace t);
      Some c
    end
    else None
  in
  let r = sh.sh_body t ~duration_ns:(sh.sh_duration_ms *. 1e6) in
  let events =
    match col with
    | Some c ->
        Collector.detach (Runtime.trace t);
        Collector.to_list c
    | None -> []
  in
  (r, events)

let repro_command ?(replicas = 0) sh ~seed ~plan =
  Printf.sprintf
    "tm2c-sim %s --duration %g --seed %d --fault-plan '%s' --timeout-ns %g \
     --lease-ns %g%s --check"
    sh.sh_flags sh.sh_duration_ms seed (Fault.to_spec plan) timeout_ns lease_ns
    (if replicas > 0 then Printf.sprintf " --replicas %d" replicas else "")

(* With replication on, a wedge is itself a failure: arm the liveness
   monitor's stuck detection (a core idle >1ms of virtual time made no
   progress across the failover it was promised). *)
let stuck_after_ns = 1e6

let failure_of_run ?(replicas = 0) sh ~seed ~plan =
  let _, events =
    run_shape ~replicas sh ~seed ~plan:(Some plan) ~hardened:true ~collect:true
  in
  let r =
    if replicas > 0 then Check.run_list ~stuck_after_ns events
    else Check.run_list events
  in
  if Check.passed r then None else Some r

(* Greedy plan shrinking: repeatedly try structural reductions (drop a
   whole component, then zero one link rate) and keep any that still
   fails, until no reduction does. *)
let shrink ?(replicas = 0) sh ~seed plan =
  let reductions p =
    let link f = { p with Fault.link = Option.map f p.Fault.link } in
    List.filter
      (fun q -> q <> p)
      ([
         { p with Fault.link = None };
         { p with Fault.stalls = [] };
         { p with Fault.crashes = [] };
         { p with Fault.scrashes = [] };
         { p with Fault.parts = [] };
         link (fun l -> { l with Fault.drop_pct = 0.0 });
         link (fun l -> { l with Fault.dup_pct = 0.0 });
         link (fun l -> { l with Fault.delay_pct = 0.0 });
         link (fun l -> { l with Fault.reorder_pct = 0.0 });
       ]
      @ List.map
          (fun s -> { p with Fault.stalls = List.filter (( <> ) s) p.Fault.stalls })
          p.Fault.stalls
      @ List.map
          (fun c ->
            { p with Fault.crashes = List.filter (( <> ) c) p.Fault.crashes })
          p.Fault.crashes
      @ List.map
          (fun c ->
            { p with Fault.scrashes = List.filter (( <> ) c) p.Fault.scrashes })
          p.Fault.scrashes
      @ List.map
          (fun c -> { p with Fault.parts = List.filter (( <> ) c) p.Fault.parts })
          p.Fault.parts)
  in
  let rec go p =
    match
      List.find_opt
        (fun q -> failure_of_run ~replicas sh ~seed ~plan:q <> None)
        (reductions p)
    with
    | Some q -> go q
    | None -> p
  in
  go plan

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let report_failure ?(replicas = 0) sh ~seed ~plan ~out_dir result =
  let minimal = shrink ~replicas sh ~seed plan in
  let witness =
    match failure_of_run ~replicas sh ~seed ~plan:minimal with
    | Some r -> Check.report_string r
    | None -> Check.report_string result (* shrinking raced; keep the original *)
  in
  let cmd = repro_command ~replicas sh ~seed ~plan:minimal in
  Printf.printf "\nFUZZ FAILURE %s seed=%d\n" sh.sh_name seed;
  Printf.printf "  original plan: %s\n" (Fault.to_spec plan);
  Printf.printf "  minimal plan:  %s\n" (Fault.to_spec minimal);
  Printf.printf "  repro: %s\n%!" cmd;
  write_file
    (Filename.concat out_dir "fuzz_repro.txt")
    (Printf.sprintf "shape: %s\nseed: %d\nplan: %s\nrepro: %s\n" sh.sh_name seed
       (Fault.to_spec minimal) cmd);
  write_file (Filename.concat out_dir "fuzz_witness.txt") witness

(* Per shape x seed: the empty-plan determinism gate, then every plan
   in the matrix replayed through the checkers. Returns the failure
   count. *)
let fuzz_shape sh ~seeds ~plans ~out_dir =
  let failures = ref 0 in
  List.iter
    (fun seed ->
      (* Determinism gate: installing the empty plan (and hardening,
         which on a fault-free schedule only installs timeouts that
         never fire... timeouts do add heap events, so the comparison
         runs both sides unhardened) must not change the outcome. *)
      let base, _ =
        run_shape sh ~seed ~plan:None ~hardened:false ~collect:false
      in
      let empt, _ =
        run_shape sh ~seed ~plan:(Some Fault.empty) ~hardened:false
          ~collect:false
      in
      let open Tm2c_apps.Workload in
      if base.commits <> empt.commits || base.aborts <> empt.aborts then begin
        incr failures;
        Printf.printf
          "\nFUZZ FAILURE %s seed=%d: empty plan perturbed the schedule \
           (%d/%d commits/aborts vs %d/%d)\n%!"
          sh.sh_name seed empt.commits empt.aborts base.commits base.aborts;
        write_file
          (Filename.concat out_dir "fuzz_repro.txt")
          (Printf.sprintf "shape: %s\nseed: %d\nplan: none (determinism gate)\n"
             sh.sh_name seed)
      end;
      List.iter
        (fun plan ->
          match failure_of_run sh ~seed ~plan with
          | None ->
              Printf.printf "ok   %-24s seed=%d plan=%s\n%!" sh.sh_name seed
                (Fault.to_spec plan)
          | Some r ->
              incr failures;
              report_failure sh ~seed ~plan ~out_dir r)
        plans)
    seeds;
  !failures

(* The deliberately wedged configuration: counter under Backoff_retry
   (the requester always loses, so nobody ever revokes an orphan), a
   crash that strands a read lock on the shared counter, leases
   disabled. Detection = the run terminates (hard horizon) and the
   liveness monitor flags the survivors' unbounded abort chains.
   Sweep a few crash instants: the crash must land in the window where
   the victim holds its read lock (between grant and the commit-time
   status poll), and which poll window a given instant hits depends on
   the seed's schedule.

   The horizon and budget are matched to the exponential backoff: its
   delay caps at 1ms, so a wedged survivor accumulates ~2 aborts/ms
   once capped and a 20ms horizon pushes every survivor's chain well
   past 40. Backoff_retry starves one core even when healthy (single
   hot word, requester always loses — the unfairness FairCM exists to
   fix), so chain length alone cannot separate wedged from merely
   unfair: the wedge verdict combines zero global commits (nobody ever
   progressed) with the liveness violations, and the lease comparison
   requires commits plus a clean replay at the default budget. *)
let wedge_budget = 40

let wedge ~out_dir =
  let sh =
    {
      (List.hd shapes) with
      sh_name = "counter/16-backoff";
      sh_policy = Cm.Backoff_retry;
      sh_duration_ms = 20.0;
      sh_flags = "--bench counter --cores 16 --cm backoff";
    }
  in
  let seed = 1 in
  let crash_times = [ 1e5; 2e5; 3e5; 4e5; 5e5 ] in
  let attempt at =
    let plan =
      {
        Fault.empty with
        Fault.crashes = [ { Fault.crash_core = 3; crash_at_ns = at } ];
      }
    in
    let res, events =
      run_shape sh ~seed ~plan:(Some plan) ~hardened:false ~collect:true
    in
    let r = Check.run_list ~liveness_budget:wedge_budget events in
    (plan, res, r)
  in
  let wedged =
    List.find_map
      (fun at ->
        let plan, res, r = attempt at in
        if
          res.Tm2c_apps.Workload.commits = 0
          && (not (Liveness.ok r.Check.liveness))
          && Lockset.ok r.Check.lockset
        then Some (at, plan, r)
        else None)
      crash_times
  in
  match wedged with
  | None ->
      Printf.printf
        "WEDGE NOT DETECTED: no crash instant in the sweep wedged the run \
         (budget %d)\n"
        wedge_budget;
      1
  | Some (at, plan, r) ->
      Printf.printf
        "wedge detected: crash at %.0fns orphans the counter read lock; zero \
         commits, liveness FAIL as expected (budget %d), run terminated at \
         the %gms horizon\n"
        at wedge_budget sh.sh_duration_ms;
      Printf.printf "  minimal repro: seed=%d plan=%s\n" seed (Fault.to_spec plan);
      Printf.printf "  repro: tm2c-sim %s --duration %g --seed %d --fault-plan \
                     '%s' --check\n"
        sh.sh_flags sh.sh_duration_ms seed (Fault.to_spec plan);
      write_file
        (Filename.concat out_dir "fuzz_wedge.txt")
        (Check.report_string r);
      (* Leases alone must un-wedge the same (seed, crash) pair:
         commits resume, at least one reclamation fired, and the run
         replays clean at the default liveness budget (Backoff_retry's
         ordinary single-core starvation stays under it). *)
      let t = make_runtime sh ~seed in
      Runtime.set_fault_plan t plan;
      Runtime.set_hardening t ~lease_ns ();
      let col = Collector.create () in
      Collector.attach col (Runtime.trace t);
      let res = sh.sh_body t ~duration_ns:(sh.sh_duration_ms *. 1e6) in
      Collector.detach (Runtime.trace t);
      let reclaimed =
        (Fault.counters (Runtime.faults t)).Fault.leases_reclaimed
      in
      let r' = Check.run (Collector.iter col) in
      if Check.passed r' && res.Tm2c_apps.Workload.commits > 0 && reclaimed > 0
      then begin
        Printf.printf
          "lease reclamation (lease-ns %g) un-wedges the same pair: %d \
           commits, %d lease(s) reclaimed, all checkers pass\n"
          lease_ns res.Tm2c_apps.Workload.commits reclaimed;
        0
      end
      else begin
        Printf.printf "LEASES DID NOT UN-WEDGE (%d commits, %d reclaimed):\n%s\n"
          res.Tm2c_apps.Workload.commits reclaimed (Check.report_string r');
        1
      end

(* The server-failure demo. The counter workload funnels every lock
   request to the one DS server owning the counter word; crash it at
   t=0.

   Leg 1 (no replication): every client wedges in its resend loop —
   zero commits, the watchdog cuts the run short, and the liveness
   monitor names the stuck cores. Leg 2 (--replicas 1): the clients
   exhaust their resend patience, bump the partition's epoch, re-route
   to the backup, and the run finishes with every checker green. Leg 3
   crashes the same server mid-run, so the backup's replica is
   non-empty at failover and the merge path is exercised. *)
let failover ~out_dir =
  let sh =
    { (List.hd shapes) with sh_name = "counter/16-scrash"; sh_duration_ms = 5.0 }
  in
  let seed = 1 in
  (* The owning server: replay the allocator (same config, same seed ⇒
     the workload's counter lands on the same address). *)
  let owner =
    let t = make_runtime sh ~seed in
    let c = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
    let dtm = Runtime.dtm_cores t in
    dtm.(System.owner_hash c (Array.length dtm))
  in
  let plan_at at =
    {
      Fault.empty with
      Fault.scrashes = [ { Fault.scrash_core = owner; scrash_at_ns = at } ];
    }
  in
  let run ~at ~replicas ~watchdog =
    let t = make_runtime sh ~seed in
    Runtime.set_fault_plan t (plan_at at);
    Runtime.set_hardening t ~timeout_ns ~lease_ns ();
    if replicas > 0 then Runtime.enable_replication t ~replicas;
    if watchdog then Runtime.enable_watchdog t ~window_ns:1e6 ~stall_windows:2;
    let col = Collector.create () in
    Collector.attach col (Runtime.trace t);
    let res = sh.sh_body t ~duration_ns:(sh.sh_duration_ms *. 1e6) in
    Collector.detach (Runtime.trace t);
    (t, res, Check.run ~stuck_after_ns (Collector.iter col))
  in
  let counters t = Fault.counters (Runtime.faults t) in
  let fail fmt = Printf.ksprintf (fun m -> Printf.printf "FAILOVER DEMO FAILED: %s\n" m; 1) fmt in
  (* Leg 1: crash at t=0, no replication — the run must wedge. *)
  let t1, r1, c1 = run ~at:0.0 ~replicas:0 ~watchdog:true in
  write_file (Filename.concat out_dir "fuzz_failover_wedge.txt") (Check.report_string c1);
  if r1.Tm2c_apps.Workload.commits > 0 then
    fail "leg 1: %d commits despite the owning server dead from t=0"
      r1.Tm2c_apps.Workload.commits
  else if not (Runtime.wedged t1) then fail "leg 1: watchdog did not trip"
  else if c1.Check.liveness.Liveness.stuck = [] then
    fail "leg 1: liveness monitor flagged no stuck core"
  else begin
    Printf.printf
      "leg 1: server %d dead at t=0 without replication wedges the run — 0 \
       commits, watchdog tripped, %d cores flagged stuck\n"
      owner
      (List.length c1.Check.liveness.Liveness.stuck);
    (* Leg 2: same crash, one replica — the run must complete. *)
    let t2, r2, c2 = run ~at:0.0 ~replicas:1 ~watchdog:true in
    let f2 = counters t2 in
    if not (Check.passed c2) then begin
      write_file (Filename.concat out_dir "fuzz_failover_witness.txt")
        (Check.report_string c2);
      fail "leg 2: checkers failed with --replicas 1:\n%s" (Check.report_string c2)
    end
    else if r2.Tm2c_apps.Workload.commits = 0 then fail "leg 2: zero commits with --replicas 1"
    else if f2.Fault.failovers = 0 then fail "leg 2: no epoch bump recorded"
    else begin
      Printf.printf
        "leg 2: with --replicas 1 the clients fail over (epoch bumps %d) and \
         finish: %d commits, all checkers green\n"
        f2.Fault.failovers r2.Tm2c_apps.Workload.commits;
      (* Leg 3: mid-run crash — the replica is warm, the merge runs. *)
      let t3, r3, c3 = run ~at:1.5e6 ~replicas:1 ~watchdog:true in
      let f3 = counters t3 in
      if not (Check.passed c3) then begin
        write_file (Filename.concat out_dir "fuzz_failover_witness.txt")
          (Check.report_string c3);
        fail "leg 3: checkers failed after mid-run failover:\n%s"
          (Check.report_string c3)
      end
      else if f3.Fault.replicated = 0 then
        fail "leg 3: no mutation was ever replicated before the crash"
      else if f3.Fault.failovers = 0 then fail "leg 3: no epoch bump recorded"
      else if r3.Tm2c_apps.Workload.commits = 0 then fail "leg 3: zero commits"
      else begin
        Printf.printf
          "leg 3: mid-run crash at 1.5ms fails over a warm replica (%d \
           mutations shipped, %d stale rejections): %d commits, all checkers \
           green\n"
          f3.Fault.replicated f3.Fault.stale_rejections
          r3.Tm2c_apps.Workload.commits;
        Printf.printf "  repro: %s\n"
          (repro_command ~replicas:1 sh ~seed ~plan:(plan_at 1.5e6));
        0
      end
    end
  end

(* --streaming: the differential gate between the online
   bounded-memory checker and the batch oracle. Per shape x seed,
   replay a heavily faulted run's history through both and require
   structurally identical verdicts; also require the streaming
   checker's serialization-graph window to stay strictly under the
   attempt count (boundedness sanity — the asymptotic flat-memory
   test lives in the test suite). *)
let streaming_smoke ~seeds ~out_dir =
  let plan =
    match
      Fault.of_spec
        "drop=0.005,dup=0.01,delay=0.02@1500,stall=0@3e5+2e5,crash=3@5e5,part=1-4@1e5+2e5"
    with
    | Ok p -> p
    | Error m -> failwith (Printf.sprintf "bad built-in streaming plan: %s" m)
  in
  let failures = ref 0 in
  List.iter
    (fun sh ->
      List.iter
        (fun seed ->
          let _, events =
            run_shape sh ~seed ~plan:(Some plan) ~hardened:true ~collect:true
          in
          let s = Stream.create () in
          List.iter (fun (now, ev) -> Stream.feed s now ev) events;
          let online = Stream.finish s in
          let batch = Check.run_list events in
          let window = Stream.peak_nodes s in
          if not (Stream.equal online (Stream.verdict_of_result batch)) then begin
            incr failures;
            Printf.printf "\nSTREAMING MISMATCH %s seed=%d plan=%s\n%!"
              sh.sh_name seed (Fault.to_spec plan);
            write_file
              (Filename.concat out_dir "fuzz_streaming.txt")
              (Printf.sprintf
                 "shape: %s\nseed: %d\nplan: %s\n\n-- online --\n%s\n-- batch \
                  --\n%s"
                 sh.sh_name seed (Fault.to_spec plan) (Stream.report_string s)
                 (Check.report_string batch))
          end
          else if online.Stream.d_attempts > 64 && window >= online.Stream.d_attempts
          then begin
            incr failures;
            Printf.printf
              "\nSTREAMING WINDOW UNBOUNDED %s seed=%d: %d live-node peak over \
               %d attempts\n%!"
              sh.sh_name seed window online.Stream.d_attempts
          end
          else
            Printf.printf
              "ok   %-24s seed=%d streaming==batch (%d events, %d attempts, \
               window %d)\n%!"
              sh.sh_name seed online.Stream.d_events online.Stream.d_attempts
              window)
        seeds)
    shapes;
  if !failures > 0 then begin
    Printf.printf "\n%d streaming failure(s); artifacts in %s\n" !failures
      out_dir;
    1
  end
  else begin
    Printf.printf
      "\nstreaming differential clean: %d shapes x %d seeds, verdicts \
       identical\n"
      (List.length shapes) (List.length seeds);
    0
  end

(* CI sweep: a mid-run DS-server crash with one replica over every
   shape; any checker failure (wedged cores included) shrinks and
   writes artifacts exactly like the ordinary matrix. Core 2 hosts a
   DS server in every shape (dedicated spreads servers on even ids). *)
let failover_smoke ~seeds ~out_dir =
  let plan =
    match Fault.of_spec "scrash=2@3e5" with
    | Ok p -> p
    | Error m -> failwith (Printf.sprintf "bad built-in failover plan: %s" m)
  in
  let failures = ref 0 in
  List.iter
    (fun sh ->
      List.iter
        (fun seed ->
          match failure_of_run ~replicas:1 sh ~seed ~plan with
          | None ->
              Printf.printf "ok   %-24s seed=%d replicas=1 plan=%s\n%!"
                sh.sh_name seed (Fault.to_spec plan)
          | Some r ->
              incr failures;
              report_failure ~replicas:1 sh ~seed ~plan ~out_dir r)
        seeds)
    shapes;
  if !failures > 0 then begin
    Printf.printf "\n%d failover failure(s); artifacts in %s\n" !failures out_dir;
    1
  end
  else begin
    Printf.printf "\nfailover clean: %d shapes x %d seeds, scrash plan %s\n"
      (List.length shapes) (List.length seeds) (Fault.to_spec plan);
    0
  end

let () =
  let seeds = ref 2 and smoke = ref false and do_wedge = ref false in
  let do_failover = ref false and do_failover_smoke = ref false in
  let do_streaming = ref false in
  let out_dir = ref "." in
  Arg.parse
    [
      ("--seeds", Arg.Set_int seeds, "N  seeds per shape (default 2)");
      ("--smoke", Arg.Set smoke, " reduced plan matrix for CI");
      ("--wedge", Arg.Set do_wedge, " run the wedged-configuration detection demo");
      ( "--failover",
        Arg.Set do_failover,
        " run the DS-server crash / replicated-failover demo" );
      ( "--failover-smoke",
        Arg.Set do_failover_smoke,
        " CI sweep: mid-run server crash with one replica, all shapes" );
      ( "--streaming",
        Arg.Set do_streaming,
        " differential gate: streaming checker verdict == batch oracle" );
      ("--out-dir", Arg.Set_string out_dir, "DIR  where failure artifacts go");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz [--seeds N] [--smoke] [--wedge] [--failover] [--failover-smoke] \
     [--streaming] [--out-dir DIR]";
  if !do_wedge then exit (wedge ~out_dir:!out_dir)
  else if !do_failover then exit (failover ~out_dir:!out_dir)
  else if !do_failover_smoke then
    exit
      (failover_smoke ~seeds:(List.init !seeds (fun i -> 41 + i))
         ~out_dir:!out_dir)
  else if !do_streaming then
    exit
      (streaming_smoke ~seeds:(List.init !seeds (fun i -> 41 + i))
         ~out_dir:!out_dir)
  else begin
    let plans = plan_matrix ~smoke:!smoke in
    let seed_list = List.init !seeds (fun i -> 41 + i) in
    let failures =
      List.fold_left
        (fun acc sh -> acc + fuzz_shape sh ~seeds:seed_list ~plans ~out_dir:!out_dir)
        0 shapes
    in
    if failures > 0 then begin
      Printf.printf "\n%d fuzz failure(s); artifacts in %s\n" failures !out_dir;
      exit 1
    end
    else Printf.printf "\nfuzz clean: %d shapes x %d seeds x %d plans\n"
        (List.length shapes) !seeds (List.length plans)
  end
