(* Open-loop overload benchmark (the @overload alias): the capacity
   curve — goodput, shed rate and end-to-end tail latency across
   offered-load multiples of measured saturation, with and without
   admission control — written to BENCH_overload.json.

   Unlike the @engine/@baseline host-speed gates, every figure here is
   virtual-time and therefore deterministic: the baseline comparison
   is exact across machines (a committed cell changes only when the
   code changes its behavior). Gates:
   - absolute: with admission control and a bounded retry budget,
     goodput at 2x saturation must hold >= 70% of the protected
     sweep's peak, and its p999 end-to-end latency must stay within
     4x the 1x-protected p999 (bounded tail); the unprotected 2x cell
     must document collapse (goodput below half the protected one);
   - relative (--baseline FILE --gate-pct P): any cell's goodput_ms
     more than P percent below the same-named committed cell fails;
   - checked leg: an overload x fault-plan run replayed through the
     streaming checker stack must end green with nonzero goodput —
     load shedding degrades throughput, never consistency. *)

open Tm2c_core
open Tm2c_apps
module Json = Tm2c_harness.Json
module Exp = Tm2c_harness.Exp
module F = Tm2c_harness.Fig_overload

let scale = { Exp.quick with Exp.label = "overload-bench"; window_ns = 4e6 }

type measured = { name : string; multiple : float; protected : bool; cell : F.cell }

let measured_json m =
  let o = m.cell.F.env.System.overload in
  Json.Obj
    [
      ("name", Json.String m.name);
      ("multiple", Json.Float m.multiple);
      ("protected", Json.Bool m.protected);
      ("goodput_ms", Json.Float m.cell.F.goodput_ms);
      ("shed_pct", Json.Float m.cell.F.shed_pct);
      ("p99_us", Json.Float m.cell.F.p99_us);
      ("p999_us", Json.Float m.cell.F.p999_us);
      ("horizon_hit", Json.Bool m.cell.F.horizon);
      ("offered", Json.Int o.System.ol_offered);
      ("admitted", Json.Int o.System.ol_admitted);
      ("shed", Json.Int o.System.ol_shed);
      ("executed", Json.Int o.System.ol_executed);
      ("goodput", Json.Int o.System.ol_goodput);
      ("wasted", Json.Int o.System.ol_wasted);
      ("retries", Json.Int o.System.ol_retries);
    ]

let load_runs path =
  let j = Json.of_file path in
  match Json.member "runs" j with
  | Some (Json.List runs) ->
      List.filter_map
        (fun r ->
          match
            ( Option.bind (Json.member "name" r) Json.to_string_opt,
              Option.bind (Json.member "goodput_ms" r) Json.to_float_opt )
          with
          | Some n, Some g -> Some (n, g)
          | _ -> None)
        runs
  | _ -> failwith (Printf.sprintf "%s: no \"runs\" array" path)

(* Overload under faults: a lossy, jittery interconnect with hardening
   on, full admission control, the streaming checker riding the trace.
   Consistency must survive what the load shedder sheds around. *)
let checked_leg ~sat =
  let t = Runtime.create (Exp.config ~total:F.total ()) in
  (match Tm2c_noc.Fault.of_spec "drop=0.005,dup=0.01,delay=0.02@1500" with
  | Ok p -> Runtime.set_fault_plan t p
  | Error m -> failwith m);
  Runtime.set_hardening t ~timeout_ns:60_000.0 ~lease_ns:250_000.0 ();
  let s = Tm2c_check.Stream.create () in
  Tm2c_check.Stream.attach s (Runtime.trace t);
  let deadline_ms = Openloop.default.Openloop.client_deadline_ns /. 1e6 in
  let capacity = max 2 (int_of_float (sat *. deadline_ms /. 2.0)) in
  let ol =
    {
      Openloop.default with
      Openloop.arrival = Openloop.Poisson { rate_per_ms = 2.0 *. sat };
      window_ns = scale.Exp.window_ns /. 2.0;
      drain_ns = scale.Exp.window_ns /. 8.0;
      policy =
        Admission.Token_bucket
          { capacity; rate_per_ms = 0.8 *. sat; burst = float_of_int capacity };
      retry_budget = 3;
    }
  in
  let _ = Openloop.drive t ol in
  Tm2c_check.Collector.detach (Runtime.trace t);
  let v = Tm2c_check.Stream.finish s in
  let failures = Tm2c_check.Stream.n_failures v in
  if failures > 0 then
    Printf.eprintf "overload checked leg FAILED:\n%s%!"
      (Tm2c_check.Stream.report_string s);
  let o = (Runtime.env t).System.overload in
  let goodput_ms = float_of_int o.System.ol_goodput /. (ol.Openloop.window_ns /. 1e6) in
  (failures, goodput_ms)

let () =
  let out = ref "BENCH_overload.json" in
  let baseline = ref None in
  let gate_pct = ref 10.0 in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse rest
    | "--gate-pct" :: v :: rest ->
        gate_pct := float_of_string v;
        parse rest
    | a :: _ -> failwith (Printf.sprintf "overload: unknown argument %s" a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sat = F.probe_saturation scale in
  Printf.printf "measured saturation: %.1f arrivals/ms/core\n%!" sat;
  let sweep =
    List.concat_map
      (fun m ->
        let arrival = Openloop.Poisson { rate_per_ms = m *. sat } in
        List.map
          (fun protected ->
            {
              name = Printf.sprintf "x%g_%s" m (if protected then "adm" else "raw");
              multiple = m;
              protected;
              cell = F.run_cell scale ~sat ~protected ~arrival;
            })
          [ false; true ])
      [ 0.5; 1.0; 1.5; 2.0 ]
  in
  let burst =
    Openloop.Bursty
      {
        base_per_ms = 0.8 *. sat;
        burst_per_ms = 3.0 *. sat;
        burst_start_ns = scale.Exp.window_ns /. 4.0;
        burst_end_ns = scale.Exp.window_ns /. 2.0;
      }
  in
  let results =
    sweep
    @ List.map
        (fun protected ->
          {
            name = (if protected then "burst_adm" else "burst_raw");
            multiple = 3.0;
            protected;
            cell = F.run_cell scale ~sat ~protected ~arrival:burst;
          })
        [ false; true ]
  in
  List.iter
    (fun m ->
      Printf.printf
        "%-10s %-5s  %7.1f good/ms  %5.1f%% shed  p99 %7.1fus  p999 %7.1fus%s\n%!"
        m.name
        (if m.protected then "adm" else "raw")
        m.cell.F.goodput_ms m.cell.F.shed_pct m.cell.F.p99_us m.cell.F.p999_us
        (if m.cell.F.horizon then "  [backlog at horizon]" else ""))
    results;
  let find n = List.find (fun m -> m.name = n) results in
  let protected_peak =
    List.fold_left
      (fun acc m -> if m.protected then Float.max acc m.cell.F.goodput_ms else acc)
      0.0 results
  in
  let adm2 = find "x2_adm" and raw2 = find "x2_raw" and adm1 = find "x1_adm" in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let ratio_2x =
    if protected_peak > 0.0 then adm2.cell.F.goodput_ms /. protected_peak else 0.0
  in
  if ratio_2x < 0.7 then
    fail "protected goodput at 2x is %.0f%% of peak (need >= 70%%)"
      (100.0 *. ratio_2x);
  if adm2.cell.F.p999_us > 4.0 *. adm1.cell.F.p999_us then
    fail "protected p999 at 2x (%.0fus) blew past 4x the 1x tail (%.0fus)"
      adm2.cell.F.p999_us adm1.cell.F.p999_us;
  if raw2.cell.F.goodput_ms >= 0.5 *. adm2.cell.F.goodput_ms then
    fail
      "unprotected 2x goodput (%.1f/ms) did not collapse vs protected (%.1f/ms) \
       — the ablation lost its teeth"
      raw2.cell.F.goodput_ms adm2.cell.F.goodput_ms;
  let check_failures, checked_goodput = checked_leg ~sat in
  if check_failures > 0 then fail "checked overload x fault leg: %d checker failure(s)" check_failures;
  if checked_goodput <= 0.0 then fail "checked overload x fault leg made no goodput";
  (* Exact-by-determinism regression gate against the committed file. *)
  (match !baseline with
  | None -> ()
  | Some path ->
      let committed = load_runs path in
      List.iter
        (fun m ->
          match List.assoc_opt m.name committed with
          | Some g when g > 0.0 ->
              let drop = (g -. m.cell.F.goodput_ms) /. g *. 100.0 in
              if drop > !gate_pct then
                fail "%s: %.1f good/ms is %.1f%% below baseline %.1f" m.name
                  m.cell.F.goodput_ms drop g
          | _ -> ())
        results);
  Json.to_file !out
    (Json.Obj
       [
         ("schema_version", Json.Int 1);
         ( "workload",
           Json.String
             "open-loop Poisson/bursty arrivals, Zipf(0.9) keys over a 256-bucket \
              hash table, 10% elastic scans; 16-core SCC dedicated, FairCM, lazy; \
              protected = token-bucket admission at 0.8x measured saturation + \
              3-retry budget with deadline propagation, raw = unbounded queues + \
              unbounded retries" );
         ("saturation_per_ms_core", Json.Float sat);
         ("window_ms", Json.Float (scale.Exp.window_ns /. 1e6));
         ("runs", Json.List (List.map measured_json results));
         ("protected_peak_goodput_ms", Json.Float protected_peak);
         ("goodput_2x_over_peak", Json.Float ratio_2x);
         ( "checked",
           Json.Obj
             [
               ("failures", Json.Int check_failures);
               ("goodput_ms", Json.Float checked_goodput);
               ("plan", Json.String "drop=0.005,dup=0.01,delay=0.02@1500");
             ] );
       ]);
  Printf.printf "wrote %s\n" !out;
  match !failures with
  | [] -> ()
  | fs ->
      List.iter (fun f -> Printf.eprintf "overload gate FAILED: %s\n" f) fs;
      exit 1
