(* Engine raw-speed benchmark (the @engine alias): host events/sec on
   a fixed seeded workload, written to BENCH_engine.json.

   The cells are chosen to stress the discrete-event engine, not the
   TM protocol: message-bound bank transfers and hash-table operations
   on the 48-core SCC, plus the same two shapes on a 512-core
   SCC-parameter mesh (the scale the engine overhaul exists to unlock).
   Everything is seeded and deterministic: reps must agree on commits
   bit-for-bit, and the recorded "events" figure counts *logical*
   events — events popped from the event set plus delays elided by the
   scheduler fast path — so it is invariant under engine-internal
   optimizations and comparable across engine versions.

   Modes:
   - default: run all cells, write the JSON (--out FILE, default
     BENCH_engine.json), print a table;
   - --before FILE: embed FILE's runs as the "before" side and compute
     per-cell speedups (used once, to record the pre-overhaul engine);
   - --baseline FILE --gate-pct P: after running, compare each cell's
     events/sec against the same-named cell in FILE's "runs" and exit
     nonzero if any regresses by more than P percent (the CI gate). *)

open Tm2c_core
open Tm2c_apps
module Json = Tm2c_harness.Json
module Exp = Tm2c_harness.Exp

let mesh512 = Tm2c_noc.Platform.scc_mesh ~cols:16 ~rows:16

type cell = {
  name : string;
  platform : Tm2c_noc.Platform.t;
  total : int;
  service : int;
  duration_ns : float;
  reps : int;
  setup : Runtime.t -> Exp.mix;
}

let bank_shape t =
  let bank = Bank.create t ~accounts:512 ~initial:1000 in
  fun _core ctx prng () ->
    let src = Tm2c_engine.Prng.int prng 512
    and dst = Tm2c_engine.Prng.int prng 512 in
    if src <> dst then Bank.tx_transfer ctx bank ~src ~dst ~amount:1

let ht_shape t =
  let ht = Hashtable.create t ~n_buckets:64 in
  let n = 4 * 64 in
  let range = 2 * n in
  Hashtable.populate ht (Runtime.fork_prng t) ~n ~key_range:range;
  Exp.ht_mix ht ~updates:20 ~moves:0 ~payload:0 ~range

let cells =
  [
    {
      name = "bank_48";
      platform = Tm2c_noc.Platform.scc;
      total = 48;
      service = 24;
      duration_ns = 40e6;
      reps = 3;
      setup = bank_shape;
    };
    {
      name = "hashtable_48";
      platform = Tm2c_noc.Platform.scc;
      total = 48;
      service = 24;
      duration_ns = 40e6;
      reps = 3;
      setup = ht_shape;
    };
    {
      name = "bank_512";
      platform = mesh512;
      total = 512;
      service = 256;
      duration_ns = 8e6;
      reps = 2;
      setup = bank_shape;
    };
    {
      name = "hashtable_512";
      platform = mesh512;
      total = 512;
      service = 256;
      duration_ns = 8e6;
      reps = 2;
      setup = ht_shape;
    };
  ]

type measured = {
  cell : cell;
  events : int;  (* logical events: processed + elided *)
  host_best_s : float;
  commits : int;
  aborts : int;
  messages : int;
}

let run_once c =
  let cfg =
    {
      Runtime.default_config with
      platform = c.platform;
      total_cores = c.total;
      service_cores = c.service;
      seed = 42;
    }
  in
  let t = Runtime.create cfg in
  let mix = c.setup t in
  let t0 = Unix.gettimeofday () in
  let r = Workload.drive t ~duration_ns:c.duration_ns mix in
  let host = Unix.gettimeofday () -. t0 in
  let logical = r.Workload.events + Tm2c_engine.Sim.elided (Runtime.sim t) in
  (r, logical, host)

let measure c =
  let result = ref None and host = ref infinity in
  for _ = 1 to c.reps do
    let r, logical, h = run_once c in
    (match !result with
    | Some (prev, prev_logical) ->
        if prev.Workload.commits <> r.Workload.commits || prev_logical <> logical
        then failwith (Printf.sprintf "non-deterministic cell %s" c.name)
    | None -> ());
    result := Some (r, logical);
    host := Float.min !host h
  done;
  let r, logical = Option.get !result in
  {
    cell = c;
    events = logical;
    host_best_s = !host;
    commits = r.Workload.commits;
    aborts = r.Workload.aborts;
    messages = r.Workload.messages;
  }

let events_per_sec m =
  if m.host_best_s > 0.0 then float_of_int m.events /. m.host_best_s else 0.0

let measured_json m =
  Json.Obj
    [
      ("name", Json.String m.cell.name);
      ("platform", Json.String m.cell.platform.Tm2c_noc.Platform.name);
      ("cores", Json.Int m.cell.total);
      ("service_cores", Json.Int m.cell.service);
      ("virtual_ms", Json.Float (m.cell.duration_ns /. 1e6));
      ("reps", Json.Int m.cell.reps);
      ("events", Json.Int m.events);
      ("host_best_s", Json.Float m.host_best_s);
      ("events_per_sec", Json.Float (events_per_sec m));
      ("commits", Json.Int m.commits);
      ("aborts", Json.Int m.aborts);
      ("messages", Json.Int m.messages);
    ]

(* Pull (name, events_per_sec) pairs out of a previously written
   BENCH_engine.json's "runs" array. *)
let load_runs path =
  let j = Json.of_file path in
  match Json.member "runs" j with
  | Some (Json.List runs) ->
      List.filter_map
        (fun r ->
          match
            ( Option.bind (Json.member "name" r) Json.to_string_opt,
              Option.bind (Json.member "events_per_sec" r) Json.to_float_opt )
          with
          | Some n, Some eps -> Some (n, (eps, r))
          | _ -> None)
        runs
  | _ -> failwith (Printf.sprintf "%s: no \"runs\" array" path)

let () =
  let out = ref "BENCH_engine.json" in
  let before = ref None in
  let baseline = ref None in
  let gate_pct = ref 10.0 in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--before" :: v :: rest ->
        before := Some v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse rest
    | "--gate-pct" :: v :: rest ->
        gate_pct := float_of_string v;
        parse rest
    | a :: _ -> failwith (Printf.sprintf "engine: unknown argument %s" a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let results = List.map measure cells in
  List.iter
    (fun m ->
      Printf.printf
        "%-14s %4d cores  %7.2f ms virtual  %9d events  %6.3fs host  %10.0f events/s  (%d commits)\n%!"
        m.cell.name m.cell.total
        (m.cell.duration_ns /. 1e6)
        m.events m.host_best_s (events_per_sec m) m.commits)
    results;
  let fields =
    ref
      [
        ("schema_version", Json.Int 1);
        ( "workload",
          Json.String
            "seeded bank transfers (512 accounts) and hashtable 20% updates \
             (64 buckets, load 4), FairCM, lazy, dedicated; SCC 48 cores and \
             SCC-mesh 512 cores" );
        ("runs", Json.List (List.map measured_json results));
      ]
  in
  (* Embed the pre-overhaul numbers and per-cell speedups. *)
  let failures = ref [] in
  (match !before with
  | None -> ()
  | Some path ->
      let prior = load_runs path in
      let speedups =
        List.filter_map
          (fun m ->
            match List.assoc_opt m.cell.name prior with
            | Some (eps_before, raw) when eps_before > 0.0 ->
                Some (m.cell.name, events_per_sec m /. eps_before, raw)
            | _ -> None)
          results
      in
      let before_json = List.map (fun (_, _, raw) -> raw) speedups in
      let speedup_json =
        List.map (fun (n, s, _) -> (n, Json.Float s)) speedups
      in
      let gate_48 =
        List.filter (fun (n, _, _) -> String.length n >= 3
                     && String.sub n (String.length n - 3) 3 = "_48") speedups
      in
      let min_48 =
        List.fold_left (fun acc (_, s, _) -> Float.min acc s) infinity gate_48
      in
      if min_48 < 2.0 then
        failures :=
          Printf.sprintf "48-core speedup %.2fx below the required 2x" min_48
          :: !failures;
      fields :=
        !fields
        @ [
            ("before", Json.List before_json);
            ("speedup", Json.Obj speedup_json);
            ( "min_speedup_48",
              if gate_48 = [] then Json.Null else Json.Float min_48 );
          ]);
  (* CI regression gate against the committed baseline. *)
  (match !baseline with
  | None -> ()
  | Some path ->
      let committed = load_runs path in
      List.iter
        (fun m ->
          match List.assoc_opt m.cell.name committed with
          | Some (eps_committed, _) when eps_committed > 0.0 ->
              let eps = events_per_sec m in
              let drop = (eps_committed -. eps) /. eps_committed *. 100.0 in
              if drop > !gate_pct then
                failures :=
                  Printf.sprintf "%s: %.0f events/s is %.1f%% below baseline %.0f"
                    m.cell.name eps drop eps_committed
                  :: !failures
          | _ -> ())
        results);
  Json.to_file !out (Json.Obj !fields);
  Printf.printf "wrote %s\n" !out;
  match !failures with
  | [] -> ()
  | fs ->
      List.iter (fun f -> Printf.eprintf "engine gate FAILED: %s\n" f) fs;
      exit 1
