(* Observability-overhead gate (the @baseline alias): run the same
   bank workload with every observability layer off and then on
   (tracing + phase profiling + time-series sampling), and write the
   comparison to BENCH_overhead.json.

   Two checks, and the exit status reflects both:

   - Virtual-time neutrality (hard): observability must not perturb
     the simulation — histograms, spans, the trace ring and the
     sampler all consume zero virtual time, so the committed
     throughput must agree within 2% (deterministically it is exactly
     equal; the tolerance keeps the gate meaningful if that ever
     changes).
   - Host-time overhead (soft ceiling): enabling everything may cost
     real time, but not more than [host_ratio_threshold] x. Host
     timings are min-of-3 to shed scheduler noise.

   The gate also measures the replicated lock service the same way:
   [--replicas 0] must reproduce the baseline bit-for-bit (hard, the
   determinism contract), while [--replicas 1] ships every lock-table
   mutation to a backup over the NoC — that traffic is real virtual
   work, so its throughput delta is *reported*, not gated. *)

open Tm2c_core
open Tm2c_apps

let duration_ns = 5e6

let reps = 3

let virtual_pct_threshold = 2.0

let host_ratio_threshold = 5.0

let bench_once ?(replicas = 0) ~observe () =
  let cfg =
    {
      Runtime.platform = Tm2c_noc.Platform.scc;
      total_cores = 16;
      service_cores = 8;
      deployment = Runtime.Dedicated;
      policy = Cm.Fair_cm;
      wmode = Tx.Lazy;
      batching = true;
      max_skew_ns = 3_000.0;
      seed = 42;
      mem_words = 1 lsl 20;
    }
  in
  let t = Runtime.create cfg in
  if replicas > 0 then Runtime.enable_replication t ~replicas;
  if observe then begin
    Runtime.enable_tracing t;
    Runtime.enable_profiling t;
    Runtime.enable_timeseries t ~window_ns:(duration_ns /. 16.0)
  end;
  let accounts = 256 in
  let bank = Bank.create t ~accounts ~initial:1000 in
  let t0 = Unix.gettimeofday () in
  let r =
    Workload.drive t ~duration_ns (fun _core ctx prng () ->
        let src = Tm2c_engine.Prng.int prng accounts
        and dst = Tm2c_engine.Prng.int prng accounts in
        Bank.tx_transfer ctx bank ~src ~dst ~amount:1)
  in
  (r, Unix.gettimeofday () -. t0)

let best ?(replicas = 0) ~observe () =
  let result = ref None and host = ref infinity in
  for _ = 1 to reps do
    let r, h = bench_once ~replicas ~observe () in
    (match !result with
    | Some (prev : Workload.result) when prev.Workload.commits <> r.Workload.commits
      ->
        failwith "non-deterministic benchmark run"
    | _ -> ());
    result := Some r;
    host := Float.min !host h
  done;
  (Option.get !result, !host)

let side_json (r : Workload.result) host =
  Tm2c_harness.Json.Obj
    [
      ("commits", Tm2c_harness.Json.Int r.Workload.commits);
      ("aborts", Tm2c_harness.Json.Int r.Workload.aborts);
      ("throughput_ops_ms", Tm2c_harness.Json.Float r.Workload.throughput_ops_ms);
      ("host_best_s", Tm2c_harness.Json.Float host);
    ]

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_overhead.json" in
  let off, host_off = best ~observe:false () in
  let on, host_on = best ~observe:true () in
  (* Replication legs: replicas = 0 is just the baseline again and
     must match it exactly (hard — the enable-nothing path sends no
     replica traffic, so the schedule is bit-for-bit the same);
     replicas = 1 does real NoC work and its delta is reported. *)
  let repl_off, _ = best ~replicas:0 ~observe:false () in
  let repl_on, host_repl = best ~replicas:1 ~observe:false () in
  let thr_off = off.Workload.throughput_ops_ms
  and thr_on = on.Workload.throughput_ops_ms
  and thr_repl = repl_on.Workload.throughput_ops_ms in
  let virtual_delta_pct =
    if thr_off > 0.0 then Float.abs (thr_on -. thr_off) /. thr_off *. 100.0
    else 0.0
  in
  let replication_delta_pct =
    if thr_off > 0.0 then (thr_off -. thr_repl) /. thr_off *. 100.0 else 0.0
  in
  let host_ratio = if host_off > 0.0 then host_on /. host_off else 1.0 in
  let replication_off_exact = repl_off.Workload.commits = off.Workload.commits in
  let pass =
    virtual_delta_pct <= virtual_pct_threshold
    && host_ratio <= host_ratio_threshold
    && replication_off_exact
  in
  let open Tm2c_harness in
  Json.to_file path
    (Json.Obj
       [
         ("schema_version", Json.Int 2);
         ( "benchmark",
           Json.String
             "bank transfers, SCC, 16 cores (8 app / 8 DTM), FairCM, lazy, 5ms \
              virtual" );
         ("reps", Json.Int reps);
         ("observability_off", side_json off host_off);
         ( "observability_on_layers",
           Json.List
             [
               Json.String "tracing";
               Json.String "phase profiling";
               Json.String "timeseries";
             ] );
         ("observability_on", side_json on host_on);
         ("virtual_delta_pct", Json.Float virtual_delta_pct);
         ("virtual_pct_threshold", Json.Float virtual_pct_threshold);
         ("host_ratio", Json.Float host_ratio);
         ("host_ratio_threshold", Json.Float host_ratio_threshold);
         ("replication_off_exact", Json.Bool replication_off_exact);
         ("replication_on", side_json repl_on host_repl);
         ("replication_delta_pct", Json.Float replication_delta_pct);
         ("pass", Json.Bool pass);
       ]);
  Printf.printf
    "observability off: %d commits, %.2f ops/ms, %.3fs host\n\
     observability on:  %d commits, %.2f ops/ms, %.3fs host\n\
     virtual throughput delta %.4f%% (threshold %.1f%%), host ratio %.2fx \
     (threshold %.1fx)\n\
     replication off:   %d commits (%s baseline)\n\
     replication on:    %d commits, %.2f ops/ms — %.2f%% virtual overhead \
     (reported, not gated)\n\
     wrote %s\n"
    off.Workload.commits thr_off host_off on.Workload.commits thr_on host_on
    virtual_delta_pct virtual_pct_threshold host_ratio host_ratio_threshold
    repl_off.Workload.commits
    (if replication_off_exact then "bit-for-bit equal to" else "DIVERGED from")
    repl_on.Workload.commits thr_repl replication_delta_pct path;
  if not pass then begin
    prerr_endline "overhead gate FAILED";
    exit 1
  end
