(* Observability-overhead gate (the @baseline alias): run the same
   bank workload with every observability layer off and then on
   (tracing + phase profiling + time-series sampling), and write the
   comparison to BENCH_overhead.json.

   Checks, and the exit status reflects all of them:

   - Virtual-time neutrality (hard): observability must not perturb
     the simulation — sketches, spans, the trace ring and the
     sampler all consume zero virtual time, so the committed
     throughput must agree within 2% (deterministically it is exactly
     equal; the tolerance keeps the gate meaningful if that ever
     changes).
   - Host-time overhead (soft ceiling): enabling everything may cost
     real time, but not more than [host_ratio_threshold] x. Host
     timings are min-of-3 to shed scheduler noise.
   - Flight-recorder leg: the always-on quantile sketches plus the
     recorder (windowed snapshots into an in-memory sink) plus the
     host self-profiler, with tracing/profiling/timeseries left off —
     the "always on in production" configuration. Its commits must
     equal the bare run exactly (hard: snapshot ticks only read), its
     host ratio must stay under [recorder_ratio_threshold], and when
     [--baseline] points at the committed BENCH_overhead.json the
     ratio must not regress by more than [--gate-pct] percent (CI).

   The gate also measures the replicated lock service the same way:
   [--replicas 0] must reproduce the baseline bit-for-bit (hard, the
   determinism contract), while [--replicas 1] ships every lock-table
   mutation to a backup over the NoC — that traffic is real virtual
   work, so its throughput delta is *reported*, not gated. *)

open Tm2c_core
open Tm2c_apps

let duration_ns = 5e6

let reps = 3

let virtual_pct_threshold = 2.0

let host_ratio_threshold = 5.0

(* The recorder leg stays cheap: snapshot assembly is O(windows), and
   the sketches' add path is O(1); 1.10x would already be suspicious,
   but host ratios on loaded CI machines wobble, hence the headroom. *)
let recorder_ratio_threshold = 2.0

let bench_once ?(replicas = 0) ?(recorder = false) ~observe () =
  let cfg =
    {
      Runtime.platform = Tm2c_noc.Platform.scc;
      total_cores = 16;
      service_cores = 8;
      deployment = Runtime.Dedicated;
      policy = Cm.Fair_cm;
      wmode = Tx.Lazy;
      batching = true;
      max_skew_ns = 3_000.0;
      seed = 42;
      mem_words = 1 lsl 20;
    }
  in
  let t = Runtime.create cfg in
  if replicas > 0 then Runtime.enable_replication t ~replicas;
  if observe then begin
    Runtime.enable_tracing t;
    Runtime.enable_profiling t;
    Runtime.enable_timeseries t ~window_ns:(duration_ns /. 16.0)
  end;
  let sink = Buffer.create 4096 in
  if recorder then begin
    Runtime.enable_recorder t ~window_ns:(duration_ns /. 16.0)
      ~out:(Buffer.add_string sink) ();
    Runtime.enable_self_profile t ~clock:Unix.gettimeofday
  end;
  let accounts = 256 in
  let bank = Bank.create t ~accounts ~initial:1000 in
  let t0 = Unix.gettimeofday () in
  let r =
    Workload.drive t ~duration_ns (fun _core ctx prng () ->
        let src = Tm2c_engine.Prng.int prng accounts
        and dst = Tm2c_engine.Prng.int prng accounts in
        Bank.tx_transfer ctx bank ~src ~dst ~amount:1)
  in
  let host = Unix.gettimeofday () -. t0 in
  if recorder then begin
    (* The stream really was produced and properly terminated. *)
    let s = Buffer.contents sink in
    if Buffer.length sink = 0 then
      failwith
        (Printf.sprintf
           "recorder leg produced no snapshots (replicas=%d, duration=%.0f ns)"
           replicas duration_ns);
    let eof = "# eof\n" in
    if
      String.length s < String.length eof
      || String.sub s (String.length s - String.length eof) (String.length eof)
         <> eof
    then
      failwith
        (Printf.sprintf
           "recorder stream not eof-terminated: %d bytes ending %S"
           (String.length s)
           (String.sub s
              (max 0 (String.length s - 16))
              (min 16 (String.length s))))
  end;
  (r, host, t)

let best ?(replicas = 0) ?(recorder = false) ~observe () =
  let result = ref None and host = ref infinity and last = ref None in
  for _ = 1 to reps do
    let r, h, t = bench_once ~replicas ~recorder ~observe () in
    (match !result with
    | Some (prev : Workload.result) when prev.Workload.commits <> r.Workload.commits
      ->
        failwith
          (Printf.sprintf
             "non-deterministic benchmark run: %d commits, then %d on a repeat \
              of the same configuration"
             prev.Workload.commits r.Workload.commits)
    | _ -> ());
    result := Some r;
    last := Some t;
    host := Float.min !host h
  done;
  (Option.get !result, !host, Option.get !last)

let side_json (r : Workload.result) host =
  Tm2c_harness.Json.Obj
    [
      ("commits", Tm2c_harness.Json.Int r.Workload.commits);
      ("aborts", Tm2c_harness.Json.Int r.Workload.aborts);
      ("throughput_ops_ms", Tm2c_harness.Json.Float r.Workload.throughput_ops_ms);
      ("host_best_s", Tm2c_harness.Json.Float host);
    ]

let () =
  let out = ref "BENCH_overhead.json" in
  let baseline = ref None in
  let gate_pct = ref 10.0 in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse rest
    | "--gate-pct" :: v :: rest ->
        gate_pct := float_of_string v;
        parse rest
    | a :: rest when String.length a > 0 && a.[0] <> '-' ->
        (* Back-compat: a bare path is the output file. *)
        out := a;
        parse rest
    | a :: _ -> failwith (Printf.sprintf "overhead: unknown argument %s" a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let off, host_off, _ = best ~observe:false () in
  let on, host_on, _ = best ~observe:true () in
  let rec_r, host_rec, rec_t = best ~recorder:true ~observe:false () in
  (* Replication legs: replicas = 0 is just the baseline again and
     must match it exactly (hard — the enable-nothing path sends no
     replica traffic, so the schedule is bit-for-bit the same);
     replicas = 1 does real NoC work and its delta is reported. *)
  let repl_off, _, _ = best ~replicas:0 ~observe:false () in
  let repl_on, host_repl, _ = best ~replicas:1 ~observe:false () in
  let thr_off = off.Workload.throughput_ops_ms
  and thr_on = on.Workload.throughput_ops_ms
  and thr_repl = repl_on.Workload.throughput_ops_ms in
  let virtual_delta_pct =
    if thr_off > 0.0 then Float.abs (thr_on -. thr_off) /. thr_off *. 100.0
    else 0.0
  in
  let replication_delta_pct =
    if thr_off > 0.0 then (thr_off -. thr_repl) /. thr_off *. 100.0 else 0.0
  in
  let host_ratio = if host_off > 0.0 then host_on /. host_off else 1.0 in
  let recorder_ratio = if host_off > 0.0 then host_rec /. host_off else 1.0 in
  let recorder_virtual_exact = rec_r.Workload.commits = off.Workload.commits in
  let replication_off_exact = repl_off.Workload.commits = off.Workload.commits in
  let profile = Runtime.self_profile rec_t in
  let failures = ref [] in
  if virtual_delta_pct > virtual_pct_threshold then
    failures :=
      Printf.sprintf "virtual throughput delta %.4f%% > %.1f%%"
        virtual_delta_pct virtual_pct_threshold
      :: !failures;
  if host_ratio > host_ratio_threshold then
    failures :=
      Printf.sprintf "host ratio %.2fx > %.1fx" host_ratio host_ratio_threshold
      :: !failures;
  if not recorder_virtual_exact then
    failures :=
      Printf.sprintf "recorder leg diverged: %d commits vs %d bare"
        rec_r.Workload.commits off.Workload.commits
      :: !failures;
  if recorder_ratio > recorder_ratio_threshold then
    failures :=
      Printf.sprintf "recorder host ratio %.2fx > %.1fx" recorder_ratio
        recorder_ratio_threshold
      :: !failures;
  if not replication_off_exact then
    failures := "replication off diverged from baseline" :: !failures;
  (* CI regression gate against the committed numbers: the recorder's
     host-overhead *ratio* (self-relative, so it transfers across
     machines far better than absolute seconds) must not regress by
     more than --gate-pct. *)
  (match !baseline with
  | None -> ()
  | Some path ->
      let open Tm2c_harness in
      let j = Json.of_file path in
      (match
         Option.bind (Json.member "recorder_ratio" j) Json.to_float_opt
       with
      | Some committed when committed > 0.0 ->
          let regress = (recorder_ratio -. committed) /. committed *. 100.0 in
          if regress > !gate_pct then
            failures :=
              Printf.sprintf
                "recorder ratio %.3fx is %.1f%% above committed baseline %.3fx \
                 (gate %.1f%%)"
                recorder_ratio regress committed !gate_pct
              :: !failures
      | _ ->
          (* A pre-v3 baseline has no recorder leg; nothing to gate. *)
          ()));
  let pass = !failures = [] in
  let open Tm2c_harness in
  Json.to_file !out
    (Json.Obj
       [
         (* v3: the flight-recorder leg (recorder + self-profiler on a
            bare run) with its own exactness gate and host ratio. *)
         ("schema_version", Json.Int 3);
         ( "benchmark",
           Json.String
             "bank transfers, SCC, 16 cores (8 app / 8 DTM), FairCM, lazy, 5ms \
              virtual" );
         ("reps", Json.Int reps);
         ("observability_off", side_json off host_off);
         ( "observability_on_layers",
           Json.List
             [
               Json.String "tracing";
               Json.String "phase profiling";
               Json.String "timeseries";
             ] );
         ("observability_on", side_json on host_on);
         ("virtual_delta_pct", Json.Float virtual_delta_pct);
         ("virtual_pct_threshold", Json.Float virtual_pct_threshold);
         ("host_ratio", Json.Float host_ratio);
         ("host_ratio_threshold", Json.Float host_ratio_threshold);
         ("recorder_on", side_json rec_r host_rec);
         ("recorder_virtual_exact", Json.Bool recorder_virtual_exact);
         ("recorder_ratio", Json.Float recorder_ratio);
         ("recorder_ratio_threshold", Json.Float recorder_ratio_threshold);
         ( "recorder_host_profile",
           Json.Obj
             (Array.to_list
                (Array.map
                   (fun (name, seconds, samples) ->
                     ( name,
                       Json.Obj
                         [
                           ("seconds", Json.Float seconds);
                           ("samples", Json.Int samples);
                         ] ))
                   profile)) );
         ("replication_off_exact", Json.Bool replication_off_exact);
         ("replication_on", side_json repl_on host_repl);
         ("replication_delta_pct", Json.Float replication_delta_pct);
         ("pass", Json.Bool pass);
       ]);
  let prof_total =
    Array.fold_left (fun acc (_, s, _) -> acc +. s) 0.0 profile
  in
  Printf.printf
    "observability off: %d commits, %.2f ops/ms, %.3fs host\n\
     observability on:  %d commits, %.2f ops/ms, %.3fs host\n\
     virtual throughput delta %.4f%% (threshold %.1f%%), host ratio %.2fx \
     (threshold %.1fx)\n\
     recorder on:       %d commits (%s bare run), %.3fs host — ratio %.2fx \
     (threshold %.1fx)\n"
    off.Workload.commits thr_off host_off on.Workload.commits thr_on host_on
    virtual_delta_pct virtual_pct_threshold host_ratio host_ratio_threshold
    rec_r.Workload.commits
    (if recorder_virtual_exact then "bit-for-bit equal to" else "DIVERGED from")
    host_rec recorder_ratio recorder_ratio_threshold;
  if prof_total > 0.0 then begin
    Printf.printf "recorder self-profile (last rep):\n";
    Array.iter
      (fun (name, seconds, samples) ->
        if samples > 0 then
          Printf.printf "  %-17s %6.1f%%  %.4fs  %9d dispatches\n" name
            (100.0 *. seconds /. prof_total)
            seconds samples)
      profile
  end;
  Printf.printf
    "replication off:   %d commits (%s baseline)\n\
     replication on:    %d commits, %.2f ops/ms — %.2f%% virtual overhead \
     (reported, not gated)\n\
     wrote %s\n"
    repl_off.Workload.commits
    (if replication_off_exact then "bit-for-bit equal to" else "DIVERGED from")
    repl_on.Workload.commits thr_repl replication_delta_pct !out;
  if not pass then begin
    List.iter (fun f -> Printf.eprintf "overhead gate FAILED: %s\n" f) !failures;
    exit 1
  end
