(** Distributed contention management (Section 4).

    Upon a conflict the DTM node that detected it calls the contention
    manager with the requester's (freshly estimated) metadata and the
    current lock holders ("enemies"). The requester wins only if it
    beats {e every} enemy, in which case all enemies are aborted;
    otherwise the requester itself is aborted (the paper: the CM
    "aborts all of them but the highest priority one").

    Policies:
    - {b no-CM}: the transaction that detects the conflict always
      aborts and immediately restarts. Livelock-prone.
    - {b Back-off-Retry}: like no-CM, but the aborted transaction waits
      a randomized, exponentially growing delay before restarting
      (client side — the decision function is the same). Livelock-prone
      in theory, usually terminates in practice.
    - {b Offset-Greedy}: Greedy adapted to the lack of a global clock;
      priorities are start timestamps estimated from piggybacked
      offsets, so clock skew and message delay can produce inconsistent
      views (violates rule (b) of Property 1).
    - {b Wholly}: priority is the inverse of the number of committed
      transactions; starvation-free (Property 2).
    - {b FairCM}: priority is the inverse of the cumulative time spent
      on successful attempts; starvation-free (Property 3) and fair to
      short transactions. The companion CM of TM2C. *)

type policy = No_cm | Backoff_retry | Offset_greedy | Wholly | Fair_cm

val all : policy list

val name : policy -> string

val of_string : string -> policy option

(** Does this policy guarantee starvation-freedom (Property 1)? *)
val starvation_free : policy -> bool

(** Does the aborted transaction back off before restarting? *)
val uses_backoff : policy -> bool

type decision = Requester_loses | Enemies_lose

(** [decide policy ~requester ~enemies] resolves a conflict. [enemies]
    must be non-empty and must not contain the requester itself. *)
val decide : policy -> requester:Types.holder -> enemies:Types.holder list -> decision

(** Priority comparison used by [decide]: [beats p a b] is true when
    [a] has strictly higher priority than [b] under policy [p]
    (total order: ties broken by core id). Exposed for property
    tests. *)
val beats : policy -> Types.holder -> Types.holder -> bool

(** The enemy responsible for a [Requester_loses] decision — the first
    enemy the requester fails to beat (the first enemy under policies
    where the requester never wins). Used for abort-causality
    attribution. [enemies] must be non-empty. *)
val first_blocker :
  policy -> requester:Types.holder -> enemies:Types.holder list -> Types.holder

