(** The DTM service: one server per service core, owning the lock
    table for its partition of the shared memory (Section 3.2).

    [handle] implements Algorithms 1 and 2. On conflict it calls the
    contention manager ({!Cm.decide}); when the requester wins, each
    enemy is aborted by CAS'ing its status word from
    [(attempt, Pending)] to [(attempt, Aborted)] and revoking its
    lock-table entries. A failed CAS means the enemy already reached
    its commit point (or moved on), in which case the requester is
    conservatively told to abort — safe, and transient, so it does not
    compromise starvation-freedom (the loser's priority is preserved
    across the retry). *)

type server

(** Each server additionally arbitrates exclusive ownership of its
    partition for irrevocable transactions (Section 2's extension):
    an [Exclusive_acquire] is granted once the lock table has drained
    — normal requests are refused in the meantime — and queued FIFO
    behind other exclusive requests otherwise. *)
val make : core:Types.core_id -> server

val core : server -> Types.core_id

val locks : server -> Locktable.t

(** Requests processed so far. *)
val served : server -> int

(** (mean, max) input-queue depth sampled at each request pickup —
    how far behind this service core runs. (0., 0) before any
    request. *)
val queue_depth_stats : server -> float * int

(** (mean, max) lock-table occupancy sampled at each request pickup. *)
val occupancy_stats : server -> float * int

(** Virtual ns this server spent processing requests (pickup to
    response sent); divided by the run duration it is the service
    core's utilization. *)
val busy_ns : server -> float

(** Lease reclamations performed by this server (the per-partition
    split of [Fault.counters.leases_reclaimed]). *)
val lease_reclaims : server -> int

(** Live entries in the duplicate-absorption response cache. Bounded:
    entries idle past the absorption window — max(timeout * 32, lease)
    — are evicted opportunistically (every 64th request), so the cache
    stays flat under long duplicate-heavy runs. *)
val resp_cache_size : server -> int

(** Short stable label for a request kind ("read_lock",
    "write_locks", ...), for trace events. Allocation-free. *)
val kind_label : System.request_kind -> string

(** Addresses carried by a request (1 for the addressless kinds) —
    the unit the per-address processing cost scales with. *)
val kind_addrs : System.request_kind -> int

(** Deterministic request-processing cost for a request carrying
    [n_addrs] addresses, in ns. The requester-side phase attribution
    uses it to split a lock round trip into transit / service / queue
    components; conflict-resolution work is excluded (it lands in the
    queue residual). *)
val service_estimate_ns : System.env -> n_addrs:int -> float

(** Process one request; sends the response (if any) over the network
    from this server's core. Charges the server's processing cycles. *)
val handle : System.env -> server -> System.request -> unit

(** Dedicated-deployment service loop: receive and handle requests
    forever. Runs until the simulation ends, or — under an [scrash=]
    fault — until the server is marked crashed, at which point it dies
    silently at its next wakeup without handling the waking message.
    Also applies [System.Repl] lock-table replication from partitions
    this server backs up (see DESIGN.md "Failover"). *)
val service_loop : System.env -> server -> unit
