(** Bounded per-core admission queues with pluggable overload
    policies — the runtime half of the open-loop traffic model (the
    client half is [Tm2c_apps.Openloop]).

    Closed-loop workloads are self-limiting: a core issues its next
    transaction only after the previous one finishes, so queues cannot
    grow. Open-loop arrivals keep coming regardless of service
    progress, and without admission control an overloaded run both
    livelocks (every queue grows without bound) and lies about it
    (latency becomes the queue length). This module bounds the damage:
    every arrival is either admitted onto the target core's queue or
    *shed* with a retry-after hint, and queued entries past the queue
    deadline are dropped at dequeue before any transactional work is
    wasted on them.

    All accounting goes to the always-on [System.overload] counters
    (all-zero on closed-loop runs), and the lifecycle is traced with
    [Req_admitted] / [Req_shed] / [Req_expired] /
    [Retry_budget_exhausted] events when tracing is enabled. *)

(** Overload policy, fixed at creation:
    - [Unbounded]: no admission control (the ablation; queues grow
      without bound and nothing is ever shed);
    - [Reject]: admit while the queue is below [capacity], else shed
      ([Shed_queue_full]) — plain load shedding;
    - [Token_bucket]: credit-based admission — the bucket refills at
      [rate_per_ms] tokens per virtual millisecond up to [burst];
      an arrival needs one token, else it is shed ([Shed_no_tokens],
      with a retry-after hint of the time until the next token); the
      queue is additionally bounded by [capacity];
    - [Queue_deadline]: admit up to [capacity], but drop entries that
      waited longer than [deadline_ns] at dequeue ([Req_expired]) —
      sheds exactly the work whose client has likely timed out. *)
type policy =
  | Unbounded
  | Reject of { capacity : int }
  | Token_bucket of { capacity : int; rate_per_ms : float; burst : float }
  | Queue_deadline of { capacity : int; deadline_ns : float }

(** Short label for reports and JSON: ["unbounded"], ["reject"],
    ["token"], ["deadline"]. *)
val policy_name : policy -> string

(** A queued request: opaque [e_payload] (the driver's key into its
    own request table), the logical request's first-arrival instant,
    this submission's enqueue instant, and the retries consumed before
    this submission. *)
type entry = {
  e_tenant : int;
  e_payload : int;
  e_arrival_ns : float;
  e_enqueue_ns : float;
  e_retries : int;
}

type t

type verdict =
  | Admitted
  | Shed of { reason : Types.shed_reason; retry_after_ns : float }

(** [create env ~policy ()] — queues are materialized lazily per core.
    [retry_after_ns] (default 50 µs) is the flat backoff hint returned
    on shed when the policy has no better estimate. *)
val create :
  System.env -> policy:policy -> ?retry_after_ns:float -> unit -> t

val policy : t -> policy

(** Present one arrival (or client retry) to admission control.
    Counts it as offered, then either enqueues it (emitting
    [Req_admitted], waking the core's parked worker) or sheds it
    (emitting [Req_shed]). *)
val offer :
  t ->
  core:Types.core_id ->
  tenant:int ->
  payload:int ->
  arrival_ns:float ->
  retries:int ->
  verdict

(** Dequeue the next entry for [core]'s worker, dropping (and
    counting, [Req_expired]) entries past the queue deadline. [None]
    when the queue is empty. *)
val take : t -> core:Types.core_id -> entry option

(** Park the calling worker fiber until the next admitted arrival on
    this core (or {!wake_all}). At most one parked worker per core.
    Must be called from within a spawned process. *)
val wait : t -> core:Types.core_id -> unit

(** Wake every parked worker (driver shutdown: workers then observe
    the stop flag and drain). *)
val wake_all : t -> unit

(** Current depth of [core]'s queue. *)
val depth : t -> core:Types.core_id -> int

(** Entries currently queued across all cores — nonzero at collection
    time means the drain horizon cut the run short. *)
val pending : t -> int

(** Driver-side accounting for dequeued entries, routed to
    [System.overload] (and the [e2e_lat] sketch / trace). *)

val note_executed : t -> unit

(** [note_completed t ~e2e_ns ~good] — a logical request finished for
    the first time: records arrival→commit latency in the always-on
    end-to-end sketch; [good] marks completion within the client
    deadline (goodput). *)
val note_completed : t -> e2e_ns:float -> good:bool -> unit

(** An execution whose logical request had already completed — the
    duplicated work manufactured by client retries. *)
val note_wasted : t -> unit

val note_retry : t -> unit

(** The client gave up on a request after [retries] resubmissions
    (emits [Retry_budget_exhausted]). *)
val note_retry_exhausted :
  t -> core:Types.core_id -> tenant:int -> retries:int -> unit
