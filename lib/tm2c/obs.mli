(** Abort-causality accounting: who aborted whom, on which address,
    under which conflict type. Always on (updated only on aborts). *)

type key = {
  winner : Types.core_id;  (** the transaction whose CM priority prevailed *)
  victim : Types.core_id;  (** the transaction told or forced to abort *)
  conflict : Types.conflict;
}

type t

val create : unit -> t

val record :
  t ->
  winner:Types.core_id ->
  victim:Types.core_id ->
  conflict:Types.conflict ->
  addr:Types.addr ->
  unit

val reset : t -> unit

(** (key, count, last sample address), most frequent first. *)
val dump : t -> (key * int * Types.addr) list

(** Totals per conflict type (RAW, WAW, WAR — in that order). *)
val by_conflict : t -> (Types.conflict * int) list

val total : t -> int
