type request_kind =
  | Read_lock of Types.addr
  | Write_locks of Types.addr list
  | Release_reads of Types.addr list
  | Release_writes of Types.addr list
  | Barrier_reached
  | Exclusive_acquire
  | Exclusive_release

type request = {
  tx : Types.cm_meta;
  kind : request_kind;
  req_id : int;
  epoch : int;
      (* the requester's view of the target partition's epoch at send
         time; always 0 while failover is disabled *)
}

type response = Granted | Conflicted of Types.conflict | Stale_epoch

(* Lock-table mutations shipped primary -> backup. Grants carry the
   full holder (the backup's replica can then serve as CM input after
   a failover); releases identify the holder by (core, attempt), the
   same keys the live table uses. Revocations (enemy aborts, lease
   reclaims) are intentionally not replicated: a newer grant
   overwrites the writer slot, and anything else left stale in the
   replica is cleared by lease expiry after the merge. *)
type repl_op =
  | Rep_read of Types.addr * Types.holder
  | Rep_write of Types.addr list * Types.holder
  | Rep_release_reads of Types.addr list * Types.core_id * int
  | Rep_release_writes of Types.addr list * Types.core_id * int

type msg =
  | Req of request
  | Resp of { req_id : int; resp : response }
  | Repl of { src : Types.core_id; part : int; epoch : int; op : repl_op }

(* Replicated-lock-service failover state, shared by clients (routing
   + epoch stamping), primaries (replication targets) and backups
   (merge + stale-epoch checks). Arrays are indexed by partition;
   with [fo_enabled = false] nothing ever reads past [fo_owner],
   which then mirrors [dtm_cores] exactly. *)
type failover = {
  mutable fo_enabled : bool;
  fo_epoch : int array;  (* current epoch per partition *)
  fo_owner : Types.core_id array;  (* current serving core per partition *)
  fo_primary : Types.core_id array;  (* original primary per partition *)
  fo_backup : Types.core_id array;  (* designated backup per partition *)
  fo_merged : bool array;
      (* the current owner holds authoritative state for the
         partition; cleared by an epoch bump, set back when the
         promoted backup merges its replica *)
}

(* Admission-layer accounting, always present (all-zero on closed-loop
   runs, like the fault counters). Mutated only by Admission/open-loop
   drivers; read by the recorder and the JSON export. The invariant the
   validator re-checks: ol_offered = ol_admitted + ol_shed, and every
   admitted entry is eventually executed, expired, or still queued when
   the run ends (ol_executed + ol_expired <= ol_admitted). *)
type overload = {
  mutable ol_offered : int;  (* arrivals presented to admission, retries included *)
  mutable ol_admitted : int;
  mutable ol_shed : int;  (* refused at enqueue *)
  mutable ol_expired : int;  (* dropped at dequeue by the queue deadline *)
  mutable ol_executed : int;  (* queue entries that ran a transaction *)
  mutable ol_completed : int;  (* logical requests completed (first execution) *)
  mutable ol_goodput : int;  (* completed within the client deadline *)
  mutable ol_wasted : int;  (* executions of already-completed requests *)
  mutable ol_retries : int;  (* client resubmissions (timeout or shed) *)
  mutable ol_retry_exhausted : int;
  mutable ol_queue_peak : int;
}

let overload_create () =
  {
    ol_offered = 0;
    ol_admitted = 0;
    ol_shed = 0;
    ol_expired = 0;
    ol_executed = 0;
    ol_completed = 0;
    ol_goodput = 0;
    ol_wasted = 0;
    ol_retries = 0;
    ol_retry_exhausted = 0;
    ol_queue_peak = 0;
  }

type env = {
  sim : Tm2c_engine.Sim.t;
  net : msg Tm2c_noc.Network.t;
  shmem : Tm2c_memory.Shmem.t;
  regs : Tm2c_memory.Atomic_reg.t;
  policy : Cm.policy;
  owner_of : Types.addr -> Types.core_id;
  dtm_cores : Types.core_id array;
  skew : float array;
  stats : Stats.t;
  mutable serve_inline : (self:Types.core_id -> request -> unit) option;
  batching : bool;
  barrier_seen : int array;
  mutable serve_defer_cycles : int;
  trace : Event.t Tm2c_engine.Trace.t;
  obs : Obs.t;
  (* Phase attribution (see Phase): committed and aborted attempts
     aggregate separately so the committed invariant — per core, the
     phase sums equal the summed attempt durations — stays exact. *)
  span_commit : Tm2c_engine.Span.t;
  span_abort : Tm2c_engine.Span.t;
  faults : Tm2c_noc.Fault.t;
  (* Hardening knobs, disabled (0.0) by default so pristine runs take
     the exact pre-hardening code paths. *)
  mutable req_timeout_ns : float;
  mutable lease_ns : float;
  (* Test-only mutation hook: when set, clients skip every poll of
     their own status word, reintroducing the stale-read window the
     opacity oracle exists to catch (a doomed attempt keeps sampling
     memory after its enemy published). Never enable outside tests. *)
  mutable unsafe_skip_doom_check : bool;
  failover : failover;
  (* Always-on commit-latency sketch (attempt start -> publish done),
     same elapsed value Tx_committed events carry: one O(1) Sketch.add
     per commit, so it never needs tracing enabled. *)
  commit_lat : Tm2c_engine.Sketch.t;
  (* End-to-end latency sketch (client arrival -> commit, including
     admission queueing and every retry round trip): fed by the
     open-loop driver, empty on closed-loop runs. *)
  e2e_lat : Tm2c_engine.Sketch.t;
  overload : overload;
}

let local_now env ~core = Tm2c_engine.Sim.now env.sim +. env.skew.(core)

let owner_hash addr n =
  (* Fibonacci hashing on the word address. *)
  let h = addr * 0x9E3779B1 land max_int in
  (h lsr 16) mod n

(* Partition a request belongs to, from its first address: partition
   membership is a pure function of the address, so both sides compute
   it independently. Address-less kinds (barrier, exclusive mode) have
   no partition — they are never epoch-checked and never failed over. *)
let kind_part ~n_parts = function
  | Read_lock a -> Some (owner_hash a n_parts)
  | Write_locks (a :: _) | Release_reads (a :: _) | Release_writes (a :: _) ->
      Some (owner_hash a n_parts)
  | Write_locks [] | Release_reads [] | Release_writes [] -> None
  | Barrier_reached | Exclusive_acquire | Exclusive_release -> None

(* Client-side failover trigger. Guarded so that concurrent clients
   giving up on the same dead primary bump the epoch exactly once:
   after the flip the owner is the backup and later calls are no-ops
   (with one replica there is nowhere further to fail over to). *)
let bump_epoch env ~part ~by =
  let fo = env.failover in
  if fo.fo_enabled && fo.fo_owner.(part) = fo.fo_primary.(part) then begin
    fo.fo_epoch.(part) <- fo.fo_epoch.(part) + 1;
    fo.fo_owner.(part) <- fo.fo_backup.(part);
    fo.fo_merged.(part) <- false;
    let c = Tm2c_noc.Fault.counters env.faults in
    c.Tm2c_noc.Fault.failovers <- c.Tm2c_noc.Fault.failovers + 1;
    if Tm2c_engine.Trace.enabled env.trace then
      Tm2c_engine.Trace.record env.trace
        ~now:(Tm2c_engine.Sim.now env.sim)
        (Event.Epoch_bumped { part; epoch = fo.fo_epoch.(part); by })
  end

(* Epoch a client stamps on a request right before sending. *)
let epoch_for env kind =
  let fo = env.failover in
  if not fo.fo_enabled then 0
  else
    match kind_part ~n_parts:(Array.length fo.fo_epoch) kind with
    | Some part -> fo.fo_epoch.(part)
    | None -> 0
