type request_kind =
  | Read_lock of Types.addr
  | Write_locks of Types.addr list
  | Release_reads of Types.addr list
  | Release_writes of Types.addr list
  | Barrier_reached
  | Exclusive_acquire
  | Exclusive_release

type request = { tx : Types.cm_meta; kind : request_kind; req_id : int }

type response = Granted | Conflicted of Types.conflict

type msg = Req of request | Resp of { req_id : int; resp : response }

type env = {
  sim : Tm2c_engine.Sim.t;
  net : msg Tm2c_noc.Network.t;
  shmem : Tm2c_memory.Shmem.t;
  regs : Tm2c_memory.Atomic_reg.t;
  policy : Cm.policy;
  owner_of : Types.addr -> Types.core_id;
  dtm_cores : Types.core_id array;
  skew : float array;
  stats : Stats.t;
  mutable serve_inline : (self:Types.core_id -> request -> unit) option;
  batching : bool;
  barrier_seen : int array;
  mutable serve_defer_cycles : int;
  trace : Event.t Tm2c_engine.Trace.t;
  obs : Obs.t;
  (* Phase attribution (see Phase): committed and aborted attempts
     aggregate separately so the committed invariant — per core, the
     phase sums equal the summed attempt durations — stays exact. *)
  span_commit : Tm2c_engine.Span.t;
  span_abort : Tm2c_engine.Span.t;
  faults : Tm2c_noc.Fault.t;
  (* Hardening knobs, disabled (0.0) by default so pristine runs take
     the exact pre-hardening code paths. *)
  mutable req_timeout_ns : float;
  mutable lease_ns : float;
}

let local_now env ~core = Tm2c_engine.Sim.now env.sim +. env.skew.(core)

let owner_hash addr n =
  (* Fibonacci hashing on the word address. *)
  let h = addr * 0x9E3779B1 land max_int in
  (h lsr 16) mod n
