(* Bounded per-core admission queues with pluggable overload policies.

   The open-loop driver (Tm2c_apps.Openloop) presents every client
   arrival — and every client retry — to [offer], which either enqueues
   it on the target core's bounded queue or sheds it with a
   retry-after hint. The core's worker fiber consumes entries through
   [take] (which applies queue-deadline shedding lazily, at dequeue)
   and parks in [wait] when its queue is empty; an admitted arrival
   wakes it. Everything is driven by virtual time and the single
   simulator thread, so no synchronization is needed.

   Accounting goes to the always-on [System.overload] counters (zero
   on closed-loop runs) and the lifecycle events [Req_admitted] /
   [Req_shed] / [Req_expired] / [Retry_budget_exhausted] go to the
   trace when tracing is enabled, exactly like every other emit site. *)

open Tm2c_engine
open Types

type policy =
  | Unbounded
  | Reject of { capacity : int }
  | Token_bucket of { capacity : int; rate_per_ms : float; burst : float }
  | Queue_deadline of { capacity : int; deadline_ns : float }

let policy_name = function
  | Unbounded -> "unbounded"
  | Reject _ -> "reject"
  | Token_bucket _ -> "token"
  | Queue_deadline _ -> "deadline"

type entry = {
  e_tenant : int;
  e_payload : int;
  e_arrival_ns : float;
  e_enqueue_ns : float;
  e_retries : int;
}

type queue = {
  q_core : core_id;
  q : entry Queue.t;
  mutable q_tokens : float;  (* token bucket level; meaningless otherwise *)
  mutable q_refill_ns : float;  (* last refill instant *)
  mutable q_waiter : (unit -> unit) option;  (* parked worker's resume *)
}

type t = {
  env : System.env;
  policy : policy;
  retry_after_ns : float;  (* default backoff hint on shed *)
  queues : (core_id, queue) Hashtbl.t;
}

type verdict = Admitted | Shed of { reason : shed_reason; retry_after_ns : float }

let create env ~policy ?(retry_after_ns = 50_000.0) () =
  (match policy with
  | Unbounded -> ()
  | Reject { capacity }
  | Token_bucket { capacity; _ }
  | Queue_deadline { capacity; _ } ->
      if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1");
  (match policy with
  | Token_bucket { rate_per_ms; burst; _ } ->
      if rate_per_ms <= 0.0 || burst < 1.0 then
        invalid_arg "Admission.create: need rate_per_ms > 0 and burst >= 1"
  | _ -> ());
  { env; policy; retry_after_ns; queues = Hashtbl.create 16 }

let policy t = t.policy

let queue_for t core =
  match Hashtbl.find_opt t.queues core with
  | Some q -> q
  | None ->
      let burst =
        match t.policy with Token_bucket { burst; _ } -> burst | _ -> 0.0
      in
      let q =
        {
          q_core = core;
          q = Queue.create ();
          q_tokens = burst;  (* buckets start full *)
          q_refill_ns = Sim.now t.env.System.sim;
          q_waiter = None;
        }
      in
      Hashtbl.add t.queues core q;
      q

let depth t ~core = Queue.length (queue_for t core).q

let pending t =
  let n = ref 0 in
  Tm2c_engine.Det.iter (fun _ q -> n := !n + Queue.length q.q) t.queues;
  !n

let emit t ev =
  let tr = t.env.System.trace in
  if Trace.enabled tr then
    Trace.record tr ~now:(Sim.now t.env.System.sim) ev

let refill q ~now ~rate_per_ms ~burst =
  let dt_ms = (now -. q.q_refill_ns) /. 1e6 in
  if dt_ms > 0.0 then begin
    q.q_tokens <- Float.min burst (q.q_tokens +. (dt_ms *. rate_per_ms));
    q.q_refill_ns <- now
  end

let wake q =
  match q.q_waiter with
  | Some resume ->
      q.q_waiter <- None;
      resume ()
  | None -> ()

let offer t ~core ~tenant ~payload ~arrival_ns ~retries =
  let q = queue_for t core in
  let ol = t.env.System.overload in
  let now = Sim.now t.env.System.sim in
  ol.System.ol_offered <- ol.System.ol_offered + 1;
  let cap_ok capacity = Queue.length q.q < capacity in
  let decision =
    match t.policy with
    | Unbounded -> Ok ()
    | Reject { capacity } ->
        if cap_ok capacity then Ok () else Error Shed_queue_full
    | Queue_deadline { capacity; _ } ->
        if cap_ok capacity then Ok () else Error Shed_queue_full
    | Token_bucket { capacity; rate_per_ms; burst } ->
        refill q ~now ~rate_per_ms ~burst;
        if not (cap_ok capacity) then Error Shed_queue_full
        else if q.q_tokens >= 1.0 then begin
          q.q_tokens <- q.q_tokens -. 1.0;
          Ok ()
        end
        else Error Shed_no_tokens
  in
  match decision with
  | Ok () ->
      Queue.add
        {
          e_tenant = tenant;
          e_payload = payload;
          e_arrival_ns = arrival_ns;
          e_enqueue_ns = now;
          e_retries = retries;
        }
        q.q;
      ol.System.ol_admitted <- ol.System.ol_admitted + 1;
      let d = Queue.length q.q in
      if d > ol.System.ol_queue_peak then ol.System.ol_queue_peak <- d;
      emit t (Event.Req_admitted { core; tenant; queue_depth = d });
      wake q;
      Admitted
  | Error reason ->
      ol.System.ol_shed <- ol.System.ol_shed + 1;
      let retry_after_ns =
        match (t.policy, reason) with
        | Token_bucket { rate_per_ms; _ }, Shed_no_tokens ->
            (* Time until the bucket next reaches one whole token. *)
            Float.max t.retry_after_ns
              ((1.0 -. q.q_tokens) /. rate_per_ms *. 1e6)
        | _ -> t.retry_after_ns
      in
      emit t (Event.Req_shed { core; tenant; reason; retry_after_ns });
      Shed { reason; retry_after_ns }

(* Dequeue for the core's worker, applying the queue-deadline policy:
   entries that waited past the deadline are dropped here — shedding
   late but before any transactional work is wasted on them. *)
let rec take t ~core =
  let q = queue_for t core in
  match Queue.take_opt q.q with
  | None -> None
  | Some e -> (
      match t.policy with
      | Queue_deadline { deadline_ns; _ }
        when Sim.now t.env.System.sim -. e.e_enqueue_ns > deadline_ns ->
          let ol = t.env.System.overload in
          ol.System.ol_expired <- ol.System.ol_expired + 1;
          emit t
            (Event.Req_expired
               {
                 core;
                 tenant = e.e_tenant;
                 waited_ns = Sim.now t.env.System.sim -. e.e_enqueue_ns;
               });
          take t ~core
      | _ -> Some e)

(* Park the calling worker fiber until the next admitted arrival (or an
   explicit [wake_all], which the driver uses at shutdown). One worker
   per core, so a single waiter slot suffices. *)
let wait t ~core =
  let q = queue_for t core in
  if q.q_waiter <> None then invalid_arg "Admission.wait: worker already parked";
  Sim.suspend (fun resume -> q.q_waiter <- Some resume)

(* Sorted traversal: wake order is scheduling order, so it must not
   depend on hash-table internals. *)
let wake_all t = Tm2c_engine.Det.iter (fun _ q -> wake q) t.queues

(* Driver-side accounting of what happened to dequeued entries. *)

let note_executed t =
  let ol = t.env.System.overload in
  ol.System.ol_executed <- ol.System.ol_executed + 1

let note_completed t ~e2e_ns ~good =
  let ol = t.env.System.overload in
  ol.System.ol_completed <- ol.System.ol_completed + 1;
  if good then ol.System.ol_goodput <- ol.System.ol_goodput + 1;
  Sketch.add t.env.System.e2e_lat e2e_ns

let note_wasted t =
  let ol = t.env.System.overload in
  ol.System.ol_wasted <- ol.System.ol_wasted + 1

let note_retry t =
  let ol = t.env.System.overload in
  ol.System.ol_retries <- ol.System.ol_retries + 1

let note_retry_exhausted t ~core ~tenant ~retries =
  let ol = t.env.System.overload in
  ol.System.ol_retry_exhausted <- ol.System.ol_retry_exhausted + 1;
  emit t (Event.Retry_budget_exhausted { core; tenant; retries })
