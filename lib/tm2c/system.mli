(** Wire protocol between application cores and DTM service cores, and
    the shared runtime environment handed to both sides.

    Lock acquisitions are request/response round trips; releases are
    fire-and-forget (no response), halving the release message count.
    Write-lock requests are batched per responsible node (Section
    3.3's write-lock batching). *)

type request_kind =
  | Read_lock of Types.addr
  | Write_locks of Types.addr list
  | Release_reads of Types.addr list
  | Release_writes of Types.addr list
  | Barrier_reached
      (** privatization barrier (Section 8): exchanged directly
          between application cores, never sent to the DTM *)
  | Exclusive_acquire
      (** irrevocable transactions (Section 2's sketched extension):
          ask for exclusive access to this node's whole partition; the
          node replies Granted once it holds no locks and queues the
          request until then *)
  | Exclusive_release

type request = { tx : Types.cm_meta; kind : request_kind; req_id : int }

type response = Granted | Conflicted of Types.conflict

type msg = Req of request | Resp of { req_id : int; resp : response }

type env = {
  sim : Tm2c_engine.Sim.t;
  net : msg Tm2c_noc.Network.t;
  shmem : Tm2c_memory.Shmem.t;
  regs : Tm2c_memory.Atomic_reg.t;
      (** one status register per core, indexed by core id *)
  policy : Cm.policy;
  owner_of : Types.addr -> Types.core_id;
      (** responsible DTM core for an address (hashing, Section 3.2) *)
  dtm_cores : Types.core_id array;
      (** all DTM cores in ascending id order — irrevocable
          transactions acquire them in this order (deadlock freedom) *)
  skew : float array;
      (** per-core local-clock offset: cores have no global clock *)
  stats : Stats.t;
  mutable serve_inline : (self:Types.core_id -> request -> unit) option;
      (** multitasking deployment only: handler invoked by application
          cores for service requests that arrive while they await their
          own responses *)
  batching : bool;
      (** write-lock batching enabled (Section 3.3); the ablation
          bench turns it off *)
  barrier_seen : int array;
      (** per-core count of barrier-reached messages received so far;
          incremented by whichever receive loop intercepts them
          (Section 8's privatization barrier) *)
  mutable serve_defer_cycles : int;
      (** multitasking deployment only: scheduling delay before the
          service task runs when a request interrupts the application
          task mid-transaction — the non-preemptive libtask effect of
          Figure 2 (a request "cannot be served prior to [the core]
          completing its local computation") *)
  trace : Event.t Tm2c_engine.Trace.t;
      (** event-trace ring buffer; disabled by default — emit sites
          guard with [Trace.enabled] so untraced runs allocate nothing *)
  obs : Obs.t;  (** abort-causality accounting (always on) *)
  span_commit : Tm2c_engine.Span.t;
      (** phase attribution of committed attempts (see {!Phase});
          disabled by default — per core, the phase sums equal the
          summed committed-attempt durations *)
  span_abort : Tm2c_engine.Span.t;
      (** phase attribution of aborted attempts, including the
          between-attempt CM backoff *)
  faults : Tm2c_noc.Fault.t;
      (** fault-injection state (plan + counters + crashed cores);
          created with an empty plan and a [Prng.split_label] stream so
          its existence never perturbs baseline schedules *)
  mutable req_timeout_ns : float;
      (** base timeout before a pending lock request is resent
          (exponential backoff per resend, bounded); 0.0 disables
          hardening and awaits block forever as before *)
  mutable lease_ns : float;
      (** lock lease: a holder older than this is forcibly reclaimed
          (status-CAS guarded) when it blocks a new request; 0.0
          disables reclamation *)
}

(** A core's local clock reading ([Sim.now] plus its skew). *)
val local_now : env -> core:Types.core_id -> float

(** [owner_hash addr n] maps an address onto one of [n] partitions
    (Fibonacci hashing). *)
val owner_hash : Types.addr -> int -> int
