(** Wire protocol between application cores and DTM service cores, and
    the shared runtime environment handed to both sides.

    Lock acquisitions are request/response round trips; releases are
    fire-and-forget (no response), halving the release message count.
    Write-lock requests are batched per responsible node (Section
    3.3's write-lock batching). *)

type request_kind =
  | Read_lock of Types.addr
  | Write_locks of Types.addr list
  | Release_reads of Types.addr list
  | Release_writes of Types.addr list
  | Barrier_reached
      (** privatization barrier (Section 8): exchanged directly
          between application cores, never sent to the DTM *)
  | Exclusive_acquire
      (** irrevocable transactions (Section 2's sketched extension):
          ask for exclusive access to this node's whole partition; the
          node replies Granted once it holds no locks and queues the
          request until then *)
  | Exclusive_release

type request = {
  tx : Types.cm_meta;
  kind : request_kind;
  req_id : int;
  epoch : int;
      (** the requester's view of the target partition's epoch at send
          time (see {!failover}); always 0 while failover is disabled
          and for address-less kinds *)
}

type response =
  | Granted
  | Conflicted of Types.conflict
  | Stale_epoch
      (** the request's epoch stamp is behind the server's view of the
          partition (or the server no longer owns it): refused without
          touching the lock table — the client re-reads the routing
          table and retries at the current owner *)

(** A lock-table mutation shipped primary -> backup over the reliable
    replication channel. Grants carry the full holder (so the replica
    can serve as contention-manager input after a failover); releases
    identify the holder by (core, attempt) like the live table.
    Revocations (enemy aborts, lease reclaims) are intentionally not
    replicated: a newer grant overwrites the writer slot, and stale
    replica entries are cleared by lease expiry after the merge. *)
type repl_op =
  | Rep_read of Types.addr * Types.holder
  | Rep_write of Types.addr list * Types.holder
  | Rep_release_reads of Types.addr list * Types.core_id * int
  | Rep_release_writes of Types.addr list * Types.core_id * int

type msg =
  | Req of request
  | Resp of { req_id : int; resp : response }
  | Repl of { src : Types.core_id; part : int; epoch : int; op : repl_op }

(** Replicated-lock-service failover state, shared by clients (routing
    + epoch stamping), primaries (replication targets) and promoted
    backups (replica merge + stale-epoch checks). All arrays are
    indexed by partition. With [fo_enabled = false], [fo_owner]
    mirrors [dtm_cores] and nothing else is ever read. *)
type failover = {
  mutable fo_enabled : bool;
  fo_epoch : int array;  (** current epoch per partition *)
  fo_owner : Types.core_id array;  (** current serving core per partition *)
  fo_primary : Types.core_id array;  (** original primary per partition *)
  fo_backup : Types.core_id array;  (** designated backup per partition *)
  fo_merged : bool array;
      (** the current owner holds authoritative state for the
          partition; cleared by an epoch bump, set again when the
          promoted backup merges its replica on the first request it
          serves for the partition *)
}

(** Admission-layer accounting, always present and all-zero on
    closed-loop runs (like the fault counters). Mutated by
    {!Admission} and the open-loop driver; read by the flight recorder
    and the JSON export, whose validator re-checks the sum invariants:
    [ol_offered = ol_admitted + ol_shed] and
    [ol_executed + ol_expired <= ol_admitted]. *)
type overload = {
  mutable ol_offered : int;
      (** arrivals presented to admission, client retries included *)
  mutable ol_admitted : int;
  mutable ol_shed : int;  (** refused at enqueue *)
  mutable ol_expired : int;  (** dropped at dequeue by the queue deadline *)
  mutable ol_executed : int;  (** queue entries that ran a transaction *)
  mutable ol_completed : int;
      (** logical requests completed (first execution only) *)
  mutable ol_goodput : int;  (** completed within the client deadline *)
  mutable ol_wasted : int;
      (** executions whose logical request had already completed — the
          duplicated work a retry storm manufactures *)
  mutable ol_retries : int;  (** client resubmissions (timeout or shed) *)
  mutable ol_retry_exhausted : int;
  mutable ol_queue_peak : int;
}

val overload_create : unit -> overload

type env = {
  sim : Tm2c_engine.Sim.t;
  net : msg Tm2c_noc.Network.t;
  shmem : Tm2c_memory.Shmem.t;
  regs : Tm2c_memory.Atomic_reg.t;
      (** one status register per core, indexed by core id *)
  policy : Cm.policy;
  owner_of : Types.addr -> Types.core_id;
      (** responsible DTM core for an address (hashing, Section 3.2) *)
  dtm_cores : Types.core_id array;
      (** all DTM cores in ascending id order — irrevocable
          transactions acquire them in this order (deadlock freedom) *)
  skew : float array;
      (** per-core local-clock offset: cores have no global clock *)
  stats : Stats.t;
  mutable serve_inline : (self:Types.core_id -> request -> unit) option;
      (** multitasking deployment only: handler invoked by application
          cores for service requests that arrive while they await their
          own responses *)
  batching : bool;
      (** write-lock batching enabled (Section 3.3); the ablation
          bench turns it off *)
  barrier_seen : int array;
      (** per-core count of barrier-reached messages received so far;
          incremented by whichever receive loop intercepts them
          (Section 8's privatization barrier) *)
  mutable serve_defer_cycles : int;
      (** multitasking deployment only: scheduling delay before the
          service task runs when a request interrupts the application
          task mid-transaction — the non-preemptive libtask effect of
          Figure 2 (a request "cannot be served prior to [the core]
          completing its local computation") *)
  trace : Event.t Tm2c_engine.Trace.t;
      (** event-trace ring buffer; disabled by default — emit sites
          guard with [Trace.enabled] so untraced runs allocate nothing *)
  obs : Obs.t;  (** abort-causality accounting (always on) *)
  span_commit : Tm2c_engine.Span.t;
      (** phase attribution of committed attempts (see {!Phase});
          disabled by default — per core, the phase sums equal the
          summed committed-attempt durations *)
  span_abort : Tm2c_engine.Span.t;
      (** phase attribution of aborted attempts, including the
          between-attempt CM backoff *)
  faults : Tm2c_noc.Fault.t;
      (** fault-injection state (plan + counters + crashed cores);
          created with an empty plan and a [Prng.split_label] stream so
          its existence never perturbs baseline schedules *)
  mutable req_timeout_ns : float;
      (** base timeout before a pending lock request is resent
          (exponential backoff per resend, bounded); 0.0 disables
          hardening and awaits block forever as before *)
  mutable lease_ns : float;
      (** lock lease: a holder older than this is forcibly reclaimed
          (status-CAS guarded) when it blocks a new request; 0.0
          disables reclamation *)
  mutable unsafe_skip_doom_check : bool;
      (** test-only mutation hook: skip every client poll of its own
          status word, reintroducing the stale-read window the opacity
          oracle catches; never enable outside tests *)
  failover : failover;
      (** replicated-lock-service state; inert (and unread past
          [fo_owner]) until [Runtime.enable_replication] flips
          [fo_enabled] *)
  commit_lat : Tm2c_engine.Sketch.t;
      (** always-on commit-latency sketch (attempt start -> publish
          done, ns) — the same elapsed value [Tx_committed] events
          carry, but recorded unconditionally at O(1) per commit *)
  e2e_lat : Tm2c_engine.Sketch.t;
      (** end-to-end latency sketch (client arrival -> commit, ns),
          including admission queueing and retries; fed by the
          open-loop driver, empty on closed-loop runs *)
  overload : overload;  (** admission-layer accounting (always on) *)
}

(** A core's local clock reading ([Sim.now] plus its skew). *)
val local_now : env -> core:Types.core_id -> float

(** [owner_hash addr n] maps an address onto one of [n] partitions
    (Fibonacci hashing). *)
val owner_hash : Types.addr -> int -> int

(** Partition a request belongs to, from its first address (partition
    membership is a pure function of the address). [None] for
    address-less kinds (barrier, exclusive mode): those are never
    epoch-checked and never failed over. *)
val kind_part : n_parts:int -> request_kind -> int option

(** [bump_epoch env ~part ~by] — client [by] gives up on partition
    [part]'s primary: advance the epoch, flip routing to the backup,
    clear the merged flag, and emit {!Event.Epoch_bumped}. Guarded so
    concurrent clients bump exactly once (no-op when the owner is
    already the backup, or when failover is disabled). *)
val bump_epoch : env -> part:int -> by:Types.core_id -> unit

(** Epoch a client stamps on a request right before sending: the
    current epoch of the request's partition (0 when failover is
    disabled or the kind has no partition). *)
val epoch_for : env -> request_kind -> int
