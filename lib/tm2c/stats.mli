(** Per-core and aggregate execution statistics. *)

type core = {
  mutable commits : int;
  mutable aborts_raw : int;
  mutable aborts_waw : int;
  mutable aborts_war : int;
  mutable aborts_status : int;
      (** aborts discovered through the status word (remote CM abort) *)
  mutable ops : int;  (** application-level operations completed *)
  mutable tx_reads : int;
  mutable tx_writes : int;
  mutable effective_ns : float;  (** FairCM's cumulative successful time *)
  mutable lifespan_ns : float;  (** total start-to-commit time *)
  mutable max_attempts : int;  (** worst number of attempts of one tx *)
}

type t = core array

val create : n_cores:int -> t

val core : t -> int -> core

val aborts : core -> int

val total_commits : t -> int

val total_aborts : t -> int

val total_ops : t -> int

(** Commit rate in percent: commits / (commits + aborts) * 100.
    [nan] when no transaction ran — callers must render the
    "no commits" case explicitly instead of reporting a fake 100%. *)
val commit_rate : t -> float

(** Largest [max_attempts] over all cores — the empirical
    starvation-freedom witness. *)
val worst_attempts : t -> int

val reset : t -> unit

val pp : Format.formatter -> t -> unit
