open Types

type entry = { mutable writer : holder option; mutable readers : holder list }

type t = (addr, entry) Hashtbl.t

let create () = Hashtbl.create 1024

let entry t addr =
  match Hashtbl.find_opt t addr with
  | Some e -> e
  | None ->
      let e = { writer = None; readers = [] } in
      Hashtbl.add t addr e;
      e

let find t addr = Hashtbl.find_opt t addr

let gc t addr e = if e.writer = None && e.readers = [] then Hashtbl.remove t addr

let add_reader t addr h =
  let e = entry t addr in
  e.readers <- h :: List.filter (fun r -> r.h_core <> h.h_core) e.readers

let remove_reader t addr ~core ~attempt =
  match Hashtbl.find_opt t addr with
  | None -> ()
  | Some e ->
      e.readers <-
        List.filter (fun r -> not (r.h_core = core && r.h_attempt = attempt)) e.readers;
      gc t addr e

let revoke_reader t addr ~core =
  match Hashtbl.find_opt t addr with
  | None -> ()
  | Some e ->
      e.readers <- List.filter (fun r -> r.h_core <> core) e.readers;
      gc t addr e

let set_writer t addr h =
  let e = entry t addr in
  e.writer <- Some h

let clear_writer t addr ~core ~attempt =
  match Hashtbl.find_opt t addr with
  | None -> ()
  | Some e -> (
      match e.writer with
      | Some w when w.h_core = core && w.h_attempt = attempt ->
          e.writer <- None;
          gc t addr e
      | Some _ | None -> ())

let revoke_writer t addr =
  match Hashtbl.find_opt t addr with
  | None -> ()
  | Some e ->
      e.writer <- None;
      gc t addr e

let readers_excluding e ~core = List.filter (fun r -> r.h_core <> core) e.readers

let iter t f = Tm2c_engine.Det.iter f t

let n_locked t = Hashtbl.length t

let check_invariants t =
  Tm2c_engine.Det.iter
    (fun addr e ->
      if e.writer = None && e.readers = [] then
        invalid_arg (Printf.sprintf "Locktable: empty entry retained at %d" addr);
      let cores = List.map (fun r -> r.h_core) e.readers in
      let sorted = List.sort_uniq compare cores in
      if List.length sorted <> List.length cores then
        invalid_arg (Printf.sprintf "Locktable: duplicate reader core at %d" addr))
    t
