(* Abort-causality bookkeeping: who aborted whom, on which address,
   split by conflict type. Updated only when an abort actually happens
   (aborts are rare relative to messages), so it stays always-on.

   "Winner" is the transaction whose contention-manager priority
   prevailed; "victim" is the one told (or forced via status CAS) to
   abort. A requester that loses against several enemies is charged to
   the single enemy that beat it ({!Cm} exposes that enemy), so each
   abort is counted exactly once. *)

open Types

type key = { winner : core_id; victim : core_id; conflict : conflict }

type cell = { mutable count : int; mutable last_addr : addr }

type t = { causality : (key, cell) Hashtbl.t }

let create () = { causality = Hashtbl.create 64 }

let record t ~winner ~victim ~conflict ~addr =
  let key = { winner; victim; conflict } in
  match Hashtbl.find_opt t.causality key with
  | Some c ->
      c.count <- c.count + 1;
      c.last_addr <- addr
  | None -> Hashtbl.add t.causality key { count = 1; last_addr = addr }

let reset t = Hashtbl.reset t.causality

(* (key, count, last sample address), most frequent first. *)
let dump t =
  Tm2c_engine.Det.fold
    (fun k c acc -> (k, c.count, c.last_addr) :: acc)
    t.causality []
  |> List.sort (fun (ka, a, _) (kb, b, _) ->
         if a <> b then compare b a else compare ka kb)

let by_conflict t =
  let totals = [ (Raw, ref 0); (Waw, ref 0); (War, ref 0) ] in
  Tm2c_engine.Det.iter
    (fun k c ->
      let r = List.assoc k.conflict totals in
      r := !r + c.count)
    t.causality;
  List.map (fun (conflict, r) -> (conflict, !r)) totals

let total t =
  Tm2c_engine.Det.fold (fun _ c acc -> acc + c.count) t.causality 0
