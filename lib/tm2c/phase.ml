(* The phase model: every nanosecond of a transaction attempt is
   charged to exactly one of these phases (see DESIGN.md, "Phase
   attribution"). Indices are positions into the per-core scratch
   array and into [Span] aggregates.

   The read-lock round trip is split three ways using the platform's
   deterministic messaging costs: wire transit plus software
   send/receive overheads ([Read_transit]), the DTM core's request-
   processing cycles ([Read_service]), and the residual — time the
   request spent queued behind other requests at the service core,
   plus any conflict-resolution work there ([Read_queue]). *)

let read_transit = 0
let read_queue = 1
let read_service = 2
let compute = 3
let backoff = 4
let commit_acquire = 5
let writeback = 6

let n = 7

let names =
  [|
    "read_transit";
    "read_queue";
    "read_service";
    "compute";
    "backoff";
    "commit_acquire";
    "writeback";
  |]
