(** Shared vocabulary of the TM2C protocol. *)

type core_id = int

type addr = int

(** Conflict classes of the transactional semantics (Section 3.2). *)
type conflict =
  | Raw  (** read-after-write: a reader found a writer *)
  | Waw  (** write-after-write: a writer found a writer *)
  | War  (** write-after-read: a writer found readers *)

val conflict_to_string : conflict -> string

(** Why the admission layer refused (or dropped) a request — see
    {!Admission}. The string forms round-trip through the history log
    ([shed_reason_of_string] inverts [shed_reason_to_string]). *)
type shed_reason =
  | Shed_queue_full  (** bounded admission queue at capacity *)
  | Shed_no_tokens  (** token/credit bucket empty *)
  | Shed_deadline  (** queued longer than the queue deadline: dropped at dequeue *)

val shed_reason_to_string : shed_reason -> string

val shed_reason_of_string : string -> shed_reason option

(** Transaction status words.

    Each application core owns one globally accessible status register
    encoding [(attempt, state)]. The contention manager aborts an enemy
    by CAS'ing [(a, Pending) -> (a, Aborted)]; a committing transaction
    CAS'es [(a, Pending) -> (a, Committing)] before persisting its
    write set, so the abort-versus-commit race is decided atomically
    (the paper: "the status of such an aborting transaction is
    atomically switched from pending to aborted"). *)
module Status : sig
  type state = Pending | Committing | Aborted

  val encode : attempt:int -> state -> int

  val decode : int -> int * state
end

(** Contention-management metadata piggybacked on every request
    (Section 4.1): the requester's identity plus everything each
    policy needs to totally order transactions. *)
type cm_meta = {
  m_core : core_id;
  m_attempt : int;  (** per-core attempt counter stamping lock entries *)
  m_offset_ns : float;
      (** Offset-Greedy: local-clock time elapsed since the transaction
          (re)started, from which the DTM node estimates a start
          timestamp against its own clock *)
  m_committed : int;  (** Wholly: transactions committed by this core *)
  m_effective_ns : float;
      (** FairCM: cumulative time spent on successful attempts *)
}

(** A lock holder as recorded by a DTM node: the requester's metadata
    evaluated at grant time ([est_start_ns] is the node-local start
    estimate computed from [m_offset_ns]). *)
type holder = {
  h_core : core_id;
  h_attempt : int;
  h_est_start_ns : float;
  h_committed : int;
  h_effective_ns : float;
  h_granted_ns : float;
      (** server-local time the lock was granted — the lease clock for
          orphan-lock reclamation *)
}

val holder_of_meta : cm_meta -> est_start_ns:float -> granted_ns:float -> holder
