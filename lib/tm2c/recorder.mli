(** Streaming flight recorder: bounded-memory metrics snapshots on a
    simulated-time cadence.

    Every [window_ns] of virtual time the recorder assembles one
    snapshot block — windowed deltas of the always-on counters,
    windowed and cumulative latency quantiles ({!Tm2c_engine.Sketch}),
    per-phase latency merged across cores, per-DS-partition service
    gauges, the top-K busiest NoC links and top-K abort-blame pairs —
    emits it through [out] in an OpenMetrics-style text format, and
    rolls every baseline. Nothing is retained per window, so resident
    memory is constant in run length.

    Producers keep writing their one cumulative counter or sketch; the
    recorder reads deltas against private baselines. Wire it up with
    [Runtime.enable_recorder], which also routes trace events into
    {!record_event} through the trace's second tap. *)

type t

(** [create ~env ~window_ns ?out ?top_k ~servers ()] — [out] receives
    one complete text block per window (omit it to keep only the
    in-memory aggregates for the JSON export); [servers] supplies the
    live DTM servers at each tick; [top_k] (default 8) bounds the
    per-window link and abort-blame listings. *)
val create :
  env:System.env ->
  window_ns:float ->
  ?out:(string -> unit) ->
  ?top_k:int ->
  servers:(unit -> Dtm.server list) ->
  unit ->
  t

(** Install the reader for the checker sink's high-water mark
    (defaults to a constant 0 when no collector is attached). *)
val set_sink_high_water : t -> (unit -> int) -> unit

(** Count one trace event (the [Trace.set_tap] target). Counts stay 0
    while tracing is disabled: the recorder never forces tracing on. *)
val record_event : t -> Event.t -> unit

(** Baseline all counters and schedule the recurring snapshot tick
    (self-terminating: it stops rescheduling once it is the only
    pending event). Call before [Runtime.run]. *)
val start : t -> unit

(** Emit the final partial window and a ["# eof"] marker, then stop.
    Idempotent; a no-op if {!start} was never called. *)
val finish : t -> unit

val window_ns : t -> float

(** Windows emitted so far (including the final partial one). *)
val n_windows : t -> int

(** [(name, total since start, sum of emitted windowed deltas)] per
    counter. After {!finish} the two figures are equal — the
    telescoping invariant validate_json re-checks. *)
val counter_totals : t -> (string * float * float) list

(** The cumulative latency sketches tracked by the recorder. *)
val sketch_totals : t -> (string * Tm2c_engine.Sketch.t) list

(** Cumulative per-phase commit-latency sketches, merged across cores
    (empty sketches while profiling is disabled). *)
val phase_sketches : t -> (string * Tm2c_engine.Sketch.t) list

(** Cumulative trace-event counts per constructor label. *)
val event_totals : t -> (string * int) list
