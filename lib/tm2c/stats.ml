type core = {
  mutable commits : int;
  mutable aborts_raw : int;
  mutable aborts_waw : int;
  mutable aborts_war : int;
  mutable aborts_status : int;
  mutable ops : int;
  mutable tx_reads : int;
  mutable tx_writes : int;
  mutable effective_ns : float;
  mutable lifespan_ns : float;
  mutable max_attempts : int;
}

type t = core array

let make_core () =
  {
    commits = 0;
    aborts_raw = 0;
    aborts_waw = 0;
    aborts_war = 0;
    aborts_status = 0;
    ops = 0;
    tx_reads = 0;
    tx_writes = 0;
    effective_ns = 0.0;
    lifespan_ns = 0.0;
    max_attempts = 0;
  }

let create ~n_cores = Array.init n_cores (fun _ -> make_core ())

let core t i = t.(i)

let aborts c = c.aborts_raw + c.aborts_waw + c.aborts_war + c.aborts_status

let sum t f = Array.fold_left (fun acc c -> acc + f c) 0 t

let total_commits t = sum t (fun c -> c.commits)

let total_aborts t = sum t aborts

let total_ops t = sum t (fun c -> c.ops)

let commit_rate t =
  let commits = total_commits t and ab = total_aborts t in
  if commits + ab = 0 then Float.nan
  else 100.0 *. float_of_int commits /. float_of_int (commits + ab)

let worst_attempts t = Array.fold_left (fun acc c -> max acc c.max_attempts) 0 t

let reset t =
  Array.iter
    (fun c ->
      c.commits <- 0;
      c.aborts_raw <- 0;
      c.aborts_waw <- 0;
      c.aborts_war <- 0;
      c.aborts_status <- 0;
      c.ops <- 0;
      c.tx_reads <- 0;
      c.tx_writes <- 0;
      c.effective_ns <- 0.0;
      c.lifespan_ns <- 0.0;
      c.max_attempts <- 0)
    t

let pp fmt t =
  let rate = commit_rate t in
  let rate_s =
    if Float.is_nan rate then "n/a (no commits)" else Printf.sprintf "%.1f%%" rate
  in
  Format.fprintf fmt "commits=%d aborts=%d (raw=%d waw=%d war=%d status=%d) ops=%d rate=%s"
    (total_commits t) (total_aborts t)
    (sum t (fun c -> c.aborts_raw))
    (sum t (fun c -> c.aborts_waw))
    (sum t (fun c -> c.aborts_war))
    (sum t (fun c -> c.aborts_status))
    (total_ops t) rate_s
