(** The phase model: every nanosecond of a transaction attempt is
    charged to exactly one of these phases (see DESIGN.md, "Phase
    attribution"). Indices are positions into the per-core scratch
    array and into [Span] aggregates.

    The read-lock round trip is split three ways using the platform's
    deterministic messaging costs: wire transit plus software
    send/receive overheads ({!read_transit}), the DTM core's request-
    processing cycles ({!read_service}), and the residual — time the
    request spent queued behind other requests at the service core,
    plus any conflict-resolution work there ({!read_queue}). *)

val read_transit : int

val read_queue : int

val read_service : int

val compute : int

val backoff : int

val commit_acquire : int

val writeback : int

(** Number of phases; valid indices are [0 .. n - 1]. *)
val n : int

(** Display names, indexed by phase. *)
val names : string array
