type core_id = int

type addr = int

type conflict = Raw | Waw | War

let conflict_to_string = function Raw -> "RAW" | Waw -> "WAW" | War -> "WAR"

type shed_reason = Shed_queue_full | Shed_no_tokens | Shed_deadline

let shed_reason_to_string = function
  | Shed_queue_full -> "QUEUE"
  | Shed_no_tokens -> "TOKENS"
  | Shed_deadline -> "DEADLINE"

let shed_reason_of_string = function
  | "QUEUE" -> Some Shed_queue_full
  | "TOKENS" -> Some Shed_no_tokens
  | "DEADLINE" -> Some Shed_deadline
  | _ -> None

module Status = struct
  type state = Pending | Committing | Aborted

  let state_code = function Pending -> 0 | Committing -> 1 | Aborted -> 2

  let encode ~attempt state = (attempt * 4) + state_code state

  let decode v =
    let state =
      match v land 3 with
      | 0 -> Pending
      | 1 -> Committing
      | 2 -> Aborted
      | _ -> invalid_arg "Status.decode: invalid state code"
    in
    (v / 4, state)
end

type cm_meta = {
  m_core : core_id;
  m_attempt : int;
  m_offset_ns : float;
  m_committed : int;
  m_effective_ns : float;
}

type holder = {
  h_core : core_id;
  h_attempt : int;
  h_est_start_ns : float;
  h_committed : int;
  h_effective_ns : float;
  h_granted_ns : float;
}

let holder_of_meta m ~est_start_ns ~granted_ns =
  {
    h_core = m.m_core;
    h_attempt = m.m_attempt;
    h_est_start_ns = est_start_ns;
    h_committed = m.m_committed;
    h_effective_ns = m.m_effective_ns;
    h_granted_ns = granted_ns;
  }
