(** System assembly: builds a simulated machine, partitions the cores
    between the application and the DTM service (Section 3.1), and
    runs workloads.

    Two deployments are supported:
    - [Dedicated]: disjoint sets of cores host the DTM service and the
      application; service cores are spread evenly across the chip
      (every [total/service]-th core) so each tile keeps its locality.
    - [Multitask]: every core hosts both the application and a DTM
      server (the libtask-based initial design); service requests are
      handled only when the application task yields — while it awaits
      its own responses or between operations ({!poll_service}) — so
      remote requests can wait on the application's local computation
      (the Figure 2 effect). *)

type deployment = Dedicated | Multitask

type config = {
  platform : Tm2c_noc.Platform.t;
  total_cores : int;  (** cores in use (application + service) *)
  service_cores : int;  (** DTM cores under [Dedicated] *)
  deployment : deployment;
  policy : Cm.policy;
  wmode : Tx.wmode;
  batching : bool;
      (** write-lock batching: one message per DTM node at commit
          (Section 3.3); [false] sends one message per address — the
          ablation of the paper's design choice *)
  max_skew_ns : float;
      (** bound on the per-core local-clock offsets; larger skew makes
          Offset-Greedy's estimated timestamps less consistent *)
  seed : int;
  mem_words : int;
}

(** A reasonable default: the full 48-core SCC, half the cores
    dedicated to the DTM, FairCM, lazy write acquisition. *)
val default_config : config

type t

val create : config -> t

val config : t -> config

val env : t -> System.env

val sim : t -> Tm2c_engine.Sim.t

val shmem : t -> Tm2c_memory.Shmem.t

(** Allocator over the shared memory (reserves low addresses). *)
val alloc : t -> Tm2c_memory.Alloc.t

val stats : t -> Stats.t

(** The event-trace ring buffer (see {!Tm2c_engine.Trace}); disabled
    until {!enable_tracing} is called. *)
val trace : t -> Event.t Tm2c_engine.Trace.t

(** Abort-causality accounting (always on). *)
val obs : t -> Obs.t

(** Turn on event tracing for this runtime's simulation. *)
val enable_tracing : t -> unit

(** Fault-injection state (plan, counters, crashed cores). Always
    present; created with an empty plan and a [Prng.split_label]
    stream of the root seed, so a run that never installs a plan is
    bit-for-bit identical to one that predates fault injection. *)
val faults : t -> Tm2c_noc.Fault.t

(** Install a fault plan (drop/dup/delay per link, DS-server stall
    windows, crash-stops). Call before {!run} for reproducibility. *)
val set_fault_plan : t -> Tm2c_noc.Fault.plan -> unit

(** Protocol hardening knobs, both disabled (0.0) by default:
    [timeout_ns] — base DTM request timeout, after which the request is
    resent with the same sequence number (exponential backoff per
    resend, bounded; the server absorbs duplicates); [lease_ns] — lock
    lease, after which a holder blocking a new request is forcibly
    reclaimed under a status-word CAS (orphan locks of crashed cores). *)
val set_hardening : t -> ?timeout_ns:float -> ?lease_ns:float -> unit -> unit

(** Test-only mutation hook: disable every client-side poll of its own
    status word (both the attempt-boundary checks and the post-grant
    re-check inside the visible read). This reintroduces the
    stale-read window in which a doomed attempt samples memory after
    its enemy published — the defect the opacity oracle exists to
    catch. Never enable outside tests. *)
val set_skip_doom_check : t -> bool -> unit

(** Replicated DS-lock service. [replicas = 1]: every primary ships
    its lock-table mutations (grants, releases) to the neighboring
    primary over a reliable FIFO channel; clients that exhaust their
    resend patience on a partition bump its epoch, re-route to that
    backup, and the backup reconstructs authoritative state from the
    replica (plus lease expiry for in-flight grants). Requests stamped
    with a stale epoch are refused, so a zombie primary can never
    grant a conflicting lock. [replicas = 0] (the default) is a strict
    no-op. Requires the dedicated deployment with at least 2 service
    cores; pair with {!set_hardening} (timeouts to detect the dead
    primary, leases to clear orphaned grants). Call before {!run}. *)
val enable_replication : t -> replicas:int -> unit

(** Replication degree in effect (0 or 1). *)
val replicas : t -> int

(** Install admission control for open-loop traffic (see {!Admission}):
    bounded per-core queues under the given overload policy. Queues are
    materialized lazily, so enabling this perturbs nothing until a
    driver offers arrivals. Returns the admission state (the open-loop
    driver holds onto it). Call before {!run}; at most once. *)
val enable_admission :
  t -> policy:Admission.policy -> ?retry_after_ns:float -> unit -> Admission.t

(** The admission state, once {!enable_admission} has run. *)
val admission : t -> Admission.t option

(** Host-side store with a trace record ([Event.Host_write]):
    benchmark setup and weak-atomicity private-node initialization
    must go through here (not bare [Shmem.poke]) so the checkers see
    every untraced-core write as an external version of the address.
    Costs nothing when tracing is off. *)
val host_write : t -> Types.addr -> int -> unit

(** Phase-attribution aggregates (see {!Tm2c_engine.Span} and
    {!Phase}): committed and aborted attempts accumulate separately,
    so that per core the committed phase sums equal the summed
    committed-attempt durations. Disabled until {!enable_profiling}. *)
val span_commit : t -> Tm2c_engine.Span.t

val span_abort : t -> Tm2c_engine.Span.t

(** Turn on per-attempt phase attribution. *)
val enable_profiling : t -> unit

(** The simulated-time sampler, once {!enable_timeseries} has run. *)
val timeseries : t -> Tm2c_engine.Timeseries.t option

(** Install and start a windowed sampler driven by simulated time
    (channels: ops, commits, aborts, messages per window; mean DTM
    queue depth; busiest-link message count). Call before {!run};
    at most once. *)
val enable_timeseries : t -> window_ns:float -> unit

(** The flight recorder, once {!enable_recorder} has run. *)
val recorder : t -> Recorder.t option

(** Install and start the flight recorder (see {!Recorder}): periodic
    bounded-memory metrics snapshots every [window_ns] of virtual
    time, optionally streamed as OpenMetrics-style text blocks through
    [out]; [top_k] bounds the per-window link and abort-blame
    listings. Trace events are counted through the trace's second tap
    ([Trace.set_tap]), leaving the primary sink to the checker stack.
    Call before {!run}; at most once. *)
val enable_recorder :
  t -> window_ns:float -> ?out:(string -> unit) -> ?top_k:int -> unit -> unit

(** Emit the recorder's final partial window ("# eof"-terminated).
    Idempotent; a no-op when no recorder is installed. The workload
    collection paths call it, so drivers rarely need to. *)
val finish_recorder : t -> unit

(** Install the reader for the checker sink's high-water mark (e.g.
    [Collector.length]); surfaced in reports, JSON and recorder
    snapshots. The runtime cannot name the checker library itself
    (dependency cycle), hence the generic reader. *)
val set_sink_high_water : t -> (unit -> int) -> unit

(** Current checker-sink high-water mark (0 when no reader installed). *)
val sink_high_water : t -> int

(** Host-side self-profiler: inject a monotonic wall clock (seconds;
    bin/ passes the Unix wall clock) into the scheduler. Host time is
    attributed to wheel / delay-resume / mailbox-delivery / callback /
    dtm / network categories (see {!Tm2c_engine.Sim.set_host_clock});
    virtual results are identical either way. *)
val enable_self_profile : t -> clock:(unit -> float) -> unit

(** (category, host seconds, dispatches) per profiler category; zeros
    unless {!enable_self_profile} ran before {!run}. *)
val self_profile : t -> (string * float * int) array

(** DTM servers instantiated so far (all of them once
    [start_services] has run), in core order. *)
val servers : t -> Dtm.server list

(** Application cores, in id order. *)
val app_cores : t -> Types.core_id array

val dtm_cores : t -> Types.core_id array

(** Fresh PRNG stream derived from the config seed (deterministic). *)
val fork_prng : t -> Tm2c_engine.Prng.t

(** Labelled (non-mutating) split of the root stream: same label, same
    stream, and the root is never advanced — use for subsystems (e.g.
    open-loop arrival generators) whose existence must not perturb the
    {!fork_prng} sequence closed-loop baselines consume. *)
val labeled_prng : t -> label:string -> Tm2c_engine.Prng.t

(** Hand out one of the spare atomic registers (beyond the per-core
    status words) — e.g. the bank baseline's global test-and-set
    lock. Raises when the (small) supply is exhausted. *)
val spare_reg : t -> int

(** Create the transactional context for an application core. *)
val app_ctx : t -> Types.core_id -> Tx.ctx

(** Spawn the DTM service (dedicated: one service process per DTM
    core; multitask: installs the inline handler). Call once, before
    [run]. Also arms any [scrash=] points of the installed fault plan
    (dedicated only), so install the plan first. *)
val start_services : t -> unit

(** Spawn an application process on a core. *)
val spawn_app : t -> Types.core_id -> (unit -> unit) -> unit

(** Under [Multitask], drain and serve pending requests; a no-op under
    [Dedicated]. Application drivers call this between operations. *)
val poll_service : t -> core:Types.core_id -> unit

(** Privatization barrier (Section 8): blocks until every application
    core has called it, implemented with barrier-reached messages over
    the direct application-core communication paths. After the barrier,
    data written by transactions before it may safely be accessed
    non-transactionally. Must be called from application processes
    (one call per application core per round). *)
val barrier : t -> core:Types.core_id -> unit

(** Run the simulation to completion (or to [until], virtual ns).
    Returns the number of events processed — or 0 with {!wedged} set
    when the watchdog tripped. *)
val run : t -> ?until:float -> unit -> int

(** Liveness watchdog: every [window_ns] of virtual time, compare
    total resolved attempts (commits + aborts) with the previous
    window — aborting counts as progress, so a livelocking run rides
    to its horizon; only cores blocked forever resolve nothing.
    [stall_windows] consecutive flat windows while spawned processes
    remain unfinished aborts the run early ({!run} returns 0 and
    {!wedged} turns true) instead of burning virtual time to the
    horizon. Call before {!run}. *)
val enable_watchdog : t -> window_ns:float -> stall_windows:int -> unit

(** The last {!run} was cut short by the watchdog. *)
val wedged : t -> bool
