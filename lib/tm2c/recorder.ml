(* Streaming flight recorder: a periodic snapshot subsystem driven by
   simulated time.

   Every [window_ns] of virtual time it assembles one snapshot block —
   windowed deltas of the always-on counters, windowed and cumulative
   quantiles from the latency sketches, per-phase latency quantiles
   merged across cores, per-DS-partition service gauges, the top-K
   busiest NoC links and top-K abort-blame pairs — emits it through
   [out] in an OpenMetrics-style text format, and then rolls every
   baseline. Nothing is retained per window beyond a handful of
   scalars, so resident memory is constant in run length (unlike
   Timeseries, which accumulates one sample per window per channel).

   Producers are untouched: they keep writing the one cumulative
   counter or sketch they always wrote, and the recorder reads deltas
   against private baselines (Sketch windows for distributions,
   previous-value tables for counters). Event counts arrive through
   the trace's second tap ([Trace.set_tap], wired by
   [Runtime.enable_recorder]) so the checker stack keeps exclusive
   ownership of the primary sink. *)

open Tm2c_engine
open Tm2c_noc

type counter = {
  c_name : string;
  c_read : unit -> float;
  mutable c_start : float;  (* value when the recorder started *)
  mutable c_prev : float;  (* value at the last window roll *)
  mutable c_emitted : float;  (* sum of windowed deltas emitted *)
}

type tracked_sketch = {
  s_name : string;
  s_sketch : Sketch.t;
  s_window : Sketch.window;
}

(* Per-DS-server baselines for the windowed service counters. *)
type server_prev = {
  mutable p_served : int;
  mutable p_busy : float;
  mutable p_reclaims : int;
}

type t = {
  env : System.env;
  window_ns : float;
  top_k : int;
  out : (string -> unit) option;
  servers : unit -> Dtm.server list;
  mutable sink_high_water : unit -> int;
  counters : counter list;
  sketches : tracked_sketch list;
  span_windows : Sketch.window array array;  (* [core].(phase), over span_commit *)
  span_scratch : Sketch.t array;  (* per-phase merge target, reused each tick *)
  prev_links : int array array;
  prev_servers : (int, server_prev) Hashtbl.t;
  prev_blame : (Obs.key, int) Hashtbl.t;
  ev_counts : int array;
  ev_prev : int array;
  buf : Buffer.t;
  mutable n_windows : int;
  mutable started : bool;
  mutable finished : bool;
}

(* Snake-case metric label per Event constructor, index-aligned with
   [event_index] below. *)
let event_names =
  [|
    "tx_start"; "tx_read"; "tx_write"; "tx_commit_begin"; "host_write";
    "rlock_released"; "wlock_granted"; "tx_publish"; "tx_committed";
    "tx_aborted"; "lock_conflict"; "enemy_aborted"; "req_sent"; "service";
    "service_done"; "barrier"; "msg_dropped"; "msg_duplicated"; "req_resent";
    "core_crashed"; "lease_reclaimed"; "server_crashed"; "epoch_bumped";
    "replica_applied"; "failover_done"; "stale_epoch_rejected"; "req_admitted";
    "req_shed"; "req_expired"; "retry_budget_exhausted";
  |]

(* Deliberately exhaustive (no wildcard): adding an Event constructor
   must not silently vanish from the flight recorder — the exporter
   lint (bench/lint.ml) additionally checks every constructor is named
   here. *)
let event_index (ev : Event.t) =
  match ev with
  | Event.Tx_start _ -> 0
  | Event.Tx_read _ -> 1
  | Event.Tx_write _ -> 2
  | Event.Tx_commit_begin _ -> 3
  | Event.Host_write _ -> 4
  | Event.Rlock_released _ -> 5
  | Event.Wlock_granted _ -> 6
  | Event.Tx_publish _ -> 7
  | Event.Tx_committed _ -> 8
  | Event.Tx_aborted _ -> 9
  | Event.Lock_conflict _ -> 10
  | Event.Enemy_aborted _ -> 11
  | Event.Req_sent _ -> 12
  | Event.Service _ -> 13
  | Event.Service_done _ -> 14
  | Event.Barrier _ -> 15
  | Event.Msg_dropped _ -> 16
  | Event.Msg_duplicated _ -> 17
  | Event.Req_resent _ -> 18
  | Event.Core_crashed _ -> 19
  | Event.Lease_reclaimed _ -> 20
  | Event.Server_crashed _ -> 21
  | Event.Epoch_bumped _ -> 22
  | Event.Replica_applied _ -> 23
  | Event.Failover_done _ -> 24
  | Event.Stale_epoch_rejected _ -> 25
  | Event.Req_admitted _ -> 26
  | Event.Req_shed _ -> 27
  | Event.Req_expired _ -> 28
  | Event.Retry_budget_exhausted _ -> 29

let record_event t ev = t.ev_counts.(event_index ev) <- t.ev_counts.(event_index ev) + 1

let quantiles = [ (50.0, "0.5"); (90.0, "0.9"); (99.0, "0.99"); (99.9, "0.999") ]

let create ~env ~window_ns ?out ?(top_k = 8) ~servers () =
  if window_ns <= 0.0 then invalid_arg "Recorder.create: window_ns must be positive";
  if top_k < 1 then invalid_arg "Recorder.create: top_k must be >= 1";
  let stats = env.System.stats in
  let net = env.System.net in
  let fc = Fault.counters env.System.faults in
  let fi = float_of_int in
  let mk name read =
    { c_name = name; c_read = read; c_start = 0.0; c_prev = 0.0; c_emitted = 0.0 }
  in
  let counters =
    [
      mk "ops" (fun () -> fi (Stats.total_ops stats));
      mk "commits" (fun () -> fi (Stats.total_commits stats));
      mk "aborts" (fun () -> fi (Stats.total_aborts stats));
      mk "messages_sent" (fun () -> fi (Network.sent net));
      mk "messages_received" (fun () -> fi (Network.metrics net).Network.received);
      mk "poll_scans" (fun () -> fi (Network.metrics net).Network.poll_scans);
      mk "trace_events_dropped" (fun () -> fi (Trace.dropped env.System.trace));
      mk "faults_msgs_dropped" (fun () -> fi fc.Fault.dropped);
      mk "faults_msgs_duplicated" (fun () -> fi fc.Fault.duplicated);
      mk "resends" (fun () -> fi fc.Fault.resends);
      mk "leases_reclaimed" (fun () -> fi fc.Fault.leases_reclaimed);
      mk "failovers" (fun () -> fi fc.Fault.failovers);
      mk "stale_rejections" (fun () -> fi fc.Fault.stale_rejections);
      mk "replicated" (fun () -> fi fc.Fault.replicated);
      mk "reqs_offered" (fun () -> fi env.System.overload.System.ol_offered);
      mk "reqs_admitted" (fun () -> fi env.System.overload.System.ol_admitted);
      mk "reqs_shed" (fun () -> fi env.System.overload.System.ol_shed);
      mk "reqs_expired" (fun () -> fi env.System.overload.System.ol_expired);
      mk "reqs_completed" (fun () -> fi env.System.overload.System.ol_completed);
      mk "reqs_goodput" (fun () -> fi env.System.overload.System.ol_goodput);
      mk "client_retries" (fun () -> fi env.System.overload.System.ol_retries);
    ]
  in
  let sketches =
    [
      {
        s_name = "commit_latency_ns";
        s_sketch = env.System.commit_lat;
        s_window = Sketch.window_of env.System.commit_lat;
      };
      {
        s_name = "msg_latency_ns";
        s_sketch = (Network.metrics net).Network.latency;
        s_window = Sketch.window_of (Network.metrics net).Network.latency;
      };
      {
        s_name = "e2e_latency_ns";
        s_sketch = env.System.e2e_lat;
        s_window = Sketch.window_of env.System.e2e_lat;
      };
    ]
  in
  let span = env.System.span_commit in
  let span_windows =
    Array.init (Span.n_cores span) (fun core ->
        Array.init (Span.n_phases span) (fun phase ->
            Sketch.window_of (Span.sketch span ~core ~phase)))
  in
  let span_scratch =
    Array.init (Span.n_phases span) (fun _ ->
        Sketch.create ~rel_error:(Span.rel_error span) ())
  in
  {
    env;
    window_ns;
    top_k;
    out;
    servers;
    sink_high_water = (fun () -> 0);
    counters;
    sketches;
    span_windows;
    span_scratch;
    prev_links = Array.map Array.copy (Network.metrics net).Network.per_link;
    prev_servers = Hashtbl.create 16;
    prev_blame = Hashtbl.create 64;
    ev_counts = Array.make (Array.length event_names) 0;
    ev_prev = Array.make (Array.length event_names) 0;
    buf = Buffer.create 4096;
    n_windows = 0;
    started = false;
    finished = false;
  }

let set_sink_high_water t f = t.sink_high_water <- f

let window_ns t = t.window_ns

let n_windows t = t.n_windows

(* [name{k="v",...} value] with integral values printed exactly. *)
let labels kvs =
  match kvs with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) kvs)
      ^ "}"

let pr buf name lbls v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.bprintf buf "tm2c_%s%s %.0f\n" name lbls v
  else Printf.bprintf buf "tm2c_%s%s %g\n" name lbls v

let server_prev_for t core =
  match Hashtbl.find_opt t.prev_servers core with
  | Some p -> p
  | None ->
      let p = { p_served = 0; p_busy = 0.0; p_reclaims = 0 } in
      Hashtbl.add t.prev_servers core p;
      p

(* Take the [k] largest (by [weight]) of [items] without sorting the
   whole list — window top-Ks only ever need a handful. *)
let top_by k weight items =
  let sorted = List.sort (fun a b -> compare (weight b) (weight a)) items in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take k sorted

let emit_window t ~t_ns =
  let b = t.buf in
  Buffer.clear b;
  Printf.bprintf b "# window %d t_ns %.0f\n" t.n_windows t_ns;
  (* Counters: cumulative total since [start], plus this window's
     delta. The emitted deltas telescope: their sum always equals the
     last emitted total, the invariant validate_json re-checks. *)
  List.iter
    (fun c ->
      let v = c.c_read () in
      let d = v -. c.c_prev in
      c.c_prev <- v;
      c.c_emitted <- c.c_emitted +. d;
      pr b (c.c_name ^ "_total") "" (v -. c.c_start);
      pr b (c.c_name ^ "_window") "" d)
    t.counters;
  pr b "trace_sink_high_water" "" (float_of_int (t.sink_high_water ()));
  (* Latency sketches: cumulative and windowed quantiles. *)
  List.iter
    (fun s ->
      pr b (s.s_name ^ "_count") "" (float_of_int (Sketch.count s.s_sketch));
      pr b
        (s.s_name ^ "_window_count")
        ""
        (float_of_int (Sketch.window_count s.s_sketch s.s_window));
      List.iter
        (fun (p, q) ->
          pr b s.s_name (labels [ ("q", q) ]) (Sketch.percentile s.s_sketch p))
        quantiles;
      if Sketch.window_count s.s_sketch s.s_window > 0 then
        List.iter
          (fun (p, q) ->
            pr b (s.s_name ^ "_window")
              (labels [ ("q", q) ])
              (Sketch.window_percentile s.s_sketch s.s_window p))
          quantiles;
      Sketch.window_roll s.s_sketch s.s_window)
    t.sketches;
  (* Per-phase windowed latency: merge each core's window delta into
     the per-phase scratch sketch, then roll all the windows. *)
  let span = t.env.System.span_commit in
  if Span.enabled span then begin
    let phases = Span.phases span in
    Array.iteri
      (fun phase name ->
        let scratch = t.span_scratch.(phase) in
        Sketch.reset scratch;
        for core = 0 to Span.n_cores span - 1 do
          Sketch.window_merge
            (Span.sketch span ~core ~phase)
            t.span_windows.(core).(phase) ~into:scratch
        done;
        if Sketch.count scratch > 0 then begin
          pr b "phase_ns_window_count"
            (labels [ ("phase", name) ])
            (float_of_int (Sketch.count scratch));
          List.iter
            (fun (p, q) ->
              pr b "phase_ns_window"
                (labels [ ("phase", name); ("q", q) ])
                (Sketch.percentile scratch p))
            quantiles
        end)
      phases;
    for core = 0 to Span.n_cores span - 1 do
      for phase = 0 to Span.n_phases span - 1 do
        Sketch.window_roll (Span.sketch span ~core ~phase)
          t.span_windows.(core).(phase)
      done
    done
  end;
  (* Per-DS-partition service gauges and windowed counters. *)
  let net = t.env.System.net in
  List.iter
    (fun s ->
      let core = Dtm.core s in
      let lbl = labels [ ("core", string_of_int core) ] in
      let prev = server_prev_for t core in
      let served = Dtm.served s in
      let busy = Dtm.busy_ns s in
      let reclaims = Dtm.lease_reclaims s in
      pr b "dtm_served_window" lbl (float_of_int (served - prev.p_served));
      pr b "dtm_busy_ns_window" lbl (busy -. prev.p_busy);
      if reclaims - prev.p_reclaims > 0 then
        pr b "dtm_lease_reclaims_window" lbl
          (float_of_int (reclaims - prev.p_reclaims));
      pr b "dtm_queue_depth" lbl (float_of_int (Network.pending net ~self:core));
      pr b "dtm_resp_cache" lbl (float_of_int (Dtm.resp_cache_size s));
      prev.p_served <- served;
      prev.p_busy <- busy;
      prev.p_reclaims <- reclaims)
    (t.servers ());
  (* Partition epochs, only once failover is live (they are all 0 and
     meaningless otherwise). *)
  let fo = t.env.System.failover in
  if fo.System.fo_enabled then
    Array.iteri
      (fun part e ->
        pr b "partition_epoch" (labels [ ("part", string_of_int part) ])
          (float_of_int e))
      fo.System.fo_epoch;
  (* Top-K busiest NoC links this window. *)
  let links = (Network.metrics net).Network.per_link in
  let deltas = ref [] in
  Array.iteri
    (fun src row ->
      Array.iteri
        (fun dst c ->
          let d = c - t.prev_links.(src).(dst) in
          t.prev_links.(src).(dst) <- c;
          if d > 0 then deltas := (src, dst, d) :: !deltas)
        row)
    links;
  List.iter
    (fun (src, dst, d) ->
      pr b "link_msgs_window"
        (labels [ ("src", string_of_int src); ("dst", string_of_int dst) ])
        (float_of_int d))
    (top_by t.top_k (fun (_, _, d) -> d) !deltas);
  (* Top-K abort-blame pairs this window (windowed deltas of the
     always-on Obs causality table). *)
  let blame = ref [] in
  List.iter
    (fun ((key : Obs.key), count, _addr) ->
      let prev = match Hashtbl.find_opt t.prev_blame key with Some p -> p | None -> 0 in
      Hashtbl.replace t.prev_blame key count;
      if count - prev > 0 then blame := (key, count - prev) :: !blame)
    (Obs.dump t.env.System.obs);
  List.iter
    (fun ((key : Obs.key), d) ->
      pr b "abort_blame_window"
        (labels
           [
             ("winner", string_of_int key.Obs.winner);
             ("victim", string_of_int key.Obs.victim);
             ("conflict", Types.conflict_to_string key.Obs.conflict);
           ])
        (float_of_int d))
    (top_by t.top_k (fun (_, d) -> d) !blame);
  (* Windowed trace-event counts (0 while tracing is off: the tap only
     sees recorded events). *)
  Array.iteri
    (fun i name ->
      let d = t.ev_counts.(i) - t.ev_prev.(i) in
      t.ev_prev.(i) <- t.ev_counts.(i);
      if d > 0 then
        pr b "trace_events_window" (labels [ ("type", name) ]) (float_of_int d))
    event_names;
  (match t.out with
  | Some out -> out (Buffer.contents b)
  | None -> ());
  Buffer.clear b;
  t.n_windows <- t.n_windows + 1

let start t =
  if t.started then invalid_arg "Recorder.start: already started";
  t.started <- true;
  (* Baseline every counter at the start instant, so totals are "since
     the recorder started" (== run totals when started before run). *)
  List.iter
    (fun c ->
      let v = c.c_read () in
      c.c_start <- v;
      c.c_prev <- v)
    t.counters;
  let sim = t.env.System.sim in
  (* Timeseries' recurring-event pattern: the tick reschedules itself
     only while other events are pending, so the recorder never keeps
     an otherwise-finished simulation alive. *)
  let rec tick at () =
    if not t.finished then begin
      emit_window t ~t_ns:at;
      if Sim.pending sim > 0 then
        Sim.schedule sim ~at:(at +. t.window_ns) (tick (at +. t.window_ns))
    end
  in
  let first = Sim.now sim +. t.window_ns in
  Sim.schedule sim ~at:first (tick first)

let finish t =
  if t.started && not t.finished then begin
    emit_window t ~t_ns:(Sim.now t.env.System.sim);
    t.finished <- true;
    match t.out with Some out -> out "# eof\n" | None -> ()
  end

let counter_totals t =
  List.map (fun c -> (c.c_name, c.c_read () -. c.c_start, c.c_emitted)) t.counters

let sketch_totals t = List.map (fun s -> (s.s_name, s.s_sketch)) t.sketches

let phase_sketches t =
  let span = t.env.System.span_commit in
  Array.to_list
    (Array.mapi
       (fun phase name -> (name, Span.merged_sketch span ~phase))
       (Span.phases span))

let event_totals t =
  Array.to_list (Array.mapi (fun i name -> (name, t.ev_counts.(i))) event_names)
