open Types
open Tm2c_engine
open Tm2c_noc
open Tm2c_memory

type elastic = Enone | Elastic_early | Elastic_read

type wmode = Lazy | Eager

exception Abort_exn of conflict option

(* Back-off-Retry parameters: randomized wait whose upper bound grows
   exponentially with consecutive aborts of the same transaction and
   resets when a new transaction starts (Section 4.2). *)
let backoff_initial_ns = 2_500.0
let backoff_cap_ns = 1_000_000.0

type ctx = {
  env : System.env;
  core : core_id;
  prng : Prng.t;
  wmode : wmode;
  mutable elastic : elastic;
  mutable attempt : int;
  mutable committed : int;
  mutable effective_ns : float;
  mutable tx_start : float;
  mutable in_tx : bool;
  mutable irrevocable : bool;
  read_buf : (addr, int) Hashtbl.t;
  mutable reads_held : addr list;
  write_buf : (addr, int) Hashtbl.t;
  mutable write_order : addr list;  (* reversed program order *)
  mutable writes_held : addr list;
  mutable early_window : addr list;  (* most recent first, length <= 2 *)
  mutable eread_window : (addr * int) list;  (* most recent first, <= 2 *)
  mutable req_counter : int;
  mutable backoff_ns : float;
  stats : Stats.core;
  (* Phase attribution scratch (see Phase / Span): the current
     attempt's per-phase ns, flushed into the env's committed or
     aborted aggregate when the attempt's outcome is known. *)
  ph_scratch : float array;
  mutable ph_mark : float;  (* last charged boundary, Sim.now *)
  mutable ph_attempt_start : float;
}

let make env ~core ~prng ~wmode =
  {
    env;
    core;
    prng;
    wmode;
    elastic = Enone;
    attempt = 0;
    committed = 0;
    effective_ns = 0.0;
    tx_start = 0.0;
    in_tx = false;
    irrevocable = false;
    read_buf = Hashtbl.create 64;
    reads_held = [];
    write_buf = Hashtbl.create 16;
    write_order = [];
    writes_held = [];
    early_window = [];
    eread_window = [];
    req_counter = 0;
    backoff_ns = backoff_initial_ns;
    stats = Stats.core env.System.stats core;
    ph_scratch = Array.make Phase.n 0.0;
    ph_mark = 0.0;
    ph_attempt_start = 0.0;
  }

let core ctx = ctx.core

let env ctx = ctx.env

(* Lifecycle trace events; guard construction so that untraced runs
   allocate nothing. *)
let trace_on ctx = Trace.enabled ctx.env.System.trace

let emit ctx ev =
  Trace.record ctx.env.System.trace ~now:(Sim.now ctx.env.System.sim) ev

let stats ctx = ctx.stats

let committed ctx = ctx.committed

(* Phase attribution (Span): guarded like tracing — one boolean read
   and no float work when profiling is off. Durations use [Sim.now]
   throughout (the per-core skew is constant, so local durations are
   identical), and the scratch protocol telescopes: every segment
   between [ph_mark] boundaries is charged to exactly one phase, so
   the flushed phases sum to the attempt's duration. *)
let prof_on ctx = Span.enabled ctx.env.System.span_commit

let sim_now ctx = Sim.now ctx.env.System.sim

let ph_charge ctx phase =
  let now = sim_now ctx in
  ctx.ph_scratch.(phase) <- ctx.ph_scratch.(phase) +. (now -. ctx.ph_mark);
  ctx.ph_mark <- now

(* Split a read-lock round trip into transit / service / queue using
   the platform's deterministic costs. Transit covers both flights
   plus the four software send/receive overheads; service is the DTM
   core's request-processing cycles; the queue residual absorbs
   waiting behind other requests, conflict-resolution work at the
   server, and float rounding. Components are clamped so they always
   sum to the measured round trip. *)
let ph_charge_read ctx ~dst t0 =
  let now = sim_now ctx in
  let rt = now -. t0 in
  let net = ctx.env.System.net in
  let p = Network.platform net in
  let transit =
    (2.0 *. (Platform.send_overhead_ns p +. Platform.recv_overhead_ns p))
    +. (2.0 *. Platform.flight_ns p ~active:(Network.active net) ~src:ctx.core ~dst)
  in
  let transit = Float.min transit rt in
  let service =
    Float.min (Dtm.service_estimate_ns ctx.env ~n_addrs:1) (rt -. transit)
  in
  let queue = rt -. transit -. service in
  ctx.ph_scratch.(Phase.read_transit) <- ctx.ph_scratch.(Phase.read_transit) +. transit;
  ctx.ph_scratch.(Phase.read_service) <- ctx.ph_scratch.(Phase.read_service) +. service;
  ctx.ph_scratch.(Phase.read_queue) <- ctx.ph_scratch.(Phase.read_queue) +. queue;
  ctx.ph_mark <- now

let local_now ctx = System.local_now ctx.env ~core:ctx.core

let compute ctx cycles = Network.compute ctx.env.System.net cycles

let meta ctx =
  {
    m_core = ctx.core;
    m_attempt = ctx.attempt;
    m_offset_ns = local_now ctx -. ctx.tx_start;
    m_committed = ctx.committed;
    m_effective_ns = ctx.effective_ns;
  }

(* After each timeout-triggered resend the timeout doubles, bounded by
   this factor over the configured base. *)
let resend_backoff_factor = 16.0

(* Failover trigger: this many consecutive silent timeouts on one
   request and the client declares the partition's primary dead —
   bumps the epoch and re-routes to the backup. Three full (doubling)
   windows comfortably outlast any stall a live server recovers from
   within one base timeout, and — together with the backoff — give the
   reliable replication channel ample time to drain before the backup
   is promoted (see DESIGN.md "Failover"). *)
let failover_resend_threshold = 3

(* Receive until our response arrives; under the multitasking
   deployment, service requests arriving in the meantime are handled
   inline (the libtask coroutine switch of Section 3.1). When request
   timeouts are enabled ([env.req_timeout_ns] > 0), a silent wait
   resends the same request — same sequence number, so the server
   absorbs duplicates and a late original reply is simply dropped by
   the [req_id] match below. With failover enabled, enough silent
   timeouts bump the partition's epoch and re-route to the backup; a
   [Stale_epoch] refusal (we raced another client's bump, or a healed
   zombie primary refused us) likewise re-routes and retries — neither
   is ever surfaced to the caller. *)
let await ctx ~dst ~kind req_id =
  (* Under multitasking, the first service request interrupting this
     wait pays the coroutine-scheduling delay (the application task's
     current computation slice must complete first — Figure 2);
     requests already queued behind it are then served in the same
     scheduling slot. *)
  let deferred = ref false in
  let resends = ref 0 in
  let dst = ref dst in
  let base = ctx.env.System.req_timeout_ns in
  let fo = ctx.env.System.failover in
  let part () =
    if fo.fo_enabled then
      System.kind_part ~n_parts:(Array.length fo.fo_epoch) kind
    else None
  in
  (* Route to the partition's current owner (a bump — ours or a
     peer's — may have moved it) and re-stamp the epoch. *)
  let resend () =
    (match part () with Some p -> dst := fo.fo_owner.(p) | None -> ());
    if trace_on ctx then
      emit ctx
        (Event.Req_resent { core = ctx.core; server = !dst; req_id; nth = !resends });
    Network.send ctx.env.System.net ~src:ctx.core ~dst:!dst
      (System.Req
         { tx = meta ctx; kind; req_id; epoch = System.epoch_for ctx.env kind })
  in
  let rec loop timeout_ns =
    let msg =
      if timeout_ns > 0.0 then
        Network.recv_timeout ctx.env.System.net ~self:ctx.core ~timeout_ns
      else Some (Network.recv ctx.env.System.net ~self:ctx.core)
    in
    match msg with
    | None ->
        incr resends;
        let c = Fault.counters ctx.env.System.faults in
        c.Fault.resends <- c.Fault.resends + 1;
        (match part () with
        | Some p when !resends >= failover_resend_threshold ->
            System.bump_epoch ctx.env ~part:p ~by:ctx.core
        | Some _ | None -> ());
        resend ();
        loop (Float.min (timeout_ns *. 2.0) (base *. resend_backoff_factor))
    | Some (System.Resp r) when r.req_id = req_id -> (
        match r.resp with
        | System.Stale_epoch ->
            (* Refused for epoch reasons: the partition has a new owner
               (or we are behind on the epoch). Re-route and retry the
               same request transparently. *)
            incr resends;
            resend ();
            loop timeout_ns
        | resp -> resp)
    | Some (System.Resp _) -> loop timeout_ns
    | Some (System.Req { kind = System.Barrier_reached; _ }) ->
        (* A peer reached a privatization barrier while we are still
           inside a transaction: stash it for our own barrier call. *)
        ctx.env.System.barrier_seen.(ctx.core) <-
          ctx.env.System.barrier_seen.(ctx.core) + 1;
        loop timeout_ns
    | Some (System.Req r) -> (
        match ctx.env.System.serve_inline with
        | Some serve ->
            if not !deferred then begin
              deferred := true;
              Network.compute ctx.env.System.net ctx.env.System.serve_defer_cycles
            end;
            serve ~self:ctx.core r;
            loop timeout_ns
        | None ->
            invalid_arg "Tx.await: application core received a service request")
    | Some (System.Repl _) ->
        invalid_arg "Tx.await: application core received replication traffic"
  in
  loop base

let send_request ctx ~dst kind =
  ctx.req_counter <- ctx.req_counter + 1;
  let req_id = ctx.req_counter in
  if trace_on ctx then
    emit ctx
      (Event.Req_sent
         {
           core = ctx.core;
           server = dst;
           req_id;
           kind = Dtm.kind_label kind;
           n_addrs = Dtm.kind_addrs kind;
         });
  Network.send ctx.env.System.net ~src:ctx.core ~dst
    (System.Req
       { tx = meta ctx; kind; req_id; epoch = System.epoch_for ctx.env kind });
  await ctx ~dst ~kind req_id

(* Releases are fire-and-forget. *)
let send_release ctx ~dst kind =
  Network.send ctx.env.System.net ~src:ctx.core ~dst
    (System.Req
       { tx = meta ctx; kind; req_id = 0; epoch = System.epoch_for ctx.env kind })

let group_by_owner ctx addrs =
  (* Write sets are a handful of addresses, so assoc-list grouping
     beats building (and collecting) a Hashtbl per commit. Groups
     accumulate each owner's addresses in reverse traversal order,
     exactly as the former hash-based grouping did. *)
  let rec add groups owner a =
    match groups with
    | [] -> [ (owner, [ a ]) ]
    | (o, g) :: rest when o = owner -> (o, a :: g) :: rest
    | p :: rest -> p :: add rest owner a
  in
  let groups =
    List.fold_left (fun acc a -> add acc (ctx.env.System.owner_of a) a) [] addrs
  in
  List.sort (fun (a, _) (b, _) -> compare a b) groups

(* Without write-lock batching every address travels in its own
   message (the Section 3.3 ablation). *)
let commit_groups ctx addrs =
  if ctx.env.System.batching then group_by_owner ctx addrs
  else List.map (fun a -> (ctx.env.System.owner_of a, [ a ])) addrs

let status_encode ctx state = Status.encode ~attempt:ctx.attempt state

(* Crash-stop fault injection, polled at operation boundaries (attempt
   start, every lock round trip): the core dies by raising
   [Sim.Stopped], so the fiber unwinds without sending any release —
   its status word stays Pending and its locks are orphaned until
   lease reclamation revokes them. A crash never lands inside the
   commit's publish/write-back (no boundary there), so the write set is
   all-or-nothing. *)
let check_crash ctx =
  let f = ctx.env.System.faults in
  if Fault.crash_due f ~core:ctx.core ~now:(sim_now ctx) then begin
    Fault.mark_crashed f ~core:ctx.core;
    if trace_on ctx then
      emit ctx
        (Event.Core_crashed
           { core = ctx.core; attempt = (if ctx.in_tx then ctx.attempt else -1) });
    raise Sim.Stopped
  end

(* Poll our status word: a remote contention manager may have aborted
   this attempt. Gated by the test-only mutation hook that
   reintroduces the stale-read window for the opacity oracle tests. *)
let check_doomed ctx =
  if not ctx.env.System.unsafe_skip_doom_check then
    let v = Atomic_reg.read ctx.env.System.regs ~core:ctx.core ~reg:ctx.core in
    if v = status_encode ctx Status.Aborted then raise (Abort_exn None)

let check_status ctx =
  check_crash ctx;
  check_doomed ctx

let begin_attempt ctx =
  check_crash ctx;
  Hashtbl.reset ctx.read_buf;
  Hashtbl.reset ctx.write_buf;
  ctx.reads_held <- [];
  ctx.write_order <- [];
  ctx.writes_held <- [];
  ctx.early_window <- [];
  ctx.eread_window <- [];
  Atomic_reg.write ctx.env.System.regs ~core:ctx.core ~reg:ctx.core
    (status_encode ctx Status.Pending);
  ctx.tx_start <- local_now ctx;
  ctx.in_tx <- true;
  if prof_on ctx then begin
    Array.fill ctx.ph_scratch 0 Phase.n 0.0;
    ctx.ph_attempt_start <- sim_now ctx;
    ctx.ph_mark <- ctx.ph_attempt_start
  end;
  if trace_on ctx then
    emit ctx
      (Event.Tx_start
         { core = ctx.core; attempt = ctx.attempt; elastic = ctx.elastic <> Enone })

let release_all ctx =
  List.iter
    (fun (dst, addrs) -> send_release ctx ~dst (System.Release_writes addrs))
    (group_by_owner ctx ctx.writes_held);
  List.iter
    (fun (dst, addrs) -> send_release ctx ~dst (System.Release_reads addrs))
    (group_by_owner ctx ctx.reads_held);
  ctx.writes_held <- [];
  ctx.reads_held <- []

(* Transactional read: Algorithm 4, plus the two elastic variants. *)
let locked_read ctx addr =
  check_status ctx;
  let dst = ctx.env.System.owner_of addr in
  let prof = prof_on ctx in
  if prof then ph_charge ctx Phase.compute;
  let t0 = if prof then sim_now ctx else 0.0 in
  match send_request ctx ~dst (System.Read_lock addr) with
  | System.Granted ->
      if prof then ph_charge_read ctx ~dst t0;
      (* A contention-manager CAS may have doomed this attempt while
         the grant was in flight — the winner then publishes before we
         wake, so sampling now would mix pre- and post-publish values
         across this attempt's reads. Re-check in the same simulation
         slice as the sample (no suspension in between), so a doomed
         attempt never records a granted read it could not have taken
         under opacity. *)
      (try check_doomed ctx
       with Abort_exn _ as e ->
         if trace_on ctx then
           emit ctx
             (Event.Tx_read { core = ctx.core; addr; granted = false; value = 0 });
         raise e);
      let v = Shmem.read ctx.env.System.shmem ~core:ctx.core addr in
      (* Emitted after the sample so the event timestamp is the
         instant the value was actually observed — the oracle's
         versioned replay depends on it. *)
      if trace_on ctx then
        emit ctx (Event.Tx_read { core = ctx.core; addr; granted = true; value = v });
      Hashtbl.replace ctx.read_buf addr v;
      ctx.reads_held <- addr :: ctx.reads_held;
      v
  | System.Conflicted c ->
      if prof then ph_charge_read ctx ~dst t0;
      if trace_on ctx then
        emit ctx (Event.Tx_read { core = ctx.core; addr; granted = false; value = 0 });
      raise (Abort_exn (Some c))
  | System.Stale_epoch -> assert false (* consumed inside [await] *)

let elastic_early_read ctx addr =
  let v = locked_read ctx addr in
  ctx.early_window <- addr :: ctx.early_window;
  (match ctx.early_window with
  | [ a; b; oldest ] ->
      ctx.early_window <- [ a; b ];
      (* Early release: one extra message per discarded read entry
         (the cost that limits elastic-early's speedup, Fig. 7a). *)
      send_release ctx ~dst:(ctx.env.System.owner_of oldest)
        (System.Release_reads [ oldest ]);
      if trace_on ctx then
        emit ctx (Event.Rlock_released { core = ctx.core; addr = oldest });
      ctx.reads_held <- List.filter (fun x -> x <> oldest) ctx.reads_held;
      Hashtbl.remove ctx.read_buf oldest
  | _ -> ());
  v

let elastic_read ctx addr =
  let v = Shmem.read ctx.env.System.shmem ~core:ctx.core addr in
  (match ctx.eread_window with
  | (prev, prev_v) :: _ ->
      (* Validate the preceding read: if a committed update changed
         it, the two consecutive reads are not atomic — abort. *)
      let cur = Shmem.read ctx.env.System.shmem ~core:ctx.core prev in
      if cur <> prev_v then raise (Abort_exn (Some War))
  | [] -> ());
  ctx.eread_window <-
    (match ctx.eread_window with
    | first :: _ -> [ (addr, v); first ]
    | [] -> [ (addr, v) ]);
  v

let read ctx addr =
  if not ctx.in_tx then invalid_arg "Tx.read: outside atomic";
  ctx.stats.Stats.tx_reads <- ctx.stats.Stats.tx_reads + 1;
  if ctx.irrevocable then Shmem.read ctx.env.System.shmem ~core:ctx.core addr
  else
  match Hashtbl.find_opt ctx.write_buf addr with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt ctx.read_buf addr with
      | Some v -> v
      | None -> (
          let in_prefix = ctx.write_order = [] in
          match ctx.elastic with
          | Elastic_read when in_prefix -> elastic_read ctx addr
          | Elastic_early when in_prefix -> elastic_early_read ctx addr
          | Enone | Elastic_read | Elastic_early -> locked_read ctx addr))

let write ctx addr v =
  if not ctx.in_tx then invalid_arg "Tx.write: outside atomic";
  ctx.stats.Stats.tx_writes <- ctx.stats.Stats.tx_writes + 1;
  if ctx.irrevocable then Shmem.write ctx.env.System.shmem ~core:ctx.core addr v
  else begin
  let fresh = not (Hashtbl.mem ctx.write_buf addr) in
  Hashtbl.replace ctx.write_buf addr v;
  (* Every store is traced (not just the first per address): the last
     Tx_write per address carries the value the commit publishes. *)
  if trace_on ctx then emit ctx (Event.Tx_write { core = ctx.core; addr; value = v });
  if fresh then begin
    ctx.write_order <- addr :: ctx.write_order;
    if ctx.wmode = Eager && not (List.mem addr ctx.writes_held) then begin
      check_status ctx;
      if prof_on ctx then ph_charge ctx Phase.compute;
      match
        send_request ctx ~dst:(ctx.env.System.owner_of addr)
          (System.Write_locks [ addr ])
      with
      | System.Granted ->
          if prof_on ctx then ph_charge ctx Phase.commit_acquire;
          if trace_on ctx then
            emit ctx (Event.Wlock_granted { core = ctx.core; addrs = [ addr ] });
          ctx.writes_held <- addr :: ctx.writes_held
      | System.Conflicted c ->
          if prof_on ctx then ph_charge ctx Phase.commit_acquire;
          raise (Abort_exn (Some c))
      | System.Stale_epoch -> assert false (* consumed inside [await] *)
    end
  end
  end

let abort _ctx = raise (Abort_exn None)

(* Algorithm 3: acquire the missing write locks (batched per node),
   switch the status word to Committing — the linearization point —
   validate any remaining elastic-read window, persist the write set,
   release every lock and update the metadata. *)
let commit ctx =
  if prof_on ctx then ph_charge ctx Phase.compute;
  if trace_on ctx then
    emit ctx
      (Event.Tx_commit_begin
         {
           core = ctx.core;
           attempt = ctx.attempt;
           n_writes = List.length ctx.write_order;
         });
  let to_acquire =
    List.filter (fun a -> not (List.mem a ctx.writes_held)) (List.rev ctx.write_order)
  in
  List.iter
    (fun (dst, addrs) ->
      check_status ctx;
      match send_request ctx ~dst (System.Write_locks addrs) with
      | System.Granted ->
          if prof_on ctx then ph_charge ctx Phase.commit_acquire;
          if trace_on ctx then
            emit ctx (Event.Wlock_granted { core = ctx.core; addrs });
          ctx.writes_held <- addrs @ ctx.writes_held
      | System.Conflicted c ->
          if prof_on ctx then ph_charge ctx Phase.commit_acquire;
          raise (Abort_exn (Some c))
      | System.Stale_epoch -> assert false (* consumed inside [await] *))
    (commit_groups ctx to_acquire);
  let committing =
    Atomic_reg.cas ctx.env.System.regs ~core:ctx.core ~reg:ctx.core
      ~expect:(status_encode ctx Status.Pending)
      ~repl:(status_encode ctx Status.Committing)
  in
  if not committing then raise (Abort_exn None);
  List.iter
    (fun (a, v) ->
      if Shmem.read ctx.env.System.shmem ~core:ctx.core a <> v then
        raise (Abort_exn (Some War)))
    ctx.eread_window;
  (* The publish event is stamped here, immediately before the burst:
     [write_burst] applies the data at call time and charges latency
     afterwards, so this timestamp is the exact instant the write set
     becomes visible to other cores. *)
  if trace_on ctx then
    emit ctx
      (Event.Tx_publish
         {
           core = ctx.core;
           attempt = ctx.attempt;
           n_writes = List.length ctx.write_order;
         });
  (* Atomic in simulated time: a run horizon must not be able to
     freeze this fiber with the write set half applied. *)
  Shmem.write_burst ctx.env.System.shmem ~core:ctx.core
    (List.rev_map (fun a -> (a, Hashtbl.find ctx.write_buf a)) ctx.write_order);
  release_all ctx;
  (* Everything from the status CAS through write-back and lock
     release is one phase; flushing here makes the committed phase
     sums telescope to exactly this attempt's duration. *)
  if prof_on ctx then begin
    ph_charge ctx Phase.writeback;
    Span.flush ctx.env.System.span_commit ~core:ctx.core ctx.ph_scratch
      ~total:(sim_now ctx -. ctx.ph_attempt_start)
  end;
  let elapsed = local_now ctx -. ctx.tx_start in
  (* Always-on commit-latency sketch: the same elapsed value the
     Tx_committed event carries, recorded unconditionally (O(1)). *)
  Sketch.add ctx.env.System.commit_lat elapsed;
  if trace_on ctx then
    emit ctx
      (Event.Tx_committed
         { core = ctx.core; attempt = ctx.attempt; duration_ns = elapsed });
  ctx.effective_ns <- ctx.effective_ns +. elapsed;
  ctx.stats.Stats.effective_ns <- ctx.stats.Stats.effective_ns +. elapsed;
  ctx.committed <- ctx.committed + 1;
  ctx.stats.Stats.commits <- ctx.stats.Stats.commits + 1;
  (* Rule (c) of Property 1: the next transaction of this core has a
     strictly lower priority; bumping the attempt also invalidates any
     in-flight revocations against the finished attempt. *)
  ctx.attempt <- ctx.attempt + 1;
  ctx.in_tx <- false

let record_abort ctx = function
  | Some Raw -> ctx.stats.Stats.aborts_raw <- ctx.stats.Stats.aborts_raw + 1
  | Some Waw -> ctx.stats.Stats.aborts_waw <- ctx.stats.Stats.aborts_waw + 1
  | Some War -> ctx.stats.Stats.aborts_war <- ctx.stats.Stats.aborts_war + 1
  | None -> ctx.stats.Stats.aborts_status <- ctx.stats.Stats.aborts_status + 1

let abort_cleanup ctx conflict =
  record_abort ctx conflict;
  if trace_on ctx then
    emit ctx (Event.Tx_aborted { core = ctx.core; attempt = ctx.attempt; conflict });
  release_all ctx;
  (* The unwind — release messages and whatever ran since the last
     boundary — is charged to writeback; the backoff below happens
     between attempts, so it is added to the aborted aggregate
     directly rather than through the attempt scratch. *)
  if prof_on ctx then begin
    ph_charge ctx Phase.writeback;
    Span.flush ctx.env.System.span_abort ~core:ctx.core ctx.ph_scratch
      ~total:(sim_now ctx -. ctx.ph_attempt_start)
  end;
  ctx.attempt <- ctx.attempt + 1;
  ctx.in_tx <- false;
  if Cm.uses_backoff ctx.env.System.policy then begin
    let d = Prng.float ctx.prng *. ctx.backoff_ns in
    Sim.delay d;
    if prof_on ctx then
      Span.add ctx.env.System.span_abort ~core:ctx.core ~phase:Phase.backoff d;
    ctx.backoff_ns <- Float.min (ctx.backoff_ns *. 2.0) backoff_cap_ns
  end

(* Irrevocable transactions: acquire exclusive access to every DTM
   partition (ascending node order prevents deadlock between two
   irrevocable transactions), run pessimistically with direct memory
   accesses, release. Never aborts, so the body runs exactly once. *)
let irrevocable ctx f =
  if ctx.in_tx then invalid_arg "Tx.irrevocable: nested transactions are not supported";
  ctx.in_tx <- true;
  ctx.irrevocable <- true;
  ctx.tx_start <- local_now ctx;
  Array.iter
    (fun dst ->
      match send_request ctx ~dst System.Exclusive_acquire with
      | System.Granted -> ()
      | System.Conflicted _ | System.Stale_epoch ->
          invalid_arg "Tx.irrevocable: exclusive acquisition refused")
    ctx.env.System.dtm_cores;
  let v = f () in
  Array.iter
    (fun dst -> send_release ctx ~dst System.Exclusive_release)
    ctx.env.System.dtm_cores;
  let elapsed = local_now ctx -. ctx.tx_start in
  Sketch.add ctx.env.System.commit_lat elapsed;
  ctx.effective_ns <- ctx.effective_ns +. elapsed;
  ctx.stats.Stats.effective_ns <- ctx.stats.Stats.effective_ns +. elapsed;
  ctx.stats.Stats.lifespan_ns <- ctx.stats.Stats.lifespan_ns +. elapsed;
  ctx.committed <- ctx.committed + 1;
  ctx.stats.Stats.commits <- ctx.stats.Stats.commits + 1;
  ctx.attempt <- ctx.attempt + 1;
  ctx.irrevocable <- false;
  ctx.in_tx <- false;
  v

let atomic ?(elastic = Enone) ctx f =
  if ctx.in_tx then invalid_arg "Tx.atomic: nested transactions are not supported";
  ctx.elastic <- elastic;
  ctx.backoff_ns <- backoff_initial_ns;
  let lifespan_start = local_now ctx in
  let attempts = ref 0 in
  let rec attempt_once () =
    incr attempts;
    begin_attempt ctx;
    match
      let v = f () in
      commit ctx;
      v
    with
    | v -> v
    | exception Abort_exn conflict ->
        abort_cleanup ctx conflict;
        attempt_once ()
  in
  let v = attempt_once () in
  ctx.stats.Stats.lifespan_ns <-
    ctx.stats.Stats.lifespan_ns +. (local_now ctx -. lifespan_start);
  if !attempts > ctx.stats.Stats.max_attempts then
    ctx.stats.Stats.max_attempts <- !attempts;
  v
