open Types
open Tm2c_noc
open Tm2c_memory

type server = {
  core : core_id;
  locks : Locktable.t;
  mutable served : int;
  (* Irrevocable-transaction support: the partition's exclusive owner
     and the FIFO of transactions waiting to become it. While an
     exclusive grant is active or pending, normal lock requests are
     refused so the table drains. *)
  mutable exclusive : (core_id * int) option;
  excl_queue : System.request Queue.t;
  (* Service observability: input-queue depth and lock-table occupancy
     sampled at each request pickup. *)
  mutable q_sum : int;
  mutable q_max : int;
  mutable occ_sum : int;
  mutable occ_max : int;
  (* Virtual ns spent inside [handle] (pickup to response sent):
     busy_ns / run duration is the service core's utilization. *)
  mutable busy_ns : float;
  (* Lease reclamations performed by this server (the global figure
     lives in Fault.counters; the per-server split feeds the flight
     recorder's per-partition gauges). *)
  mutable lease_reclaims : int;
  (* Duplicate absorption: per requester, the newest awaited request id
     seen and the response sent for it (None while it is still queued,
     e.g. a waiting Exclusive_acquire). Requests are idempotent via
     their per-core sequence number: a duplicate of the newest request
     replays the cached response without re-executing; anything older
     is dropped. Entries carry their last-touched instant so the cache
     stays bounded: an entry idle past the absorption window (see
     [cache_ttl_ns]) can never absorb a live resend and is evicted.
     Dense array indexed by requester core id (grown on demand): the
     cache is written on every reply, and a hash lookup there was a
     measurable slice of the service loop. *)
  mutable last_resp : cached option array;
  (* Failover: replica lock tables this server maintains as the backup
     of other partitions, fed by [System.Repl] messages from their
     primaries. Keyed by partition index; merged into [locks] when
     this server is promoted. *)
  replica : (int, Locktable.t) Hashtbl.t;
}

and cached = {
  c_req_id : int;
  c_resp : System.response option;
  mutable c_stamp : float;  (* virtual instant last written or replayed *)
}

let make ~core =
  {
    core;
    locks = Locktable.create ();
    served = 0;
    exclusive = None;
    excl_queue = Queue.create ();
    q_sum = 0;
    q_max = 0;
    occ_sum = 0;
    occ_max = 0;
    busy_ns = 0.0;
    lease_reclaims = 0;
    last_resp = [||];
    replica = Hashtbl.create 4;
  }

let core s = s.core

let locks s = s.locks

let served s = s.served

(* (mean, max) over the samples taken at each request pickup. *)
let queue_depth_stats s =
  if s.served = 0 then (0.0, 0)
  else (float_of_int s.q_sum /. float_of_int s.served, s.q_max)

let occupancy_stats s =
  if s.served = 0 then (0.0, 0)
  else (float_of_int s.occ_sum /. float_of_int s.served, s.occ_max)

let busy_ns s = s.busy_ns

let lease_reclaims s = s.lease_reclaims

let resp_cache_size s =
  Array.fold_left
    (fun n c -> match c with None -> n | Some _ -> n + 1)
    0 s.last_resp

(* Grow the response cache to cover [core]. *)
let ensure_cache s core =
  if core >= Array.length s.last_resp then begin
    let n = Array.length s.last_resp in
    let arr = Array.make (max 64 (max (core + 1) (2 * n))) None in
    Array.blit s.last_resp 0 arr 0 n;
    s.last_resp <- arr
  end

let cache_get s core =
  if core < Array.length s.last_resp then s.last_resp.(core) else None

let trace_on env = Tm2c_engine.Trace.enabled env.System.trace

let emit env ev =
  Tm2c_engine.Trace.record env.System.trace
    ~now:(Tm2c_engine.Sim.now env.System.sim) ev

(* Request-handling software costs on the service core, in core
   cycles: table lookup + bookkeeping per address, on top of the
   network layer's receive/send overheads. *)
let handle_base_cycles = 120
let per_addr_cycles = 45

let kind_addrs = function
  | System.Read_lock _ | System.Barrier_reached | System.Exclusive_acquire
  | System.Exclusive_release -> 1
  | System.Write_locks l | System.Release_reads l | System.Release_writes l ->
      List.length l

(* Static strings: allocation-free even at guarded emit sites. *)
let kind_label = function
  | System.Read_lock _ -> "read_lock"
  | System.Write_locks _ -> "write_locks"
  | System.Release_reads _ -> "release_reads"
  | System.Release_writes _ -> "release_writes"
  | System.Barrier_reached -> "barrier"
  | System.Exclusive_acquire -> "excl_acquire"
  | System.Exclusive_release -> "excl_release"

(* Deterministic request-processing cost, used by the requester-side
   phase attribution to split a lock round trip into transit, service
   and queue components. Conflict resolution (CM calls, status CASes)
   is intentionally excluded: that time lands in the queue residual. *)
let service_estimate_ns env ~n_addrs =
  Network.cycles_ns env.System.net
    (handle_base_cycles + (per_addr_cycles * n_addrs))

let reply env s ~(req : System.request) resp =
  if req.req_id > 0 then begin
    let requester = req.tx.m_core in
    ensure_cache s requester;
    s.last_resp.(requester) <-
      Some
        {
          c_req_id = req.req_id;
          c_resp = Some resp;
          c_stamp = Tm2c_engine.Sim.now env.System.sim;
        }
  end;
  Network.send env.System.net ~src:s.core ~dst:req.tx.m_core
    (System.Resp { req_id = req.req_id; resp })

(* Absorption window: how long a cached response can still be useful.
   A duplicate only arrives within the requester's bounded resend
   backoff (timeout * 2^k, k <= 4, at most a handful of resends) or,
   with fault-injected duplication, one extra flight later — one lease
   is a safe upper bound on either. Past max(timeout * 32, lease) an
   entry can never absorb anything; [maybe_evict_cache] drops it.
   0.0 (hardening off and no leases) disables eviction — without
   resends the cache holds at most one entry per requester anyway. *)
let cache_ttl_ns env =
  Float.max (env.System.req_timeout_ns *. 32.0) env.System.lease_ns

(* Opportunistic cache eviction, amortized to every 64th request so
   the scan cost stays off the per-request fast path. *)
let maybe_evict_cache env s =
  if s.served land 63 = 0 then begin
    let ttl = cache_ttl_ns env in
    if ttl > 0.0 then begin
      let now = Tm2c_engine.Sim.now env.System.sim in
      let arr = s.last_resp in
      for core = 0 to Array.length arr - 1 do
        match arr.(core) with
        | Some c when now -. c.c_stamp > ttl ->
            arr.(core) <- None;
            let fc = Tm2c_noc.Fault.counters env.System.faults in
            fc.Tm2c_noc.Fault.cache_evicted <-
              fc.Tm2c_noc.Fault.cache_evicted + 1
        | Some _ | None -> ()
      done
    end
  end

(* Ship a lock-table mutation to this partition's backup (reliable
   FIFO channel, see [Network.send_reliable]). Called just before the
   corresponding reply: by the time the requester sees Granted, the
   mutation is already on the wire to the backup, so a primary crash
   can lose an in-flight grant's replication only if the grant's reply
   was lost with it — and then lease expiry clears the orphan. With
   failover disabled this sends nothing (bit-for-bit baseline). *)
let replicate env s ~(req : System.request) op =
  let fo = env.System.failover in
  if fo.fo_enabled then
    match System.kind_part ~n_parts:(Array.length fo.fo_epoch) req.kind with
    | Some part when fo.fo_backup.(part) <> s.core ->
        let c = Tm2c_noc.Fault.counters env.System.faults in
        c.Tm2c_noc.Fault.replicated <- c.Tm2c_noc.Fault.replicated + 1;
        Network.send_reliable env.System.net ~src:s.core
          ~dst:fo.fo_backup.(part)
          (System.Repl { src = s.core; part; epoch = req.epoch; op })
    | Some _ | None -> ()

(* Outcome of trying to abort an enemy lock holder. *)
type abort_outcome =
  | Enemy_aborted  (** status CAS'd (attempt, Pending) -> (attempt, Aborted) *)
  | Enemy_stale
      (** the holder entry is dead: the enemy already aborted that
          attempt itself (its release is in flight) or moved on to a
          newer attempt — the entry can simply be revoked *)
  | Enemy_committing  (** the enemy won the race to its commit point *)

let try_abort_enemy env s (enemy : holder) =
  let expect = Status.encode ~attempt:enemy.h_attempt Status.Pending in
  let repl = Status.encode ~attempt:enemy.h_attempt Status.Aborted in
  if Atomic_reg.cas env.System.regs ~core:s.core ~reg:enemy.h_core ~expect ~repl
  then Enemy_aborted
  else begin
    let v = Atomic_reg.read env.System.regs ~core:s.core ~reg:enemy.h_core in
    let attempt, state = Status.decode v in
    if attempt > enemy.h_attempt then Enemy_stale
    else
      match state with
      | Status.Aborted -> Enemy_stale
      | Status.Committing | Status.Pending -> Enemy_committing
  end

let requester_holder env s (m : cm_meta) =
  let now = System.local_now env ~core:s.core in
  holder_of_meta m ~est_start_ns:(now -. m.m_offset_ns) ~granted_ns:now

(* Lease/epoch-based orphan-lock reclamation: a holder that has kept a
   lock past [env.lease_ns] is presumed dead — it crashed, or its
   release message was lost and no CM victory ever revoked the stale
   entry. The reclaim is status-CAS guarded exactly like a CM victory:
   a live holder is atomically aborted, a stale entry is simply
   dropped, and a holder past its commit point is never touched. *)
let lease_expired env s (h : holder) =
  env.System.lease_ns > 0.0
  && System.local_now env ~core:s.core -. h.h_granted_ns > env.System.lease_ns

let reclaim env s ~addr ~revoke (h : holder) =
  match try_abort_enemy env s h with
  | (Enemy_aborted | Enemy_stale) as outcome ->
      let c = Tm2c_noc.Fault.counters env.System.faults in
      c.Tm2c_noc.Fault.leases_reclaimed <- c.Tm2c_noc.Fault.leases_reclaimed + 1;
      s.lease_reclaims <- s.lease_reclaims + 1;
      if trace_on env then
        emit env
          (Event.Lease_reclaimed
             {
               server = s.core;
               victim = h.h_core;
               addr;
               aborted = (outcome = Enemy_aborted);
             });
      revoke ();
      true
  | Enemy_committing -> false

(* Revoke every expired holder of [addr] (other than the requester)
   before the contention manager ever sees them — this is what keeps a
   crashed lock-holder from wedging every future writer under the
   requester-loses policies. *)
let reclaim_expired env s addr ~requester_core =
  if env.System.lease_ns > 0.0 then
    match Locktable.find s.locks addr with
    | None -> ()
    | Some e ->
        (match e.Locktable.writer with
        | Some w when w.h_core <> requester_core && lease_expired env s w ->
            ignore
              (reclaim env s ~addr
                 ~revoke:(fun () -> Locktable.revoke_writer s.locks addr)
                 w)
        | Some _ | None -> ());
        List.iter
          (fun r ->
            if r.h_core <> requester_core && lease_expired env s r then
              ignore
                (reclaim env s ~addr
                   ~revoke:(fun () ->
                     Locktable.revoke_reader s.locks addr ~core:r.h_core)
                   r))
          e.Locktable.readers

(* Algorithm 1: read-lock acquire. *)
let read_lock env s (req : System.request) addr =
  reclaim_expired env s addr ~requester_core:req.tx.m_core;
  let requester = requester_holder env s req.tx in
  let grant () =
    Locktable.add_reader s.locks addr requester;
    replicate env s ~req (System.Rep_read (addr, requester));
    reply env s ~req System.Granted
  in
  let current_writer =
    match Locktable.find s.locks addr with None -> None | Some e -> e.Locktable.writer
  in
  match current_writer with
  | Some w when w.h_core <> req.tx.m_core -> (
      (* Read-after-write conflict: call the contention manager. *)
      let decision = Cm.decide env.System.policy ~requester ~enemies:[ w ] in
      if trace_on env then
        emit env
          (Event.Lock_conflict
             {
               server = s.core;
               requester = req.tx.m_core;
               enemy = w.h_core;
               addr;
               conflict = Raw;
               requester_wins = (decision = Cm.Enemies_lose);
             });
      match decision with
      | Cm.Requester_loses ->
          Obs.record env.System.obs ~winner:w.h_core ~victim:req.tx.m_core
            ~conflict:Raw ~addr;
          reply env s ~req (System.Conflicted Raw)
      | Cm.Enemies_lose -> (
          match try_abort_enemy env s w with
          | Enemy_aborted ->
              Obs.record env.System.obs ~winner:req.tx.m_core ~victim:w.h_core
                ~conflict:Raw ~addr;
              if trace_on env then
                emit env
                  (Event.Enemy_aborted
                     {
                       server = s.core;
                       winner = req.tx.m_core;
                       victim = w.h_core;
                       addr;
                       conflict = Raw;
                     });
              Locktable.revoke_writer s.locks addr;
              grant ()
          | Enemy_stale ->
              Locktable.revoke_writer s.locks addr;
              grant ()
          | Enemy_committing ->
              (* Enemy is past its commit point: requester retries. *)
              Obs.record env.System.obs ~winner:w.h_core ~victim:req.tx.m_core
                ~conflict:Raw ~addr;
              reply env s ~req (System.Conflicted Raw)))
  | Some _ | None -> grant ()

(* Algorithm 2 over a batch: acquire each write lock in turn; on
   failure, roll back the grants made within this batch and report the
   conflict (locks acquired by earlier batches at other nodes are
   released by the aborting transaction itself). *)
let write_locks env s (req : System.request) addrs =
  let requester = requester_holder env s req.tx in
  let granted_here = ref [] in
  let rollback () =
    List.iter
      (fun a ->
        Locktable.clear_writer s.locks a ~core:req.tx.m_core ~attempt:req.tx.m_attempt)
      !granted_here
  in
  let fail conflict =
    rollback ();
    reply env s ~req (System.Conflicted conflict)
  in
  (* Abort every enemy; enemies found stale are revoked all the same.
     Returns false if any enemy reached its commit point first. *)
  let abort_all enemies ~conflict ~addr ~revoke =
    List.for_all
      (fun enemy ->
        match try_abort_enemy env s enemy with
        | Enemy_aborted ->
            Obs.record env.System.obs ~winner:req.tx.m_core ~victim:enemy.h_core
              ~conflict ~addr;
            if trace_on env then
              emit env
                (Event.Enemy_aborted
                   {
                     server = s.core;
                     winner = req.tx.m_core;
                     victim = enemy.h_core;
                     addr;
                     conflict;
                   });
            revoke enemy;
            true
        | Enemy_stale ->
            revoke enemy;
            true
        | Enemy_committing ->
            (* The enemy won the race to its commit point, so the
               requester will abort: causality flips. *)
            Obs.record env.System.obs ~winner:enemy.h_core ~victim:req.tx.m_core
              ~conflict ~addr;
            false)
      enemies
  in
  let trace_conflict ~enemy ~addr ~conflict ~requester_wins =
    if trace_on env then
      emit env
        (Event.Lock_conflict
           {
             server = s.core;
             requester = req.tx.m_core;
             enemy;
             addr;
             conflict;
             requester_wins;
           })
  in
  let rec acquire = function
    | [] ->
        replicate env s ~req (System.Rep_write (addrs, requester));
        reply env s ~req System.Granted
    | addr :: rest -> (
        reclaim_expired env s addr ~requester_core:req.tx.m_core;
        let entry = Locktable.find s.locks addr in
        let writer =
          match entry with None -> None | Some e -> e.Locktable.writer
        in
        match writer with
        | Some w when w.h_core <> req.tx.m_core -> (
            (* Write-after-write conflict. *)
            let decision = Cm.decide env.System.policy ~requester ~enemies:[ w ] in
            trace_conflict ~enemy:w.h_core ~addr ~conflict:Waw
              ~requester_wins:(decision = Cm.Enemies_lose);
            match decision with
            | Cm.Requester_loses ->
                Obs.record env.System.obs ~winner:w.h_core ~victim:req.tx.m_core
                  ~conflict:Waw ~addr;
                fail Waw
            | Cm.Enemies_lose ->
                if
                  abort_all [ w ] ~conflict:Waw ~addr ~revoke:(fun _ ->
                      Locktable.revoke_writer s.locks addr)
                then acquire (addr :: rest)
                else fail Waw)
        | Some _ | None -> (
            let enemies =
              match entry with
              | None -> []
              | Some e -> Locktable.readers_excluding e ~core:req.tx.m_core
            in
            match enemies with
            | [] ->
                Locktable.set_writer s.locks addr requester;
                granted_here := addr :: !granted_here;
                acquire rest
            | _ -> (
                (* Write-after-read conflict against all readers. *)
                let decision = Cm.decide env.System.policy ~requester ~enemies in
                let blocker =
                  Cm.first_blocker env.System.policy ~requester ~enemies
                in
                trace_conflict ~enemy:blocker.h_core ~addr ~conflict:War
                  ~requester_wins:(decision = Cm.Enemies_lose);
                match decision with
                | Cm.Requester_loses ->
                    Obs.record env.System.obs ~winner:blocker.h_core
                      ~victim:req.tx.m_core ~conflict:War ~addr;
                    fail War
                | Cm.Enemies_lose ->
                    if
                      abort_all enemies ~conflict:War ~addr
                        ~revoke:(fun (enemy : holder) ->
                          Locktable.revoke_reader s.locks addr ~core:enemy.h_core)
                    then begin
                      Locktable.set_writer s.locks addr requester;
                      granted_here := addr :: !granted_here;
                      acquire rest
                    end
                    else
                      (* Some reader won the race to its commit point;
                         readers already aborted stay aborted (the CM
                         keeps at most the highest-priority one). *)
                      fail War)))
  in
  acquire addrs

let release_reads env s (req : System.request) addrs =
  List.iter
    (fun a ->
      Locktable.remove_reader s.locks a ~core:req.tx.m_core ~attempt:req.tx.m_attempt)
    addrs;
  replicate env s ~req
    (System.Rep_release_reads (addrs, req.tx.m_core, req.tx.m_attempt))

let release_writes env s (req : System.request) addrs =
  List.iter
    (fun a ->
      Locktable.clear_writer s.locks a ~core:req.tx.m_core ~attempt:req.tx.m_attempt)
    addrs;
  replicate env s ~req
    (System.Rep_release_writes (addrs, req.tx.m_core, req.tx.m_attempt))

(* Grant the partition to the next queued irrevocable transaction once
   every lock has drained. *)
let maybe_grant_exclusive env s =
  if s.exclusive = None && Locktable.n_locked s.locks = 0 then
    match Queue.take_opt s.excl_queue with
    | Some req ->
        s.exclusive <- Some (req.System.tx.m_core, req.System.tx.m_attempt);
        reply env s ~req System.Granted
    | None -> ()

let exclusive_blocked s =
  s.exclusive <> None || not (Queue.is_empty s.excl_queue)

(* Duplicate-request absorption. Returns true when [req] was a
   duplicate and has been dealt with: the newest request gets its
   cached response replayed (its first reply may have been lost; the
   lookup is charged but the request is NOT re-executed), anything
   older is dropped. Both outcomes also cover a duplicate that arrives
   while the original still sits in the exclusive queue (cached as
   [None]): re-queuing it would double-grant later. *)
let absorb env s (req : System.request) =
  req.req_id > 0
  &&
  match cache_get s req.tx.m_core with
  | Some c when req.req_id = c.c_req_id ->
      let fc = Tm2c_noc.Fault.counters env.System.faults in
      fc.Tm2c_noc.Fault.absorbed <- fc.Tm2c_noc.Fault.absorbed + 1;
      Network.compute env.System.net handle_base_cycles;
      (* The replay proves the entry is still live: refresh its stamp
         so eviction only reaps entries past a full idle window. *)
      c.c_stamp <- Tm2c_engine.Sim.now env.System.sim;
      (match c.c_resp with
      | Some resp ->
          Network.send env.System.net ~src:s.core ~dst:req.tx.m_core
            (System.Resp { req_id = req.req_id; resp })
      | None -> ());
      true
  | Some c when req.req_id < c.c_req_id ->
      let fc = Tm2c_noc.Fault.counters env.System.faults in
      fc.Tm2c_noc.Fault.absorbed <- fc.Tm2c_noc.Fault.absorbed + 1;
      Network.compute env.System.net handle_base_cycles;
      true
  | Some _ | None -> false

(* --- Failover: epoch checks, replica application, promotion merge --- *)

(* Partition of a request that must be refused for epoch reasons:
   stamped with an epoch behind the partition's current one, or aimed
   at a server that no longer owns the partition. Both arise only for
   requests that were in flight to (or queued at) a deposed primary
   when the epoch bumped — a zombie primary that heals from a stall or
   partition must refuse them, or it could grant a lock the promoted
   backup has already granted to someone else. *)
let stale_part env s (req : System.request) =
  let fo = env.System.failover in
  if not fo.fo_enabled then None
  else
    match System.kind_part ~n_parts:(Array.length fo.fo_epoch) req.kind with
    | None -> None
    | Some part ->
        if req.epoch < fo.fo_epoch.(part) || fo.fo_owner.(part) <> s.core then
          Some part
        else None

let reject_stale env s (req : System.request) ~part =
  let fo = env.System.failover in
  let fc = Tm2c_noc.Fault.counters env.System.faults in
  fc.Tm2c_noc.Fault.stale_rejections <- fc.Tm2c_noc.Fault.stale_rejections + 1;
  Network.compute env.System.net handle_base_cycles;
  if trace_on env then
    emit env
      (Event.Stale_epoch_rejected
         {
           server = s.core;
           core = req.tx.m_core;
           req_epoch = req.epoch;
           cur_epoch = fo.fo_epoch.(part);
         });
  (* Releases are fire-and-forget (req_id 0): nothing to refuse, the
     orphaned entry at the new owner is cleared by lease expiry. *)
  if req.req_id > 0 then reply env s ~req System.Stale_epoch

(* Apply one replicated mutation. Before promotion it lands in the
   per-partition replica table; a straggler arriving after this server
   was promoted and merged lands directly in the live table (the
   replica of an owned partition is dead storage). In practice the
   failover trigger — several full resend-backoff windows — dwarfs the
   replication flight time, so the replica is caught up well before
   any merge reads it. *)
let apply_replica env s ~src ~part ~op =
  let fo = env.System.failover in
  let table =
    if fo.fo_owner.(part) = s.core && fo.fo_merged.(part) then s.locks
    else
      match Hashtbl.find_opt s.replica part with
      | Some t -> t
      | None ->
          let t = Locktable.create () in
          Hashtbl.add s.replica part t;
          t
  in
  let n_addrs =
    match op with
    | System.Rep_read _ -> 1
    | System.Rep_write (addrs, _)
    | System.Rep_release_reads (addrs, _, _)
    | System.Rep_release_writes (addrs, _, _) -> List.length addrs
  in
  Network.compute env.System.net (handle_base_cycles + (per_addr_cycles * n_addrs));
  (match op with
  | System.Rep_read (addr, h) -> Locktable.add_reader table addr h
  | System.Rep_write (addrs, h) ->
      List.iter (fun a -> Locktable.set_writer table a h) addrs
  | System.Rep_release_reads (addrs, core, attempt) ->
      List.iter (fun a -> Locktable.remove_reader table a ~core ~attempt) addrs
  | System.Rep_release_writes (addrs, core, attempt) ->
      List.iter (fun a -> Locktable.clear_writer table a ~core ~attempt) addrs);
  if trace_on env then
    emit env (Event.Replica_applied { server = s.core; src; part; n_addrs })

(* Promotion: fold the partition's replica into the live table. Run
   lazily on the first post-failover request for the partition, so a
   failover nobody routes to costs nothing. Holders keep their
   original grant instants: anything whose release was lost with the
   primary expires on its original lease schedule. *)
let merge_replica env s ~part =
  let fo = env.System.failover in
  let merged = ref 0 in
  (match Hashtbl.find_opt s.replica part with
  | None -> ()
  | Some rt ->
      Locktable.iter rt (fun addr e ->
          if e.Locktable.writer <> None || e.Locktable.readers <> [] then begin
            incr merged;
            (match e.Locktable.writer with
            | Some w -> Locktable.set_writer s.locks addr w
            | None -> ());
            List.iter
              (fun r -> Locktable.add_reader s.locks addr r)
              e.Locktable.readers
          end);
      Hashtbl.remove s.replica part);
  fo.fo_merged.(part) <- true;
  Network.compute env.System.net
    (handle_base_cycles + (per_addr_cycles * !merged));
  if trace_on env then
    emit env
      (Event.Failover_done
         { server = s.core; part; epoch = fo.fo_epoch.(part); merged = !merged })

let maybe_failover env s (req : System.request) =
  let fo = env.System.failover in
  if fo.fo_enabled then
    match System.kind_part ~n_parts:(Array.length fo.fo_epoch) req.kind with
    | Some part when fo.fo_owner.(part) = s.core && not fo.fo_merged.(part) ->
        merge_replica env s ~part
    | Some _ | None -> ()

let handle_fresh env s (req : System.request) =
  (* Re-claim: a stall-window delay in [handle] may have parked the
     fiber, putting this continuation in a fresh dispatch. *)
  Tm2c_engine.Sim.prof_mark env.System.sim Tm2c_engine.Sim.prof_cat_dtm;
  s.served <- s.served + 1;
  maybe_evict_cache env s;
  let pickup_ns = Tm2c_engine.Sim.now env.System.sim in
  (* Sample service-queue depth (requests still waiting behind this
     one) and lock-table occupancy at pickup time. *)
  let qd = Network.pending env.System.net ~self:s.core in
  let occ = Locktable.n_locked s.locks in
  s.q_sum <- s.q_sum + qd;
  if qd > s.q_max then s.q_max <- qd;
  s.occ_sum <- s.occ_sum + occ;
  if occ > s.occ_max then s.occ_max <- occ;
  if trace_on env then
    emit env
      (Event.Service
         {
           server = s.core;
           requester = req.tx.m_core;
           req_id = req.req_id;
           kind = kind_label req.kind;
           queue_depth = qd;
           occupancy = occ;
         });
  Network.compute env.System.net
    (handle_base_cycles + (per_addr_cycles * kind_addrs req.kind));
  (match req.kind with
  | System.Read_lock addr ->
      if exclusive_blocked s then reply env s ~req (System.Conflicted Raw)
      else read_lock env s req addr
  | System.Write_locks addrs ->
      if exclusive_blocked s then reply env s ~req (System.Conflicted Waw)
      else write_locks env s req addrs
  | System.Release_reads addrs -> release_reads env s req addrs
  | System.Release_writes addrs -> release_writes env s req addrs
  | System.Exclusive_acquire ->
      if s.exclusive = None && Queue.is_empty s.excl_queue
         && Locktable.n_locked s.locks = 0
      then begin
        s.exclusive <- Some (req.tx.m_core, req.tx.m_attempt);
        reply env s ~req System.Granted
      end
      else Queue.push req s.excl_queue
  | System.Exclusive_release ->
      (match s.exclusive with
      | Some (core, attempt) when core = req.tx.m_core && attempt = req.tx.m_attempt ->
          s.exclusive <- None
      | Some _ | None -> ())
  | System.Barrier_reached ->
      invalid_arg "Dtm.handle: barrier message routed to a DTM core");
  maybe_grant_exclusive env s;
  s.busy_ns <- s.busy_ns +. (Tm2c_engine.Sim.now env.System.sim -. pickup_ns);
  if trace_on env then
    emit env
      (Event.Service_done
         { server = s.core; requester = req.tx.m_core; req_id = req.req_id })

let handle env s (req : System.request) =
  (* Self-profiler: claim this dispatch for the DTM (no-op without an
     injected host clock; see Sim.prof_mark). *)
  Tm2c_engine.Sim.prof_mark env.System.sim Tm2c_engine.Sim.prof_cat_dtm;
  (* DS-server stall window: the server sits idle (requests queue up
     in its mailbox) until the window closes. *)
  (match
     Fault.stall_until env.System.faults ~core:s.core
       ~now:(Tm2c_engine.Sim.now env.System.sim)
   with
  | Some until ->
      Tm2c_engine.Sim.delay (until -. Tm2c_engine.Sim.now env.System.sim)
  | None -> ());
  if not (absorb env s req) then
    match stale_part env s req with
    | Some part -> reject_stale env s req ~part
    | None ->
        maybe_failover env s req;
        handle_fresh env s req

(* One activation = one blocking receive plus a batch drain of every
   message that has already arrived ([Network.recv_pending] charges the
   same per-message receive overhead as [recv], so the virtual-time
   accounting is identical to handling the backlog one wakeup at a
   time); the loop only suspends again once the mailbox is dry. *)
let service_loop env s =
  let rec loop () =
    let msg = Network.recv env.System.net ~self:s.core in
    dispatch msg
  and drain () =
    match Network.recv_pending env.System.net ~self:s.core with
    | Some msg -> dispatch msg
    | None -> loop ()
  and dispatch msg =
    (* Crash-stop ([scrash=]): once marked dead, the server dies
       silently at its next wakeup — the waking message (and anything
       queued behind it) is never handled or answered. *)
    if Fault.is_server_crashed env.System.faults ~core:s.core then ()
    else
      match msg with
      | System.Req req ->
          handle env s req;
          drain ()
      | System.Repl { src; part; epoch = _; op } ->
          apply_replica env s ~src ~part ~op;
          drain ()
      | System.Resp _ ->
          invalid_arg "Dtm.service_loop: service core received a response"
  in
  loop ()
