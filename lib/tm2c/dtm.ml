open Types
open Tm2c_noc
open Tm2c_memory

type server = {
  core : core_id;
  locks : Locktable.t;
  mutable served : int;
  (* Irrevocable-transaction support: the partition's exclusive owner
     and the FIFO of transactions waiting to become it. While an
     exclusive grant is active or pending, normal lock requests are
     refused so the table drains. *)
  mutable exclusive : (core_id * int) option;
  excl_queue : System.request Queue.t;
  (* Service observability: input-queue depth and lock-table occupancy
     sampled at each request pickup. *)
  mutable q_sum : int;
  mutable q_max : int;
  mutable occ_sum : int;
  mutable occ_max : int;
  (* Virtual ns spent inside [handle] (pickup to response sent):
     busy_ns / run duration is the service core's utilization. *)
  mutable busy_ns : float;
  (* Duplicate absorption: per requester, the newest awaited request id
     seen and the response sent for it (None while it is still queued,
     e.g. a waiting Exclusive_acquire). Requests are idempotent via
     their per-core sequence number: a duplicate of the newest request
     replays the cached response without re-executing; anything older
     is dropped. *)
  last_resp : (core_id, int * System.response option) Hashtbl.t;
}

let make ~core =
  {
    core;
    locks = Locktable.create ();
    served = 0;
    exclusive = None;
    excl_queue = Queue.create ();
    q_sum = 0;
    q_max = 0;
    occ_sum = 0;
    occ_max = 0;
    busy_ns = 0.0;
    last_resp = Hashtbl.create 64;
  }

let core s = s.core

let locks s = s.locks

let served s = s.served

(* (mean, max) over the samples taken at each request pickup. *)
let queue_depth_stats s =
  if s.served = 0 then (0.0, 0)
  else (float_of_int s.q_sum /. float_of_int s.served, s.q_max)

let occupancy_stats s =
  if s.served = 0 then (0.0, 0)
  else (float_of_int s.occ_sum /. float_of_int s.served, s.occ_max)

let busy_ns s = s.busy_ns

let trace_on env = Tm2c_engine.Trace.enabled env.System.trace

let emit env ev =
  Tm2c_engine.Trace.record env.System.trace
    ~now:(Tm2c_engine.Sim.now env.System.sim) ev

(* Request-handling software costs on the service core, in core
   cycles: table lookup + bookkeeping per address, on top of the
   network layer's receive/send overheads. *)
let handle_base_cycles = 120
let per_addr_cycles = 45

let kind_addrs = function
  | System.Read_lock _ | System.Barrier_reached | System.Exclusive_acquire
  | System.Exclusive_release -> 1
  | System.Write_locks l | System.Release_reads l | System.Release_writes l ->
      List.length l

(* Static strings: allocation-free even at guarded emit sites. *)
let kind_label = function
  | System.Read_lock _ -> "read_lock"
  | System.Write_locks _ -> "write_locks"
  | System.Release_reads _ -> "release_reads"
  | System.Release_writes _ -> "release_writes"
  | System.Barrier_reached -> "barrier"
  | System.Exclusive_acquire -> "excl_acquire"
  | System.Exclusive_release -> "excl_release"

(* Deterministic request-processing cost, used by the requester-side
   phase attribution to split a lock round trip into transit, service
   and queue components. Conflict resolution (CM calls, status CASes)
   is intentionally excluded: that time lands in the queue residual. *)
let service_estimate_ns env ~n_addrs =
  Platform.cycles_ns
    (Network.platform env.System.net)
    (handle_base_cycles + (per_addr_cycles * n_addrs))

let reply env s ~(req : System.request) resp =
  if req.req_id > 0 then
    Hashtbl.replace s.last_resp req.tx.m_core (req.req_id, Some resp);
  Network.send env.System.net ~src:s.core ~dst:req.tx.m_core
    (System.Resp { req_id = req.req_id; resp })

(* Outcome of trying to abort an enemy lock holder. *)
type abort_outcome =
  | Enemy_aborted  (** status CAS'd (attempt, Pending) -> (attempt, Aborted) *)
  | Enemy_stale
      (** the holder entry is dead: the enemy already aborted that
          attempt itself (its release is in flight) or moved on to a
          newer attempt — the entry can simply be revoked *)
  | Enemy_committing  (** the enemy won the race to its commit point *)

let try_abort_enemy env s (enemy : holder) =
  let expect = Status.encode ~attempt:enemy.h_attempt Status.Pending in
  let repl = Status.encode ~attempt:enemy.h_attempt Status.Aborted in
  if Atomic_reg.cas env.System.regs ~core:s.core ~reg:enemy.h_core ~expect ~repl
  then Enemy_aborted
  else begin
    let v = Atomic_reg.read env.System.regs ~core:s.core ~reg:enemy.h_core in
    let attempt, state = Status.decode v in
    if attempt > enemy.h_attempt then Enemy_stale
    else
      match state with
      | Status.Aborted -> Enemy_stale
      | Status.Committing | Status.Pending -> Enemy_committing
  end

let requester_holder env s (m : cm_meta) =
  let now = System.local_now env ~core:s.core in
  holder_of_meta m ~est_start_ns:(now -. m.m_offset_ns) ~granted_ns:now

(* Lease/epoch-based orphan-lock reclamation: a holder that has kept a
   lock past [env.lease_ns] is presumed dead — it crashed, or its
   release message was lost and no CM victory ever revoked the stale
   entry. The reclaim is status-CAS guarded exactly like a CM victory:
   a live holder is atomically aborted, a stale entry is simply
   dropped, and a holder past its commit point is never touched. *)
let lease_expired env s (h : holder) =
  env.System.lease_ns > 0.0
  && System.local_now env ~core:s.core -. h.h_granted_ns > env.System.lease_ns

let reclaim env s ~addr ~revoke (h : holder) =
  match try_abort_enemy env s h with
  | (Enemy_aborted | Enemy_stale) as outcome ->
      let c = Tm2c_noc.Fault.counters env.System.faults in
      c.Tm2c_noc.Fault.leases_reclaimed <- c.Tm2c_noc.Fault.leases_reclaimed + 1;
      if trace_on env then
        emit env
          (Event.Lease_reclaimed
             {
               server = s.core;
               victim = h.h_core;
               addr;
               aborted = (outcome = Enemy_aborted);
             });
      revoke ();
      true
  | Enemy_committing -> false

(* Revoke every expired holder of [addr] (other than the requester)
   before the contention manager ever sees them — this is what keeps a
   crashed lock-holder from wedging every future writer under the
   requester-loses policies. *)
let reclaim_expired env s addr ~requester_core =
  if env.System.lease_ns > 0.0 then
    match Locktable.find s.locks addr with
    | None -> ()
    | Some e ->
        (match e.Locktable.writer with
        | Some w when w.h_core <> requester_core && lease_expired env s w ->
            ignore
              (reclaim env s ~addr
                 ~revoke:(fun () -> Locktable.revoke_writer s.locks addr)
                 w)
        | Some _ | None -> ());
        List.iter
          (fun r ->
            if r.h_core <> requester_core && lease_expired env s r then
              ignore
                (reclaim env s ~addr
                   ~revoke:(fun () ->
                     Locktable.revoke_reader s.locks addr ~core:r.h_core)
                   r))
          e.Locktable.readers

(* Algorithm 1: read-lock acquire. *)
let read_lock env s (req : System.request) addr =
  reclaim_expired env s addr ~requester_core:req.tx.m_core;
  let requester = requester_holder env s req.tx in
  let grant () =
    Locktable.add_reader s.locks addr requester;
    reply env s ~req System.Granted
  in
  let current_writer =
    match Locktable.find s.locks addr with None -> None | Some e -> e.Locktable.writer
  in
  match current_writer with
  | Some w when w.h_core <> req.tx.m_core -> (
      (* Read-after-write conflict: call the contention manager. *)
      let decision = Cm.decide env.System.policy ~requester ~enemies:[ w ] in
      if trace_on env then
        emit env
          (Event.Lock_conflict
             {
               server = s.core;
               requester = req.tx.m_core;
               enemy = w.h_core;
               addr;
               conflict = Raw;
               requester_wins = (decision = Cm.Enemies_lose);
             });
      match decision with
      | Cm.Requester_loses ->
          Obs.record env.System.obs ~winner:w.h_core ~victim:req.tx.m_core
            ~conflict:Raw ~addr;
          reply env s ~req (System.Conflicted Raw)
      | Cm.Enemies_lose -> (
          match try_abort_enemy env s w with
          | Enemy_aborted ->
              Obs.record env.System.obs ~winner:req.tx.m_core ~victim:w.h_core
                ~conflict:Raw ~addr;
              if trace_on env then
                emit env
                  (Event.Enemy_aborted
                     {
                       server = s.core;
                       winner = req.tx.m_core;
                       victim = w.h_core;
                       addr;
                       conflict = Raw;
                     });
              Locktable.revoke_writer s.locks addr;
              grant ()
          | Enemy_stale ->
              Locktable.revoke_writer s.locks addr;
              grant ()
          | Enemy_committing ->
              (* Enemy is past its commit point: requester retries. *)
              Obs.record env.System.obs ~winner:w.h_core ~victim:req.tx.m_core
                ~conflict:Raw ~addr;
              reply env s ~req (System.Conflicted Raw)))
  | Some _ | None -> grant ()

(* Algorithm 2 over a batch: acquire each write lock in turn; on
   failure, roll back the grants made within this batch and report the
   conflict (locks acquired by earlier batches at other nodes are
   released by the aborting transaction itself). *)
let write_locks env s (req : System.request) addrs =
  let requester = requester_holder env s req.tx in
  let granted_here = ref [] in
  let rollback () =
    List.iter
      (fun a ->
        Locktable.clear_writer s.locks a ~core:req.tx.m_core ~attempt:req.tx.m_attempt)
      !granted_here
  in
  let fail conflict =
    rollback ();
    reply env s ~req (System.Conflicted conflict)
  in
  (* Abort every enemy; enemies found stale are revoked all the same.
     Returns false if any enemy reached its commit point first. *)
  let abort_all enemies ~conflict ~addr ~revoke =
    List.for_all
      (fun enemy ->
        match try_abort_enemy env s enemy with
        | Enemy_aborted ->
            Obs.record env.System.obs ~winner:req.tx.m_core ~victim:enemy.h_core
              ~conflict ~addr;
            if trace_on env then
              emit env
                (Event.Enemy_aborted
                   {
                     server = s.core;
                     winner = req.tx.m_core;
                     victim = enemy.h_core;
                     addr;
                     conflict;
                   });
            revoke enemy;
            true
        | Enemy_stale ->
            revoke enemy;
            true
        | Enemy_committing ->
            (* The enemy won the race to its commit point, so the
               requester will abort: causality flips. *)
            Obs.record env.System.obs ~winner:enemy.h_core ~victim:req.tx.m_core
              ~conflict ~addr;
            false)
      enemies
  in
  let trace_conflict ~enemy ~addr ~conflict ~requester_wins =
    if trace_on env then
      emit env
        (Event.Lock_conflict
           {
             server = s.core;
             requester = req.tx.m_core;
             enemy;
             addr;
             conflict;
             requester_wins;
           })
  in
  let rec acquire = function
    | [] -> reply env s ~req System.Granted
    | addr :: rest -> (
        reclaim_expired env s addr ~requester_core:req.tx.m_core;
        let entry = Locktable.find s.locks addr in
        let writer =
          match entry with None -> None | Some e -> e.Locktable.writer
        in
        match writer with
        | Some w when w.h_core <> req.tx.m_core -> (
            (* Write-after-write conflict. *)
            let decision = Cm.decide env.System.policy ~requester ~enemies:[ w ] in
            trace_conflict ~enemy:w.h_core ~addr ~conflict:Waw
              ~requester_wins:(decision = Cm.Enemies_lose);
            match decision with
            | Cm.Requester_loses ->
                Obs.record env.System.obs ~winner:w.h_core ~victim:req.tx.m_core
                  ~conflict:Waw ~addr;
                fail Waw
            | Cm.Enemies_lose ->
                if
                  abort_all [ w ] ~conflict:Waw ~addr ~revoke:(fun _ ->
                      Locktable.revoke_writer s.locks addr)
                then acquire (addr :: rest)
                else fail Waw)
        | Some _ | None -> (
            let enemies =
              match entry with
              | None -> []
              | Some e -> Locktable.readers_excluding e ~core:req.tx.m_core
            in
            match enemies with
            | [] ->
                Locktable.set_writer s.locks addr requester;
                granted_here := addr :: !granted_here;
                acquire rest
            | _ -> (
                (* Write-after-read conflict against all readers. *)
                let decision = Cm.decide env.System.policy ~requester ~enemies in
                let blocker =
                  Cm.first_blocker env.System.policy ~requester ~enemies
                in
                trace_conflict ~enemy:blocker.h_core ~addr ~conflict:War
                  ~requester_wins:(decision = Cm.Enemies_lose);
                match decision with
                | Cm.Requester_loses ->
                    Obs.record env.System.obs ~winner:blocker.h_core
                      ~victim:req.tx.m_core ~conflict:War ~addr;
                    fail War
                | Cm.Enemies_lose ->
                    if
                      abort_all enemies ~conflict:War ~addr
                        ~revoke:(fun (enemy : holder) ->
                          Locktable.revoke_reader s.locks addr ~core:enemy.h_core)
                    then begin
                      Locktable.set_writer s.locks addr requester;
                      granted_here := addr :: !granted_here;
                      acquire rest
                    end
                    else
                      (* Some reader won the race to its commit point;
                         readers already aborted stay aborted (the CM
                         keeps at most the highest-priority one). *)
                      fail War)))
  in
  acquire addrs

let release_reads _env s (req : System.request) addrs =
  List.iter
    (fun a ->
      Locktable.remove_reader s.locks a ~core:req.tx.m_core ~attempt:req.tx.m_attempt)
    addrs

let release_writes _env s (req : System.request) addrs =
  List.iter
    (fun a ->
      Locktable.clear_writer s.locks a ~core:req.tx.m_core ~attempt:req.tx.m_attempt)
    addrs

(* Grant the partition to the next queued irrevocable transaction once
   every lock has drained. *)
let maybe_grant_exclusive env s =
  if s.exclusive = None && Locktable.n_locked s.locks = 0 then
    match Queue.take_opt s.excl_queue with
    | Some req ->
        s.exclusive <- Some (req.System.tx.m_core, req.System.tx.m_attempt);
        reply env s ~req System.Granted
    | None -> ()

let exclusive_blocked s =
  s.exclusive <> None || not (Queue.is_empty s.excl_queue)

(* Duplicate-request absorption. Returns true when [req] was a
   duplicate and has been dealt with: the newest request gets its
   cached response replayed (its first reply may have been lost; the
   lookup is charged but the request is NOT re-executed), anything
   older is dropped. Both outcomes also cover a duplicate that arrives
   while the original still sits in the exclusive queue (cached as
   [None]): re-queuing it would double-grant later. *)
let absorb env s (req : System.request) =
  req.req_id > 0
  &&
  match Hashtbl.find_opt s.last_resp req.tx.m_core with
  | Some (id, cached) when req.req_id = id ->
      let c = Tm2c_noc.Fault.counters env.System.faults in
      c.Tm2c_noc.Fault.absorbed <- c.Tm2c_noc.Fault.absorbed + 1;
      Network.compute env.System.net handle_base_cycles;
      (match cached with
      | Some resp ->
          Network.send env.System.net ~src:s.core ~dst:req.tx.m_core
            (System.Resp { req_id = req.req_id; resp })
      | None -> ());
      true
  | Some (id, _) when req.req_id < id ->
      let c = Tm2c_noc.Fault.counters env.System.faults in
      c.Tm2c_noc.Fault.absorbed <- c.Tm2c_noc.Fault.absorbed + 1;
      Network.compute env.System.net handle_base_cycles;
      true
  | Some _ | None -> false

let handle_fresh env s (req : System.request) =
  s.served <- s.served + 1;
  let pickup_ns = Tm2c_engine.Sim.now env.System.sim in
  (* Sample service-queue depth (requests still waiting behind this
     one) and lock-table occupancy at pickup time. *)
  let qd = Network.pending env.System.net ~self:s.core in
  let occ = Locktable.n_locked s.locks in
  s.q_sum <- s.q_sum + qd;
  if qd > s.q_max then s.q_max <- qd;
  s.occ_sum <- s.occ_sum + occ;
  if occ > s.occ_max then s.occ_max <- occ;
  if trace_on env then
    emit env
      (Event.Service
         {
           server = s.core;
           requester = req.tx.m_core;
           req_id = req.req_id;
           kind = kind_label req.kind;
           queue_depth = qd;
           occupancy = occ;
         });
  Network.compute env.System.net
    (handle_base_cycles + (per_addr_cycles * kind_addrs req.kind));
  (match req.kind with
  | System.Read_lock addr ->
      if exclusive_blocked s then reply env s ~req (System.Conflicted Raw)
      else read_lock env s req addr
  | System.Write_locks addrs ->
      if exclusive_blocked s then reply env s ~req (System.Conflicted Waw)
      else write_locks env s req addrs
  | System.Release_reads addrs -> release_reads env s req addrs
  | System.Release_writes addrs -> release_writes env s req addrs
  | System.Exclusive_acquire ->
      if s.exclusive = None && Queue.is_empty s.excl_queue
         && Locktable.n_locked s.locks = 0
      then begin
        s.exclusive <- Some (req.tx.m_core, req.tx.m_attempt);
        reply env s ~req System.Granted
      end
      else Queue.push req s.excl_queue
  | System.Exclusive_release ->
      (match s.exclusive with
      | Some (core, attempt) when core = req.tx.m_core && attempt = req.tx.m_attempt ->
          s.exclusive <- None
      | Some _ | None -> ())
  | System.Barrier_reached ->
      invalid_arg "Dtm.handle: barrier message routed to a DTM core");
  maybe_grant_exclusive env s;
  s.busy_ns <- s.busy_ns +. (Tm2c_engine.Sim.now env.System.sim -. pickup_ns);
  if trace_on env then
    emit env
      (Event.Service_done
         { server = s.core; requester = req.tx.m_core; req_id = req.req_id })

let handle env s (req : System.request) =
  (* DS-server stall window: the server sits idle (requests queue up
     in its mailbox) until the window closes. *)
  (match
     Fault.stall_until env.System.faults ~core:s.core
       ~now:(Tm2c_engine.Sim.now env.System.sim)
   with
  | Some until ->
      Tm2c_engine.Sim.delay (until -. Tm2c_engine.Sim.now env.System.sim)
  | None -> ());
  if not (absorb env s req) then handle_fresh env s req

let service_loop env s =
  let rec loop () =
    match Network.recv env.System.net ~self:s.core with
    | System.Req req ->
        handle env s req;
        loop ()
    | System.Resp _ ->
        invalid_arg "Dtm.service_loop: service core received a response"
  in
  loop ()
