(** Per-DTM-node table of multiple-readers / single-writer revocable
    locks, one entry per memory word (the DS-Lock state of Section
    3.2). This module is pure mechanics — the conflict logic of
    Algorithms 1 and 2 lives in {!Dtm}, which injects the contention
    manager's decisions.

    Releases and revocations are attempt-checked: a release carrying a
    stale attempt number (from an already-aborted transaction) is
    ignored, and a revocation only removes the exact holder the
    contention manager decided against. *)

type entry = {
  mutable writer : Types.holder option;
  mutable readers : Types.holder list;
}

type t

val create : unit -> t

(** Entry for an address, creating it if absent. *)
val entry : t -> Types.addr -> entry

val find : t -> Types.addr -> entry option

(** [add_reader t addr h] records a read lock. A previous entry by the
    same core (necessarily from an older attempt) is replaced. *)
val add_reader : t -> Types.addr -> Types.holder -> unit

(** [remove_reader t addr ~core ~attempt] drops the reader if (and only
    if) it matches both core and attempt. *)
val remove_reader : t -> Types.addr -> core:Types.core_id -> attempt:int -> unit

(** Unconditional revocation of a reader (the CM aborted it). *)
val revoke_reader : t -> Types.addr -> core:Types.core_id -> unit

val set_writer : t -> Types.addr -> Types.holder -> unit

(** [clear_writer t addr ~core ~attempt] releases the write lock iff
    the current writer matches. *)
val clear_writer : t -> Types.addr -> core:Types.core_id -> attempt:int -> unit

(** Unconditional revocation of the writer (the CM aborted it). *)
val revoke_writer : t -> Types.addr -> unit

(** Readers other than [core] (a transaction never conflicts with
    itself). *)
val readers_excluding : entry -> core:Types.core_id -> Types.holder list

(** Number of addresses currently locked (readers or writer present). *)
val n_locked : t -> int

(** Iterate over all (address, entry) pairs, in unspecified order —
    used by the failover merge to fold a replica table into the
    promoted backup's live table. *)
val iter : t -> (Types.addr -> entry -> unit) -> unit

(** Check internal invariants; raises [Invalid_argument] on violation.
    Invariants: no duplicate reader cores on an entry; an entry present
    in the table is non-empty. *)
val check_invariants : t -> unit
