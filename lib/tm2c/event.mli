(** Typed trace events spanning the whole stack.

    Recorded into the environment's ring buffer ([System.env.trace])
    only when tracing is enabled; every emit site guards with
    [Trace.enabled] so the constructors below are never allocated on
    untraced runs. The checkers in [Tm2c_check] reconstruct complete
    per-attempt histories from these events, so the documented
    timestamp semantics (sample instants, visibility instants) are
    load-bearing. *)

open Types

type t =
  | Tx_start of { core : core_id; attempt : int; elastic : bool }
      (** [elastic] marks attempts running under an elastic mode: their
          read traces are partial (validated reads are plain memory
          accesses) and their windows may release read locks early, so
          the checkers apply only the write-side rules to them *)
  | Tx_read of { core : core_id; addr : addr; granted : bool; value : int }
      (** read-lock round trip completed (elastic validated reads do
          not appear: they are plain memory accesses). When granted,
          the event is stamped at the instant the memory sample
          returned and [value] is the word read — the serializability
          oracle replays versioned memory against exactly these
          (time, value) pairs. [value] is 0 on a refused lock. *)
  | Tx_write of { core : core_id; addr : addr; value : int }
      (** write buffered; emitted on every store, so the last event
          per address within an attempt carries the value the commit
          will publish *)
  | Tx_commit_begin of { core : core_id; attempt : int; n_writes : int }
  | Host_write of { addr : addr; value : int }
      (** a host-side store outside any transaction: benchmark setup
          (populate) or private-node initialization under weak
          atomicity (the node becomes reachable only when a commit
          publishes a pointer to it). The serializability oracle
          installs these as external versions — without them, node
          reuse after [Alloc.free] would make transactional reads of
          re-initialized words look like value corruption. *)
  | Rlock_released of { core : core_id; addr : addr }
      (** elastic-early dropped the oldest window entry: its read lock
          is released before the attempt ends (normal attempts release
          only at commit/abort, which the checkers infer from the
          attempt-end events) *)
  | Wlock_granted of { core : core_id; addrs : addr list }
      (** a write-lock batch was granted to this core (eager stores
          acquire one address at a time; lazy commits acquire per
          owner node) — the lockset checker's growing-phase witness *)
  | Tx_publish of { core : core_id; attempt : int; n_writes : int }
      (** the attempt passed its status CAS and is about to apply its
          write set: stamped at the exact instant the new values
          become visible to other cores ([Shmem.write_burst] applies
          data immediately and charges latency afterwards) *)
  | Tx_committed of { core : core_id; attempt : int; duration_ns : float }
  | Tx_aborted of { core : core_id; attempt : int; conflict : conflict option }
      (** [conflict = None] is the status-CAS abort path: a remote
          contention manager aborted this attempt by CAS-ing its
          status word ([Enemy_aborted] on the server side), and the
          victim discovered it in [Tx.check_status] or at its own
          commit CAS. Rendered as ["STATUS"] everywhere a conflict
          label is surfaced (trace dumps, JSON, Perfetto). *)
  | Lock_conflict of {
      server : core_id;
      requester : core_id;
      enemy : core_id;
      addr : addr;
      conflict : conflict;
      requester_wins : bool;
    }  (** a contention-manager decision at a DTM core *)
  | Enemy_aborted of {
      server : core_id;
      winner : core_id;
      victim : core_id;
      addr : addr;
      conflict : conflict;
    }  (** the winner's abort CAS landed on the victim's status word *)
  | Req_sent of {
      core : core_id;
      server : core_id;
      req_id : int;
      kind : string;
      n_addrs : int;
    }  (** an application core put a service request on the wire *)
  | Service of {
      server : core_id;
      requester : core_id;
      req_id : int;
      kind : string;
      queue_depth : int;
      occupancy : int;
    }
      (** a DTM core picked up a request: its input-queue depth and
          lock-table occupancy at that instant *)
  | Service_done of { server : core_id; requester : core_id; req_id : int }
      (** the DTM core finished processing (response, if any, sent) *)
  | Barrier of { core : core_id }
  | Msg_dropped of { src : core_id; dst : core_id }
      (** fault injection lost a message on the [src]->[dst] link *)
  | Msg_duplicated of { src : core_id; dst : core_id }
      (** fault injection delivered a message twice on [src]->[dst] *)
  | Req_resent of { core : core_id; server : core_id; req_id : int; nth : int }
      (** the requester's timeout fired and it resent request [req_id]
          (same sequence number, so the server can absorb duplicates);
          [nth] counts resends of this request, starting at 1 *)
  | Core_crashed of { core : core_id; attempt : int }
      (** crash-stop: the core dies at an operation boundary, releasing
          nothing — its open attempt ([attempt], or -1 outside any
          transaction) stays Unfinished and its locks are orphaned
          until lease reclamation revokes them *)
  | Lease_reclaimed of {
      server : core_id;
      victim : core_id;
      addr : addr;
      aborted : bool;
    }
      (** the server revoked [victim]'s lock on [addr] because its
          lease expired (the holder crashed or its release was lost);
          guarded by the status-word CAS, so a committing victim is
          never reclaimed. [aborted] is true when the CAS landed (a
          live pending victim was killed, like [Enemy_aborted]) and
          false when the entry was already stale *)
  | Server_crashed of { server : core_id }
      (** DS-lock server crash-stop ([scrash=] fault): the server stops
          serving at this instant; requests already in its mailbox and
          any sent later are never answered — clients recover only
          through timeout-driven failover *)
  | Epoch_bumped of { part : int; epoch : int; by : core_id }
      (** client [by] gave up on partition [part]'s current owner after
          repeated resend timeouts: the partition epoch advances to
          [epoch] and routing flips to the designated backup *)
  | Replica_applied of { server : core_id; src : core_id; part : int; n_addrs : int }
      (** the backup [server] applied one replicated lock-table
          mutation ([n_addrs] addresses) for partition [part], shipped
          by primary [src] over the reliable replication channel *)
  | Failover_done of { server : core_id; part : int; epoch : int; merged : int }
      (** the promoted backup reconstructed partition [part]'s
          authoritative lock table from its replica log ([merged]
          addresses merged) on the first post-failover request it
          served; in-flight grants whose release was lost with the
          primary are cleared later by lease expiry *)
  | Stale_epoch_rejected of {
      server : core_id;
      core : core_id;
      req_epoch : int;
      cur_epoch : int;
    }
      (** a request stamped with [req_epoch] reached a server whose
          view of the partition is at [cur_epoch] (or which no longer
          owns the partition): refused without touching the lock
          table, so a zombie primary — stalled or partitioned through
          a failover, then healed — can never grant a conflicting
          lock *)
  | Req_admitted of { core : core_id; tenant : int; queue_depth : int }
      (** an open-loop arrival passed admission control onto [core]'s
          bounded queue (see {!Admission}); [queue_depth] is the depth
          after enqueue. Admission events carry no per-attempt
          information: the transaction, if any, starts only when the
          core's worker later dequeues the request. *)
  | Req_shed of {
      core : core_id;
      tenant : int;
      reason : shed_reason;
      retry_after_ns : float;
    }
      (** admission control refused the arrival; [retry_after_ns] is
          the backoff hint handed back to the client (0 when the
          policy has none) *)
  | Req_expired of { core : core_id; tenant : int; waited_ns : float }
      (** a queued request sat longer than the queue deadline and was
          dropped at dequeue — shed late, before any transaction ran *)
  | Retry_budget_exhausted of { core : core_id; tenant : int; retries : int }
      (** the client's bounded retry budget ran out after [retries]
          resubmissions: the request fails permanently instead of
          re-amplifying into a retry storm *)

(** Conflict label of an abort cause; [None] (the status-CAS abort
    path documented on {!Tx_aborted}) renders as ["STATUS"] — the same
    key the JSON export uses in [aborts.by_conflict]. *)
val conflict_opt_to_string : conflict option -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string
