(* Typed trace events spanning the whole stack. Recorded into the
   environment's ring buffer ([System.env.trace]) only when tracing is
   enabled; every emit site guards with [Trace.enabled] so the
   constructors below are never allocated on untraced runs. *)

open Types

type t =
  | Tx_start of { core : core_id; attempt : int }
  | Tx_read of { core : core_id; addr : addr; granted : bool }
      (** read-lock round trip completed (elastic validated reads do
          not appear: they are plain memory accesses) *)
  | Tx_write of { core : core_id; addr : addr }  (** write buffered *)
  | Tx_commit_begin of { core : core_id; attempt : int; n_writes : int }
  | Tx_committed of { core : core_id; attempt : int; duration_ns : float }
  | Tx_aborted of { core : core_id; attempt : int; conflict : conflict option }
  | Lock_conflict of {
      server : core_id;
      requester : core_id;
      enemy : core_id;
      addr : addr;
      conflict : conflict;
      requester_wins : bool;
    }  (** a contention-manager decision at a DTM core *)
  | Enemy_aborted of {
      server : core_id;
      winner : core_id;
      victim : core_id;
      addr : addr;
      conflict : conflict;
    }  (** the winner's abort CAS landed on the victim's status word *)
  | Req_sent of {
      core : core_id;
      server : core_id;
      req_id : int;
      kind : string;
      n_addrs : int;
    }  (** an application core put a service request on the wire *)
  | Service of {
      server : core_id;
      requester : core_id;
      req_id : int;
      kind : string;
      queue_depth : int;
      occupancy : int;
    }
      (** a DTM core picked up a request: its input-queue depth and
          lock-table occupancy at that instant *)
  | Service_done of { server : core_id; requester : core_id; req_id : int }
      (** the DTM core finished processing (response, if any, sent) *)
  | Barrier of { core : core_id }

let conflict_opt_to_string = function
  | Some c -> conflict_to_string c
  | None -> "STATUS"

let pp fmt = function
  | Tx_start { core; attempt } ->
      Format.fprintf fmt "core %2d  tx-start     attempt=%d" core attempt
  | Tx_read { core; addr; granted } ->
      Format.fprintf fmt "core %2d  tx-read      addr=%d %s" core addr
        (if granted then "granted" else "refused")
  | Tx_write { core; addr } ->
      Format.fprintf fmt "core %2d  tx-write     addr=%d" core addr
  | Tx_commit_begin { core; attempt; n_writes } ->
      Format.fprintf fmt "core %2d  commit-begin attempt=%d writes=%d" core attempt
        n_writes
  | Tx_committed { core; attempt; duration_ns } ->
      Format.fprintf fmt "core %2d  committed    attempt=%d span=%.0fns" core attempt
        duration_ns
  | Tx_aborted { core; attempt; conflict } ->
      Format.fprintf fmt "core %2d  aborted      attempt=%d cause=%s" core attempt
        (conflict_opt_to_string conflict)
  | Lock_conflict { server; requester; enemy; addr; conflict; requester_wins } ->
      Format.fprintf fmt "dtm  %2d  conflict     %s addr=%d core %d vs core %d -> %s"
        server (conflict_to_string conflict) addr requester enemy
        (if requester_wins then "requester wins" else "requester loses")
  | Enemy_aborted { server; winner; victim; addr; conflict } ->
      Format.fprintf fmt "dtm  %2d  enemy-abort  %s addr=%d core %d aborts core %d"
        server (conflict_to_string conflict) addr winner victim
  | Req_sent { core; server; req_id; kind; n_addrs } ->
      Format.fprintf fmt "core %2d  req-sent     %s#%d -> dtm %d addrs=%d" core kind
        req_id server n_addrs
  | Service { server; requester; req_id; kind; queue_depth; occupancy } ->
      Format.fprintf fmt "dtm  %2d  serve        %s#%d from core %d queue=%d locks=%d"
        server kind req_id requester queue_depth occupancy
  | Service_done { server; requester; req_id } ->
      Format.fprintf fmt "dtm  %2d  serve-done   #%d from core %d" server req_id
        requester
  | Barrier { core } -> Format.fprintf fmt "core %2d  barrier" core

let to_string ev = Format.asprintf "%a" pp ev
