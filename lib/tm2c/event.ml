(* Typed trace events spanning the whole stack. Recorded into the
   environment's ring buffer ([System.env.trace]) only when tracing is
   enabled; every emit site guards with [Trace.enabled] so the
   constructors below are never allocated on untraced runs. *)

open Types

type t =
  | Tx_start of { core : core_id; attempt : int; elastic : bool }
      (** [elastic] marks attempts running under an elastic mode: their
          read traces are partial (validated reads are plain memory
          accesses) and their windows may release read locks early, so
          the checkers apply only the write-side rules to them *)
  | Tx_read of { core : core_id; addr : addr; granted : bool; value : int }
      (** read-lock round trip completed (elastic validated reads do
          not appear: they are plain memory accesses). When granted,
          the event is stamped at the instant the memory sample
          returned and [value] is the word read — the serializability
          oracle replays versioned memory against exactly these
          (time, value) pairs. [value] is 0 on a refused lock. *)
  | Tx_write of { core : core_id; addr : addr; value : int }
      (** write buffered; emitted on every store, so the last event
          per address within an attempt carries the value the commit
          will publish *)
  | Tx_commit_begin of { core : core_id; attempt : int; n_writes : int }
  | Host_write of { addr : addr; value : int }
      (** a host-side store outside any transaction: benchmark setup
          (populate) or private-node initialization under weak
          atomicity (the node becomes reachable only when a commit
          publishes a pointer to it). The serializability oracle
          installs these as external versions — without them, node
          reuse after [Alloc.free] would make transactional reads of
          re-initialized words look like value corruption. *)
  | Rlock_released of { core : core_id; addr : addr }
      (** elastic-early dropped the oldest window entry: its read lock
          is released before the attempt ends (normal attempts release
          only at commit/abort, which the checkers infer from the
          attempt-end events) *)
  | Wlock_granted of { core : core_id; addrs : addr list }
      (** a write-lock batch was granted to this core (eager stores
          acquire one address at a time; lazy commits acquire per
          owner node) — the lockset checker's growing-phase witness *)
  | Tx_publish of { core : core_id; attempt : int; n_writes : int }
      (** the attempt passed its status CAS and is about to apply its
          write set: stamped at the exact instant the new values
          become visible to other cores ([Shmem.write_burst] applies
          data immediately and charges latency afterwards) *)
  | Tx_committed of { core : core_id; attempt : int; duration_ns : float }
  | Tx_aborted of { core : core_id; attempt : int; conflict : conflict option }
      (** [conflict = None] is the status-CAS abort path: a remote
          contention manager aborted this attempt by CAS-ing its
          status word ([Enemy_aborted] on the server side), and the
          victim discovered it in [Tx.check_status] or at its own
          commit CAS. Rendered as ["STATUS"] everywhere a conflict
          label is surfaced (trace dumps, JSON, Perfetto). *)
  | Lock_conflict of {
      server : core_id;
      requester : core_id;
      enemy : core_id;
      addr : addr;
      conflict : conflict;
      requester_wins : bool;
    }  (** a contention-manager decision at a DTM core *)
  | Enemy_aborted of {
      server : core_id;
      winner : core_id;
      victim : core_id;
      addr : addr;
      conflict : conflict;
    }  (** the winner's abort CAS landed on the victim's status word *)
  | Req_sent of {
      core : core_id;
      server : core_id;
      req_id : int;
      kind : string;
      n_addrs : int;
    }  (** an application core put a service request on the wire *)
  | Service of {
      server : core_id;
      requester : core_id;
      req_id : int;
      kind : string;
      queue_depth : int;
      occupancy : int;
    }
      (** a DTM core picked up a request: its input-queue depth and
          lock-table occupancy at that instant *)
  | Service_done of { server : core_id; requester : core_id; req_id : int }
      (** the DTM core finished processing (response, if any, sent) *)
  | Barrier of { core : core_id }
  | Msg_dropped of { src : core_id; dst : core_id }
      (** fault injection lost a message on the [src]->[dst] link *)
  | Msg_duplicated of { src : core_id; dst : core_id }
      (** fault injection delivered a message twice on [src]->[dst] *)
  | Req_resent of { core : core_id; server : core_id; req_id : int; nth : int }
      (** the requester's timeout fired and it resent request [req_id]
          (same sequence number, so the server can absorb duplicates);
          [nth] counts resends of this request, starting at 1 *)
  | Core_crashed of { core : core_id; attempt : int }
      (** crash-stop: the core dies at an operation boundary, releasing
          nothing — its open attempt ([attempt], or -1 outside any
          transaction) stays Unfinished and its locks are orphaned
          until lease reclamation revokes them *)
  | Lease_reclaimed of {
      server : core_id;
      victim : core_id;
      addr : addr;
      aborted : bool;
    }
      (** the server revoked [victim]'s lock on [addr] because its
          lease expired (the holder crashed or its release was lost);
          guarded by the status-word CAS, so a committing victim is
          never reclaimed. [aborted] is true when the CAS landed (a
          live pending victim was killed, like [Enemy_aborted]) and
          false when the entry was already stale *)
  | Server_crashed of { server : core_id }
      (** DS-lock server crash-stop ([scrash=] fault): the server stops
          serving at this instant; requests already in its mailbox and
          any sent later are never answered *)
  | Epoch_bumped of { part : int; epoch : int; by : core_id }
      (** a client gave up on partition [part]'s current owner after
          repeated resend timeouts: the partition epoch advances to
          [epoch] and routing flips to the designated backup *)
  | Replica_applied of { server : core_id; src : core_id; part : int; n_addrs : int }
      (** the backup [server] applied one replicated lock-table
          mutation for partition [part] shipped by primary [src] *)
  | Failover_done of { server : core_id; part : int; epoch : int; merged : int }
      (** the promoted backup reconstructed partition [part]'s
          authoritative lock table from its replica log ([merged]
          addresses) on the first post-failover request it served *)
  | Stale_epoch_rejected of {
      server : core_id;
      core : core_id;
      req_epoch : int;
      cur_epoch : int;
    }
      (** a request stamped with [req_epoch] reached a server whose
          view of the partition is at [cur_epoch] (or which no longer
          owns the partition): refused without touching the lock
          table, so a zombie primary can never grant a conflicting
          lock *)
  | Req_admitted of { core : core_id; tenant : int; queue_depth : int }
      (** an open-loop arrival passed admission control onto [core]'s
          bounded queue; [queue_depth] is the depth after enqueue *)
  | Req_shed of {
      core : core_id;
      tenant : int;
      reason : shed_reason;
      retry_after_ns : float;
    }
      (** admission control refused the arrival ([retry_after_ns] is
          the backoff hint returned to the client) *)
  | Req_expired of { core : core_id; tenant : int; waited_ns : float }
      (** a queued request exceeded the queue deadline and was dropped
          at dequeue, before any transaction ran for it *)
  | Retry_budget_exhausted of { core : core_id; tenant : int; retries : int }
      (** the client's bounded retry budget ran out: the request fails
          permanently instead of feeding a retry storm *)

(* [None] is the status-CAS abort path (see [Tx_aborted] above): the
   label must match the JSON export's by_conflict key and the stats
   field [aborts_status]. *)
let conflict_opt_to_string = function
  | Some c -> conflict_to_string c
  | None -> "STATUS"

let pp fmt = function
  | Tx_start { core; attempt; elastic } ->
      Format.fprintf fmt "core %2d  tx-start     attempt=%d%s" core attempt
        (if elastic then " elastic" else "")
  | Tx_read { core; addr; granted; value } ->
      if granted then
        Format.fprintf fmt "core %2d  tx-read      addr=%d granted value=%d" core
          addr value
      else Format.fprintf fmt "core %2d  tx-read      addr=%d refused" core addr
  | Tx_write { core; addr; value } ->
      Format.fprintf fmt "core %2d  tx-write     addr=%d value=%d" core addr value
  | Tx_commit_begin { core; attempt; n_writes } ->
      Format.fprintf fmt "core %2d  commit-begin attempt=%d writes=%d" core attempt
        n_writes
  | Host_write { addr; value } ->
      Format.fprintf fmt "host     host-write   addr=%d value=%d" addr value
  | Rlock_released { core; addr } ->
      Format.fprintf fmt "core %2d  rlock-rel    addr=%d" core addr
  | Wlock_granted { core; addrs } ->
      Format.fprintf fmt "core %2d  wlock        addrs=%s" core
        (String.concat "," (List.map string_of_int addrs))
  | Tx_publish { core; attempt; n_writes } ->
      Format.fprintf fmt "core %2d  publish      attempt=%d writes=%d" core attempt
        n_writes
  | Tx_committed { core; attempt; duration_ns } ->
      Format.fprintf fmt "core %2d  committed    attempt=%d span=%.0fns" core attempt
        duration_ns
  | Tx_aborted { core; attempt; conflict } ->
      Format.fprintf fmt "core %2d  aborted      attempt=%d cause=%s" core attempt
        (conflict_opt_to_string conflict)
  | Lock_conflict { server; requester; enemy; addr; conflict; requester_wins } ->
      Format.fprintf fmt "dtm  %2d  conflict     %s addr=%d core %d vs core %d -> %s"
        server (conflict_to_string conflict) addr requester enemy
        (if requester_wins then "requester wins" else "requester loses")
  | Enemy_aborted { server; winner; victim; addr; conflict } ->
      Format.fprintf fmt "dtm  %2d  enemy-abort  %s addr=%d core %d aborts core %d"
        server (conflict_to_string conflict) addr winner victim
  | Req_sent { core; server; req_id; kind; n_addrs } ->
      Format.fprintf fmt "core %2d  req-sent     %s#%d -> dtm %d addrs=%d" core kind
        req_id server n_addrs
  | Service { server; requester; req_id; kind; queue_depth; occupancy } ->
      Format.fprintf fmt "dtm  %2d  serve        %s#%d from core %d queue=%d locks=%d"
        server kind req_id requester queue_depth occupancy
  | Service_done { server; requester; req_id } ->
      Format.fprintf fmt "dtm  %2d  serve-done   #%d from core %d" server req_id
        requester
  | Barrier { core } -> Format.fprintf fmt "core %2d  barrier" core
  | Msg_dropped { src; dst } ->
      Format.fprintf fmt "link     msg-dropped  %d -> %d" src dst
  | Msg_duplicated { src; dst } ->
      Format.fprintf fmt "link     msg-dup      %d -> %d" src dst
  | Req_resent { core; server; req_id; nth } ->
      Format.fprintf fmt "core %2d  req-resent   #%d -> dtm %d nth=%d" core req_id
        server nth
  | Core_crashed { core; attempt } ->
      Format.fprintf fmt "core %2d  crashed      attempt=%d" core attempt
  | Lease_reclaimed { server; victim; addr; aborted } ->
      Format.fprintf fmt "dtm  %2d  lease-reclaim addr=%d victim=core %d%s" server
        addr victim
        (if aborted then " (aborted)" else " (stale)")
  | Server_crashed { server } ->
      Format.fprintf fmt "dtm  %2d  srv-crashed" server
  | Epoch_bumped { part; epoch; by } ->
      Format.fprintf fmt "core %2d  epoch-bump   part=%d epoch=%d" by part epoch
  | Replica_applied { server; src; part; n_addrs } ->
      Format.fprintf fmt "dtm  %2d  replica      part=%d from dtm %d addrs=%d"
        server part src n_addrs
  | Failover_done { server; part; epoch; merged } ->
      Format.fprintf fmt "dtm  %2d  failover     part=%d epoch=%d merged=%d"
        server part epoch merged
  | Stale_epoch_rejected { server; core; req_epoch; cur_epoch } ->
      Format.fprintf fmt "dtm  %2d  stale-epoch  core %d req_epoch=%d cur=%d"
        server core req_epoch cur_epoch
  | Req_admitted { core; tenant; queue_depth } ->
      Format.fprintf fmt "core %2d  req-admitted tenant=%d queue=%d" core tenant
        queue_depth
  | Req_shed { core; tenant; reason; retry_after_ns } ->
      Format.fprintf fmt "core %2d  req-shed     tenant=%d cause=%s retry_after=%.0fns"
        core tenant (shed_reason_to_string reason) retry_after_ns
  | Req_expired { core; tenant; waited_ns } ->
      Format.fprintf fmt "core %2d  req-expired  tenant=%d waited=%.0fns" core tenant
        waited_ns
  | Retry_budget_exhausted { core; tenant; retries } ->
      Format.fprintf fmt "core %2d  retry-budget tenant=%d retries=%d" core tenant
        retries

let to_string ev = Format.asprintf "%a" pp ev
