open Types

type policy = No_cm | Backoff_retry | Offset_greedy | Wholly | Fair_cm

let all = [ No_cm; Backoff_retry; Offset_greedy; Wholly; Fair_cm ]

let name = function
  | No_cm -> "No CM"
  | Backoff_retry -> "Back-off-Retry"
  | Offset_greedy -> "Offset-Greedy"
  | Wholly -> "Wholly"
  | Fair_cm -> "FairCM"

let of_string s =
  match String.lowercase_ascii s with
  | "nocm" | "no-cm" | "no cm" | "none" -> Some No_cm
  | "backoff" | "backoff-retry" | "back-off-retry" -> Some Backoff_retry
  | "offset-greedy" | "greedy" | "offsetgreedy" -> Some Offset_greedy
  | "wholly" -> Some Wholly
  | "faircm" | "fair" | "fair-cm" -> Some Fair_cm
  | _ -> None

let starvation_free = function
  | Wholly | Fair_cm -> true
  | No_cm | Backoff_retry | Offset_greedy -> false

let uses_backoff = function
  | Backoff_retry -> true
  | No_cm | Offset_greedy | Wholly | Fair_cm -> false

type decision = Requester_loses | Enemies_lose

(* Lexicographic (key, core-id) comparison: smaller key means higher
   priority; core ids break ties, yielding the total order that rule
   (b) of Property 1 requires. *)
let beats policy a b =
  let lex ka kb = ka < kb || (ka = kb && a.h_core < b.h_core) in
  match policy with
  | No_cm | Backoff_retry -> false
  | Offset_greedy -> lex a.h_est_start_ns b.h_est_start_ns
  | Wholly -> lex (float_of_int a.h_committed) (float_of_int b.h_committed)
  | Fair_cm -> lex a.h_effective_ns b.h_effective_ns

(* The enemy responsible for a Requester_loses decision: the first
   enemy the requester fails to beat (under no-CM/Back-off-Retry the
   requester never wins, so the first enemy is charged). Used for
   abort-causality attribution, not by the protocol itself. *)
let first_blocker policy ~requester ~enemies =
  match enemies with
  | [] -> invalid_arg "Cm.first_blocker: no enemies"
  | hd :: _ -> (
      match policy with
      | No_cm | Backoff_retry -> hd
      | Offset_greedy | Wholly | Fair_cm -> (
          match List.find_opt (fun e -> not (beats policy requester e)) enemies with
          | Some e -> e
          | None -> hd))

let decide policy ~requester ~enemies =
  assert (enemies <> []);
  match policy with
  | No_cm | Backoff_retry -> Requester_loses
  | Offset_greedy | Wholly | Fair_cm ->
      if List.for_all (fun enemy -> beats policy requester enemy) enemies then
        Enemies_lose
      else Requester_loses
