open Tm2c_engine
open Tm2c_noc
open Tm2c_memory

type deployment = Dedicated | Multitask

type config = {
  platform : Platform.t;
  total_cores : int;
  service_cores : int;
  deployment : deployment;
  policy : Cm.policy;
  wmode : Tx.wmode;
  batching : bool;
  max_skew_ns : float;
  seed : int;
  mem_words : int;
}

let default_config =
  {
    platform = Platform.scc;
    total_cores = 48;
    service_cores = 24;
    deployment = Dedicated;
    policy = Cm.Fair_cm;
    wmode = Tx.Lazy;
    batching = true;
    max_skew_ns = 3_000.0;
    seed = 42;
    mem_words = 1 lsl 20;
  }

type t = {
  cfg : config;
  sim : Sim.t;
  env : System.env;
  alloc : Alloc.t;
  app_cores : Types.core_id array;
  dtm_cores : Types.core_id array;
  servers : (Types.core_id, Dtm.server) Hashtbl.t;
  root_prng : Prng.t;
  mutable next_spare_reg : int;
  max_reg : int;
  mutable timeseries : Timeseries.t option;
  mutable recorder : Recorder.t option;
  mutable sink_high_water : (unit -> int) option;
  mutable replicas : int;
  mutable wedged : bool;
  mutable admission : Admission.t option;
}

(* Raised by the watchdog's scheduled check (propagates out of
   [Sim.run]); [run] catches it and flags the run as wedged. *)
exception Wedged

(* Multitasking deployment: cycles of application computation that a
   service request must wait out before the non-preemptive service
   coroutine is scheduled (the Figure 2 effect). *)
let multitask_defer_cycles = 25_000

let partition_cores cfg =
  match cfg.deployment with
  | Multitask ->
      let all = Array.init cfg.total_cores (fun i -> i) in
      (all, all)
  | Dedicated ->
      if cfg.service_cores < 1 || cfg.service_cores >= cfg.total_cores then
        invalid_arg "Runtime: need 1 <= service_cores < total_cores";
      (* Spread the service cores evenly over the chip. *)
      let dtm =
        Array.init cfg.service_cores (fun k -> k * cfg.total_cores / cfg.service_cores)
      in
      let is_dtm = Array.make cfg.total_cores false in
      Array.iter (fun c -> is_dtm.(c) <- true) dtm;
      let app = ref [] in
      for c = cfg.total_cores - 1 downto 0 do
        if not is_dtm.(c) then app := c :: !app
      done;
      (Array.of_list !app, dtm)

let create cfg =
  if cfg.total_cores < 2 then invalid_arg "Runtime: need at least 2 cores";
  if cfg.total_cores > Platform.n_cores cfg.platform then
    invalid_arg "Runtime: total_cores exceeds the platform";
  let sim = Sim.create () in
  let root_prng = Prng.create ~seed:cfg.seed in
  let app_cores, dtm_cores = partition_cores cfg in
  let net = Network.create sim cfg.platform ~active:cfg.total_cores in
  let shmem = Shmem.create sim cfg.platform ~words:cfg.mem_words in
  let n_regs = Platform.n_cores cfg.platform + 8 in
  let regs = Atomic_reg.create sim cfg.platform ~count:n_regs in
  (* Per-core local-clock offsets: there is no global clock, which is
     precisely what breaks Offset-Greedy's rule (b). *)
  let skew =
    Array.init (Platform.n_cores cfg.platform) (fun _ ->
        Prng.float root_prng *. cfg.max_skew_ns)
  in
  let n_service = Array.length dtm_cores in
  (* Failover state starts inert: [fo_owner] mirrors [dtm_cores], so
     until [enable_replication] flips [fo_enabled] the routing below
     behaves exactly as a direct [dtm_cores] lookup. The backup of
     partition k is the neighboring primary (k+1 mod n): no extra
     cores, and with one replica every server backs up exactly one
     other partition. *)
  let failover =
    {
      System.fo_enabled = false;
      fo_epoch = Array.make n_service 0;
      fo_owner = Array.copy dtm_cores;
      fo_primary = Array.copy dtm_cores;
      fo_backup = Array.init n_service (fun k -> dtm_cores.((k + 1) mod n_service));
      fo_merged = Array.make n_service true;
    }
  in
  let owner_of addr = failover.System.fo_owner.(System.owner_hash addr n_service) in
  let stats = Stats.create ~n_cores:(Platform.n_cores cfg.platform) in
  (* The fault stream is a labelled (non-mutating) split of the root:
     creating it draws nothing from [root_prng], and an empty plan
     draws nothing from the stream, so a run that never installs a
     plan is bit-for-bit identical to one that predates faults. *)
  let faults =
    Fault.create
      ~prng:(Prng.split_label root_prng ~label:"fault")
      ~n_cores:(Platform.n_cores cfg.platform) ()
  in
  Network.set_faults net (Some faults);
  let env =
    {
      System.sim;
      net;
      shmem;
      regs;
      policy = cfg.policy;
      owner_of;
      dtm_cores;
      skew;
      stats;
      serve_inline = None;
      serve_defer_cycles = 0;
      batching = cfg.batching;
      barrier_seen = Array.make (Platform.n_cores cfg.platform) 0;
      trace = Trace.create ();
      obs = Obs.create ();
      span_commit =
        Span.create ~n_cores:(Platform.n_cores cfg.platform) ~phases:Phase.names ();
      span_abort =
        Span.create ~n_cores:(Platform.n_cores cfg.platform) ~phases:Phase.names ();
      faults;
      req_timeout_ns = 0.0;
      lease_ns = 0.0;
      unsafe_skip_doom_check = false;
      failover;
      commit_lat = Sketch.create ();
      e2e_lat = Sketch.create ();
      overload = System.overload_create ();
    }
  in
  (* Drops and duplications happen inside the network layer, which
     cannot see the event type: route them into the trace here. *)
  Fault.on_drop faults (fun ~src ~dst ->
      if Trace.enabled env.System.trace then
        Trace.record env.System.trace ~now:(Sim.now sim)
          (Event.Msg_dropped { src; dst }));
  Fault.on_dup faults (fun ~src ~dst ->
      if Trace.enabled env.System.trace then
        Trace.record env.System.trace ~now:(Sim.now sim)
          (Event.Msg_duplicated { src; dst }));
  let alloc = Alloc.create shmem ~base:1 ~limit:(cfg.mem_words - 1) in
  {
    cfg;
    sim;
    env;
    alloc;
    app_cores;
    dtm_cores;
    servers = Hashtbl.create 64;
    root_prng;
    next_spare_reg = Platform.n_cores cfg.platform;
    max_reg = n_regs;
    timeseries = None;
    recorder = None;
    sink_high_water = None;
    replicas = 0;
    wedged = false;
    admission = None;
  }

let config t = t.cfg

let env t = t.env

let sim t = t.sim

let shmem t = t.env.System.shmem

let alloc t = t.alloc

let stats t = t.env.System.stats

let trace t = t.env.System.trace

let obs t = t.env.System.obs

let enable_tracing t = Trace.enable t.env.System.trace

let faults t = t.env.System.faults

(* Install a fault plan. Call before [run] for reproducibility: the
   fault stream draws once per message only while a link fault is
   configured. *)
let set_fault_plan t plan = Fault.set_plan t.env.System.faults plan

(* Hardening knobs; both default to disabled so pristine runs take the
   exact pre-hardening code paths. [timeout_ns] is the base request
   timeout (doubling per resend, bounded); [lease_ns] is the lock
   lease after which a blocking holder is forcibly reclaimed. *)
let set_hardening t ?timeout_ns ?lease_ns () =
  (match timeout_ns with
  | Some v -> t.env.System.req_timeout_ns <- v
  | None -> ());
  match lease_ns with
  | Some v -> t.env.System.lease_ns <- v
  | None -> ()

(* Mutation hook for the opacity-oracle tests: disables every client
   poll of its own status word (see [System.env]). With it on, a
   doomed attempt can sample memory after its enemy published and
   record an inconsistent read — exactly what the opacity checker
   must reject. *)
let set_skip_doom_check t v = t.env.System.unsafe_skip_doom_check <- v

(* Replicated lock service. With [replicas = 1] every primary ships
   its lock-table mutations to the next primary over (reliable FIFO);
   clients that exhaust their resend patience bump the partition epoch
   and re-route there. [replicas = 0] is a strict no-op: no message is
   sent and no schedule perturbed. Failover additionally needs request
   timeouts (to detect the dead primary) and leases (to clear in-flight
   grants whose release died with it) — see [set_hardening]. *)
let enable_replication t ~replicas =
  match replicas with
  | 0 -> ()
  | 1 ->
      if t.cfg.deployment <> Dedicated then
        invalid_arg "Runtime.enable_replication: requires the dedicated deployment";
      if Array.length t.dtm_cores < 2 then
        invalid_arg "Runtime.enable_replication: need at least 2 service cores";
      t.replicas <- 1;
      t.env.System.failover.System.fo_enabled <- true
  | _ -> invalid_arg "Runtime.enable_replication: replicas must be 0 or 1"

let replicas t = t.replicas

(* Admission control for open-loop traffic (see Admission). Lazy
   per-core queues, so enabling it perturbs nothing until the open-loop
   driver actually offers arrivals. Call before [run]; at most once. *)
let enable_admission t ~policy ?retry_after_ns () =
  if t.admission <> None then
    invalid_arg "Runtime.enable_admission: already enabled";
  let a = Admission.create t.env ~policy ?retry_after_ns () in
  t.admission <- Some a;
  a

let admission t = t.admission

let wedged t = t.wedged

(* Liveness watchdog: every [window_ns] of virtual time, compare total
   resolved attempts (commits + aborts) against the previous window.
   [stall_windows] consecutive flat windows while spawned fibers are
   still unfinished means the run is wedged (e.g. every client blocked
   on a dead DS server): raise out of [Sim.run] instead of burning
   virtual time to the horizon. The check reschedules itself only
   while other events are pending, so it never keeps an
   otherwise-finished simulation alive. *)
let enable_watchdog t ~window_ns ~stall_windows =
  if window_ns <= 0.0 || stall_windows < 1 then
    invalid_arg "Runtime.enable_watchdog: need window_ns > 0 and stall_windows >= 1";
  (* Progress means *attempts resolving*, not commits: a livelocking
     configuration (No CM at high core counts) aborts furiously
     without committing and must ride to its horizon — only cores
     blocked forever on a reply produce neither commits nor aborts. *)
  let last_resolved = ref (-1) in
  let flat = ref 0 in
  let rec check () =
    let resolved =
      Stats.total_commits t.env.System.stats
      + Stats.total_aborts t.env.System.stats
    in
    if resolved = !last_resolved && Sim.spawned t.sim > Sim.finished t.sim
    then begin
      incr flat;
      if !flat >= stall_windows then raise Wedged
    end
    else flat := 0;
    last_resolved := resolved;
    if Sim.pending t.sim > 0 then
      Sim.schedule t.sim ~at:(Sim.now t.sim +. window_ns) check
  in
  Sim.schedule t.sim ~at:window_ns check

(* Host-side store with a trace record: benchmark setup (populate)
   and weak-atomicity private-node initialization go through here so
   the checkers see every untraced-core write as an external version
   of the address instead of value corruption. *)
let host_write t addr value =
  Shmem.poke t.env.System.shmem addr value;
  let tr = t.env.System.trace in
  if Trace.enabled tr then
    Trace.record tr ~now:(Sim.now t.sim) (Event.Host_write { addr; value })

let span_commit t = t.env.System.span_commit

let span_abort t = t.env.System.span_abort

(* Turn on phase attribution: per-attempt scratch accounting in Tx,
   flushed into the committed/aborted aggregates. *)
let enable_profiling t =
  Span.enable t.env.System.span_commit;
  Span.enable t.env.System.span_abort

let timeseries t = t.timeseries

(* Install and start the simulated-time sampler. Channels:
   - ops/commits/aborts/messages: per-window deltas of the always-on
     cumulative counters (throughput and abort-rate curves);
   - queue_depth_mean: instantaneous mean DTM input-queue depth;
   - link_msgs_max: the busiest link's per-window message count (the
     per-link delta is computed against a private snapshot of the
     link matrix, so the always-on counters stay untouched). *)
let enable_timeseries t ~window_ns =
  if t.timeseries <> None then
    invalid_arg "Runtime.enable_timeseries: already enabled";
  let ts = Timeseries.create ~window_ns in
  let stats = t.env.System.stats in
  let net = t.env.System.net in
  Timeseries.add_channel ts ~name:"ops" Timeseries.Cumulative (fun () ->
      float_of_int (Stats.total_ops stats));
  Timeseries.add_channel ts ~name:"commits" Timeseries.Cumulative (fun () ->
      float_of_int (Stats.total_commits stats));
  Timeseries.add_channel ts ~name:"aborts" Timeseries.Cumulative (fun () ->
      float_of_int (Stats.total_aborts stats));
  Timeseries.add_channel ts ~name:"messages" Timeseries.Cumulative (fun () ->
      float_of_int (Network.sent net));
  Timeseries.add_channel ts ~name:"queue_depth_mean" Timeseries.Gauge (fun () ->
      let n = Array.length t.dtm_cores in
      if n = 0 then 0.0
      else begin
        let sum = ref 0 in
        Array.iter
          (fun core -> sum := !sum + Network.pending net ~self:core)
          t.dtm_cores;
        float_of_int !sum /. float_of_int n
      end);
  let links = (Network.metrics net).Network.per_link in
  let prev = Array.map Array.copy links in
  Timeseries.add_channel ts ~name:"link_msgs_max" Timeseries.Gauge (fun () ->
      let worst = ref 0 in
      Array.iteri
        (fun src row ->
          Array.iteri
            (fun dst c ->
              let d = c - prev.(src).(dst) in
              prev.(src).(dst) <- c;
              if d > !worst then worst := d)
            row)
        links;
      float_of_int !worst);
  Timeseries.start ts t.sim;
  t.timeseries <- Some ts

(* Checker-sink high-water mark: the harness installs a reader over
   whatever collector it attaches (the runtime cannot name the checker
   library without a dependency cycle). *)
let set_sink_high_water t reader = t.sink_high_water <- Some reader

let sink_high_water t =
  match t.sink_high_water with Some f -> f () | None -> 0

let recorder t = t.recorder

(* Install and start the flight recorder (see Recorder): periodic
   bounded-memory metrics snapshots on a simulated-time cadence,
   optionally streamed as OpenMetrics-style text through [out]. Trace
   events are counted through the trace's second tap, so the checker
   stack keeps exclusive ownership of the primary sink. Call before
   [run]; at most once. *)
let enable_recorder t ~window_ns ?out ?top_k () =
  if t.recorder <> None then
    invalid_arg "Runtime.enable_recorder: already enabled";
  let r =
    Recorder.create ~env:t.env ~window_ns ?out ?top_k
      ~servers:(fun () ->
        Array.to_list t.dtm_cores
        |> List.filter_map (fun core -> Hashtbl.find_opt t.servers core))
      ()
  in
  Recorder.set_sink_high_water r (fun () -> sink_high_water t);
  Trace.set_tap t.env.System.trace (Some (fun _now ev -> Recorder.record_event r ev));
  Recorder.start r;
  t.recorder <- Some r

(* Emit the recorder's final partial window. Idempotent, and a no-op
   when no recorder is installed: every workload-collection path calls
   it unconditionally. *)
let finish_recorder t =
  match t.recorder with Some r -> Recorder.finish r | None -> ()

(* Host-side self-profiler: inject a monotonic wall clock (seconds)
   into the scheduler — see Sim.set_host_clock. The engine never reads
   wall time itself; bin/ passes the Unix wall clock. *)
let enable_self_profile t ~clock = Sim.set_host_clock t.sim (Some clock)

let self_profile t = Sim.host_profile t.sim

(* DTM servers instantiated so far (all of them once services have
   started), in core order — the per-server queue/occupancy stats. *)
let servers t =
  Array.to_list t.dtm_cores
  |> List.filter_map (fun core -> Hashtbl.find_opt t.servers core)

let app_cores t = t.app_cores

let dtm_cores t = t.dtm_cores

let fork_prng t = Prng.split t.root_prng

(* Labelled (non-mutating) split of the root stream: derives the same
   child for the same label no matter when it is called, and draws
   nothing from the root — so subsystems created on demand (open-loop
   arrival streams) never perturb the fork sequence closed-loop
   baselines consume. *)
let labeled_prng t ~label = Prng.split_label t.root_prng ~label

let spare_reg t =
  if t.next_spare_reg >= t.max_reg then
    invalid_arg "Runtime.spare_reg: no spare registers left";
  let r = t.next_spare_reg in
  t.next_spare_reg <- r + 1;
  r

let app_ctx t core = Tx.make t.env ~core ~prng:(fork_prng t) ~wmode:t.cfg.wmode

let server_for t core =
  match Hashtbl.find_opt t.servers core with
  | Some s -> s
  | None ->
      let s = Dtm.make ~core in
      Hashtbl.add t.servers core s;
      s

let start_services t =
  match t.cfg.deployment with
  | Dedicated ->
      Array.iter
        (fun core ->
          let server = server_for t core in
          Sim.spawn t.sim ~name:(Printf.sprintf "dtm-%d" core) (fun () ->
              Dtm.service_loop t.env server))
        t.dtm_cores;
      (* Arm the planned DS-server crash points (install the plan
         before starting services). Scheduling only happens when the
         plan has scrashes, so an empty plan stays bit-for-bit. The
         marked server dies silently at its next wakeup. *)
      List.iter
        (fun { Fault.scrash_core; scrash_at_ns } ->
          Sim.schedule t.sim ~at:scrash_at_ns (fun () ->
              Fault.mark_server_crashed t.env.System.faults ~core:scrash_core;
              if Trace.enabled t.env.System.trace then
                Trace.record t.env.System.trace ~now:(Sim.now t.sim)
                  (Event.Server_crashed { server = scrash_core })))
        (Fault.plan t.env.System.faults).Fault.scrashes
  | Multitask ->
      Array.iter (fun core -> ignore (server_for t core)) t.dtm_cores;
      t.env.System.serve_defer_cycles <- multitask_defer_cycles;
      t.env.System.serve_inline <-
        Some (fun ~self req -> Dtm.handle t.env (server_for t self) req)

let spawn_app t core f =
  Sim.spawn t.sim ~name:(Printf.sprintf "app-%d" core) f

let poll_service t ~core =
  match t.cfg.deployment with
  | Dedicated -> ()
  | Multitask ->
      let server = server_for t core in
      let rec drain () =
        match Network.try_recv t.env.System.net ~self:core with
        | Some (System.Req req) ->
            Dtm.handle t.env server req;
            drain ()
        | Some (System.Resp _) ->
            invalid_arg "Runtime.poll_service: unexpected response"
        | Some (System.Repl _) ->
            invalid_arg "Runtime.poll_service: replication is dedicated-only"
        | None -> ()
      in
      drain ()

(* On a watchdog trip the event count is lost: 0 with [wedged t] set
   signals the caller to report the wedge instead of trusting the
   run's figures. *)
let run t ?until () =
  try Sim.run t.sim ?until ()
  with Wedged ->
    t.wedged <- true;
    0

(* Privatization barrier (Section 8): each application core sends a
   barrier-reached message to every other application core and blocks
   until it has received one from each of them. Barrier messages share
   the interconnect with the DTM traffic, so under the multitasking
   deployment pending service requests are drained while waiting. *)
let barrier t ~core =
  let peers = List.filter (fun c -> c <> core) (Array.to_list t.app_cores) in
  List.iter
    (fun dst ->
      Network.send t.env.System.net ~src:core ~dst
        (System.Req
           { tx = { Types.m_core = core; m_attempt = -1; m_offset_ns = 0.0;
                    m_committed = 0; m_effective_ns = 0.0 };
             kind = System.Barrier_reached;
             req_id = 0;
             epoch = 0 }))
    peers;
  let expected = List.length peers in
  let seen = t.env.System.barrier_seen in
  (* Barrier messages that arrived while this core was inside a
     transaction were stashed by [Tx.await]. *)
  while seen.(core) < expected do
    match Network.recv t.env.System.net ~self:core with
    | System.Req { kind = System.Barrier_reached; _ } -> seen.(core) <- seen.(core) + 1
    | System.Req req -> (
        match t.env.System.serve_inline with
        | Some serve -> serve ~self:core req
        | None -> invalid_arg "Runtime.barrier: unexpected service request")
    | System.Resp _ -> invalid_arg "Runtime.barrier: unexpected response"
    | System.Repl _ -> invalid_arg "Runtime.barrier: unexpected replication"
  done;
  seen.(core) <- seen.(core) - expected
