(** Application-side transactional runtime (Section 3.3).

    Transactions use {e visible reads} — the read lock is acquired at
    the responsible DTM node before the memory is read (Algorithm 4) —
    and {e deferred writes} — writes are buffered and the write locks
    acquired lazily at commit, batched per DTM node (Algorithm 3).
    Eager write-lock acquisition is available for the Fig. 4(c)
    comparison.

    Elastic transactions (Section 6) relax the atomicity of the
    read-only prefix:
    - [Elastic_early] acquires read locks normally but releases all
      but the last two as the prefix advances (one extra message per
      released lock);
    - [Elastic_read] skips read locks entirely in the prefix, reading
      shared memory directly and re-validating the previous read after
      each step (extra memory accesses instead of messages); the
      remaining window is validated again at commit.

    A transaction body must be written to be re-executable: the
    runtime re-runs it after an abort (the paper model: no side
    effects inside transactions). *)

type elastic = Enone | Elastic_early | Elastic_read

type wmode = Lazy | Eager

(** Raised internally to unwind an aborted attempt. [None] means the
    abort was discovered through the status word (a remote contention-
    manager decision). Escapes [atomic] never. *)
exception Abort_exn of Types.conflict option

type ctx

val make :
  System.env ->
  core:Types.core_id ->
  prng:Tm2c_engine.Prng.t ->
  wmode:wmode ->
  ctx

val core : ctx -> Types.core_id

val env : ctx -> System.env

val stats : ctx -> Stats.core

(** Number of commits performed by this context. *)
val committed : ctx -> int

(** [atomic ctx f] runs [f] as a transaction, retrying until it
    commits; returns [f]'s result. Nesting is not supported. *)
val atomic : ?elastic:elastic -> ctx -> (unit -> 'a) -> 'a

(** [irrevocable ctx f] runs [f] as an irrevocable transaction
    (Section 2's sketched extension): exclusive access to every DTM
    partition is acquired first — in ascending node order, so two
    irrevocable transactions cannot deadlock — and [f] then executes
    pessimistically with direct memory accesses. [f] runs exactly
    once and the transaction never aborts; side effects are safe.
    Expensive: it drains and stalls the whole system, so reserve it
    for operations that cannot be re-executed. *)
val irrevocable : ctx -> (unit -> 'a) -> 'a

(** Transactional read of one shared-memory word. Must be called from
    inside [atomic]. *)
val read : ctx -> Types.addr -> int

(** Transactional (buffered) write. *)
val write : ctx -> Types.addr -> int -> unit

(** [abort ctx] explicitly aborts and retries the current attempt. *)
val abort : ctx -> 'a

(** Charge local computation cycles (simulation bookkeeping; has no
    transactional meaning). *)
val compute : ctx -> int -> unit
