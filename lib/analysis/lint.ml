type config = {
  roots : string list;
  det_prefixes : string list;
  recv_prefixes : string list;
  mli_required : string list;
  exporters : string list;
  event_mli : string option;
  waivers : Waiver.t list;
}

type report = {
  findings : Finding.t list;
  inventory : Mutstate.entry list;
}

(* The project waiver table. Every entry carries the justification
   that review accepted; stale entries (matching nothing) fail the
   lint, so this list cannot rot. *)
let default_waivers =
  [
    Waiver.v ~file:"lib/harness/harness.ml" ~rule:"wall-clock"
      "host-side benchmarking measures real elapsed seconds by design; \
       virtual-time results never read it";
    Waiver.v ~file:"lib/engine/heap.ml" ~rule:"obj-magic"
      "generic backing-array dummy slot: one documented constant, never \
       dereferenced at its fake type";
    Waiver.v ~file:"lib/engine/wheel.ml" ~rule:"obj-magic"
      "calendar-queue bucket vectors reuse the same dead-slot constant so \
       recycled cells retain no payloads";
    Waiver.v ~file:"lib/engine/mailbox.ml" ~rule:"obj-magic"
      "mailbox ring and timed-delivery slots: same generic dummy-slot \
       pattern as the heap";
    Waiver.v ~file:"lib/engine/sim.ml" ~rule:"domain-use"
      "Domain.DLS gives each domain its own ambient-sim slot — the \
       domain-safety mechanism itself, introducing no cross-domain sharing";
    Waiver.v ~file:"lib/engine/sim.ml" ~rule:"global-mutable"
      ~symbol:"current_key"
      "Domain.DLS key: storage is per-domain by construction, so parallel \
       sweep cells cannot race on the ambient simulation";
    Waiver.v ~file:"lib/engine/det.ml" ~rule:"hashtbl-order"
      "the sanctioned wrapper: sorts bindings by key before exposing any \
       iteration order";
    Waiver.v ~file:"lib/apps/workload.ml" ~rule:"global-mutable"
      ~symbol:"observer"
      "export hook installed once by the harness before any run starts; \
       read-only thereafter — must become per-domain if sweep cells ever \
       install different observers";
    Waiver.v ~file:"lib/apps/workload.ml" ~rule:"global-mutable"
      ~symbol:"preflight"
      "setup hook with the same once-before-any-run install discipline as \
       observer";
    Waiver.v ~file:"lib/tm2c/dtm.ml" ~rule:"untimed-recv"
      "the DS-lock server blocks for its next request by design: crash-stop \
       is modeled at wakeup, and the run horizon bounds the wait";
    Waiver.v ~file:"lib/tm2c/runtime.ml" ~rule:"untimed-recv"
      "barrier rendezvous: every peer's Barrier_reached send is already on \
       the wire or queued, so the receive cannot wedge";
    Waiver.v ~file:"lib/tm2c/tx.ml" ~rule:"untimed-recv"
      "reached only when request timeouts are configured off; the timed \
       variant is taken on every fault-tolerant configuration";
  ]

let default_config =
  {
    roots = [ "lib"; "bench"; "bin" ];
    det_prefixes = [ "lib/" ];
    recv_prefixes = [ "lib/tm2c/" ];
    mli_required = [ "lib/tm2c"; "lib/engine"; "lib/analysis" ];
    exporters =
      [ "lib/check/histlog.ml"; "lib/harness/perfetto.ml"; "lib/tm2c/recorder.ml" ];
    event_mli = Some "lib/tm2c/event.mli";
    waivers = default_waivers;
  }

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let scoped prefixes file = List.exists (fun p -> has_prefix ~prefix:p file) prefixes

(* Deterministic walk: sorted readdir, depth first. *)
let rec walk path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> walk (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let source_files roots =
  List.rev
    (List.fold_left
       (fun acc root ->
         if Sys.file_exists root then walk root acc
         else failwith (Printf.sprintf "tm2c-lint: root %s not found" root))
       [] roots)

let parse_or_finding file =
  match Ast_io.parse_file file with
  | ast -> Ok ast
  | exception Ast_io.Syntax_error { file; line; message } ->
      Error (Finding.v ~file ~line ~rule:"parse-error" message)

let check_mli_coverage cfg =
  List.concat_map
    (fun dir ->
      if Sys.file_exists dir && Sys.is_directory dir then
        let entries = Sys.readdir dir in
        Array.sort compare entries;
        Array.to_list entries
        |> List.filter_map (fun entry ->
               let path = Filename.concat dir entry in
               if
                 Filename.check_suffix entry ".ml"
                 && (not (Sys.is_directory path))
                 && not (Sys.file_exists (path ^ "i"))
               then
                 Some
                   (Finding.v ~file:path ~line:1 ~rule:"mli-required"
                      "module has no interface file (.mli required in this \
                       directory)")
               else None)
      else [])
    cfg.mli_required

let check_exporters cfg =
  match cfg.event_mli with
  | None -> []
  | Some event_mli -> (
      if not (Sys.file_exists event_mli) then
        [
          Finding.v ~file:event_mli ~line:1 ~rule:"exporter-exhaustive"
            "event interface not found — the exhaustiveness rule lost its \
             anchor";
        ]
      else
        match parse_or_finding event_mli with
        | Error f -> [ f ]
        | Ok ast -> (
            match Exhaustive.event_constructors ast with
            | Error msg ->
                [
                  Finding.v ~file:event_mli ~line:1 ~rule:"exporter-exhaustive"
                    msg;
                ]
            | Ok ctors ->
                List.concat_map
                  (fun file ->
                    if not (Sys.file_exists file) then
                      [
                        Finding.v ~file ~line:1 ~rule:"exporter-exhaustive"
                          "event exporter missing";
                      ]
                    else
                      match parse_or_finding file with
                      | Error f -> [ f ]
                      | Ok ast -> Exhaustive.check_file ~file ~ctors ast)
                  cfg.exporters))

let run cfg =
  let files = source_files cfg.roots in
  let findings = ref [] and inventory = ref [] in
  let add fs = findings := fs :: !findings in
  List.iter
    (fun file ->
      let det = scoped cfg.det_prefixes file in
      let recv = scoped cfg.recv_prefixes file in
      match parse_or_finding file with
      | Error f -> add [ f ]
      | Ok ast ->
          add (Calls.run ~file ~scope:{ Calls.det; recv } ast);
          if det && Filename.check_suffix file ".ml" then begin
            let entries = Mutstate.run ~file ast in
            inventory := entries :: !inventory;
            add (Mutstate.to_findings entries)
          end)
    files;
  add (check_mli_coverage cfg);
  add (check_exporters cfg);
  let fs = List.concat (List.rev !findings) in
  Waiver.apply cfg.waivers fs;
  let stale = Waiver.stale cfg.waivers fs in
  let fs = List.sort Finding.order (fs @ stale) in
  let inventory = List.concat (List.rev !inventory) in
  (* Inventory statuses follow waiver application on their findings. *)
  List.iter
    (fun (e : Mutstate.entry) ->
      if e.Mutstate.e_status = "violation" then
        List.iter
          (fun (f : Finding.t) ->
            if
              f.Finding.rule = "global-mutable" && f.Finding.waived
              && f.Finding.file = e.Mutstate.e_file
              && f.Finding.line = e.Mutstate.e_line
              && f.Finding.symbol = Some e.Mutstate.e_name
            then begin
              e.Mutstate.e_status <- "allowlisted";
              e.Mutstate.e_note <- f.Finding.justification
            end)
          fs)
    inventory;
  { findings = fs; inventory }

let active r = Finding.active r.findings

let findings_json r =
  let fs = List.map Finding.to_json r.findings in
  let inv = List.map Mutstate.entry_to_json r.inventory in
  let n = List.length r.findings and a = List.length (active r) in
  Printf.sprintf
    "{\"tool\":\"tm2c-lint\",\"version\":1,\"summary\":{\"total\":%d,\"active\":%d,\"waived\":%d},\"findings\":[%s],\"inventory\":[%s]}\n"
    n a (n - a) (String.concat "," fs) (String.concat "," inv)

let inventory_json r =
  Printf.sprintf "{\"tool\":\"tm2c-lint\",\"version\":1,\"inventory\":[%s]}\n"
    (String.concat "," (List.map Mutstate.entry_to_json r.inventory))

let write_file path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)
