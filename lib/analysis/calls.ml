open Parsetree

type scope = { det : bool; recv : bool }

type ban = {
  b_path : string list;
  b_exact : bool;
  b_rule : string;
  b_msg : string;
  b_on : scope -> bool;
}

let det s = s.det
let recv s = s.recv
let always _ = true

let bans =
  [
    (* Wall-clock reads: virtual time comes from the engine; host time
       is injected where measurement is the point. *)
    { b_path = [ "Unix"; "gettimeofday" ]; b_exact = true; b_rule = "wall-clock";
      b_msg = "wall-clock read — virtual time comes from the engine"; b_on = det };
    { b_path = [ "Unix"; "time" ]; b_exact = true; b_rule = "wall-clock";
      b_msg = "wall-clock read — virtual time comes from the engine"; b_on = det };
    { b_path = [ "Sys"; "time" ]; b_exact = true; b_rule = "wall-clock";
      b_msg = "wall-clock read — virtual time comes from the engine"; b_on = det };
    { b_path = [ "Sys"; "getenv" ]; b_exact = true; b_rule = "env-read";
      b_msg = "environment read — configuration must flow through Settings"; b_on = det };
    { b_path = [ "Sys"; "getenv_opt" ]; b_exact = true; b_rule = "env-read";
      b_msg = "environment read — configuration must flow through Settings"; b_on = det };
    { b_path = [ "Hashtbl"; "iter" ]; b_exact = true; b_rule = "hashtbl-order";
      b_msg = "iterates in hash order — use Det.iter (sorted) or waive a \
               commutative traversal"; b_on = det };
    { b_path = [ "Hashtbl"; "fold" ]; b_exact = true; b_rule = "hashtbl-order";
      b_msg = "folds in hash order — use Det.bindings (sorted) or waive a \
               commutative fold"; b_on = det };
    { b_path = [ "List"; "hd" ]; b_exact = true; b_rule = "partial-call";
      b_msg = "partial List.hd — match on the list explicitly"; b_on = det };
    { b_path = [ "Option"; "get" ]; b_exact = true; b_rule = "partial-call";
      b_msg = "partial Option.get — match on the option explicitly"; b_on = det };
    { b_path = [ "Obj"; "magic" ]; b_exact = true; b_rule = "obj-magic";
      b_msg = "Obj.magic defeats the type system"; b_on = always };
    { b_path = [ "Mailbox"; "recv" ]; b_exact = true; b_rule = "untimed-recv";
      b_msg = "untimed blocking receive — a lost message wedges this loop; use \
               recv_timeout or waive with the progress argument"; b_on = recv };
    { b_path = [ "Network"; "recv" ]; b_exact = true; b_rule = "untimed-recv";
      b_msg = "untimed blocking receive — a lost message wedges this loop; use \
               recv_timeout or waive with the progress argument"; b_on = recv };
    (* Whole-module bans: any member use taints determinism. *)
    { b_path = [ "Unix" ]; b_exact = false; b_rule = "unix-dep";
      b_msg = "Unix dependency in the deterministic core"; b_on = det };
    { b_path = [ "Random" ]; b_exact = false; b_rule = "stdlib-random";
      b_msg = "stdlib Random is seeded global state — use the engine Prng"; b_on = det };
    { b_path = [ "Domain" ]; b_exact = false; b_rule = "domain-use";
      b_msg = "Domain primitive — cross-domain state needs an explicit waiver"; b_on = det };
  ]

let nondet_open_modules = [ "Unix"; "Random"; "Domain" ]

let path_matches ban path =
  if ban.b_exact then path = ban.b_path
  else
    match (ban.b_path, path) with
    | [ m ], head :: _ :: _ -> m = head
    | _ -> false

type state = {
  mutable env : Resolve.env;
  scope : scope;
  file : string;
  mutable acc : Finding.t list;
}

let report st ~line ~rule ?symbol msg =
  st.acc <- Finding.v ?symbol ~file:st.file ~line ~rule msg :: st.acc

let check_ident st loc lid =
  let cands = Resolve.candidates st.env lid in
  let hit exact =
    List.find_map
      (fun ban ->
        if ban.b_exact = exact && ban.b_on st.scope then
          List.find_map
            (fun path -> if path_matches ban path then Some (ban, path) else None)
            cands
        else None)
      bans
  in
  match (match hit true with Some h -> Some h | None -> hit false) with
  | Some (ban, path) ->
      let symbol = String.concat "." path in
      report st ~line:(Ast_io.line_of loc) ~rule:ban.b_rule ~symbol
        (Printf.sprintf "%s: %s" symbol ban.b_msg)
  | None -> ()

let check_open st loc path =
  if st.scope.det then
    match Resolve.resolve_path st.env path with
    | m :: _ when List.mem m nondet_open_modules ->
        report st ~line:(Ast_io.line_of loc) ~rule:"open-nondet" ~symbol:m
          (Printf.sprintf
             "open %s brings nondeterministic primitives into scope unqualified"
             m)
    | _ -> ()

let is_string_constant e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string _) -> true
  | Pexp_constraint ({ pexp_desc = Pexp_constant (Pconst_string _); _ }, _) ->
      true
  | _ -> false

let check_failwith st e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, (_, arg) :: _)
    when List.mem [ "failwith" ] (Resolve.candidates st.env lid)
         && is_string_constant arg ->
      report st ~line:(Ast_io.line_of e.pexp_loc) ~rule:"naked-failwith"
        ~symbol:"failwith"
        "failwith on a bare string literal — format a contextual message"
  | _ -> ()

let iterator st =
  let open Ast_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt = lid; loc } -> check_ident st loc lid
    | _ -> ());
    check_failwith st e;
    match e.pexp_desc with
    | Pexp_open (od, body) ->
        let saved = st.env in
        (match od.popen_expr.pmod_desc with
        | Pmod_ident { txt = lid; loc } ->
            let path = Resolve.flatten lid in
            check_open st loc path;
            st.env <- Resolve.add_open st.env path
        | _ -> ());
        default_iterator.module_expr it od.popen_expr;
        it.expr it body;
        st.env <- saved
    | Pexp_letmodule (name, { pmod_desc = Pmod_ident { txt = lid; _ }; _ }, body)
      ->
        let saved = st.env in
        (match name.txt with
        | Some n -> st.env <- Resolve.add_alias st.env n (Resolve.flatten lid)
        | None -> ());
        it.expr it body;
        st.env <- saved
    | _ -> default_iterator.expr it e
  in
  (* Structures delimit open/alias scopes; items inside one extend the
     environment sequentially for the items after them. *)
  let structure it str =
    let saved = st.env in
    List.iter
      (fun item ->
        it.structure_item it item;
        match item.pstr_desc with
        | Pstr_open od -> (
            match od.popen_expr.pmod_desc with
            | Pmod_ident { txt = lid; loc } ->
                let path = Resolve.flatten lid in
                check_open st loc path;
                st.env <- Resolve.add_open st.env path
            | _ -> ())
        | Pstr_module
            { pmb_name; pmb_expr = { pmod_desc = Pmod_ident { txt = lid; _ }; _ }; _ }
          -> (
            match pmb_name.txt with
            | Some n -> st.env <- Resolve.add_alias st.env n (Resolve.flatten lid)
            | None -> ())
        | _ -> ())
      str;
    st.env <- saved
  in
  { default_iterator with expr; structure }

(* Call/identifier rules over one implementation file. Interfaces
   contain no expressions, so the pass has nothing to say about them —
   which is precisely why doc-comment mentions of banned names in
   [.mli] files (the regex scanner's false-positive class) are
   structurally impossible here. *)
let run ~file ~scope ast =
  match ast with
  | Ast_io.Intf _ -> []
  | Ast_io.Impl str ->
      let st = { env = Resolve.empty; scope; file; acc = [] } in
      let it = iterator st in
      it.Ast_iterator.structure it str;
      List.rev st.acc
