type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

exception Syntax_error of { file : string; line : int; message : string }

let read_all file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_string ~filename src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf filename;
  try
    if Filename.check_suffix filename ".mli" then Intf (Parse.interface lexbuf)
    else Impl (Parse.implementation lexbuf)
  with
  | Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      raise
        (Syntax_error
           {
             file = filename;
             line = loc.Location.loc_start.Lexing.pos_lnum;
             message = "syntax error";
           })
  | Lexer.Error (_, loc) ->
      raise
        (Syntax_error
           {
             file = filename;
             line = loc.Location.loc_start.Lexing.pos_lnum;
             message = "lexical error";
           })

let parse_file file = parse_string ~filename:file (read_all file)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum
