(** Call- and identifier-level rules, resolved through opens and
    module aliases.

    Rules and their scopes:
    - [wall-clock], [env-read], [unix-dep], [stdlib-random],
      [domain-use], [hashtbl-order], [partial-call], [open-nondet]:
      only when [scope.det] (the deterministic core, [lib/]);
    - [untimed-recv] ([Mailbox.recv]/[Network.recv] without a
      timeout): only when [scope.recv] (the protocol layer,
      [lib/tm2c]);
    - [obj-magic] and [naked-failwith]: everywhere the analyzer
      walks, including [bench/] and [bin/]. *)

type scope = { det : bool; recv : bool }

val run : file:string -> scope:scope -> Ast_io.ast -> Finding.t list
