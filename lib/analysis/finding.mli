(** A single lint finding: one rule violation anchored to a source
    location. Waiver application mutates [waived]/[justification] in
    place so a report can show suppressed findings alongside active
    ones (the JSON export carries both). *)

type t = {
  file : string;
  line : int;
  rule : string;
  message : string;
  symbol : string option;
      (** binding or value name the finding is about, when the rule is
          symbol-addressable (used by symbol-scoped waivers) *)
  mutable waived : bool;
  mutable justification : string option;
}

val v : ?symbol:string -> file:string -> line:int -> rule:string -> string -> t

(** Total order: file, then line, then rule, then message — the report
    order, independent of discovery order. *)
val order : t -> t -> int

(** [file:line: rule: message] — the form the alcotest suite asserts
    against and CI greps. *)
val to_string : t -> string

(** Findings not suppressed by a waiver. *)
val active : t list -> t list

val json_escape : string -> string

val to_json : t -> string
