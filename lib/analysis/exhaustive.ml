open Parsetree

(* Constructor names of [Event.t], from the parsed interface: the
   first type declaration named [t] with a variant kind. *)
let event_constructors ast =
  match ast with
  | Ast_io.Impl _ -> Error "event interface expected, got an implementation"
  | Ast_io.Intf sg ->
      let found = ref None in
      List.iter
        (fun item ->
          match item.psig_desc with
          | Psig_type (_, tds) ->
              List.iter
                (fun td ->
                  if td.ptype_name.txt = "t" && !found = None then
                    match td.ptype_kind with
                    | Ptype_variant cds ->
                        found :=
                          Some (List.map (fun cd -> cd.pcd_name.txt) cds)
                    | _ -> ())
                tds
          | _ -> ())
        sg;
      (match !found with
      | Some ctors when List.length ctors >= 10 -> Ok ctors
      | Some ctors ->
          Error
            (Printf.sprintf
               "only %d constructors parsed for Event.t — the exhaustiveness \
                rule lost its anchor"
               (List.length ctors))
      | None -> Error "no variant type t found in event interface")

(* Head constructors of one case pattern: unwrap or/alias/constraint/
   open wrappers but do NOT descend into constructor payloads — a
   nested [Some (_, Event.Service _)] in an option match must not make
   that match an Event dispatch. *)
let rec heads p =
  match p.ppat_desc with
  | Ppat_construct ({ txt = lid; _ }, _) -> [ Resolve.last lid ]
  | Ppat_or (a, b) -> heads a @ heads b
  | Ppat_alias (inner, _) | Ppat_constraint (inner, _) -> heads inner
  | Ppat_open (_, inner) -> heads inner
  | _ -> []

let rec is_catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (inner, _) | Ppat_constraint (inner, _) -> is_catch_all inner
  | Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

module S = Set.Make (String)

(* An exporter file must dispatch on the full event vocabulary: every
   match that mentions any Event constructor at case-head position
   must mention them all, and must not hide behind a catch-all. *)
let check_file ~file ~ctors ast =
  match ast with
  | Ast_io.Intf _ -> []
  | Ast_io.Impl str ->
      let ctor_set = S.of_list ctors in
      let findings = ref [] in
      let check_cases loc cases =
        let mentioned = ref S.empty in
        let wild = ref false in
        List.iter
          (fun case ->
            List.iter
              (fun h ->
                if S.mem h ctor_set then mentioned := S.add h !mentioned)
              (heads case.pc_lhs);
            if is_catch_all case.pc_lhs then wild := true)
          cases;
        if not (S.is_empty !mentioned) then begin
          let line = Ast_io.line_of loc in
          if !wild then
            findings :=
              Finding.v ~file ~line ~rule:"exporter-wildcard"
                "event dispatch hides behind a catch-all case — a new Event \
                 constructor would silently vanish from this output format"
              :: !findings;
          let missing = S.diff ctor_set !mentioned in
          if not (S.is_empty missing) then
            S.iter
              (fun c ->
                findings :=
                  Finding.v ~file ~line ~rule:"exporter-exhaustive" ~symbol:c
                    (Printf.sprintf
                       "event dispatch does not handle Event.%s — every \
                        constructor must reach every output format"
                       c)
                  :: !findings)
              missing
        end
      in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_match (_, cases) -> check_cases e.pexp_loc cases
              | Pexp_function cases -> check_cases e.pexp_loc cases
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      it.Ast_iterator.structure it str;
      List.rev !findings
