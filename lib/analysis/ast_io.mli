(** Parsing project sources into compiler-libs parse trees.

    The lexer discards comments and the parser sees string literals as
    opaque constants, so every rule built on these trees is immune to
    the comment/string false positives of the regex scanner this
    analyzer replaced. *)

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

exception Syntax_error of { file : string; line : int; message : string }

(** Parse a [.ml] (implementation) or [.mli] (interface) file, chosen
    by suffix. Raises {!Syntax_error} on unparseable input — the
    driver turns that into a finding rather than a crash. *)
val parse_file : string -> ast

(** Same, from an in-memory buffer ([filename] sets locations and the
    impl/intf choice). *)
val parse_string : filename:string -> string -> ast

val line_of : Location.t -> int
