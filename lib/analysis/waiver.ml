type t = {
  w_file : string;
  w_rule : string;
  w_symbol : string option;
  w_note : string;
}

let v ?symbol ~file ~rule note =
  { w_file = file; w_rule = rule; w_symbol = symbol; w_note = note }

let suffix_match ~suffix s =
  let ls = String.length suffix and n = String.length s in
  ls <= n && String.sub s (n - ls) ls = suffix

let matches w (f : Finding.t) =
  f.Finding.rule = w.w_rule
  && suffix_match ~suffix:w.w_file f.Finding.file
  && (match (w.w_symbol, f.Finding.symbol) with
     | Some s, Some s' -> s = s'
     | Some _, None -> false
     | None, _ -> true)

let apply ws findings =
  List.iter
    (fun f ->
      match List.find_opt (fun w -> matches w f) ws with
      | Some w ->
          f.Finding.waived <- true;
          f.Finding.justification <- Some w.w_note
      | None -> ())
    findings

(* A waiver that suppresses nothing is rot: the code it excused has
   been fixed or moved, and keeping it around would silently excuse a
   future regression. Stale waivers are findings themselves. *)
let stale ws findings =
  List.filter_map
    (fun w ->
      if List.exists (fun f -> matches w f) findings then None
      else
        Some
          (Finding.v ~file:w.w_file ~line:0 ~rule:"stale-waiver"
             ?symbol:w.w_symbol
             (Printf.sprintf
                "waiver for rule %s%s no longer matches any finding — delete \
                 it (justification was: %s)"
                w.w_rule
                (match w.w_symbol with
                | Some s -> Printf.sprintf " on `%s`" s
                | None -> "")
                w.w_note)))
    ws
