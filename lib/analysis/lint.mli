(** Driver: walk the configured roots, run every rule family, apply
    waivers, detect stale waivers, and assemble the report plus the
    domain-safety inventory. *)

type config = {
  roots : string list;  (** directories to walk for [.ml]/[.mli] *)
  det_prefixes : string list;
      (** paths under determinism discipline (default [lib/]) *)
  recv_prefixes : string list;
      (** paths under the untimed-recv rule (default [lib/tm2c/]) *)
  mli_required : string list;  (** dirs where every [.ml] needs a [.mli] *)
  exporters : string list;  (** event exporter files *)
  event_mli : string option;  (** the [Event.t] interface anchor *)
  waivers : Waiver.t list;
}

type report = {
  findings : Finding.t list;  (** sorted; waived and stale included *)
  inventory : Mutstate.entry list;
}

(** The committed project waiver table (all justifications reviewed);
    exposed so the CLI and the test suite share one source of truth. *)
val default_waivers : Waiver.t list

(** Roots [lib bench bin], determinism over [lib/], recv rule over
    [lib/tm2c/], the three event exporters, {!default_waivers}. *)
val default_config : config

val run : config -> report

(** Non-waived findings — the exit-status criterion. *)
val active : report -> Finding.t list

(** Full machine-readable report (findings + summary + inventory). *)
val findings_json : report -> string

(** Inventory-only export (the CI artifact). *)
val inventory_json : report -> string

val write_file : string -> string -> unit
