open Parsetree

type entry = {
  e_file : string;
  e_line : int;
  e_name : string;
  e_kind : string;
  mutable e_status : string; (* "violation" | "allowlisted" | "const-table" *)
  mutable e_note : string option;
}

(* Creator heads whose application at module-initialization time
   yields shared mutable storage. *)
let creators =
  [
    ([ "ref" ], "ref");
    ([ "Array"; "make" ], "array");
    ([ "Array"; "create_float" ], "array");
    ([ "Array"; "init" ], "array");
    ([ "Array"; "of_list" ], "array");
    ([ "Hashtbl"; "create" ], "hashtbl");
    ([ "Queue"; "create" ], "queue");
    ([ "Stack"; "create" ], "stack");
    ([ "Buffer"; "create" ], "buffer");
    ([ "Bytes"; "create" ], "bytes");
    ([ "Bytes"; "make" ], "bytes");
    ([ "Bytes"; "of_string" ], "bytes");
    ([ "Atomic"; "make" ], "atomic");
    ([ "Domain"; "DLS"; "new_key" ], "dls-key");
  ]

let creator_kind path =
  List.assoc_opt (Resolve.strip_stdlib path) creators

(* Record types declared in the file: (field-name set, has a mutable
   field). A toplevel record literal is matched against whole
   declarations — not a pooled mutable-field-name set — so two types
   sharing a field name (an immutable [plan.crashes] next to a mutable
   [counters.crashes]) cannot cross-contaminate. *)
let record_decls str =
  let decls = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record lds ->
              let names = List.map (fun ld -> ld.pld_name.txt) lds in
              let mut =
                List.exists (fun ld -> ld.pld_mutable = Asttypes.Mutable) lds
              in
              decls := (names, mut) :: !decls
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.Ast_iterator.structure it str;
  !decls

let rec constant_expr e =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_construct (_, Some arg) -> constant_expr arg
  | Pexp_tuple es -> List.for_all constant_expr es
  | _ -> false

(* The strongest mutable-state kind reachable in [e] without crossing
   into a function body (state created inside a [fun] is per-call, not
   global — but a closure over a table created *outside* the [fun] is
   global state and is found here). *)
let find_creator ~decls e =
  let found = ref None in
  let note k = match !found with None -> found := Some k | Some _ -> () in
  let rec walk e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> ()
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, args) ->
        (match creator_kind (Resolve.flatten lid) with
        | Some k -> note k
        | None -> ());
        List.iter (fun (_, a) -> walk a) args
    | Pexp_array [] -> ()
    | Pexp_array es ->
        if List.for_all constant_expr es then note "const-table"
        else note "array-literal";
        List.iter walk es
    | Pexp_record (fields, base) ->
        let names =
          List.map (fun ({ Location.txt = lid; _ }, _) -> Resolve.last lid) fields
        in
        (* Declarations this literal could instantiate: every written
           field must exist in the declaration (a [{ x with ... }]
           literal lists only the overridden fields, so subset, not
           equality). With no candidate declaration in this file (the
           type lives elsewhere), fall back to any-mutable-field-name
           overlap. *)
        let candidates =
          List.filter
            (fun (decl_fields, _) ->
              List.for_all (fun n -> List.mem n decl_fields) names)
            decls
        in
        (match candidates with
        | [] ->
            if
              List.exists
                (fun n ->
                  List.exists (fun (fs, mut) -> mut && List.mem n fs) decls)
                names
            then note "mutable-record"
        | cs -> if List.for_all snd cs then note "mutable-record");
        List.iter (fun (_, v) -> walk v) fields;
        Option.iter walk base
    | _ ->
        (* Generic one-level descent: the default iterator calls our
           collector on each direct sub-expression, which recurses via
           [walk] (so function bodies stay excluded). *)
        let sub = ref [] in
        let collect =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ child -> sub := child :: !sub);
          }
        in
        Ast_iterator.default_iterator.expr collect e;
        List.iter walk (List.rev !sub)
  in
  walk e;
  !found

let binding_name p =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (inner, _) -> go inner
    | Ppat_alias (_, { txt; _ }) -> Some txt
    | _ -> None
  in
  go p

(* Module-toplevel mutable bindings of one implementation file,
   including bindings inside nested (non-functor) modules — those are
   still program-lifetime shared state. *)
let run ~file ast =
  match ast with
  | Ast_io.Intf _ -> []
  | Ast_io.Impl str ->
      let decls = record_decls str in
      let entries = ref [] in
      let rec scan_structure items = List.iter scan_item items
      and scan_item item =
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match find_creator ~decls vb.pvb_expr with
                | Some kind ->
                    let name =
                      match binding_name vb.pvb_pat with
                      | Some n -> n
                      | None -> "_"
                    in
                    entries :=
                      {
                        e_file = file;
                        e_line = Ast_io.line_of vb.pvb_loc;
                        e_name = name;
                        e_kind = kind;
                        e_status =
                          (if kind = "const-table" then "const-table"
                           else "violation");
                        e_note = None;
                      }
                      :: !entries
                | None -> ())
              vbs
        | Pstr_module { pmb_expr; _ } -> scan_module_expr pmb_expr
        | Pstr_recmodule mbs ->
            List.iter (fun mb -> scan_module_expr mb.pmb_expr) mbs
        | _ -> ()
      and scan_module_expr me =
        match me.pmod_desc with
        | Pmod_structure str -> scan_structure str
        | Pmod_constraint (me, _) -> scan_module_expr me
        | _ -> ()
      in
      scan_structure str;
      List.rev !entries

let to_findings entries =
  List.filter_map
    (fun e ->
      if e.e_status = "const-table" then None
      else
        Some
          (Finding.v ~symbol:e.e_name ~file:e.e_file ~line:e.e_line
             ~rule:"global-mutable"
             (Printf.sprintf
                "module-toplevel mutable binding `%s` (%s) — shared across \
                 domains; refactor into per-run state or allowlist with a \
                 justification"
                e.e_name e.e_kind)))
    entries

let entry_to_json e =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"name\":\"%s\",\"kind\":\"%s\",\"status\":\"%s\"%s}"
    (Finding.json_escape e.e_file) e.e_line
    (Finding.json_escape e.e_name)
    (Finding.json_escape e.e_kind)
    (Finding.json_escape e.e_status)
    (match e.e_note with
    | Some n -> Printf.sprintf ",\"justification\":\"%s\"" (Finding.json_escape n)
    | None -> "")
