(** Scope-aware identifier resolution.

    Tracks [open]ed modules and [module X = Path] aliases so a rule
    asking "does this identifier denote [Unix.gettimeofday]?" sees
    through [let open Unix in gettimeofday ()] and
    [module U = Unix ... U.gettimeofday ()] — the false-negative
    classes of the regex scanner. Resolution is purely syntactic
    (no typing): shadowing a banned module with a local one
    ([module Random = Prng]) correctly un-bans the name, while a
    locally defined value that happens to collide with an [open]ed
    banned member may over-report — waivers cover that case. *)

type env

val empty : env

(** Longident to path segments; functor applications flatten to []. *)
val flatten : Longident.t -> string list

(** All paths the identifier might denote under [env]: one reading for
    a qualified ident (alias-substituted, [Stdlib.]-normalized), and
    the bare reading plus one per open in scope for a bare ident. *)
val candidates : env -> Longident.t -> string list list

val resolve_path : env -> string list -> string list

(** Drop a leading [Stdlib] segment. *)
val strip_stdlib : string list -> string list

val add_open : env -> string list -> env

val add_alias : env -> string -> string list -> env

(** Final segment of a longident (the constructor/value name). *)
val last : Longident.t -> string
