type t = {
  file : string;
  line : int;
  rule : string;
  message : string;
  symbol : string option;
  mutable waived : bool;
  mutable justification : string option;
}

let v ?symbol ~file ~line ~rule message =
  { file; line; rule; message; symbol; waived = false; justification = None }

let order a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.rule b.rule in
      if c <> 0 then c else compare a.message b.message

let to_string f = Printf.sprintf "%s:%d: %s: %s" f.file f.line f.rule f.message

let active fs = List.filter (fun f -> not f.waived) fs

(* Minimal JSON string escaping (the repo's exports are hand-written
   JSON throughout; findings carry no exotic characters but file paths
   and messages must still round-trip). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"message\":\"%s\",\"waived\":%b%s}"
    (json_escape f.file) f.line (json_escape f.rule) (json_escape f.message)
    f.waived
    (match f.justification with
    | Some j -> Printf.sprintf ",\"justification\":\"%s\"" (json_escape j)
    | None -> "")
