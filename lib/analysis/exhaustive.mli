(** Semantic exporter-exhaustiveness: every [Event.t] constructor must
    be dispatched, by name, in every event exporter — and no exporter
    may hide behind a catch-all case.

    Replaces the whole-word-mention heuristic of the regex scanner: a
    constructor "mentioned" in a comment no longer counts, an
    or-pattern counts once per alternative, and a wildcard arm is now
    itself a finding ([exporter-wildcard]) because it is how a new
    event silently vanishes from an output format.

    A match participates when any of its case patterns has an Event
    constructor in head position (payload-nested constructors do not
    drag unrelated option/pair matches into the rule). *)

(** Constructor names of [Event.t] parsed from the event interface;
    [Error] if the anchor is missing or suspiciously small. *)
val event_constructors : Ast_io.ast -> (string list, string) result

(** [exporter-exhaustive] (one per missing constructor, symbol = the
    constructor) and [exporter-wildcard] findings for one exporter. *)
val check_file :
  file:string -> ctors:string list -> Ast_io.ast -> Finding.t list
