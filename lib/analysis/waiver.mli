(** File-scoped, justification-carrying waivers.

    A waiver names a rule, a file (suffix match, so the same table
    works from the repo root and from dune's sandbox), optionally a
    symbol (binding name, resolved path, or constructor), and a
    mandatory human justification — the justification travels into
    reports and the JSON export, so suppression is never silent. *)

type t = {
  w_file : string;
  w_rule : string;
  w_symbol : string option;
  w_note : string;
}

val v : ?symbol:string -> file:string -> rule:string -> string -> t

(** Mark matching findings waived (in place), attaching the
    justification. First matching waiver wins. *)
val apply : t list -> Finding.t list -> unit

(** One [stale-waiver] finding per waiver that matched nothing — the
    waiver list cannot rot. Call after {!apply}, passing every raw
    finding (waived or not). *)
val stale : t list -> Finding.t list -> Finding.t list

val matches : t -> Finding.t -> bool
