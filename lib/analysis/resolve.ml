type env = {
  aliases : (string * string list) list;
  opens : string list list;
}

let empty = { aliases = []; opens = [] }

(* [Lapply] (functor application paths) cannot name any of the banned
   primitives; collapse to the empty path, which matches nothing. *)
let flatten lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (p, s) -> go (s :: acc) p
    | Longident.Lapply _ -> raise Exit
  in
  try go [] lid with Exit -> []

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

(* Substitute the head module through the alias table (aliases are
   stored fully resolved, so one step suffices), then normalize away
   an explicit [Stdlib.] prefix. *)
let resolve_path env path =
  let path = strip_stdlib path in
  match path with
  | [] -> []
  | m :: rest -> (
      match List.assoc_opt m env.aliases with
      | Some target -> strip_stdlib (target @ rest)
      | None -> path)

(* Every path the identifier might denote. A qualified ident has one
   reading; a bare ident might be local (the bare path, matching
   nothing banned) or come from any [open] in scope. *)
let candidates env lid =
  match flatten lid with
  | [] -> []
  | [ x ] -> [ x ] :: List.map (fun o -> o @ [ x ]) env.opens
  | path -> [ resolve_path env path ]

let add_open env path = { env with opens = resolve_path env path :: env.opens }

let add_alias env name path =
  { env with aliases = (name, resolve_path env path) :: env.aliases }

let last lid = match flatten lid with [] -> "" | p -> List.nth p (List.length p - 1)
