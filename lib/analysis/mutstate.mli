(** Domain-safety inventory: module-toplevel mutable state.

    Detects bindings whose initializer allocates shared mutable
    storage ([ref], arrays, [Hashtbl]/[Queue]/[Stack]/[Buffer]/
    [Bytes]/[Atomic] at init, [Domain.DLS] keys, records with fields
    declared [mutable] in the same file) — including state captured by
    a toplevel closure ([let f = let t = Hashtbl.create 4 in fun ...]).
    Creators inside a function body are per-call state and are not
    reported. This inventory is the precondition for running (seed,
    config) sweep cells on parallel OCaml 5 domains: every entry is
    state those domains would share.

    Arrays whose elements are all literal constants are classed
    ["const-table"] (lookup tables, read-only by convention): they
    appear in the inventory but raise no finding. Everything else is a
    ["violation"] until a [global-mutable] waiver allowlists it, which
    flips the status to ["allowlisted"]. *)

type entry = {
  e_file : string;
  e_line : int;
  e_name : string;
  e_kind : string;
  mutable e_status : string;
  mutable e_note : string option;
}

val run : file:string -> Ast_io.ast -> entry list

(** One [global-mutable] finding per non-const entry (symbol = binding
    name, so waivers can target individual bindings). *)
val to_findings : entry list -> Finding.t list

val entry_to_json : entry -> string
