open Tm2c_core
open Tm2c_memory
open Tm2c_engine

let transfer_cycles = 20
let per_account_cycles = 4

type t = {
  runtime : Runtime.t;
  base : Types.addr;
  n : int;
  lock_reg : int;  (* global test-and-set register for the lock version *)
  mutable spinners : int;  (* cores currently spinning on the lock *)
}

let create runtime ~accounts ~initial =
  let base = Alloc.alloc (Runtime.alloc runtime) ~words:accounts in
  for i = 0 to accounts - 1 do
    Runtime.host_write runtime (base + i) initial
  done;
  { runtime; base; n = accounts; lock_reg = Runtime.spare_reg runtime; spinners = 0 }

let accounts t = t.n

let addr t i = t.base + i

let transfer_op (a : Access.t) t ~src ~dst ~amount =
  a.compute transfer_cycles;
  if src <> dst then begin
    let vs = a.read (addr t src) in
    let vd = a.read (addr t dst) in
    a.write (addr t src) (vs - amount);
    a.write (addr t dst) (vd + amount)
  end

let balance_op (a : Access.t) t =
  let sum = ref 0 in
  for i = 0 to t.n - 1 do
    a.compute per_account_cycles;
    sum := !sum + a.read (addr t i)
  done;
  !sum

let tx_transfer ctx t ~src ~dst ~amount =
  Tx.atomic ctx (fun () -> transfer_op (Access.of_tx ctx) t ~src ~dst ~amount)

let tx_balance ctx t = Tx.atomic ctx (fun () -> balance_op (Access.of_tx ctx) t)

(* Global spinlock on a TAS register: spin with randomized linear
   back-off. Spinning cores keep hammering the register's tile, so
   every register access — including the holder's release — queues
   behind their traffic: the contention collapse that makes the lock
   version degrade beyond ~28 cores in Fig. 5(d). *)
let register_congestion_factor = 0.4

let congestion_delay env t =
  let tas_ns = (Tm2c_noc.Network.platform env.System.net).Tm2c_noc.Platform.tas_ns in
  Sim.delay (tas_ns *. register_congestion_factor *. float_of_int t.spinners)

let lock_acquire env ~core ~prng t =
  let regs = env.System.regs in
  t.spinners <- t.spinners + 1;
  let rec spin attempts =
    congestion_delay env t;
    if not (Atomic_reg.tas regs ~core ~reg:t.lock_reg) then begin
      let bound = 150.0 *. float_of_int (min attempts 32) in
      Sim.delay (100.0 +. (Prng.float prng *. bound));
      spin (attempts + 1)
    end
  in
  spin 1;
  t.spinners <- t.spinners - 1

let lock_release env ~core t =
  congestion_delay env t;
  Atomic_reg.write env.System.regs ~core ~reg:t.lock_reg 0

let lock_transfer env ~core ~prng t ~src ~dst ~amount =
  lock_acquire env ~core ~prng t;
  transfer_op (Access.direct env ~core) t ~src ~dst ~amount;
  lock_release env ~core t

let lock_balance env ~core ~prng t =
  lock_acquire env ~core ~prng t;
  let v = balance_op (Access.direct env ~core) t in
  lock_release env ~core t;
  v

let seq_transfer env ~core t ~src ~dst ~amount =
  transfer_op (Access.direct env ~core) t ~src ~dst ~amount

let seq_balance env ~core t = balance_op (Access.direct env ~core) t

let total t =
  let shmem = Runtime.shmem t.runtime in
  let sum = ref 0 in
  for i = 0 to t.n - 1 do
    sum := !sum + Shmem.peek shmem (addr t i)
  done;
  !sum
