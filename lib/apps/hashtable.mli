(** Hash table benchmark (synchrobench-style, Section 5.2).

    An integer set: an array of bucket heads, each bucket a sorted
    singly-linked list of [key; next] nodes laid out in simulated
    shared memory. Operations: [contains], [add], [remove], plus the
    [move] operation added for the eager-versus-lazy comparison of
    Fig. 4(c). The load factor of the paper is [elements / buckets].

    Transactional operations take a {!Tm2c_core.Tx.ctx} and must run
    their own [Tx.atomic]; [seq_*] operations are the bare baselines. *)

type t

val create : Tm2c_core.Runtime.t -> n_buckets:int -> t

val n_buckets : t -> int

(** Host-side (untimed) population: inserts [n] distinct keys drawn
    from [\[0, key_range)]. Used to set the initial load factor. *)
val populate : t -> Tm2c_engine.Prng.t -> n:int -> key_range:int -> unit

(** Transactional operations (each runs one [Tx.atomic]). *)
val tx_contains :
  ?elastic:Tm2c_core.Tx.elastic -> Tm2c_core.Tx.ctx -> t -> int -> bool

val tx_add : ?elastic:Tm2c_core.Tx.elastic -> Tm2c_core.Tx.ctx -> t -> int -> bool

val tx_remove :
  ?elastic:Tm2c_core.Tx.elastic -> Tm2c_core.Tx.ctx -> t -> int -> bool

(** [tx_move ctx t k1 k2] removes [k1] and inserts [k2] in a single
    transaction (both must succeed; returns false and changes nothing
    if [k1] is absent or [k2] present). *)
val tx_move : Tm2c_core.Tx.ctx -> t -> int -> int -> bool

(** [tx_scan ctx t ~k ~len] — one read-only transaction testing the
    [len] consecutive keys starting at [k]; returns the number
    present. With [~elastic:Elastic_read] it is a long elastic scan
    (the multi-tenant mix's second tenant). *)
val tx_scan :
  ?elastic:Tm2c_core.Tx.elastic -> Tm2c_core.Tx.ctx -> t -> k:int -> len:int -> int

(** Sequential baselines: direct, non-transactional access. *)
val seq_contains : Tm2c_core.System.env -> core:int -> t -> int -> bool

val seq_add : Tm2c_core.System.env -> core:int -> t -> int -> bool

val seq_remove : Tm2c_core.System.env -> core:int -> t -> int -> bool

(** Host-side inspection for tests. *)
val mem : t -> int -> bool

val size : t -> int

val to_list : t -> int list

(** Raises [Invalid_argument] if a bucket is unsorted or contains a
    key that hashes elsewhere. *)
val check_invariants : t -> unit
