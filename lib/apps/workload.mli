(** Benchmark drivers: run operation mixes for a fixed window of
    virtual time (throughput experiments) or to completion (the
    MapReduce duration experiments), and collect the numbers the
    paper's figures report. *)

type result = {
  ops : int;  (** application operations completed in the window *)
  duration_ms : float;  (** virtual milliseconds simulated *)
  throughput_ops_ms : float;
  commits : int;
  aborts : int;
  commit_rate : float;  (** percent *)
  worst_attempts : int;  (** empirical starvation witness *)
  messages : int;  (** total messages on the interconnect *)
  events : int;  (** simulator events processed *)
  horizon_hit : bool;
      (** the hard safety horizon terminated the run with work still
          incomplete: in {!run_to_completion}, some worker never
          finished; in {!drive}, some core completed zero operations
          over the whole window (blocked forever or livelocked); in
          the open-loop driver, admitted requests were still
          unresolved at the drain horizon. A flagged result's
          duration/throughput must not be read as a healthy
          measurement. *)
}

(** Export hook: when set, every collected result is also passed to
    this function (with the runtime, whose metrics — network, DTM
    servers, abort causality — are still live). The harness JSON
    exporter installs itself here. *)
val observer : (Tm2c_core.Runtime.t -> result -> unit) option ref

(** Setup hook: when set, every driver calls it with the runtime
    before spawning any process — the harness uses it to enable
    profiling and time-series sampling on every run it drives. *)
val preflight : (Tm2c_core.Runtime.t -> unit) option ref

(** Assemble a {!result} from the runtime's totals (closing out the
    flight recorder first) and fire the {!observer}. Custom drivers —
    the open-loop population model — end with this so every export and
    checker hook fires exactly as for the built-in drivers. *)
val collect :
  Tm2c_core.Runtime.t ->
  ?horizon_hit:bool ->
  events:int ->
  duration_ns:float ->
  unit ->
  result

(** [drive t ~duration_ns make_op] — starts the DTM services, gives
    every application core an operation generator, and simulates
    [duration_ns] of virtual time (hard horizon: livelocked
    configurations still terminate and report their near-zero
    throughput). [make_op core ctx prng] returns the thunk executed in
    a loop by that core. *)
val drive :
  Tm2c_core.Runtime.t ->
  duration_ns:float ->
  (Tm2c_core.Types.core_id -> Tm2c_core.Tx.ctx -> Tm2c_engine.Prng.t -> (unit -> unit)) ->
  result

(** Sequential baseline: one core loops over [op] for the window, no
    DTM service at all. *)
val drive_seq :
  Tm2c_core.Runtime.t ->
  duration_ns:float ->
  (core:Tm2c_core.Types.core_id -> Tm2c_engine.Prng.t -> (unit -> unit)) ->
  result

(** [run_to_completion t work] — starts services, runs [work] on every
    application core, waits for all of them to finish (with a generous
    safety horizon) and returns the result with [duration_ms] the
    completion time. *)
val run_to_completion :
  Tm2c_core.Runtime.t ->
  ?horizon_ns:float ->
  (Tm2c_core.Types.core_id -> Tm2c_core.Tx.ctx -> Tm2c_engine.Prng.t -> unit) ->
  result
