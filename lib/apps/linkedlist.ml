open Tm2c_core
open Tm2c_memory

let step_cycles = 8
let alloc_cycles = 40

(* Layout: [base] holds the head pointer; nodes are [key; next]. *)
type t = { runtime : Runtime.t; base : Types.addr }

type mode = [ `Normal | `Elastic_early | `Elastic_read ]

let elastic_of_mode = function
  | `Normal -> Tx.Enone
  | `Elastic_early -> Tx.Elastic_early
  | `Elastic_read -> Tx.Elastic_read

let create runtime =
  let base = Alloc.alloc (Runtime.alloc runtime) ~words:1 in
  Runtime.host_write runtime base 0;
  { runtime; base }

let locate (a : Access.t) t k =
  let rec walk slot =
    let ptr = a.read slot in
    if ptr = 0 then (slot, 0, 0)
    else begin
      let key = a.read ptr in
      a.compute step_cycles;
      if key >= k then (slot, ptr, key) else walk (ptr + 1)
    end
  in
  walk t.base

let contains_op a t k =
  let _, ptr, key = locate a t k in
  ptr <> 0 && key = k

let add_op (a : Access.t) t k ~node =
  let slot, ptr, key = locate a t k in
  if ptr <> 0 && key = k then false
  else begin
    Runtime.host_write t.runtime node k;
    Runtime.host_write t.runtime (node + 1) ptr;
    a.write slot node;
    true
  end

let remove_op (a : Access.t) t k =
  let slot, ptr, key = locate a t k in
  if ptr = 0 || key <> k then 0
  else begin
    let next = a.read (ptr + 1) in
    a.write slot next;
    (* Also write the removed node's next field (same value): a pure
       conflict marker, so a concurrent operation whose elastic window
       no longer covers [slot] still collides (WAW) with this unlink —
       without it, adjacent removes could both commit and lose one
       update (see the elastic-transaction tests). *)
    a.write (ptr + 1) next;
    ptr
  end

let new_node t = Alloc.alloc (Runtime.alloc t.runtime) ~words:2

let free_node t node = Alloc.free (Runtime.alloc t.runtime) node ~words:2

let tx_contains ~mode ctx t k =
  Tx.atomic ~elastic:(elastic_of_mode mode) ctx (fun () ->
      contains_op (Access.of_tx ctx) t k)

let tx_add ~mode ctx t k =
  Tx.compute ctx alloc_cycles;
  let node = new_node t in
  let added =
    Tx.atomic ~elastic:(elastic_of_mode mode) ctx (fun () ->
        add_op (Access.of_tx ctx) t k ~node)
  in
  if not added then free_node t node;
  added

let tx_remove ~mode ctx t k =
  let removed =
    Tx.atomic ~elastic:(elastic_of_mode mode) ctx (fun () ->
        remove_op (Access.of_tx ctx) t k)
  in
  if removed <> 0 then begin
    free_node t removed;
    true
  end
  else false

let seq_contains env ~core t k = contains_op (Access.direct env ~core) t k

let seq_add env ~core t k =
  let a = Access.direct env ~core in
  a.Access.compute alloc_cycles;
  let node = new_node t in
  let added = add_op a t k ~node in
  if not added then free_node t node;
  added

let seq_remove env ~core t k =
  let removed = remove_op (Access.direct env ~core) t k in
  if removed <> 0 then begin
    free_node t removed;
    true
  end
  else false

(* Host-side helpers. *)

let shmem t = Runtime.shmem t.runtime

let to_list t =
  let sh = shmem t in
  let rec walk ptr acc =
    if ptr = 0 then List.rev acc
    else walk (Shmem.peek sh (ptr + 1)) (Shmem.peek sh ptr :: acc)
  in
  walk (Shmem.peek sh t.base) []

let mem t k = List.mem k (to_list t)

let size t = List.length (to_list t)

let populate t prng ~n ~key_range =
  let sh = shmem t in
  let inserted = ref 0 in
  while !inserted < n do
    let k = Tm2c_engine.Prng.int prng key_range in
    let rec find_slot slot =
      let ptr = Shmem.peek sh slot in
      if ptr = 0 then (slot, 0, 0)
      else if Shmem.peek sh ptr >= k then (slot, ptr, Shmem.peek sh ptr)
      else find_slot (ptr + 1)
    in
    let slot, ptr, key = find_slot t.base in
    if not (ptr <> 0 && key = k) then begin
      let node = new_node t in
      Runtime.host_write t.runtime node k;
      Runtime.host_write t.runtime (node + 1) ptr;
      Runtime.host_write t.runtime slot node;
      incr inserted
    end
  done

let check_invariants t =
  let rec sorted = function
    | [] | [ _ ] -> true
    | x :: (y :: _ as rest) -> x < y && sorted rest
  in
  if not (sorted (to_list t)) then invalid_arg "Linkedlist: not strictly sorted"
