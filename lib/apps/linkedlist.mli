(** Sorted linked-list benchmark (synchrobench-style; Sections 6.2 and
    7.2). An integer set as one sorted singly-linked list — every
    operation walks the list from the head, which makes it the
    high-contention, elastic-transaction showcase: the read-only
    traversal prefix produces false WAR conflicts that elastic
    transactions ignore.

    [mode] selects the Section 6.1 implementation: [`Normal] classic
    transactions, [`Elastic_early] early read-lock release,
    [`Elastic_read] lock-free validated reads. *)

type t

type mode = [ `Normal | `Elastic_early | `Elastic_read ]

val create : Tm2c_core.Runtime.t -> t

(** Host-side population with [n] distinct keys from [\[0, key_range)]. *)
val populate : t -> Tm2c_engine.Prng.t -> n:int -> key_range:int -> unit

val tx_contains : mode:mode -> Tm2c_core.Tx.ctx -> t -> int -> bool

val tx_add : mode:mode -> Tm2c_core.Tx.ctx -> t -> int -> bool

val tx_remove : mode:mode -> Tm2c_core.Tx.ctx -> t -> int -> bool

val seq_contains : Tm2c_core.System.env -> core:int -> t -> int -> bool

val seq_add : Tm2c_core.System.env -> core:int -> t -> int -> bool

val seq_remove : Tm2c_core.System.env -> core:int -> t -> int -> bool

val mem : t -> int -> bool

val size : t -> int

val to_list : t -> int list

(** Raises [Invalid_argument] if the list is not strictly sorted. *)
val check_invariants : t -> unit
