(** Bank application (Section 5.3): an array of accounts supporting
    [transfer] (two reads + two writes) and [balance] (a read of every
    account — the long, conflict-prone transaction that makes this the
    livelock/contention-management stress test).

    Three implementations:
    - transactional (TM2C),
    - lock-based: one global test-and-set register spinlock (the SCC
      offers one TAS register per core, precluding fine-grained locks
      — Fig. 5d's baseline),
    - sequential (direct access, single core).

    The total balance is conserved by transfers; [total] lets tests
    assert it. *)

type t

val create : Tm2c_core.Runtime.t -> accounts:int -> initial:int -> t

val accounts : t -> int

val tx_transfer : Tm2c_core.Tx.ctx -> t -> src:int -> dst:int -> amount:int -> unit

(** Sum of all accounts, read in one transaction. *)
val tx_balance : Tm2c_core.Tx.ctx -> t -> int

(** Lock-based variants: [prng] randomizes the spin back-off. *)
val lock_transfer :
  Tm2c_core.System.env ->
  core:int ->
  prng:Tm2c_engine.Prng.t ->
  t ->
  src:int ->
  dst:int ->
  amount:int ->
  unit

val lock_balance :
  Tm2c_core.System.env -> core:int -> prng:Tm2c_engine.Prng.t -> t -> int

val seq_transfer :
  Tm2c_core.System.env -> core:int -> t -> src:int -> dst:int -> amount:int -> unit

val seq_balance : Tm2c_core.System.env -> core:int -> t -> int

(** Host-side total, for conservation checks. *)
val total : t -> int
