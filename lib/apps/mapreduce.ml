open Tm2c_core
open Tm2c_memory
open Tm2c_engine

(* Per-byte processing cost on the P54C: the input lives in the
   uncacheable shared memory, so every byte access stalls (the
   paper's Fig. 6(a) durations imply roughly 10 ms per 8 KB chunk,
   i.e. ~1.1 us per byte at 533 MHz). The thrashing penalty applies
   once a chunk no longer fits the effectively available L1 (16 KB
   data cache shared with the OS: about 8 KB usable — Section 5.4's
   explanation of the 8 KB optimum). *)
let cycles_per_byte = 560
let cycles_per_byte_thrashing = 660
let l1_effective_bytes = 8 * 1024
let per_chunk_cycles = 30_000

(* Chunks claimed per allocation transaction: claiming two at a time
   halves the start-up stampede on the hot chunk counter. *)
let alloc_batch = 2

type t = {
  runtime : Runtime.t;
  counter : Types.addr;
  hist : Types.addr;  (* 26 words *)
  input : Bytes.t;
  chunk_bytes : int;
  n_chunks : int;
}

let create runtime ~seed ~input_bytes ~chunk_bytes =
  let base = Alloc.alloc (Runtime.alloc runtime) ~words:27 in
  let prng = Prng.create ~seed in
  let input =
    Bytes.init input_bytes (fun _ -> Char.chr (Char.code 'a' + Prng.int prng 26))
  in
  {
    runtime;
    counter = base;
    hist = base + 1;
    input;
    chunk_bytes;
    n_chunks = (input_bytes + chunk_bytes - 1) / chunk_bytes;
  }

let n_chunks t = t.n_chunks

let expected_histogram t =
  let h = Array.make 26 0 in
  Bytes.iter (fun c -> h.(Char.code c - Char.code 'a') <- h.(Char.code c - Char.code 'a') + 1) t.input;
  h

let histogram t =
  let shmem = Runtime.shmem t.runtime in
  Array.init 26 (fun i -> Shmem.peek shmem (t.hist + i))

(* Count the letters of one chunk into [local], charging the modeled
   compute time. *)
let process_chunk t ~compute ~local idx =
  let lo = idx * t.chunk_bytes in
  let hi = min (Bytes.length t.input) (lo + t.chunk_bytes) in
  let len = hi - lo in
  let per_byte =
    if t.chunk_bytes > l1_effective_bytes then cycles_per_byte_thrashing
    else cycles_per_byte
  in
  compute (per_chunk_cycles + (len * per_byte));
  for i = lo to hi - 1 do
    let c = Char.code (Bytes.get t.input i) - Char.code 'a' in
    local.(c) <- local.(c) + 1
  done

let worker ctx t =
  let local = Array.make 26 0 in
  let start_letter = Tx.core ctx mod 26 in
  let rec fetch () =
    (* Claim a batch of chunks [lo, hi) in one transaction. *)
    let lo, hi =
      Tx.atomic ctx (fun () ->
          let i = Tx.read ctx t.counter in
          if i >= t.n_chunks then (-1, -1)
          else begin
            let hi = min t.n_chunks (i + alloc_batch) in
            Tx.write ctx t.counter hi;
            (i, hi)
          end)
    in
    if lo >= 0 then begin
      for idx = lo to hi - 1 do
        process_chunk t ~compute:(Tx.compute ctx) ~local idx
      done;
      fetch ()
    end
  in
  fetch ();
  (* Merge: one small transaction per letter keeps retries cheap while
     every shared-total update stays atomic; starting at a
     core-dependent letter avoids a convoy on letter 0. *)
  for i = 0 to 25 do
    let c = (start_letter + i) mod 26 in
    if local.(c) > 0 then
      Tx.atomic ctx (fun () ->
          let v = Tx.read ctx (t.hist + c) in
          Tx.write ctx (t.hist + c) (v + local.(c)))
  done

(* The bare sequential version streams the input with an L1-sized
   buffer (no chunk-size parameter to get wrong), so it never pays the
   thrashing penalty. *)
let sequential env ~core t =
  let local = Array.make 26 0 in
  let a = Access.direct env ~core in
  let n = Bytes.length t.input in
  let n_steps = (n + l1_effective_bytes - 1) / l1_effective_bytes in
  for step = 0 to n_steps - 1 do
    let lo = step * l1_effective_bytes in
    let hi = min n (lo + l1_effective_bytes) in
    a.Access.compute (per_chunk_cycles + ((hi - lo) * cycles_per_byte));
    for i = lo to hi - 1 do
      let c = Char.code (Bytes.get t.input i) - Char.code 'a' in
      local.(c) <- local.(c) + 1
    done
  done;
  for c = 0 to 25 do
    let v = a.Access.read (t.hist + c) in
    a.Access.write (t.hist + c) (v + local.(c))
  done
