(** Uniform shared-memory access interface, so each benchmark data
    structure is written once and runs both transactionally (wrapped
    reads/writes through TM2C, Section 3.3) and "bare" (the sequential
    baselines of Figs. 4b and 6b, which access memory directly). *)

type t = {
  read : Tm2c_core.Types.addr -> int;
  write : Tm2c_core.Types.addr -> int -> unit;
  compute : int -> unit;  (** charge local computation cycles *)
}

(** Access through a transaction context; reads and writes must happen
    inside [Tx.atomic]. *)
val of_tx : Tm2c_core.Tx.ctx -> t

(** Direct (non-transactional) access from a core — the sequential
    baseline; still pays the platform's memory latencies. *)
val direct : Tm2c_core.System.env -> core:Tm2c_core.Types.core_id -> t
