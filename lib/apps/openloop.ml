open Tm2c_core
open Tm2c_engine

(* Open-loop client population: arrivals keep coming no matter how the
   system is doing. Each application core gets an independent Poisson
   (or bursty, flash-crowd) arrival process over a Zipf-skewed key
   space and a two-tenant mix — short read/write transactions and
   elastic read-only scans. Arrivals go through the runtime's
   admission queues ({!Tm2c_core.Admission}); shed or timed-out
   requests are retried by the client against a bounded retry budget,
   which is exactly the knob separating graceful degradation from a
   metastable retry storm. *)

type arrival =
  | Poisson of { rate_per_ms : float }
  | Bursty of {
      base_per_ms : float;
      burst_per_ms : float;
      burst_start_ns : float;
      burst_end_ns : float;
    }

type config = {
  arrival : arrival;
  window_ns : float;
  drain_ns : float;
  zipf_s : float;
  key_range : int;
  scan_pct : int;
  scan_len : int;
  client_deadline_ns : float;
  client_timeout_ns : float;
  retry_budget : int;
  policy : Admission.policy;
}

let default =
  {
    arrival = Poisson { rate_per_ms = 20.0 };
    window_ns = 2e6;
    drain_ns = 5e5;
    zipf_s = 0.9;
    key_range = 1024;
    scan_pct = 10;
    scan_len = 16;
    client_deadline_ns = 300_000.0;
    client_timeout_ns = 450_000.0;
    retry_budget = 3;
    policy = Admission.Reject { capacity = 64 };
  }

let validate cfg =
  if cfg.window_ns <= 0.0 then invalid_arg "Openloop: window_ns must be > 0";
  if cfg.drain_ns < 0.0 then invalid_arg "Openloop: drain_ns must be >= 0";
  if cfg.zipf_s < 0.0 then invalid_arg "Openloop: zipf_s must be >= 0";
  if cfg.key_range < 1 then invalid_arg "Openloop: key_range must be >= 1";
  if cfg.scan_pct < 0 || cfg.scan_pct > 100 then
    invalid_arg "Openloop: scan_pct must be in [0, 100]";
  if cfg.scan_len < 1 then invalid_arg "Openloop: scan_len must be >= 1"

(* --- Arrival process ------------------------------------------------- *)

let rate_at arrival ~now_ns =
  match arrival with
  | Poisson { rate_per_ms } -> rate_per_ms
  | Bursty { base_per_ms; burst_per_ms; burst_start_ns; burst_end_ns } ->
      if now_ns >= burst_start_ns && now_ns < burst_end_ns then burst_per_ms
      else base_per_ms

(* Exponential interarrival by inverse CDF; one [Prng.float] per draw,
   so [arrival_times] below consumes exactly the same stream as the
   live generator. *)
let interarrival_ns prng ~rate_per_ms =
  let u = Prng.float prng in
  if rate_per_ms <= 0.0 then Float.infinity
  else
    let rate_per_ns = rate_per_ms /. 1e6 in
    -.Float.log (1.0 -. u) /. rate_per_ns

(* The full arrival stream as pure data — the reference the generator
   determinism tests compare against. For [Bursty], each gap is drawn
   at the rate in force when it starts (a gap straddling a phase
   boundary is not re-scaled: an approximation, but a deterministic
   one, and identical in the live driver). *)
let arrival_times arrival prng ~until_ns =
  let rec go now acc =
    let dt = interarrival_ns prng ~rate_per_ms:(rate_at arrival ~now_ns:now) in
    let at = now +. dt in
    if at > until_ns then List.rev acc else go at (at :: acc)
  in
  go 0.0 []

(* --- Zipf key skew --------------------------------------------------- *)

(* CDF table over ranks 1..n with weight 1/k^s; [zipf_draw] inverts it
   by binary search, one [Prng.float] per draw. *)
let zipf_cdf ~s ~n =
  if n < 1 then invalid_arg "Openloop.zipf_cdf: need n >= 1";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 1 to n do
    total := !total +. (1.0 /. Float.pow (float_of_int k) s);
    cdf.(k - 1) <- !total
  done;
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. !total
  done;
  cdf.(n - 1) <- 1.0;
  cdf

let zipf_draw prng cdf =
  let u = Prng.float prng in
  (* Smallest index with u < cdf.(i). *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if u < cdf.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

(* --- The driver ------------------------------------------------------ *)

(* One logical request, as the client sees it: it stays open across
   shed-retries and timeout resubmissions until its first completion
   ([l_done]), its retry budget runs out ([l_failed]), or the run
   stops. Queue entries reference it by table index, so an execution
   can tell first completion from retry-manufactured duplicate work. *)
type lreq = {
  l_core : Types.core_id;
  l_tenant : int;
  l_key : int;
  l_arrival_ns : float;
  mutable l_done : bool;
  mutable l_failed : bool;
  mutable l_retries : int;
}

let drive rt cfg =
  validate cfg;
  (match !Workload.preflight with Some f -> f rt | None -> ());
  let adm =
    match Runtime.admission rt with
    | Some a -> a
    | None -> Runtime.enable_admission rt ~policy:cfg.policy ()
  in
  Runtime.start_services rt;
  let sim = Runtime.sim rt in
  let stats = Runtime.stats rt in
  let cores = Runtime.app_cores rt in
  (* Shared table, populated host-side to ~50% occupancy. *)
  let ht = Hashtable.create rt ~n_buckets:(max 64 (cfg.key_range / 4)) in
  Hashtable.populate ht
    (Runtime.labeled_prng rt ~label:"openloop-populate")
    ~n:(cfg.key_range / 2) ~key_range:cfg.key_range;
  let cdf = zipf_cdf ~s:cfg.zipf_s ~n:cfg.key_range in
  (* Request table (grow-only; indices are admission payloads). *)
  let reqs = ref [||] in
  let n_reqs = ref 0 in
  let add_req r =
    if !n_reqs = Array.length !reqs then begin
      let bigger = Array.make (max 256 (2 * Array.length !reqs)) r in
      Array.blit !reqs 0 bigger 0 !n_reqs;
      reqs := bigger
    end;
    !reqs.(!n_reqs) <- r;
    incr n_reqs;
    !n_reqs - 1
  in
  let stopping = ref false in
  (* Client-side submission loop: a shed verdict schedules a retry at
     the policy's retry-after hint; an admitted attempt arms a client
     timeout that resubmits if the request is still open — the retry
     amplification path, bounded only by [retry_budget]. *)
  let rec submit idx =
    let l = !reqs.(idx) in
    match
      Admission.offer adm ~core:l.l_core ~tenant:l.l_tenant ~payload:idx
        ~arrival_ns:l.l_arrival_ns ~retries:l.l_retries
    with
    | Admission.Admitted ->
        if cfg.client_timeout_ns > 0.0 then
          Sim.schedule sim
            ~at:(Sim.now sim +. cfg.client_timeout_ns)
            (fun () -> if still_open l then retry idx)
    | Admission.Shed { retry_after_ns; _ } ->
        Sim.schedule sim
          ~at:(Sim.now sim +. Float.max 1.0 retry_after_ns)
          (fun () -> if still_open l then retry idx)
  and still_open l = not (l.l_done || l.l_failed || !stopping)
  and retry idx =
    let l = !reqs.(idx) in
    (* A disciplined client (finite budget) also propagates its
       deadline: once the request can no longer complete in time,
       resubmitting it only burns admission tokens on doomed work,
       crowding out fresh arrivals. The naive client (negative budget)
       retries regardless — that is the retry-storm ablation. *)
    let doomed =
      cfg.retry_budget >= 0
      && (l.l_retries >= cfg.retry_budget
         || cfg.client_deadline_ns > 0.0
            && Sim.now sim -. l.l_arrival_ns > cfg.client_deadline_ns)
    in
    if doomed then begin
      l.l_failed <- true;
      Admission.note_retry_exhausted adm ~core:l.l_core ~tenant:l.l_tenant
        ~retries:l.l_retries
    end
    else begin
      l.l_retries <- l.l_retries + 1;
      Admission.note_retry adm;
      submit idx
    end
  in
  (* Per-core arrival generators: labelled PRNG splits, so instantiating
     them never perturbs the fork sequence closed-loop runs consume
     (an empty open-loop config reproduces closed-loop baselines). *)
  Array.iter
    (fun core ->
      let aprng =
        Runtime.labeled_prng rt ~label:(Printf.sprintf "openloop-arrivals-%d" core)
      in
      let kprng =
        Runtime.labeled_prng rt ~label:(Printf.sprintf "openloop-keys-%d" core)
      in
      let rec gen now =
        let dt =
          interarrival_ns aprng ~rate_per_ms:(rate_at cfg.arrival ~now_ns:now)
        in
        let at = now +. dt in
        if at <= cfg.window_ns then
          Sim.schedule sim ~at (fun () ->
              if not !stopping then begin
                let tenant = if Prng.int kprng 100 < cfg.scan_pct then 1 else 0 in
                let key = zipf_draw kprng cdf in
                let idx =
                  add_req
                    {
                      l_core = core;
                      l_tenant = tenant;
                      l_key = key;
                      l_arrival_ns = at;
                      l_done = false;
                      l_failed = false;
                      l_retries = 0;
                    }
                in
                submit idx;
                gen at
              end)
      in
      gen 0.0)
    cores;
  (* Server-side workers: one fiber per application core, draining its
     admission queue; parked ({!Admission.wait}) when empty. Entries
     whose logical request already closed still execute in full — the
     server cannot know the client gave up — and are counted as wasted
     work (the [Queue_deadline] policy exists to shed exactly these). *)
  let live_workers = ref (Array.length cores) in
  Array.iter
    (fun core ->
      let ctx = Runtime.app_ctx rt core in
      let cstats = Stats.core stats core in
      Runtime.spawn_app rt core (fun () ->
          let rec loop () =
            if !stopping then decr live_workers
            else
              match Admission.take adm ~core with
              | Some e ->
                  let l = !reqs.(e.Admission.e_payload) in
                  Admission.note_executed adm;
                  (match l.l_tenant with
                  | 1 ->
                      ignore
                        (Hashtable.tx_scan ~elastic:Tx.Elastic_read ctx ht
                           ~k:l.l_key ~len:cfg.scan_len)
                  | _ ->
                      if l.l_key land 1 = 0 then
                        ignore (Hashtable.tx_add ctx ht l.l_key)
                      else ignore (Hashtable.tx_remove ctx ht l.l_key));
                  cstats.Stats.ops <- cstats.Stats.ops + 1;
                  Runtime.poll_service rt ~core;
                  if l.l_done || l.l_failed then Admission.note_wasted adm
                  else begin
                    l.l_done <- true;
                    let e2e = Sim.now sim -. l.l_arrival_ns in
                    Admission.note_completed adm ~e2e_ns:e2e
                      ~good:
                        (cfg.client_deadline_ns <= 0.0
                        || e2e <= cfg.client_deadline_ns)
                  end;
                  loop ()
              | None ->
                  if !stopping then decr live_workers
                  else begin
                    Admission.wait adm ~core;
                    loop ()
                  end
          in
          loop ()))
    cores;
  (* Shutdown: at the drain horizon flip the stop flag and wake every
     parked worker; busy workers observe the flag after their current
     entry, so nobody burns virtual time serving a hopeless backlog.
     The hard bound beyond it only catches a transaction livelocking
     across the horizon. *)
  let drain_end = cfg.window_ns +. cfg.drain_ns in
  Sim.schedule sim ~at:drain_end (fun () ->
      stopping := true;
      Admission.wake_all adm);
  let hard = drain_end +. Float.max cfg.window_ns cfg.drain_ns in
  let events = Runtime.run rt ~until:hard () in
  (* Entries still queued (an unserved backlog) or workers still live
     (cut mid-transaction) mean the drain horizon ended the run with
     admitted work unresolved. *)
  let horizon_hit = Admission.pending adm > 0 || !live_workers > 0 in
  Workload.collect rt ~horizon_hit ~events ~duration_ns:cfg.window_ns ()
