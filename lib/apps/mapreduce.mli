(** MapReduce-like letter-counting application (Section 5.4).

    The input "file" is synthetic text in simulated shared memory
    terms: workers fetch chunk indices from a shared transactional
    counter (TM2C replaces the master node), process each chunk
    locally (per-byte compute whose cost rises when the chunk exceeds
    the effectively available L1 — the 8 KB sweet spot of Fig. 6b),
    and atomically merge their letter counts into the shared totals.

    The paper's inputs are 256 MB-2 GB files; ours are scaled down
    (see DESIGN.md) — durations scale linearly, so speedups over the
    sequential baseline are comparable in shape. *)

type t

(** [create runtime ~input_bytes ~chunk_bytes] builds the shared
    state (chunk counter + 26 letter totals) and a deterministic
    synthetic input of [input_bytes] letters. *)
val create :
  Tm2c_core.Runtime.t -> seed:int -> input_bytes:int -> chunk_bytes:int -> t

val n_chunks : t -> int

(** Reference histogram of the synthetic input (host-side). *)
val expected_histogram : t -> int array

(** Shared totals as currently in simulated memory. *)
val histogram : t -> int array

(** Transactional worker: fetches and processes chunks until none are
    left, then merges its local counts (one small transaction per
    letter). *)
val worker : Tm2c_core.Tx.ctx -> t -> unit

(** Sequential baseline on one core: processes the whole input and
    writes the totals directly. *)
val sequential : Tm2c_core.System.env -> core:int -> t -> unit
