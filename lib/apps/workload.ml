open Tm2c_core
open Tm2c_engine
open Tm2c_noc

type result = {
  ops : int;
  duration_ms : float;
  throughput_ops_ms : float;
  commits : int;
  aborts : int;
  commit_rate : float;
  worst_attempts : int;
  messages : int;
  events : int;
  horizon_hit : bool;
}

(* Export hook: called with every collected result while the runtime
   still holds its metrics (network histograms, DTM server stats, abort
   causality). The harness JSON exporter installs itself here so the
   fig drivers need no per-experiment wiring. *)
let observer : (Runtime.t -> result -> unit) option ref = ref None

(* Setup hook: called with the runtime before any process is spawned,
   so a harness can enable profiling / time-series sampling on every
   run it drives without per-experiment wiring. *)
let preflight : (Runtime.t -> unit) option ref = ref None

let run_preflight t = match !preflight with Some f -> f t | None -> ()

let collect t ?(horizon_hit = false) ~events ~duration_ns () =
  (* Close out the flight recorder (final partial window + eof) before
     reading any totals; a no-op when none is installed. *)
  Runtime.finish_recorder t;
  let stats = Runtime.stats t in
  let ops = Stats.total_ops stats in
  let duration_ms = duration_ns /. 1e6 in
  let r =
    {
      ops;
      duration_ms;
      throughput_ops_ms =
        (if duration_ms > 0.0 then float_of_int ops /. duration_ms else 0.0);
      commits = Stats.total_commits stats;
      aborts = Stats.total_aborts stats;
      commit_rate = Stats.commit_rate stats;
      worst_attempts = Stats.worst_attempts stats;
      messages = Network.sent (Runtime.env t).System.net;
      events;
      horizon_hit;
    }
  in
  (match !observer with Some f -> f t r | None -> ());
  r

let drive t ~duration_ns make_op =
  run_preflight t;
  Runtime.start_services t;
  let sim = Runtime.sim t in
  let stats = Runtime.stats t in
  Array.iter
    (fun core ->
      let ctx = Runtime.app_ctx t core in
      let prng = Runtime.fork_prng t in
      let op = make_op core ctx prng in
      Runtime.spawn_app t core (fun () ->
          let cstats = Stats.core stats core in
          while Sim.now sim < duration_ns do
            op ();
            cstats.Stats.ops <- cstats.Stats.ops + 1;
            Runtime.poll_service t ~core
          done))
    (Runtime.app_cores t);
  let events = Runtime.run t ~until:duration_ns () in
  (* A core that completed zero operations over the whole window was
     terminated by the horizon without ever making progress (blocked
     forever or livelocked) — flag it instead of letting the near-zero
     throughput masquerade as a healthy measurement. *)
  let horizon_hit =
    Array.exists
      (fun core -> (Stats.core stats core).Stats.ops = 0)
      (Runtime.app_cores t)
  in
  collect t ~horizon_hit ~events ~duration_ns ()

let drive_seq t ~duration_ns make_op =
  run_preflight t;
  let sim = Runtime.sim t in
  let stats = Runtime.stats t in
  let core = (Runtime.app_cores t).(0) in
  let prng = Runtime.fork_prng t in
  let op = make_op ~core prng in
  Runtime.spawn_app t core (fun () ->
      let cstats = Stats.core stats core in
      while Sim.now sim < duration_ns do
        op ();
        cstats.Stats.ops <- cstats.Stats.ops + 1
      done);
  let events = Runtime.run t ~until:duration_ns () in
  (* Let the in-flight operation finish (one fiber, no contention —
     this terminates right away): an operation split by the horizon
     would leave e.g. a half-applied transfer. *)
  let events = events + Runtime.run t () in
  collect t ~events ~duration_ns ()

let run_to_completion t ?(horizon_ns = 1e13) work =
  run_preflight t;
  Runtime.start_services t;
  let sim = Runtime.sim t in
  let stats = Runtime.stats t in
  (* Explicit completion count: the simulator's spawned/finished tally
     also covers service fibers (which block forever by design), so
     only the work functions' own returns witness completion. *)
  let done_workers = ref 0 in
  Array.iter
    (fun core ->
      let ctx = Runtime.app_ctx t core in
      let prng = Runtime.fork_prng t in
      Runtime.spawn_app t core (fun () ->
          work core ctx prng;
          let cstats = Stats.core stats core in
          cstats.Stats.ops <- cstats.Stats.ops + 1;
          incr done_workers;
          Runtime.poll_service t ~core))
    (Runtime.app_cores t);
  let events = Runtime.run t ~until:horizon_ns () in
  (* Work left unfinished means the safety horizon (or the watchdog)
     cut the run short: the reported duration is the horizon, not a
     completion time, and must not be read as one. *)
  let horizon_hit = !done_workers < Array.length (Runtime.app_cores t) in
  collect t ~horizon_hit ~events ~duration_ns:(Sim.now sim) ()
