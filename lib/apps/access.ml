open Tm2c_core

type t = {
  read : Types.addr -> int;
  write : Types.addr -> int -> unit;
  compute : int -> unit;
}

let of_tx ctx =
  { read = Tx.read ctx; write = Tx.write ctx; compute = Tx.compute ctx }

let direct env ~core =
  {
    read = (fun addr -> Tm2c_memory.Shmem.read env.System.shmem ~core addr);
    write = (fun addr v -> Tm2c_memory.Shmem.write env.System.shmem ~core addr v);
    compute = (fun cycles -> Tm2c_noc.Network.compute env.System.net cycles);
  }
