(** Open-loop client population over the admission-controlled runtime.

    Closed-loop drivers ({!Workload.drive}) issue the next operation
    only when the previous one finishes, so they can saturate but never
    overload. This driver models production traffic: per-core Poisson
    (or bursty flash-crowd) arrivals over a Zipf-skewed key space, a
    two-tenant mix (short read/write transactions plus elastic
    read-only scans), client deadlines and timeouts, and a bounded
    retry budget. Arrivals flow through {!Tm2c_core.Admission}; the
    lifecycle counters land in [System.overload] and the
    arrival-to-commit latency in the [e2e_lat] sketch, so goodput and
    p99/p999 end-to-end latency come out of the standard exports. *)

type arrival =
  | Poisson of { rate_per_ms : float }  (** per-core arrival rate *)
  | Bursty of {
      base_per_ms : float;
      burst_per_ms : float;
      burst_start_ns : float;
      burst_end_ns : float;
    }
      (** flash crowd: [burst_per_ms] inside
          [\[burst_start_ns, burst_end_ns)], [base_per_ms] outside *)

type config = {
  arrival : arrival;
  window_ns : float;  (** arrival window (measurement interval) *)
  drain_ns : float;  (** extra time after the window to drain queues *)
  zipf_s : float;  (** key skew exponent (0 = uniform) *)
  key_range : int;
  scan_pct : int;  (** percent of arrivals that are scan-tenant *)
  scan_len : int;  (** keys probed per elastic scan *)
  client_deadline_ns : float;
      (** completions within this of arrival count as goodput
          (<= 0: every completion is good) *)
  client_timeout_ns : float;
      (** client resubmits an admitted request still unanswered after
          this long (<= 0: clients never time out) — the retry
          amplification path *)
  retry_budget : int;
      (** max client retries per logical request; negative = unbounded
          (the retry-storm ablation) *)
  policy : Tm2c_core.Admission.policy;
      (** used only when the runtime has no admission state yet *)
}

(** Modest 2 ms window: 20 arrivals/ms/core, 10% scans, [Reject]
    admission with a 3-retry budget. *)
val default : config

(** Arrival rate (per ms) in force at [now_ns]. *)
val rate_at : arrival -> now_ns:float -> float

(** One exponential interarrival gap (ns) at the given rate; exactly
    one [Prng.float] draw, [infinity] when the rate is <= 0. *)
val interarrival_ns : Tm2c_engine.Prng.t -> rate_per_ms:float -> float

(** The whole arrival stream in [\[0, until_ns\]] as pure data —
    consumes the PRNG identically to the live driver, so the same
    split yields a bit-identical stream (the determinism tests). *)
val arrival_times :
  arrival -> Tm2c_engine.Prng.t -> until_ns:float -> float list

(** Zipf(s) CDF over ranks [1..n] (array of [n] cumulative weights,
    last = 1.0). *)
val zipf_cdf : s:float -> n:int -> float array

(** Inverse-CDF draw: rank index in [\[0, n)], rank 0 most popular;
    exactly one [Prng.float] draw. *)
val zipf_draw : Tm2c_engine.Prng.t -> float array -> int

(** Run the open-loop population against the runtime: installs
    admission control (per [config.policy]) unless the caller already
    did, starts services, runs arrivals for [window_ns] plus
    [drain_ns] of queue drain, and collects through
    {!Workload.collect} so every observer/export hook fires. The
    result's [horizon_hit] is set when admitted work was still
    unresolved at the drain horizon (unserved backlog). Overload
    counters are in [(Runtime.env rt).System.overload]. *)
val drive : Tm2c_core.Runtime.t -> config -> Workload.result
