open Tm2c_core
open Tm2c_memory

(* Node layout: [key; next], two words. Buckets are sorted ascending.
   Cycle costs charged per step model the P54C's hashing / comparison
   work on top of the (dominant) memory latencies. *)
let hash_cycles = 30
let step_cycles = 8
let alloc_cycles = 40

type t = {
  runtime : Runtime.t;
  base : Types.addr;  (* base = header word; buckets at base+1 .. base+n *)
  n_buckets : int;
}

let create runtime ~n_buckets =
  if n_buckets < 1 then invalid_arg "Hashtable.create: need at least one bucket";
  let base = Alloc.alloc (Runtime.alloc runtime) ~words:(1 + n_buckets) in
  Runtime.host_write runtime base n_buckets;
  { runtime; base; n_buckets }

let n_buckets t = t.n_buckets

let hash t k = (k * 0x9E3779B1 land max_int) mod t.n_buckets

let bucket_slot t k = t.base + 1 + hash t k

(* Walk a bucket: returns [(slot, ptr, key)] where [slot] holds the
   pointer [ptr] to the first node whose key is >= k (ptr = 0 at end
   of bucket; key is meaningless then). *)
let locate (a : Access.t) t k =
  a.compute hash_cycles;
  let rec walk slot =
    let ptr = a.read slot in
    if ptr = 0 then (slot, 0, 0)
    else begin
      let key = a.read ptr in
      a.compute step_cycles;
      if key >= k then (slot, ptr, key) else walk (ptr + 1)
    end
  in
  walk (bucket_slot t k)

let contains_op a t k =
  let _, ptr, key = locate a t k in
  ptr <> 0 && key = k

(* [node] is a preallocated private [key; next] block; linking it only
   writes the predecessor slot transactionally. Returns false (and
   leaves the node unlinked) if the key is already present. *)
let add_op (a : Access.t) t k ~node =
  let slot, ptr, key = locate a t k in
  if ptr <> 0 && key = k then false
  else begin
    (* The node is private until the commit makes [slot] point at it
       (weak atomicity: private data needs no wrapping). *)
    Runtime.host_write t.runtime node k;
    Runtime.host_write t.runtime (node + 1) ptr;
    a.write slot node;
    true
  end

(* Returns the removed node's address, or 0 if absent. *)
let remove_op (a : Access.t) t k =
  let slot, ptr, key = locate a t k in
  if ptr = 0 || key <> k then 0
  else begin
    let next = a.read (ptr + 1) in
    a.write slot next;
    (* Also write the removed node's next field (same value): a pure
       conflict marker, so a concurrent operation whose elastic window
       no longer covers [slot] still collides (WAW) with this unlink —
       without it, adjacent removes could both commit and lose one
       update (see the elastic-transaction tests). *)
    a.write (ptr + 1) next;
    ptr
  end

let new_node t =
  let alloc = Runtime.alloc t.runtime in
  Alloc.alloc alloc ~words:2

let free_node t node = Alloc.free (Runtime.alloc t.runtime) node ~words:2

let tx_contains ?elastic ctx t k =
  Tx.atomic ?elastic ctx (fun () -> contains_op (Access.of_tx ctx) t k)

(* Multi-key membership scan in one transaction: how many of the [len]
   consecutive keys starting at [k] are present. Under [Elastic_read]
   this is the long read-only scan tenant of the open-loop overload
   model: each key's bucket walk extends the elastic window instead of
   pinning every read lock to commit. *)
let tx_scan ?elastic ctx t ~k ~len =
  if len < 1 then invalid_arg "Hashtable.tx_scan: need len >= 1";
  Tx.atomic ?elastic ctx (fun () ->
      let a = Access.of_tx ctx in
      let hits = ref 0 in
      for i = 0 to len - 1 do
        if contains_op a t (k + i) then incr hits
      done;
      !hits)

let tx_add ?elastic ctx t k =
  Tx.compute ctx alloc_cycles;
  let node = new_node t in
  let added = Tx.atomic ?elastic ctx (fun () -> add_op (Access.of_tx ctx) t k ~node) in
  if not added then free_node t node;
  added

let tx_remove ?elastic ctx t k =
  let removed =
    Tx.atomic ?elastic ctx (fun () -> remove_op (Access.of_tx ctx) t k)
  in
  if removed <> 0 then begin
    free_node t removed;
    true
  end
  else false

let tx_move ctx t k1 k2 =
  Tx.compute ctx alloc_cycles;
  let node = new_node t in
  let removed =
    Tx.atomic ctx (fun () ->
        let a = Access.of_tx ctx in
        (* Check k2 first: its bucket reads are cached in the read set,
           so the add's second walk costs no extra messages, and a
           failing move buffers no writes at all. *)
        if contains_op a t k2 then 0
        else begin
          let removed = remove_op a t k1 in
          if removed = 0 then 0
          else begin
            let added = add_op a t k2 ~node in
            assert added;
            removed
          end
        end)
  in
  if removed = 0 then begin
    free_node t node;
    false
  end
  else begin
    free_node t removed;
    true
  end

let seq_access env ~core = Access.direct env ~core

let seq_contains env ~core t k = contains_op (seq_access env ~core) t k

let seq_add env ~core t k =
  let node = new_node t in
  let a = seq_access env ~core in
  a.Access.compute alloc_cycles;
  let added = add_op a t k ~node in
  if not added then free_node t node;
  added

let seq_remove env ~core t k =
  let removed = remove_op (seq_access env ~core) t k in
  if removed <> 0 then begin
    free_node t removed;
    true
  end
  else false

(* Host-side helpers. *)

let shmem t = Runtime.shmem t.runtime

let peek_bucket t b =
  let rec walk ptr acc =
    if ptr = 0 then List.rev acc
    else walk (Shmem.peek (shmem t) (ptr + 1)) (Shmem.peek (shmem t) ptr :: acc)
  in
  walk (Shmem.peek (shmem t) (t.base + 1 + b)) []

let mem t k = List.mem k (peek_bucket t (hash t k))

let to_list t =
  List.concat (List.init t.n_buckets (fun b -> peek_bucket t b))

let size t = List.length (to_list t)

let populate t prng ~n ~key_range =
  let inserted = ref 0 in
  while !inserted < n do
    let k = Tm2c_engine.Prng.int prng key_range in
    if not (mem t k) then begin
      (* Sorted host-side insert. *)
      let sh = shmem t in
      let rec find_slot slot =
        let ptr = Shmem.peek sh slot in
        if ptr = 0 then (slot, 0)
        else if Shmem.peek sh ptr >= k then (slot, ptr)
        else find_slot (ptr + 1)
      in
      let slot, ptr = find_slot (t.base + 1 + hash t k) in
      let node = new_node t in
      Runtime.host_write t.runtime node k;
      Runtime.host_write t.runtime (node + 1) ptr;
      Runtime.host_write t.runtime slot node;
      incr inserted
    end
  done

let check_invariants t =
  for b = 0 to t.n_buckets - 1 do
    let keys = peek_bucket t b in
    let rec sorted = function
      | [] | [ _ ] -> true
      | x :: (y :: _ as rest) -> x < y && sorted rest
    in
    if not (sorted keys) then
      invalid_arg (Printf.sprintf "Hashtable: bucket %d unsorted" b);
    List.iter
      (fun k ->
        if hash t k <> b then
          invalid_arg (Printf.sprintf "Hashtable: key %d in wrong bucket %d" k b))
      keys
  done
