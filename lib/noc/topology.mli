(** On-chip topology model.

    The SCC layout is a 6x4 two-dimensional mesh of tiles, two P54C
    cores per tile, with XY (dimension-ordered) routing, and four DDR3
    memory controllers attached at the corner columns of the mesh. The
    [Flat] topology models a cache-coherent multi-core where messages
    do not traverse a mesh (core-to-core channels live in the cache
    hierarchy). *)

type t =
  | Mesh of { cols : int; rows : int; cores_per_tile : int }
      (** SCC-style mesh: tile [(x, y)] with [x < cols], [y < rows]. *)
  | Flat of { n_cores : int }

(** The Intel SCC: 6x4 mesh, 2 cores per tile, 48 cores. *)
val scc : t

(** A flat 48-core cache-coherent machine (4x12-core Opteron box). *)
val opteron48 : t

val n_cores : t -> int

(** Tile index of a core (cores [2t] and [2t+1] live on tile [t] for
    the mesh; a flat topology places every core on tile 0). *)
val core_tile : t -> int -> int

(** Mesh coordinates of a tile. *)
val tile_coords : t -> int -> int * int

(** Number of mesh hops (XY routing: |dx| + |dy|) between the tiles of
    two cores. 0 on flat topologies and for same-tile cores. *)
val hops : t -> int -> int -> int

(** Number of memory controllers (4 on the SCC, modeled as 4 NUMA
    nodes on the flat multi-core). *)
val n_memory_controllers : t -> int

(** Mesh hops from a core's tile to a memory controller's attachment
    point; 0 on flat topologies (NUMA cost is folded into the memory
    latency model). *)
val hops_to_mc : t -> core:int -> mc:int -> int

(** Average hop count over all ordered core pairs; used by latency
    smoke tests and the calibration notes. *)
val mean_hops : t -> float
