(** Message-passing layer over the simulated on-chip network.

    Each core owns one mailbox. [send] charges the sender's software
    overhead (the sender's virtual time advances), then the message
    spends the wire + detection latency in flight; [recv] additionally
    charges the receiver's software overhead. The detection latency
    grows with the number of [active] cores, modeling the SCC's
    flag-polling receive loop (and the multi-core's channel scan). *)

type 'a t

(** Always-on message-layer metrics (cheap counters; they never touch
    the simulated timings). *)
type metrics = {
  per_link : int array array;  (** [per_link.(src).(dst)] messages sent *)
  latency : Tm2c_engine.Sketch.t;
      (** in-flight time per message (wire hops + detection scan), ns *)
  mutable received : int;
  mutable poll_scans : int;  (** fruitless [try_recv] scans *)
  mutable poll_scan_ns : float;  (** virtual ns burned by those scans *)
}

val create : Tm2c_engine.Sim.t -> Platform.t -> active:int -> 'a t

val sim : 'a t -> Tm2c_engine.Sim.t

val platform : 'a t -> Platform.t

(** Number of cores participating in messaging (the polling-scan
    width). *)
val active : 'a t -> int

(** [send net ~src ~dst msg] — blocks the sender for the send software
    overhead; delivery is scheduled after the flight latency. When a
    fault layer with an active link fault is installed, the message may
    instead be dropped, duplicated, or delayed per {!Fault.link_action}
    (the sender still pays its overhead either way); a link partition
    covering [src]-[dst] holds the message until its heal instant. *)
val send : 'a t -> src:int -> dst:int -> 'a -> unit

(** Like {!send} but bypassing fault injection entirely (same overhead
    and flight time): the reliable-FIFO channel used for lock-table
    replication, where a silently lost message would diverge the
    backup's replica (see DESIGN.md "Failover"). *)
val send_reliable : 'a t -> src:int -> dst:int -> 'a -> unit

(** Install (or clear) the fault-injection layer consulted by [send].
    [None] — and an installed layer whose plan has no link fault —
    leave the delivery schedule bit-for-bit unchanged. *)
val set_faults : 'a t -> Fault.t option -> unit

val faults : 'a t -> Fault.t option

(** [recv net ~self] — blocks until a message is available, then
    charges the receive software overhead. *)
val recv : 'a t -> self:int -> 'a

(** [recv_pending net ~self] — non-suspending take for batch drains:
    returns an already-arrived message with exactly {!recv}'s receive
    overhead charged, or [None] with nothing charged when the mailbox
    is empty (the caller then falls back to a blocking {!recv}). *)
val recv_pending : 'a t -> self:int -> 'a option

(** Like {!recv} but gives up after [timeout_ns] of virtual time,
    returning [None] with nothing charged (used for request-timeout
    hardening). *)
val recv_timeout : 'a t -> self:int -> timeout_ns:float -> 'a option

(** [try_recv net ~self] — polls the mailbox. On [Some _] the receive
    overhead has been charged; on [None] a single poll-scan cost has
    been charged (used by the multitasking deployment). *)
val try_recv : 'a t -> self:int -> 'a option

(** Messages waiting for [self], without charging anything. *)
val pending : 'a t -> self:int -> int

(** Total messages sent so far on this network. *)
val sent : 'a t -> int

val metrics : 'a t -> metrics

(** Busiest (src, dst, count) links, descending; at most [limit]
    (default 16). *)
val top_links : ?limit:int -> 'a t -> (int * int * int) list

(** [cycles_ns net c] — what [c] cycles of local computation cost in
    ns at the platform's core frequency: {!Platform.cycles_ns} behind a
    memo, bit-for-bit the same value. *)
val cycles_ns : 'a t -> int -> float

(** [compute net cycles] charges [cycles] of local computation at the
    platform's core frequency. *)
val compute : 'a t -> int -> unit
