open Tm2c_engine

(* Always-on message-layer metrics: cheap counters only (a histogram
   add and two array increments per send), so they never perturb the
   simulated timings. *)
type metrics = {
  per_link : int array array;  (* [src].(dst) messages sent *)
  latency : Histogram.t;  (* in-flight ns: wire hops + detection scan *)
  mutable received : int;
  mutable poll_scans : int;  (* fruitless try_recv scans *)
  mutable poll_scan_ns : float;  (* virtual ns burned by those scans *)
}

type 'a t = {
  sim : Sim.t;
  platform : Platform.t;
  active : int;
  boxes : 'a Mailbox.t array;
  mutable n_sent : int;
  metrics : metrics;
  mutable faults : Fault.t option;
}

let create sim platform ~active =
  let n = Platform.n_cores platform in
  {
    sim;
    platform;
    active;
    boxes = Array.init n (fun _ -> Mailbox.create sim);
    n_sent = 0;
    metrics =
      {
        per_link = Array.init n (fun _ -> Array.make n 0);
        latency = Histogram.create ();
        received = 0;
        poll_scans = 0;
        poll_scan_ns = 0.0;
      };
    faults = None;
  }

let set_faults net f = net.faults <- f

let faults net = net.faults

let sim net = net.sim

let platform net = net.platform

let active net = net.active

let metrics net = net.metrics

let send_msg net ~src ~dst ~faulty msg =
  net.n_sent <- net.n_sent + 1;
  net.metrics.per_link.(src).(dst) <- net.metrics.per_link.(src).(dst) + 1;
  Sim.delay (Platform.send_overhead_ns net.platform);
  let flight = Platform.flight_ns net.platform ~active:net.active ~src ~dst in
  Histogram.add net.metrics.latency flight;
  let deliver_at at = Mailbox.send_at net.boxes.(dst) ~at msg in
  let now = Sim.now net.sim in
  let at = now +. flight in
  match net.faults with
  | Some f when faulty ->
      (* A partitioned link holds the message until the window heals
         (it then still takes its flight time); the link fault applies
         on top. The sender has already paid its software overhead:
         injection perturbs only what happens on the wire. *)
      let at =
        match Fault.partition_release f ~src ~dst ~now with
        | Some heal ->
            Fault.count_partitioned f;
            heal +. flight
        | None -> at
      in
      if Fault.link_active f then begin
        match Fault.link_action f ~src ~dst with
        | Fault.Deliver -> deliver_at at
        | Fault.Drop -> ()
        | Fault.Duplicate ->
            deliver_at at;
            (* The duplicate takes a second trip over the same link. *)
            deliver_at (at +. flight)
        | Fault.Delay extra_ns -> deliver_at (at +. extra_ns)
      end
      else deliver_at at
  | _ -> deliver_at at

let send net ~src ~dst msg = send_msg net ~src ~dst ~faulty:true msg

(* The primary->backup replication channel is modeled as reliable FIFO
   (as if link-layer acked): it pays the same software overhead and
   flight time but bypasses fault injection entirely. Without this,
   one dropped replication message would silently diverge the backup's
   replica from what the primary granted — a failure mode the epoch
   protocol does not claim to survive (see DESIGN.md "Failover"). *)
let send_reliable net ~src ~dst msg = send_msg net ~src ~dst ~faulty:false msg

let recv net ~self =
  let msg = Mailbox.recv net.boxes.(self) in
  net.metrics.received <- net.metrics.received + 1;
  Sim.delay (Platform.recv_overhead_ns net.platform);
  msg

let recv_timeout net ~self ~timeout_ns =
  match Mailbox.recv_timeout net.boxes.(self) ~timeout_ns with
  | Some msg ->
      net.metrics.received <- net.metrics.received + 1;
      Sim.delay (Platform.recv_overhead_ns net.platform);
      Some msg
  | None -> None

let try_recv net ~self =
  match Mailbox.try_recv net.boxes.(self) with
  | Some msg ->
      net.metrics.received <- net.metrics.received + 1;
      Sim.delay (Platform.recv_overhead_ns net.platform);
      Some msg
  | None ->
      (* A fruitless scan over the flags of all active cores. *)
      let cost = float_of_int net.active *. net.platform.Platform.msg_poll_per_core_ns in
      net.metrics.poll_scans <- net.metrics.poll_scans + 1;
      net.metrics.poll_scan_ns <- net.metrics.poll_scan_ns +. cost;
      Sim.delay cost;
      None

let pending net ~self = Mailbox.length net.boxes.(self)

let sent net = net.n_sent

(* Busiest links first; zero links omitted. *)
let top_links ?(limit = 16) net =
  let acc = ref [] in
  Array.iteri
    (fun src row ->
      Array.iteri (fun dst c -> if c > 0 then acc := (src, dst, c) :: !acc) row)
    net.metrics.per_link;
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> compare b a) !acc in
  List.filteri (fun i _ -> i < limit) sorted

let compute net cycles = Sim.delay (Platform.cycles_ns net.platform cycles)
