open Tm2c_engine

type 'a t = {
  sim : Sim.t;
  platform : Platform.t;
  active : int;
  boxes : 'a Mailbox.t array;
  mutable n_sent : int;
}

let create sim platform ~active =
  let n = Platform.n_cores platform in
  {
    sim;
    platform;
    active;
    boxes = Array.init n (fun _ -> Mailbox.create sim);
    n_sent = 0;
  }

let sim net = net.sim

let platform net = net.platform

let active net = net.active

let send net ~src ~dst msg =
  net.n_sent <- net.n_sent + 1;
  Sim.delay (Platform.send_overhead_ns net.platform);
  let flight = Platform.flight_ns net.platform ~active:net.active ~src ~dst in
  Mailbox.send_at net.boxes.(dst) ~at:(Sim.now net.sim +. flight) msg

let recv net ~self =
  let msg = Mailbox.recv net.boxes.(self) in
  Sim.delay (Platform.recv_overhead_ns net.platform);
  msg

let try_recv net ~self =
  match Mailbox.try_recv net.boxes.(self) with
  | Some msg ->
      Sim.delay (Platform.recv_overhead_ns net.platform);
      Some msg
  | None ->
      (* A fruitless scan over the flags of all active cores. *)
      Sim.delay (float_of_int net.active *. net.platform.Platform.msg_poll_per_core_ns);
      None

let pending net ~self = Mailbox.length net.boxes.(self)

let sent net = net.n_sent

let compute net cycles = Sim.delay (Platform.cycles_ns net.platform cycles)
