open Tm2c_engine

(* Always-on message-layer metrics: cheap counters only (a sketch
   add and two array increments per send), so they never perturb the
   simulated timings. *)
type metrics = {
  per_link : int array array;  (* [src].(dst) messages sent *)
  latency : Sketch.t;  (* in-flight ns: wire hops + detection scan *)
  mutable received : int;
  mutable poll_scans : int;  (* fruitless try_recv scans *)
  mutable poll_scan_ns : float;  (* virtual ns burned by those scans *)
}

type 'a t = {
  sim : Sim.t;
  platform : Platform.t;
  active : int;
  n : int;  (* total cores; stride of the flight table *)
  (* Timing constants hoisted out of the per-message path. Each entry
     is the value the corresponding [Platform] function returns — same
     expression, evaluated once — so every virtual timestamp is
     bit-for-bit identical to computing it per call. *)
  send_oh : float;
  recv_oh : float;
  poll_cost : float;  (* fruitless scan over all active cores' flags *)
  flight_tab : float array;  (* [src * n + dst] = Platform.flight_ns *)
  cycles_tab : float array;  (* [c] = Platform.cycles_ns, -1.0 = unset *)
  boxes : 'a Mailbox.t array;
  mutable n_sent : int;
  metrics : metrics;
  mutable faults : Fault.t option;
}

let cycles_memo = 2048

let create sim platform ~active =
  let n = Platform.n_cores platform in
  {
    sim;
    platform;
    active;
    n;
    send_oh = Platform.send_overhead_ns platform;
    recv_oh = Platform.recv_overhead_ns platform;
    poll_cost = float_of_int active *. platform.Platform.msg_poll_per_core_ns;
    flight_tab =
      Array.init (n * n) (fun i ->
          Platform.flight_ns platform ~active ~src:(i / n) ~dst:(i mod n));
    cycles_tab = Array.make cycles_memo (-1.0);
    boxes = Array.init n (fun _ -> Mailbox.create sim);
    n_sent = 0;
    metrics =
      {
        per_link = Array.init n (fun _ -> Array.make n 0);
        latency = Sketch.create ();
        received = 0;
        poll_scans = 0;
        poll_scan_ns = 0.0;
      };
    faults = None;
  }

let set_faults net f = net.faults <- f

let faults net = net.faults

let sim net = net.sim

let platform net = net.platform

let active net = net.active

let metrics net = net.metrics

(* Fault-injected delivery, split out of [send_msg] so the common
   no-fault path stays closure-free. *)
let send_faulty net f ~src ~dst ~flight ~at msg =
  let deliver_at at = Mailbox.send_at net.boxes.(dst) ~at msg in
  (* A partitioned link holds the message until the window heals
     (it then still takes its flight time); the link fault applies
     on top. The sender has already paid its software overhead:
     injection perturbs only what happens on the wire. *)
  let at =
    match Fault.partition_release f ~src ~dst ~now:(Sim.now net.sim) with
    | Some heal ->
        Fault.count_partitioned f;
        heal +. flight
    | None -> at
  in
  if Fault.link_active f then begin
    match Fault.link_action f ~src ~dst with
    | Fault.Deliver -> deliver_at at
    | Fault.Drop -> ()
    | Fault.Duplicate ->
        deliver_at at;
        (* The duplicate takes a second trip over the same link. *)
        deliver_at (at +. flight)
    | Fault.Delay extra_ns -> deliver_at (at +. extra_ns)
  end
  else deliver_at at

let send_msg net ~src ~dst ~faulty msg =
  (* Self-profiler: attribute the current scheduler dispatch to the
     message layer (no-op unless a host clock is injected into the
     simulation; see Sim.prof_mark). *)
  Sim.prof_mark net.sim Sim.prof_cat_network;
  net.n_sent <- net.n_sent + 1;
  net.metrics.per_link.(src).(dst) <- net.metrics.per_link.(src).(dst) + 1;
  Sim.delay net.send_oh;
  let flight = net.flight_tab.((src * net.n) + dst) in
  Sketch.add net.metrics.latency flight;
  let at = Sim.now net.sim +. flight in
  match net.faults with
  | Some f when faulty -> send_faulty net f ~src ~dst ~flight ~at msg
  | _ -> Mailbox.send_at net.boxes.(dst) ~at msg

let send net ~src ~dst msg = send_msg net ~src ~dst ~faulty:true msg

(* The primary->backup replication channel is modeled as reliable FIFO
   (as if link-layer acked): it pays the same software overhead and
   flight time but bypasses fault injection entirely. Without this,
   one dropped replication message would silently diverge the backup's
   replica from what the primary granted — a failure mode the epoch
   protocol does not claim to survive (see DESIGN.md "Failover"). *)
let send_reliable net ~src ~dst msg = send_msg net ~src ~dst ~faulty:false msg

let recv net ~self =
  let msg = Mailbox.recv net.boxes.(self) in
  net.metrics.received <- net.metrics.received + 1;
  Sim.delay net.recv_oh;
  msg

(* Non-suspending take used by the service loop's batch drain: when a
   message has already arrived it is taken with exactly [recv]'s
   virtual-time charge; when the mailbox is empty nothing is charged
   (unlike [try_recv]'s fruitless-scan cost) and the caller falls back
   to a blocking [recv]. *)
let recv_pending net ~self =
  let box = net.boxes.(self) in
  if Mailbox.is_empty box then None
  else begin
    let msg = Mailbox.recv box in
    net.metrics.received <- net.metrics.received + 1;
    Sim.delay net.recv_oh;
    Some msg
  end

let recv_timeout net ~self ~timeout_ns =
  match Mailbox.recv_timeout net.boxes.(self) ~timeout_ns with
  | Some msg ->
      net.metrics.received <- net.metrics.received + 1;
      Sim.delay net.recv_oh;
      Some msg
  | None -> None

let try_recv net ~self =
  match Mailbox.try_recv net.boxes.(self) with
  | Some msg ->
      net.metrics.received <- net.metrics.received + 1;
      Sim.delay net.recv_oh;
      Some msg
  | None ->
      (* A fruitless scan over the flags of all active cores. *)
      let cost = net.poll_cost in
      net.metrics.poll_scans <- net.metrics.poll_scans + 1;
      net.metrics.poll_scan_ns <- net.metrics.poll_scan_ns +. cost;
      Sim.delay cost;
      None

let pending net ~self = Mailbox.length net.boxes.(self)

let sent net = net.n_sent

(* Busiest links first; zero links omitted. *)
let top_links ?(limit = 16) net =
  let acc = ref [] in
  Array.iteri
    (fun src row ->
      Array.iteri (fun dst c -> if c > 0 then acc := (src, dst, c) :: !acc) row)
    net.metrics.per_link;
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> compare b a) !acc in
  List.filteri (fun i _ -> i < limit) sorted

(* Memoized cycles->ns conversion: the DTM charges a handful of
   distinct cycle counts millions of times, and each fresh conversion
   is a float division. Misses past the memo window fall back to the
   direct formula; hits return the exact value that formula produced. *)
let cycles_ns net cycles =
  if cycles >= 0 && cycles < cycles_memo then begin
    let v = net.cycles_tab.(cycles) in
    if v >= 0.0 then v
    else begin
      let v = Platform.cycles_ns net.platform cycles in
      net.cycles_tab.(cycles) <- v;
      v
    end
  end
  else Platform.cycles_ns net.platform cycles

let compute net cycles = Sim.delay (cycles_ns net cycles)
