type cache_model = { capacity_words : int; hit_ns : float }

type t = {
  name : string;
  topology : Topology.t;
  core_hz : float;
  msg_send_cycles : int;
  msg_recv_cycles : int;
  msg_hop_ns : float;
  msg_poll_per_core_ns : float;
  mem_base_ns : float;
  mem_hop_ns : float;
  mem_write_ns : float;
  mem_service_ns : float;
  tas_ns : float;
  cache : cache_model option;
}

(* Section 5.1 settings table: tile MHz, mesh MHz, DRAM MHz. *)
let scc_settings = [| (533, 800, 800); (800, 1600, 1066); (800, 1600, 800); (800, 800, 1066); (800, 800, 800) |]

(* Software messaging costs on the SCC, in core cycles. 1170 cycles of
   combined send+receive software overhead at 533 MHz yields the
   2.2 us one-way base that reproduces Fig. 8a's 5.1 us round trip on
   2 cores; 40 cycles per scanned flag yields the 12.4 us round trip
   on 48 cores. *)
let scc_send_cycles = 600
let scc_recv_cycles = 570
let scc_poll_cycles = 40

let scc_setting i =
  if i < 0 || i > 4 then invalid_arg "Platform.scc_setting: setting must be in 0-4";
  let tile_mhz, mesh_mhz, dram_mhz = scc_settings.(i) in
  let core_hz = float_of_int tile_mhz *. 1e6 in
  let mesh_hz = float_of_int mesh_mhz *. 1e6 in
  (* An uncached shared-memory access crosses the mesh to a DDR3
     controller: command + burst, about 400 DRAM-clock ns at 800 MHz.
     The P54C cannot cache the shared region, so every transactional
     memory access pays this. *)
  let mem_base_ns = 320_000.0 /. float_of_int dram_mhz in
  {
    name = (if i = 0 then "SCC" else if i = 1 then "SCC800" else Printf.sprintf "SCC-s%d" i);
    topology = Topology.scc;
    core_hz;
    msg_send_cycles = scc_send_cycles;
    msg_recv_cycles = scc_recv_cycles;
    msg_hop_ns = 4.0 *. 1e9 /. mesh_hz;
    msg_poll_per_core_ns = float_of_int scc_poll_cycles *. 1e9 /. core_hz;
    mem_base_ns;
    mem_hop_ns = 8.0 *. 1e9 /. mesh_hz;
    mem_write_ns = mem_base_ns *. 0.45;
    mem_service_ns = 36_000.0 /. float_of_int dram_mhz;
    tas_ns = 180.0;
    cache = None;
  }

let scc = scc_setting 0

let scc800 = scc_setting 1

(* Scaled-out SCC-style mesh for beyond-chip simulations (hundreds to
   thousands of cores): identical per-core software costs, per-hop wire
   latency and memory parameters as the SCC under setting 0, on a
   [cols] x [rows] mesh of 2-core tiles. The polling-detection latency
   still grows with the number of active cores, so messaging slows down
   with scale exactly as the SCC model predicts it would. *)
let scc_mesh ~cols ~rows =
  if cols < 1 || rows < 1 then
    invalid_arg "Platform.scc_mesh: need cols >= 1 and rows >= 1";
  {
    scc with
    name = Printf.sprintf "SCC-mesh-%dx%d" cols rows;
    topology = Topology.Mesh { cols; rows; cores_per_tile = 2 };
  }

let opteron =
  let core_hz = 2.1e9 in
  {
    name = "Opteron";
    topology = Topology.opteron48;
    core_hz;
    (* Barrelfish-style channels: writing and reading a cache line is
       cheap, but polling 47 channels costs a coherence miss per
       channel, so detection dominates at scale (Fig. 8a). *)
    msg_send_cycles = 1250;
    msg_recv_cycles = 1150;
    msg_hop_ns = 0.0;
    msg_poll_per_core_ns = 90.0;
    mem_base_ns = 140.0;
    mem_hop_ns = 0.0;
    mem_write_ns = 110.0;
    mem_service_ns = 16.0;
    tas_ns = 120.0;
    cache = Some { capacity_words = 8192; hit_ns = 8.0 };
  }

let all = [ scc; scc800; opteron ]

let n_cores p = Topology.n_cores p.topology

let cycles_ns p c = float_of_int c *. 1e9 /. p.core_hz

let send_overhead_ns p = cycles_ns p p.msg_send_cycles

let recv_overhead_ns p = cycles_ns p p.msg_recv_cycles

let flight_ns p ~active ~src ~dst =
  let hops = float_of_int (Topology.hops p.topology src dst) in
  (hops *. p.msg_hop_ns) +. (float_of_int active *. p.msg_poll_per_core_ns)

let one_way_ns p ~active ~src ~dst =
  send_overhead_ns p +. flight_ns p ~active ~src ~dst +. recv_overhead_ns p

let mem_read_ns p ~core ~mc =
  p.mem_base_ns
  +. (float_of_int (Topology.hops_to_mc p.topology ~core ~mc) *. p.mem_hop_ns)

let mem_write_ns p ~core ~mc =
  p.mem_write_ns
  +. (float_of_int (Topology.hops_to_mc p.topology ~core ~mc) *. p.mem_hop_ns)

let pp fmt p =
  Format.fprintf fmt
    "%s: %d cores @ %.0f MHz, msg base %.2f us, poll %.0f ns/core, mem %.0f ns"
    p.name (n_cores p) (p.core_hz /. 1e6)
    ((send_overhead_ns p +. recv_overhead_ns p) /. 1e3)
    p.msg_poll_per_core_ns p.mem_base_ns
