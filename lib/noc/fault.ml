(* Deterministic fault-injection plans for the simulated substrate.

   A [plan] is pure data: per-link message perturbations (drop,
   duplication, bounded delay spikes, bounded reordering), DS-server
   stall windows, crash-stop points for chosen app cores, crash-stop
   points for DS-lock servers, and temporary link partitions. A [t]
   pairs a plan with its own PRNG stream (derived via
   [Prng.split_label], so the stream's mere existence never perturbs
   baseline schedules) plus counters and the crashed-core tables. An
   empty plan draws nothing from the PRNG, which is what makes "faults
   enabled, plan empty" bit-for-bit identical to a run that never
   heard of faults.

   The network applies [link_action] and [partition_release] per
   message; the DTM service loop consults [stall_until] and
   [is_server_crashed]; the transaction layer polls [crash_due] at
   operation boundaries; the runtime schedules [mark_server_crashed]
   at the planned instants. Trace emission lives above this layer: the
   runtime installs [on_drop]/[on_dup] callbacks since this library
   cannot see the tm2c event type. *)

open Tm2c_engine

type link_fault = {
  drop_pct : float;  (* probability a message is silently lost *)
  dup_pct : float;  (* probability a message is delivered twice *)
  delay_pct : float;  (* probability of a delay spike *)
  delay_ns : float;  (* size of the spike, virtual ns *)
  reorder_pct : float;  (* probability of a reordering spike *)
  reorder_ns : float;  (* bound of the uniform extra delay drawn when
                          a reorder fires: enough to let later
                          messages overtake this one *)
}

let no_link =
  {
    drop_pct = 0.0;
    dup_pct = 0.0;
    delay_pct = 0.0;
    delay_ns = 0.0;
    reorder_pct = 0.0;
    reorder_ns = 0.0;
  }

type stall = {
  stall_core : int;  (* DS-server core that stops serving *)
  stall_from_ns : float;
  stall_until_ns : float;
}

type crash = {
  crash_core : int;  (* app core that crash-stops *)
  crash_at_ns : float;  (* first operation boundary at/after this dies *)
}

type scrash = {
  scrash_core : int;  (* DS-lock server core that crash-stops *)
  scrash_at_ns : float;  (* it stops serving at exactly this instant *)
}

type partition = {
  part_a : int;  (* one endpoint of the partitioned link *)
  part_b : int;  (* the other endpoint (both directions are cut) *)
  part_from_ns : float;
  part_until_ns : float;
}

type plan = {
  link : link_fault option;
  stalls : stall list;
  crashes : crash list;
  scrashes : scrash list;
  parts : partition list;
}

let empty = { link = None; stalls = []; crashes = []; scrashes = []; parts = [] }

let plan_is_empty p =
  p.link = None && p.stalls = [] && p.crashes = [] && p.scrashes = []
  && p.parts = []

type counters = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable reordered : int;  (* reordering spikes injected *)
  mutable partitioned : int;  (* messages held by a link partition *)
  mutable resends : int;  (* requester-side timeout resends *)
  mutable absorbed : int;  (* duplicate requests answered from cache *)
  mutable leases_reclaimed : int;
  mutable crashes : int;
  mutable server_crashes : int;  (* DS-lock servers crash-stopped *)
  mutable replicated : int;  (* lock-table mutations shipped to backups *)
  mutable failovers : int;  (* epoch bumps promoting a backup *)
  mutable stale_rejections : int;  (* stale-epoch requests refused *)
  mutable cache_evicted : int;  (* response-cache entries expired *)
}

type t = {
  mutable plan : plan;
  prng : Prng.t;
  counters : counters;
  crashed : bool array;
  scrashed : bool array;
  mutable on_drop : src:int -> dst:int -> unit;
  mutable on_dup : src:int -> dst:int -> unit;
}

let create ?(plan = empty) ~prng ~n_cores () =
  {
    plan;
    prng;
    counters =
      {
        dropped = 0;
        duplicated = 0;
        delayed = 0;
        reordered = 0;
        partitioned = 0;
        resends = 0;
        absorbed = 0;
        leases_reclaimed = 0;
        crashes = 0;
        server_crashes = 0;
        replicated = 0;
        failovers = 0;
        stale_rejections = 0;
        cache_evicted = 0;
      };
    crashed = Array.make n_cores false;
    scrashed = Array.make n_cores false;
    on_drop = (fun ~src:_ ~dst:_ -> ());
    on_dup = (fun ~src:_ ~dst:_ -> ());
  }

let set_plan t plan = t.plan <- plan

let plan t = t.plan

let counters t = t.counters

let injected t =
  t.counters.dropped + t.counters.duplicated + t.counters.delayed
  + t.counters.reordered + t.counters.partitioned + t.counters.crashes
  + t.counters.server_crashes

type action = Deliver | Drop | Duplicate | Delay of float

let link_active t = t.plan.link <> None

(* One PRNG draw per message, shared across the perturbations so the
   schedule consumes a fixed amount of randomness per send — except a
   reorder, which draws a second value for the spike size (plans with
   reordering are explicitly perturbing). *)
let link_action t ~src ~dst =
  match t.plan.link with
  | None -> Deliver
  | Some lf ->
      let u = Prng.float t.prng in
      if u < lf.drop_pct then begin
        t.counters.dropped <- t.counters.dropped + 1;
        t.on_drop ~src ~dst;
        Drop
      end
      else if u < lf.drop_pct +. lf.dup_pct then begin
        t.counters.duplicated <- t.counters.duplicated + 1;
        t.on_dup ~src ~dst;
        Duplicate
      end
      else if u < lf.drop_pct +. lf.dup_pct +. lf.delay_pct then begin
        t.counters.delayed <- t.counters.delayed + 1;
        Delay lf.delay_ns
      end
      else if u < lf.drop_pct +. lf.dup_pct +. lf.delay_pct +. lf.reorder_pct
      then begin
        t.counters.reordered <- t.counters.reordered + 1;
        Delay (Prng.float t.prng *. lf.reorder_ns)
      end
      else Deliver

let stall_until t ~core ~now =
  (* Checked on every request pickup; with no stall windows planned the
     fold's accumulator closure must not even be allocated. *)
  match t.plan.stalls with
  | [] -> None
  | stalls ->
      List.fold_left
        (fun acc s ->
          if
            s.stall_core = core && now >= s.stall_from_ns
            && now < s.stall_until_ns
          then
            match acc with
            | Some e when e >= s.stall_until_ns -> acc
            | _ -> Some s.stall_until_ns
          else acc)
        None stalls

(* A partition holds messages on the cut link (both directions) until
   the window closes; it never drops them, so delivery stays eventual
   and a healed zombie server sees its queued, now stale-epoch,
   requests. Returns the latest heal instant among the windows
   covering this link at [now]. Pure data lookup, no PRNG draw. *)
let partition_release t ~src ~dst ~now =
  match t.plan.parts with
  | [] -> None
  | parts ->
      List.fold_left
        (fun acc p ->
          if
            ((p.part_a = src && p.part_b = dst)
            || (p.part_a = dst && p.part_b = src))
            && now >= p.part_from_ns && now < p.part_until_ns
          then
            match acc with
            | Some e when e >= p.part_until_ns -> acc
            | _ -> Some p.part_until_ns
          else acc)
        None parts

let count_partitioned t = t.counters.partitioned <- t.counters.partitioned + 1

let crash_due t ~core ~now =
  (core < Array.length t.crashed)
  && (not t.crashed.(core))
  && List.exists
       (fun c -> c.crash_core = core && now >= c.crash_at_ns)
       t.plan.crashes

let mark_crashed t ~core =
  if core < Array.length t.crashed && not t.crashed.(core) then begin
    t.crashed.(core) <- true;
    t.counters.crashes <- t.counters.crashes + 1
  end

let is_crashed t ~core = core < Array.length t.crashed && t.crashed.(core)

let any_crashed t = Array.exists Fun.id t.crashed

let mark_server_crashed t ~core =
  if core < Array.length t.scrashed && not t.scrashed.(core) then begin
    t.scrashed.(core) <- true;
    t.counters.server_crashes <- t.counters.server_crashes + 1
  end

let is_server_crashed t ~core =
  core < Array.length t.scrashed && t.scrashed.(core)

let on_drop t f = t.on_drop <- f

let on_dup t f = t.on_dup <- f

(* Compact spec syntax, round-tripping through [of_spec]:
     none
     drop=0.01,dup=0.02,delay=0.05@2000,reorder=0.1@3000,
       stall=8@1e6+5e5,crash=3@2e6,scrash=4@3e5,part=1-4@1e5+2e5
   Multiple stall=/crash=/scrash=/part= components accumulate; the
   link knobs merge into one [link_fault]. *)
(* [%g] writes big values as "1e+06"; the '+' would collide with the
   stall window's from+duration separator, so normalize exponents to
   the sign-free "1e6" form. *)
let fmt_g f =
  let s = Printf.sprintf "%g" f in
  match String.index_opt s 'e' with
  | None -> s
  | Some i ->
      let mantissa = String.sub s 0 i in
      let e = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      Printf.sprintf "%se%d" mantissa e

let to_spec p =
  if plan_is_empty p then "none"
  else begin
    let b = Buffer.create 64 in
    let add s =
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b s
    in
    (match p.link with
    | None -> ()
    | Some lf ->
        if lf.drop_pct > 0.0 then add (Printf.sprintf "drop=%s" (fmt_g lf.drop_pct));
        if lf.dup_pct > 0.0 then add (Printf.sprintf "dup=%s" (fmt_g lf.dup_pct));
        if lf.delay_pct > 0.0 then
          add (Printf.sprintf "delay=%s@%s" (fmt_g lf.delay_pct) (fmt_g lf.delay_ns));
        if lf.reorder_pct > 0.0 then
          add
            (Printf.sprintf "reorder=%s@%s" (fmt_g lf.reorder_pct)
               (fmt_g lf.reorder_ns)));
    List.iter
      (fun s ->
        add
          (Printf.sprintf "stall=%d@%s+%s" s.stall_core (fmt_g s.stall_from_ns)
             (fmt_g (s.stall_until_ns -. s.stall_from_ns))))
      p.stalls;
    List.iter
      (fun c ->
        add (Printf.sprintf "crash=%d@%s" c.crash_core (fmt_g c.crash_at_ns)))
      p.crashes;
    List.iter
      (fun c ->
        add (Printf.sprintf "scrash=%d@%s" c.scrash_core (fmt_g c.scrash_at_ns)))
      p.scrashes;
    List.iter
      (fun w ->
        add
          (Printf.sprintf "part=%d-%d@%s+%s" w.part_a w.part_b
             (fmt_g w.part_from_ns)
             (fmt_g (w.part_until_ns -. w.part_from_ns))))
      p.parts;
    Buffer.contents b
  end

let known_keys = "drop, dup, delay, reorder, stall, crash, scrash, part"

let of_spec spec =
  let spec = String.trim spec in
  if spec = "" || spec = "none" then Ok empty
  else begin
    let link = ref no_link in
    let link_set = ref false in
    let stalls = ref [] and crashes = ref [] in
    let scrashes = ref [] and parts = ref [] in
    let err = ref None in
    let fail msg = if !err = None then err := Some msg in
    let bad_value part ~expected =
      fail (Printf.sprintf "bad value in fault component %S (expected %s)" part expected)
    in
    let float_of s = match float_of_string_opt s with Some f -> f | None -> Float.nan in
    let int_of s = match int_of_string_opt s with Some i when i >= 0 -> i | _ -> -1 in
    (* The first '@' splits "P@NS"-style values. *)
    let at_split s =
      match String.index_opt s '@' with
      | None -> None
      | Some j ->
          Some (String.sub s 0 j, String.sub s (j + 1) (String.length s - j - 1))
    in
    (* The window separator is the first '+' that is not an exponent
       sign ("1e+06+5e5" still parses as from=1e6, dur=5e5). *)
    let window_split window =
      let n = String.length window in
      let rec go j =
        if j >= n then None
        else if
          window.[j] = '+' && j > 0
          && window.[j - 1] <> 'e'
          && window.[j - 1] <> 'E'
        then
          Some
            ( float_of (String.sub window 0 j),
              float_of (String.sub window (j + 1) (n - j - 1)) )
        else go (j + 1)
      in
      go 0
    in
    List.iter
      (fun part ->
        match String.index_opt part '=' with
        | None ->
            fail
              (Printf.sprintf
                 "bad fault component %S (expected key=value; keys: %s)" part
                 known_keys)
        | Some i -> (
            let key = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            match key with
            | "drop" ->
                let p = float_of v in
                if Float.is_nan p then bad_value part ~expected:"drop=P"
                else (link := { !link with drop_pct = p }; link_set := true)
            | "dup" ->
                let p = float_of v in
                if Float.is_nan p then bad_value part ~expected:"dup=P"
                else (link := { !link with dup_pct = p }; link_set := true)
            | "delay" -> (
                match at_split v with
                | Some (p, ns) ->
                    let p = float_of p and ns = float_of ns in
                    if Float.is_nan p || Float.is_nan ns then
                      bad_value part ~expected:"delay=P@NS"
                    else (link := { !link with delay_pct = p; delay_ns = ns }; link_set := true)
                | None -> bad_value part ~expected:"delay=P@NS")
            | "reorder" -> (
                match at_split v with
                | Some (p, ns) ->
                    let p = float_of p and ns = float_of ns in
                    if Float.is_nan p || Float.is_nan ns then
                      bad_value part ~expected:"reorder=P@NS"
                    else (
                      link := { !link with reorder_pct = p; reorder_ns = ns };
                      link_set := true)
                | None -> bad_value part ~expected:"reorder=P@NS")
            | "stall" -> (
                match at_split v with
                | Some (core, window) -> (
                    match window_split window with
                    | Some (from, dur) ->
                        let core = int_of core in
                        if core < 0 || Float.is_nan from || Float.is_nan dur then
                          bad_value part ~expected:"stall=CORE@FROM+DUR"
                        else
                          stalls :=
                            {
                              stall_core = core;
                              stall_from_ns = from;
                              stall_until_ns = from +. dur;
                            }
                            :: !stalls
                    | None -> bad_value part ~expected:"stall=CORE@FROM+DUR")
                | None -> bad_value part ~expected:"stall=CORE@FROM+DUR")
            | "crash" -> (
                match at_split v with
                | Some (core, at) ->
                    let core = int_of core and at = float_of at in
                    if core < 0 || Float.is_nan at then
                      bad_value part ~expected:"crash=CORE@AT"
                    else crashes := { crash_core = core; crash_at_ns = at } :: !crashes
                | None -> bad_value part ~expected:"crash=CORE@AT")
            | "scrash" -> (
                match at_split v with
                | Some (core, at) ->
                    let core = int_of core and at = float_of at in
                    if core < 0 || Float.is_nan at then
                      bad_value part ~expected:"scrash=CORE@AT"
                    else
                      scrashes :=
                        { scrash_core = core; scrash_at_ns = at } :: !scrashes
                | None -> bad_value part ~expected:"scrash=CORE@AT")
            | "part" -> (
                let expected = "part=A-B@FROM+DUR" in
                match at_split v with
                | Some (link_s, window) -> (
                    let endpoints =
                      match String.index_opt link_s '-' with
                      | None -> None
                      | Some j ->
                          let a = int_of (String.sub link_s 0 j) in
                          let b =
                            int_of
                              (String.sub link_s (j + 1)
                                 (String.length link_s - j - 1))
                          in
                          if a < 0 || b < 0 then None else Some (a, b)
                    in
                    match (endpoints, window_split window) with
                    | Some (a, b), Some (from, dur)
                      when (not (Float.is_nan from)) && not (Float.is_nan dur) ->
                        parts :=
                          {
                            part_a = a;
                            part_b = b;
                            part_from_ns = from;
                            part_until_ns = from +. dur;
                          }
                          :: !parts
                    | _ -> bad_value part ~expected)
                | None -> bad_value part ~expected)
            | _ ->
                fail
                  (Printf.sprintf "unknown fault key %S in %S (expected one of: %s)"
                     key part known_keys)))
      (String.split_on_char ',' spec);
    match !err with
    | Some e -> Error e
    | None ->
        Ok
          {
            link = (if !link_set then Some !link else None);
            stalls = List.rev !stalls;
            crashes = List.rev !crashes;
            scrashes = List.rev !scrashes;
            parts = List.rev !parts;
          }
  end
