(* Deterministic fault-injection plans for the simulated substrate.

   A [plan] is pure data: per-link message perturbations (drop,
   duplication, bounded delay spikes), DS-server stall windows, and
   crash-stop points for chosen cores. A [t] pairs a plan with its own
   PRNG stream (derived via [Prng.split_label], so the stream's mere
   existence never perturbs baseline schedules) plus counters and the
   crashed-core table. An empty plan draws nothing from the PRNG, which
   is what makes "faults enabled, plan empty" bit-for-bit identical to
   a run that never heard of faults.

   The network applies [link_action] per message; the DTM service loop
   consults [stall_until]; the transaction layer polls [crash_due] at
   operation boundaries. Trace emission lives above this layer: the
   runtime installs [on_drop]/[on_dup] callbacks since this library
   cannot see the tm2c event type. *)

open Tm2c_engine

type link_fault = {
  drop_pct : float;  (* probability a message is silently lost *)
  dup_pct : float;  (* probability a message is delivered twice *)
  delay_pct : float;  (* probability of a delay spike *)
  delay_ns : float;  (* size of the spike, virtual ns *)
}

type stall = {
  stall_core : int;  (* DS-server core that stops serving *)
  stall_from_ns : float;
  stall_until_ns : float;
}

type crash = {
  crash_core : int;  (* app core that crash-stops *)
  crash_at_ns : float;  (* first operation boundary at/after this dies *)
}

type plan = {
  link : link_fault option;
  stalls : stall list;
  crashes : crash list;
}

let empty = { link = None; stalls = []; crashes = [] }

let plan_is_empty p = p.link = None && p.stalls = [] && p.crashes = []

type counters = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable resends : int;  (* requester-side timeout resends *)
  mutable absorbed : int;  (* duplicate requests answered from cache *)
  mutable leases_reclaimed : int;
  mutable crashes : int;
}

type t = {
  mutable plan : plan;
  prng : Prng.t;
  counters : counters;
  crashed : bool array;
  mutable on_drop : src:int -> dst:int -> unit;
  mutable on_dup : src:int -> dst:int -> unit;
}

let create ?(plan = empty) ~prng ~n_cores () =
  {
    plan;
    prng;
    counters =
      {
        dropped = 0;
        duplicated = 0;
        delayed = 0;
        resends = 0;
        absorbed = 0;
        leases_reclaimed = 0;
        crashes = 0;
      };
    crashed = Array.make n_cores false;
    on_drop = (fun ~src:_ ~dst:_ -> ());
    on_dup = (fun ~src:_ ~dst:_ -> ());
  }

let set_plan t plan = t.plan <- plan

let plan t = t.plan

let counters t = t.counters

let injected t =
  t.counters.dropped + t.counters.duplicated + t.counters.delayed
  + t.counters.crashes

type action = Deliver | Drop | Duplicate | Delay of float

let link_active t = t.plan.link <> None

(* One PRNG draw per message, shared across the three perturbations so
   the schedule consumes a fixed amount of randomness per send. *)
let link_action t ~src ~dst =
  match t.plan.link with
  | None -> Deliver
  | Some lf ->
      let u = Prng.float t.prng in
      if u < lf.drop_pct then begin
        t.counters.dropped <- t.counters.dropped + 1;
        t.on_drop ~src ~dst;
        Drop
      end
      else if u < lf.drop_pct +. lf.dup_pct then begin
        t.counters.duplicated <- t.counters.duplicated + 1;
        t.on_dup ~src ~dst;
        Duplicate
      end
      else if u < lf.drop_pct +. lf.dup_pct +. lf.delay_pct then begin
        t.counters.delayed <- t.counters.delayed + 1;
        Delay lf.delay_ns
      end
      else Deliver

let stall_until t ~core ~now =
  List.fold_left
    (fun acc s ->
      if s.stall_core = core && now >= s.stall_from_ns && now < s.stall_until_ns
      then
        match acc with
        | Some e when e >= s.stall_until_ns -> acc
        | _ -> Some s.stall_until_ns
      else acc)
    None t.plan.stalls

let crash_due t ~core ~now =
  (core < Array.length t.crashed)
  && (not t.crashed.(core))
  && List.exists
       (fun c -> c.crash_core = core && now >= c.crash_at_ns)
       t.plan.crashes

let mark_crashed t ~core =
  if core < Array.length t.crashed && not t.crashed.(core) then begin
    t.crashed.(core) <- true;
    t.counters.crashes <- t.counters.crashes + 1
  end

let is_crashed t ~core = core < Array.length t.crashed && t.crashed.(core)

let any_crashed t = Array.exists Fun.id t.crashed

let on_drop t f = t.on_drop <- f

let on_dup t f = t.on_dup <- f

(* Compact spec syntax, round-tripping through [of_spec]:
     none
     drop=0.01,dup=0.02,delay=0.05@2000,stall=8@1e6+5e5,crash=3@2e6
   Multiple stall=/crash= components accumulate; the three link knobs
   merge into one [link_fault] (delay defaults to 0 spike-ns unless
   given as P@NS). *)
(* [%g] writes big values as "1e+06"; the '+' would collide with the
   stall window's from+duration separator, so normalize exponents to
   the sign-free "1e6" form. *)
let fmt_g f =
  let s = Printf.sprintf "%g" f in
  match String.index_opt s 'e' with
  | None -> s
  | Some i ->
      let mantissa = String.sub s 0 i in
      let e = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      Printf.sprintf "%se%d" mantissa e

let to_spec p =
  if plan_is_empty p then "none"
  else begin
    let b = Buffer.create 64 in
    let add s =
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b s
    in
    (match p.link with
    | None -> ()
    | Some lf ->
        if lf.drop_pct > 0.0 then add (Printf.sprintf "drop=%s" (fmt_g lf.drop_pct));
        if lf.dup_pct > 0.0 then add (Printf.sprintf "dup=%s" (fmt_g lf.dup_pct));
        if lf.delay_pct > 0.0 then
          add (Printf.sprintf "delay=%s@%s" (fmt_g lf.delay_pct) (fmt_g lf.delay_ns)));
    List.iter
      (fun s ->
        add
          (Printf.sprintf "stall=%d@%s+%s" s.stall_core (fmt_g s.stall_from_ns)
             (fmt_g (s.stall_until_ns -. s.stall_from_ns))))
      p.stalls;
    List.iter
      (fun c ->
        add (Printf.sprintf "crash=%d@%s" c.crash_core (fmt_g c.crash_at_ns)))
      p.crashes;
    Buffer.contents b
  end

let of_spec spec =
  let spec = String.trim spec in
  if spec = "" || spec = "none" then Ok empty
  else begin
    let link = ref { drop_pct = 0.0; dup_pct = 0.0; delay_pct = 0.0; delay_ns = 0.0 } in
    let link_set = ref false in
    let stalls = ref [] and crashes = ref [] in
    let err = ref None in
    let fail part = if !err = None then err := Some (Printf.sprintf "bad fault component %S" part) in
    let float_of s = match float_of_string_opt s with Some f -> f | None -> Float.nan in
    let int_of s = match int_of_string_opt s with Some i -> i | None -> -1 in
    List.iter
      (fun part ->
        match String.index_opt part '=' with
        | None -> fail part
        | Some i -> (
            let key = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            let at_split s =
              match String.index_opt s '@' with
              | None -> None
              | Some j ->
                  Some (String.sub s 0 j, String.sub s (j + 1) (String.length s - j - 1))
            in
            match key with
            | "drop" ->
                let p = float_of v in
                if Float.is_nan p then fail part
                else (link := { !link with drop_pct = p }; link_set := true)
            | "dup" ->
                let p = float_of v in
                if Float.is_nan p then fail part
                else (link := { !link with dup_pct = p }; link_set := true)
            | "delay" -> (
                match at_split v with
                | Some (p, ns) ->
                    let p = float_of p and ns = float_of ns in
                    if Float.is_nan p || Float.is_nan ns then fail part
                    else (link := { !link with delay_pct = p; delay_ns = ns }; link_set := true)
                | None -> fail part)
            | "stall" -> (
                match at_split v with
                | Some (core, window) -> (
                    (* the window separator is the first '+' that is
                       not an exponent sign ("1e+06+5e5" still parses) *)
                    let sep =
                      let n = String.length window in
                      let rec go j =
                        if j >= n then None
                        else if
                          window.[j] = '+' && j > 0
                          && window.[j - 1] <> 'e'
                          && window.[j - 1] <> 'E'
                        then Some j
                        else go (j + 1)
                      in
                      go 0
                    in
                    match sep with
                    | Some j ->
                        let from = String.sub window 0 j in
                        let dur =
                          String.sub window (j + 1) (String.length window - j - 1)
                        in
                        let core = int_of core
                        and from = float_of from
                        and dur = float_of dur in
                        if core < 0 || Float.is_nan from || Float.is_nan dur then
                          fail part
                        else
                          stalls :=
                            {
                              stall_core = core;
                              stall_from_ns = from;
                              stall_until_ns = from +. dur;
                            }
                            :: !stalls
                    | None -> fail part)
                | None -> fail part)
            | "crash" -> (
                match at_split v with
                | Some (core, at) ->
                    let core = int_of core and at = float_of at in
                    if core < 0 || Float.is_nan at then fail part
                    else crashes := { crash_core = core; crash_at_ns = at } :: !crashes
                | None -> fail part)
            | _ -> fail part))
      (String.split_on_char ',' spec);
    match !err with
    | Some e -> Error e
    | None ->
        Ok
          {
            link = (if !link_set then Some !link else None);
            stalls = List.rev !stalls;
            crashes = List.rev !crashes;
          }
  end
