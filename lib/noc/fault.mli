(** Deterministic fault-injection plans for the simulated substrate.

    A {!plan} describes per-link message perturbations (drop,
    duplication, bounded delay spikes), DS-server stall windows, and
    crash-stop points — all in virtual time. A {!t} pairs the plan
    with its own PRNG stream (give it a [Prng.split_label] child so
    enabling faults with an empty plan reproduces baseline schedules
    bit-for-bit), injection counters, and the crashed-core table. *)

type link_fault = {
  drop_pct : float;  (** probability a message is silently lost *)
  dup_pct : float;  (** probability a message is delivered twice *)
  delay_pct : float;  (** probability of a delay spike *)
  delay_ns : float;  (** size of the spike, virtual ns *)
}

type stall = {
  stall_core : int;  (** DS-server core that stops serving *)
  stall_from_ns : float;
  stall_until_ns : float;
}

type crash = {
  crash_core : int;  (** app core that crash-stops *)
  crash_at_ns : float;  (** first operation boundary at/after this dies *)
}

type plan = {
  link : link_fault option;
  stalls : stall list;
  crashes : crash list;
}

val empty : plan

val plan_is_empty : plan -> bool

type counters = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable resends : int;  (** requester-side timeout resends *)
  mutable absorbed : int;  (** duplicate requests answered from cache *)
  mutable leases_reclaimed : int;
  mutable crashes : int;
}

type t

val create : ?plan:plan -> prng:Tm2c_engine.Prng.t -> n_cores:int -> unit -> t

val set_plan : t -> plan -> unit

val plan : t -> plan

val counters : t -> counters

(** Total injections: drops + duplications + delay spikes + crashes. *)
val injected : t -> int

(** Per-message verdict from the link fault, if any. Draws exactly one
    PRNG value per message when a link fault is configured, none
    otherwise. Counts the injection and fires the corresponding
    callback. *)
type action = Deliver | Drop | Duplicate | Delay of float

val link_active : t -> bool

val link_action : t -> src:int -> dst:int -> action

(** End of the stall window enclosing [now] for [core], if stalled. *)
val stall_until : t -> core:int -> now:float -> float option

(** The plan says [core] should be dead by [now] and it has not been
    marked crashed yet. *)
val crash_due : t -> core:int -> now:float -> bool

val mark_crashed : t -> core:int -> unit

val is_crashed : t -> core:int -> bool

val any_crashed : t -> bool

(** Trace hooks fired by {!link_action}; installed by the runtime
    (this library cannot see the tm2c event type). *)
val on_drop : t -> (src:int -> dst:int -> unit) -> unit

val on_dup : t -> (src:int -> dst:int -> unit) -> unit

(** Compact plan syntax, e.g.
    ["drop=0.01,dup=0.02,delay=0.05@2000,stall=8@1e6+5e5,crash=3@2e6"];
    ["none"] is the empty plan. [to_spec] output parses back to the
    same plan. *)
val to_spec : plan -> string

val of_spec : string -> (plan, string) result
