(** Deterministic fault-injection plans for the simulated substrate.

    A {!plan} describes per-link message perturbations (drop,
    duplication, bounded delay spikes, bounded reordering), DS-server
    stall windows, crash-stop points for application cores and for
    DS-lock servers, and temporary link partitions — all in virtual
    time. A {!t} pairs the plan with its own PRNG stream (give it a
    [Prng.split_label] child so enabling faults with an empty plan
    reproduces baseline schedules bit-for-bit), injection counters,
    and the crashed-core tables. *)

type link_fault = {
  drop_pct : float;  (** probability a message is silently lost *)
  dup_pct : float;  (** probability a message is delivered twice *)
  delay_pct : float;  (** probability of a delay spike *)
  delay_ns : float;  (** size of the spike, virtual ns *)
  reorder_pct : float;  (** probability of a reordering spike *)
  reorder_ns : float;
      (** bound of the uniform extra delay drawn when a reorder fires
          (later messages on the link may overtake this one) *)
}

(** All-zero link fault, for building plans by record update. *)
val no_link : link_fault

type stall = {
  stall_core : int;  (** DS-server core that stops serving *)
  stall_from_ns : float;
  stall_until_ns : float;
}

type crash = {
  crash_core : int;  (** app core that crash-stops *)
  crash_at_ns : float;  (** first operation boundary at/after this dies *)
}

type scrash = {
  scrash_core : int;  (** DS-lock server core that crash-stops *)
  scrash_at_ns : float;  (** it stops serving at exactly this instant *)
}

type partition = {
  part_a : int;  (** one endpoint of the partitioned link *)
  part_b : int;  (** the other endpoint (both directions are cut) *)
  part_from_ns : float;
  part_until_ns : float;
}

type plan = {
  link : link_fault option;
  stalls : stall list;
  crashes : crash list;
  scrashes : scrash list;
  parts : partition list;
}

val empty : plan

val plan_is_empty : plan -> bool

type counters = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable reordered : int;  (** reordering spikes injected *)
  mutable partitioned : int;  (** messages held by a link partition *)
  mutable resends : int;  (** requester-side timeout resends *)
  mutable absorbed : int;  (** duplicate requests answered from cache *)
  mutable leases_reclaimed : int;
  mutable crashes : int;
  mutable server_crashes : int;  (** DS-lock servers crash-stopped *)
  mutable replicated : int;
      (** lock-table mutations shipped to backup cores *)
  mutable failovers : int;  (** epoch bumps promoting a backup *)
  mutable stale_rejections : int;  (** stale-epoch requests refused *)
  mutable cache_evicted : int;  (** response-cache entries expired *)
}

type t

val create : ?plan:plan -> prng:Tm2c_engine.Prng.t -> n_cores:int -> unit -> t

val set_plan : t -> plan -> unit

val plan : t -> plan

val counters : t -> counters

(** Total injections: drops + duplications + delay spikes + reorders +
    partition holds + app-core crashes + server crashes. *)
val injected : t -> int

(** Per-message verdict from the link fault, if any. Draws exactly one
    PRNG value per message when a link fault is configured (plus one
    more for the spike size when a reorder fires), none otherwise.
    Counts the injection and fires the corresponding callback. *)
type action = Deliver | Drop | Duplicate | Delay of float

val link_active : t -> bool

val link_action : t -> src:int -> dst:int -> action

(** End of the stall window enclosing [now] for [core], if stalled. *)
val stall_until : t -> core:int -> now:float -> float option

(** Heal instant of the partition window covering the [src]-[dst] link
    at [now], if the link is cut. Partitions hold messages (delivery
    is delayed to the heal, never dropped); the network counts each
    held message via {!count_partitioned}. No PRNG draw. *)
val partition_release : t -> src:int -> dst:int -> now:float -> float option

val count_partitioned : t -> unit

(** The plan says [core] should be dead by [now] and it has not been
    marked crashed yet. *)
val crash_due : t -> core:int -> now:float -> bool

val mark_crashed : t -> core:int -> unit

val is_crashed : t -> core:int -> bool

val any_crashed : t -> bool

(** DS-lock server crash-stop, kept separate from the app-core table:
    the runtime schedules {!mark_server_crashed} at each planned
    [scrash_at_ns]; the service loop dies at its next wakeup once
    {!is_server_crashed} holds. *)
val mark_server_crashed : t -> core:int -> unit

val is_server_crashed : t -> core:int -> bool

(** Trace hooks fired by {!link_action}; installed by the runtime
    (this library cannot see the tm2c event type). *)
val on_drop : t -> (src:int -> dst:int -> unit) -> unit

val on_dup : t -> (src:int -> dst:int -> unit) -> unit

(** Compact plan syntax, e.g.
    ["drop=0.01,dup=0.02,delay=0.05@2000,reorder=0.1@3000,stall=8@1e6+5e5,crash=3@2e6,scrash=4@3e5,part=1-4@1e5+2e5"];
    ["none"] is the empty plan. [to_spec] output parses back to the
    same plan. [of_spec] rejects unknown keys and malformed values
    with an error naming the offending component and the expected
    form. *)
val to_spec : plan -> string

val of_spec : string -> (plan, string) result
