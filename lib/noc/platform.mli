(** Platform models: the Intel SCC under its five performance settings
    (Section 5.1 of the paper) and the 48-core AMD Opteron multi-core
    used by Section 7.

    All message- and memory-latency parameters are calibrated against
    the figures reported in the paper: a round-trip message costs
    5.1 us on 2 SCC cores and 12.4 us on 48 (Fig. 8a), shared memory
    accesses are faster than message deliveries (Section 6.2), and the
    multi-core's channels beat the SCC at low core counts but scale
    worse than SCC800 (Fig. 8a). *)

(** Per-core data cache model used on the cache-coherent multi-core:
    reads of shared memory hit a private cache unless another core
    wrote the word since it was cached. *)
type cache_model = {
  capacity_words : int;  (** private cache capacity, in 8-byte words *)
  hit_ns : float;  (** latency of a cache hit *)
}

type t = {
  name : string;
  topology : Topology.t;
  core_hz : float;  (** core clock: compute-cycle cost conversion *)
  msg_send_cycles : int;  (** software cycles spent by the sender *)
  msg_recv_cycles : int;  (** software cycles spent by the receiver *)
  msg_hop_ns : float;  (** per mesh hop wire latency *)
  msg_poll_per_core_ns : float;
      (** detection latency: the receiver scans one flag per
          potentially-sending core, so delivery latency grows linearly
          with the number of active cores (Fig. 8a's scaling) *)
  mem_base_ns : float;  (** shared-memory access, excluding hops *)
  mem_hop_ns : float;  (** per hop to the responsible memory controller *)
  mem_write_ns : float;  (** posted (fire-and-forget) write cost *)
  mem_service_ns : float;
      (** memory-controller occupancy per access: concurrent accesses
          to one controller queue behind each other (the "memory
          congestion" of Section 6.2 and the single-controller
          bandwidth limit noted in Section 5.2) *)
  tas_ns : float;  (** remote atomic test-and-set register access *)
  cache : cache_model option;  (** [Some _] only on coherent platforms *)
}

(** SCC performance settings, indexed 0-4 exactly as the Section 5.1
    table: (tile MHz, mesh MHz, DRAM MHz). *)
val scc_settings : (int * int * int) array

(** [scc_setting i] builds the SCC under performance setting [i];
    raises [Invalid_argument] for [i] outside 0-4. *)
val scc_setting : int -> t

(** SCC under the recommended setting 0 (533/800/800); the platform of
    Sections 5 and 6. *)
val scc : t

(** SCC under setting 1 (800/1600/1066): "SCC800" in Section 7. *)
val scc800 : t

(** [scc_mesh ~cols ~rows] is an SCC-parameter platform scaled out to a
    [cols] x [rows] mesh of 2-core tiles ([2 * cols * rows] cores):
    the substrate for beyond-chip simulations (e.g. 512 or 1024 cores).
    Raises [Invalid_argument] unless both dimensions are at least 1. *)
val scc_mesh : cols:int -> rows:int -> t

(** The 48-core 2.1 GHz AMD Opteron multi-core with Barrelfish-style
    cache-line message channels and hardware cache coherence. *)
val opteron : t

(** All three evaluation platforms, in paper order. *)
val all : t list

val n_cores : t -> int

(** [cycles_ns p c] converts [c] core cycles into nanoseconds. *)
val cycles_ns : t -> int -> float

(** One-way message latency from [src] to [dst] when [active] cores
    are exchanging messages: software send cost + wire + detection.
    The sender-side and receiver-side software shares are exposed
    separately by {!send_overhead_ns} and {!recv_overhead_ns}. *)
val one_way_ns : t -> active:int -> src:int -> dst:int -> float

val send_overhead_ns : t -> float

val recv_overhead_ns : t -> float

(** In-flight part of a message: hops + polling detection. *)
val flight_ns : t -> active:int -> src:int -> dst:int -> float

(** Shared-memory read latency for [core] accessing an address served
    by memory controller [mc] (cache misses; hits are [cache.hit_ns]). *)
val mem_read_ns : t -> core:int -> mc:int -> float

val mem_write_ns : t -> core:int -> mc:int -> float

val pp : Format.formatter -> t -> unit
