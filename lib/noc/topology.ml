type t =
  | Mesh of { cols : int; rows : int; cores_per_tile : int }
  | Flat of { n_cores : int }

let scc = Mesh { cols = 6; rows = 4; cores_per_tile = 2 }

let opteron48 = Flat { n_cores = 48 }

let n_cores = function
  | Mesh { cols; rows; cores_per_tile } -> cols * rows * cores_per_tile
  | Flat { n_cores } -> n_cores

let core_tile t core =
  match t with
  | Mesh { cores_per_tile; _ } -> core / cores_per_tile
  | Flat _ -> 0

let tile_coords t tile =
  match t with
  | Mesh { cols; _ } -> (tile mod cols, tile / cols)
  | Flat _ -> (0, 0)

let hops t a b =
  match t with
  | Flat _ -> 0
  | Mesh _ ->
      let ta = core_tile t a and tb = core_tile t b in
      if ta = tb then 0
      else begin
        let xa, ya = tile_coords t ta and xb, yb = tile_coords t tb in
        abs (xa - xb) + abs (ya - yb)
      end

let n_memory_controllers _ = 4

(* On the SCC the four memory controllers sit at the mesh periphery:
   two on the west edge (rows 0 and 2) and two on the east edge. We
   attach them to the corner-ish tiles (0,0), (5,0), (0,3), (5,3). *)
let mc_tile_coords t mc =
  match t with
  | Flat _ -> (0, 0)
  | Mesh { cols; rows; _ } -> (
      match mc land 3 with
      | 0 -> (0, 0)
      | 1 -> (cols - 1, 0)
      | 2 -> (0, rows - 1)
      | _ -> (cols - 1, rows - 1))

let hops_to_mc t ~core ~mc =
  match t with
  | Flat _ -> 0
  | Mesh _ ->
      let x, y = tile_coords t (core_tile t core) in
      let mx, my = mc_tile_coords t mc in
      abs (x - mx) + abs (y - my)

let mean_hops t =
  let n = n_cores t in
  let total = ref 0 and pairs = ref 0 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then begin
        total := !total + hops t a b;
        incr pairs
      end
    done
  done;
  if !pairs = 0 then 0.0 else float_of_int !total /. float_of_int !pairs
