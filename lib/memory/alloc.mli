(** Size-classed free-list allocator over a {!Shmem} region.

    The allocator metadata lives host-side (the SCC applications keep
    theirs in private memory); only payload words occupy simulated
    shared memory. Freed blocks are reused FIFO per size class, which
    delays address reuse and so reduces ABA exposure for elastic-read
    validation (see DESIGN.md). Allocation itself is untimed — callers
    charge compute cycles as part of their operation cost. *)

type t

(** [create shmem ~base ~limit] manages addresses [base..base+limit-1].
    [base] must be >= 1 (address 0 is the null pointer). *)
val create : Shmem.t -> base:int -> limit:int -> t

(** [alloc t ~words] returns the base address of a fresh block.
    Raises [Out_of_memory] when the region is exhausted. *)
val alloc : t -> words:int -> Shmem.addr

(** [free t addr ~words] recycles a block previously obtained from
    [alloc] with the same size. *)
val free : t -> Shmem.addr -> words:int -> unit

(** Words currently handed out. *)
val live_words : t -> int
