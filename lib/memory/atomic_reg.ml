open Tm2c_engine
open Tm2c_noc

type t = { sim : Sim.t; platform : Platform.t; regs : int array }

let create sim platform ~count = { sim; platform; regs = Array.make count 0 }

let count t = Array.length t.regs

let charge t = Sim.delay t.platform.Platform.tas_ns

let read t ~core:_ ~reg =
  charge t;
  t.regs.(reg)

let write t ~core:_ ~reg v =
  charge t;
  t.regs.(reg) <- v

let tas t ~core:_ ~reg =
  charge t;
  let old = t.regs.(reg) in
  t.regs.(reg) <- 1;
  old = 0

let cas t ~core:_ ~reg ~expect ~repl =
  charge t;
  if t.regs.(reg) = expect then begin
    t.regs.(reg) <- repl;
    true
  end
  else false

let peek t ~reg = t.regs.(reg)

let poke t ~reg v = t.regs.(reg) <- v
