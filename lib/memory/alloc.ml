type t = {
  base : int;
  limit : int;
  mutable next : int;
  free_lists : (int, Shmem.addr Queue.t) Hashtbl.t;
  mutable live : int;
}

let create _shmem ~base ~limit =
  if base < 1 then invalid_arg "Alloc.create: base must be >= 1";
  { base; limit; next = base; free_lists = Hashtbl.create 8; live = 0 }

let free_list t words =
  match Hashtbl.find_opt t.free_lists words with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.free_lists words q;
      q

let alloc t ~words =
  if words <= 0 then invalid_arg "Alloc.alloc: words must be > 0";
  t.live <- t.live + words;
  let q = free_list t words in
  match Queue.take_opt q with
  | Some addr -> addr
  | None ->
      if t.next + words > t.base + t.limit then raise Out_of_memory;
      let addr = t.next in
      t.next <- t.next + words;
      addr

let free t addr ~words =
  t.live <- t.live - words;
  Queue.push addr (free_list t words)

let live_words t = t.live
