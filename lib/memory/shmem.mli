(** Simulated shared memory.

    A word-addressed (64-bit) non-coherent shared memory served by the
    platform's memory controllers. Addresses are plain ints; address 0
    is reserved as the null pointer. Each access from a simulated core
    charges the platform's memory latency (distance to the responsible
    controller included).

    On cache-coherent platforms ([Platform.cache = Some _]) reads hit a
    bounded private per-core cache unless another core wrote the word
    since it was cached (modeled with per-word version stamps — an
    idealized invalidation-based coherence protocol). *)

type addr = int

type t

(** [create sim platform ~words] allocates a memory of [words] words,
    all zero. *)
val create : Tm2c_engine.Sim.t -> Tm2c_noc.Platform.t -> words:int -> t

val words : t -> int

(** Memory controller responsible for an address: addresses are
    distributed over the controllers in large contiguous regions, so a
    compact structure lives in a single controller (Section 5.2 notes
    the initial hash table occupies one of the four controllers). *)
val mc_of_addr : t -> addr -> int

(** Timed access from a simulated core (charges latency). *)
val read : t -> core:int -> addr -> int

val write : t -> core:int -> addr -> int -> unit

(** [write_burst t ~core pairs] applies a write set atomically in
    simulated time: the data is visible immediately and the cumulative
    store latency is charged as a single delay. For a transaction's
    post-linearization write-back — per-store [write]s yield between
    stores, so a run horizon could freeze the fiber with the write set
    half applied. *)
val write_burst : t -> core:int -> (addr * int) list -> unit

(** Untimed host-side access, for setup and for checking invariants
    after a run. *)
val peek : t -> addr -> int

val poke : t -> addr -> int -> unit

(** Total timed reads/writes performed (for reports). *)
val n_reads : t -> int

val n_writes : t -> int
