(** Globally accessible atomic registers.

    The SCC exposes one test-and-set register per core; TM2C uses them
    for the lock-based baseline and (in this implementation) for the
    attempt-stamped transaction status words that linearize
    abort-versus-commit races (see DESIGN.md: a CAS is implementable
    on the SCC with a TAS-guarded status byte; we charge a single
    register-access latency for it). *)

type t

(** [create sim platform ~count] builds [count] registers, all zero. *)
val create : Tm2c_engine.Sim.t -> Tm2c_noc.Platform.t -> count:int -> t

val count : t -> int

(** Timed atomic read. *)
val read : t -> core:int -> reg:int -> int

(** Timed atomic write. *)
val write : t -> core:int -> reg:int -> int -> unit

(** Test-and-set: atomically sets the register to 1 and returns [true]
    iff it was 0 (i.e. the caller acquired it). *)
val tas : t -> core:int -> reg:int -> bool

(** Compare-and-swap; returns [true] on success. *)
val cas : t -> core:int -> reg:int -> expect:int -> repl:int -> bool

(** Untimed host-side inspection. *)
val peek : t -> reg:int -> int

val poke : t -> reg:int -> int -> unit
