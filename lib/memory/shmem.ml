open Tm2c_engine
open Tm2c_noc

type addr = int

(* Private per-core cache: FIFO-bounded map from address to the word
   version observed when cached. An entry is valid iff its version
   still matches the word's current version. *)
type cache = {
  entries : (addr, int) Hashtbl.t;
  fifo : addr Queue.t;
  capacity : int;
}

type t = {
  sim : Sim.t;
  platform : Platform.t;
  data : int array;
  versions : int array;
  caches : cache array option;
  region_shift : int;
  mc_busy : float array;  (* per-controller queue: busy-until time *)
  mutable reads : int;
  mutable writes : int;
}

let create sim platform ~words =
  let caches =
    match platform.Platform.cache with
    | None -> None
    | Some { Platform.capacity_words; _ } ->
        let make _ =
          { entries = Hashtbl.create 1024; fifo = Queue.create (); capacity = capacity_words }
        in
        Some (Array.init (Platform.n_cores platform) make)
  in
  (* Regions of 64 Ki words (512 KB) per controller stripe: big enough
     that a compact structure stays within one controller. *)
  {
    sim;
    platform;
    data = Array.make words 0;
    versions = Array.make words 0;
    caches;
    region_shift = 16;
    mc_busy = Array.make (Topology.n_memory_controllers platform.Platform.topology) 0.0;
    reads = 0;
    writes = 0;
  }

let words t = Array.length t.data

let mc_of_addr t addr =
  (addr lsr t.region_shift) land (Topology.n_memory_controllers t.platform.Platform.topology - 1)

(* Concurrent accesses to the same controller serialize: reserve a
   service slot and fold the queueing delay into this access. *)
let mc_queue_delay t mc =
  let now = Sim.now t.sim in
  let start = Float.max now t.mc_busy.(mc) in
  t.mc_busy.(mc) <- start +. t.platform.Platform.mem_service_ns;
  start -. now

let cache_lookup c t addr =
  match Hashtbl.find_opt c.entries addr with
  | Some v when v = t.versions.(addr) -> true
  | Some _ ->
      Hashtbl.remove c.entries addr;
      false
  | None -> false

let cache_insert c addr version =
  if not (Hashtbl.mem c.entries addr) then begin
    Queue.push addr c.fifo;
    if Queue.length c.fifo > c.capacity then begin
      let victim = Queue.pop c.fifo in
      Hashtbl.remove c.entries victim
    end
  end;
  Hashtbl.replace c.entries addr version

let read t ~core addr =
  t.reads <- t.reads + 1;
  let mc = mc_of_addr t addr in
  let latency =
    match t.caches with
    | Some caches when cache_lookup caches.(core) t addr -> (
        match t.platform.Platform.cache with
        | Some { Platform.hit_ns; _ } -> hit_ns
        | None -> assert false)
    | Some caches ->
        cache_insert caches.(core) addr t.versions.(addr);
        mc_queue_delay t mc +. Platform.mem_read_ns t.platform ~core ~mc
    | None -> mc_queue_delay t mc +. Platform.mem_read_ns t.platform ~core ~mc
  in
  Sim.delay latency;
  t.data.(addr)

let write t ~core addr v =
  t.writes <- t.writes + 1;
  let mc = mc_of_addr t addr in
  Sim.delay (mc_queue_delay t mc +. Platform.mem_write_ns t.platform ~core ~mc);
  t.data.(addr) <- v;
  t.versions.(addr) <- t.versions.(addr) + 1;
  (* The writer keeps its own copy valid (write-through). *)
  match t.caches with
  | Some caches -> cache_insert caches.(core) addr t.versions.(addr)
  | None -> ()

(* A transaction's write-back after its linearization point must be
   atomic in simulated time: applying the stores one [write] at a time
   yields between them, and a run horizon can freeze the fiber halfway
   through — half-applied write sets break atomicity for everyone
   else. Apply the data immediately, then charge the cumulative memory
   latency of all the stores as one delay. *)
let write_burst t ~core pairs =
  let latency =
    List.fold_left
      (fun acc (addr, v) ->
        t.writes <- t.writes + 1;
        let mc = mc_of_addr t addr in
        let d = mc_queue_delay t mc +. Platform.mem_write_ns t.platform ~core ~mc in
        t.data.(addr) <- v;
        t.versions.(addr) <- t.versions.(addr) + 1;
        (match t.caches with
        | Some caches -> cache_insert caches.(core) addr t.versions.(addr)
        | None -> ());
        acc +. d)
      0.0 pairs
  in
  if pairs <> [] then Sim.delay latency

let peek t addr = t.data.(addr)

let poke t addr v =
  t.data.(addr) <- v;
  t.versions.(addr) <- t.versions.(addr) + 1

let n_reads t = t.reads

let n_writes t = t.writes
