(* Power-of-two-bucketed histogram for non-negative measurements
   (latencies in ns, queue depths, ...). Bucket [i] covers
   [2^(i-1), 2^i) with bucket 0 holding everything below 1.0; the last
   bucket absorbs the tail. Adding a sample is a few arithmetic ops
   and two array writes — cheap enough to stay always-on in the
   network hot path. *)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let default_buckets = 40

let create ?(buckets = default_buckets) () =
  if buckets < 1 then invalid_arg "Histogram.create: need at least one bucket";
  { counts = Array.make buckets 0; n = 0; sum = 0.0; min = infinity; max = neg_infinity }

(* Binary exponent of [v >= 1.0] — [Float.frexp]'s second component —
   without frexp's per-call tuple allocation: scale down by exact
   powers of two (exact multiplications, so the exponent matches frexp
   bit-for-bit) in a self-tail-recursive loop that keeps the float in a
   register. *)
let rec exponent v e =
  if v >= 65536.0 then exponent (v *. (1.0 /. 65536.0)) (e + 16)
  else if v >= 16.0 then exponent (v *. (1.0 /. 16.0)) (e + 4)
  else if v >= 2.0 then exponent (v *. 0.5) (e + 1)
  else e + 1

let bucket_of t v =
  if v < 1.0 then 0
  else
    let e = exponent v 0 in
    if e >= Array.length t.counts then Array.length t.counts - 1 else e

(* Inclusive upper edge of bucket [i]. *)
let bucket_upper i = if i = 0 then 1.0 else Float.ldexp 1.0 i

let add t v =
  let v = if v < 0.0 then 0.0 else v in
  let b = bucket_of t v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.n

let sum t = t.sum

let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let min_value t = if t.n = 0 then 0.0 else t.min

let max_value t = if t.n = 0 then 0.0 else t.max

(* Upper edge of the bucket containing the p-th percentile sample
   (0 < p <= 100): a bucket-resolution approximation, clamped to the
   observed max so an estimate never exceeds a value actually seen. *)
let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.round (float_of_int t.n *. p /. 100.0)) in
    let rank = if rank < 1 then 1 else if rank > t.n then t.n else rank in
    let seen = ref 0 and result = ref (bucket_upper 0) in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if !seen >= rank then begin
             result := bucket_upper i;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    Float.min !result t.max
  end

(* Non-empty buckets as (inclusive upper edge, count), low to high. *)
let buckets t =
  let acc = ref [] in
  Array.iteri (fun i c -> if c > 0 then acc := (bucket_upper i, c) :: !acc) t.counts;
  List.rev !acc

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.1f min=%.1f max=%.1f p50<=%.0f p99<=%.0f" t.n
    (mean t) (min_value t) (max_value t) (percentile t 50.0) (percentile t 99.0)
