(** Unbounded FIFO mailbox for simulation processes.

    A mailbox supports any number of senders but at most one process
    blocked in {!recv} at a time (each simulated core owns exactly one
    mailbox, and a core is a single process). *)

type 'a t

val create : Sim.t -> 'a t

(** Number of queued messages. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [send mb v] enqueues [v] now, waking the receiver if blocked. *)
val send : 'a t -> 'a -> unit

(** [send_at mb ~at v] delivers [v] at virtual time [at]. Deliveries
    are FIFO per arrival time (ties broken by schedule order). *)
val send_at : 'a t -> at:float -> 'a -> unit

(** Blocking receive. Must be called from a simulation process. *)
val recv : 'a t -> 'a

(** Non-blocking receive. *)
val try_recv : 'a t -> 'a option

(** [recv_timeout mb ~timeout_ns] blocks like {!recv} but gives up
    after [timeout_ns] of virtual time, returning [None]. The timeout
    event is inert once a message has arrived (and vice versa), and a
    timed-out waiter is uninstalled so the mailbox can be received on
    again. *)
val recv_timeout : 'a t -> timeout_ns:float -> 'a option
