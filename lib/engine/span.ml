(* Per-core phase-time accumulator: attributes every nanosecond of an
   activity (here: a transaction attempt) to one of a fixed set of
   phases, keeping a per-core quantile sketch and running sum per
   phase.

   Disabled by default and guarded like Trace: call sites check
   [Span.enabled] before doing any timestamp arithmetic, so a disabled
   span costs one mutable-field read and zero allocation.

   The intended protocol is scratch-then-flush: the instrumented code
   accumulates one attempt's phase durations into a caller-owned float
   array (no allocation per attempt) and calls [flush] exactly once
   when the attempt's outcome is known. Flushing into separate [t]s
   for committed and aborted attempts keeps the committed aggregate's
   invariant exact: per core, the sum over phases equals the summed
   attempt durations (up to float rounding). *)

type t = {
  phases : string array;
  mutable enabled : bool;
  rel_error : float;
  sketches : Sketch.t array array;  (* [core].(phase) *)
  sums : float array array;  (* [core].(phase) total ns *)
  attempts : int array;  (* flushed attempts per core *)
  attempt_ns : float array;  (* summed attempt durations per core *)
}

(* Coarser default resolution than a standalone sketch: spans keep
   n_cores * n_phases sketches, and sketch counts arrays are only
   materialized per (core, phase) on first use, so the default keeps a
   fully active 48-core run in the hundreds of KB. *)
let default_rel_error = 0.02

let create ?(rel_error = default_rel_error) ~n_cores ~phases () =
  if n_cores <= 0 then invalid_arg "Span.create: need at least one core";
  if Array.length phases = 0 then invalid_arg "Span.create: need at least one phase";
  {
    phases = Array.copy phases;
    enabled = false;
    rel_error;
    sketches =
      Array.init n_cores (fun _ ->
          Array.init (Array.length phases) (fun _ -> Sketch.create ~rel_error ()));
    sums = Array.init n_cores (fun _ -> Array.make (Array.length phases) 0.0);
    attempts = Array.make n_cores 0;
    attempt_ns = Array.make n_cores 0.0;
  }

let enabled t = t.enabled

let enable t = t.enabled <- true

let disable t = t.enabled <- false

let phases t = t.phases

let n_phases t = Array.length t.phases

let n_cores t = Array.length t.sums

let rel_error t = t.rel_error

(* One-off sample outside the scratch protocol (e.g. a backoff delay
   that happens between attempts). *)
let add t ~core ~phase dur =
  let dur = if dur < 0.0 then 0.0 else dur in
  Sketch.add t.sketches.(core).(phase) dur;
  t.sums.(core).(phase) <- t.sums.(core).(phase) +. dur

(* Fold one attempt's scratch durations into the per-core aggregate
   and clear the scratch. Zero phases are skipped in the sketches
   (an attempt that never waited is not a 0 ns wait sample) but the
   sums stay exact either way. *)
let flush t ~core scratch ~total =
  if Array.length scratch <> Array.length t.phases then
    invalid_arg "Span.flush: scratch length mismatch";
  for p = 0 to Array.length scratch - 1 do
    let d = scratch.(p) in
    if d > 0.0 then begin
      Sketch.add t.sketches.(core).(p) d;
      t.sums.(core).(p) <- t.sums.(core).(p) +. d
    end;
    scratch.(p) <- 0.0
  done;
  t.attempts.(core) <- t.attempts.(core) + 1;
  t.attempt_ns.(core) <- t.attempt_ns.(core) +. (if total < 0.0 then 0.0 else total)

let sketch t ~core ~phase = t.sketches.(core).(phase)

(* All cores' sketches for one phase folded into a fresh sketch —
   [Sketch.merge] is associative and order-independent, so this equals
   the sketch a single global stream would have produced. *)
let merged_sketch t ~phase =
  let into = Sketch.create ~rel_error:t.rel_error () in
  Array.iter (fun row -> Sketch.merge ~into row.(phase)) t.sketches;
  into

let sum t ~core ~phase = t.sums.(core).(phase)

let attempts t ~core = t.attempts.(core)

let attempt_ns t ~core = t.attempt_ns.(core)

(* Sum over phases for one core — equals [attempt_ns] (within float
   rounding) when every flushed duration was charged to some phase. *)
let phase_total t ~core = Array.fold_left ( +. ) 0.0 t.sums.(core)

let reset t =
  Array.iter (Array.iter Sketch.reset) t.sketches;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0.0) t.sums;
  Array.fill t.attempts 0 (Array.length t.attempts) 0;
  Array.fill t.attempt_ns 0 (Array.length t.attempt_ns) 0.0
