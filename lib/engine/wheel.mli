(** Calendar-queue event set: fixed-width time buckets over the near
    future (each bucket a small unsorted vector) with a {!Heap}
    overflow tier for entries past the window.

    Pop order is exactly the reference {!Heap}'s: lexicographic by
    (priority, push order) — equal priorities pop FIFO. The one
    precondition, satisfied by the simulator's monotonic clock, is that
    a push's priority is never below the last popped priority.
    Priorities must be non-negative and finite. *)

type 'a t

(** [create ?n_buckets ?width_ns ()] builds a wheel of [n_buckets]
    (power of two, default 4096) buckets of [width_ns] (default 64 ns)
    each — a 262 us near-future window at the defaults, wide enough
    that request-timeout events (a few RTTs out) stay in buckets
    instead of spilling into the overflow tier.
    @raise Invalid_argument on a non-power-of-two bucket count or a
    non-positive width. *)
val create : ?n_buckets:int -> ?width_ns:float -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push w priority v] inserts [v]; FIFO among equal priorities. *)
val push : 'a t -> float -> 'a -> unit

(** Minimum priority, or [infinity] when empty. *)
val min_prio : 'a t -> float

(** [min_gt w x] is [is_empty w || min_prio w > x] without boxing the
    result — the scheduler's delay-elision test. *)
val min_gt : 'a t -> float -> bool

(** [min_prio_into w scratch] writes {!min_prio} into [scratch.(0)].
    With the priority flowing through the caller's flat float array in
    both directions, no float is boxed on this path at all (a plain
    [float] argument or return crosses the call boundary boxed). *)
val min_prio_into : 'a t -> float array -> unit

(** [take w] removes and returns the minimum entry's value alone. Read
    {!min_prio} first if the key is needed.
    @raise Invalid_argument when the wheel is empty. *)
val take : 'a t -> 'a

(** [take_below w limit scratch] is the allocation-free hot-path pop,
    folding the horizon test into the scan: when the wheel is empty it
    writes [infinity] into [scratch.(0)] and returns [None]; when the
    minimum priority exceeds [limit] it writes the minimum and returns
    [None], leaving the entry queued; otherwise it writes the minimum,
    removes that entry and returns its value. [scratch] must have at
    least one element. *)
val take_below : 'a t -> float -> float array -> 'a option

(** [pop_min w] removes and returns the minimum-priority entry, or
    [None] when empty. *)
val pop_min : 'a t -> (float * 'a) option
