(** Deterministic views over [Hashtbl] contents.

    [Hashtbl.iter]/[Hashtbl.fold] enumerate buckets in hash order,
    which depends on insertion history and the hash function — any
    observable output derived from such a traversal is a determinism
    hazard. These wrappers snapshot the table and sort by key
    (polymorphic compare) before exposing any order, making them safe
    to use in exporters, checkers and logs. tm2c-lint's
    [hashtbl-order] rule points here.

    Cost is O(n log n) per call: fine for reporting and invariant
    checks, not for per-event hot paths (which should not be
    enumerating tables anyway). *)

val bindings : ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings, sorted by key ascending. *)

val keys : ('a, 'b) Hashtbl.t -> 'a list
(** All keys, sorted ascending. *)

val iter : ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [iter f t] applies [f] to every binding in ascending key order. *)

val fold : ('a -> 'b -> 'acc -> 'acc) -> ('a, 'b) Hashtbl.t -> 'acc -> 'acc
(** [fold f t init] folds over bindings in ascending key order. *)
