type 'a state = Empty of ('a -> unit) list | Filled of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let fill iv v =
  match iv.state with
  | Filled _ -> invalid_arg "Ivar.fill: already filled"
  | Empty waiters ->
      iv.state <- Filled v;
      (* Wake in registration order. *)
      List.iter (fun resume -> resume v) (List.rev waiters)

let read iv =
  match iv.state with
  | Filled v -> v
  | Empty _ ->
      Sim.suspend (fun resume ->
          match iv.state with
          | Filled _ -> assert false
          | Empty waiters -> iv.state <- Empty (resume :: waiters))

let try_read iv = match iv.state with Filled v -> Some v | Empty _ -> None

let is_filled iv = match iv.state with Filled _ -> true | Empty _ -> false
