(* Calendar-queue event set: a window of fixed-width time buckets over
   the near future, with a binary-heap overflow tier for everything
   past the window (see DESIGN.md, "Engine").

   Buckets are small *unsorted* vectors held in parallel arrays (flat
   float priorities, int sequence numbers, generic values): a push is
   an append, and a pop linearly scans the current bucket for the
   lexicographic (priority, seq) minimum. With ~64 ns buckets the scan
   is a handful of flat-array compares — cheaper than sifting a heap —
   and the minimum is unique because sequence numbers are, so storage
   order never matters.

   Every entry carries a globally increasing sequence number assigned
   here, so the pop order is the exact lexicographic (priority,
   push-order) order of the reference {!Heap} — the wheel changes only
   *where* an entry waits, never *when* it comes out. The simulator
   guarantees pushes are never earlier than the last popped priority
   (the clock is monotonic), which is what makes bucket-order scanning
   exact:

   - [cur] is the global bucket number currently being drained; every
     live entry sits in a bucket >= [cur], and a bucket b > [cur] holds
     only entries whose natural bucket is b. A push whose natural
     bucket is behind [cur] is clamped into bucket [cur]. The bucket
     map only needs to be monotone in the priority for the scan order
     to be exact, so boundary rounding in the float multiply is
     harmless.
   - the window spans [win_start, win_start + n_buckets) bucket numbers
     (n_buckets a power of two; slot = bucket land (n_buckets - 1), so
     in-window buckets never alias). Entries at or past the window end
     go to the overflow heap, whose minimum priority therefore always
     exceeds every bucket entry's — the boundary map is monotone, so
     FIFO tie-breaking can never straddle it.
   - when the wheel side drains, the window jumps to the overflow
     minimum's bucket and every overflow entry now inside the window
     migrates into its bucket, carrying its original sequence number
     ([Heap.push_seq]); buckets are unsorted, so the migration order is
     irrelevant to the pop order. *)

type 'a t = {
  n_buckets : int; (* power of two *)
  mask : int;
  inv_width : float; (* 1 / bucket width; width in ns *)
  b_prio : float array array; (* per-slot parallel vectors *)
  b_seq : int array array;
  b_vals : 'a array array;
  b_len : int array;
  overflow : 'a Heap.t;
  mutable win_start : int; (* global bucket number of window start *)
  mutable cur : int; (* current scan position, >= win_start *)
  mutable size : int;
  mutable next_seq : int;
  mutable cmin : float; (* exact global min priority, valid when [cok] *)
  mutable cok : bool;
}

let default_buckets = 4096

let default_width = 64.0

(* Immediate dummy for dead value slots: never read, keeps vacated
   slots from retaining popped values, and forces [Array.make] to
   build generic (non-flat) value arrays. [Obj.magic] is confined to
   this one constant. *)
let dummy : 'a. unit -> 'a = fun () -> Obj.magic 0

let create ?(n_buckets = default_buckets) ?(width_ns = default_width) () =
  if n_buckets < 2 || n_buckets land (n_buckets - 1) <> 0 then
    invalid_arg "Wheel.create: n_buckets must be a power of two >= 2";
  if not (width_ns > 0.0) then
    invalid_arg "Wheel.create: width_ns must be positive";
  {
    n_buckets;
    mask = n_buckets - 1;
    inv_width = 1.0 /. width_ns;
    b_prio = Array.make n_buckets [||];
    b_seq = Array.make n_buckets [||];
    b_vals = Array.make n_buckets [||];
    b_len = Array.make n_buckets 0;
    overflow = Heap.create ();
    win_start = 0;
    cur = 0;
    size = 0;
    next_seq = 0;
    cmin = infinity;
    cok = true;
  }

let length w = w.size

let is_empty w = w.size = 0

(* Global bucket number of a priority. Priorities are simulation times
   and therefore non-negative and finite; only monotonicity matters. *)
let bucket_of w p = int_of_float (p *. w.inv_width)

let append w s p seq v =
  let len = w.b_len.(s) in
  if len = Array.length w.b_prio.(s) then begin
    let cap = if len = 0 then 8 else 2 * len in
    let bp = Array.make cap 0.0 in
    Array.blit w.b_prio.(s) 0 bp 0 len;
    w.b_prio.(s) <- bp;
    let bs = Array.make cap 0 in
    Array.blit w.b_seq.(s) 0 bs 0 len;
    w.b_seq.(s) <- bs;
    let bv = Array.make cap (dummy ()) in
    Array.blit w.b_vals.(s) 0 bv 0 len;
    w.b_vals.(s) <- bv
  end;
  w.b_prio.(s).(len) <- p;
  w.b_seq.(s).(len) <- seq;
  w.b_vals.(s).(len) <- v;
  w.b_len.(s) <- len + 1

let push w p v =
  let seq = w.next_seq in
  w.next_seq <- seq + 1;
  w.size <- w.size + 1;
  (* A stale cache stays stale: the unknown minimum may be below [p]. *)
  if w.cok && p < w.cmin then w.cmin <- p;
  let q = bucket_of w p in
  if q >= w.win_start + w.n_buckets then Heap.push_seq w.overflow p seq v
  else
    let q = if q < w.cur then w.cur else q in
    append w (q land w.mask) p seq v

(* Advance [cur] to the first non-empty bucket in the window; on wheel
   exhaustion, jump the window to the overflow minimum and migrate the
   overflow entries that now fall inside it. Afterwards, if the wheel
   is non-empty, the global minimum lives in bucket [cur]. *)
let normalize w =
  let win_end = w.win_start + w.n_buckets in
  while w.cur < win_end && w.b_len.(w.cur land w.mask) = 0 do
    w.cur <- w.cur + 1
  done;
  if w.cur >= win_end && not (Heap.is_empty w.overflow) then begin
    let q_min = bucket_of w (Heap.min_prio w.overflow) in
    w.win_start <- q_min;
    w.cur <- q_min;
    let new_end = q_min + w.n_buckets in
    while
      (not (Heap.is_empty w.overflow))
      && bucket_of w (Heap.min_prio w.overflow) < new_end
    do
      let p = Heap.min_prio w.overflow in
      let s = Heap.min_seq w.overflow in
      let v = Heap.take w.overflow in
      append w (bucket_of w p land w.mask) p s v
    done
  end

(* Index of the (priority, seq)-least entry of non-empty bucket [s]. *)
let scan_min w s =
  let bp = w.b_prio.(s) and bs = w.b_seq.(s) in
  let best = ref 0 in
  for i = 1 to w.b_len.(s) - 1 do
    if
      bp.(i) < bp.(!best)
      || (bp.(i) = bp.(!best) && bs.(i) < bs.(!best))
    then best := i
  done;
  !best

let remove w s i =
  let last = w.b_len.(s) - 1 in
  w.b_len.(s) <- last;
  let v = w.b_vals.(s).(i) in
  if i < last then begin
    w.b_prio.(s).(i) <- w.b_prio.(s).(last);
    w.b_seq.(s).(i) <- w.b_seq.(s).(last);
    w.b_vals.(s).(i) <- w.b_vals.(s).(last)
  end;
  (* Clear the vacated slot so it does not retain the popped value. *)
  w.b_vals.(s).(last) <- dummy ();
  w.size <- w.size - 1;
  v

(* Recompute the cached minimum by scanning bucket [cur]; after
   [normalize], every bucket-[cur] entry is strictly below every entry
   anywhere else (monotone bucket map), so the bucket minimum is the
   global minimum. Requires a non-empty wheel. *)
let refresh w =
  normalize w;
  let s = w.cur land w.mask in
  w.cmin <- w.b_prio.(s).(scan_min w s);
  w.cok <- true

let min_prio w =
  if w.size = 0 then infinity
  else begin
    if not w.cok then refresh w;
    w.cmin
  end

(* [min_gt w x] is true when the wheel is empty or its minimum priority
   is strictly greater than [x] — the scheduler's delay-elision test.
   O(1) whenever the cached minimum is valid. *)
let min_gt w x =
  if w.size = 0 then true
  else begin
    if not w.cok then refresh w;
    w.cmin > x
  end

(* Same test with both floats kept unboxed: the minimum comes back
   through the caller's flat [scratch] cell instead of a boxed return,
   and no float crosses the call boundary inward either. *)
let min_prio_into w scratch =
  scratch.(0) <-
    (if w.size = 0 then infinity
     else begin
       if not w.cok then refresh w;
       w.cmin
     end)

(* The hot-path pop, folding the horizon test, the min scan and the
   cache refresh into one pass:
   - empty wheel: [scratch.(0) <- infinity], returns [None];
   - minimum past [limit]: [scratch.(0) <- min], entry stays queued,
     returns [None];
   - otherwise: [scratch.(0) <- min], returns [Some value].
   The scan tracks the runner-up priority alongside the minimum, so
   popping usually leaves a valid cached minimum behind for free. The
   priority comes back through the caller's flat [scratch] cell rather
   than a return value so nothing is boxed. *)
let take_below w limit scratch =
  if w.size = 0 then begin
    scratch.(0) <- infinity;
    None
  end
  else if w.cok && w.cmin > limit then begin
    scratch.(0) <- w.cmin;
    None
  end
  else begin
    normalize w;
    let s = w.cur land w.mask in
    let bp = w.b_prio.(s) and bs = w.b_seq.(s) in
    let len = w.b_len.(s) in
    let best = ref 0 and second = ref infinity in
    for i = 1 to len - 1 do
      let pi = bp.(i) in
      let pb = bp.(!best) in
      if pi < pb || (pi = pb && bs.(i) < bs.(!best)) then begin
        second := pb;
        best := i
      end
      else if pi < !second then second := pi
    done;
    let p = bp.(!best) in
    scratch.(0) <- p;
    if p > limit then begin
      w.cmin <- p;
      w.cok <- true;
      None
    end
    else begin
      let v = remove w s !best in
      if w.b_len.(s) > 0 then begin
        (* Bucket [cur] still non-empty: its minimum is global. *)
        w.cmin <- !second;
        w.cok <- true
      end
      else if w.size = 0 then begin
        w.cmin <- infinity;
        w.cok <- true
      end
      else w.cok <- false;
      Some v
    end
  end

let take w =
  if w.size = 0 then invalid_arg "Wheel.take: empty wheel";
  normalize w;
  let s = w.cur land w.mask in
  let v = remove w s (scan_min w s) in
  if w.size = 0 then begin
    w.cmin <- infinity;
    w.cok <- true
  end
  else w.cok <- false;
  v

let pop_min w =
  if w.size = 0 then None
  else begin
    let p = min_prio w in
    let v = take w in
    Some (p, v)
  end
