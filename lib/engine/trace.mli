(** Low-overhead event tracer: a fixed-capacity ring buffer of
    (virtual-timestamp, event) pairs.

    Disabled by default. Call sites must guard event construction:

    {[ if Trace.enabled tr then Trace.record tr ~now (Ev ...) ]}

    so that tracing costs a single boolean read — and zero allocation —
    when off. When the ring is full, the oldest entries are overwritten
    (and counted in {!dropped}): a trace always holds the most recent
    window of activity. *)

type 'a t

(** [create ?capacity ()] — capacity defaults to 65536 events. *)
val create : ?capacity:int -> unit -> 'a t

val enabled : 'a t -> bool

val enable : 'a t -> unit

val disable : 'a t -> unit

val capacity : 'a t -> int

(** Events currently held (<= capacity). *)
val length : 'a t -> int

(** Events overwritten because the ring was full. *)
val dropped : 'a t -> int

(** Drop all recorded events (and their references). *)
val clear : 'a t -> unit

(** [record t ~now ev] appends an event stamped [now]. No-op when
    disabled — but guard with {!enabled} to avoid constructing [ev]. *)
val record : 'a t -> now:float -> 'a -> unit

(** [set_sink t (Some f)] installs a tap called with every recorded
    event (before it enters the ring). Unlike the ring, the sink never
    drops events: history checkers and streaming log writers use it to
    observe the complete run even when the ring wraps. [None]
    uninstalls. Recording still requires {!enabled}. *)
val set_sink : 'a t -> (float -> 'a -> unit) option -> unit

(** [fanout f g] is a sink that feeds every event to [f] then [g]:
    the single sink slot shared between e.g. a streaming checker and
    a history-log writer. *)
val fanout :
  (float -> 'a -> unit) -> (float -> 'a -> unit) -> float -> 'a -> unit

(** Second, independent tap with the same contract as {!set_sink},
    called after it. The checker stack owns the sink (and replaces it
    freely); the flight recorder counts events through the tap, so
    neither disturbs the other. *)
val set_tap : 'a t -> (float -> 'a -> unit) option -> unit

(** Oldest-first iteration over (timestamp, event). *)
val iter : 'a t -> (float -> 'a -> unit) -> unit

val to_list : 'a t -> (float * 'a) list
