let bindings t =
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] in
  List.sort (fun (a, _) (b, _) -> compare a b) all

let keys t = List.map fst (bindings t)
let iter f t = List.iter (fun (k, v) -> f k v) (bindings t)

let fold f t init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings t)
