(** Binary min-heap keyed by [float] priority with deterministic FIFO
    tie-breaking: two entries pushed with equal priority pop in push
    order. Used as the simulator's event queue (directly, and as the
    bucket and overflow tiers of {!Wheel}).

    The backing storage grows by doubling and shrinks by halving when
    occupancy falls below a quarter (floored at the initial capacity of
    64), so a scheduling burst does not pin its high-water mark;
    resizing never changes the pop order. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** Current backing-array capacity (exposed for the shrink tests). *)
val capacity : 'a t -> int

(** [push h priority v] inserts [v] with the given priority and the
    next internal sequence number. *)
val push : 'a t -> float -> 'a -> unit

(** [push_seq h priority seq v] inserts [v] with an externally supplied
    tie-break sequence number — used by {!Wheel}, which owns a single
    sequence counter spanning many heaps. Callers must not mix
    [push_seq] with [push] on the same heap unless they keep the
    external numbers coherent with the internal counter. *)
val push_seq : 'a t -> float -> int -> 'a -> unit

(** [pop_min h] removes and returns the minimum-priority entry,
    or [None] when the heap is empty. *)
val pop_min : 'a t -> (float * 'a) option

(** [take h] removes and returns the minimum entry's value alone —
    the allocation-free pop used on the scheduler hot path. Read
    {!min_prio}/{!min_seq} first if the key is needed.
    @raise Invalid_argument when the heap is empty. *)
val take : 'a t -> 'a

(** [peek_min h] returns the minimum priority without removing it. *)
val peek_min : 'a t -> float option

(** Minimum priority, or [infinity] when empty. *)
val min_prio : 'a t -> float

(** Tie-break sequence number of the minimum entry, or [max_int] when
    empty. *)
val min_seq : 'a t -> int
