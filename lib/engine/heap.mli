(** Binary min-heap keyed by [float] priority with deterministic FIFO
    tie-breaking: two entries pushed with equal priority pop in push
    order. Used as the simulator's event queue. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h priority v] inserts [v] with the given priority. *)
val push : 'a t -> float -> 'a -> unit

(** [pop_min h] removes and returns the minimum-priority entry,
    or [None] when the heap is empty. *)
val pop_min : 'a t -> (float * 'a) option

(** [peek_min h] returns the minimum priority without removing it. *)
val peek_min : 'a t -> float option
