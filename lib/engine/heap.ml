(* Array-backed binary min-heap over parallel arrays. Ties on the
   [float] key are broken by a monotonically increasing sequence number
   so that the simulation is deterministic regardless of heap internals.

   The three parallel arrays keep the priorities flat (an unboxed
   [float array]) and avoid a per-entry record allocation on push; all
   value-array accesses in this module are polymorphic, so the values
   array is an ordinary generic array (its dummy initialiser is an
   immediate) and storing boxed values of any type is safe. *)

type 'a t = {
  mutable prio : float array; (* flat, unboxed *)
  mutable seq : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 64

(* The dummy fills dead slots (indices >= size) so that vacated slots
   never retain a popped entry's value. It is never read: dead slots
   are not observed. Being an immediate, it also forces [Array.make]
   to build a generic (non-flat) values array even when ['a] is
   [float]. [Obj.magic] is confined to this one constant. *)
let dummy : 'a. unit -> 'a = fun () -> Obj.magic 0

let create () = { prio = [||]; seq = [||]; vals = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

let capacity h = Array.length h.prio

let less h i j =
  h.prio.(i) < h.prio.(j) || (h.prio.(i) = h.prio.(j) && h.seq.(i) < h.seq.(j))

let swap h i j =
  let p = h.prio.(i) in
  h.prio.(i) <- h.prio.(j);
  h.prio.(j) <- p;
  let s = h.seq.(i) in
  h.seq.(i) <- h.seq.(j);
  h.seq.(j) <- s;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

(* Copies the live prefix verbatim, so the heap shape — and therefore
   the pop order — is unaffected by resizing in either direction. *)
let resize h new_cap =
  let prio = Array.make new_cap 0.0 in
  Array.blit h.prio 0 prio 0 h.size;
  let seq = Array.make new_cap 0 in
  Array.blit h.seq 0 seq 0 h.size;
  let vals = Array.make new_cap (dummy ()) in
  Array.blit h.vals 0 vals 0 h.size;
  h.prio <- prio;
  h.seq <- seq;
  h.vals <- vals

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h l !smallest then smallest := l;
  if r < h.size && less h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push_seq h p seq v =
  if h.size = Array.length h.prio then
    resize h (max initial_capacity (2 * Array.length h.prio));
  let i = h.size in
  h.prio.(i) <- p;
  h.seq.(i) <- seq;
  h.vals.(i) <- v;
  h.size <- h.size + 1;
  sift_up h i

let push h p v =
  let s = h.next_seq in
  h.next_seq <- s + 1;
  push_seq h p s v

let remove_min h =
  let n = h.size - 1 in
  h.size <- n;
  if n > 0 then begin
    h.prio.(0) <- h.prio.(n);
    h.seq.(0) <- h.seq.(n);
    h.vals.(0) <- h.vals.(n)
  end;
  (* Clear the vacated slot: otherwise the moved entry stays reachable
     until the slot is overwritten — a space leak proportional to the
     heap's high-water mark. *)
  h.vals.(n) <- dummy ();
  if n > 0 then sift_down h 0;
  (* Shrink when occupancy falls below a quarter, floored at the
     initial capacity, so a burst does not pin its high-water mark. *)
  let cap = Array.length h.prio in
  if cap > initial_capacity && h.size * 4 < cap then
    resize h (max initial_capacity (cap / 2))

let take h =
  if h.size = 0 then invalid_arg "Heap.take: empty heap";
  let v = h.vals.(0) in
  remove_min h;
  v

let pop_min h =
  if h.size = 0 then None
  else begin
    let p = h.prio.(0) in
    let v = h.vals.(0) in
    remove_min h;
    Some (p, v)
  end

let peek_min h = if h.size = 0 then None else Some h.prio.(0)

let min_prio h = if h.size = 0 then infinity else h.prio.(0)

let min_seq h = if h.size = 0 then max_int else h.seq.(0)
