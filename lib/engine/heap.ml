(* Array-backed binary min-heap. Ties on the [float] key are broken by a
   monotonically increasing sequence number so that the simulation is
   deterministic regardless of heap internals. *)

type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a entry;
}

(* The dummy fills dead slots (indices >= size) so that vacated slots
   never retain a popped entry's value. Its [value] field is never
   read: dead slots are not observed, and [less] looks only at
   [prio]/[seq]. [Obj.magic] is confined to this one constant. *)
let create () =
  {
    data = [||];
    size = 0;
    next_seq = 0;
    dummy = { prio = Float.nan; seq = -1; value = Obj.magic 0 };
  }

let length h = h.size

let is_empty h = h.size = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  let data = Array.make new_cap h.dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h prio value =
  let entry = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop_min h =
  if h.size = 0 then None
  else begin
    let min = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* Clear the vacated slot: otherwise the moved entry stays
         reachable until the slot is overwritten — a space leak
         proportional to the heap's high-water mark. *)
      h.data.(h.size) <- h.dummy;
      sift_down h 0
    end
    else h.data.(0) <- h.dummy;
    Some (min.prio, min.value)
  end

let peek_min h = if h.size = 0 then None else Some h.data.(0).prio
