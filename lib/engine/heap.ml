(* Array-backed binary min-heap. Ties on the [float] key are broken by a
   monotonically increasing sequence number so that the simulation is
   deterministic regardless of heap internals. *)

type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  (* The dummy entry is never observed: indices >= size are dead. *)
  let dummy = h.data.(0) in
  let data = Array.make new_cap dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h prio value =
  let entry = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.size = 0 && Array.length h.data = 0 then h.data <- Array.make 64 entry;
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop_min h =
  if h.size = 0 then None
  else begin
    let min = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (min.prio, min.value)
  end

let peek_min h = if h.size = 0 then None else Some h.data.(0).prio
