(** Power-of-two-bucketed histogram of non-negative measurements.

    Bucket [i] covers [2^(i-1), 2^i); bucket 0 holds values below 1.0
    and the last bucket absorbs the tail. Adding a sample is O(1) with
    no allocation, so histograms can stay always-on in hot paths. *)

type t

(** [create ?buckets ()] — 40 buckets by default (enough for ns-scale
    values up to ~9 minutes). *)
val create : ?buckets:int -> unit -> t

val add : t -> float -> unit

val count : t -> int

val sum : t -> float

(** 0.0 when empty. *)
val mean : t -> float

val min_value : t -> float

val max_value : t -> float

(** [percentile t p] — upper edge of the bucket holding the [p]-th
    percentile sample (bucket-resolution approximation); 0 when empty. *)
val percentile : t -> float -> float

(** Non-empty buckets as (inclusive upper edge, count), low to high. *)
val buckets : t -> (float * int) list

val reset : t -> unit

val pp : Format.formatter -> t -> unit
