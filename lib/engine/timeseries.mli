(** Windowed time-series sampler driven by simulated time.

    Register channels, then {!start}: every [window_ns] of virtual
    time a recurring simulator event reads each channel and appends
    one value. Sampling consumes no virtual time. [Cumulative]
    channels return a monotone running total and record per-window
    deltas — an event on a window edge lands in exactly one window —
    while [Gauge] channels record the instantaneous value.

    The sampler stops once it is the only remaining simulation
    activity, so queue-draining runs still terminate. *)

type kind = Cumulative | Gauge

type t

val create : window_ns:float -> t

val window_ns : t -> float

(** Completed windows so far. *)
val n_windows : t -> int

(** [add_channel t ~name kind read] registers a channel. Must be
    called before {!start}; names must be unique. *)
val add_channel : t -> name:string -> kind -> (unit -> float) -> unit

(** Begin sampling on [sim]: first window closes one [window_ns] from
    the current virtual time. Call at most once. *)
val start : t -> Sim.t -> unit

(** Window-end times, oldest first. *)
val times : t -> float array

(** (name, kind, per-window values oldest first), in registration
    order. *)
val channels : t -> (string * kind * float array) list
