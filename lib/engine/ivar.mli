(** Write-once synchronization cell ("incremental variable").

    Used for request/response rendezvous: a requester blocks in {!read}
    until the responder {!fill}s the cell. Multiple readers may block on
    the same cell; all are woken by the fill. *)

type 'a t

val create : unit -> 'a t

(** [fill iv v] sets the value. Raises [Invalid_argument] if already
    filled. *)
val fill : 'a t -> 'a -> unit

(** Blocking read; returns immediately if already filled. *)
val read : 'a t -> 'a

val try_read : 'a t -> 'a option

val is_filled : 'a t -> bool
