(** Per-core phase-time accumulator: attributes every nanosecond of an
    activity (a transaction attempt) to one of a fixed set of named
    phases — per-core quantile sketch plus running sum per phase.

    Disabled by default; guard instrumentation with {!enabled} so a
    disabled span costs one boolean read and zero allocation.

    Protocol: accumulate one attempt's phase durations into a
    caller-owned scratch array ([Array.make (n_phases t) 0.0], reused
    across attempts), then {!flush} once when the outcome is known.
    Using separate [t]s for committed and aborted attempts keeps the
    committed invariant exact: per core, {!phase_total} equals
    {!attempt_ns} up to float rounding. *)

type t

(** [rel_error] is each per-(core, phase) sketch's resolution;
    defaults to 0.02 (coarser than a standalone {!Sketch}, since a
    span holds [n_cores * n_phases] of them). *)
val create : ?rel_error:float -> n_cores:int -> phases:string array -> unit -> t

val enabled : t -> bool

val enable : t -> unit

val disable : t -> unit

(** Phase names, in index order. *)
val phases : t -> string array

val n_phases : t -> int

val n_cores : t -> int

(** The per-sketch relative-error bound this span was created with. *)
val rel_error : t -> float

(** One-off sample outside the scratch protocol (e.g. a between-
    attempts backoff delay). Negative durations clamp to zero. *)
val add : t -> core:int -> phase:int -> float -> unit

(** [flush t ~core scratch ~total] folds one attempt's scratch
    durations into the aggregate and zeroes the scratch. [total] is
    the attempt's measured wall (virtual) duration. Zero-duration
    phases are skipped in the sketches but kept exact in the sums. *)
val flush : t -> core:int -> float array -> total:float -> unit

val sketch : t -> core:int -> phase:int -> Sketch.t

(** All cores' sketches for one phase folded into a fresh sketch
    (merge is order-independent, so this equals a single global
    stream's sketch). *)
val merged_sketch : t -> phase:int -> Sketch.t

(** Total ns charged to a phase on a core. *)
val sum : t -> core:int -> phase:int -> float

(** Attempts flushed on a core. *)
val attempts : t -> core:int -> int

(** Summed attempt durations on a core. *)
val attempt_ns : t -> core:int -> float

(** Sum of {!sum} over all phases for one core. *)
val phase_total : t -> core:int -> float

val reset : t -> unit
