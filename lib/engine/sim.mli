(** Deterministic discrete-event simulator built on OCaml 5 effects.

    A simulation owns a virtual clock (nanoseconds, [float]) and an
    event queue. Processes are ordinary OCaml functions that perform
    the {!delay} and {!suspend} effects to advance or block on virtual
    time; the scheduler is single-threaded and deterministic (events at
    equal times fire in schedule order).

    Typical use:
    {[
      let sim = Sim.create () in
      Sim.spawn sim (fun () -> Sim.delay 100.0; ...);
      Sim.run sim
    ]} *)

type t

(** Raised inside blocked processes that are terminated when the
    simulation is stopped with pending waiters. *)
exception Stopped

val create : unit -> t

(** Current virtual time in nanoseconds. *)
val now : t -> float

(** [spawn t ?name f] schedules process [f] to start at the current
    virtual time. May be called before [run] or from within a running
    process. An exception escaping [f] (other than {!Stopped}) aborts
    the simulation. *)
val spawn : t -> ?name:string -> (unit -> unit) -> unit

(** [schedule t ~at f] runs callback [f] at virtual time [at] (clamped
    to the current time if in the past). [f] must not perform effects;
    use [spawn] for that. *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** [register_port t handler] registers a delivery handler and returns
    its port id. Ports are the allocation-free alternative to
    {!schedule} for high-frequency timed deliveries: the subscriber
    registers one handler up front, and each delivery is just two ints
    in a pooled event cell (see {!schedule_port}) instead of a fresh
    closure. Ports cannot be unregistered; they live as long as the
    simulation. *)
val register_port : t -> (int -> unit) -> int

(** [schedule_port t ~at ~port ~slot] arranges for the handler
    registered under [port] to be called with [slot] at virtual time
    [at] (clamped like {!schedule}). The handler must not perform
    effects. *)
val schedule_port : t -> at:float -> port:int -> slot:int -> unit

(** Advance the calling process's virtual time by [d] nanoseconds.
    Must be called from within a spawned process. Negative delays are
    treated as zero. *)
val delay : float -> unit

(** [suspend register] blocks the calling process until the resume
    function passed to [register] is invoked with a value. The resume
    function must be called at most once; the wake-up is scheduled at
    the virtual time of the call. *)
val suspend : (('a -> unit) -> unit) -> 'a

(** [run t ?until ()] executes events until the queue is empty or the
    clock passes [until]. Returns the number of events processed.
    Processes still blocked in {!suspend} when the run ends are
    abandoned (their continuations are dropped). *)
val run : t -> ?until:float -> unit -> int

(** Number of processes spawned so far. *)
val spawned : t -> int

(** Number of processes that ran to completion. *)
val finished : t -> int

(** Number of delays elided by the scheduler fast path: a {!delay}
    whose wake-up could not interleave with any queued event advances
    the clock in place instead of round-tripping through the event set.
    [run]'s return value plus this count — the *logical* event count —
    is invariant under that optimization and is the figure benchmarks
    should report. *)
val elided : t -> int

(** Events currently queued. From inside a callback the count excludes
    the executing event — a recurring event can use this to detect that
    it is the only remaining activity and stop rescheduling itself. *)
val pending : t -> int

(** Host-side self-profiler. The engine never reads wall time itself
    (virtual determinism is the contract the source lint enforces):
    the harness *injects* a monotonic clock in seconds (the Unix
    wall clock, from bin/), and {!run} switches to an
    instrumented loop that attributes host time to scheduler
    categories — ["wheel"] (event-set pop), ["delay_resume"]
    (continuing a parked fiber, including the fiber's own execution up
    to its next suspension), ["mailbox_delivery"] (port dispatch),
    ["callback"], plus the subsystem refinements ["dtm"] and
    ["network"] claimed through {!prof_mark}. Costs two clock reads
    per event; [None] restores the uninstrumented loop (accumulated
    figures are kept). Virtual results are identical either way. *)
val set_host_clock : t -> (unit -> float) option -> unit

(** [prof_mark t cat] attributes the currently executing dispatch to
    refinement category [cat] ({!prof_cat_dtm} or {!prof_cat_network})
    instead of its scheduling category. First mark per dispatch wins
    (a send issued from inside DTM handling stays "dtm"); no-op
    without an injected clock. Attribution is at whole-dispatch
    granularity, so the categories partition the measured host time
    exactly. *)
val prof_mark : t -> int -> unit

val prof_cat_dtm : int

val prof_cat_network : int

(** (category, host seconds, samples) per category, in a fixed order;
    all zero until a clock has been injected and {!run} has run. *)
val host_profile : t -> (string * float * int) array
