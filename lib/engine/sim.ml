open Effect
open Effect.Deep

exception Stopped

(* Queued events are pooled, mutable cells rather than per-event
   closures: kind 0 carries an ordinary callback, kind 1 an
   (int port, int slot) pair dispatched through the port registry —
   the int-packed fast path used by Mailbox's timed deliveries — and
   kind 2 a parked delay continuation, resumed directly by the run
   loop with no wrapper closure. Cells are recycled through a free
   stack the moment they are popped. *)
type cell = {
  mutable kind : int; (* 0 = closure, 1 = port delivery, 2 = delay wake *)
  mutable fn : unit -> unit;
  mutable port : int;
  mutable slot : int;
  mutable k : (unit, unit) continuation option;
}

type t = {
  mutable now : float;
  mutable horizon : float; (* the running [run]'s [until], else infinity *)
  scratch : float array; (* unboxed priority return cell for take_below *)
  events : cell Wheel.t;
  mutable pool : cell array; (* free stack of recycled cells *)
  mutable pool_top : int;
  mutable ports : (int -> unit) array;
  mutable n_ports : int;
  mutable self_opt : t option; (* preallocated [Some t] for [current_key] *)
  mutable pending_delay : float; (* absolute wake-up of the delay in flight *)
  mutable delay_eff : unit Effect.t; (* preallocated [Delay t] *)
  mutable delay_handler : ((unit, unit) continuation -> unit) option;
  mutable n_spawned : int;
  mutable n_finished : int;
  mutable n_elided : int;
  mutable running : bool;
  (* Host-side self-profiler. The clock is *injected* (the engine
     itself never reads wall time — virtual determinism is the
     contract the lint enforces); when set, [run] switches to an
     instrumented loop that stamps the clock around the event-set pop
     and around each dispatch, attributing host seconds to one of
     [prof_categories]. *)
  mutable host_clock : (unit -> float) option;
  prof_s : float array;  (* host seconds per category *)
  prof_n : int array;  (* samples per category *)
  mutable prof_tag : int;  (* dispatch override set via [prof_mark]; -1 = none *)
}

(* 0 = wheel (event-set pop + queue bookkeeping); 1 = delay resume
   (continuing a parked fiber — includes the fiber's own execution up
   to its next suspension); 2 = mailbox delivery (port dispatch);
   3 = callback (scheduled closures, also covering fiber starts);
   4/5 = subsystem refinements claimed via [prof_mark]: a dispatch
   that entered the DTM request handler or the message-send path is
   attributed there instead of its scheduling category. *)
let prof_categories =
  [| "wheel"; "delay_resume"; "mailbox_delivery"; "callback"; "dtm"; "network" |]

let prof_cat_dtm = 4

let prof_cat_network = 5

(* The effect payload carries the owning simulation so that nested or
   sequential simulations (common in tests) cannot interfere. The
   wake-up time rides in [pending_delay] rather than the payload, so
   the effect value itself is one preallocated [Delay t] per simulation
   and the dominant effect on the hot path allocates nothing. *)
type _ Effect.t += Delay : t -> unit Effect.t
type _ Effect.t += Suspend : t * (('a -> unit) -> unit) -> 'a Effect.t

(* Placeholder for [delay_eff] before [create] ties the knot. *)
type _ Effect.t += Uninit : unit Effect.t

let nop () = ()

let unbound_port (_ : int) = invalid_arg "Sim: delivery to unbound port"

let now t = t.now

let alloc_cell t =
  if t.pool_top > 0 then begin
    t.pool_top <- t.pool_top - 1;
    t.pool.(t.pool_top)
  end
  else { kind = 0; fn = nop; port = -1; slot = -1; k = None }

let release_cell t c =
  (* Don't retain the callback or continuation. *)
  c.fn <- nop;
  c.k <- None;
  if t.pool_top = Array.length t.pool then begin
    let np = Array.make (max 64 (2 * t.pool_top)) c in
    Array.blit t.pool 0 np 0 t.pool_top;
    t.pool <- np
  end;
  t.pool.(t.pool_top) <- c;
  t.pool_top <- t.pool_top + 1

let schedule t ~at f =
  let at = if at < t.now then t.now else at in
  let c = alloc_cell t in
  c.kind <- 0;
  c.fn <- f;
  Wheel.push t.events at c

let register_port t handler =
  let id = t.n_ports in
  if id = Array.length t.ports then begin
    let np = Array.make (max 16 (2 * id)) unbound_port in
    Array.blit t.ports 0 np 0 id;
    t.ports <- np
  end;
  t.ports.(id) <- handler;
  t.n_ports <- id + 1;
  id

let schedule_port t ~at ~port ~slot =
  let at = if at < t.now then t.now else at in
  let c = alloc_cell t in
  c.kind <- 1;
  c.port <- port;
  c.slot <- slot;
  Wheel.push t.events at c

(* Park a delay continuation directly in a pooled cell (kind 2): no
   wrapper closure per suspension. *)
let schedule_k t ~at k =
  let at = if at < t.now then t.now else at in
  let c = alloc_cell t in
  c.kind <- 2;
  c.k <- Some k;
  Wheel.push t.events at c

let create () =
  let t =
    {
      now = 0.0;
      horizon = infinity;
      scratch = Array.make 1 0.0;
      events = Wheel.create ();
      pool = [||];
      pool_top = 0;
      ports = [||];
      n_ports = 0;
      self_opt = None;
      pending_delay = 0.0;
      delay_eff = Uninit;
      delay_handler = None;
      n_spawned = 0;
      n_finished = 0;
      n_elided = 0;
      running = false;
      host_clock = None;
      prof_s = Array.make (Array.length prof_categories) 0.0;
      prof_n = Array.make (Array.length prof_categories) 0;
      prof_tag = -1;
    }
  in
  t.self_opt <- Some t;
  t.delay_eff <- Delay t;
  t.delay_handler <- Some (fun k -> schedule_k t ~at:t.pending_delay k);
  t

(* Ambient simulation for the currently executing process, so that
   [delay]/[suspend] need no explicit handle at every call site.
   Domain-local (not a plain ref): each domain gets its own slot, so
   parallel sweep cells running one simulation per domain cannot
   observe each other's ambient sim. *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let delay d =
  match Domain.DLS.get current_key with
  | Some t ->
      let d = if d < 0.0 then 0.0 else d in
      let target = t.now +. d in
      (* Elision fast path: when the wake-up could not interleave with
         any queued event — the queue is empty — and the wake-up lies
         within the current run's horizon, advance the clock in place
         instead of a push/pop/continuation round-trip. Every
         observable time is identical either way, and [run]'s processed
         count plus [elided] is invariant. (A non-empty queue whose
         minimum still lies strictly past [target] could also elide,
         but probing the minimum on every delay forces a cached-min
         refresh and costs more than the rare extra elision saves.) *)
      if target <= t.horizon && Wheel.is_empty t.events then begin
        t.now <- target;
        t.n_elided <- t.n_elided + 1
      end
      else begin
        t.pending_delay <- target;
        perform t.delay_eff
      end
  | None -> invalid_arg "Sim.delay: not inside a simulation process"

let suspend register =
  match Domain.DLS.get current_key with
  | Some t -> perform (Suspend (t, register))
  | None -> invalid_arg "Sim.suspend: not inside a simulation process"

let exec t body =
  match_with
    (fun () ->
      Domain.DLS.set current_key t.self_opt;
      body ())
    ()
    {
      retc = (fun () -> t.n_finished <- t.n_finished + 1);
      exnc =
        (fun exn ->
          match exn with
          | Stopped -> t.n_finished <- t.n_finished + 1
          | _ ->
              (* Surface where inside the process the failure happened:
                 the re-raise below loses the fiber's backtrace. *)
              let bt = Printexc.get_backtrace () in
              if bt <> "" then prerr_string bt;
              raise exn);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Delay st when st == t ->
              (* Preallocated: parks the continuation at
                 [t.pending_delay], the absolute wake-up the performer
                 just stored. The annotation applies this branch's
                 [b = unit] equation locally instead of letting it
                 unify [b] away for the other branches. *)
              (t.delay_handler : ((b, unit) continuation -> unit) option)
          | Suspend (st, register) when st == t ->
              Some
                (fun (k : (b, unit) continuation) ->
                  let resumed = ref false in
                  register (fun v ->
                      if !resumed then
                        invalid_arg "Sim.suspend: resume called twice";
                      resumed := true;
                      schedule t ~at:t.now (fun () ->
                          Domain.DLS.set current_key t.self_opt;
                          continue k v)))
          | _ -> None);
    }

let spawn t ?name f =
  ignore name;
  t.n_spawned <- t.n_spawned + 1;
  schedule t ~at:t.now (fun () -> exec t f)

(* The uninstrumented hot loop. *)
let run_plain t until processed =
  let continue_run = ref true in
  while !continue_run do
    match Wheel.take_below t.events t.horizon t.scratch with
    | Some c -> (
        t.now <- t.scratch.(0);
        incr processed;
        (* Branches ordered by frequency: delay wakes dominate, then
           timed deliveries, then general callbacks. *)
        if c.kind = 2 then begin
          match c.k with
          | Some k ->
              release_cell t c;
              Domain.DLS.set current_key t.self_opt;
              continue k ()
          | None -> assert false
        end
        else if c.kind = 1 then begin
          let port = c.port and slot = c.slot in
          release_cell t c;
          t.ports.(port) slot
        end
        else begin
          let fn = c.fn in
          release_cell t c;
          fn ()
        end)
    | None ->
        if t.scratch.(0) = infinity then begin
          (* The queue drained before the horizon: the caller asked for
             the window up to [until], so the clock must still land
             there. *)
          match until with
          | Some h when t.now < h -> t.now <- h
          | Some _ | None -> ()
        end
        else
          (* A queued event lies past the horizon: clamp the clock but
             leave the event queued, so a later [run] call resumes
             exactly where this one stopped. *)
          t.now <- t.horizon;
        continue_run := false
  done

(* Same loop with the injected clock stamped around the pop and the
   dispatch. Note the dispatch category measures everything until
   control returns to the scheduler: a resumed fiber's host time (its
   transactional work, DTM handling, network sends) lands in
   [delay_resume] or [callback] — the finer DTM/network shares are
   carved out by their own injected-clock brackets and reported
   alongside. Two clock reads per event. *)
let run_profiled t clk until processed =
  let continue_run = ref true in
  while !continue_run do
    let t0 = clk () in
    match Wheel.take_below t.events t.horizon t.scratch with
    | Some c ->
        t.now <- t.scratch.(0);
        incr processed;
        let t1 = clk () in
        t.prof_s.(0) <- t.prof_s.(0) +. (t1 -. t0);
        t.prof_n.(0) <- t.prof_n.(0) + 1;
        let base = if c.kind = 2 then 1 else if c.kind = 1 then 2 else 3 in
        t.prof_tag <- -1;
        (if c.kind = 2 then begin
           match c.k with
           | Some k ->
               release_cell t c;
               Domain.DLS.set current_key t.self_opt;
               continue k ()
           | None -> assert false
         end
         else if c.kind = 1 then begin
           let port = c.port and slot = c.slot in
           release_cell t c;
           t.ports.(port) slot
         end
         else begin
           let fn = c.fn in
           release_cell t c;
           fn ()
         end);
        let cat = if t.prof_tag >= 0 then t.prof_tag else base in
        t.prof_s.(cat) <- t.prof_s.(cat) +. (clk () -. t1);
        t.prof_n.(cat) <- t.prof_n.(cat) + 1
    | None ->
        t.prof_s.(0) <- t.prof_s.(0) +. (clk () -. t0);
        (if t.scratch.(0) = infinity then begin
           match until with
           | Some h when t.now < h -> t.now <- h
           | Some _ | None -> ()
         end
         else t.now <- t.horizon);
        continue_run := false
  done

let run t ?until () =
  t.running <- true;
  t.horizon <- (match until with Some h -> h | None -> infinity);
  let processed = ref 0 in
  (match t.host_clock with
  | None -> run_plain t until processed
  | Some clk -> run_profiled t clk until processed);
  t.horizon <- infinity;
  t.running <- false;
  Domain.DLS.set current_key None;
  !processed

(* [Some clock] switches {!run} to the instrumented loop; [None]
   restores the uninstrumented one (accumulated figures are kept). *)
let set_host_clock t clock = t.host_clock <- clock

(* Claim the current dispatch for category [cat]. First mark wins, so
   a message send issued from inside DTM handling stays "dtm". A
   bracket-based measurement cannot work here: a virtual delay inside
   the measured region parks the fiber and the bracket would span
   every dispatch interleaved before the resume. Attribution at
   dispatch granularity is sound (the categories partition the run's
   host time exactly). No-op without an injected clock. *)
let prof_mark t cat =
  if t.host_clock != None && t.prof_tag < 0 then t.prof_tag <- cat

let host_profile t =
  Array.init (Array.length prof_categories) (fun i ->
      (prof_categories.(i), t.prof_s.(i), t.prof_n.(i)))

let spawned t = t.n_spawned

let finished t = t.n_finished

let elided t = t.n_elided

let pending t = Wheel.length t.events
