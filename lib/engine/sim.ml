open Effect
open Effect.Deep

exception Stopped

type t = {
  mutable now : float;
  events : (unit -> unit) Heap.t;
  mutable n_spawned : int;
  mutable n_finished : int;
  mutable running : bool;
}

(* The effect payload carries the owning simulation so that nested or
   sequential simulations (common in tests) cannot interfere. *)
type _ Effect.t += Delay : t * float -> unit Effect.t
type _ Effect.t += Suspend : t * (('a -> unit) -> unit) -> 'a Effect.t

let create () =
  { now = 0.0; events = Heap.create (); n_spawned = 0; n_finished = 0; running = false }

let now t = t.now

let schedule t ~at f =
  let at = if at < t.now then t.now else at in
  Heap.push t.events at f

(* Ambient simulation for the currently executing process, so that
   [delay]/[suspend] need no explicit handle at every call site. *)
let current : t option ref = ref None

let delay d =
  match !current with
  | Some t -> perform (Delay (t, if d < 0.0 then 0.0 else d))
  | None -> invalid_arg "Sim.delay: not inside a simulation process"

let suspend register =
  match !current with
  | Some t -> perform (Suspend (t, register))
  | None -> invalid_arg "Sim.suspend: not inside a simulation process"

let exec t body =
  match_with
    (fun () ->
      current := Some t;
      body ())
    ()
    {
      retc = (fun () -> t.n_finished <- t.n_finished + 1);
      exnc =
        (fun exn ->
          match exn with
          | Stopped -> t.n_finished <- t.n_finished + 1
          | _ ->
              (* Surface where inside the process the failure happened:
                 the re-raise below loses the fiber's backtrace. *)
              let bt = Printexc.get_backtrace () in
              if bt <> "" then prerr_string bt;
              raise exn);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Delay (st, d) when st == t ->
              Some
                (fun (k : (b, unit) continuation) ->
                  schedule t ~at:(t.now +. d) (fun () ->
                      current := Some t;
                      continue k ()))
          | Suspend (st, register) when st == t ->
              Some
                (fun (k : (b, unit) continuation) ->
                  let resumed = ref false in
                  register (fun v ->
                      if !resumed then
                        invalid_arg "Sim.suspend: resume called twice";
                      resumed := true;
                      schedule t ~at:t.now (fun () ->
                          current := Some t;
                          continue k v)))
          | _ -> None);
    }

let spawn t ?name f =
  ignore name;
  t.n_spawned <- t.n_spawned + 1;
  schedule t ~at:t.now (fun () -> exec t f)

let run t ?until () =
  t.running <- true;
  let processed = ref 0 in
  let continue_run = ref true in
  while !continue_run do
    match Heap.peek_min t.events with
    | None -> continue_run := false
    | Some at -> (
        match until with
        | Some horizon when at > horizon ->
            (* Clamp the clock but leave the event queued: a later
               [run] call resumes exactly where this one stopped. *)
            t.now <- horizon;
            continue_run := false
        | Some _ | None -> (
            match Heap.pop_min t.events with
            | Some (at, f) ->
                t.now <- at;
                incr processed;
                f ()
            | None -> assert false))
  done;
  t.running <- false;
  current := None;
  !processed

let spawned t = t.n_spawned

let finished t = t.n_finished

let pending t = Heap.length t.events
