(* Log-linear ("HDR-style") mergeable quantile sketch for non-negative
   measurements.

   Layout: values below 1.0 land in [sub] linear buckets over [0, 1);
   a value v in [2^e, 2^(e+1)) (e < octaves) lands in one of [sub]
   linear sub-buckets of its octave, indexed by its mantissa; anything
   at or above 2^octaves falls into one overflow bucket. A quantile
   estimate is the midpoint of the bucket holding the rank-th sample,
   clamped to the observed [min, max].

   Error model: within an octave the bucket width is 2^e / sub and the
   bucket's lower edge is at least 2^e, so the midpoint is within
   1/(2*sub) of the true sample, *relatively*. Below 1.0 the same
   bound holds absolutely (width 1/sub). [create] picks [sub] as the
   smallest power of two meeting the requested bound, so the
   documented guarantee is [rel_error t] = 1/(2*sub) <= requested.
   Index arithmetic is exact (scaling by powers of two and mantissa
   sub-bucketing introduce no rounding), so the bound has no hidden
   epsilon beyond the midpoint's own last-bit rounding.

   [add] is O(1) and allocation-free after the first sample (the
   counts array is created lazily so unused sketches cost a few
   words). [merge] adds counts elementwise — associative and
   order-independent, the property that lets per-core sketches
   combine into one distribution without retaining samples. *)

type t = {
  sub : int;  (* linear sub-buckets per octave; a power of two *)
  rel_error : float;  (* achieved bound: 1 / (2 * sub) *)
  mutable counts : int array;  (* lazily allocated *)
  mutable n : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

(* Same ceiling as Histogram's 40 buckets: ns-scale values up to
   ~2^40 ns (~18 simulated minutes) resolve; beyond that the overflow
   bucket still keeps count/sum/max exact. *)
let octaves = 40

let max_sub = 4096

let default_rel_error = 0.01

let n_buckets sub = (sub * (octaves + 1)) + 1

let create ?(rel_error = default_rel_error) () =
  if not (rel_error > 0.0 && rel_error < 0.5) then
    invalid_arg "Sketch.create: rel_error must be in (0, 0.5)";
  let rec fit s =
    if s >= max_sub || 1.0 /. float_of_int (2 * s) <= rel_error then s
    else fit (2 * s)
  in
  let sub = fit 1 in
  {
    sub;
    rel_error = 1.0 /. float_of_int (2 * sub);
    counts = [||];
    n = 0;
    sum = 0.0;
    min = infinity;
    max = neg_infinity;
  }

let rel_error t = t.rel_error

(* Bucket index of [v >= 0]. The octave scaling multiplies by exact
   powers of two (Histogram's exponent-loop idiom, kept
   self-tail-recursive so the float stays in a register), and the
   final mantissa sub-bucket is an exact product: the index is the
   mathematically correct one for every finite [v]. *)
let rec log_index v acc sub =
  if v >= 65536.0 then log_index (v *. (1.0 /. 65536.0)) (acc + (16 * sub)) sub
  else if v >= 16.0 then log_index (v *. (1.0 /. 16.0)) (acc + (4 * sub)) sub
  else if v >= 2.0 then log_index (v *. 0.5) (acc + sub) sub
  else acc + int_of_float ((v -. 1.0) *. float_of_int sub)

let index_of t v =
  if v < 1.0 then int_of_float (v *. float_of_int t.sub)
  else begin
    let i = log_index v t.sub t.sub in
    let last = n_buckets t.sub - 1 in
    if i >= last then last else i
  end

let add t v =
  let v = if v < 0.0 then 0.0 else v in
  if Array.length t.counts = 0 then t.counts <- Array.make (n_buckets t.sub) 0;
  let i = index_of t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.n

let sum t = t.sum

let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let min_value t = if t.n = 0 then 0.0 else t.min

let max_value t = if t.n = 0 then 0.0 else t.max

(* Edges of bucket [i]: [0, sub) are the linear sub-unit buckets,
   [sub + e*sub + s] covers 2^e * [1 + s/sub, 1 + (s+1)/sub), and the
   last bucket is the overflow tail. *)
let bucket_lower t i =
  if i < t.sub then float_of_int i /. float_of_int t.sub
  else begin
    let e = (i - t.sub) / t.sub and s = (i - t.sub) mod t.sub in
    Float.ldexp (1.0 +. (float_of_int s /. float_of_int t.sub)) e
  end

let bucket_upper t i =
  if i >= n_buckets t.sub - 1 then infinity else bucket_lower t (i + 1)

let clamp t v =
  if v < t.min then t.min else if v > t.max then t.max else v

(* Midpoint estimate for the sample in bucket [i], clamped to the
   observed range (clamping can only reduce the error: every sample in
   the bucket lies within [min, max]). The overflow bucket has no
   midpoint and reports the observed max. *)
let estimate t i =
  if i >= n_buckets t.sub - 1 then t.max
  else clamp t (0.5 *. (bucket_lower t i +. bucket_upper t i))

(* Histogram's rank rule: the p-th percentile is the rank-th smallest
   sample with rank = clamp(round(n * p / 100), 1, n). *)
let rank_of n p =
  let r = int_of_float (Float.round (float_of_int n *. p /. 100.0)) in
  if r < 1 then 1 else if r > n then n else r

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let rank = rank_of t.n p in
    let seen = ref 0 and result = ref 0.0 in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if !seen >= rank then begin
             result := estimate t i;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    !result
  end

let merge ~into src =
  if into.sub <> src.sub then
    invalid_arg "Sketch.merge: mismatched resolutions";
  if src.n > 0 then begin
    if Array.length into.counts = 0 then
      into.counts <- Array.make (n_buckets into.sub) 0;
    Array.iteri
      (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
      src.counts;
    into.n <- into.n + src.n;
    into.sum <- into.sum +. src.sum;
    if src.min < into.min then into.min <- src.min;
    if src.max > into.max then into.max <- src.max
  end

(* Non-empty buckets as (inclusive-ish upper edge, count), low to
   high; the overflow bucket reports the observed max as its edge. *)
let buckets t =
  let acc = ref [] in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let upper = bucket_upper t i in
        let upper = if upper = infinity then t.max else upper in
        acc := (upper, c) :: !acc
      end)
    t.counts;
  List.rev !acc

let reset t =
  if Array.length t.counts > 0 then
    Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity

(* ---- windows ----

   A window is a baseline snapshot of the counts: the delta between
   the live sketch and its baseline is the distribution of everything
   added since [window_roll]. Producers keep writing the one
   cumulative sketch (no double write on the hot path); the snapshot
   subsystem reads window quantiles at each tick and rolls the
   baseline, so windowed emission costs one array blit per window. *)

type window = {
  mutable w_counts : int array;  (* [||] until the source materializes *)
  mutable w_n : int;
  mutable w_sum : float;
}

let window_of t =
  {
    w_counts = (if Array.length t.counts = 0 then [||] else Array.copy t.counts);
    w_n = t.n;
    w_sum = t.sum;
  }

let window_roll t w =
  (if Array.length t.counts > 0 then
     if Array.length w.w_counts = Array.length t.counts then
       Array.blit t.counts 0 w.w_counts 0 (Array.length t.counts)
     else w.w_counts <- Array.copy t.counts);
  w.w_n <- t.n;
  w.w_sum <- t.sum

let window_count t w = t.n - w.w_n

let window_sum t w = t.sum -. w.w_sum

let base_count w i = if Array.length w.w_counts = 0 then 0 else w.w_counts.(i)

let window_percentile t w p =
  let n = window_count t w in
  if n <= 0 then 0.0
  else begin
    let rank = rank_of n p in
    let seen = ref 0 and result = ref 0.0 in
    (try
       Array.iteri
         (fun i c ->
           let d = c - base_count w i in
           if d > 0 then begin
             seen := !seen + d;
             if !seen >= rank then begin
               (* Clamped to the cumulative [min, max] — a superset of
                  the window's range, so the clamp stays sound. *)
               result := estimate t i;
               raise Exit
             end
           end)
         t.counts
     with Exit -> ());
    !result
  end

(* Fold everything added since the baseline into [into] (same
   resolution required); [into]'s range conservatively absorbs the
   cumulative [min, max]. Used to merge per-core per-phase windows
   into one per-phase distribution at each snapshot tick. *)
let window_merge t w ~into =
  if into.sub <> t.sub then
    invalid_arg "Sketch.window_merge: mismatched resolutions";
  let dn = window_count t w in
  if dn > 0 then begin
    if Array.length into.counts = 0 then
      into.counts <- Array.make (n_buckets into.sub) 0;
    Array.iteri
      (fun i c ->
        let d = c - base_count w i in
        if d > 0 then into.counts.(i) <- into.counts.(i) + d)
      t.counts;
    into.n <- into.n + dn;
    into.sum <- into.sum +. window_sum t w;
    if t.min < into.min then into.min <- t.min;
    if t.max > into.max then into.max <- t.max
  end

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.1f min=%.1f max=%.1f p50=%.1f p99=%.1f (±%.2g rel)"
    t.n (mean t) (min_value t) (max_value t) (percentile t 50.0)
    (percentile t 99.0) t.rel_error
