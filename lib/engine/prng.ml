(* splitmix64 (Steele, Lea, Flood 2014), truncated to OCaml's 63-bit
   native ints. Good statistical quality for simulation workloads and
   trivially splittable. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next64 t in
  { state = mix seed }

(* FNV-1a over the label, folded into the parent's *current* state.
   The parent is not advanced: a labelled child can be added (e.g. the
   fault stream) without perturbing any stream later forked from [t]
   via [split]. *)
let split_label t ~label =
  let h =
    String.fold_left
      (fun acc c ->
        Int64.mul (Int64.logxor acc (Int64.of_int (Char.code c))) 0x100000001B3L)
      0xCBF29CE484222325L label
  in
  { state = mix (Int64.logxor (mix t.state) (Int64.add h golden_gamma)) }

let next t = Int64.to_int (next64 t) land max_int

(* Rejection sampling: [next] is uniform on [0, max_int], and plain
   [next t mod bound] over-weights small residues whenever [bound]
   does not divide max_int + 1. Discard draws above the largest
   multiple of [bound]; acceptance probability is always > 1/2. *)
let int t bound =
  assert (bound > 0);
  let rem = ((max_int mod bound) + 1) mod bound in
  let limit = max_int - rem in
  let rec go () =
    let v = next t in
    if v > limit then go () else v mod bound
  in
  go ()

let float t =
  (* 53 random bits into the mantissa. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next64 t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
