type 'a t = {
  sim : Sim.t;
  queue : 'a Queue.t;
  mutable waiter : ('a -> unit) option;
}

let create sim = { sim; queue = Queue.create (); waiter = None }

let length mb = Queue.length mb.queue

let is_empty mb = Queue.is_empty mb.queue

let deliver mb v =
  match mb.waiter with
  | Some resume ->
      mb.waiter <- None;
      resume v
  | None -> Queue.push v mb.queue

let send mb v = deliver mb v

let send_at mb ~at v = Sim.schedule mb.sim ~at (fun () -> deliver mb v)

let recv mb =
  match Queue.take_opt mb.queue with
  | Some v -> v
  | None ->
      Sim.suspend (fun resume ->
          if mb.waiter <> None then
            invalid_arg "Mailbox.recv: mailbox already has a waiter";
          mb.waiter <- Some resume)

let try_recv mb = Queue.take_opt mb.queue
