(* Unbounded FIFO mailbox over a power-of-two ring buffer, with timed
   deliveries routed through a Sim port: [send_at] parks the payload in
   a pooled slot and schedules just (port, slot) ints — no per-message
   closure — and the port handler moves the payload to the ring (or
   directly to a blocked receiver) at delivery time. *)

type 'a t = {
  sim : Sim.t;
  mutable buf : 'a array; (* ring; capacity a power of two *)
  mutable head : int; (* read position *)
  mutable len : int;
  mutable waiter : ('a -> unit) option;
  mutable port : int; (* Sim port for timed deliveries *)
  mutable slots : 'a array; (* in-flight timed-delivery payloads *)
  mutable free : int array; (* free slot indices, used as a stack *)
  mutable free_top : int;
}

(* Immediate dummy for empty ring and slot cells: never read, keeps
   dead cells from retaining delivered payloads, and forces
   [Array.make] to build generic (non-flat) arrays. [Obj.magic] is
   confined to this one constant. *)
let dummy : 'a. unit -> 'a = fun () -> Obj.magic 0

let ring_push mb v =
  let cap = Array.length mb.buf in
  if mb.len = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nb = Array.make ncap (dummy ()) in
    for i = 0 to mb.len - 1 do
      nb.(i) <- mb.buf.((mb.head + i) land (cap - 1))
    done;
    mb.buf <- nb;
    mb.head <- 0
  end;
  mb.buf.((mb.head + mb.len) land (Array.length mb.buf - 1)) <- v;
  mb.len <- mb.len + 1

(* Precondition: [mb.len > 0]. *)
let ring_pop mb =
  let i = mb.head in
  let v = mb.buf.(i) in
  mb.buf.(i) <- dummy ();
  mb.head <- (i + 1) land (Array.length mb.buf - 1);
  mb.len <- mb.len - 1;
  v

let deliver mb v =
  match mb.waiter with
  | Some resume ->
      mb.waiter <- None;
      resume v
  | None -> ring_push mb v

(* [free] always has one index per slot, so releasing never overflows. *)
let deliver_slot mb slot =
  let v = mb.slots.(slot) in
  mb.slots.(slot) <- dummy ();
  mb.free.(mb.free_top) <- slot;
  mb.free_top <- mb.free_top + 1;
  deliver mb v

let create sim =
  let mb =
    {
      sim;
      buf = [||];
      head = 0;
      len = 0;
      waiter = None;
      port = -1;
      slots = [||];
      free = [||];
      free_top = 0;
    }
  in
  mb.port <- Sim.register_port sim (fun slot -> deliver_slot mb slot);
  mb

let length mb = mb.len

let is_empty mb = mb.len = 0

let send mb v = deliver mb v

let alloc_slot mb v =
  if mb.free_top = 0 then begin
    let old = Array.length mb.slots in
    let ncap = if old = 0 then 16 else 2 * old in
    let ns = Array.make ncap (dummy ()) in
    Array.blit mb.slots 0 ns 0 old;
    mb.slots <- ns;
    let nf = Array.make ncap 0 in
    for i = 0 to ncap - old - 1 do
      nf.(i) <- old + i
    done;
    mb.free <- nf;
    mb.free_top <- ncap - old
  end;
  mb.free_top <- mb.free_top - 1;
  let slot = mb.free.(mb.free_top) in
  mb.slots.(slot) <- v;
  slot

let send_at mb ~at v =
  let slot = alloc_slot mb v in
  Sim.schedule_port mb.sim ~at ~port:mb.port ~slot

let recv mb =
  if mb.len > 0 then ring_pop mb
  else
    Sim.suspend (fun resume ->
        if mb.waiter <> None then
          invalid_arg "Mailbox.recv: mailbox already has a waiter";
        mb.waiter <- Some resume)

let try_recv mb = if mb.len > 0 then Some (ring_pop mb) else None

let recv_timeout mb ~timeout_ns =
  if mb.len > 0 then Some (ring_pop mb)
  else
    Sim.suspend (fun resume ->
        if mb.waiter <> None then
          invalid_arg "Mailbox.recv_timeout: mailbox already has a waiter";
        let fired = ref false in
        let rec wait v =
          if not !fired then begin
            fired := true;
            resume (Some v)
          end
        and cancel () =
          if not !fired then begin
            fired := true;
            (* Only uninstall our own waiter: a later [recv] may have
               replaced it after a delivery already resumed us. *)
            (match mb.waiter with
            | Some w when w == wait -> mb.waiter <- None
            | _ -> ());
            resume None
          end
        in
        mb.waiter <- Some wait;
        Sim.schedule mb.sim ~at:(Sim.now mb.sim +. timeout_ns) cancel)
