type 'a t = {
  sim : Sim.t;
  queue : 'a Queue.t;
  mutable waiter : ('a -> unit) option;
}

let create sim = { sim; queue = Queue.create (); waiter = None }

let length mb = Queue.length mb.queue

let is_empty mb = Queue.is_empty mb.queue

let deliver mb v =
  match mb.waiter with
  | Some resume ->
      mb.waiter <- None;
      resume v
  | None -> Queue.push v mb.queue

let send mb v = deliver mb v

let send_at mb ~at v = Sim.schedule mb.sim ~at (fun () -> deliver mb v)

let recv mb =
  match Queue.take_opt mb.queue with
  | Some v -> v
  | None ->
      Sim.suspend (fun resume ->
          if mb.waiter <> None then
            invalid_arg "Mailbox.recv: mailbox already has a waiter";
          mb.waiter <- Some resume)

let try_recv mb = Queue.take_opt mb.queue

let recv_timeout mb ~timeout_ns =
  match Queue.take_opt mb.queue with
  | Some v -> Some v
  | None ->
      Sim.suspend (fun resume ->
          if mb.waiter <> None then
            invalid_arg "Mailbox.recv_timeout: mailbox already has a waiter";
          let fired = ref false in
          let rec wait v =
            if not !fired then begin
              fired := true;
              resume (Some v)
            end
          and cancel () =
            if not !fired then begin
              fired := true;
              (* Only uninstall our own waiter: a later [recv] may have
                 replaced it after a delivery already resumed us. *)
              (match mb.waiter with
              | Some w when w == wait -> mb.waiter <- None
              | _ -> ());
              resume None
            end
          in
          mb.waiter <- Some wait;
          Sim.schedule mb.sim ~at:(Sim.now mb.sim +. timeout_ns) cancel)
