(** Deterministic splitmix64 pseudo-random number generator.

    Every source of randomness in the simulator draws from an explicit
    [Prng.t] so that runs are reproducible from a single seed. *)

type t

val create : seed:int -> t

(** [split t] derives an independent stream (e.g. one per simulated
    core) without perturbing [t]'s own sequence statistics. *)
val split : t -> t

(** [split_label t ~label] derives an independent child stream from
    [t]'s current state and [label] {e without advancing} [t]:
    unlike {!split} it draws nothing from the parent, so introducing a
    labelled consumer leaves every other stream derived from [t]
    bit-for-bit unchanged. Distinct labels give distinct streams. *)
val split_label : t -> label:string -> t

(** Next raw 64-bit value (as an OCaml [int], so 63 bits, non-negative). *)
val next : t -> int

(** [int t bound] is uniform in [\[0, bound)] — rejection-sampled, so
    free of modulo bias for every bound. [bound] must be > 0. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** [pick t arr] selects a uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a
