(* Fixed-capacity ring buffer of (virtual-timestamp, event) pairs.

   The tracer is disabled by default and costs one mutable-field read
   on the hot path: call sites must guard event construction with
   [if Trace.enabled t then Trace.record ...] so that a disabled trace
   allocates nothing. When enabled, the newest events win: once the
   ring is full the oldest entry is overwritten and counted in
   [dropped]. Timestamps are supplied by the caller (virtual time),
   keeping this module independent of any particular clock. *)

type 'a t = {
  capacity : int;
  mutable enabled : bool;
  times : float array;
  mutable events : 'a array;  (* created lazily: needs a filler value *)
  mutable head : int;  (* next write position *)
  mutable len : int;  (* live entries, <= capacity *)
  mutable dropped : int;
  (* Optional tap fed every recorded event before it enters the ring:
     unlike the ring it never drops, so a history checker or streaming
     log sees the complete run even when the ring wraps. *)
  mutable sink : (float -> 'a -> unit) option;
  (* Second, independent tap with the same contract: the flight
     recorder counts events here without disturbing whatever checker
     owns [sink] (Collector.attach/detach overwrite it freely). *)
  mutable tap : (float -> 'a -> unit) option;
}

let create ?(capacity = 65_536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    enabled = false;
    times = Array.make capacity 0.0;
    events = [||];
    head = 0;
    len = 0;
    dropped = 0;
    sink = None;
    tap = None;
  }

let enabled t = t.enabled

let enable t = t.enabled <- true

let disable t = t.enabled <- false

let capacity t = t.capacity

let length t = t.len

let dropped t = t.dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  (* Release event references so a cleared trace retains nothing. *)
  t.events <- [||]

let set_sink t sink = t.sink <- sink

(* Compose two sink-shaped consumers into one, so e.g. a streaming
   checker and a history-log writer can share the single sink slot. *)
let fanout f g now ev =
  f now ev;
  g now ev

let set_tap t tap = t.tap <- tap

let record t ~now ev =
  if t.enabled then begin
    (match t.sink with Some f -> f now ev | None -> ());
    (match t.tap with Some f -> f now ev | None -> ());
    if Array.length t.events = 0 then t.events <- Array.make t.capacity ev;
    t.times.(t.head) <- now;
    t.events.(t.head) <- ev;
    t.head <- (t.head + 1) mod t.capacity;
    if t.len < t.capacity then t.len <- t.len + 1 else t.dropped <- t.dropped + 1
  end

(* Oldest-first iteration. *)
let iter t f =
  let start = (t.head - t.len + t.capacity) mod t.capacity in
  for k = 0 to t.len - 1 do
    let i = (start + k) mod t.capacity in
    f t.times.(i) t.events.(i)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun ts ev -> acc := (ts, ev) :: !acc);
  List.rev !acc
