(* Windowed time-series sampler driven by simulated time: a recurring
   [Sim.schedule] callback that, every [window_ns] of virtual time,
   reads a set of registered channels and appends one value per
   channel. Sampling costs zero virtual time (schedule callbacks run
   between processes) and zero wall-clock beyond the channel reads, so
   throughput/abort-rate curves over time come for free.

   Channel kinds:
   - [Cumulative]: the closure returns a monotone running total (e.g.
     total commits); the recorded value is the per-window delta. Events
     landing exactly on a window edge are counted in exactly one window
     (whichever side of the tick the simulator ordered them on),
     because consecutive deltas of one counter partition its growth.
   - [Gauge]: the closure returns an instantaneous value (e.g. current
     queue depth), recorded as-is.

   The sampler stops rescheduling itself once it is the only remaining
   simulation activity, so runs that terminate by draining the event
   queue (rather than by horizon) still terminate. *)

type kind = Cumulative | Gauge

type channel = {
  name : string;
  kind : kind;
  read : unit -> float;
  mutable prev : float;
  mutable values : float list;  (* newest first *)
}

type t = {
  window_ns : float;
  mutable channels : channel list;  (* registration order, reversed *)
  mutable times : float list;  (* window-end times, newest first *)
  mutable n_windows : int;
  mutable started : bool;
}

let create ~window_ns =
  if not (window_ns > 0.0) then
    invalid_arg "Timeseries.create: window must be positive";
  { window_ns; channels = []; times = []; n_windows = 0; started = false }

let window_ns t = t.window_ns

let n_windows t = t.n_windows

let add_channel t ~name kind read =
  if t.started then invalid_arg "Timeseries.add_channel: sampler already started";
  if List.exists (fun c -> c.name = name) t.channels then
    invalid_arg (Printf.sprintf "Timeseries.add_channel: duplicate channel %S" name);
  t.channels <- { name; kind; read; prev = 0.0; values = [] } :: t.channels

let sample t now =
  t.times <- now :: t.times;
  t.n_windows <- t.n_windows + 1;
  List.iter
    (fun c ->
      match c.kind with
      | Cumulative ->
          let v = c.read () in
          c.values <- (v -. c.prev) :: c.values;
          c.prev <- v
      | Gauge -> c.values <- c.read () :: c.values)
    t.channels

let start t sim =
  if t.started then invalid_arg "Timeseries.start: already started";
  t.started <- true;
  (* Baseline for cumulative channels: deltas are measured from the
     moment sampling starts, not from zero. *)
  List.iter (fun c -> if c.kind = Cumulative then c.prev <- c.read ()) t.channels;
  let rec tick at () =
    sample t at;
    (* Inside a callback the executing event is already popped: a zero
       pending count means nothing else will ever run — stop, or the
       sampler alone would keep the simulation alive to the horizon. *)
    if Sim.pending sim > 0 then
      Sim.schedule sim ~at:(at +. t.window_ns) (tick (at +. t.window_ns))
  in
  let first = Sim.now sim +. t.window_ns in
  Sim.schedule sim ~at:first (tick first)

(* Window-end times, oldest first. *)
let times t = Array.of_list (List.rev t.times)

(* (name, kind, per-window values oldest first), in registration order. *)
let channels t =
  List.rev_map (fun c -> (c.name, c.kind, Array.of_list (List.rev c.values))) t.channels
