(** Log-linear ("HDR-style") mergeable quantile sketch of non-negative
    measurements, with a configurable relative-error bound.

    Each octave [2^e, 2^(e+1)) is divided into [sub] linear
    sub-buckets ([sub] a power of two chosen from [rel_error]); values
    below 1.0 use [sub] linear buckets over [0, 1) and values at or
    above 2^40 share one overflow bucket. A quantile estimate is the
    midpoint of the bucket holding the rank-th sample, clamped to the
    observed range, so it is within a factor [1 +- rel_error t] of the
    true order statistic (absolutely within [rel_error t] below 1.0;
    the overflow bucket reports the exact observed max).

    {!add} is O(1) and allocation-free after the first sample.
    {!merge} adds bucket counts elementwise — associative and
    order-independent — so per-core sketches combine into one
    distribution without retaining samples. Memory is a fixed
    [sub * 41 + 1] ints per materialized sketch, independent of how
    many samples were added. *)

type t

(** [create ?rel_error ()] — the achieved bound {!rel_error} is the
    largest [1/(2*sub)] (sub a power of two) at or below the request;
    default 0.01 (achieved 1/128). Raises outside (0, 0.5). *)
val create : ?rel_error:float -> unit -> t

(** The documented relative-error bound actually guaranteed. *)
val rel_error : t -> float

val add : t -> float -> unit

val count : t -> int

val sum : t -> float

(** 0.0 when empty (like {!Tm2c_engine.Histogram}). *)
val mean : t -> float

val min_value : t -> float

val max_value : t -> float

(** [percentile t p] for [0 < p <= 100]: midpoint estimate for the
    rank-th smallest sample, rank = clamp(round(n*p/100), 1, n);
    0 when empty. *)
val percentile : t -> float -> float

(** [merge ~into src] adds [src]'s counts into [into]. Both sketches
    must have been created with the same resolution. [src] is
    unchanged. *)
val merge : into:t -> t -> unit

(** Non-empty buckets as (upper edge, count), low to high; the
    overflow bucket reports the observed max as its edge. *)
val buckets : t -> (float * int) list

val reset : t -> unit

(** {2 Windows}

    A window is a baseline snapshot of the counts; the delta between
    the live sketch and the baseline is the distribution of samples
    added since the last {!window_roll}. Producers keep writing one
    cumulative sketch (no extra hot-path work); a snapshot subsystem
    reads the window view each tick, then rolls the baseline. *)

type window

(** Baseline a window at [t]'s current contents. *)
val window_of : t -> window

(** Re-baseline [w] at [t]'s current contents (one array blit). *)
val window_roll : t -> window -> unit

(** Samples added since the baseline. *)
val window_count : t -> window -> int

val window_sum : t -> window -> float

(** Quantile over the samples added since the baseline (estimates are
    clamped to the cumulative observed range, a superset of the
    window's). 0 when the window is empty. *)
val window_percentile : t -> window -> float -> float

(** [window_merge t w ~into] folds the since-baseline delta into
    [into] (same resolution required); [into]'s range conservatively
    absorbs [t]'s cumulative min/max. *)
val window_merge : t -> window -> into:t -> unit

val pp : Format.formatter -> t -> unit
