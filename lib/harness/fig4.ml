(* Section 5.2 — the hash table benchmark: Figs. 4(a), 4(b), 4(c). *)

open Tm2c_core
open Tm2c_apps

(* Per-operation local work of the benchmark harness (operation
   generation, key derivation, value handling) on the 533 MHz P54C,
   calibrated against Fig. 4(b)'s sequential baseline. It runs outside
   the transaction, and under the multitasking deployment it is the
   local computation that delays remote service requests (Fig. 2). *)
let payload_cycles = 30_000

(* Initial load factor [lf] with a key range that keeps the expected
   size stable under a symmetric add/remove mix. *)
let setup_ht ~buckets ~lf t =
  let ht = Hashtable.create t ~n_buckets:buckets in
  let n = lf * buckets in
  Hashtable.populate ht (Runtime.fork_prng t) ~n ~key_range:(2 * n);
  (ht, 2 * n)

let throughput (scale : Exp.scale) ~deployment ~wmode ~buckets ~lf ~updates ~moves
    ~total =
  let service = match deployment with
    | Runtime.Multitask -> total
    | Runtime.Dedicated -> max 1 (total / 2)
  in
  let cfg = Exp.config ~deployment ~wmode ~service ~total () in
  let t = Runtime.create cfg in
  let ht, range = setup_ht ~buckets ~lf t in
  let r =
    Workload.drive t ~duration_ns:scale.Exp.window_ns
      (Exp.ht_mix ht ~updates ~moves ~payload:payload_cycles ~range)
  in
  r

(* Fig. 4(a): multitasked vs dedicated deployment, load factors 2 and
   8, 20% updates. *)
let fig4a (scale : Exp.scale) =
  let cell deployment lf total =
    (throughput scale ~deployment ~wmode:Tx.Lazy ~buckets:scale.Exp.ht_buckets ~lf
       ~updates:20 ~moves:0 ~total)
      .Workload.throughput_ops_ms
  in
  let rows =
    List.map
      (fun n ->
        ( Exp.row_label_int n,
          [
            cell Runtime.Multitask 2 n;
            cell Runtime.Multitask 8 n;
            cell Runtime.Dedicated 2 n;
            cell Runtime.Dedicated 8 n;
          ] ))
      Exp.core_series
  in
  Exp.print_table
    ~title:"Fig 4(a) - hash table: multitasked vs dedicated deployment (Ops/ms, 20% updates)"
    ~header:[ "cores"; "multi,lf2"; "multi,lf8"; "ded,lf2"; "ded,lf8" ]
    rows

(* Fig. 4(b): speedup of TM2C on 24+24 cores over bare sequential on
   one core, as a function of the load factor, for various update
   ratios. *)
let fig4b (scale : Exp.scale) =
  let buckets = scale.Exp.ht_buckets in
  let speedup ~lf ~updates =
    let tx =
      (throughput scale ~deployment:Runtime.Dedicated ~wmode:Tx.Lazy ~buckets ~lf
         ~updates ~moves:0 ~total:48)
        .Workload.throughput_ops_ms
    in
    let seq =
      Exp.seq_throughput ~window_ns:scale.Exp.window_ns
        ~setup:(fun t -> (t, setup_ht ~buckets ~lf t))
        ~op:(fun (t, (ht, range)) ~core prng ->
          let env = Runtime.env t in
          fun () ->
            Tm2c_noc.Network.compute env.System.net payload_cycles;
            let k = Tm2c_engine.Prng.int prng range in
            let p = Tm2c_engine.Prng.int prng 100 in
            if p < updates then
              if p land 1 = 0 then ignore (Hashtable.seq_add env ~core ht k)
              else ignore (Hashtable.seq_remove env ~core ht k)
            else ignore (Hashtable.seq_contains env ~core ht k))
        ()
    in
    Exp.ratio tx seq
  in
  let rows =
    List.map
      (fun lf ->
        ( Exp.row_label_int lf,
          List.map (fun updates -> speedup ~lf ~updates) [ 20; 30; 40; 50 ] ))
      [ 2; 4; 6; 8 ]
  in
  Exp.print_table
    ~title:"Fig 4(b) - hash table: speedup over sequential (48 cores: 24 app + 24 DTM)"
    ~header:[ "load"; "20%upd"; "30%upd"; "40%upd"; "50%upd" ]
    rows

(* Fig. 4(c): eager vs lazy write-lock acquisition; 30% updates of
   which 20 points are move operations (write in mid-transaction). *)
let fig4c (scale : Exp.scale) =
  (* "64" / "128" are the (small, contended) table sizes; load factor
     4, so 16 / 32 buckets. *)
  let run wmode size total =
    throughput scale ~deployment:Runtime.Dedicated ~wmode ~buckets:(size / 4) ~lf:4
      ~updates:30 ~moves:20 ~total
  in
  let results =
    List.map
      (fun n ->
        (n, run Tx.Eager 64 n, run Tx.Lazy 64 n, run Tx.Eager 128 n, run Tx.Lazy 128 n))
      Exp.core_series
  in
  Exp.print_table
    ~title:"Fig 4(c) left - eager vs lazy write-lock acquisition (Ops/ms)"
    ~header:[ "cores"; "eager,64"; "lazy,64"; "eager,128"; "lazy,128" ]
    (List.map
       (fun (n, e64, l64, e128, l128) ->
         ( Exp.row_label_int n,
           [
             e64.Workload.throughput_ops_ms;
             l64.Workload.throughput_ops_ms;
             e128.Workload.throughput_ops_ms;
             l128.Workload.throughput_ops_ms;
           ] ))
       results);
  Exp.print_table
    ~title:"Fig 4(c) right - commit rate (%)"
    ~header:[ "cores"; "eager,64"; "lazy,64"; "eager,128"; "lazy,128" ]
    (List.map
       (fun (n, e64, l64, e128, l128) ->
         ( Exp.row_label_int n,
           [
             e64.Workload.commit_rate;
             l64.Workload.commit_rate;
             e128.Workload.commit_rate;
             l128.Workload.commit_rate;
           ] ))
       results)
