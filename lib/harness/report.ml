(* Serialize one run — workload result plus the observability metrics
   gathered by the runtime — as JSON. This is the export layer behind
   [bench/main.exe <id> --json out.json]. *)

open Tm2c_core
open Tm2c_noc
open Tm2c_engine

let config_json (cfg : Runtime.config) =
  Json.Obj
    [
      ("platform", Json.String cfg.Runtime.platform.Platform.name);
      ("total_cores", Json.Int cfg.Runtime.total_cores);
      ("service_cores", Json.Int cfg.Runtime.service_cores);
      ( "deployment",
        Json.String
          (match cfg.Runtime.deployment with
          | Runtime.Dedicated -> "dedicated"
          | Runtime.Multitask -> "multitask") );
      ("policy", Json.String (Cm.name cfg.Runtime.policy));
      ( "wmode",
        Json.String (match cfg.Runtime.wmode with Tx.Eager -> "eager" | Tx.Lazy -> "lazy") );
      ("batching", Json.Bool cfg.Runtime.batching);
      ("max_skew_ns", Json.Float cfg.Runtime.max_skew_ns);
      ("seed", Json.Int cfg.Runtime.seed);
    ]

let result_json (r : Tm2c_apps.Workload.result) =
  let open Tm2c_apps.Workload in
  Json.Obj
    [
      ("ops", Json.Int r.ops);
      ("duration_ms", Json.Float r.duration_ms);
      ("throughput_ops_ms", Json.Float r.throughput_ops_ms);
      ("commits", Json.Int r.commits);
      ("aborts", Json.Int r.aborts);
      (* nan (zero-commit window) serializes as null; the marker makes
         the dead window explicit for consumers. *)
      ("commit_rate", Json.Float r.commit_rate);
      ("no_commits", Json.Bool (r.commits = 0 && r.aborts = 0));
      ("worst_attempts", Json.Int r.worst_attempts);
      ("messages", Json.Int r.messages);
      ("sim_events", Json.Int r.events);
      (* The run was cut off with work still incomplete (v6): a
         horizon-terminated completion run, a window where some core
         never progressed, or an open-loop drain that left admitted
         requests unresolved. *)
      ("horizon_hit", Json.Bool r.horizon_hit);
    ]

let cores_json stats ~n =
  let rows = ref [] in
  for i = n - 1 downto 0 do
    let c = Stats.core stats i in
    if c.Stats.commits + Stats.aborts c + c.Stats.ops > 0 then
      rows :=
        Json.Obj
          [
            ("core", Json.Int i);
            ("commits", Json.Int c.Stats.commits);
            ("aborts", Json.Int (Stats.aborts c));
            ("aborts_raw", Json.Int c.Stats.aborts_raw);
            ("aborts_waw", Json.Int c.Stats.aborts_waw);
            ("aborts_war", Json.Int c.Stats.aborts_war);
            ("aborts_status", Json.Int c.Stats.aborts_status);
            ("ops", Json.Int c.Stats.ops);
            ("tx_reads", Json.Int c.Stats.tx_reads);
            ("tx_writes", Json.Int c.Stats.tx_writes);
            ("max_attempts", Json.Int c.Stats.max_attempts);
          ]
        :: !rows
  done;
  Json.List !rows

(* Quantile-sketch summary (schema v5: sketches replace the
   bucket-edge histogram percentiles everywhere; [rel_error] documents
   the estimates' guaranteed relative-error bound and [p999] joins the
   quantile ladder). [buckets] (off for the per-phase sketches, which
   would dominate the export) adds the raw (upper edge, count) rows. *)
let sketch_json ?(buckets = false) sk =
  Json.Obj
    ([
       ("count", Json.Int (Sketch.count sk));
       ("sum", Json.Float (Sketch.sum sk));
       ("mean", Json.Float (Sketch.mean sk));
       ("min", Json.Float (Sketch.min_value sk));
       ("max", Json.Float (Sketch.max_value sk));
       ("p50", Json.Float (Sketch.percentile sk 50.0));
       ("p90", Json.Float (Sketch.percentile sk 90.0));
       ("p99", Json.Float (Sketch.percentile sk 99.0));
       ("p999", Json.Float (Sketch.percentile sk 99.9));
       ("rel_error", Json.Float (Sketch.rel_error sk));
     ]
    @
    if buckets then
      [
        ( "buckets",
          Json.List
            (List.map
               (fun (upper, n) -> Json.List [ Json.Float upper; Json.Int n ])
               (Sketch.buckets sk)) );
      ]
    else [])

let network_json net =
  let m = Network.metrics net in
  Json.Obj
    [
      ("sent", Json.Int (Network.sent net));
      ("received", Json.Int m.Network.received);
      ("poll_scans", Json.Int m.Network.poll_scans);
      ("poll_scan_ns", Json.Float m.Network.poll_scan_ns);
      ("latency_ns", sketch_json ~buckets:true m.Network.latency);
      ( "top_links",
        Json.List
          (List.map
             (fun (src, dst, n) ->
               Json.List [ Json.Int src; Json.Int dst; Json.Int n ])
             (Network.top_links net)) );
    ]

let dtm_json servers =
  Json.List
    (List.map
       (fun s ->
         let qmean, qmax = Dtm.queue_depth_stats s in
         let omean, omax = Dtm.occupancy_stats s in
         Json.Obj
           [
             ("core", Json.Int (Dtm.core s));
             ("served", Json.Int (Dtm.served s));
             ("busy_ns", Json.Float (Dtm.busy_ns s));
             ("resp_cache", Json.Int (Dtm.resp_cache_size s));
             ("lease_reclaims", Json.Int (Dtm.lease_reclaims s));
             ( "queue_depth",
               Json.Obj [ ("mean", Json.Float qmean); ("max", Json.Int qmax) ] );
             ( "occupancy",
               Json.Obj [ ("mean", Json.Float omean); ("max", Json.Int omax) ] );
           ])
       servers)

(* [status] is the status-CAS abort count (remote revocations noticed
   at the victim), summed over cores: those aborts have no CM
   arbitration record in [obs], so they surface under the "STATUS"
   key — the same label [Event.conflict_opt_to_string] renders for
   the [None] cause. *)
let aborts_json ~policy ~status obs =
  Json.Obj
    [
      ("policy", Json.String (Cm.name policy));
      ("total", Json.Int (Obs.total obs));
      ( "by_conflict",
        Json.Obj
          (List.map
             (fun (c, n) -> (Types.conflict_to_string c, Json.Int n))
             (Obs.by_conflict obs)
          @ [ ("STATUS", Json.Int status) ]) );
      ( "causality",
        Json.List
          (List.map
             (fun ({ Obs.winner; victim; conflict }, count, addr) ->
               Json.Obj
                 [
                   ("winner", Json.Int winner);
                   ("victim", Json.Int victim);
                   ("conflict", Json.String (Types.conflict_to_string conflict));
                   ("count", Json.Int count);
                   ("last_addr", Json.Int addr);
                 ])
             (Obs.dump obs)) );
    ]

(* One Span aggregate (committed or aborted attempts) as a per-core
   list. The exported invariant — checked by bench/validate_json — is
   that on the committed side each core's per-phase sums add up to
   total_attempt_ns (1e-6 relative): the instrumentation charges every
   telescoping segment of the attempt to exactly one phase. *)
let span_json span =
  let rows = ref [] in
  for core = Span.n_cores span - 1 downto 0 do
    if Span.attempts span ~core > 0 then
      rows :=
        Json.Obj
          [
            ("core", Json.Int core);
            ("attempts", Json.Int (Span.attempts span ~core));
            ("total_attempt_ns", Json.Float (Span.attempt_ns span ~core));
            ("phase_sum_ns", Json.Float (Span.phase_total span ~core));
            ( "phases",
              Json.Obj
                (Array.to_list
                   (Array.mapi
                      (fun phase name ->
                        ( name,
                          Json.Obj
                            [
                              ("sum", Json.Float (Span.sum span ~core ~phase));
                              ("sketch", sketch_json (Span.sketch span ~core ~phase));
                            ] ))
                      (Span.phases span))) );
          ]
        :: !rows
  done;
  Json.List !rows

let phases_json t =
  let committed = Runtime.span_commit t in
  Json.Obj
    [
      ("enabled", Json.Bool (Span.enabled committed));
      ( "names",
        Json.List
          (Array.to_list (Array.map (fun n -> Json.String n) (Span.phases committed)))
      );
      ("committed", span_json committed);
      ("aborted", span_json (Runtime.span_abort t));
    ]

let timeseries_json ts =
  let float_row a = Json.List (Array.to_list (Array.map (fun v -> Json.Float v) a)) in
  Json.Obj
    [
      ("window_ns", Json.Float (Timeseries.window_ns ts));
      ("n_windows", Json.Int (Timeseries.n_windows ts));
      ("t_ns", float_row (Timeseries.times ts));
      ( "channels",
        Json.Obj
          (List.map
             (fun (name, kind, values) ->
               ( name,
                 Json.Obj
                   [
                     ( "kind",
                       Json.String
                         (match kind with
                         | Timeseries.Cumulative -> "cumulative"
                         | Timeseries.Gauge -> "gauge") );
                     ("values", float_row values);
                   ] ))
             (Timeseries.channels ts)) );
    ]

let trace_json t =
  let tr = Runtime.trace t in
  Json.Obj
    [
      ("enabled", Json.Bool (Trace.enabled tr));
      ("capacity", Json.Int (Trace.capacity tr));
      ("length", Json.Int (Trace.length tr));
      (* Events overwritten because the ring wrapped: nonzero means the
         trace (and any Perfetto export of it) holds only the tail. *)
      ("dropped", Json.Int (Trace.dropped tr));
      (* Peak number of events the attached checker sink (Collector)
         held at once — 0 when no sink was attached (v5). *)
      ("sink_high_water", Json.Int (Runtime.sink_high_water t));
    ]

(* Host-side self-profiler shares (v5): all-zero unless
   [Runtime.enable_self_profile] injected a wall clock before the run. *)
let host_profile_json t =
  Json.Obj
    (Array.to_list
       (Array.map
          (fun (name, seconds, samples) ->
            ( name,
              Json.Obj
                [
                  ("seconds", Json.Float seconds); ("samples", Json.Int samples);
                ] ))
          (Runtime.self_profile t)))

(* Flight-recorder final snapshot (v5). [windowed_sum] of each counter
   equals [total] after [finish] — the telescoping invariant
   bench/validate_json re-checks, witnessing that the windowed stream
   lost nothing. *)
let metrics_json t r =
  Json.Obj
    [
      ("window_ns", Json.Float (Recorder.window_ns r));
      ("n_windows", Json.Int (Recorder.n_windows r));
      ( "counters",
        Json.Obj
          (List.map
             (fun (name, total, windowed) ->
               ( name,
                 Json.Obj
                   [
                     ("total", Json.Float total);
                     ("windowed_sum", Json.Float windowed);
                   ] ))
             (Recorder.counter_totals r)) );
      ( "sketches",
        Json.Obj
          (List.map
             (fun (name, sk) -> (name, sketch_json sk))
             (Recorder.sketch_totals r)) );
      ( "phase_sketches",
        Json.Obj
          (List.filter_map
             (fun (name, sk) ->
               if Sketch.count sk > 0 then Some (name, sketch_json sk) else None)
             (Recorder.phase_sketches r)) );
      ( "events",
        Json.Obj
          (List.map
             (fun (name, n) -> (name, Json.Int n))
             (Recorder.event_totals r)) );
      ("host_profile", host_profile_json t);
    ]

(* Fault-injection and hardening accounting (schema v3; v4 adds the
   reorder/partition/server-crash injections and the replication
   counters). [injected] is the headline count — every fault the plan
   actually fired (drops + duplications + delay spikes + reorders +
   partition holds + crashes + server crashes) — next to the hardening
   reactions it provoked ([resends], [absorbed], [leases_reclaimed],
   [failovers], [stale_rejections]). Always present, all-zero on an
   un-faulted run, so consumers can diff faulted and clean runs
   without a shape change. *)
let faults_json t =
  let f = Runtime.faults t in
  let c = Fault.counters f in
  let env = Runtime.env t in
  Json.Obj
    [
      ("plan", Json.String (Fault.to_spec (Fault.plan f)));
      ("injected", Json.Int (Fault.injected f));
      ("dropped", Json.Int c.Fault.dropped);
      ("duplicated", Json.Int c.Fault.duplicated);
      ("delayed", Json.Int c.Fault.delayed);
      ("reordered", Json.Int c.Fault.reordered);
      ("partitioned", Json.Int c.Fault.partitioned);
      ("crashes", Json.Int c.Fault.crashes);
      ("server_crashes", Json.Int c.Fault.server_crashes);
      ("resends", Json.Int c.Fault.resends);
      ("absorbed", Json.Int c.Fault.absorbed);
      ("leases_reclaimed", Json.Int c.Fault.leases_reclaimed);
      ("replicas", Json.Int (Runtime.replicas t));
      ("replicated", Json.Int c.Fault.replicated);
      ("failovers", Json.Int c.Fault.failovers);
      ("stale_rejections", Json.Int c.Fault.stale_rejections);
      ("cache_evicted", Json.Int c.Fault.cache_evicted);
      ("timeout_ns", Json.Float env.System.req_timeout_ns);
      ("lease_ns", Json.Float env.System.lease_ns);
      ( "crashed_cores",
        Json.List
          (List.init (Platform.n_cores (Runtime.config t).Runtime.platform) Fun.id
          |> List.filter (fun core -> Fault.is_crashed f ~core)
          |> List.map (fun core -> Json.Int core)) );
    ]

(* Open-loop overload accounting (schema v6): always present and
   all-zero (policy "none") on closed-loop runs, mirroring the faults
   section, so consumers can diff open- and closed-loop runs without a
   shape change. Invariants re-checked by bench/validate_json:
   offered = admitted + shed; executed + expired <= admitted;
   goodput <= completed <= executed. *)
let openloop_json t =
  let env = Runtime.env t in
  let o = env.System.overload in
  Json.Obj
    [
      ( "policy",
        Json.String
          (match Runtime.admission t with
          | Some a -> Admission.policy_name (Admission.policy a)
          | None -> "none") );
      ("offered", Json.Int o.System.ol_offered);
      ("admitted", Json.Int o.System.ol_admitted);
      ("shed", Json.Int o.System.ol_shed);
      ("expired", Json.Int o.System.ol_expired);
      ("executed", Json.Int o.System.ol_executed);
      ("completed", Json.Int o.System.ol_completed);
      ("goodput", Json.Int o.System.ol_goodput);
      ("wasted", Json.Int o.System.ol_wasted);
      ("retries", Json.Int o.System.ol_retries);
      ("retry_exhausted", Json.Int o.System.ol_retry_exhausted);
      ("queue_peak", Json.Int o.System.ol_queue_peak);
      ("e2e_latency_ns", sketch_json env.System.e2e_lat);
    ]

let run_json t (r : Tm2c_apps.Workload.result) =
  let cfg = Runtime.config t in
  let env = Runtime.env t in
  Json.Obj
    ([
       ("config", config_json cfg);
       ("result", result_json r);
       ( "cores",
         cores_json (Runtime.stats t) ~n:(Platform.n_cores cfg.Runtime.platform)
       );
       ("network", network_json env.System.net);
       ("dtm", dtm_json (Runtime.servers t));
       ( "aborts",
         let stats = Runtime.stats t in
         let status = ref 0 in
         for i = 0 to Platform.n_cores cfg.Runtime.platform - 1 do
           status := !status + (Stats.core stats i).Stats.aborts_status
         done;
         aborts_json ~policy:cfg.Runtime.policy ~status:!status
           (Runtime.obs t) );
       ("faults", faults_json t);
       ("openloop", openloop_json t);
       (* The watchdog cut this run short of its horizon (v4). *)
       ("wedged", Json.Bool (Runtime.wedged t));
       ("phases", phases_json t);
       ("trace", trace_json t);
     ]
    @ (match Runtime.recorder t with
      | Some r -> [ ("metrics", metrics_json t r) ]
      | None -> [])
    @
    match Runtime.timeseries t with
    | Some ts -> [ ("timeseries", timeseries_json ts) ]
    | None -> [])
