(* Section 5.1 — the SCC performance-settings table, plus the derived
   latency parameters of each modeled platform. *)

open Tm2c_noc

let run (_scale : Exp.scale) =
  print_endline "\nSection 5.1 - SCC performance settings (MHz)";
  print_endline "  setting     tile     mesh     DRAM";
  Array.iteri
    (fun i (tile, mesh, dram) -> Printf.printf "%9d %8d %8d %8d\n" i tile mesh dram)
    Platform.scc_settings;
  print_endline "\nModeled platforms:";
  List.iter (fun p -> Format.printf "  %a@." Platform.pp p) Platform.all;
  Printf.printf "  SCC mesh: %d cores, mean hop distance %.2f\n%!"
    (Topology.n_cores Topology.scc) (Topology.mean_hops Topology.scc)
