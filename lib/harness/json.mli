(** Dependency-free JSON used by the experiment exporter.

    The printer maps non-finite floats to [null] (JSON has no [nan] —
    a zero-commit window's commit rate must not corrupt the file); the
    parser exists so tests can round-trip exported results and the
    smoke target can validate its output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Render; [indent] (default true) pretty-prints with 2-space
    indentation and a trailing newline. *)
val to_string : ?indent:bool -> t -> string

val to_file : ?indent:bool -> string -> t -> unit

exception Parse_error of string

(** Parse a complete JSON document. Raises {!Parse_error}. *)
val of_string : string -> t

val of_file : string -> t

(** Field lookup on [Obj]; [None] on other constructors. *)
val member : string -> t -> t option

(** Nested field lookup: [path ["a"; "b"] v] is [v.a.b]. *)
val path : string list -> t -> t option

val to_list_exn : t -> t list

val to_int_opt : t -> int option

(** Accepts both [Int] and [Float]. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
