(* Section 7 — TM2C on a cache-coherent multi-core vs the many-core:
   Figs. 8(a)-8(d). Platforms: SCC (setting 0), SCC800 (setting 1),
   Opteron (48-core cache-coherent multi-core with cache-line message
   channels). *)

open Tm2c_core
open Tm2c_apps
open Tm2c_engine
open Tm2c_noc

let platforms = [ Platform.scc; Platform.scc800; Platform.opteron ]

(* Fig. 8(a): round-trip latency of the messaging layer. Half the
   cores echo, half send one message at a time round-robin over the
   echo cores (the paper: service cores respond immediately, no local
   computation). *)
type ping_msg = Ping of { client : int; id : int } | Pong of { id : int }

let round_trip_us ~platform ~total ~per_client =
  let sim = Sim.create () in
  let net = Network.create sim platform ~active:total in
  let n_service = max 1 (total / 2) in
  let service = Array.init n_service (fun k -> k * total / n_service) in
  let is_service = Array.make total false in
  Array.iter (fun c -> is_service.(c) <- true) service;
  let clients = List.filter (fun c -> not is_service.(c)) (List.init total Fun.id) in
  Array.iter
    (fun self ->
      Sim.spawn sim (fun () ->
          let rec loop () =
            match Network.recv net ~self with
            | Ping { client; id } ->
                Network.send net ~src:self ~dst:client (Pong { id });
                loop ()
            | Pong _ -> invalid_arg "echo server got a pong"
          in
          loop ()))
    service;
  let total_latency = ref 0.0 and measured = ref 0 in
  List.iter
    (fun self ->
      Sim.spawn sim (fun () ->
          for id = 1 to per_client do
            let dst = service.(id mod n_service) in
            let t0 = Sim.now sim in
            Network.send net ~src:self ~dst (Ping { client = self; id });
            let rec wait () =
              match Network.recv net ~self with
              | Pong { id = rid } when rid = id -> ()
              | Pong _ -> wait ()
              | Ping _ -> invalid_arg "client got a ping"
            in
            wait ();
            total_latency := !total_latency +. (Sim.now sim -. t0);
            incr measured
          done))
    clients;
  let _ = Sim.run sim () in
  !total_latency /. float_of_int !measured /. 1e3

let fig8a (scale : Exp.scale) =
  let per_client = if scale.Exp.label = "full" then 2000 else 300 in
  Exp.print_table
    ~title:"Fig 8(a) - round-trip message latency (us)"
    ~header:("cores" :: List.map (fun p -> p.Platform.name) platforms)
    (List.map
       (fun n ->
         ( Exp.row_label_int n,
           List.map (fun platform -> round_trip_us ~platform ~total:n ~per_client) platforms ))
       Exp.core_series)

(* Fig. 8(b): the bank on the three platforms; 20% balance (left) and
   100% transfers (right). *)
let fig8b (scale : Exp.scale) =
  let cell ~platform ~balance total =
    (Fig5.run_bank scale ~platform ~accounts:scale.Exp.bank_accounts ~balance
       ~total ())
      .Workload.throughput_ops_ms
  in
  let names = List.map (fun p -> p.Platform.name) platforms in
  Exp.print_table
    ~title:"Fig 8(b) left - bank, 20% balance / 80% transfer (Ops/ms)"
    ~header:("cores" :: names)
    (List.map
       (fun n ->
         ( Exp.row_label_int n,
           List.map (fun platform -> cell ~platform ~balance:20 n) platforms ))
       Exp.core_series);
  Exp.print_table
    ~title:"Fig 8(b) right - bank, 100% transfers (Ops/ms)"
    ~header:("cores" :: names)
    (List.map
       (fun n ->
         ( Exp.row_label_int n,
           List.map (fun platform -> cell ~platform ~balance:0 n) platforms ))
       Exp.core_series)

(* Fig. 8(c): the linked list, 512 elements, 10% updates. *)
let fig8c (scale : Exp.scale) =
  let cell ~platform total =
    let cfg = Exp.config ~platform ~total () in
    let t = Runtime.create cfg in
    let l = Linkedlist.create t in
    Linkedlist.populate l (Runtime.fork_prng t) ~n:512 ~key_range:1024;
    let r =
      Workload.drive t ~duration_ns:scale.Exp.window_ns
        (Exp.list_mix l ~mode:`Normal ~updates:10 ~range:1024)
    in
    r.Workload.throughput_ops_ms
  in
  Exp.print_table
    ~title:"Fig 8(c) - linked list (512 elements, 10% updates) (Ops/ms)"
    ~header:("cores" :: List.map (fun p -> p.Platform.name) platforms)
    (List.map
       (fun n ->
         (Exp.row_label_int n, List.map (fun platform -> cell ~platform n) platforms))
       Exp.core_series)

(* Fig. 8(d): the hash table, 512 elements, 10% updates, load factors
   4 and 16. *)
let fig8d (scale : Exp.scale) =
  let cell ~platform ~load total =
    let cfg = Exp.config ~platform ~total () in
    let t = Runtime.create cfg in
    let buckets = 512 / load in
    let ht = Hashtable.create t ~n_buckets:buckets in
    Hashtable.populate ht (Runtime.fork_prng t) ~n:512 ~key_range:1024;
    let r =
      Workload.drive t ~duration_ns:scale.Exp.window_ns
        (Exp.ht_mix ht ~updates:10 ~range:1024)
    in
    r.Workload.throughput_ops_ms
  in
  let names = List.map (fun p -> p.Platform.name) platforms in
  List.iter
    (fun load ->
      Exp.print_table
        ~title:(Printf.sprintf "Fig 8(d) - hash table, load factor %d (Ops/ms)" load)
        ~header:("cores" :: names)
        (List.map
           (fun n ->
             ( Exp.row_label_int n,
               List.map (fun platform -> cell ~platform ~load n) platforms ))
           Exp.core_series))
    [ 4; 16 ]
