(* Minimal JSON: enough to serialize experiment results and to parse
   them back in tests. No external dependency — the container image has
   no yojson — and no streaming: result files are small (KBs). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no nan/infinity: non-finite values (e.g. the commit
         rate of a zero-commit window) serialize as null. Finite
         non-integral values use the shortest decimal form that parses
         back to exactly [f] (%.15g usually suffices; 17 significant
         digits always round-trip a double), so files aren't littered
         with 0.30000000000000004-style artifacts. *)
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else begin
        let s15 = Printf.sprintf "%.15g" f in
        if float_of_string s15 = f then Buffer.add_string buf s15
        else
          let s16 = Printf.sprintf "%.16g" f in
          if float_of_string s16 = f then Buffer.add_string buf s16
          else Buffer.add_string buf (Printf.sprintf "%.17g" f)
      end
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          write buf ~indent ~level:(level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf (if indent then "\": " else "\":");
          write buf ~indent ~level:(level + 1) item)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 4096 in
  write buf ~indent ~level:0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file ?indent path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?indent v))

(* ---- parsing ---- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "at %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  if
    c.pos + String.length word <= String.length c.s
    && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            if c.pos + 4 >= String.length c.s then fail c "bad \\u escape";
            let hex = String.sub c.s (c.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
            in
            (* Only BMP code points below 0x80 round-trip exactly; our
               own output never emits others. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            c.pos <- c.pos + 4
        | _ -> fail c "bad escape");
        advance c;
        go ()
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch -> is_num_char ch | None -> false do
    advance c
  done;
  let tok = String.sub c.s start (c.pos - start) in
  if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
  then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ---- access helpers ---- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let rec path keys v =
  match keys with
  | [] -> Some v
  | k :: rest -> ( match member k v with Some v' -> path rest v' | None -> None)

let to_list_exn = function
  | List items -> items
  | _ -> invalid_arg "Json.to_list_exn"

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
