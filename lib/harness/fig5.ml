(* Section 5.3 — the bank application: Figs. 5(a)-5(d). *)

open Tm2c_core
open Tm2c_apps

let run_bank (scale : Exp.scale) ?platform ?(policy = Cm.Fair_cm) ?service ~accounts
    ~balance ~total () =
  let cfg = Exp.config ?platform ~policy ?service ~total () in
  let t = Runtime.create cfg in
  let bank = Bank.create t ~accounts ~initial:1000 in
  Workload.drive t ~duration_ns:scale.Exp.long_window_ns (Exp.bank_mix bank ~balance)

(* Fig. 5(a): with vs without contention management; 20% balance, 80%
   transfers. Without a CM the balance operations livelock. *)
let fig5a (scale : Exp.scale) =
  let policies = [ Cm.Wholly; Cm.Offset_greedy; Cm.Fair_cm; Cm.Backoff_retry; Cm.No_cm ] in
  let results =
    List.map
      (fun n ->
        ( n,
          List.map
            (fun policy ->
              run_bank scale ~policy ~accounts:scale.Exp.bank_accounts ~balance:20
                ~total:n ())
            policies ))
      Exp.core_series
  in
  let header = "cores" :: List.map Cm.name policies in
  Exp.print_table
    ~title:"Fig 5(a) left - bank, 20% balance / 80% transfer: throughput (Ops/ms)"
    ~header
    (List.map
       (fun (n, rs) ->
         (Exp.row_label_int n, List.map (fun r -> r.Workload.throughput_ops_ms) rs))
       results);
  Exp.print_table ~title:"Fig 5(a) right - commit rate (%)" ~header
    (List.map
       (fun (n, rs) -> (Exp.row_label_int n, List.map (fun r -> r.Workload.commit_rate) rs))
       results)

(* Fig. 5(b): throughput under different numbers of service cores on
   the full 48-core chip. *)
let fig5b (scale : Exp.scale) =
  let service_series = [ 1; 2; 4; 8; 16; 24 ] in
  let cell ~balance s =
    (run_bank scale ~service:s ~accounts:scale.Exp.bank_accounts ~balance ~total:48 ())
      .Workload.throughput_ops_ms
  in
  Exp.print_table
    ~title:"Fig 5(b) - bank on 48 cores vs number of DTM service cores (Ops/ms)"
    ~header:[ "service"; "20%balance"; "100%transfer" ]
    (List.map
       (fun s -> (Exp.row_label_int s, [ cell ~balance:20 s; cell ~balance:0 s ]))
       service_series)

(* Fig. 5(c): one core repeatedly computes balances while all others
   transfer; FairCM should dominate by deprioritizing the long
   balance transactions. *)
let fig5c (scale : Exp.scale) =
  let policies = [ Cm.Wholly; Cm.Offset_greedy; Cm.Fair_cm; Cm.Backoff_retry ] in
  let run policy total =
    let cfg = Exp.config ~policy ~total () in
    let t = Runtime.create cfg in
    let bank = Bank.create t ~accounts:scale.Exp.bank_accounts ~initial:1000 in
    let reader = (Runtime.app_cores t).(0) in
    Workload.drive t ~duration_ns:scale.Exp.long_window_ns (fun core ctx prng ->
        if core = reader then fun () -> ignore (Bank.tx_balance ctx bank)
        else Exp.bank_mix bank ~balance:0 core ctx prng)
  in
  let results =
    List.map
      (fun n -> (n, List.map (fun p -> run p n) policies))
      [ 4; 8; 16; 32; 48 ]
  in
  let header = "cores" :: List.map Cm.name policies in
  Exp.print_table
    ~title:"Fig 5(c) left - bank, one balance core, others transfer: throughput (Ops/ms)"
    ~header
    (List.map
       (fun (n, rs) ->
         (Exp.row_label_int n, List.map (fun r -> r.Workload.throughput_ops_ms) rs))
       results);
  Exp.print_table ~title:"Fig 5(c) right - commit rate (%)" ~header
    (List.map
       (fun (n, rs) -> (Exp.row_label_int n, List.map (fun r -> r.Workload.commit_rate) rs))
       results)

(* Fig. 5(d): transactions vs a single global test-and-set lock (the
   SCC has one TAS register per core, so no fine-grained locking). *)
let fig5d (scale : Exp.scale) =
  let accounts = scale.Exp.bank_accounts_5d in
  let tx_cell ~one_reader total =
    let cfg = Exp.config ~total () in
    let t = Runtime.create cfg in
    let bank = Bank.create t ~accounts ~initial:1000 in
    let reader = (Runtime.app_cores t).(0) in
    let r =
      Workload.drive t ~duration_ns:scale.Exp.long_window_ns (fun core ctx prng ->
          if one_reader && core = reader then fun () -> ignore (Bank.tx_balance ctx bank)
          else Exp.bank_mix bank ~balance:0 core ctx prng)
    in
    r.Workload.throughput_ops_ms
  in
  let lock_cell ~one_reader total =
    (* The lock-based version needs no DTM cores: every core runs the
       application. *)
    let cfg = Exp.config ~deployment:Runtime.Multitask ~service:total ~total () in
    let t = Runtime.create cfg in
    let bank = Bank.create t ~accounts ~initial:1000 in
    let env = Runtime.env t in
    let reader = (Runtime.app_cores t).(0) in
    let r =
      Workload.drive t ~duration_ns:scale.Exp.long_window_ns (fun core _ctx prng ->
          if one_reader && core = reader then fun () ->
            ignore (Bank.lock_balance env ~core ~prng bank)
          else fun () ->
            let src = Tm2c_engine.Prng.int prng accounts
            and dst = Tm2c_engine.Prng.int prng accounts in
            if src <> dst then Bank.lock_transfer env ~core ~prng bank ~src ~dst ~amount:1)
    in
    r.Workload.throughput_ops_ms
  in
  Exp.print_table
    ~title:
      (Printf.sprintf
         "Fig 5(d) - bank (%d accounts): locks vs transactions (Ops/ms)" accounts)
    ~header:[ "cores"; "lock,transf"; "tx,transf"; "lock,1rdr"; "tx,1rdr" ]
    (List.map
       (fun n ->
         ( Exp.row_label_int n,
           [
             lock_cell ~one_reader:false n;
             tx_cell ~one_reader:false n;
             lock_cell ~one_reader:true n;
             tx_cell ~one_reader:true n;
           ] ))
       [ 4; 8; 16; 24; 28; 32; 40; 48 ])
