(** Experiment registry: every table and figure of the paper's
    evaluation, addressable by id ("fig4a" ... "fig8d", "settings"). *)

type experiment = {
  id : string;
  description : string;
  run : Exp.scale -> unit;
}

val all : experiment list

val find : string -> experiment option

(** [run_ids ?json ?check ids scale] runs the named experiments
    (["all"] expands to every experiment); raises [Invalid_argument]
    on unknown ids. With [~json:path], every run each experiment
    performs is captured (see {!Tm2c_apps.Workload.observer}) and the
    collected results plus observability metrics ({!Report.run_json})
    are written to [path], grouped per experiment id. With
    [~check:true], every run's complete event stream is checked —
    by default online, through the bounded-memory streaming checker
    riding the trace sink ({!Tm2c_check.Stream}); with
    [~streaming:false], captured whole ({!Tm2c_check.Collector}) and
    replayed through the batch oracle ({!Tm2c_check.Check}). Failures
    are reported on stderr. Checked
    runs also get a liveness watchdog: a run making no commit progress
    is cut short, flagged by the monitor's stuck detection, and the
    remaining experiments are skipped — the JSON written is then a
    partial report. Returns the total number of checker violations
    plus wedged runs (0 without [~check]). *)
val run_ids :
  ?json:string -> ?check:bool -> ?streaming:bool -> string list -> Exp.scale -> int
