(** Experiment registry: every table and figure of the paper's
    evaluation, addressable by id ("fig4a" ... "fig8d", "settings"). *)

type experiment = {
  id : string;
  description : string;
  run : Exp.scale -> unit;
}

val all : experiment list

val find : string -> experiment option

(** [run_ids ids scale] runs the named experiments (["all"] expands to
    every experiment); raises [Invalid_argument] on unknown ids. *)
val run_ids : string list -> Exp.scale -> unit
