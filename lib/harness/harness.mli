(** Experiment registry: every table and figure of the paper's
    evaluation, addressable by id ("fig4a" ... "fig8d", "settings"). *)

type experiment = {
  id : string;
  description : string;
  run : Exp.scale -> unit;
}

val all : experiment list

val find : string -> experiment option

(** [run_ids ?json ids scale] runs the named experiments (["all"]
    expands to every experiment); raises [Invalid_argument] on unknown
    ids. With [~json:path], every run each experiment performs is
    captured (see {!Tm2c_apps.Workload.observer}) and the collected
    results plus observability metrics ({!Report.run_json}) are written
    to [path], grouped per experiment id. *)
val run_ids : ?json:string -> string list -> Exp.scale -> unit
