(* Open-loop overload: the capacity curve. Saturation is measured by
   probing (offer far more than the system can serve under load
   shedding and read off the executed rate), then offered load sweeps
   multiples of it, with and without admission control. The protected
   configuration (token-bucket admission at the measured service rate
   plus a bounded client retry budget) should degrade gracefully —
   goodput holds near peak at 2x offered load — while the unprotected
   one (unbounded queues, unbounded retries) collapses: queueing delay
   blows through the client deadline, so completions stop counting as
   goodput even though the cores stay busy. *)

open Tm2c_core
open Tm2c_apps

let total = 16

(* Per-core service capacity (arrivals/ms/core) under this mix. *)
let probe_saturation (scale : Exp.scale) =
  let t = Runtime.create (Exp.config ~total ()) in
  let window_ns = scale.Exp.window_ns /. 2.0 in
  let ol =
    {
      Openloop.default with
      Openloop.arrival = Openloop.Poisson { rate_per_ms = 500.0 };
      window_ns;
      drain_ns = window_ns /. 4.0;
      policy = Admission.Reject { capacity = 32 };
      (* Pure capacity probe: no client impatience in the way. *)
      client_timeout_ns = 0.0;
      retry_budget = 0;
    }
  in
  let _ = Openloop.drive t ol in
  let o = (Runtime.env t).System.overload in
  let app = float_of_int (Array.length (Runtime.app_cores t)) in
  float_of_int o.System.ol_executed /. (window_ns /. 1e6) /. app

type cell = {
  goodput_ms : float;  (* in-deadline completions per virtual ms *)
  shed_pct : float;
  p99_us : float;  (* end-to-end (arrival -> commit) *)
  p999_us : float;
  horizon : bool;  (* drain horizon cut the run with a backlog *)
  env : System.env;  (* the run's metrics, for richer consumers *)
}

let run_cell (scale : Exp.scale) ~sat ~protected ~arrival =
  let t = Runtime.create (Exp.config ~total ()) in
  let ol =
    {
      Openloop.default with
      Openloop.arrival;
      window_ns = scale.Exp.window_ns;
      drain_ns = scale.Exp.window_ns /. 4.0;
      policy =
        (if protected then
           (* Deadline-aware sizing: a full queue must still drain
              within the client deadline (capacity = service rate x
              deadline), else admission control admits work it has
              already doomed. Tokens refill at the measured service
              rate, so sustained offered load beyond capacity is shed
              at the door instead of queued past the deadline. *)
           (* Deadline-aware sizing with margin on both axes: a full
              queue must drain well inside the client deadline
              (capacity = service rate x deadline / 2), and tokens
              refill below the measured rate — at the rate itself the
              admitted load is critical (rho = 1) and queueing delay
              unbounded; subcritical admission keeps waits, and thus
              goodput, flat across any overload. *)
           let deadline_ms = Openloop.default.Openloop.client_deadline_ns /. 1e6 in
           let capacity = max 2 (int_of_float (sat *. deadline_ms /. 2.0)) in
           Admission.Token_bucket
             { capacity; rate_per_ms = 0.8 *. sat; burst = float_of_int capacity }
         else Admission.Unbounded);
      retry_budget = (if protected then 3 else -1);
    }
  in
  let r = Openloop.drive t ol in
  let env = Runtime.env t in
  let o = env.System.overload in
  {
    goodput_ms = float_of_int o.System.ol_goodput /. (ol.Openloop.window_ns /. 1e6);
    shed_pct =
      (if o.System.ol_offered = 0 then 0.0
       else 100.0 *. float_of_int o.System.ol_shed /. float_of_int o.System.ol_offered);
    p99_us = Tm2c_engine.Sketch.percentile env.System.e2e_lat 99.0 /. 1e3;
    p999_us = Tm2c_engine.Sketch.percentile env.System.e2e_lat 99.9 /. 1e3;
    horizon = r.Tm2c_apps.Workload.horizon_hit;
    env;
  }

let run (scale : Exp.scale) =
  let sat = probe_saturation scale in
  Printf.printf "measured saturation: %.1f arrivals/ms/core\n%!" sat;
  let multiples = [ 0.5; 1.0; 1.5; 2.0 ] in
  let sweep =
    List.map
      (fun m ->
        let arrival = Openloop.Poisson { rate_per_ms = m *. sat } in
        let unprot = run_cell scale ~sat ~protected:false ~arrival in
        let prot = run_cell scale ~sat ~protected:true ~arrival in
        (m, unprot, prot))
      multiples
  in
  Exp.print_table
    ~title:
      "Overload - goodput vs offered load (multiples of measured saturation)"
    ~header:
      [
        "xload"; "good/ms"; "p99us"; "good/ms(adm)"; "shed%(adm)"; "p99us(adm)";
      ]
    (List.map
       (fun (m, u, p) ->
         ( Printf.sprintf "%.2fx" m,
           [ u.goodput_ms; u.p99_us; p.goodput_ms; p.shed_pct; p.p99_us ] ))
       sweep);
  (* Flash crowd: 3x saturation for a quarter of the window on top of
     a healthy base load — the metastable-collapse scenario. *)
  let burst =
    Openloop.Bursty
      {
        base_per_ms = 0.8 *. sat;
        burst_per_ms = 3.0 *. sat;
        burst_start_ns = scale.Exp.window_ns /. 4.0;
        burst_end_ns = scale.Exp.window_ns /. 2.0;
      }
  in
  let u = run_cell scale ~sat ~protected:false ~arrival:burst in
  let p = run_cell scale ~sat ~protected:true ~arrival:burst in
  Exp.print_table ~title:"Overload - flash crowd (3x burst over 0.8x base)"
    ~header:[ "config"; "good/ms"; "shed%"; "p99us" ]
    [
      ("unprotected", [ u.goodput_ms; u.shed_pct; u.p99_us ]);
      ("admission+budget", [ p.goodput_ms; p.shed_pct; p.p99_us ]);
    ]
