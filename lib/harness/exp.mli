(** Shared infrastructure for the figure-reproduction experiments:
    scales (quick/full), standard operation mixes, run combinators and
    table printing. *)

type scale = {
  label : string;
  window_ns : float;  (** measurement window for throughput figures *)
  long_window_ns : float;  (** window for slow workloads (bank balance) *)
  ht_buckets : int;  (** hash-table buckets for the Fig. 4 series *)
  list_elems : int;  (** linked-list size for Fig. 7 (paper: 2048) *)
  bank_accounts : int;  (** Fig. 5a/b/c accounts (paper: 1024) *)
  bank_accounts_5d : int;  (** Fig. 5d accounts (paper: 2048) *)
  mr_sizes_kb : int list;  (** MapReduce input sizes (paper: MB/GB) *)
}

val quick : scale

(** Seconds-long reduced scale for CI smoke runs. *)
val smoke : scale

val full : scale

(** Standard total-core series of the paper's x-axes. *)
val core_series : int list

(** [config ~scale ...] builds a runtime config: [total] cores with
    half dedicated to the DTM unless [service] says otherwise. *)
val config :
  ?platform:Tm2c_noc.Platform.t ->
  ?policy:Tm2c_core.Cm.policy ->
  ?wmode:Tm2c_core.Tx.wmode ->
  ?deployment:Tm2c_core.Runtime.deployment ->
  ?service:int ->
  ?seed:int ->
  total:int ->
  unit ->
  Tm2c_core.Runtime.config

(** Operation generator type: given a core, its context and PRNG,
    produce the operation thunk run in a loop. *)
type mix =
  Tm2c_core.Types.core_id ->
  Tm2c_core.Tx.ctx ->
  Tm2c_engine.Prng.t ->
  unit ->
  unit

(** Hash-table mix: [updates] percent of operations modify the table
    (half add, half remove), [move] percent are move operations
    (counted inside [updates]); keys are drawn from [range].
    [payload] is per-operation local computation in cycles (the
    benchmark-harness work outside the transaction: operation
    generation, key derivation, value handling), calibrated to
    Fig. 4(b)'s sequential baseline; it also produces the Fig. 2
    service-blocking effect under the multitasking deployment. *)
val ht_mix :
  Tm2c_apps.Hashtable.t -> updates:int -> ?moves:int -> ?payload:int -> range:int -> mix

(** Sorted-list mix at the given elastic mode. *)
val list_mix :
  Tm2c_apps.Linkedlist.t -> mode:Tm2c_apps.Linkedlist.mode -> updates:int -> range:int -> mix

(** Bank mix: [balance] percent balance operations, rest transfers. *)
val bank_mix : Tm2c_apps.Bank.t -> balance:int -> mix

(** Throughput of the sequential baseline (single core, no DTM):
    returns ops/ms. *)
val seq_throughput :
  ?platform:Tm2c_noc.Platform.t ->
  ?seed:int ->
  window_ns:float ->
  setup:(Tm2c_core.Runtime.t -> 'a) ->
  op:('a -> core:int -> Tm2c_engine.Prng.t -> unit -> unit) ->
  unit ->
  float

(** [ratio num den] is [num /. den], or [nan] when [den <= 0.0] — the
    zero-commit-window case. {!print_table} renders non-finite cells
    as ["n/a"], so dead windows are visible instead of appearing as a
    0.0 speedup. *)
val ratio : float -> float -> float

(** Table printing: a header line, then rows of numeric cells.
    Non-finite cells render as ["n/a"]. *)
val print_table : title:string -> header:string list -> (string * float list) list -> unit

val row_label_int : int -> string
