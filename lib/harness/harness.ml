type experiment = {
  id : string;
  description : string;
  run : Exp.scale -> unit;
}

let all =
  [
    { id = "settings"; description = "Section 5.1 SCC performance settings table"; run = Settings.run };
    { id = "fig4a"; description = "Hash table: multitasked vs dedicated deployment"; run = Fig4.fig4a };
    { id = "fig4b"; description = "Hash table: speedup over sequential"; run = Fig4.fig4b };
    { id = "fig4c"; description = "Hash table: eager vs lazy write-lock acquisition"; run = Fig4.fig4c };
    { id = "fig5a"; description = "Bank: with vs without contention management"; run = Fig5.fig5a };
    { id = "fig5b"; description = "Bank: number of DTM service cores"; run = Fig5.fig5b };
    { id = "fig5c"; description = "Bank: contention-manager comparison (1 balance core)"; run = Fig5.fig5c };
    { id = "fig5d"; description = "Bank: locks vs transactions"; run = Fig5.fig5d };
    { id = "fig6a"; description = "MapReduce: duration vs cores"; run = Fig6.fig6a };
    { id = "fig6b"; description = "MapReduce: speedup vs input size and chunk size"; run = Fig6.fig6b };
    { id = "fig7a"; description = "Linked list: elastic-early vs normal"; run = Fig7.fig7a };
    { id = "fig7b"; description = "Linked list: elastic-read vs normal"; run = Fig7.fig7b };
    { id = "fig8a"; description = "Round-trip message latency across platforms"; run = Fig8.fig8a };
    { id = "fig8b"; description = "Bank: many-core vs multi-core"; run = Fig8.fig8b };
    { id = "fig8c"; description = "Linked list: many-core vs multi-core"; run = Fig8.fig8c };
    { id = "fig8d"; description = "Hash table: many-core vs multi-core"; run = Fig8.fig8d };
    { id = "ablations"; description = "Design-choice ablations: batching, clock skew, deployment"; run = Ablations.run };
    { id = "fig_overload"; description = "Open-loop overload: goodput vs offered load, admission control on/off"; run = Fig_overload.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

(* How --check observes a run: the online checker consumes the sink
   event by event; the batch form captures everything first. *)
type tap = Online of Tm2c_check.Stream.t | Batch of Tm2c_check.Collector.t

let run_ids ?json ?(check = false) ?(streaming = true) ids scale =
  let ids = if List.mem "all" ids then List.map (fun e -> e.id) all else ids in
  (* With an export file, capture every run each experiment performs
     via the workload observer; runs are grouped per experiment id. *)
  let exported = ref [] in
  let current_runs = ref [] in
  let check_failures = ref 0 in
  (* Runs the watchdog cut short: once one fires, the remaining
     experiments are skipped and whatever was collected so far is
     still written — a partial report beats burning virtual hours on a
     wedged machine. *)
  let wedges = ref 0 in
  let watchdog_window = scale.Exp.window_ns /. 4.0 in
  (* Per-runtime checker taps for --check: the preflight hook installs
     a tap before any process is spawned; the observer looks it up (by
     physical identity — the runtime is the key) and closes out the
     completed run. The default tap is the streaming checker riding
     the trace sink directly; [~streaming:false] captures the full
     event stream in a collector and runs the batch oracle over it. *)
  let taps : (Tm2c_core.Runtime.t * tap) list ref = ref [] in
  let check_run t =
    match List.assq_opt t !taps with
    | None -> ()
    | Some tap ->
        taps := List.filter (fun (t', _) -> t' != t) !taps;
        Tm2c_check.Collector.detach (Tm2c_core.Runtime.trace t);
        (* On a wedged run, arm the liveness monitor's stuck detection
           so the report names the cores that made no progress. *)
        let wedged = Tm2c_core.Runtime.wedged t in
        let failures, report =
          match tap with
          | Online s ->
              if wedged then
                Tm2c_check.Stream.set_stuck_after_ns s watchdog_window;
              let v = Tm2c_check.Stream.finish s in
              (Tm2c_check.Stream.n_failures v, fun () ->
                 Tm2c_check.Stream.report_string s)
          | Batch c ->
              let result =
                if wedged then
                  Tm2c_check.Check.run ~stuck_after_ns:watchdog_window
                    (Tm2c_check.Collector.iter c)
                else Tm2c_check.Check.run (Tm2c_check.Collector.iter c)
              in
              (Tm2c_check.Check.n_failures result, fun () ->
                 Tm2c_check.Check.report_string result)
        in
        if failures > 0 then begin
          check_failures := !check_failures + failures;
          Printf.eprintf "check FAILED:\n%s%!" (report ())
        end
  in
  if json <> None || check then begin
    Tm2c_apps.Workload.observer :=
      Some
        (fun t r ->
          if json <> None then current_runs := Report.run_json t r :: !current_runs;
          if Tm2c_core.Runtime.wedged t then begin
            incr wedges;
            Printf.eprintf
              "run wedged: the watchdog saw no attempt resolve and cut the \
               run short of its horizon\n%!"
          end;
          if check then check_run t);
    (* Every exported run also carries phase attribution and a
       time-series: the preflight hook fires once per driven runtime,
       before any process is spawned. 16 windows per throughput run —
       enough shape to see warm-up and livelock onset without bloating
       the file. *)
    Tm2c_apps.Workload.preflight :=
      Some
        (fun t ->
          if json <> None then begin
            Tm2c_core.Runtime.enable_profiling t;
            if Tm2c_core.Runtime.timeseries t = None then
              Tm2c_core.Runtime.enable_timeseries t
                ~window_ns:(scale.Exp.window_ns /. 16.0);
            (* And the flight recorder (same cadence), so every
               exported run carries a "metrics" final snapshot. *)
            if Tm2c_core.Runtime.recorder t = None then
              Tm2c_core.Runtime.enable_recorder t
                ~window_ns:(scale.Exp.window_ns /. 16.0) ()
          end;
          if check && not (List.mem_assq t !taps) then begin
            (if streaming then begin
               let s = Tm2c_check.Stream.create () in
               Tm2c_check.Stream.attach s (Tm2c_core.Runtime.trace t);
               (* The streaming checker retains a window, not the run:
                  report its node high-water as the sink footprint. *)
               Tm2c_core.Runtime.set_sink_high_water t (fun () ->
                   Tm2c_check.Stream.peak_nodes s);
               taps := (t, Online s) :: !taps
             end
             else begin
               let c = Tm2c_check.Collector.create () in
               Tm2c_check.Collector.attach c (Tm2c_core.Runtime.trace t);
               (* The collector grows monotonically, so its final
                  length is the sink's high-water mark. *)
               Tm2c_core.Runtime.set_sink_high_water t (fun () ->
                   Tm2c_check.Collector.length c);
               taps := (t, Batch c) :: !taps
             end);
            (* Checked runs also get the liveness watchdog: a wedged
               configuration fails fast with a named-core verdict
               instead of silently burning to the horizon. *)
            Tm2c_core.Runtime.enable_watchdog t ~window_ns:watchdog_window
              ~stall_windows:2
          end)
  end;
  Fun.protect
    ~finally:(fun () ->
      if json <> None || check then begin
        Tm2c_apps.Workload.observer := None;
        Tm2c_apps.Workload.preflight := None
      end)
    (fun () ->
      List.iter
        (fun id ->
          match find id with
          | Some e when !wedges > 0 ->
              Printf.printf "\n=== %s: skipped (earlier run wedged) ===\n%!" e.id
          | Some e ->
              Printf.printf "\n=== %s: %s ===\n%!" e.id e.description;
              let t0 = Unix.gettimeofday () in
              current_runs := [];
              e.run scale;
              exported :=
                ( e.id,
                  e.description,
                  List.rev !current_runs )
                :: !exported;
              Printf.printf "(%s finished in %.1fs host time)\n%!" e.id
                (Unix.gettimeofday () -. t0)
          | None -> invalid_arg (Printf.sprintf "unknown experiment %S" id))
        ids);
  (match json with
  | None -> ()
  | Some path ->
      let doc =
        Json.Obj
          [
            (* v2: runs gained "phases" / "timeseries" / "trace"
               sections and histograms gained "sum". v3: runs gained a
               "faults" section (fault-injection and hardening
               counters, present and all-zero even on clean runs).
               v4: the faults section gained the reorder / partition /
               server-crash injections and the replication counters,
               and runs gained a "wedged" flag. v5: quantile sketches
               replace histograms (p999 + rel_error keys), the trace
               section gained "sink_high_water", and runs gained a
               "metrics" section (the flight recorder's final
               snapshot, including the host self-profile). v6: runs
               gained an "openloop" section (admission / shedding /
               goodput counters and the end-to-end latency sketch,
               present and all-zero with policy "none" on closed-loop
               runs) and the result gained "horizon_hit". *)
            ("schema_version", Json.Int 6);
            ("scale", Json.String scale.Exp.label);
            ( "experiments",
              Json.List
                (List.rev_map
                   (fun (id, description, runs) ->
                     Json.Obj
                       [
                         ("id", Json.String id);
                         ("description", Json.String description);
                         ("runs", Json.List runs);
                       ])
                   !exported) );
          ]
      in
      Json.to_file path doc;
      Printf.printf "\nwrote %s%s\n%!" path
        (if !wedges > 0 then " (partial: a run wedged)" else ""));
  !check_failures + !wedges
