(* Section 5.4 — the MapReduce application: Figs. 6(a) and 6(b).
   Input sizes are scaled down from the paper's 256 MB-2 GB to
   KB/MB-range synthetic text (see DESIGN.md); durations scale
   linearly with input size, so the speedup shapes carry over. *)

open Tm2c_core
open Tm2c_apps

(* One DTM core: the transactional load (chunk allocation + letter
   merges) is low (Section 5.4). *)
let parallel_duration_ms ?(chunk_kb = 8) ~size_kb ~total () =
  let cfg = Exp.config ~service:1 ~total () in
  let t = Runtime.create cfg in
  let mr =
    Mapreduce.create t ~seed:7 ~input_bytes:(size_kb * 1024)
      ~chunk_bytes:(chunk_kb * 1024)
  in
  let r = Workload.run_to_completion t (fun _core ctx _prng -> Mapreduce.worker ctx mr) in
  assert (Mapreduce.histogram mr = Mapreduce.expected_histogram mr);
  r.Workload.duration_ms

let sequential_duration_ms ?(chunk_kb = 8) ~size_kb () =
  let cfg = Exp.config ~service:1 ~total:2 () in
  let t = Runtime.create cfg in
  let mr =
    Mapreduce.create t ~seed:7 ~input_bytes:(size_kb * 1024)
      ~chunk_bytes:(chunk_kb * 1024)
  in
  let env = Runtime.env t in
  let core = (Runtime.app_cores t).(0) in
  Runtime.spawn_app t core (fun () -> Mapreduce.sequential env ~core mr);
  let _ = Runtime.run t () in
  Tm2c_engine.Sim.now (Runtime.sim t) /. 1e6

(* Fig. 6(a): duration vs number of cores for three input sizes. *)
let fig6a (scale : Exp.scale) =
  let sizes = scale.Exp.mr_sizes_kb in
  Exp.print_table
    ~title:"Fig 6(a) - MapReduce duration vs cores (ms; paper used 256MB-1GB, scaled)"
    ~header:("cores" :: List.map (fun kb -> Printf.sprintf "%dKB" kb) sizes)
    (List.map
       (fun n ->
         ( Exp.row_label_int n,
           List.map (fun size_kb -> parallel_duration_ms ~size_kb ~total:n ()) sizes ))
       [ 2; 4; 8; 16; 32; 48 ])

(* Fig. 6(b): speedup over sequential vs input size for 4/8/16 KB
   chunks on 48 cores (1 DTM + 47 app). *)
let fig6b (scale : Exp.scale) =
  let sizes = scale.Exp.mr_sizes_kb @ [ 2 * List.fold_left max 0 scale.Exp.mr_sizes_kb ] in
  Exp.print_table
    ~title:"Fig 6(b) - MapReduce speedup over sequential (48 cores; chunk size sweep)"
    ~header:[ "input"; "4KB"; "8KB"; "16KB" ]
    (List.map
       (fun size_kb ->
         ( Printf.sprintf "%dKB" size_kb,
           List.map
             (fun chunk_kb ->
               let seq = sequential_duration_ms ~chunk_kb ~size_kb () in
               let par = parallel_duration_ms ~chunk_kb ~size_kb ~total:48 () in
               Exp.ratio seq par)
             [ 4; 8; 16 ] ))
       sizes)
