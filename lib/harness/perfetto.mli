(** Chrome trace_event ("Perfetto") timeline export of the event-trace
    ring: one track per core, transaction-attempt and request-service
    slices, instant markers, and flow arrows linking each lock request
    to the DTM service that handled it. The output opens directly in
    ui.perfetto.dev or chrome://tracing. *)

(** [export ?app ?dtm trace] converts the ring to a trace_event JSON
    document. [app] and [dtm] name the tracks ("app core N" / "dtm
    core N"); cores in neither list are labelled "core N" (e.g. the
    multitasking deployment, where every core is both). Timestamps are
    virtual microseconds; slices whose begin event was overwritten by
    the ring are dropped, and flow arrows are only emitted when both
    endpoints survived. *)
val export :
  ?app:Tm2c_core.Types.core_id array ->
  ?dtm:Tm2c_core.Types.core_id array ->
  Tm2c_core.Event.t Tm2c_engine.Trace.t ->
  Json.t

(** Structural check of a trace_event document: every event is an
    object with a phase; non-metadata events carry numeric ts/pid/tid
    with ts >= 0; complete ("X") events have non-negative durations;
    per-track timestamps are non-decreasing in file order; and every
    flow id pairs starts with finishes. Returns the first violation. *)
val validate : Json.t -> (unit, string) result

val validate_file : string -> (unit, string) result
