(* Ablations of TM2C design choices called out in Section 3.3 and
   Section 4.3 (not figures in the paper, but the experiments behind
   its design arguments):

   - write-lock batching: "requesting the locks for multiple memory
     objects in a single message ... can significantly reduce the
     number of messages";
   - Offset-Greedy's sensitivity to clock skew: the offset estimation
     "does not take into account the message delay", so larger skew
     should increase aborts (rule (b) violations);
   - visible reads: what the hash table costs when every read is a
     round trip (normal) vs validated memory accesses (elastic-read),
     the Section 3.3 design trade-off. *)

open Tm2c_core
open Tm2c_apps

(* Batching matters for transactions with several writes per commit:
   use the bank's transfer (2 writes) plus a wider "payroll" update
   that writes 8 accounts. *)
let batching (scale : Exp.scale) =
  let run ~batching total =
    let cfg = { (Exp.config ~total ()) with Runtime.batching } in
    let t = Runtime.create cfg in
    let table = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:256 in
    let r =
      Workload.drive t ~duration_ns:scale.Exp.window_ns (fun _core ctx prng () ->
          let base = table + Tm2c_engine.Prng.int prng 248 in
          Tx.atomic ctx (fun () ->
              (* Read-modify-write 8 consecutive words: an 8-write commit. *)
              for i = base to base + 7 do
                Tx.write ctx i (Tx.read ctx i + 1)
              done))
    in
    ( r.Workload.throughput_ops_ms,
      float_of_int r.Workload.messages /. float_of_int (max 1 r.Workload.ops) )
  in
  Exp.print_table
    ~title:
      "Ablation: write-lock batching (8-write commits; Ops/ms and messages per op)"
    ~header:[ "cores"; "batched"; "unbatched"; "msg/op(b)"; "msg/op(u)" ]
    (List.map
       (fun n ->
         let tb, mb = run ~batching:true n in
         let tu, mu = run ~batching:false n in
         (Exp.row_label_int n, [ tb; tu; mb; mu ]))
       [ 8; 16; 32; 48 ])

(* The Section 5.1 performance settings, exercised end-to-end: how
   tile (core), mesh and DRAM frequencies move real transactional
   throughput. (Note on clock skew: although each core has a private
   clock, Offset-Greedy's offsets are measured and applied on the
   same clock, so constant skew cancels; its real estimation error is
   the variable in-flight message delay, which the latency model
   already produces. Hence no skew sweep here.) *)
let settings_sweep (scale : Exp.scale) =
  let run setting balance =
    let platform = Tm2c_noc.Platform.scc_setting setting in
    let cfg = Exp.config ~platform ~total:32 () in
    let t = Runtime.create cfg in
    let bank = Bank.create t ~accounts:128 ~initial:1000 in
    let r =
      Workload.drive t ~duration_ns:scale.Exp.window_ns (Exp.bank_mix bank ~balance)
    in
    r.Workload.throughput_ops_ms
  in
  Exp.print_table
    ~title:"Ablation: SCC performance settings 0-4 (bank on 32 cores, Ops/ms)"
    ~header:[ "setting"; "100%transfer"; "20%balance" ]
    (List.map
       (fun i -> (Exp.row_label_int i, [ run i 0; run i 20 ]))
       [ 0; 1; 2; 3; 4 ])

(* Multitasking service-scheduling delay: how much of the dedicated
   deployment's advantage (Fig. 4a) comes from the non-preemptive
   coroutine scheduling. *)
let defer (scale : Exp.scale) =
  let run deployment total =
    let cfg = Exp.config ~deployment ~service:(match deployment with
        | Runtime.Multitask -> total | Runtime.Dedicated -> max 1 (total / 2)) ~total () in
    let t = Runtime.create cfg in
    let ht = Hashtable.create t ~n_buckets:64 in
    Hashtable.populate ht (Runtime.fork_prng t) ~n:128 ~key_range:256;
    let r =
      Workload.drive t ~duration_ns:scale.Exp.window_ns
        (Exp.ht_mix ht ~updates:20 ~payload:30_000 ~range:256)
    in
    r.Workload.throughput_ops_ms
  in
  Exp.print_table
    ~title:"Ablation: deployment strategies (hash table, 20% updates)"
    ~header:[ "cores"; "dedicated"; "multitask" ]
    (List.map
       (fun n ->
         ( Exp.row_label_int n,
           [ run Runtime.Dedicated n; run Runtime.Multitask n ] ))
       [ 8; 16; 32; 48 ])

let run scale =
  batching scale;
  settings_sweep scale;
  defer scale
