(* Chrome trace_event ("Perfetto") export of the event-trace ring:
   one timeline track per core (application cores show transaction-
   attempt slices, DTM cores show request-service slices), instant
   markers for reads/writes/conflicts, and flow arrows linking each
   lock request to the DTM service that handled it. The output opens
   directly in ui.perfetto.dev or chrome://tracing.

   Timestamps: the simulator's virtual ns divided by 1e3 — the
   trace_event "ts" unit is microseconds (fractions are fine, both
   viewers keep double precision).

   The ring overwrites oldest-first, so a long traced run may hold
   only the tail of the activity: slices whose begin event was
   overwritten are dropped, and flow arrows are emitted only when both
   the request and its service pickup survived in the ring. *)

open Tm2c_core
open Tm2c_engine

let pid = 1

let us ns = ns /. 1000.0

(* One flow id per (requester, req_id): req_id is per-core monotone,
   so within one ring window the pair is unique. *)
let flow_id ~requester ~req_id = (req_id * 4096) + requester

let str s = Json.String s

let common ~ph ~ts ~tid rest =
  Json.Obj
    ((("ph", str ph) :: ("ts", Json.Float (us ts)) :: ("pid", Json.Int pid)
      :: ("tid", Json.Int tid) :: rest))

let instant ~ts ~tid ~name ?(args = []) () =
  common ~ph:"i" ~ts ~tid
    (("name", str name) :: ("s", str "t")
    :: (if args = [] then [] else [ ("args", Json.Obj args) ]))

let slice ~ts ~dur ~tid ~name ?(args = []) () =
  common ~ph:"X" ~ts ~tid
    (("name", str name) :: ("dur", Json.Float (us dur))
    :: (if args = [] then [] else [ ("args", Json.Obj args) ]))

let flow ~ph ~ts ~tid ~id =
  common ~ph ~ts ~tid
    (("name", str "lock-req") :: ("cat", str "lock") :: ("id", Json.Int id)
    :: (if ph = "f" then [ ("bp", str "e") ] else []))

let thread_meta ~tid ~name =
  Json.Obj
    [
      ("ph", str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("name", str "thread_name");
      ("args", Json.Obj [ ("name", str name) ]);
    ]

let conflict_str = Types.conflict_to_string

let export ?(app = [||]) ?(dtm = [||]) trace =
  (* Pass 1: which (requester, req_id) pairs survived on both the
     request and the service side — only those get flow arrows. *)
  let sent = Hashtbl.create 256 and picked = Hashtbl.create 256 in
  Trace.iter trace (fun _ ev ->
      match ev with
      | Event.Req_sent { core; req_id; _ } when req_id > 0 ->
          Hashtbl.replace sent (flow_id ~requester:core ~req_id) ()
      | Event.Service { requester; req_id; _ } when req_id > 0 ->
          Hashtbl.replace picked (flow_id ~requester ~req_id) ()
      (* Every remaining constructor carries no flow-arrow pairing
         information. Enumerated rather than wildcarded so a new Event
         constructor forces an explicit decision in this pass too. *)
      | Event.Req_sent _ | Event.Service _ | Event.Tx_start _ | Event.Tx_read _
      | Event.Tx_write _ | Event.Tx_commit_begin _ | Event.Host_write _
      | Event.Rlock_released _ | Event.Wlock_granted _ | Event.Tx_publish _
      | Event.Tx_committed _ | Event.Tx_aborted _ | Event.Lock_conflict _
      | Event.Enemy_aborted _ | Event.Service_done _ | Event.Barrier _
      | Event.Msg_dropped _ | Event.Msg_duplicated _ | Event.Req_resent _
      | Event.Core_crashed _ | Event.Lease_reclaimed _ | Event.Server_crashed _
      | Event.Epoch_bumped _ | Event.Replica_applied _ | Event.Failover_done _
      | Event.Stale_epoch_rejected _ | Event.Req_admitted _ | Event.Req_shed _
      | Event.Req_expired _ | Event.Retry_budget_exhausted _ -> ());
  let paired id = Hashtbl.mem sent id && Hashtbl.mem picked id in
  (* Pass 2: build (ts, event) pairs; attempt and service slices close
     at their end event and carry the begin timestamp. *)
  let out = ref [] in
  let push ts j = out := (ts, j) :: !out in
  let tracks = Hashtbl.create 64 in
  let touch tid = Hashtbl.replace tracks tid () in
  let open_attempt : (int, float * int) Hashtbl.t = Hashtbl.create 64 in
  let open_service : (int, float * Event.t) Hashtbl.t = Hashtbl.create 64 in
  Trace.iter trace (fun ts ev ->
      match ev with
      | Event.Tx_start { core; attempt; _ } ->
          touch core;
          Hashtbl.replace open_attempt core (ts, attempt)
      | Event.Tx_committed { core; attempt; _ } -> (
          touch core;
          match Hashtbl.find_opt open_attempt core with
          | Some (t0, a0) when a0 = attempt ->
              Hashtbl.remove open_attempt core;
              push t0
                (slice ~ts:t0 ~dur:(ts -. t0) ~tid:core ~name:"tx commit"
                   ~args:[ ("attempt", Json.Int attempt) ]
                   ())
          | _ -> ())
      | Event.Tx_aborted { core; attempt; conflict } -> (
          touch core;
          match Hashtbl.find_opt open_attempt core with
          | Some (t0, a0) when a0 = attempt ->
              Hashtbl.remove open_attempt core;
              push t0
                (slice ~ts:t0 ~dur:(ts -. t0) ~tid:core ~name:"tx abort"
                   ~args:
                     [
                       ("attempt", Json.Int attempt);
                       ("cause", str (Event.conflict_opt_to_string conflict));
                     ]
                   ())
          | _ -> ())
      | Event.Tx_read { core; addr; granted; value } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"read"
               ~args:
                 [
                   ("addr", Json.Int addr);
                   ("granted", Json.Bool granted);
                   ("value", Json.Int value);
                 ]
               ())
      | Event.Tx_write { core; addr; value } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"write"
               ~args:[ ("addr", Json.Int addr); ("value", Json.Int value) ]
               ())
      | Event.Tx_commit_begin { core; n_writes; _ } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"commit-begin"
               ~args:[ ("writes", Json.Int n_writes) ]
               ())
      | Event.Host_write _ ->
          (* Host-side store: no core to attribute a timeline row to. *)
          ()
      | Event.Rlock_released { core; addr } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"rlock-release"
               ~args:[ ("addr", Json.Int addr) ]
               ())
      | Event.Wlock_granted { core; addrs } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"wlock"
               ~args:[ ("addrs", Json.Int (List.length addrs)) ]
               ())
      | Event.Tx_publish { core; n_writes; _ } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"publish"
               ~args:[ ("writes", Json.Int n_writes) ]
               ())
      | Event.Req_sent { core; server; req_id; kind; n_addrs } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:kind
               ~args:[ ("server", Json.Int server); ("addrs", Json.Int n_addrs) ]
               ());
          if req_id > 0 then begin
            let id = flow_id ~requester:core ~req_id in
            if paired id then push ts (flow ~ph:"s" ~ts ~tid:core ~id)
          end
      | Event.Service { server; requester; req_id; _ } ->
          touch server;
          Hashtbl.replace open_service server (ts, ev);
          if req_id > 0 then begin
            let id = flow_id ~requester ~req_id in
            if paired id then push ts (flow ~ph:"f" ~ts ~tid:server ~id)
          end
      | Event.Service_done { server; requester; req_id } -> (
          touch server;
          match Hashtbl.find_opt open_service server with
          | Some
              ( t0,
                Event.Service
                  { requester = r0; req_id = i0; kind; queue_depth; occupancy; _ }
              )
            when r0 = requester && i0 = req_id ->
              Hashtbl.remove open_service server;
              push t0
                (slice ~ts:t0 ~dur:(ts -. t0) ~tid:server ~name:kind
                   ~args:
                     [
                       ("requester", Json.Int requester);
                       ("req_id", Json.Int req_id);
                       ("queue_depth", Json.Int queue_depth);
                       ("occupancy", Json.Int occupancy);
                     ]
                   ())
          | _ -> ())
      | Event.Lock_conflict { server; requester; enemy; addr; conflict; requester_wins }
        ->
          touch server;
          push ts
            (instant ~ts ~tid:server ~name:"conflict"
               ~args:
                 [
                   ("type", str (conflict_str conflict));
                   ("addr", Json.Int addr);
                   ("requester", Json.Int requester);
                   ("enemy", Json.Int enemy);
                   ("requester_wins", Json.Bool requester_wins);
                 ]
               ())
      | Event.Enemy_aborted { server; winner; victim; addr; conflict } ->
          touch server;
          push ts
            (instant ~ts ~tid:server ~name:"enemy-abort"
               ~args:
                 [
                   ("type", str (conflict_str conflict));
                   ("addr", Json.Int addr);
                   ("winner", Json.Int winner);
                   ("victim", Json.Int victim);
                 ]
               ())
      | Event.Barrier { core } ->
          touch core;
          push ts (instant ~ts ~tid:core ~name:"barrier" ())
      | Event.Msg_dropped { src; dst } ->
          touch src;
          push ts
            (instant ~ts ~tid:src ~name:"msg-dropped"
               ~args:[ ("dst", Json.Int dst) ]
               ())
      | Event.Msg_duplicated { src; dst } ->
          touch src;
          push ts
            (instant ~ts ~tid:src ~name:"msg-dup"
               ~args:[ ("dst", Json.Int dst) ]
               ())
      | Event.Req_resent { core; server; req_id; nth } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"req-resent"
               ~args:
                 [
                   ("server", Json.Int server);
                   ("req_id", Json.Int req_id);
                   ("nth", Json.Int nth);
                 ]
               ())
      | Event.Core_crashed { core; attempt } -> (
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"crashed"
               ~args:[ ("attempt", Json.Int attempt) ]
               ());
          (* Close the open attempt slice, if any — a crashed core
             never emits its own end event. *)
          match Hashtbl.find_opt open_attempt core with
          | Some (t0, a0) ->
              Hashtbl.remove open_attempt core;
              push t0
                (slice ~ts:t0 ~dur:(ts -. t0) ~tid:core ~name:"tx crashed"
                   ~args:[ ("attempt", Json.Int a0) ]
                   ())
          | None -> ())
      | Event.Lease_reclaimed { server; victim; addr; aborted } ->
          touch server;
          push ts
            (instant ~ts ~tid:server ~name:"lease-reclaim"
               ~args:
                 [
                   ("victim", Json.Int victim);
                   ("addr", Json.Int addr);
                   ("aborted", Json.Bool aborted);
                 ]
               ())
      | Event.Server_crashed { server } -> (
          touch server;
          push ts (instant ~ts ~tid:server ~name:"srv-crashed" ());
          (* A crashed server never emits Service_done for the request
             it was serving; close the slice at the crash instant. *)
          match Hashtbl.find_opt open_service server with
          | Some (t0, Event.Service { requester; req_id; kind; _ }) ->
              Hashtbl.remove open_service server;
              push t0
                (slice ~ts:t0 ~dur:(ts -. t0) ~tid:server
                   ~name:(kind ^ " (crashed)")
                   ~args:
                     [
                       ("requester", Json.Int requester);
                       ("req_id", Json.Int req_id);
                     ]
                   ())
          | _ -> ())
      | Event.Epoch_bumped { part; epoch; by } ->
          touch by;
          push ts
            (instant ~ts ~tid:by ~name:"epoch-bump"
               ~args:[ ("part", Json.Int part); ("epoch", Json.Int epoch) ]
               ())
      | Event.Replica_applied { server; src; part; n_addrs } ->
          touch server;
          push ts
            (instant ~ts ~tid:server ~name:"replica"
               ~args:
                 [
                   ("src", Json.Int src);
                   ("part", Json.Int part);
                   ("addrs", Json.Int n_addrs);
                 ]
               ())
      | Event.Failover_done { server; part; epoch; merged } ->
          touch server;
          push ts
            (instant ~ts ~tid:server ~name:"failover"
               ~args:
                 [
                   ("part", Json.Int part);
                   ("epoch", Json.Int epoch);
                   ("merged", Json.Int merged);
                 ]
               ())
      | Event.Stale_epoch_rejected { server; core; req_epoch; cur_epoch } ->
          touch server;
          push ts
            (instant ~ts ~tid:server ~name:"stale-epoch"
               ~args:
                 [
                   ("core", Json.Int core);
                   ("req_epoch", Json.Int req_epoch);
                   ("cur_epoch", Json.Int cur_epoch);
                 ]
               ())
      | Event.Req_admitted { core; tenant; queue_depth } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"admitted"
               ~args:
                 [ ("tenant", Json.Int tenant); ("queue", Json.Int queue_depth) ]
               ())
      | Event.Req_shed { core; tenant; reason; retry_after_ns } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"shed"
               ~args:
                 [
                   ("tenant", Json.Int tenant);
                   ("cause", str (Types.shed_reason_to_string reason));
                   ("retry_after_us", Json.Float (us retry_after_ns));
                 ]
               ())
      | Event.Req_expired { core; tenant; waited_ns } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"expired"
               ~args:
                 [
                   ("tenant", Json.Int tenant);
                   ("waited_us", Json.Float (us waited_ns));
                 ]
               ())
      | Event.Retry_budget_exhausted { core; tenant; retries } ->
          touch core;
          push ts
            (instant ~ts ~tid:core ~name:"retry-budget-exhausted"
               ~args:
                 [ ("tenant", Json.Int tenant); ("retries", Json.Int retries) ]
               ()));
  (* Stable sort by begin timestamp: per-track timestamps come out
     monotone because same-track slices never overlap. *)
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !out)
  in
  let is_app = Array.to_list app and is_dtm = Array.to_list dtm in
  let role tid =
    if List.mem tid is_dtm then Printf.sprintf "dtm core %d" tid
    else if List.mem tid is_app then Printf.sprintf "app core %d" tid
    else Printf.sprintf "core %d" tid
  in
  let meta =
    Json.Obj
      [
        ("ph", str "M");
        ("pid", Json.Int pid);
        ("name", str "process_name");
        ("args", Json.Obj [ ("name", str "tm2c-sim") ]);
      ]
    :: (Tm2c_engine.Det.keys tracks
       |> List.map (fun tid -> thread_meta ~tid ~name:(role tid)))
  in
  Json.Obj
    [
      ("displayTimeUnit", str "ns");
      ("traceEvents", Json.List (meta @ List.map snd sorted));
    ]

(* ---- validation ---- *)

(* Structural checker for trace_event JSON as we emit it (and as the
   viewers require it): every event is an object with a "ph"; non-
   metadata events carry numeric ts/pid/tid; "X" durations are
   non-negative; per (pid, tid) the timestamps are non-decreasing in
   file order; and every flow id has exactly one start and one end. *)
let validate v =
  let ( let* ) r f = match r with Error _ as e -> e | Ok x -> f x in
  let* events =
    match Json.member "traceEvents" v with
    | Some (Json.List l) -> Ok l
    | _ -> Error "traceEvents missing or not a list"
  in
  let last_ts : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let flow_s : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let flow_f : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let bump tbl id =
    Hashtbl.replace tbl id (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id))
  in
  let check_one i ev =
    let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "event %d: %s" i m)) fmt in
    let num k = Option.bind (Json.member k ev) Json.to_float_opt in
    let int_f k = Option.bind (Json.member k ev) Json.to_int_opt in
    match Option.bind (Json.member "ph" ev) Json.to_string_opt with
    | None -> fail "missing ph"
    | Some "M" -> Ok ()
    | Some ph -> (
        match (num "ts", int_f "pid", int_f "tid") with
        | None, _, _ -> fail "missing ts"
        | _, None, _ -> fail "missing pid"
        | _, _, None -> fail "missing tid"
        | Some ts, Some pid, Some tid -> (
            if ts < 0.0 then fail "negative ts"
            else begin
              let key = (pid, tid) in
              match Hashtbl.find_opt last_ts key with
              | Some prev when ts < prev ->
                  fail "timestamps not monotone on track %d (%.3f after %.3f)" tid ts
                    prev
              | _ -> (
                  Hashtbl.replace last_ts key ts;
                  match ph with
                  | "X" -> (
                      match num "dur" with
                      | Some d when d >= 0.0 -> Ok ()
                      | Some _ -> fail "negative dur"
                      | None -> fail "X event without dur")
                  | "s" | "f" -> (
                      match int_f "id" with
                      | Some id ->
                          bump (if ph = "s" then flow_s else flow_f) id;
                          Ok ()
                      | None -> fail "flow event without id")
                  | _ -> Ok ())
            end))
  in
  let rec all i = function
    | [] -> Ok ()
    | ev :: rest ->
        let* () = check_one i ev in
        all (i + 1) rest
  in
  let* () = all 0 events in
  let* () =
    Tm2c_engine.Det.fold
      (fun id n acc ->
        let* () = acc in
        if Hashtbl.find_opt flow_f id = Some n then Ok ()
        else Error (Printf.sprintf "flow %d: %d start(s) without matching finish" id n))
      flow_s (Ok ())
  in
  Tm2c_engine.Det.fold
    (fun id n acc ->
      let* () = acc in
      if Hashtbl.mem flow_s id then Ok ()
      else Error (Printf.sprintf "flow %d: %d finish(es) without a start" id n))
    flow_f (Ok ())

let validate_file path = validate (Json.of_file path)
