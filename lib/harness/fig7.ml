(* Section 6.2 — elastic transactions on the sorted linked list:
   Figs. 7(a) and 7(b). 20% updates / 80% contains. *)

open Tm2c_core
open Tm2c_apps

let run_list (scale : Exp.scale) ~mode ~total =
  let cfg = Exp.config ~total () in
  let t = Runtime.create cfg in
  let l = Linkedlist.create t in
  let n = scale.Exp.list_elems in
  Linkedlist.populate l (Runtime.fork_prng t) ~n ~key_range:(2 * n);
  let r =
    Workload.drive t ~duration_ns:scale.Exp.window_ns
      (Exp.list_mix l ~mode ~updates:20 ~range:(2 * n))
  in
  (r.Workload.throughput_ops_ms, r.Workload.commit_rate)

let collect scale =
  List.map
    (fun n ->
      let normal, cr_n = run_list scale ~mode:`Normal ~total:n in
      let early, cr_e = run_list scale ~mode:`Elastic_early ~total:n in
      let eread, cr_r = run_list scale ~mode:`Elastic_read ~total:n in
      (n, (normal, cr_n), (early, cr_e), (eread, cr_r)))
    Exp.core_series

(* Fig. 7(a): elastic-early speedup over normal transactions (modest:
   each early release costs an extra message). *)
let fig7a scale =
  let data = collect scale in
  Exp.print_table
    ~title:
      "Fig 7(a) - linked list: elastic-early speedup over normal (and abort rates)"
    ~header:[ "cores"; "early/norm"; "norm-cr%"; "early-cr%" ]
    (List.map
       (fun (n, (normal, cr_n), (early, cr_e), _) ->
         ( Exp.row_label_int n,
           [ Exp.ratio early normal; cr_n; cr_e ] ))
       data)

(* Fig. 7(b): elastic-read speedup over normal (read validation trades
   messages for memory accesses: large wins on the SCC). *)
let fig7b scale =
  let data = collect scale in
  Exp.print_table
    ~title:"Fig 7(b) - linked list: speedup over normal transactions"
    ~header:[ "cores"; "normal"; "elastic-early"; "elastic-read" ]
    (List.map
       (fun (n, (normal, _), (early, _), (eread, _)) ->
         ( Exp.row_label_int n,
           [
             1.0;
             Exp.ratio early normal;
             Exp.ratio eread normal;
           ] ))
       data)
