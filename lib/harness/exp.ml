open Tm2c_core
open Tm2c_apps
open Tm2c_engine

type scale = {
  label : string;
  window_ns : float;
  long_window_ns : float;
  ht_buckets : int;
  list_elems : int;
  bank_accounts : int;
  bank_accounts_5d : int;
  mr_sizes_kb : int list;
}

let quick =
  {
    label = "quick";
    window_ns = 20e6;
    long_window_ns = 60e6;
    ht_buckets = 64;
    list_elems = 512;
    bank_accounts = 256;
    bank_accounts_5d = 512;
    mr_sizes_kb = [ 2048; 4096; 8192 ];
  }

(* CI smoke runs: same shape as [quick] but small enough that one
   experiment finishes in seconds (mirrors the test suite's scale). *)
let smoke =
  {
    label = "smoke";
    window_ns = 1.5e6;
    long_window_ns = 3e6;
    ht_buckets = 16;
    list_elems = 64;
    bank_accounts = 32;
    bank_accounts_5d = 64;
    mr_sizes_kb = [ 64 ];
  }

let full =
  {
    label = "full";
    window_ns = 100e6;
    long_window_ns = 400e6;
    ht_buckets = 64;
    list_elems = 2048;
    bank_accounts = 1024;
    bank_accounts_5d = 2048;
    mr_sizes_kb = [ 8192; 16384; 32768 ];
  }

let core_series = [ 2; 4; 8; 16; 32; 48 ]

let config ?(platform = Tm2c_noc.Platform.scc) ?(policy = Cm.Fair_cm)
    ?(wmode = Tx.Lazy) ?(deployment = Runtime.Dedicated) ?service ?(seed = 42)
    ~total () =
  let service = match service with Some s -> s | None -> max 1 (total / 2) in
  {
    Runtime.platform;
    total_cores = total;
    service_cores = service;
    deployment;
    policy;
    wmode;
    batching = true;
    max_skew_ns = 3_000.0;
    seed;
    mem_words = 1 lsl 20;
  }

type mix = Types.core_id -> Tx.ctx -> Prng.t -> unit -> unit

let ht_mix ht ~updates ?(moves = 0) ?(payload = 0) ~range _core ctx prng () =
  if payload > 0 then Tx.compute ctx payload;
  let k = Prng.int prng range in
  let p = Prng.int prng 100 in
  if p < moves then ignore (Hashtable.tx_move ctx ht k (Prng.int prng range))
  else if p < updates then
    if p land 1 = 0 then ignore (Hashtable.tx_add ctx ht k)
    else ignore (Hashtable.tx_remove ctx ht k)
  else ignore (Hashtable.tx_contains ctx ht k)

let list_mix l ~mode ~updates ~range _core ctx prng () =
  let k = Prng.int prng range in
  let p = Prng.int prng 100 in
  if p < updates then
    if p land 1 = 0 then ignore (Linkedlist.tx_add ~mode ctx l k)
    else ignore (Linkedlist.tx_remove ~mode ctx l k)
  else ignore (Linkedlist.tx_contains ~mode ctx l k)

let bank_mix bank ~balance _core ctx prng () =
  let n = Bank.accounts bank in
  if Prng.int prng 100 < balance then ignore (Bank.tx_balance ctx bank)
  else begin
    let src = Prng.int prng n and dst = Prng.int prng n in
    if src <> dst then Bank.tx_transfer ctx bank ~src ~dst ~amount:1
  end

let seq_throughput ?platform ?seed ~window_ns ~setup ~op () =
  let cfg = config ?platform ?seed ~total:2 ~service:1 () in
  let t = Runtime.create cfg in
  let state = setup t in
  let r = Workload.drive_seq t ~duration_ns:window_ns (fun ~core prng -> op state ~core prng) in
  r.Workload.throughput_ops_ms

(* Ratios (speedup, normalized throughput) over windows that may have
   seen no commits: a zero/negative denominator yields [nan] — rendered
   as "n/a" by [print_table] — rather than a fake 0.0 data point. *)
let ratio num den = if den > 0.0 then num /. den else Float.nan

let print_table ~title ~header rows =
  Printf.printf "\n%s\n" title;
  let widths =
    List.map (fun h -> max 9 (String.length h + 2)) header
  in
  List.iteri
    (fun i h -> Printf.printf "%*s" (List.nth widths i) h)
    header;
  print_newline ();
  List.iter
    (fun (label, cells) ->
      Printf.printf "%*s" (List.nth widths 0) label;
      List.iteri
        (fun i v ->
          let w = if i + 1 < List.length widths then List.nth widths (i + 1) else 9 in
          if not (Float.is_finite v) then Printf.printf "%*s" w "n/a"
          else if Float.is_integer v && Float.abs v < 1e6 then
            Printf.printf "%*.0f" w v
          else Printf.printf "%*.2f" w v)
        cells;
      print_newline ())
    rows;
  flush stdout

let row_label_int = string_of_int
