(** JSON export of one run: the workload result plus the runtime's
    observability metrics — per-core commit/abort counters, network
    message totals and latency quantiles, lock-service queue-depth and
    occupancy stats, per-conflict abort causality, and (schema v5) the
    flight recorder's final snapshot. *)

val config_json : Tm2c_core.Runtime.config -> Json.t

val result_json : Tm2c_apps.Workload.result -> Json.t

(** Quantile-sketch summary: count/sum/mean/min/max, the
    p50/p90/p99/p999 ladder and the sketch's guaranteed [rel_error];
    [buckets] adds the raw (upper edge, count) rows. *)
val sketch_json : ?buckets:bool -> Tm2c_engine.Sketch.t -> Json.t

(** Per-attempt phase attribution (committed and aborted sides of the
    runtime's {!Tm2c_engine.Span} pair); [enabled: false] with empty
    core lists when profiling was off. *)
val phases_json : Tm2c_core.Runtime.t -> Json.t

(** Windowed simulated-time samples (see {!Tm2c_engine.Timeseries}). *)
val timeseries_json : Tm2c_engine.Timeseries.t -> Json.t

(** Trace-ring status: enabled flag, capacity, events held, the
    dropped (overwritten) count, and the checker sink's high-water
    mark. *)
val trace_json : Tm2c_core.Runtime.t -> Json.t

(** Host-side self-profiler category shares (all-zero unless
    [Runtime.enable_self_profile] ran). *)
val host_profile_json : Tm2c_core.Runtime.t -> Json.t

(** Flight-recorder final snapshot: windowed-counter totals and
    telescoped sums, latency and per-phase sketches, event counts and
    the host profile. *)
val metrics_json : Tm2c_core.Runtime.t -> Tm2c_core.Recorder.t -> Json.t

(** [run_json t r] — the full self-describing record for one run on
    runtime [t] that produced result [r]. Includes a ["timeseries"]
    section when the sampler was enabled and a ["metrics"] section
    when the flight recorder was. *)
val run_json : Tm2c_core.Runtime.t -> Tm2c_apps.Workload.result -> Json.t
