(** JSON export of one run: the workload result plus the runtime's
    observability metrics — per-core commit/abort counters, network
    message totals and latency histogram, lock-service queue-depth and
    occupancy stats, and per-conflict abort causality. *)

val config_json : Tm2c_core.Runtime.config -> Json.t

val result_json : Tm2c_apps.Workload.result -> Json.t

val histogram_json : Tm2c_engine.Histogram.t -> Json.t

(** Per-attempt phase attribution (committed and aborted sides of the
    runtime's {!Tm2c_engine.Span} pair); [enabled: false] with empty
    core lists when profiling was off. *)
val phases_json : Tm2c_core.Runtime.t -> Json.t

(** Windowed simulated-time samples (see {!Tm2c_engine.Timeseries}). *)
val timeseries_json : Tm2c_engine.Timeseries.t -> Json.t

(** Trace-ring status: enabled flag, capacity, events held, and the
    dropped (overwritten) count. *)
val trace_json : Tm2c_core.Event.t Tm2c_engine.Trace.t -> Json.t

(** [run_json t r] — the full self-describing record for one run on
    runtime [t] that produced result [r]. Includes a ["timeseries"]
    section when the sampler was enabled. *)
val run_json : Tm2c_core.Runtime.t -> Tm2c_apps.Workload.result -> Json.t
