(** JSON export of one run: the workload result plus the runtime's
    observability metrics — per-core commit/abort counters, network
    message totals and latency histogram, lock-service queue-depth and
    occupancy stats, and per-conflict abort causality. *)

val config_json : Tm2c_core.Runtime.config -> Json.t

val result_json : Tm2c_apps.Workload.result -> Json.t

val histogram_json : Tm2c_engine.Histogram.t -> Json.t

(** [run_json t r] — the full self-describing record for one run on
    runtime [t] that produced result [r]. *)
val run_json : Tm2c_core.Runtime.t -> Tm2c_apps.Workload.result -> Json.t
