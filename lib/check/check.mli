(** Checker orchestration.

    [run events] reconstructs the per-attempt history and runs the
    three checkers: the serializability oracle ({!Serial}), the
    DS-Lock protocol checker ({!Lockset}), and the liveness monitor
    ({!Liveness}). The event stream comes from a live {!Collector}
    tap or a {!Histlog} file. *)

type result = {
  history : History.t;
  serial : Serial.report;
  lockset : Lockset.report;
  liveness : Liveness.report;
}

val default_liveness_budget : int

(** [stuck_after_ns] arms the liveness monitor's wedge detection
    (see {!Liveness.analyze}); crashed cores and the horizon are
    derived from the event stream itself. *)
val run :
  ?liveness_budget:int ->
  ?stuck_after_ns:float ->
  (float * Tm2c_core.Event.t) list ->
  result

(** Total violations across all checkers (history anomalies count). *)
val n_failures : result -> int

val passed : result -> bool

(** One line per checker: OK/FAIL plus headline numbers. *)
val pp_summary : Format.formatter -> result -> unit

(** Full violation detail; for a conflict-graph cycle, the minimal
    witness — offending transactions and, per hop, the edge kind,
    address, and inducing sequence point. Empty when {!passed}. *)
val pp_witness : Format.formatter -> result -> unit

(** Summary followed by witness, as a string. *)
val report_string : result -> string
