(** Checker orchestration.

    [run iter] makes a single pass over the event stream (feeding the
    history builder, the lockset shadow, the crash set and the
    horizon), then runs the serializability + opacity oracle
    ({!Serial}) and the liveness monitor ({!Liveness}) over the
    assembled history. The stream comes from a live {!Collector}
    ([run (Collector.iter c)]), a {!Histlog} file, or a list
    ({!run_list}). For the online bounded-memory checker see
    {!Stream}. *)

type result = {
  history : History.t;
  serial : Serial.report;
  lockset : Lockset.report;
  liveness : Liveness.report;
}

val default_liveness_budget : int

(** [stuck_after_ns] arms the liveness monitor's wedge detection
    (see {!Liveness.analyze}); crashed cores and the horizon are
    derived from the event stream itself. [opacity] (default [true])
    snapshot-checks aborted and pre-publish-truncated attempts. The
    iterator is invoked exactly once. *)
val run :
  ?liveness_budget:int ->
  ?stuck_after_ns:float ->
  ?opacity:bool ->
  ((float -> Tm2c_core.Event.t -> unit) -> unit) ->
  result

(** Adapt an in-memory [(time, event)] list to the iterator shape the
    single-pass checkers consume. *)
val iter_of_list :
  (float * Tm2c_core.Event.t) list -> (float -> Tm2c_core.Event.t -> unit) -> unit

(** {!run} over an in-memory [(time, event)] list. *)
val run_list :
  ?liveness_budget:int ->
  ?stuck_after_ns:float ->
  ?opacity:bool ->
  (float * Tm2c_core.Event.t) list ->
  result

(** Total violations across all checkers (history anomalies count). *)
val n_failures : result -> int

val passed : result -> bool

(** One line per checker: OK/FAIL plus headline numbers. *)
val pp_summary : Format.formatter -> result -> unit

(** Full violation detail; for a conflict-graph cycle, the minimal
    witness — offending transactions and, per hop, the edge kind,
    address, and inducing sequence point. Empty when {!passed}. *)
val pp_witness : Format.formatter -> result -> unit

(** Render one opacity witness (shared with the streaming checker's
    report). *)
val pp_inconsistent_read : Format.formatter -> Serial.inconsistent_read -> unit

(** Summary followed by witness, as a string. *)
val report_string : result -> string
