(* FairCM liveness monitor: bound the abort chains.

   The contention managers promise progress — FairCM by effective-time
   priority aging (an aborted core's priority only improves), the
   greedy family by timestamp order. Under any of them a single atomic
   block should commit within a bounded number of attempts for the
   workloads we run. The monitor walks each core's attempts in order
   and measures the longest run of consecutive aborts between commits;
   a run reaching the configured budget is reported with its span, so
   a starvation or livelock regression in the CM shows up as a checker
   failure instead of a silently slow run. A run still open at the
   horizon counts: starvation at the end of the run is starvation. *)

type chain = {
  ch_core : int;
  ch_len : int;  (* consecutive aborted attempts *)
  ch_first_attempt : int;
  ch_start_time : float;
  ch_end_time : float;
}

type report = {
  budget : int;
  max_chain : chain option;  (* the longest abort run observed *)
  violations : chain list;  (* runs whose length reached the budget *)
}

let ok r = r.violations = []

let analyze ~budget (h : History.t) =
  let per_core : (int, History.attempt list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : History.attempt) ->
      match Hashtbl.find_opt per_core a.History.a_core with
      | Some r -> r := a :: !r
      | None -> Hashtbl.add per_core a.History.a_core (ref [ a ]))
    h.History.attempts;
  let max_chain = ref None and violations = ref [] in
  let consider ch =
    if ch.ch_len > 0 then begin
      (match !max_chain with
      | Some m when m.ch_len >= ch.ch_len -> ()
      | _ -> max_chain := Some ch);
      if ch.ch_len >= budget then violations := ch :: !violations
    end
  in
  Hashtbl.iter
    (fun core attempts_rev ->
      let attempts = List.rev !attempts_rev in
      let run = ref None in
      let flush () =
        (match !run with Some ch -> consider ch | None -> ());
        run := None
      in
      List.iter
        (fun (a : History.attempt) ->
          match a.History.a_outcome with
          | History.Aborted _ ->
              run :=
                Some
                  (match !run with
                  | None ->
                      {
                        ch_core = core;
                        ch_len = 1;
                        ch_first_attempt = a.History.a_number;
                        ch_start_time = a.History.a_start_time;
                        ch_end_time = a.History.a_end_time;
                      }
                  | Some ch ->
                      { ch with ch_len = ch.ch_len + 1; ch_end_time = a.History.a_end_time })
          | History.Committed _ -> flush ()
          | History.Unfinished -> ())
        attempts;
      flush ())
    per_core;
  {
    budget;
    max_chain = !max_chain;
    violations = List.sort (fun a b -> compare b.ch_len a.ch_len) !violations;
  }
