(* FairCM liveness monitor: bound the abort chains.

   The contention managers promise progress — FairCM by effective-time
   priority aging (an aborted core's priority only improves), the
   greedy family by timestamp order. Under any of them a single atomic
   block should commit within a bounded number of attempts for the
   workloads we run. The monitor walks each core's attempts in order
   and measures the longest run of consecutive aborts between commits;
   a run reaching the configured budget is reported with its span, so
   a starvation or livelock regression in the CM shows up as a checker
   failure instead of a silently slow run. A run still open at the
   horizon counts: starvation at the end of the run is starvation.

   The monitor also flags wedged cores: a core whose final attempt is
   still Unfinished at the horizon and has been so for at least
   [stuck_after_ns] made no progress at all — the signature of a dead
   lock server nobody failed over from. Crashed cores are exempt
   (their open attempt is the crash, not a wedge), and the check is
   off by default ([stuck_after_ns = infinity]) because run-horizon
   truncation legitimately leaves recent attempts open. *)

type chain = {
  ch_core : int;
  ch_len : int;  (* consecutive aborted attempts *)
  ch_first_attempt : int;
  ch_start_time : float;
  ch_end_time : float;
}

type stuck = {
  st_core : int;
  st_attempt : int;  (* the attempt wedged open at the horizon *)
  st_since_ns : float;  (* when that attempt started *)
  st_idle_ns : float;  (* horizon minus the attempt's last activity *)
}

(* Last recorded instant the attempt did anything: start, granted
   reads, publish. A long-lived transaction still traversing its
   structure reads continuously, so it never looks idle; a core whose
   lock server died hears nothing and its clock stops here. *)
let last_activity (a : History.attempt) =
  List.fold_left
    (fun acc (r : History.read) -> Float.max acc r.History.r_time)
    (Float.max a.History.a_start_time a.History.a_publish_time)
    a.History.a_reads

type report = {
  budget : int;
  max_chain : chain option;  (* the longest abort run observed *)
  violations : chain list;  (* runs whose length reached the budget *)
  stuck : stuck list;  (* cores wedged open at the horizon *)
}

let ok r = r.violations = [] && r.stuck = []

let analyze ~budget ?(stuck_after_ns = infinity) ?(crashed = [])
    ?horizon_ns (h : History.t) =
  let per_core : (int, History.attempt list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : History.attempt) ->
      match Hashtbl.find_opt per_core a.History.a_core with
      | Some r -> r := a :: !r
      | None -> Hashtbl.add per_core a.History.a_core (ref [ a ]))
    h.History.attempts;
  (* The horizon defaults to the latest instant the history itself
     records; callers that saw the raw stream (or know the configured
     run end) pass a tighter value. *)
  let horizon =
    match horizon_ns with
    | Some t -> t
    | None ->
        List.fold_left
          (fun acc (a : History.attempt) ->
            Float.max acc (Float.max a.History.a_start_time a.History.a_end_time))
          0.0 h.History.attempts
  in
  let max_chain = ref None and violations = ref [] and stuck = ref [] in
  let consider ch =
    if ch.ch_len > 0 then begin
      (match !max_chain with
      | Some m when m.ch_len >= ch.ch_len -> ()
      | _ -> max_chain := Some ch);
      if ch.ch_len >= budget then violations := ch :: !violations
    end
  in
  Tm2c_engine.Det.iter
    (fun core attempts_rev ->
      let attempts = List.rev !attempts_rev in
      let run = ref None in
      let flush () =
        (match !run with Some ch -> consider ch | None -> ());
        run := None
      in
      List.iter
        (fun (a : History.attempt) ->
          match a.History.a_outcome with
          | History.Aborted _ ->
              run :=
                Some
                  (match !run with
                  | None ->
                      {
                        ch_core = core;
                        ch_len = 1;
                        ch_first_attempt = a.History.a_number;
                        ch_start_time = a.History.a_start_time;
                        ch_end_time = a.History.a_end_time;
                      }
                  | Some ch ->
                      { ch with ch_len = ch.ch_len + 1; ch_end_time = a.History.a_end_time })
          | History.Committed _ -> flush ()
          | History.Unfinished -> ())
        attempts;
      flush ();
      (* Wedge detection: the chronologically last attempt, still open
         at the horizon, by a core that did not crash. *)
      match List.rev attempts with
      | (last : History.attempt) :: _ -> (
          match last.History.a_outcome with
          | History.Unfinished
            when (not (List.mem core crashed))
                 && horizon -. last_activity last >= stuck_after_ns ->
              stuck :=
                {
                  st_core = core;
                  st_attempt = last.History.a_number;
                  st_since_ns = last.History.a_start_time;
                  st_idle_ns = horizon -. last_activity last;
                }
                :: !stuck
          | _ -> ())
      | [] -> ())
    per_core;
  {
    budget;
    max_chain = !max_chain;
    violations = List.sort (fun a b -> compare b.ch_len a.ch_len) !violations;
    stuck = List.sort (fun a b -> compare a.st_core b.st_core) !stuck;
  }
