(** Online bounded-memory checker.

    The full oracle stack — history reconstruction, DS-lock shadow,
    multi-version serialization-graph test, opacity, liveness —
    restructured as an incremental pipeline fed one event at a time,
    typically installed directly as the trace sink ({!attach}). Memory
    is bounded by the concurrency window, not the run length: closed
    attempts are consumed and dropped, versions older than the
    garbage-collection watermark (the minimum start sequence over
    still-open attempts) are pruned, and serialization-graph nodes are
    retired with path compression once nothing can induce a new edge
    through them.

    Verdicts are structurally comparable with the batch oracle via
    {!verdict_of_result}; the differential test battery drives both
    over the same event streams and requires [equal]. *)

open Tm2c_core

(** Everything the checkers decide, in canonical (sorted) form so two
    verdicts over the same stream compare with [=]. *)
type verdict = {
  d_events : int;
  d_attempts : int;
  d_committed : int;
  d_aborted : int;
  d_unfinished : int;
  d_anomalies : int;
  d_reads_checked : int;
  d_reads_skipped : int;
  d_corruption : string list;  (** sorted corruption messages *)
  d_cycle : Types.addr list option;
      (** addresses on the reported conflict cycle, sorted *)
  d_opacity : (Types.addr * Types.addr) list;
      (** witness address pairs of inconsistent reads, sorted *)
  d_opacity_checked : int;
  d_lock_violations : int;
  d_grants : int;
  d_liveness_violations : int;
  d_max_chain : int;
  d_stuck : Types.core_id list;  (** wedged cores, sorted *)
}

val n_failures : verdict -> int

val passed : verdict -> bool

val equal : verdict -> verdict -> bool

type t

(** [gc_interval] is the event count between watermark sweeps
    (default 1024); the other knobs mirror {!Check.run}. *)
val create :
  ?liveness_budget:int ->
  ?stuck_after_ns:float ->
  ?opacity:bool ->
  ?gc_interval:int ->
  unit ->
  t

(** Feed one event; sink-compatible with
    {!Tm2c_engine.Trace.set_sink}. *)
val feed : t -> float -> Event.t -> unit

(** Install [t] as the trace's sink and enable tracing. *)
val attach : t -> Event.t Tm2c_engine.Trace.t -> unit

(** Arm (or disarm) wedge detection before {!finish}: callers learn
    only at run end whether the watchdog cut the run short. *)
val set_stuck_after_ns : t -> float -> unit

(** Close still-open attempts at the horizon and return the verdict.
    Idempotent: later calls return the same verdict. *)
val finish : t -> verdict

(** Project a batch {!Check.run} result onto the comparable verdict. *)
val verdict_of_result : Check.result -> verdict

val pp_verdict : Format.formatter -> verdict -> unit

(** Witness detail only (anomalies, corruption, the cycle, opacity
    witnesses, lock violations); empty output when the verdict
    passed. *)
val pp_witness : Format.formatter -> t -> unit

(** Summary plus witness detail (anomalies, corruption, the cycle,
    opacity witnesses, lock violations). Runs {!finish} if needed. *)
val report_string : t -> string

(** Live serialization-graph nodes right now — the window the checker
    is actually holding. *)
val n_live_nodes : t -> int

(** High-water mark of {!n_live_nodes} over the run; a bounded-memory
    run keeps this flat in run length. *)
val peak_nodes : t -> int
