(** Per-attempt history reconstruction.

    Turns the flat [(timestamp, event)] stream captured by
    {!Collector} into one record per transaction attempt, keyed by
    sequence number — the position of each event in the stream, which
    is the simulator's actual execution order (virtual timestamps can
    tie; sequence numbers cannot). All downstream checkers reason in
    sequence order.

    One incremental {!builder} is the single reconstruction core: the
    batch {!build} retains everything, while the streaming checker
    feeds the same builder with [retain:false] and consumes attempts
    through callbacks, keeping memory bounded by the concurrency
    window instead of the run length. *)

open Tm2c_core

type outcome =
  | Committed of { duration_ns : float }
  | Aborted of { conflict : Types.conflict option }
  | Unfinished
      (** still open when the history ends — normal when the run hits
          its horizon with fibers mid-transaction; never a violation *)

type read = {
  r_addr : Types.addr;
  r_value : int;  (** the word the memory sample returned *)
  r_time : float;
  r_seq : int;
}

type attempt = {
  a_core : Types.core_id;
  a_number : int;
  a_elastic : bool;
  a_start_time : float;
  a_start_seq : int;
  mutable a_reads : read list;  (** granted reads, program order *)
  mutable a_refused : bool;
  mutable a_writes : (Types.addr * int) list;
      (** final buffered value per address, first-store order *)
  mutable a_wlocks : (int * Types.addr list) list;
      (** write-lock batches granted, as (seq, addrs) *)
  mutable a_rlock_released : (int * Types.addr) list;
      (** elastic-early read-lock releases, as (seq, addr) *)
  mutable a_commit_begin_seq : int option;
  mutable a_publish_seq : int option;
      (** sequence point at which the write set became visible *)
  mutable a_publish_time : float;
  mutable a_doomed_seq : int option;
      (** first enemy-abort CAS that landed on this attempt *)
  mutable a_end_time : float;
  mutable a_end_seq : int;
  mutable a_outcome : outcome;
}

type anomaly = { an_seq : int; an_time : float; an_message : string }

type t = {
  attempts : attempt list;  (** in [Tx_start] order *)
  host_writes : (int * Types.addr * int) list;
      (** host-side stores ([Event.Host_write]) as (seq, addr, value):
          benchmark setup and weak-atomicity private-node
          initialization, attributed to no attempt *)
  anomalies : anomaly list;
      (** structural inconsistencies in the stream itself (nested
          attempts, commit of a different attempt number, double
          publish, ...) — any of these voids the other checkers'
          verdicts *)
  n_events : int;
  n_orphans : int;
      (** events seen before their core's first [Tx_start]; nonzero
          only for truncated streams *)
}

(** Incremental reconstruction state. *)
type builder

(** [builder ()] with all defaults behaves exactly like the batch
    path. [retain:false] drops closed attempts and host writes from
    the final {!t} (the callbacks are then the only way to observe
    them), bounding memory by the number of open attempts.
    [on_close] fires once per attempt, when it closes (commit, abort,
    crash, nested-start anomaly, or end of stream) — its accumulator
    lists are already in program order. [on_publish] fires at the
    attempt's [Tx_publish], when its write set is final and visible.
    [on_host_write] fires per [Event.Host_write] as (seq, addr, value). *)
val builder :
  ?retain:bool ->
  ?on_close:(attempt -> unit) ->
  ?on_publish:(attempt -> unit) ->
  ?on_host_write:(int -> Types.addr -> int -> unit) ->
  unit ->
  builder

val feed : builder -> float -> Event.t -> unit

(** Events fed so far — the sequence number the next event gets. *)
val n_events : builder -> int

(** Min [a_start_seq] over the attempts currently open, or
    {!n_events} when none are: nothing a live (or future) attempt can
    still conflict with precedes this sequence point, so a streaming
    checker may discard state older than it. *)
val watermark : builder -> int

(** Close every still-open attempt as [Unfinished] (firing [on_close])
    and return the assembled history. *)
val finish : builder -> t

(** Batch reconstruction over an event iterator, e.g.
    [build (Collector.iter c)]. *)
val build : ((float -> Event.t -> unit) -> unit) -> t

(** Attempts with [Committed] outcome, in start order. *)
val committed_attempts : t -> attempt list
