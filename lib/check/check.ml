(* Checker orchestration: reconstruct the history, run every checker,
   and render a human-readable verdict plus (on failure) a witness.

   [run] consumes the event stream through an iterator in a single
   pass — the history builder, the lockset shadow, the crash set and
   the horizon are all fed per event — then runs the serializability/
   opacity oracle and the liveness monitor over the assembled
   history. For the online (bounded-memory) form see {!Stream}. *)

type result = {
  history : History.t;
  serial : Serial.report;
  lockset : Lockset.report;
  liveness : Liveness.report;
}

let default_liveness_budget = 1000

let run ?(liveness_budget = default_liveness_budget) ?stuck_after_ns
    ?(opacity = true) iter =
  let hb = History.builder () in
  let ls = Lockset.create () in
  (* Crash-stopped cores are exempt from wedge detection (their open
     attempt is the crash); the horizon is the last traced instant,
     which bounds how long any attempt can have hung. *)
  let crashed = ref [] in
  let horizon = ref 0.0 in
  iter (fun time ev ->
      History.feed hb time ev;
      Lockset.feed ls time ev;
      if time > !horizon then horizon := time;
      match ev with
      | Tm2c_core.Event.Core_crashed { core; _ } -> crashed := core :: !crashed
      | _ -> ());
  let history = History.finish hb in
  {
    history;
    serial = Serial.analyze ~opacity history;
    lockset = Lockset.finish ls;
    liveness =
      Liveness.analyze ~budget:liveness_budget ?stuck_after_ns
        ~crashed:(List.rev !crashed) ~horizon_ns:!horizon history;
  }

let iter_of_list events f = List.iter (fun (t, e) -> f t e) events

let run_list ?liveness_budget ?stuck_after_ns ?opacity events =
  run ?liveness_budget ?stuck_after_ns ?opacity (iter_of_list events)

let n_failures r =
  List.length r.history.History.anomalies
  + List.length r.serial.Serial.corruption
  + (match r.serial.Serial.cycle with Some _ -> 1 | None -> 0)
  + List.length r.serial.Serial.opacity
  + List.length r.lockset.Lockset.violations
  + List.length r.liveness.Liveness.violations
  + List.length r.liveness.Liveness.stuck

let passed r = n_failures r = 0

let txn_label (r : result) i =
  let a = r.serial.Serial.txns.(i) in
  Format.asprintf "T%d[core %d attempt %d, published @%.0fns]" i
    a.History.a_core a.History.a_number a.History.a_publish_time

let count_outcomes (h : History.t) =
  List.fold_left
    (fun (c, ab, u) (a : History.attempt) ->
      match a.History.a_outcome with
      | History.Committed _ -> (c + 1, ab, u)
      | History.Aborted _ -> (c, ab + 1, u)
      | History.Unfinished -> (c, ab, u + 1))
    (0, 0, 0) h.History.attempts

let pp_summary fmt r =
  let committed, aborted, unfinished = count_outcomes r.history in
  let status ok = if ok then "OK  " else "FAIL" in
  Format.fprintf fmt
    "history  %s  %d events, %d attempts (%d committed, %d aborted, %d \
     unfinished), %d anomalies@."
    (status (r.history.History.anomalies = []))
    r.history.History.n_events
    (List.length r.history.History.attempts)
    committed aborted unfinished
    (List.length r.history.History.anomalies);
  Format.fprintf fmt
    "serial   %s  %d txns, %d reads checked (%d elastic skipped), %d initial \
     bindings, %d corrupt, %s, %d/%d attempts opaque@."
    (status (Serial.ok r.serial))
    (Array.length r.serial.Serial.txns)
    r.serial.Serial.n_reads_checked r.serial.Serial.n_reads_skipped
    r.serial.Serial.n_initial_bound
    (List.length r.serial.Serial.corruption)
    (match r.serial.Serial.cycle with
    | None -> "acyclic"
    | Some c -> Printf.sprintf "CYCLE of %d txns" (List.length c.Serial.c_txns))
    (r.serial.Serial.n_opacity_checked - List.length r.serial.Serial.opacity)
    r.serial.Serial.n_opacity_checked;
  Format.fprintf fmt "lockset  %s  %d grants replayed, %d violations@."
    (status (Lockset.ok r.lockset))
    r.lockset.Lockset.n_grants
    (List.length r.lockset.Lockset.violations);
  Format.fprintf fmt "liveness %s  max abort chain %s, budget %d, %d stuck@."
    (status (Liveness.ok r.liveness))
    (match r.liveness.Liveness.max_chain with
    | None -> "0"
    | Some ch -> Printf.sprintf "%d (core %d)" ch.Liveness.ch_len ch.Liveness.ch_core)
    r.liveness.Liveness.budget
    (List.length r.liveness.Liveness.stuck)

let pp_inconsistent_read fmt (ir : Serial.inconsistent_read) =
  let pp_pub fmt p =
    if p < 0 then Format.fprintf fmt "the initial state"
    else Format.fprintf fmt "the version published @seq %d" p
  in
  Format.fprintf fmt
    "  core %d attempt %d (seqs %d..%d) mixed two snapshots:@.    read addr=%d \
     value=%d @seq %d — %a@.    read addr=%d value=%d @seq %d — %a@.  no \
     single memory snapshot explains both reads@."
    ir.Serial.ir_core ir.Serial.ir_attempt ir.Serial.ir_start_seq
    ir.Serial.ir_end_seq ir.Serial.ir_addr1 ir.Serial.ir_value1
    ir.Serial.ir_seq1 pp_pub ir.Serial.ir_pub1 ir.Serial.ir_addr2
    ir.Serial.ir_value2 ir.Serial.ir_seq2 pp_pub ir.Serial.ir_pub2

let pp_witness fmt r =
  if r.history.History.anomalies <> [] then begin
    Format.fprintf fmt "@.== history anomalies (verdicts below are void) ==@.";
    List.iter
      (fun (an : History.anomaly) ->
        Format.fprintf fmt "  seq %d @%.0fns: %s@." an.History.an_seq
          an.History.an_time an.History.an_message)
      r.history.History.anomalies
  end;
  List.iter
    (fun msg -> Format.fprintf fmt "@.== value corruption ==@.  %s@." msg)
    r.serial.Serial.corruption;
  (match r.serial.Serial.cycle with
  | None -> ()
  | Some c ->
      Format.fprintf fmt
        "@.== serializability violation: conflict-graph cycle ==@.";
      List.iter
        (fun (e : Serial.edge) ->
          Format.fprintf fmt "  %s --%s addr=%d @seq %d--> %s@."
            (txn_label r e.Serial.e_from)
            (Serial.edge_kind_to_string e.Serial.e_kind)
            e.Serial.e_addr e.Serial.e_seq
            (txn_label r e.Serial.e_to))
        c.Serial.c_edges;
      Format.fprintf fmt
        "  no serial order of these transactions explains the observed reads@.");
  if r.serial.Serial.opacity <> [] then begin
    Format.fprintf fmt "@.== opacity violations: inconsistent reads ==@.";
    List.iter (pp_inconsistent_read fmt) r.serial.Serial.opacity
  end;
  if r.lockset.Lockset.violations <> [] then begin
    Format.fprintf fmt "@.== lock protocol violations ==@.";
    List.iter
      (fun (v : Lockset.violation) ->
        Format.fprintf fmt "  seq %d @%.0fns: %s@." v.Lockset.v_seq
          v.Lockset.v_time v.Lockset.v_message)
      r.lockset.Lockset.violations
  end;
  if r.liveness.Liveness.violations <> [] then begin
    Format.fprintf fmt "@.== liveness violations ==@.";
    List.iter
      (fun (ch : Liveness.chain) ->
        Format.fprintf fmt
          "  core %d aborted %d consecutive attempts (from attempt %d, \
           %.0fns..%.0fns) — budget %d@."
          ch.Liveness.ch_core ch.Liveness.ch_len ch.Liveness.ch_first_attempt
          ch.Liveness.ch_start_time ch.Liveness.ch_end_time
          r.liveness.Liveness.budget)
      r.liveness.Liveness.violations
  end;
  if r.liveness.Liveness.stuck <> [] then begin
    Format.fprintf fmt "@.== wedged cores ==@.";
    List.iter
      (fun (s : Liveness.stuck) ->
        Format.fprintf fmt
          "  core %d: attempt %d open since %.0fns, no progress for %.0fns — \
           likely waiting on a dead lock server@."
          s.Liveness.st_core s.Liveness.st_attempt s.Liveness.st_since_ns
          s.Liveness.st_idle_ns)
      r.liveness.Liveness.stuck
  end

let report_string r =
  Format.asprintf "%a%a" pp_summary r pp_witness r
