(* Checker orchestration: reconstruct the history, run every checker,
   and render a human-readable verdict plus (on failure) a witness. *)

type result = {
  history : History.t;
  serial : Serial.report;
  lockset : Lockset.report;
  liveness : Liveness.report;
}

let default_liveness_budget = 1000

let run ?(liveness_budget = default_liveness_budget) ?stuck_after_ns events =
  let history = History.build events in
  (* Crash-stopped cores are exempt from wedge detection (their open
     attempt is the crash); the horizon is the last traced instant,
     which bounds how long any attempt can have hung. *)
  let crashed =
    List.filter_map
      (function
        | _, Tm2c_core.Event.Core_crashed { core; _ } -> Some core | _ -> None)
      events
  in
  let horizon_ns =
    List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 events
  in
  {
    history;
    serial = Serial.analyze history;
    lockset = Lockset.analyze events;
    liveness =
      Liveness.analyze ~budget:liveness_budget ?stuck_after_ns ~crashed
        ~horizon_ns history;
  }

let n_failures r =
  List.length r.history.History.anomalies
  + List.length r.serial.Serial.corruption
  + (match r.serial.Serial.cycle with Some _ -> 1 | None -> 0)
  + List.length r.lockset.Lockset.violations
  + List.length r.liveness.Liveness.violations
  + List.length r.liveness.Liveness.stuck

let passed r = n_failures r = 0

let txn_label (r : result) i =
  let a = r.serial.Serial.txns.(i) in
  Format.asprintf "T%d[core %d attempt %d, published @%.0fns]" i
    a.History.a_core a.History.a_number a.History.a_publish_time

let count_outcomes (h : History.t) =
  List.fold_left
    (fun (c, ab, u) (a : History.attempt) ->
      match a.History.a_outcome with
      | History.Committed _ -> (c + 1, ab, u)
      | History.Aborted _ -> (c, ab + 1, u)
      | History.Unfinished -> (c, ab, u + 1))
    (0, 0, 0) h.History.attempts

let pp_summary fmt r =
  let committed, aborted, unfinished = count_outcomes r.history in
  let status ok = if ok then "OK  " else "FAIL" in
  Format.fprintf fmt
    "history  %s  %d events, %d attempts (%d committed, %d aborted, %d \
     unfinished), %d anomalies@."
    (status (r.history.History.anomalies = []))
    r.history.History.n_events
    (List.length r.history.History.attempts)
    committed aborted unfinished
    (List.length r.history.History.anomalies);
  Format.fprintf fmt
    "serial   %s  %d txns, %d reads checked (%d elastic skipped), %d initial \
     bindings, %d corrupt, %s@."
    (status (Serial.ok r.serial))
    (Array.length r.serial.Serial.txns)
    r.serial.Serial.n_reads_checked r.serial.Serial.n_reads_skipped
    r.serial.Serial.n_initial_bound
    (List.length r.serial.Serial.corruption)
    (match r.serial.Serial.cycle with
    | None -> "acyclic"
    | Some c -> Printf.sprintf "CYCLE of %d txns" (List.length c.Serial.c_txns));
  Format.fprintf fmt "lockset  %s  %d grants replayed, %d violations@."
    (status (Lockset.ok r.lockset))
    r.lockset.Lockset.n_grants
    (List.length r.lockset.Lockset.violations);
  Format.fprintf fmt "liveness %s  max abort chain %s, budget %d, %d stuck@."
    (status (Liveness.ok r.liveness))
    (match r.liveness.Liveness.max_chain with
    | None -> "0"
    | Some ch -> Printf.sprintf "%d (core %d)" ch.Liveness.ch_len ch.Liveness.ch_core)
    r.liveness.Liveness.budget
    (List.length r.liveness.Liveness.stuck)

let pp_witness fmt r =
  if r.history.History.anomalies <> [] then begin
    Format.fprintf fmt "@.== history anomalies (verdicts below are void) ==@.";
    List.iter
      (fun (an : History.anomaly) ->
        Format.fprintf fmt "  seq %d @%.0fns: %s@." an.History.an_seq
          an.History.an_time an.History.an_message)
      r.history.History.anomalies
  end;
  List.iter
    (fun msg -> Format.fprintf fmt "@.== value corruption ==@.  %s@." msg)
    r.serial.Serial.corruption;
  (match r.serial.Serial.cycle with
  | None -> ()
  | Some c ->
      Format.fprintf fmt
        "@.== serializability violation: conflict-graph cycle ==@.";
      List.iter
        (fun (e : Serial.edge) ->
          Format.fprintf fmt "  %s --%s addr=%d @seq %d--> %s@."
            (txn_label r e.Serial.e_from)
            (Serial.edge_kind_to_string e.Serial.e_kind)
            e.Serial.e_addr e.Serial.e_seq
            (txn_label r e.Serial.e_to))
        c.Serial.c_edges;
      Format.fprintf fmt
        "  no serial order of these transactions explains the observed reads@.");
  if r.lockset.Lockset.violations <> [] then begin
    Format.fprintf fmt "@.== lock protocol violations ==@.";
    List.iter
      (fun (v : Lockset.violation) ->
        Format.fprintf fmt "  seq %d @%.0fns: %s@." v.Lockset.v_seq
          v.Lockset.v_time v.Lockset.v_message)
      r.lockset.Lockset.violations
  end;
  if r.liveness.Liveness.violations <> [] then begin
    Format.fprintf fmt "@.== liveness violations ==@.";
    List.iter
      (fun (ch : Liveness.chain) ->
        Format.fprintf fmt
          "  core %d aborted %d consecutive attempts (from attempt %d, \
           %.0fns..%.0fns) — budget %d@."
          ch.Liveness.ch_core ch.Liveness.ch_len ch.Liveness.ch_first_attempt
          ch.Liveness.ch_start_time ch.Liveness.ch_end_time
          r.liveness.Liveness.budget)
      r.liveness.Liveness.violations
  end;
  if r.liveness.Liveness.stuck <> [] then begin
    Format.fprintf fmt "@.== wedged cores ==@.";
    List.iter
      (fun (s : Liveness.stuck) ->
        Format.fprintf fmt
          "  core %d: attempt %d open since %.0fns, no progress for %.0fns — \
           likely waiting on a dead lock server@."
          s.Liveness.st_core s.Liveness.st_attempt s.Liveness.st_since_ns
          s.Liveness.st_idle_ns)
      r.liveness.Liveness.stuck
  end

let report_string r =
  Format.asprintf "%a%a" pp_summary r pp_witness r
