(** FairCM liveness monitor.

    Measures, per core, the longest run of consecutive aborted
    attempts between commits; a run whose length reaches the
    configured budget is a violation — a starvation or livelock
    regression in the contention manager. Runs still open when the
    history ends count.

    Also detects wedged cores: a core whose final attempt is still
    [Unfinished] at the horizon, showed no activity for at least
    [stuck_after_ns], and did not crash, made no progress at all — the
    signature of a dead DS-lock server nobody failed over from. *)

type chain = {
  ch_core : int;
  ch_len : int;  (** consecutive aborted attempts *)
  ch_first_attempt : int;
  ch_start_time : float;
  ch_end_time : float;
}

type stuck = {
  st_core : int;
  st_attempt : int;  (** the attempt wedged open at the horizon *)
  st_since_ns : float;  (** when that attempt started *)
  st_idle_ns : float;
      (** horizon minus the attempt's last recorded activity (start,
          granted reads, publish) — a long-lived transaction still
          reading never looks idle *)
}

type report = {
  budget : int;
  max_chain : chain option;  (** longest abort run observed, any core *)
  violations : chain list;  (** runs with [ch_len >= budget], longest first *)
  stuck : stuck list;  (** wedged cores, by core id *)
}

(** [stuck_after_ns] defaults to [infinity] (wedge detection off —
    run-horizon truncation legitimately leaves recent attempts open);
    [crashed] lists cores exempt from it (crash-stopped cores hold
    their attempt open by design); [horizon_ns] overrides the history
    end time, which otherwise is the latest attempt instant seen. *)
val analyze :
  budget:int ->
  ?stuck_after_ns:float ->
  ?crashed:int list ->
  ?horizon_ns:float ->
  History.t ->
  report

(** No abort chain reached the budget and no core is stuck. *)
val ok : report -> bool
