(** FairCM liveness monitor.

    Measures, per core, the longest run of consecutive aborted
    attempts between commits; a run whose length reaches the
    configured budget is a violation — a starvation or livelock
    regression in the contention manager. Runs still open when the
    history ends count. *)

type chain = {
  ch_core : int;
  ch_len : int;  (** consecutive aborted attempts *)
  ch_first_attempt : int;
  ch_start_time : float;
  ch_end_time : float;
}

type report = {
  budget : int;
  max_chain : chain option;  (** longest abort run observed, any core *)
  violations : chain list;  (** runs with [ch_len >= budget], longest first *)
}

val analyze : budget:int -> History.t -> report

val ok : report -> bool
