(* Reconstruct per-attempt transaction records from the event stream.

   Events arrive in record order, which is execution order: the trace
   is written sequentially by the single-threaded simulator, so the
   sequence number assigned here is a total order consistent with the
   simulated machine's actual interleaving — including ties in virtual
   time, which the timestamps alone cannot break. All checkers compare
   sequence numbers, never raw timestamps.

   The incremental [builder] is the single reconstruction core: the
   batch [build] retains every attempt and returns the full history,
   while the streaming checker runs the same builder with
   [retain:false] and consumes attempts through the [on_close] /
   [on_publish] callbacks, so its memory is bounded by the number of
   concurrently open attempts rather than the run length. *)

open Tm2c_core

type outcome =
  | Committed of { duration_ns : float }
  | Aborted of { conflict : Types.conflict option }
  | Unfinished  (** open when the history ends (run-horizon truncation) *)

type read = {
  r_addr : Types.addr;
  r_value : int;
  r_time : float;
  r_seq : int;
}

type attempt = {
  a_core : Types.core_id;
  a_number : int;  (* the core's attempt counter *)
  a_elastic : bool;
  a_start_time : float;
  a_start_seq : int;
  mutable a_reads : read list;  (* program order after close *)
  mutable a_refused : bool;  (* some read lock was refused *)
  mutable a_writes : (Types.addr * int) list;  (* final value per address *)
  mutable a_wlocks : (int * Types.addr list) list;  (* (seq, batch), trace order *)
  mutable a_rlock_released : (int * Types.addr) list;  (* elastic-early *)
  mutable a_commit_begin_seq : int option;
  mutable a_publish_seq : int option;
  mutable a_publish_time : float;
  mutable a_doomed_seq : int option;  (* first enemy-abort CAS landed *)
  mutable a_end_time : float;
  mutable a_end_seq : int;
  mutable a_outcome : outcome;
}

type anomaly = { an_seq : int; an_time : float; an_message : string }

type t = {
  attempts : attempt list;  (* in Tx_start order *)
  host_writes : (int * Types.addr * int) list;  (* (seq, addr, value) *)
  anomalies : anomaly list;  (* structural inconsistencies in the stream *)
  n_events : int;
  n_orphans : int;  (* events before their core's first Tx_start *)
}

let committed_attempts t =
  List.filter (fun a -> match a.a_outcome with Committed _ -> true | _ -> false)
    t.attempts

(* Replace-or-append keyed on address, preserving first-store order. *)
let update_write writes addr value =
  let rec go = function
    | [] -> [ (addr, value) ]
    | (a, _) :: rest when a = addr -> (a, value) :: rest
    | kv :: rest -> kv :: go rest
  in
  go writes

type builder = {
  retain : bool;
  on_close : attempt -> unit;
  on_publish : attempt -> unit;
  on_host_write : int -> Types.addr -> int -> unit;
  open_attempts : (Types.core_id, attempt) Hashtbl.t;
  started : (Types.core_id, unit) Hashtbl.t;
  mutable b_attempts : attempt list;  (* reversed; empty unless retain *)
  mutable b_host_writes : (int * Types.addr * int) list;  (* reversed *)
  mutable b_anomalies : anomaly list;  (* reversed *)
  mutable b_n_events : int;
  mutable b_n_orphans : int;
}

let builder ?(retain = true) ?(on_close = fun _ -> ())
    ?(on_publish = fun _ -> ()) ?(on_host_write = fun _ _ _ -> ()) () =
  {
    retain;
    on_close;
    on_publish;
    on_host_write;
    open_attempts = Hashtbl.create 64;
    started = Hashtbl.create 64;
    b_attempts = [];
    b_host_writes = [];
    b_anomalies = [];
    b_n_events = 0;
    b_n_orphans = 0;
  }

let n_events b = b.b_n_events

(* Garbage-collection frontier for the streaming checker: no attempt
   that is still open (or will ever open) can have observed anything
   before the oldest open attempt began. With nothing open the
   frontier is the stream position itself. *)
let watermark b =
  let w = ref b.b_n_events in
  Tm2c_engine.Det.iter
    (fun _ a -> if a.a_start_seq < !w then w := a.a_start_seq)
    b.open_attempts;
  !w

let anomaly b seq time fmt =
  Printf.ksprintf
    (fun m ->
      b.b_anomalies <-
        { an_seq = seq; an_time = time; an_message = m } :: b.b_anomalies)
    fmt

let close b seq time a outcome =
  a.a_end_time <- time;
  a.a_end_seq <- seq;
  a.a_outcome <- outcome;
  a.a_reads <- List.rev a.a_reads;
  a.a_wlocks <- List.rev a.a_wlocks;
  a.a_rlock_released <- List.rev a.a_rlock_released;
  Hashtbl.remove b.open_attempts a.a_core;
  b.on_close a

(* An event attributable to a core's current attempt; events arriving
   before the core's first Tx_start (a truncated stream) are counted
   as orphans, later unattributable events are anomalies. *)
let with_open b seq time core what f =
  match Hashtbl.find_opt b.open_attempts core with
  | Some a -> f a
  | None ->
      if Hashtbl.mem b.started core then
        anomaly b seq time "core %d: %s outside any attempt" core what
      else b.b_n_orphans <- b.b_n_orphans + 1

let feed b time ev =
  let seq = b.b_n_events in
  b.b_n_events <- seq + 1;
  match ev with
  | Event.Tx_start { core; attempt; elastic } ->
      (match Hashtbl.find_opt b.open_attempts core with
      | Some prev ->
          anomaly b seq time
            "core %d: attempt %d started while attempt %d still open" core
            attempt prev.a_number;
          close b seq time prev Unfinished
      | None -> ());
      Hashtbl.replace b.started core ();
      let a =
        {
          a_core = core;
          a_number = attempt;
          a_elastic = elastic;
          a_start_time = time;
          a_start_seq = seq;
          a_reads = [];
          a_refused = false;
          a_writes = [];
          a_wlocks = [];
          a_rlock_released = [];
          a_commit_begin_seq = None;
          a_publish_seq = None;
          a_publish_time = 0.0;
          a_doomed_seq = None;
          a_end_time = time;
          a_end_seq = seq;
          a_outcome = Unfinished;
        }
      in
      Hashtbl.replace b.open_attempts core a;
      if b.retain then b.b_attempts <- a :: b.b_attempts
  | Event.Tx_read { core; addr; granted; value } ->
      with_open b seq time core "tx-read" (fun a ->
          if granted then
            a.a_reads <-
              { r_addr = addr; r_value = value; r_time = time; r_seq = seq }
              :: a.a_reads
          else a.a_refused <- true)
  | Event.Tx_write { core; addr; value } ->
      with_open b seq time core "tx-write" (fun a ->
          a.a_writes <- update_write a.a_writes addr value)
  | Event.Rlock_released { core; addr } ->
      with_open b seq time core "rlock-release" (fun a ->
          a.a_rlock_released <- (seq, addr) :: a.a_rlock_released)
  | Event.Wlock_granted { core; addrs } ->
      with_open b seq time core "wlock" (fun a ->
          a.a_wlocks <- (seq, addrs) :: a.a_wlocks)
  | Event.Tx_commit_begin { core; attempt; _ } ->
      with_open b seq time core "commit-begin" (fun a ->
          if a.a_number <> attempt then
            anomaly b seq time "core %d: commit-begin for attempt %d inside %d"
              core attempt a.a_number;
          a.a_commit_begin_seq <- Some seq)
  | Event.Tx_publish { core; attempt; _ } ->
      with_open b seq time core "publish" (fun a ->
          if a.a_number <> attempt then
            anomaly b seq time "core %d: publish for attempt %d inside %d" core
              attempt a.a_number;
          (match a.a_publish_seq with
          | Some _ ->
              anomaly b seq time "core %d: attempt %d published twice" core
                attempt
          | None -> ());
          a.a_publish_seq <- Some seq;
          a.a_publish_time <- time;
          b.on_publish a)
  | Event.Tx_committed { core; attempt; duration_ns } ->
      with_open b seq time core "committed" (fun a ->
          if a.a_number <> attempt then
            anomaly b seq time "core %d: commit of attempt %d inside %d" core
              attempt a.a_number;
          close b seq time a (Committed { duration_ns }))
  | Event.Tx_aborted { core; attempt; conflict } ->
      with_open b seq time core "aborted" (fun a ->
          if a.a_number <> attempt then
            anomaly b seq time "core %d: abort of attempt %d inside %d" core
              attempt a.a_number;
          close b seq time a (Aborted { conflict }))
  | Event.Enemy_aborted { victim; _ } ->
      (* The CAS can only land on a live pending attempt; anything
         else is a protocol violation reported by the lockset
         checker, which replays these events itself. Here we only
         mark the doom point for liveness/serializability use. *)
      (match Hashtbl.find_opt b.open_attempts victim with
      | Some a when a.a_doomed_seq = None -> a.a_doomed_seq <- Some seq
      | Some _ | None -> ())
  | Event.Host_write { addr; value } ->
      (* Attributed to no attempt: setup and private-node init. *)
      if b.retain then b.b_host_writes <- (seq, addr, value) :: b.b_host_writes;
      b.on_host_write seq addr value
  | Event.Core_crashed { core; _ } ->
      (* Crash-stop: the core's open attempt ends here, Unfinished —
         exactly like run-horizon truncation, so no checker treats
         its open locks or missing end event as a violation. *)
      (match Hashtbl.find_opt b.open_attempts core with
      | Some a -> close b seq time a Unfinished
      | None -> ())
  | Event.Lock_conflict _ | Event.Req_sent _ | Event.Service _
  | Event.Service_done _ | Event.Barrier _ | Event.Msg_dropped _
  | Event.Msg_duplicated _ | Event.Req_resent _ | Event.Lease_reclaimed _
  | Event.Server_crashed _ | Event.Epoch_bumped _ | Event.Replica_applied _
  | Event.Failover_done _ | Event.Stale_epoch_rejected _
  | Event.Req_admitted _ | Event.Req_shed _ | Event.Req_expired _
  | Event.Retry_budget_exhausted _ ->
      (* Failover events carry no per-attempt information: a
         server crash ends no application attempt (clients ride it
         out through resend + failover). Admission events precede any
         attempt (shed/expired requests never start a transaction), so
         they carry none either. *)
      ()

(* Attempts still open when the stream ends stay [Unfinished]; their
   accumulators are put into program order and [on_close] fires so a
   streaming consumer sees horizon-truncated attempts too. *)
let finish b =
  Tm2c_engine.Det.iter
    (fun _ a ->
      a.a_outcome <- Unfinished;
      a.a_reads <- List.rev a.a_reads;
      a.a_wlocks <- List.rev a.a_wlocks;
      a.a_rlock_released <- List.rev a.a_rlock_released;
      b.on_close a)
    b.open_attempts;
  Hashtbl.reset b.open_attempts;
  {
    attempts = List.rev b.b_attempts;
    host_writes = List.rev b.b_host_writes;
    anomalies = List.rev b.b_anomalies;
    n_events = b.b_n_events;
    n_orphans = b.b_n_orphans;
  }

let build iter =
  let b = builder () in
  iter (fun time ev -> feed b time ev);
  finish b
