(* Complete-history capture: a growable array fed by the trace's sink,
   so the checkers see every event of the run even when the 64K ring
   wraps. Attachment also enables tracing (emit sites are guarded on
   [Trace.enabled]). *)

open Tm2c_core

type t = {
  mutable times : float array;
  mutable events : Event.t array;
  mutable len : int;
}

let create () = { times = [||]; events = [||]; len = 0 }

let grow c ev =
  let cap = Array.length c.times in
  let cap' = if cap = 0 then 4096 else 2 * cap in
  let times = Array.make cap' 0.0 in
  let events = Array.make cap' ev in
  Array.blit c.times 0 times 0 c.len;
  Array.blit c.events 0 events 0 c.len;
  c.times <- times;
  c.events <- events

let push c ts ev =
  if c.len = Array.length c.times then grow c ev;
  c.times.(c.len) <- ts;
  c.events.(c.len) <- ev;
  c.len <- c.len + 1

let attach c trace =
  Tm2c_engine.Trace.set_sink trace (Some (fun ts ev -> push c ts ev));
  Tm2c_engine.Trace.enable trace

let detach trace = Tm2c_engine.Trace.set_sink trace None

let length c = c.len

let iter c f =
  for i = 0 to c.len - 1 do
    f c.times.(i) c.events.(i)
  done

let to_list c =
  let acc = ref [] in
  for i = c.len - 1 downto 0 do
    acc := (c.times.(i), c.events.(i)) :: !acc
  done;
  !acc
