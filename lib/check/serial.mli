(** Serializability + opacity oracle: multi-version
    serialization-graph test plus snapshot consistency for
    never-serialized attempts.

    Serialized transactions — committed, or horizon-frozen after
    their publish point (write-back already visible) — are replayed
    in publish order against versioned shared memory; each granted
    read is resolved (by its traced sequence point and observed
    value) to the version it actually saw, inducing WR / WW / RW
    dependency edges. The serialized history is serializable iff the
    graph is acyclic; a cycle is returned with a minimal witness.

    Opacity: attempts that aborted (or were cut off before
    publishing) must also have observed a single consistent snapshot.
    Each such attempt's reads are checked against the installed
    version timeline; an attempt that mixed values from two
    irreconcilable versions yields an {!inconsistent_read} witness
    naming both reads and the versions that pin them apart.

    Initial memory state is untraced (host-side pokes populate the
    benchmark structures before the measured region), so each address
    carries a lazily-bound initial version: the first read only
    explicable by the initial state binds its value; while unbound it
    matches any observed value, so setup state never produces a
    spurious violation.

    Elastic attempts are excluded from both read checks — their read
    traces are intentionally partial and early read-lock release is
    by design a license to span snapshots (validated by their own
    windowed read rule). Their writes still install versions. *)

type edge_kind = Wr | Ww | Rw

val edge_kind_to_string : edge_kind -> string

type edge = {
  e_from : int;  (** txn index in {!report.txns} *)
  e_to : int;
  e_kind : edge_kind;
  e_addr : Tm2c_core.Types.addr;
  e_seq : int;  (** sequence point of the inducing observation *)
}

type cycle = {
  c_txns : int list;  (** txn indices along the cycle, in order *)
  c_edges : edge list;  (** one edge per hop, closing edge last *)
}

(** Opacity violation: one attempt whose read prefix fits no single
    memory snapshot. Read 1 is the earliest read irreconcilable with
    read 2, the read at which the attempt's feasible-snapshot set
    became empty; [ir_pub1]/[ir_pub2] are the publish sequence points
    of the versions each read most plausibly observed (-1 = unbound
    initial state). *)
type inconsistent_read = {
  ir_core : Tm2c_core.Types.core_id;
  ir_attempt : int;
  ir_start_seq : int;
  ir_end_seq : int;
  ir_addr1 : Tm2c_core.Types.addr;
  ir_value1 : int;
  ir_seq1 : int;
  ir_pub1 : int;
  ir_addr2 : Tm2c_core.Types.addr;
  ir_value2 : int;
  ir_seq2 : int;
  ir_pub2 : int;
}

type report = {
  txns : History.attempt array;
      (** serialized transactions in publish order; edge endpoints
          index into this array *)
  n_reads_checked : int;
  n_reads_skipped : int;  (** reads of elastic serialized attempts *)
  n_initial_bound : int;  (** addresses whose initial version got bound *)
  corruption : string list;
      (** reads whose observed value matches no installed version *)
  cycle : cycle option;
  opacity : inconsistent_read list;
      (** never-serialized attempts that observed an inconsistent
          snapshot; empty when [analyze ~opacity:false] *)
  n_opacity_checked : int;
}

(** [analyze ?opacity h] replays the serialized history and, unless
    [opacity] is [false] (default [true]), snapshot-checks every
    non-elastic attempt that never serialized. *)
val analyze : ?opacity:bool -> History.t -> report

(** No corruption, no cycle, no opacity violation. *)
val ok : report -> bool

(** Whether an attempt's writes are visible in the serialized
    history: committed, or horizon-frozen after publish. *)
val serialized : History.attempt -> bool

(** Snapshot-consistency check for one attempt, shared with the
    streaming checker. [versions_of addr] is the address's version
    timeline as a pub-sorted [(pub_seq, value option)] array (value
    [None] = unbound initial state, matching anything). Returns the
    minimal witness, or [None] if some snapshot instant within the
    attempt's lifetime (at or after its start sequence) explains
    every read. *)
val opacity_check :
  versions_of:(Tm2c_core.Types.addr -> (int * int option) array) ->
  History.attempt ->
  inconsistent_read option

(**/**)

(** Exposed for the streaming checker: sorted-disjoint interval-list
    intersection over the sequence axis, and the explainable-instant
    intervals of one read. *)
val intersect_intervals :
  (int * int) list -> (int * int) list -> (int * int) list

val read_intervals : (int * int option) array -> History.read -> (int * int) list
