(** Serializability oracle: multi-version serialization-graph test.

    Committed transactions are replayed in publish order against
    versioned shared memory; each granted read is resolved (by its
    traced sequence point and observed value) to the version it
    actually saw, inducing WR / WW / RW dependency edges. The
    committed history is serializable iff the graph is acyclic; a
    cycle is returned with a minimal witness.

    Initial memory state is untraced (host-side pokes populate the
    benchmark structures before the measured region), so each address
    carries a lazily-bound initial version: the first read only
    explicable by the initial state binds its value.

    Elastic attempts are excluded from read checking — their read
    traces are intentionally partial and their consistency model is
    weaker by design. Their writes still install versions. *)

type edge_kind = Wr | Ww | Rw

val edge_kind_to_string : edge_kind -> string

type edge = {
  e_from : int;  (** txn index in {!report.txns} *)
  e_to : int;
  e_kind : edge_kind;
  e_addr : Tm2c_core.Types.addr;
  e_seq : int;  (** sequence point of the inducing observation *)
}

type cycle = {
  c_txns : int list;  (** txn indices along the cycle, in order *)
  c_edges : edge list;  (** one edge per hop, closing edge last *)
}

type report = {
  txns : History.attempt array;
      (** committed transactions in publish order; edge endpoints
          index into this array *)
  n_reads_checked : int;
  n_reads_skipped : int;  (** reads of elastic attempts *)
  n_initial_bound : int;  (** addresses whose initial version got bound *)
  corruption : string list;
      (** reads whose observed value matches no installed version *)
  cycle : cycle option;
}

val analyze : History.t -> report

(** No corruption and no cycle. *)
val ok : report -> bool
