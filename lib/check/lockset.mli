(** DS-Lock protocol checker.

    Replays the event stream against a shadow lock table and validates
    the two-phase discipline: reads never see a foreign write lock,
    write-lock grants are exclusive against live holders, only elastic
    attempts shrink their read set before the end, write-back happens
    under write locks, and enemy-abort CASes never land on victims
    past their publish point. See the implementation header for the
    exact rules and why the shadow is conservative in the right
    direction.

    The checker is single-pass: {!create} / {!feed} / {!finish} is the
    incremental form the streaming checker drives event by event (its
    state is bounded by held locks plus the address working set, not
    run length); {!analyze} is the batch wrapper over an iterator. *)

type violation = { v_seq : int; v_time : float; v_message : string }

type report = {
  violations : violation list;
  n_grants : int;  (** read + write lock grants replayed *)
}

(** Incremental shadow-table state. *)
type t

val create : unit -> t

val feed : t -> float -> Tm2c_core.Event.t -> unit

val finish : t -> report

(** Batch form: [analyze (Collector.iter c)]. *)
val analyze : ((float -> Tm2c_core.Event.t -> unit) -> unit) -> report

val ok : report -> bool
