(** DS-Lock protocol checker.

    Replays the event stream against a shadow lock table and validates
    the two-phase discipline: reads never see a foreign write lock,
    write-lock grants are exclusive against live holders, only elastic
    attempts shrink their read set before the end, write-back happens
    under write locks, and enemy-abort CASes never land on victims
    past their publish point. See the implementation header for the
    exact rules and why the shadow is conservative in the right
    direction. *)

type violation = { v_seq : int; v_time : float; v_message : string }

type report = {
  violations : violation list;
  n_grants : int;  (** read + write lock grants replayed *)
}

val analyze : (float * Tm2c_core.Event.t) list -> report

val ok : report -> bool
