(** Complete-history capture for the checkers.

    The trace ring keeps only the most recent 64K events; the checkers
    need the whole run. A collector taps the trace's sink (see
    {!Tm2c_engine.Trace.set_sink}) and accumulates every recorded
    event in order, without dropping. *)

open Tm2c_core

type t

val create : unit -> t

(** [attach c trace] installs [c] as the trace's sink and enables
    tracing (emit sites are guarded on [Trace.enabled]). *)
val attach : t -> Event.t Tm2c_engine.Trace.t -> unit

(** Remove any installed sink (tracing stays enabled). *)
val detach : Event.t Tm2c_engine.Trace.t -> unit

val length : t -> int

(** In-order iteration over (timestamp, event) — the form the
    checkers and the history-log writer consume; it allocates
    nothing. *)
val iter : t -> (float -> Event.t -> unit) -> unit

(** Materialize the whole capture as a list. Test-only convenience:
    production paths ([tm2c-sim], the harness) feed {!iter} so a long
    run is never copied into a second full-size structure. *)
val to_list : t -> (float * Event.t) list
