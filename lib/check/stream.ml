(* Online bounded-memory checker: the full oracle stack — history
   reconstruction, lockset shadow, serialization-graph test, opacity,
   liveness — restructured as an incremental pipeline fed one event at
   a time through the trace sink, so a run of any length can be
   checked without retaining its event stream.

   Memory is bounded by the concurrency window, not the run length:

   - The history builder runs with [retain:false]; attempts are
     consumed through its callbacks and dropped at close.
   - Versioned memory keeps, per address, only the versions newer
     than the garbage-collection watermark — the minimum start
     sequence over still-open attempts ({!History.watermark}). No
     open attempt can resolve a read against anything older than the
     newest version at or below its own start, so pruning the rest
     cannot change any verdict on a protocol-respecting trace.
   - Serialization-graph nodes are reference-counted ("pins": one per
     retained version they installed, one per awaited RW edge, one
     for being an address's most recent transactional writer) and
     retired once closed and unpinned. Retirement path-compresses:
     for every in-neighbor p and out-neighbor s of the retired node,
     a synthetic p -> s edge preserves reachability, so a cycle
     through retired transactions is still a cycle.

   Two documented residues can grow with the workload (not the run
   length): the RW await list of an address that is read but never
   transactionally written again, and the pinned last-writer node of
   an address never rewritten. Both are bounded by the address
   working set; the contended workloads the streaming checker targets
   rewrite their hot addresses continuously.

   Verdict equivalence with the batch oracle ([Check.run]) is exact
   on protocol-respecting traces and on the seeded fault/mutation
   schedules we test; constructed adversarial traces can diverge in
   witness *detail* (which of several equivalent cycles or stale
   resolutions is reported) because the stream resolves reads at
   attempt close while the batch replays with the complete timeline.
   The differential test battery compares full verdicts across
   seeds, shapes and fault schedules. *)

open Tm2c_core

type verdict = {
  d_events : int;
  d_attempts : int;
  d_committed : int;
  d_aborted : int;
  d_unfinished : int;
  d_anomalies : int;
  d_reads_checked : int;
  d_reads_skipped : int;
  d_corruption : string list;
  d_cycle : Types.addr list option;
  d_opacity : (Types.addr * Types.addr) list;
  d_opacity_checked : int;
  d_lock_violations : int;
  d_grants : int;
  d_liveness_violations : int;
  d_max_chain : int;
  d_stuck : Types.core_id list;
}

let n_failures v =
  v.d_anomalies
  + List.length v.d_corruption
  + (match v.d_cycle with Some _ -> 1 | None -> 0)
  + List.length v.d_opacity
  + v.d_lock_violations + v.d_liveness_violations
  + List.length v.d_stuck

let passed v = n_failures v = 0

let equal (a : verdict) (b : verdict) = a = b

(* --- Serialization graph with retirement. --- *)

type gedge = {
  ge_to : int;
  ge_kind : Serial.edge_kind;
  ge_addr : Types.addr;
  ge_seq : int;
}

type node = {
  n_id : int;
  n_core : Types.core_id;
  n_attempt : int;
  n_pub_time : float;
  mutable n_open : bool;  (* attempt not yet closed *)
  mutable n_pins : int;  (* retained versions + awaits + last-writer *)
  mutable n_out : gedge list;
  mutable n_in : int list;  (* predecessor ids, for path compression *)
}

(* A retained version of one address; [sv_writer = -1] marks the
   lazily-bound initial version and external host writes. *)
type sversion = {
  sv_pub : int;
  mutable sv_value : int option;
  sv_writer : int;
}

type astate = {
  mutable versions : sversion list;  (* newest first *)
  mutable await : (int * int) list;  (* (reader node, r_seq) pending RW *)
  mutable last_writer : int;  (* most recent transactional writer, -1 none *)
}

type chain = { mutable c_len : int }

type t = {
  mutable hb : History.builder;
  ls : Lockset.t;
  opacity_on : bool;
  budget : int;
  mutable stuck_after_ns : float;
  gc_interval : int;
  nodes : (int, node) Hashtbl.t;
  addrs : (Types.addr, astate) Hashtbl.t;
  pub_node : (Types.core_id, int) Hashtbl.t;  (* open published attempt *)
  mutable next_id : int;
  mutable horizon : float;
  mutable crashed : Types.core_id list;
  mutable committed : int;
  mutable aborted : int;
  mutable unfinished : int;
  mutable reads_checked : int;
  mutable reads_skipped : int;
  mutable corruption : string list;  (* reversed *)
  mutable opacity : Serial.inconsistent_read list;  (* reversed *)
  mutable opacity_checked : int;
  mutable cycle : (string list * Types.addr list) option;
  chains : (Types.core_id, chain) Hashtbl.t;
  mutable liveness_violations : int;
  mutable max_chain : int;
  mutable stuck : Types.core_id list;
  mutable finishing : bool;
  mutable since_gc : int;
  mutable peak_nodes : int;  (* high-water of live graph nodes *)
  mutable fin_anomalies : History.anomaly list;
  mutable fin_lockset : Lockset.report option;
  mutable result : verdict option;
}

let label n =
  Printf.sprintf "T%d[core %d attempt %d, published @%.0fns]" n.n_id n.n_core
    n.n_attempt n.n_pub_time

let pin t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n.n_pins <- n.n_pins + 1
  | None -> ()

let unpin t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n.n_pins <- n.n_pins - 1
  | None -> ()

let astate_of t addr =
  match Hashtbl.find_opt t.addrs addr with
  | Some st -> st
  | None ->
      let st =
        {
          versions = [ { sv_pub = -1; sv_value = None; sv_writer = -1 } ];
          await = [];
          last_writer = -1;
        }
      in
      Hashtbl.add t.addrs addr st;
      st

(* First cycle wins: DFS from the new edge's target looking for its
   source; out-lists are insertion-ordered, so the search is
   deterministic. Depth is bounded by the live window. *)
let check_cycle t u_id v_id closing =
  let visited = Hashtbl.create 64 in
  let rec go id =
    if id = u_id then Some []
    else if Hashtbl.mem visited id then None
    else begin
      Hashtbl.add visited id ();
      match Hashtbl.find_opt t.nodes id with
      | None -> None
      | Some n ->
          let rec try_edges = function
            | [] -> None
            | e :: rest -> (
                match go e.ge_to with
                | Some tail -> Some ((id, e) :: tail)
                | None -> try_edges rest)
          in
          try_edges n.n_out
    end
  in
  match go v_id with
  | None -> ()
  | Some path ->
      let hops = path @ [ (u_id, closing) ] in
      let name id =
        match Hashtbl.find_opt t.nodes id with
        | Some n -> label n
        | None -> Printf.sprintf "T%d" id
      in
      let lines =
        List.map
          (fun (f, e) ->
            Printf.sprintf "  %s --%s addr=%d @seq %d--> %s" (name f)
              (Serial.edge_kind_to_string e.ge_kind)
              e.ge_addr e.ge_seq (name e.ge_to))
          hops
      in
      let addrs =
        List.sort_uniq compare (List.map (fun (_, e) -> e.ge_addr) hops)
      in
      t.cycle <- Some (lines, addrs)

(* Synthetic edges come from path compression: they cannot create
   reachability that did not already exist, so they skip the cycle
   probe. *)
let add_edge t ~synthetic from_id to_id kind addr seq =
  if from_id <> to_id then
    match (Hashtbl.find_opt t.nodes from_id, Hashtbl.find_opt t.nodes to_id) with
    | Some fn, Some tn ->
        if not (List.exists (fun e -> e.ge_to = to_id) fn.n_out) then begin
          let e = { ge_to = to_id; ge_kind = kind; ge_addr = addr; ge_seq = seq } in
          fn.n_out <- e :: fn.n_out;
          if not (List.mem from_id tn.n_in) then tn.n_in <- from_id :: tn.n_in;
          if (not synthetic) && t.cycle = None then
            check_cycle t from_id to_id e
        end
    | _ -> ()

let retire t id =
  match Hashtbl.find_opt t.nodes id with
  | None -> ()
  | Some n ->
      List.iter
        (fun p_id ->
          match Hashtbl.find_opt t.nodes p_id with
          | None -> ()
          | Some p -> (
              match List.find_opt (fun e -> e.ge_to = id) p.n_out with
              | None -> ()
              | Some pe ->
                  p.n_out <- List.filter (fun e -> e.ge_to <> id) p.n_out;
                  List.iter
                    (fun e ->
                      if Hashtbl.mem t.nodes e.ge_to then
                        add_edge t ~synthetic:true p_id e.ge_to pe.ge_kind
                          pe.ge_addr pe.ge_seq)
                    n.n_out))
        n.n_in;
      List.iter
        (fun e ->
          match Hashtbl.find_opt t.nodes e.ge_to with
          | None -> ()
          | Some s -> s.n_in <- List.filter (fun x -> x <> id) s.n_in)
        n.n_out;
      Hashtbl.remove t.nodes id

let gc t =
  t.since_gc <- 0;
  let wm = History.watermark t.hb in
  (* Per address, keep everything newer than the newest version at or
     below the watermark, plus that boundary version itself: it is
     the one an open attempt's earliest read can still resolve to.
     Pending awaits are per address, not per version, so pruning
     never loses an RW edge. *)
  Tm2c_engine.Det.iter
    (fun _addr st ->
      let rec keep = function
        | [] -> []
        | v :: rest ->
            if v.sv_pub <= wm then begin
              List.iter
                (fun dv -> if dv.sv_writer >= 0 then unpin t dv.sv_writer)
                rest;
              [ v ]
            end
            else v :: keep rest
      in
      st.versions <- keep st.versions)
    t.addrs;
  let retirable = ref [] in
  Tm2c_engine.Det.iter
    (fun id n ->
      if (not n.n_open) && n.n_pins <= 0 then retirable := id :: !retirable)
    t.nodes;
  List.iter (fun id -> retire t id) (List.rev !retirable)

(* --- Versioned-memory installation and read resolution. --- *)

(* Install a serialized attempt's write set at its publish point and
   create its graph node. WW edges chain consecutive transactional
   writers; pending RW awaits flush onto the new writer. *)
let install t (a : History.attempt) pub =
  let id = t.next_id in
  t.next_id <- id + 1;
  let n =
    {
      n_id = id;
      n_core = a.History.a_core;
      n_attempt = a.History.a_number;
      n_pub_time = a.History.a_publish_time;
      n_open = true;
      n_pins = 0;
      n_out = [];
      n_in = [];
    }
  in
  Hashtbl.replace t.nodes id n;
  List.iter
    (fun (addr, value) ->
      let st = astate_of t addr in
      if st.last_writer >= 0 then begin
        add_edge t ~synthetic:false st.last_writer id Serial.Ww addr pub;
        unpin t st.last_writer
      end;
      List.iter
        (fun (rid, rseq) ->
          add_edge t ~synthetic:false rid id Serial.Rw addr rseq;
          unpin t rid)
        (List.rev st.await);
      st.await <- [];
      st.last_writer <- id;
      n.n_pins <- n.n_pins + 1;
      st.versions <- { sv_pub = pub; sv_value = Some value; sv_writer = id } :: st.versions;
      n.n_pins <- n.n_pins + 1)
    a.History.a_writes;
  let live = Hashtbl.length t.nodes in
  if live > t.peak_nodes then t.peak_nodes <- live;
  id

let on_publish t (a : History.attempt) =
  let pub = match a.History.a_publish_seq with Some s -> s | None -> 0 in
  let id = install t a pub in
  Hashtbl.replace t.pub_node a.History.a_core id

let on_host_write t seq addr value =
  let st = astate_of t addr in
  st.versions <- { sv_pub = seq; sv_value = Some value; sv_writer = -1 } :: st.versions

(* Mirror of the batch resolver over the retained window (ascending
   array): timing-predicted version first, then binding the unbound
   predecessor, then the nearest stale, then a future version, then
   binding the initial version. *)
let resolve (vs : sversion array) (r : History.read) =
  let n = Array.length vs in
  let pred = ref 0 in
  for j = 0 to n - 1 do
    if vs.(j).sv_pub < r.History.r_seq then pred := j
  done;
  let matches j =
    match vs.(j).sv_value with Some v -> v = r.History.r_value | None -> false
  in
  if matches !pred then Some !pred
  else if vs.(!pred).sv_value = None then begin
    vs.(!pred).sv_value <- Some r.History.r_value;
    Some !pred
  end
  else begin
    let found = ref (-1) in
    for j = 0 to !pred - 1 do
      if matches j then found := j
    done;
    if !found >= 0 then Some !found
    else begin
      for j = n - 1 downto !pred + 1 do
        if matches j then found := j
      done;
      if !found >= 0 then Some !found
      else if vs.(0).sv_value = None then begin
        vs.(0).sv_value <- Some r.History.r_value;
        Some 0
      end
      else None
    end
  end

let close_serialized t id (a : History.attempt) =
  (match Hashtbl.find_opt t.nodes id with
  | Some n -> n.n_open <- false
  | None -> ());
  if a.History.a_elastic then
    t.reads_skipped <- t.reads_skipped + List.length a.History.a_reads
  else
    List.iter
      (fun (r : History.read) ->
        t.reads_checked <- t.reads_checked + 1;
        let st = astate_of t r.History.r_addr in
        let vs = Array.of_list (List.rev st.versions) in
        match resolve vs r with
        | None ->
            t.corruption <-
              Printf.sprintf
                "core %d attempt %d read addr=%d value=%d at seq %d: value \
                 matches no installed version"
                a.History.a_core a.History.a_number r.History.r_addr
                r.History.r_value r.History.r_seq
              :: t.corruption
        | Some j ->
            if vs.(j).sv_writer >= 0 then
              add_edge t ~synthetic:false vs.(j).sv_writer id Serial.Wr
                r.History.r_addr r.History.r_seq;
            let rec next_writer k =
              if k >= Array.length vs then None
              else if vs.(k).sv_writer >= 0 then Some vs.(k).sv_writer
              else next_writer (k + 1)
            in
            (match next_writer (j + 1) with
            | Some w ->
                add_edge t ~synthetic:false id w Serial.Rw r.History.r_addr
                  r.History.r_seq
            | None ->
                (* No transactional overwrite yet: the RW edge fires
                   when (if) one installs. *)
                st.await <- (id, r.History.r_seq) :: st.await;
                pin t id))
      a.History.a_reads

let versions_of t addr =
  let st = astate_of t addr in
  Array.of_list (List.rev_map (fun v -> (v.sv_pub, v.sv_value)) st.versions)

let check_opacity t (a : History.attempt) =
  if t.opacity_on && not a.History.a_elastic then begin
    t.opacity_checked <- t.opacity_checked + 1;
    match Serial.opacity_check ~versions_of:(versions_of t) a with
    | Some ir -> t.opacity <- ir :: t.opacity
    | None -> ()
  end

(* --- Liveness: per-core abort runs and wedge detection, the
   streaming mirror of {!Liveness.analyze}. --- *)

let flush_chain t core =
  match Hashtbl.find_opt t.chains core with
  | None -> ()
  | Some c ->
      if c.c_len > t.max_chain then t.max_chain <- c.c_len;
      if c.c_len >= t.budget then
        t.liveness_violations <- t.liveness_violations + 1;
      Hashtbl.remove t.chains core

let extend_chain t core =
  match Hashtbl.find_opt t.chains core with
  | Some c -> c.c_len <- c.c_len + 1
  | None -> Hashtbl.add t.chains core { c_len = 1 }

let last_activity (a : History.attempt) =
  List.fold_left
    (fun acc (r : History.read) -> Float.max acc r.History.r_time)
    (Float.max a.History.a_start_time a.History.a_publish_time)
    a.History.a_reads

(* Fires only for attempts still open at the horizon (finish-time
   closes): the streaming analogue of "the core's chronologically
   last attempt is Unfinished". Crash-closed attempts close mid-run
   and never reach here. *)
let check_stuck t (a : History.attempt) =
  if
    (not (List.mem a.History.a_core t.crashed))
    && t.horizon -. last_activity a >= t.stuck_after_ns
  then t.stuck <- a.History.a_core :: t.stuck

let on_close t (a : History.attempt) =
  let core = a.History.a_core in
  let node_id = Hashtbl.find_opt t.pub_node core in
  Hashtbl.remove t.pub_node core;
  match a.History.a_outcome with
  | History.Committed _ -> (
      t.committed <- t.committed + 1;
      flush_chain t core;
      match node_id with
      | Some id -> close_serialized t id a
      | None ->
          (* Defensive: a commit whose publish event went untraced.
             Serialize it at its end point, as the batch oracle does. *)
          let id = install t a a.History.a_end_seq in
          close_serialized t id a)
  | History.Unfinished -> (
      t.unfinished <- t.unfinished + 1;
      if t.finishing then check_stuck t a;
      match node_id with
      | Some id -> close_serialized t id a
      | None -> check_opacity t a)
  | History.Aborted _ ->
      t.aborted <- t.aborted + 1;
      extend_chain t core;
      (* A published-then-aborted attempt is protocol-impossible (the
         status CAS to Committing precedes publish); if a broken trace
         produces one anyway, unhook its node so it can retire. *)
      (match node_id with
      | Some id -> (
          match Hashtbl.find_opt t.nodes id with
          | Some n -> n.n_open <- false
          | None -> ())
      | None -> ());
      check_opacity t a

(* --- Driver. --- *)

let create ?(liveness_budget = Check.default_liveness_budget)
    ?(stuck_after_ns = infinity) ?(opacity = true) ?(gc_interval = 1024) () =
  let t =
    {
      hb = History.builder ~retain:false ();
      ls = Lockset.create ();
      opacity_on = opacity;
      budget = liveness_budget;
      stuck_after_ns;
      gc_interval;
      nodes = Hashtbl.create 256;
      addrs = Hashtbl.create 256;
      pub_node = Hashtbl.create 64;
      next_id = 0;
      horizon = 0.0;
      crashed = [];
      committed = 0;
      aborted = 0;
      unfinished = 0;
      reads_checked = 0;
      reads_skipped = 0;
      corruption = [];
      opacity = [];
      opacity_checked = 0;
      cycle = None;
      chains = Hashtbl.create 64;
      liveness_violations = 0;
      max_chain = 0;
      stuck = [];
      finishing = false;
      since_gc = 0;
      peak_nodes = 0;
      fin_anomalies = [];
      fin_lockset = None;
      result = None;
    }
  in
  t.hb <-
    History.builder ~retain:false
      ~on_close:(fun a -> on_close t a)
      ~on_publish:(fun a -> on_publish t a)
      ~on_host_write:(fun seq addr value -> on_host_write t seq addr value)
      ();
  t

let feed t time ev =
  if time > t.horizon then t.horizon <- time;
  (match ev with
  | Event.Core_crashed { core; _ } -> t.crashed <- core :: t.crashed
  | _ -> ());
  Lockset.feed t.ls time ev;
  History.feed t.hb time ev;
  t.since_gc <- t.since_gc + 1;
  if t.since_gc >= t.gc_interval then gc t

let set_stuck_after_ns t v = t.stuck_after_ns <- v

let attach t trace =
  Tm2c_engine.Trace.set_sink trace (Some (feed t));
  Tm2c_engine.Trace.enable trace

let n_live_nodes t = Hashtbl.length t.nodes

let peak_nodes t = t.peak_nodes

let finish t =
  match t.result with
  | Some v -> v
  | None ->
      t.finishing <- true;
      let h = History.finish t.hb in
      let cores = ref [] in
      Tm2c_engine.Det.iter (fun core _ -> cores := core :: !cores) t.chains;
      List.iter (fun core -> flush_chain t core) (List.rev !cores);
      let lr = Lockset.finish t.ls in
      t.fin_anomalies <- h.History.anomalies;
      t.fin_lockset <- Some lr;
      let v =
        {
          d_events = h.History.n_events;
          d_attempts = t.committed + t.aborted + t.unfinished;
          d_committed = t.committed;
          d_aborted = t.aborted;
          d_unfinished = t.unfinished;
          d_anomalies = List.length h.History.anomalies;
          d_reads_checked = t.reads_checked;
          d_reads_skipped = t.reads_skipped;
          d_corruption = List.sort compare t.corruption;
          d_cycle =
            (match t.cycle with None -> None | Some (_, addrs) -> Some addrs);
          d_opacity =
            List.sort compare
              (List.rev_map
                 (fun (ir : Serial.inconsistent_read) ->
                   (ir.Serial.ir_addr1, ir.Serial.ir_addr2))
                 t.opacity);
          d_opacity_checked = t.opacity_checked;
          d_lock_violations = List.length lr.Lockset.violations;
          d_grants = lr.Lockset.n_grants;
          d_liveness_violations = t.liveness_violations;
          d_max_chain = t.max_chain;
          d_stuck = List.sort compare t.stuck;
        }
      in
      t.result <- Some v;
      v

(* Project a batch result onto the comparable verdict, for the
   differential battery. *)
let verdict_of_result (r : Check.result) =
  let committed, aborted, unfinished =
    List.fold_left
      (fun (c, ab, u) (a : History.attempt) ->
        match a.History.a_outcome with
        | History.Committed _ -> (c + 1, ab, u)
        | History.Aborted _ -> (c, ab + 1, u)
        | History.Unfinished -> (c, ab, u + 1))
      (0, 0, 0) r.Check.history.History.attempts
  in
  {
    d_events = r.Check.history.History.n_events;
    d_attempts = List.length r.Check.history.History.attempts;
    d_committed = committed;
    d_aborted = aborted;
    d_unfinished = unfinished;
    d_anomalies = List.length r.Check.history.History.anomalies;
    d_reads_checked = r.Check.serial.Serial.n_reads_checked;
    d_reads_skipped = r.Check.serial.Serial.n_reads_skipped;
    d_corruption = List.sort compare r.Check.serial.Serial.corruption;
    d_cycle =
      (match r.Check.serial.Serial.cycle with
      | None -> None
      | Some c ->
          Some
            (List.sort_uniq compare
               (List.map (fun (e : Serial.edge) -> e.Serial.e_addr)
                  c.Serial.c_edges)));
    d_opacity =
      List.sort compare
        (List.map
           (fun (ir : Serial.inconsistent_read) ->
             (ir.Serial.ir_addr1, ir.Serial.ir_addr2))
           r.Check.serial.Serial.opacity);
    d_opacity_checked = r.Check.serial.Serial.n_opacity_checked;
    d_lock_violations = List.length r.Check.lockset.Lockset.violations;
    d_grants = r.Check.lockset.Lockset.n_grants;
    d_liveness_violations = List.length r.Check.liveness.Liveness.violations;
    d_max_chain =
      (match r.Check.liveness.Liveness.max_chain with
      | None -> 0
      | Some ch -> ch.Liveness.ch_len);
    d_stuck =
      List.sort compare
        (List.map
           (fun (s : Liveness.stuck) -> s.Liveness.st_core)
           r.Check.liveness.Liveness.stuck);
  }

let pp_verdict fmt v =
  let status ok = if ok then "OK  " else "FAIL" in
  Format.fprintf fmt
    "history  %s  %d events, %d attempts (%d committed, %d aborted, %d \
     unfinished), %d anomalies@."
    (status (v.d_anomalies = 0))
    v.d_events v.d_attempts v.d_committed v.d_aborted v.d_unfinished
    v.d_anomalies;
  Format.fprintf fmt
    "serial   %s  %d reads checked (%d elastic skipped), %d corrupt, %s, \
     %d/%d attempts opaque@."
    (status
       (v.d_corruption = [] && v.d_cycle = None && v.d_opacity = []))
    v.d_reads_checked v.d_reads_skipped
    (List.length v.d_corruption)
    (match v.d_cycle with
    | None -> "acyclic"
    | Some addrs ->
        Printf.sprintf "CYCLE over %d address(es)" (List.length addrs))
    (v.d_opacity_checked - List.length v.d_opacity)
    v.d_opacity_checked;
  Format.fprintf fmt "lockset  %s  %d grants replayed, %d violations@."
    (status (v.d_lock_violations = 0))
    v.d_grants v.d_lock_violations;
  Format.fprintf fmt "liveness %s  max abort chain %d, %d violations, %d stuck@."
    (status (v.d_liveness_violations = 0 && v.d_stuck = []))
    v.d_max_chain v.d_liveness_violations
    (List.length v.d_stuck)

let pp_witness fmt t =
  if t.fin_anomalies <> [] then begin
    Format.fprintf fmt "@.== history anomalies (verdicts below are void) ==@.";
    List.iter
      (fun (an : History.anomaly) ->
        Format.fprintf fmt "  seq %d @%.0fns: %s@." an.History.an_seq
          an.History.an_time an.History.an_message)
      t.fin_anomalies
  end;
  List.iter
    (fun msg -> Format.fprintf fmt "@.== value corruption ==@.  %s@." msg)
    (List.rev t.corruption);
  (match t.cycle with
  | None -> ()
  | Some (lines, _) ->
      Format.fprintf fmt
        "@.== serializability violation: conflict-graph cycle ==@.";
      List.iter (fun l -> Format.fprintf fmt "%s@." l) lines;
      Format.fprintf fmt
        "  no serial order of these transactions explains the observed reads@.");
  (match List.rev t.opacity with
  | [] -> ()
  | irs ->
      Format.fprintf fmt "@.== opacity violations: inconsistent reads ==@.";
      List.iter (Check.pp_inconsistent_read fmt) irs);
  match t.fin_lockset with
  | Some lr when lr.Lockset.violations <> [] ->
      Format.fprintf fmt "@.== lock protocol violations ==@.";
      List.iter
        (fun (viol : Lockset.violation) ->
          Format.fprintf fmt "  seq %d @%.0fns: %s@." viol.Lockset.v_seq
            viol.Lockset.v_time viol.Lockset.v_message)
        lr.Lockset.violations
  | Some _ | None -> ()

let report_string t =
  let v = finish t in
  Format.asprintf "%a%a" pp_verdict v pp_witness t
