(* DS-Lock protocol checker: replay the event stream against a shadow
   lock table and validate the two-phase discipline.

   The shadow is driven by the trace's grant/revoke/end events, not by
   the (untraced, fire-and-forget) release messages, so it must free
   locks no later than the real table does — otherwise a legal grant
   racing a release still in flight would look like a conflict. The
   release point differs per outcome: an aborting attempt sends its
   releases and emits [Tx_aborted] in the same instant, so the abort
   event precedes every arrival; a committing attempt sends them at
   its publish point and only emits [Tx_committed] after the
   write-burst latency, during which releases can already land and
   the freed addresses be re-granted. The shadow therefore drops an
   attempt's locks at [Tx_publish] (after the write-back-under-lock
   check) or at its abort, whichever comes first. A shadow conflict
   at a grant then means two attempts genuinely held incompatible
   locks at once.

   Rules enforced, in replay (sequence) order:

   - a granted read on an address write-locked by another live
     attempt is a visible-read violation (the writer should have been
     revoked first, with an [Enemy_aborted] preceding the grant) —
     unless the holder is already doomed (an earlier enemy CAS landed
     on it, possibly at another address): its status word reads
     Aborted, so servers revoke its stale entries on sight without a
     second [Enemy_aborted]. The shadow mirrors that revocation;
   - a write-lock grant on an address read- or write-locked by
     another live attempt is an exclusivity violation, with the same
     stale-entry exemption for doomed holders;
   - [Rlock_released] from a non-elastic attempt breaks two-phase
     locking (only elastic windows may shrink before the end);
   - at [Tx_publish], every address of the attempt's write set must
     be write-locked by it (write-back under lock);
   - an [Enemy_aborted] CAS landing on an attempt past its publish
     point, or on a core whose last attempt committed and whose next
     has not started, hit a committed victim — impossible when the
     protocol is honest, because the status word reads Committing
     from the commit CAS until the next attempt begins. A CAS landing
     on a core whose last attempt *aborted* is the benign in-flight
     revocation race: the victim's status word still reads (attempt,
     Pending) until its next [begin_attempt] rewrites it;
   - write grants are stamped with the current failover epoch (the
     max seen across [Epoch_bumped] events). A conflicting write
     grant over a holder granted in an *earlier* epoch — neither
     revoked nor reclaimed in between — is reported as an
     epoch-boundary violation: the signature of a zombie primary
     granting a lock the promoted backup has also granted. An honest
     server refuses such requests ([Stale_epoch_rejected]), so this
     fires only when the epoch check is broken. *)

open Tm2c_core

type violation = { v_seq : int; v_time : float; v_message : string }

type live = {
  l_attempt : int;
  l_elastic : bool;
  mutable l_published : bool;
  mutable l_doomed : bool;
      (* an enemy-abort CAS landed on this attempt: its remaining lock
         entries are stale and servers revoke them without a further
         [Enemy_aborted] *)
  mutable l_writes : Types.addr list;  (* addresses stored so far *)
}

type report = {
  violations : violation list;
  n_grants : int;  (* read + write lock grants replayed *)
}

let ok r = r.violations = []

let analyze events =
  let violations = ref [] and n_grants = ref 0 in
  let violation seq time fmt =
    Printf.ksprintf
      (fun m -> violations := { v_seq = seq; v_time = time; v_message = m } :: !violations)
      fmt
  in
  (* addr -> cores holding a read lock / the core holding the write
     lock. A core may hold both (read-to-write upgrade). *)
  let rlocks : (Types.addr, Types.core_id list) Hashtbl.t = Hashtbl.create 512 in
  let wlocks : (Types.addr, Types.core_id) Hashtbl.t = Hashtbl.create 512 in
  (* Failover epoch the current write lock on an address was granted
     in; [cur_epoch] follows the [Epoch_bumped] events. (Epochs are
     per partition in the protocol, but a write lock never moves
     between partitions, so the global max is a sound stamp.) *)
  let wepoch : (Types.addr, int) Hashtbl.t = Hashtbl.create 512 in
  let cur_epoch = ref 0 in
  let live : (Types.core_id, live) Hashtbl.t = Hashtbl.create 64 in
  (* How each core's most recent attempt ended — after a commit the
     status word reads Committing until the next begin, so an abort
     CAS landing then is a protocol violation; after an abort the
     word still reads Pending, so a landing CAS is the benign
     in-flight revocation race. *)
  let last_outcome : (Types.core_id, [ `Committed | `Aborted ]) Hashtbl.t =
    Hashtbl.create 64
  in
  let readers addr =
    match Hashtbl.find_opt rlocks addr with Some l -> l | None -> []
  in
  let doomed core =
    match Hashtbl.find_opt live core with
    | Some l -> l.l_doomed
    | None -> false
  in
  let add_reader addr core =
    if not (List.mem core (readers addr)) then
      Hashtbl.replace rlocks addr (core :: readers addr)
  in
  let drop_reader addr core =
    match List.filter (fun c -> c <> core) (readers addr) with
    | [] -> Hashtbl.remove rlocks addr
    | l -> Hashtbl.replace rlocks addr l
  in
  let drop_core_locks core =
    let held_r =
      Tm2c_engine.Det.fold
        (fun a cs acc -> if List.mem core cs then a :: acc else acc)
        rlocks []
    in
    List.iter (fun a -> drop_reader a core) held_r;
    let held_w =
      Tm2c_engine.Det.fold
        (fun a c acc -> if c = core then a :: acc else acc)
        wlocks []
    in
    List.iter (fun a -> Hashtbl.remove wlocks a) held_w
  in
  List.iteri
    (fun seq (time, ev) ->
      match ev with
      | Event.Tx_start { core; attempt; elastic } ->
          (* Nested-start anomalies are History's department; here we
             just reset the core's shadow state. *)
          drop_core_locks core;
          Hashtbl.replace live core
            {
              l_attempt = attempt;
              l_elastic = elastic;
              l_published = false;
              l_doomed = false;
              l_writes = [];
            }
      | Event.Tx_read { core; addr; granted; _ } ->
          if granted then begin
            incr n_grants;
            (match Hashtbl.find_opt wlocks addr with
            | Some w when w <> core ->
                if doomed w then
                  (* Stale entry of a doomed writer: the server revoked
                     it on sight (status already Aborted). *)
                  Hashtbl.remove wlocks addr
                else
                  violation seq time
                    "read grant to core %d on addr %d while core %d holds the \
                     write lock"
                    core addr w
            | Some _ | None -> ());
            add_reader addr core
          end
      | Event.Tx_write { core; addr; _ } -> (
          match Hashtbl.find_opt live core with
          | Some l -> if not (List.mem addr l.l_writes) then l.l_writes <- addr :: l.l_writes
          | None -> ())
      | Event.Wlock_granted { core; addrs } ->
          List.iter
            (fun addr ->
              incr n_grants;
              (match Hashtbl.find_opt wlocks addr with
              | Some w when w <> core && not (doomed w) ->
                  let granted_epoch =
                    match Hashtbl.find_opt wepoch addr with
                    | Some e -> e
                    | None -> !cur_epoch
                  in
                  if granted_epoch < !cur_epoch then
                    violation seq time
                      "write-lock grant to core %d on addr %d crosses an epoch \
                       boundary: core %d was granted it in epoch %d (current \
                       epoch %d) and was never revoked or reclaimed — a \
                       stale-epoch server granted over the failover"
                      core addr w granted_epoch !cur_epoch
                  else
                    violation seq time
                      "write-lock grant to core %d on addr %d while core %d holds \
                       the write lock"
                      core addr w
              | Some _ | None -> ());
              List.iter
                (fun r ->
                  if r <> core then
                    if doomed r then drop_reader addr r
                    else
                      violation seq time
                        "write-lock grant to core %d on addr %d while core %d \
                         holds a read lock"
                        core addr r)
                (readers addr);
              Hashtbl.replace wlocks addr core;
              Hashtbl.replace wepoch addr !cur_epoch)
            addrs
      | Event.Rlock_released { core; addr } ->
          (match Hashtbl.find_opt live core with
          | Some l when not l.l_elastic ->
              violation seq time
                "core %d released its read lock on addr %d mid-attempt in a \
                 non-elastic transaction (two-phase violation)"
                core addr
          | Some _ -> ()
          | None ->
              violation seq time
                "core %d released a read lock on addr %d outside any attempt"
                core addr);
          if not (List.mem core (readers addr)) then
            violation seq time
              "core %d released a read lock on addr %d it does not hold" core addr;
          drop_reader addr core
      | Event.Tx_publish { core; _ } ->
          (match Hashtbl.find_opt live core with
          | Some l ->
              l.l_published <- true;
              List.iter
                (fun addr ->
                  match Hashtbl.find_opt wlocks addr with
                  | Some w when w = core -> ()
                  | Some w ->
                      violation seq time
                        "core %d writing back addr %d write-locked by core %d"
                        core addr w
                  | None ->
                      violation seq time
                        "core %d writing back addr %d without holding its write \
                         lock"
                        core addr)
                l.l_writes
          | None -> ());
          (* Release messages go out at the publish point and can be
             serviced before [Tx_committed] is emitted — free the
             shadow locks now so re-grants of the released addresses
             are not misread as conflicts. *)
          drop_core_locks core
      | Event.Tx_committed { core; _ } ->
          drop_core_locks core;
          Hashtbl.remove live core;
          Hashtbl.replace last_outcome core `Committed
      | Event.Tx_aborted { core; _ } ->
          drop_core_locks core;
          Hashtbl.remove live core;
          Hashtbl.replace last_outcome core `Aborted
      | Event.Enemy_aborted { victim; addr; winner; _ } ->
          (match Hashtbl.find_opt live victim with
          | Some l when l.l_published ->
              violation seq time
                "enemy-abort CAS by core %d landed on core %d (addr %d) after \
                 its publish point — victim was already committed"
                winner victim addr
          | Some l -> l.l_doomed <- true
          | None -> (
              match Hashtbl.find_opt last_outcome victim with
              | Some `Committed ->
                  violation seq time
                    "enemy-abort CAS by core %d landed on core %d (addr %d) \
                     after its commit and before its next attempt — the \
                     status word reads Committing there, the CAS must fail"
                    winner victim addr
              | Some `Aborted | None ->
                  (* Benign in-flight revocation: the victim already
                     aborted on its own, its status word still reads
                     Pending until the next begin_attempt. *)
                  ()));
          (* The server revokes the victim's conflicting entry before
             granting the winner. *)
          drop_reader addr victim;
          (match Hashtbl.find_opt wlocks addr with
          | Some w when w = victim -> Hashtbl.remove wlocks addr
          | Some _ | None -> ())
      | Event.Lease_reclaimed { victim; addr; aborted; _ } ->
          (* Lease expiry revoked the victim's entry on [addr]. When the
             reclaim CAS landed ([aborted]) the victim's live attempt
             was killed exactly like an [Enemy_aborted] — same publish
             check, same dooming. A stale reclaim (the entry's attempt
             had already ended: the holder crashed between attempts, or
             its release was dropped) touches no live attempt and is
             never a violation. *)
          (if aborted then
             match Hashtbl.find_opt live victim with
             | Some l when l.l_published ->
                 violation seq time
                   "lease reclaim aborted core %d (addr %d) after its publish \
                    point — victim was already committed"
                   victim addr
             | Some l -> l.l_doomed <- true
             | None -> ());
          drop_reader addr victim;
          (match Hashtbl.find_opt wlocks addr with
          | Some w when w = victim -> Hashtbl.remove wlocks addr
          | Some _ | None -> ())
      | Event.Core_crashed _ ->
          (* Crash-stop releases nothing: the core's shadow locks stay
             held (a grant over them without an [Enemy_aborted] or
             [Lease_reclaimed] is still a violation) and its open
             attempt simply never ends — which breaks no rule here, so
             a crashed core's dangling attempt is not a 2PL violation.
             The status word still reads Pending, so the entries are
             not doomed-stale either: only a CAS event may revoke them. *)
          ()
      | Event.Epoch_bumped { epoch; _ } ->
          if epoch > !cur_epoch then cur_epoch := epoch
      | Event.Server_crashed _ | Event.Replica_applied _ | Event.Failover_done _
      | Event.Stale_epoch_rejected _ ->
          (* Failover bookkeeping: the replica apply and merge move
             entries between tables without changing any holder, so
             the shadow needs no action; honest stale rejections touch
             nothing by construction. *)
          ()
      | Event.Tx_commit_begin _ | Event.Host_write _ | Event.Lock_conflict _
      | Event.Req_sent _ | Event.Service _ | Event.Service_done _
      | Event.Barrier _ | Event.Msg_dropped _ | Event.Msg_duplicated _
      | Event.Req_resent _ ->
          ())
    events;
  { violations = List.rev !violations; n_grants = !n_grants }
