(* DS-Lock protocol checker: replay the event stream against a shadow
   lock table and validate the two-phase discipline.

   The shadow is driven by the trace's grant/revoke/end events, not by
   the (untraced, fire-and-forget) release messages, so it must free
   locks no later than the real table does — otherwise a legal grant
   racing a release still in flight would look like a conflict. The
   release point differs per outcome: an aborting attempt sends its
   releases and emits [Tx_aborted] in the same instant, so the abort
   event precedes every arrival; a committing attempt sends them at
   its publish point and only emits [Tx_committed] after the
   write-burst latency, during which releases can already land and
   the freed addresses be re-granted. The shadow therefore drops an
   attempt's locks at [Tx_publish] (after the write-back-under-lock
   check) or at its abort, whichever comes first. A shadow conflict
   at a grant then means two attempts genuinely held incompatible
   locks at once.

   The checker is single-pass and incremental by construction: all
   state is the shadow table itself, whose size is bounded by the
   locks concurrently held plus the address working set — never by
   the run length — so the streaming checker feeds it directly.

   Rules enforced, in replay (sequence) order:

   - a granted read on an address write-locked by another live
     attempt is a visible-read violation (the writer should have been
     revoked first, with an [Enemy_aborted] preceding the grant) —
     unless the holder is already doomed (an earlier enemy CAS landed
     on it, possibly at another address): its status word reads
     Aborted, so servers revoke its stale entries on sight without a
     second [Enemy_aborted]. The shadow mirrors that revocation;
   - a write-lock grant on an address read- or write-locked by
     another live attempt is an exclusivity violation, with the same
     stale-entry exemption for doomed holders;
   - [Rlock_released] from a non-elastic attempt breaks two-phase
     locking (only elastic windows may shrink before the end);
   - at [Tx_publish], every address of the attempt's write set must
     be write-locked by it (write-back under lock);
   - an [Enemy_aborted] CAS landing on an attempt past its publish
     point, or on a core whose last attempt committed and whose next
     has not started, hit a committed victim — impossible when the
     protocol is honest, because the status word reads Committing
     from the commit CAS until the next attempt begins. A CAS landing
     on a core whose last attempt *aborted* is the benign in-flight
     revocation race: the victim's status word still reads (attempt,
     Pending) until its next [begin_attempt] rewrites it;
   - write grants are stamped with the current failover epoch (the
     max seen across [Epoch_bumped] events). A conflicting write
     grant over a holder granted in an *earlier* epoch — neither
     revoked nor reclaimed in between — is reported as an
     epoch-boundary violation: the signature of a zombie primary
     granting a lock the promoted backup has also granted. An honest
     server refuses such requests ([Stale_epoch_rejected]), so this
     fires only when the epoch check is broken. *)

open Tm2c_core

type violation = { v_seq : int; v_time : float; v_message : string }

type live = {
  l_attempt : int;
  l_elastic : bool;
  mutable l_published : bool;
  mutable l_doomed : bool;
      (* an enemy-abort CAS landed on this attempt: its remaining lock
         entries are stale and servers revoke them without a further
         [Enemy_aborted] *)
  mutable l_writes : Types.addr list;  (* addresses stored so far *)
}

type report = {
  violations : violation list;
  n_grants : int;  (* read + write lock grants replayed *)
}

let ok r = r.violations = []

type t = {
  mutable violations : violation list;  (* reversed *)
  mutable n_grants : int;
  mutable seq : int;
  (* addr -> cores holding a read lock / the core holding the write
     lock. A core may hold both (read-to-write upgrade). *)
  rlocks : (Types.addr, Types.core_id list) Hashtbl.t;
  wlocks : (Types.addr, Types.core_id) Hashtbl.t;
  (* Failover epoch the current write lock on an address was granted
     in; [cur_epoch] follows the [Epoch_bumped] events. (Epochs are
     per partition in the protocol, but a write lock never moves
     between partitions, so the global max is a sound stamp.) *)
  wepoch : (Types.addr, int) Hashtbl.t;
  mutable cur_epoch : int;
  live : (Types.core_id, live) Hashtbl.t;
  (* How each core's most recent attempt ended — after a commit the
     status word reads Committing until the next begin, so an abort
     CAS landing then is a protocol violation; after an abort the
     word still reads Pending, so a landing CAS is the benign
     in-flight revocation race. *)
  last_outcome : (Types.core_id, [ `Committed | `Aborted ]) Hashtbl.t;
}

let create () =
  {
    violations = [];
    n_grants = 0;
    seq = 0;
    rlocks = Hashtbl.create 512;
    wlocks = Hashtbl.create 512;
    wepoch = Hashtbl.create 512;
    cur_epoch = 0;
    live = Hashtbl.create 64;
    last_outcome = Hashtbl.create 64;
  }

let violation t seq time fmt =
  Printf.ksprintf
    (fun m ->
      t.violations <- { v_seq = seq; v_time = time; v_message = m } :: t.violations)
    fmt

let readers t addr =
  match Hashtbl.find_opt t.rlocks addr with Some l -> l | None -> []

let doomed t core =
  match Hashtbl.find_opt t.live core with
  | Some l -> l.l_doomed
  | None -> false

let add_reader t addr core =
  if not (List.mem core (readers t addr)) then
    Hashtbl.replace t.rlocks addr (core :: readers t addr)

let drop_reader t addr core =
  match List.filter (fun c -> c <> core) (readers t addr) with
  | [] -> Hashtbl.remove t.rlocks addr
  | l -> Hashtbl.replace t.rlocks addr l

let drop_core_locks t core =
  let held_r =
    Tm2c_engine.Det.fold
      (fun a cs acc -> if List.mem core cs then a :: acc else acc)
      t.rlocks []
  in
  List.iter (fun a -> drop_reader t a core) held_r;
  let held_w =
    Tm2c_engine.Det.fold
      (fun a c acc -> if c = core then a :: acc else acc)
      t.wlocks []
  in
  List.iter (fun a -> Hashtbl.remove t.wlocks a) held_w

let feed t time ev =
  let seq = t.seq in
  t.seq <- seq + 1;
  match ev with
  | Event.Tx_start { core; attempt; elastic } ->
      (* Nested-start anomalies are History's department; here we
         just reset the core's shadow state. *)
      drop_core_locks t core;
      Hashtbl.replace t.live core
        {
          l_attempt = attempt;
          l_elastic = elastic;
          l_published = false;
          l_doomed = false;
          l_writes = [];
        }
  | Event.Tx_read { core; addr; granted; _ } ->
      if granted then begin
        t.n_grants <- t.n_grants + 1;
        (match Hashtbl.find_opt t.wlocks addr with
        | Some w when w <> core ->
            if doomed t w then
              (* Stale entry of a doomed writer: the server revoked
                 it on sight (status already Aborted). *)
              Hashtbl.remove t.wlocks addr
            else
              violation t seq time
                "read grant to core %d on addr %d while core %d holds the \
                 write lock"
                core addr w
        | Some _ | None -> ());
        add_reader t addr core
      end
  | Event.Tx_write { core; addr; _ } -> (
      match Hashtbl.find_opt t.live core with
      | Some l ->
          if not (List.mem addr l.l_writes) then l.l_writes <- addr :: l.l_writes
      | None -> ())
  | Event.Wlock_granted { core; addrs } ->
      List.iter
        (fun addr ->
          t.n_grants <- t.n_grants + 1;
          (match Hashtbl.find_opt t.wlocks addr with
          | Some w when w <> core && not (doomed t w) ->
              let granted_epoch =
                match Hashtbl.find_opt t.wepoch addr with
                | Some e -> e
                | None -> t.cur_epoch
              in
              if granted_epoch < t.cur_epoch then
                violation t seq time
                  "write-lock grant to core %d on addr %d crosses an epoch \
                   boundary: core %d was granted it in epoch %d (current \
                   epoch %d) and was never revoked or reclaimed — a \
                   stale-epoch server granted over the failover"
                  core addr w granted_epoch t.cur_epoch
              else
                violation t seq time
                  "write-lock grant to core %d on addr %d while core %d holds \
                   the write lock"
                  core addr w
          | Some _ | None -> ());
          List.iter
            (fun r ->
              if r <> core then
                if doomed t r then drop_reader t addr r
                else
                  violation t seq time
                    "write-lock grant to core %d on addr %d while core %d \
                     holds a read lock"
                    core addr r)
            (readers t addr);
          Hashtbl.replace t.wlocks addr core;
          Hashtbl.replace t.wepoch addr t.cur_epoch)
        addrs
  | Event.Rlock_released { core; addr } ->
      (match Hashtbl.find_opt t.live core with
      | Some l when not l.l_elastic ->
          violation t seq time
            "core %d released its read lock on addr %d mid-attempt in a \
             non-elastic transaction (two-phase violation)"
            core addr
      | Some _ -> ()
      | None ->
          violation t seq time
            "core %d released a read lock on addr %d outside any attempt" core
            addr);
      if not (List.mem core (readers t addr)) then
        violation t seq time
          "core %d released a read lock on addr %d it does not hold" core addr;
      drop_reader t addr core
  | Event.Tx_publish { core; _ } ->
      (match Hashtbl.find_opt t.live core with
      | Some l ->
          l.l_published <- true;
          List.iter
            (fun addr ->
              match Hashtbl.find_opt t.wlocks addr with
              | Some w when w = core -> ()
              | Some w ->
                  violation t seq time
                    "core %d writing back addr %d write-locked by core %d" core
                    addr w
              | None ->
                  violation t seq time
                    "core %d writing back addr %d without holding its write \
                     lock"
                    core addr)
            l.l_writes
      | None -> ());
      (* Release messages go out at the publish point and can be
         serviced before [Tx_committed] is emitted — free the
         shadow locks now so re-grants of the released addresses
         are not misread as conflicts. *)
      drop_core_locks t core
  | Event.Tx_committed { core; _ } ->
      drop_core_locks t core;
      Hashtbl.remove t.live core;
      Hashtbl.replace t.last_outcome core `Committed
  | Event.Tx_aborted { core; _ } ->
      drop_core_locks t core;
      Hashtbl.remove t.live core;
      Hashtbl.replace t.last_outcome core `Aborted
  | Event.Enemy_aborted { victim; addr; winner; _ } ->
      (match Hashtbl.find_opt t.live victim with
      | Some l when l.l_published ->
          violation t seq time
            "enemy-abort CAS by core %d landed on core %d (addr %d) after \
             its publish point — victim was already committed"
            winner victim addr
      | Some l -> l.l_doomed <- true
      | None -> (
          match Hashtbl.find_opt t.last_outcome victim with
          | Some `Committed ->
              violation t seq time
                "enemy-abort CAS by core %d landed on core %d (addr %d) \
                 after its commit and before its next attempt — the \
                 status word reads Committing there, the CAS must fail"
                winner victim addr
          | Some `Aborted | None ->
              (* Benign in-flight revocation: the victim already
                 aborted on its own, its status word still reads
                 Pending until the next begin_attempt. *)
              ()));
      (* The server revokes the victim's conflicting entry before
         granting the winner. *)
      drop_reader t addr victim;
      (match Hashtbl.find_opt t.wlocks addr with
      | Some w when w = victim -> Hashtbl.remove t.wlocks addr
      | Some _ | None -> ())
  | Event.Lease_reclaimed { victim; addr; aborted; _ } ->
      (* Lease expiry revoked the victim's entry on [addr]. When the
         reclaim CAS landed ([aborted]) the victim's live attempt
         was killed exactly like an [Enemy_aborted] — same publish
         check, same dooming. A stale reclaim (the entry's attempt
         had already ended: the holder crashed between attempts, or
         its release was dropped) touches no live attempt and is
         never a violation. *)
      (if aborted then
         match Hashtbl.find_opt t.live victim with
         | Some l when l.l_published ->
             violation t seq time
               "lease reclaim aborted core %d (addr %d) after its publish \
                point — victim was already committed"
               victim addr
         | Some l -> l.l_doomed <- true
         | None -> ());
      drop_reader t addr victim;
      (match Hashtbl.find_opt t.wlocks addr with
      | Some w when w = victim -> Hashtbl.remove t.wlocks addr
      | Some _ | None -> ())
  | Event.Core_crashed _ ->
      (* Crash-stop releases nothing: the core's shadow locks stay
         held (a grant over them without an [Enemy_aborted] or
         [Lease_reclaimed] is still a violation) and its open
         attempt simply never ends — which breaks no rule here, so
         a crashed core's dangling attempt is not a 2PL violation.
         The status word still reads Pending, so the entries are
         not doomed-stale either: only a CAS event may revoke them. *)
      ()
  | Event.Epoch_bumped { epoch; _ } ->
      if epoch > t.cur_epoch then t.cur_epoch <- epoch
  | Event.Server_crashed _ | Event.Replica_applied _ | Event.Failover_done _
  | Event.Stale_epoch_rejected _ ->
      (* Failover bookkeeping: the replica apply and merge move
         entries between tables without changing any holder, so
         the shadow needs no action; honest stale rejections touch
         nothing by construction. *)
      ()
  | Event.Tx_commit_begin _ | Event.Host_write _ | Event.Lock_conflict _
  | Event.Req_sent _ | Event.Service _ | Event.Service_done _ | Event.Barrier _
  | Event.Msg_dropped _ | Event.Msg_duplicated _ | Event.Req_resent _
  | Event.Req_admitted _ | Event.Req_shed _ | Event.Req_expired _
  | Event.Retry_budget_exhausted _ ->
      (* Admission happens strictly before Tx_start: shed and expired
         requests never touched the lock service. *)
      ()

let finish t = { violations = List.rev t.violations; n_grants = t.n_grants }

let analyze iter =
  let t = create () in
  iter (fun time ev -> feed t time ev);
  finish t
