(* Serializability oracle: a multi-version serialization-graph test
   over the committed transactions of a reconstructed history.

   Committed attempts are replayed in publish order against versioned
   shared memory — every write installs a new version stamped with the
   writer's publish sequence point. Each granted read is then resolved
   to the version it actually observed by matching the traced (seq,
   value) pair: normally the latest version published before the
   sample instant, otherwise an older (stale) or later version with
   the observed value. The resolution induces the usual MVSG edges

     WR  T' -> T    T read the version T' installed
     WW  T' -> T''  consecutive versions of one address
     RW  T  -> T''  T read a version that T'' overwrote next

   and the history is serializable iff this graph is acyclic. A cycle
   is reported with a minimal witness: the transactions on it and, for
   each hop, the edge kind, address, and inducing sequence point.

   Initial memory state is untraced (the harness populates structures
   with host-side pokes before the measured region), so every address
   starts from a lazily-bound initial version: the first read that
   can only be explained by the initial state binds its value. *)

open Tm2c_core

type edge_kind = Wr | Ww | Rw

let edge_kind_to_string = function Wr -> "WR" | Ww -> "WW" | Rw -> "RW"

type edge = {
  e_from : int;
  e_to : int;
  e_kind : edge_kind;
  e_addr : Types.addr;
  e_seq : int;
}

type cycle = { c_txns : int list; c_edges : edge list }

type report = {
  txns : History.attempt array;
  n_reads_checked : int;
  n_reads_skipped : int;
  n_initial_bound : int;
  corruption : string list;
  cycle : cycle option;
}

let ok r = r.corruption = [] && r.cycle = None

(* A version of one address. [v_writer = None] is the lazily-bound
   initial version; its [v_pub_seq] of -1 precedes every event. *)
type version = {
  v_writer : int option;
  mutable v_value : int option;
  v_pub_seq : int;
}

let pub_key (a : History.attempt) =
  match a.History.a_publish_seq with Some s -> s | None -> a.History.a_end_seq

exception Found_cycle of int list

(* Iterative three-color DFS; a gray successor closes a cycle, which
   we read back off the parent chain. The explicit stack is threaded
   through a tail-recursive driver so every pop is a total match. *)
let find_cycle n succ =
  let state = Array.make n 0 and parent = Array.make n (-1) in
  try
    for s = 0 to n - 1 do
      if state.(s) = 0 then begin
        state.(s) <- 1;
        let rec drive stack =
          match stack with
          | [] -> ()
          | (u, rest) :: below -> (
              match !rest with
              | [] ->
                  state.(u) <- 2;
                  drive below
              | v :: tl ->
                  rest := tl;
                  if state.(v) = 0 then begin
                    state.(v) <- 1;
                    parent.(v) <- u;
                    drive ((v, ref (succ v)) :: stack)
                  end
                  else begin
                    if state.(v) = 1 then begin
                      let rec walk acc x =
                        if x = v then v :: acc else walk (x :: acc) parent.(x)
                      in
                      raise (Found_cycle (walk [] u))
                    end;
                    drive stack
                  end)
        in
        drive [ (s, ref (succ s)) ]
      end
    done;
    None
  with Found_cycle c -> Some c

let analyze (h : History.t) =
  let txns = Array.of_list (History.committed_attempts h) in
  Array.sort (fun a b -> compare (pub_key a) (pub_key b)) txns;
  let n = Array.length txns in
  (* Versioned memory: oldest-first version array per address, index 0
     always the initial version. Committed write sets and host-side
     stores ([Event.Host_write]: setup, private-node initialization —
     external versions with no graph node) interleave by their
     sequence points. *)
  let versions : (Types.addr, version array) Hashtbl.t = Hashtbl.create 256 in
  let bottom () = { v_writer = None; v_value = None; v_pub_seq = -1 } in
  let pending : (Types.addr, version list) Hashtbl.t = Hashtbl.create 256 in
  let push addr v =
    let prev =
      match Hashtbl.find_opt pending addr with Some vs -> vs | None -> []
    in
    Hashtbl.replace pending addr (v :: prev)
  in
  Array.iteri
    (fun i a ->
      List.iter
        (fun (addr, value) ->
          push addr
            { v_writer = Some i; v_value = Some value; v_pub_seq = pub_key a })
        a.History.a_writes)
    txns;
  List.iter
    (fun (seq, addr, value) ->
      push addr { v_writer = None; v_value = Some value; v_pub_seq = seq })
    h.History.host_writes;
  Tm2c_engine.Det.iter
    (fun addr vs ->
      let sorted =
        List.sort (fun a b -> compare a.v_pub_seq b.v_pub_seq) (bottom () :: vs)
      in
      Hashtbl.replace versions addr (Array.of_list sorted))
    pending;
  let get_versions addr =
    match Hashtbl.find_opt versions addr with
    | Some vs -> vs
    | None ->
        let vs = [| bottom () |] in
        Hashtbl.replace versions addr vs;
        vs
  in
  (* Edge set keyed on (from, to); the first inducing observation is
     kept as the witness detail. *)
  let edges : (int * int, edge) Hashtbl.t = Hashtbl.create 1024 in
  let add_edge e_from e_to e_kind e_addr e_seq =
    if e_from <> e_to && not (Hashtbl.mem edges (e_from, e_to)) then
      Hashtbl.add edges (e_from, e_to) { e_from; e_to; e_kind; e_addr; e_seq }
  in
  (* The next transactional version at or after index [j] — external
     (host-write) versions have no graph node and are skipped. *)
  let next_writer vs j =
    let rec go j =
      if j >= Array.length vs then None
      else match vs.(j).v_writer with Some w -> Some (w, j) | None -> go (j + 1)
    in
    go j
  in
  (* WW edges: the installed version order per address, linking each
     transactional writer to the next one. Sorted traversal keeps the
     first-witness edge details stable across runs. *)
  Tm2c_engine.Det.iter
    (fun addr vs ->
      for j = 0 to Array.length vs - 2 do
        match vs.(j).v_writer with
        | Some w -> (
            match next_writer vs (j + 1) with
            | Some (w', j') -> add_edge w w' Ww addr vs.(j').v_pub_seq
            | None -> ())
        | None -> ()
      done)
    versions;
  let n_reads_checked = ref 0 in
  let n_reads_skipped = ref 0 in
  let n_initial_bound = ref 0 in
  let corruption = ref [] in
  let bind v value =
    v.v_value <- Some value;
    incr n_initial_bound
  in
  (* Resolve one read to the version index it observed, or None when
     the value matches no version (corruption). Preference order:
     the timing-predicted version, then the nearest stale version,
     then a future version, then binding the initial version. *)
  let resolve vs (r : History.read) =
    let n = Array.length vs in
    let pred = ref 0 in
    for j = 0 to n - 1 do
      if vs.(j).v_pub_seq < r.History.r_seq then pred := j
    done;
    let matches j =
      match vs.(j).v_value with Some v -> v = r.History.r_value | None -> false
    in
    if matches !pred then Some !pred
    else if vs.(!pred).v_value = None then begin
      bind vs.(!pred) r.History.r_value;
      Some !pred
    end
    else begin
      let found = ref (-1) in
      for j = 0 to !pred - 1 do
        if matches j then found := j
      done;
      if !found >= 0 then Some !found
      else begin
        for j = n - 1 downto !pred + 1 do
          if matches j then found := j
        done;
        if !found >= 0 then Some !found
        else if vs.(0).v_value = None then begin
          bind vs.(0) r.History.r_value;
          Some 0
        end
        else None
      end
    end
  in
  Array.iteri
    (fun i a ->
      if a.History.a_elastic then
        (* Elastic attempts intentionally run a relaxed model (window
           validation instead of full read locking): their partial
           read traces are excluded from the strict oracle. *)
        n_reads_skipped := !n_reads_skipped + List.length a.History.a_reads
      else
        List.iter
          (fun (r : History.read) ->
            incr n_reads_checked;
            let vs = get_versions r.History.r_addr in
            match resolve vs r with
            | None ->
                corruption :=
                  Printf.sprintf
                    "core %d attempt %d read addr=%d value=%d at seq %d: value \
                     matches no installed version"
                    a.History.a_core a.History.a_number r.History.r_addr
                    r.History.r_value r.History.r_seq
                  :: !corruption
            | Some j -> (
                (match vs.(j).v_writer with
                | Some w -> add_edge w i Wr r.History.r_addr r.History.r_seq
                | None -> ());
                match next_writer vs (j + 1) with
                | Some (w, _) -> add_edge i w Rw r.History.r_addr r.History.r_seq
                | None -> ()))
          a.History.a_reads)
    txns;
  let succs = Array.make (max n 1) [] in
  Tm2c_engine.Det.iter (fun (f, t) _ -> succs.(f) <- t :: succs.(f)) edges;
  (* Deterministic traversal order for a stable witness. *)
  Array.iteri (fun i l -> succs.(i) <- List.sort_uniq compare l) succs;
  let cycle =
    match find_cycle n (fun u -> succs.(u)) with
    | None -> None
    | Some nodes ->
        let hops =
          match nodes with
          | [] -> []
          | first :: _ ->
              let rec pair = function
                | [ last ] -> [ (last, first) ]
                | x :: (y :: _ as rest) -> (x, y) :: pair rest
                | [] -> []
              in
              pair nodes
        in
        let c_edges = List.map (fun k -> Hashtbl.find edges k) hops in
        Some { c_txns = nodes; c_edges }
  in
  {
    txns;
    n_reads_checked = !n_reads_checked;
    n_reads_skipped = !n_reads_skipped;
    n_initial_bound = !n_initial_bound;
    corruption = List.rev !corruption;
    cycle;
  }
