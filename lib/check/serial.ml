(* Serializability + opacity oracle: a multi-version
   serialization-graph test over the serialized transactions of a
   reconstructed history, plus a snapshot-consistency check over the
   attempts that never serialized.

   Serialized attempts — committed ones, plus attempts frozen by the
   run horizon after their publish point (their write-back is already
   visible and their status word can no longer be CASed, so they are
   committed in all but the final event) — are replayed in publish
   order against versioned shared memory: every write installs a new
   version stamped with the writer's publish sequence point. Each
   granted read is then resolved to the version it actually observed
   by matching the traced (seq, value) pair: normally the latest
   version published before the sample instant, otherwise an older
   (stale) or later version with the observed value. The resolution
   induces the usual MVSG edges

     WR  T' -> T    T read the version T' installed
     WW  T' -> T''  consecutive versions of one address
     RW  T  -> T''  T read a version that T'' overwrote next

   and the history is serializable iff this graph is acyclic. A cycle
   is reported with a minimal witness: the transactions on it and, for
   each hop, the edge kind, address, and inducing sequence point.

   Opacity goes further: attempts that aborted (or were cut off by the
   horizon before publishing) must also have observed a consistent
   snapshot — TM2C's visible-read protocol promises that even doomed
   transactions never see a state no serial execution could reach.
   Each such attempt's read prefix is checked against the installed
   version timeline: a read of (addr, value) at sequence point s is
   explainable by any snapshot instant inside a version interval
   [pub, next_pub) whose value matches and whose publish precedes s.
   The attempt is opaque iff the intersection of its reads'
   explainable-instant sets is nonempty; when it first becomes empty
   the two irreconcilable reads (and the versions they pin) form a
   minimal witness.

   Initial memory state is untraced (the harness populates structures
   with host-side pokes before the measured region), so every address
   starts from a lazily-bound initial version: the first read that
   can only be explained by the initial state binds its value. An
   unbound initial version matches any observed value — the oracle
   never invents a violation out of unobservable setup state. *)

open Tm2c_core

type edge_kind = Wr | Ww | Rw

let edge_kind_to_string = function Wr -> "WR" | Ww -> "WW" | Rw -> "RW"

type edge = {
  e_from : int;
  e_to : int;
  e_kind : edge_kind;
  e_addr : Types.addr;
  e_seq : int;
}

type cycle = { c_txns : int list; c_edges : edge list }

type inconsistent_read = {
  ir_core : Types.core_id;
  ir_attempt : int;
  ir_start_seq : int;
  ir_end_seq : int;
  ir_addr1 : Types.addr;
  ir_value1 : int;
  ir_seq1 : int;
  ir_pub1 : int;
  ir_addr2 : Types.addr;
  ir_value2 : int;
  ir_seq2 : int;
  ir_pub2 : int;
}

type report = {
  txns : History.attempt array;
  n_reads_checked : int;
  n_reads_skipped : int;
  n_initial_bound : int;
  corruption : string list;
  cycle : cycle option;
  opacity : inconsistent_read list;
  n_opacity_checked : int;
}

let ok r = r.corruption = [] && r.cycle = None && r.opacity = []

(* A version of one address. [v_writer = None] is the lazily-bound
   initial version or an external host write; its [v_pub_seq] of -1
   (initial) precedes every event. *)
type version = {
  v_writer : int option;
  mutable v_value : int option;
  v_pub_seq : int;
}

let pub_key (a : History.attempt) =
  match a.History.a_publish_seq with Some s -> s | None -> a.History.a_end_seq

(* An attempt whose writes are visible: committed, or cut off by the
   horizon after its publish point (write-back done, status word
   un-CASable — committed in all but the final event). *)
let serialized (a : History.attempt) =
  match a.History.a_outcome with
  | History.Committed _ -> true
  | History.Unfinished -> a.History.a_publish_seq <> None
  | History.Aborted _ -> false

exception Found_cycle of int list

(* Iterative three-color DFS; a gray successor closes a cycle, which
   we read back off the parent chain. The explicit stack is threaded
   through a tail-recursive driver so every pop is a total match. *)
let find_cycle n succ =
  let state = Array.make n 0 and parent = Array.make n (-1) in
  try
    for s = 0 to n - 1 do
      if state.(s) = 0 then begin
        state.(s) <- 1;
        let rec drive stack =
          match stack with
          | [] -> ()
          | (u, rest) :: below -> (
              match !rest with
              | [] ->
                  state.(u) <- 2;
                  drive below
              | v :: tl ->
                  rest := tl;
                  if state.(v) = 0 then begin
                    state.(v) <- 1;
                    parent.(v) <- u;
                    drive ((v, ref (succ v)) :: stack)
                  end
                  else begin
                    if state.(v) = 1 then begin
                      let rec walk acc x =
                        if x = v then v :: acc else walk (x :: acc) parent.(x)
                      in
                      raise (Found_cycle (walk [] u))
                    end;
                    drive stack
                  end)
        in
        drive [ (s, ref (succ s)) ]
      end
    done;
    None
  with Found_cycle c -> Some c

(* --- Opacity: snapshot-interval machinery, shared with Stream. ---

   The snapshot line is the sequence-number axis. A read's
   explainable set is a union of half-open intervals; the sets are
   kept as sorted disjoint-or-adjacent lists and intersected by a
   linear sweep. *)

let intersect_intervals u1 u2 =
  let rec go acc l1 l2 =
    match (l1, l2) with
    | [], _ | _, [] -> List.rev acc
    | (lo1, hi1) :: t1, (lo2, hi2) :: t2 ->
        let lo = max lo1 lo2 and hi = min hi1 hi2 in
        let acc = if lo < hi then (lo, hi) :: acc else acc in
        if hi1 <= hi2 then go acc t1 l2 else go acc l1 t2
  in
  go [] u1 u2

(* Intervals on which [r] is explainable, given the address's version
   timeline as a pub-sorted [(pub_seq, value option)] array (value
   [None] = unbound initial state, which matches anything). Only
   versions published before the sample instant qualify — a read
   cannot observe the future — but an interval may extend past it. *)
let read_intervals (view : (int * int option) array) (r : History.read) =
  let n = Array.length view in
  let out = ref [] in
  for j = n - 1 downto 0 do
    let pub, value = view.(j) in
    if
      pub <= r.History.r_seq
      && (match value with None -> true | Some v -> v = r.History.r_value)
    then
      let hi = if j + 1 < n then fst view.(j + 1) else max_int in
      if pub < hi then out := (pub, hi) :: !out
  done;
  !out

(* The version the read most plausibly observed (latest matching
   publish before the sample), for witness detail; -1 when nothing
   matches. *)
let timing_pub (view : (int * int option) array) (r : History.read) =
  let best = ref (-1) in
  Array.iter
    (fun (pub, value) ->
      if
        pub <= r.History.r_seq && pub > !best
        && (match value with None -> true | Some v -> v = r.History.r_value)
      then best := pub)
    view;
  !best

(* Check one non-serialized attempt's read prefix for snapshot
   consistency. [versions_of addr] returns the pub-sorted version
   timeline of [addr]. The snapshot instant is constrained to the
   attempt's lifetime (>= its start sequence): a version published
   earlier still explains a read as long as it is live at the start,
   but the window before the attempt existed — in particular the
   unbound initial state before the host-side setup stores — cannot.
   Returns the minimal witness on failure: the first read whose
   explainable set empties the running intersection, paired with the
   earliest previous read it is pairwise irreconcilable with. *)
let opacity_check ~versions_of (a : History.attempt) =
  let witness (r1 : History.read) (r2 : History.read) =
    Some
      {
        ir_core = a.History.a_core;
        ir_attempt = a.History.a_number;
        ir_start_seq = a.History.a_start_seq;
        ir_end_seq = a.History.a_end_seq;
        ir_addr1 = r1.History.r_addr;
        ir_value1 = r1.History.r_value;
        ir_seq1 = r1.History.r_seq;
        ir_pub1 = timing_pub (versions_of r1.History.r_addr) r1;
        ir_addr2 = r2.History.r_addr;
        ir_value2 = r2.History.r_value;
        ir_seq2 = r2.History.r_seq;
        ir_pub2 = timing_pub (versions_of r2.History.r_addr) r2;
      }
  in
  let life = [ (a.History.a_start_seq, max_int) ] in
  let explainable (r : History.read) =
    intersect_intervals life (read_intervals (versions_of r.History.r_addr) r)
  in
  let rec go feasible seen = function
    | [] -> None
    | (r : History.read) :: rest -> (
        let u = explainable r in
        match intersect_intervals feasible u with
        | _ :: _ as f -> go f (r :: seen) rest
        | [] -> (
            if u = [] then witness r r
            else
              (* Minimal two-read witness: the earliest previous read
                 pairwise irreconcilable with this one. When the
                 emptiness only arises from three or more reads
                 jointly (interval unions are not Helly), fall back to
                 the prefix's first read. *)
              let prev = List.rev seen in
              match
                List.find_opt
                  (fun (p : History.read) -> intersect_intervals (explainable p) u = [])
                  prev
              with
              | Some p -> witness p r
              | None -> (
                  match prev with [] -> witness r r | p :: _ -> witness p r)))
  in
  go life [] a.History.a_reads

let analyze ?(opacity = true) (h : History.t) =
  let txns = Array.of_list (List.filter serialized h.History.attempts) in
  Array.sort (fun a b -> compare (pub_key a) (pub_key b)) txns;
  let n = Array.length txns in
  (* Versioned memory: oldest-first version array per address, index 0
     always the initial version. Serialized write sets and host-side
     stores ([Event.Host_write]: setup, private-node initialization —
     external versions with no graph node) interleave by their
     sequence points. *)
  let versions : (Types.addr, version array) Hashtbl.t = Hashtbl.create 256 in
  let bottom () = { v_writer = None; v_value = None; v_pub_seq = -1 } in
  let pending : (Types.addr, version list) Hashtbl.t = Hashtbl.create 256 in
  let push addr v =
    let prev =
      match Hashtbl.find_opt pending addr with Some vs -> vs | None -> []
    in
    Hashtbl.replace pending addr (v :: prev)
  in
  Array.iteri
    (fun i a ->
      List.iter
        (fun (addr, value) ->
          push addr
            { v_writer = Some i; v_value = Some value; v_pub_seq = pub_key a })
        a.History.a_writes)
    txns;
  List.iter
    (fun (seq, addr, value) ->
      push addr { v_writer = None; v_value = Some value; v_pub_seq = seq })
    h.History.host_writes;
  Tm2c_engine.Det.iter
    (fun addr vs ->
      let sorted =
        List.sort (fun a b -> compare a.v_pub_seq b.v_pub_seq) (bottom () :: vs)
      in
      Hashtbl.replace versions addr (Array.of_list sorted))
    pending;
  let get_versions addr =
    match Hashtbl.find_opt versions addr with
    | Some vs -> vs
    | None ->
        let vs = [| bottom () |] in
        Hashtbl.replace versions addr vs;
        vs
  in
  (* Edge set keyed on (from, to); the first inducing observation is
     kept as the witness detail. *)
  let edges : (int * int, edge) Hashtbl.t = Hashtbl.create 1024 in
  let add_edge e_from e_to e_kind e_addr e_seq =
    if e_from <> e_to && not (Hashtbl.mem edges (e_from, e_to)) then
      Hashtbl.add edges (e_from, e_to) { e_from; e_to; e_kind; e_addr; e_seq }
  in
  (* The next transactional version at or after index [j] — external
     (host-write) versions have no graph node and are skipped. *)
  let next_writer vs j =
    let rec go j =
      if j >= Array.length vs then None
      else match vs.(j).v_writer with Some w -> Some (w, j) | None -> go (j + 1)
    in
    go j
  in
  (* WW edges: the installed version order per address, linking each
     transactional writer to the next one. Sorted traversal keeps the
     first-witness edge details stable across runs. *)
  Tm2c_engine.Det.iter
    (fun addr vs ->
      for j = 0 to Array.length vs - 2 do
        match vs.(j).v_writer with
        | Some w -> (
            match next_writer vs (j + 1) with
            | Some (w', j') -> add_edge w w' Ww addr vs.(j').v_pub_seq
            | None -> ())
        | None -> ()
      done)
    versions;
  let n_reads_checked = ref 0 in
  let n_reads_skipped = ref 0 in
  let n_initial_bound = ref 0 in
  let corruption = ref [] in
  let bind v value =
    v.v_value <- Some value;
    incr n_initial_bound
  in
  (* Resolve one read to the version index it observed, or None when
     the value matches no version (corruption). Preference order:
     the timing-predicted version, then the nearest stale version,
     then a future version, then binding the initial version. *)
  let resolve vs (r : History.read) =
    let n = Array.length vs in
    let pred = ref 0 in
    for j = 0 to n - 1 do
      if vs.(j).v_pub_seq < r.History.r_seq then pred := j
    done;
    let matches j =
      match vs.(j).v_value with Some v -> v = r.History.r_value | None -> false
    in
    if matches !pred then Some !pred
    else if vs.(!pred).v_value = None then begin
      bind vs.(!pred) r.History.r_value;
      Some !pred
    end
    else begin
      let found = ref (-1) in
      for j = 0 to !pred - 1 do
        if matches j then found := j
      done;
      if !found >= 0 then Some !found
      else begin
        for j = n - 1 downto !pred + 1 do
          if matches j then found := j
        done;
        if !found >= 0 then Some !found
        else if vs.(0).v_value = None then begin
          bind vs.(0) r.History.r_value;
          Some 0
        end
        else None
      end
    end
  in
  Array.iteri
    (fun i a ->
      if a.History.a_elastic then
        (* Elastic attempts intentionally run a relaxed model (window
           validation instead of full read locking): their partial
           read traces are excluded from the strict oracle. *)
        n_reads_skipped := !n_reads_skipped + List.length a.History.a_reads
      else
        List.iter
          (fun (r : History.read) ->
            incr n_reads_checked;
            let vs = get_versions r.History.r_addr in
            match resolve vs r with
            | None ->
                corruption :=
                  Printf.sprintf
                    "core %d attempt %d read addr=%d value=%d at seq %d: value \
                     matches no installed version"
                    a.History.a_core a.History.a_number r.History.r_addr
                    r.History.r_value r.History.r_seq
                  :: !corruption
            | Some j -> (
                (match vs.(j).v_writer with
                | Some w -> add_edge w i Wr r.History.r_addr r.History.r_seq
                | None -> ());
                match next_writer vs (j + 1) with
                | Some (w, _) -> add_edge i w Rw r.History.r_addr r.History.r_seq
                | None -> ()))
          a.History.a_reads)
    txns;
  (* Opacity pass, after replay so lazily-bound initial versions carry
     their concrete values: every attempt that never serialized (abort
     or pre-publish horizon cut) must still have read one consistent
     snapshot. Elastic attempts are exempt — early read-lock release
     is precisely a license to span snapshots, validated by their own
     windowed rule instead. *)
  let opacity_violations = ref [] in
  let n_opacity_checked = ref 0 in
  if opacity then begin
    let view_cache : (Types.addr, (int * int option) array) Hashtbl.t =
      Hashtbl.create 256
    in
    let versions_of addr =
      match Hashtbl.find_opt view_cache addr with
      | Some v -> v
      | None ->
          let v =
            Array.map (fun v -> (v.v_pub_seq, v.v_value)) (get_versions addr)
          in
          Hashtbl.replace view_cache addr v;
          v
    in
    List.iter
      (fun (a : History.attempt) ->
        if (not (serialized a)) && not a.History.a_elastic then begin
          incr n_opacity_checked;
          match opacity_check ~versions_of a with
          | Some ir -> opacity_violations := ir :: !opacity_violations
          | None -> ()
        end)
      h.History.attempts
  end;
  let succs = Array.make (max n 1) [] in
  Tm2c_engine.Det.iter (fun (f, t) _ -> succs.(f) <- t :: succs.(f)) edges;
  (* Deterministic traversal order for a stable witness. *)
  Array.iteri (fun i l -> succs.(i) <- List.sort_uniq compare l) succs;
  let cycle =
    match find_cycle n (fun u -> succs.(u)) with
    | None -> None
    | Some nodes ->
        let hops =
          match nodes with
          | [] -> []
          | first :: _ ->
              let rec pair = function
                | [ last ] -> [ (last, first) ]
                | x :: (y :: _ as rest) -> (x, y) :: pair rest
                | [] -> []
              in
              pair nodes
        in
        let c_edges = List.map (fun k -> Hashtbl.find edges k) hops in
        Some { c_txns = nodes; c_edges }
  in
  {
    txns;
    n_reads_checked = !n_reads_checked;
    n_reads_skipped = !n_reads_skipped;
    n_initial_bound = !n_initial_bound;
    corruption = List.rev !corruption;
    cycle;
    opacity = List.rev !opacity_violations;
    n_opacity_checked = !n_opacity_checked;
  }
