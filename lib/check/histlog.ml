(* Machine-readable history log: one event per line,

     <timestamp> <TAG> <fields...>

   space-separated, timestamps and durations in OCaml hex-float
   notation ("%h") so virtual times round-trip exactly — the checkers
   compare replayed instants for equality and a decimal detour would
   corrupt ties. The format is append-only and versioned by the
   header line; tm2c-check refuses logs with an unknown header.

   Writing and reading are both streaming: the writer appends one
   line per event as it arrives (fed straight from the trace sink)
   and stamps an "# events N" footer on close, which readers verify
   when present, so a truncated log is detected instead of silently
   checked short. Reading iterates line by line — tm2c-check never
   needs the whole log in memory. *)

open Tm2c_core
open Types

(* v5 added the admission records (ADM SHD EXP RBX); v4 added the
   streaming event-count footer (a reader-side truncation check; the
   record grammar is unchanged); v3 added the failover records (SCR
   EPB RPA FOD SER); v2 added the fault/hardening records (DRP DUP RSN
   CRS LSR). All older versions are still accepted on read. *)
let header = "# tm2c-history v5"

let header_v4 = "# tm2c-history v4"

let header_v3 = "# tm2c-history v3"

let header_v2 = "# tm2c-history v2"

let header_v1 = "# tm2c-history v1"

let footer_prefix = "# events "

let bool01 b = if b then "1" else "0"

let conflict_of_string = function
  | "RAW" -> Raw
  | "WAW" -> Waw
  | "WAR" -> War
  | s -> failwith (Printf.sprintf "unknown conflict label %S" s)

let conflict_opt_of_string = function
  | "STATUS" -> None
  | s -> Some (conflict_of_string s)

let write_event oc time ev =
  let p fmt = Printf.fprintf oc fmt in
  p "%h " time;
  (match ev with
  | Event.Tx_start { core; attempt; elastic } ->
      p "TXS %d %d %s" core attempt (bool01 elastic)
  | Event.Tx_read { core; addr; granted; value } ->
      p "TXR %d %d %s %d" core addr (bool01 granted) value
  | Event.Tx_write { core; addr; value } -> p "TXW %d %d %d" core addr value
  | Event.Tx_commit_begin { core; attempt; n_writes } ->
      p "CB %d %d %d" core attempt n_writes
  | Event.Host_write { addr; value } -> p "HW %d %d" addr value
  | Event.Rlock_released { core; addr } -> p "RLR %d %d" core addr
  | Event.Wlock_granted { core; addrs } ->
      p "WLK %d %s" core (String.concat "," (List.map string_of_int addrs))
  | Event.Tx_publish { core; attempt; n_writes } ->
      p "PUB %d %d %d" core attempt n_writes
  | Event.Tx_committed { core; attempt; duration_ns } ->
      p "COM %d %d %h" core attempt duration_ns
  | Event.Tx_aborted { core; attempt; conflict } ->
      p "ABO %d %d %s" core attempt (Event.conflict_opt_to_string conflict)
  | Event.Lock_conflict { server; requester; enemy; addr; conflict; requester_wins }
    ->
      p "CFL %d %d %d %d %s %s" server requester enemy addr
        (conflict_to_string conflict)
        (bool01 requester_wins)
  | Event.Enemy_aborted { server; winner; victim; addr; conflict } ->
      p "ENA %d %d %d %d %s" server winner victim addr (conflict_to_string conflict)
  | Event.Req_sent { core; server; req_id; kind; n_addrs } ->
      p "REQ %d %d %d %s %d" core server req_id kind n_addrs
  | Event.Service { server; requester; req_id; kind; queue_depth; occupancy } ->
      p "SRV %d %d %d %s %d %d" server requester req_id kind queue_depth occupancy
  | Event.Service_done { server; requester; req_id } ->
      p "SRD %d %d %d" server requester req_id
  | Event.Barrier { core } -> p "BAR %d" core
  | Event.Msg_dropped { src; dst } -> p "DRP %d %d" src dst
  | Event.Msg_duplicated { src; dst } -> p "DUP %d %d" src dst
  | Event.Req_resent { core; server; req_id; nth } ->
      p "RSN %d %d %d %d" core server req_id nth
  | Event.Core_crashed { core; attempt } -> p "CRS %d %d" core attempt
  | Event.Lease_reclaimed { server; victim; addr; aborted } ->
      p "LSR %d %d %d %s" server victim addr (bool01 aborted)
  | Event.Server_crashed { server } -> p "SCR %d" server
  | Event.Epoch_bumped { part; epoch; by } -> p "EPB %d %d %d" part epoch by
  | Event.Replica_applied { server; src; part; n_addrs } ->
      p "RPA %d %d %d %d" server src part n_addrs
  | Event.Failover_done { server; part; epoch; merged } ->
      p "FOD %d %d %d %d" server part epoch merged
  | Event.Stale_epoch_rejected { server; core; req_epoch; cur_epoch } ->
      p "SER %d %d %d %d" server core req_epoch cur_epoch
  | Event.Req_admitted { core; tenant; queue_depth } ->
      p "ADM %d %d %d" core tenant queue_depth
  | Event.Req_shed { core; tenant; reason; retry_after_ns } ->
      p "SHD %d %d %s %h" core tenant (shed_reason_to_string reason) retry_after_ns
  | Event.Req_expired { core; tenant; waited_ns } ->
      p "EXP %d %d %h" core tenant waited_ns
  | Event.Retry_budget_exhausted { core; tenant; retries } ->
      p "RBX %d %d %d" core tenant retries);
  p "\n"

(* Streaming writer: header up front, one line per event, count
   footer on close. *)
type writer = { w_oc : out_channel; mutable w_count : int; w_owns : bool }

let writer_of_channel oc =
  Printf.fprintf oc "%s\n" header;
  { w_oc = oc; w_count = 0; w_owns = false }

let create_writer path =
  let oc = open_out path in
  Printf.fprintf oc "%s\n" header;
  { w_oc = oc; w_count = 0; w_owns = true }

let put w time ev =
  write_event w.w_oc time ev;
  w.w_count <- w.w_count + 1

let written w = w.w_count

let close_writer w =
  Printf.fprintf w.w_oc "%s%d\n" footer_prefix w.w_count;
  if w.w_owns then close_out w.w_oc else flush w.w_oc

let write oc iter =
  let w = writer_of_channel oc in
  iter (fun time ev -> put w time ev);
  close_writer w

let save path iter =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc iter)

let parse_error lineno msg =
  failwith (Printf.sprintf "history log line %d: %s" lineno msg)

let parse_line lineno line =
  let int s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> parse_error lineno (Printf.sprintf "bad integer %S" s)
  in
  let flag s =
    match s with
    | "0" -> false
    | "1" -> true
    | _ -> parse_error lineno (Printf.sprintf "bad flag %S" s)
  in
  match String.split_on_char ' ' line with
  | time_s :: tag :: fields -> (
      let time =
        match float_of_string_opt time_s with
        | Some t -> t
        | None -> parse_error lineno (Printf.sprintf "bad timestamp %S" time_s)
      in
      let ev =
        match (tag, fields) with
        | "TXS", [ core; attempt; elastic ] ->
            Event.Tx_start
              { core = int core; attempt = int attempt; elastic = flag elastic }
        | "TXR", [ core; addr; granted; value ] ->
            Event.Tx_read
              { core = int core; addr = int addr; granted = flag granted; value = int value }
        | "TXW", [ core; addr; value ] ->
            Event.Tx_write { core = int core; addr = int addr; value = int value }
        | "CB", [ core; attempt; n_writes ] ->
            Event.Tx_commit_begin
              { core = int core; attempt = int attempt; n_writes = int n_writes }
        | "HW", [ addr; value ] ->
            Event.Host_write { addr = int addr; value = int value }
        | "RLR", [ core; addr ] ->
            Event.Rlock_released { core = int core; addr = int addr }
        | "WLK", [ core; addrs ] ->
            Event.Wlock_granted
              {
                core = int core;
                addrs =
                  (if addrs = "" then []
                   else List.map int (String.split_on_char ',' addrs));
              }
        | "PUB", [ core; attempt; n_writes ] ->
            Event.Tx_publish
              { core = int core; attempt = int attempt; n_writes = int n_writes }
        | "COM", [ core; attempt; dur ] ->
            let duration_ns =
              match float_of_string_opt dur with
              | Some d -> d
              | None -> parse_error lineno (Printf.sprintf "bad duration %S" dur)
            in
            Event.Tx_committed { core = int core; attempt = int attempt; duration_ns }
        | "ABO", [ core; attempt; conflict ] ->
            Event.Tx_aborted
              {
                core = int core;
                attempt = int attempt;
                conflict = conflict_opt_of_string conflict;
              }
        | "CFL", [ server; requester; enemy; addr; conflict; wins ] ->
            Event.Lock_conflict
              {
                server = int server;
                requester = int requester;
                enemy = int enemy;
                addr = int addr;
                conflict = conflict_of_string conflict;
                requester_wins = flag wins;
              }
        | "ENA", [ server; winner; victim; addr; conflict ] ->
            Event.Enemy_aborted
              {
                server = int server;
                winner = int winner;
                victim = int victim;
                addr = int addr;
                conflict = conflict_of_string conflict;
              }
        | "REQ", [ core; server; req_id; kind; n_addrs ] ->
            Event.Req_sent
              {
                core = int core;
                server = int server;
                req_id = int req_id;
                kind;
                n_addrs = int n_addrs;
              }
        | "SRV", [ server; requester; req_id; kind; queue_depth; occupancy ] ->
            Event.Service
              {
                server = int server;
                requester = int requester;
                req_id = int req_id;
                kind;
                queue_depth = int queue_depth;
                occupancy = int occupancy;
              }
        | "SRD", [ server; requester; req_id ] ->
            Event.Service_done
              { server = int server; requester = int requester; req_id = int req_id }
        | "BAR", [ core ] -> Event.Barrier { core = int core }
        | "DRP", [ src; dst ] -> Event.Msg_dropped { src = int src; dst = int dst }
        | "DUP", [ src; dst ] ->
            Event.Msg_duplicated { src = int src; dst = int dst }
        | "RSN", [ core; server; req_id; nth ] ->
            Event.Req_resent
              {
                core = int core;
                server = int server;
                req_id = int req_id;
                nth = int nth;
              }
        | "CRS", [ core; attempt ] ->
            Event.Core_crashed { core = int core; attempt = int attempt }
        | "LSR", [ server; victim; addr; aborted ] ->
            Event.Lease_reclaimed
              {
                server = int server;
                victim = int victim;
                addr = int addr;
                aborted = flag aborted;
              }
        | "SCR", [ server ] -> Event.Server_crashed { server = int server }
        | "EPB", [ part; epoch; by ] ->
            Event.Epoch_bumped { part = int part; epoch = int epoch; by = int by }
        | "RPA", [ server; src; part; n_addrs ] ->
            Event.Replica_applied
              {
                server = int server;
                src = int src;
                part = int part;
                n_addrs = int n_addrs;
              }
        | "FOD", [ server; part; epoch; merged ] ->
            Event.Failover_done
              {
                server = int server;
                part = int part;
                epoch = int epoch;
                merged = int merged;
              }
        | "SER", [ server; core; req_epoch; cur_epoch ] ->
            Event.Stale_epoch_rejected
              {
                server = int server;
                core = int core;
                req_epoch = int req_epoch;
                cur_epoch = int cur_epoch;
              }
        | "ADM", [ core; tenant; queue_depth ] ->
            Event.Req_admitted
              { core = int core; tenant = int tenant; queue_depth = int queue_depth }
        | "SHD", [ core; tenant; reason; retry_after ] ->
            let reason =
              match shed_reason_of_string reason with
              | Some r -> r
              | None ->
                  parse_error lineno
                    (Printf.sprintf "unknown shed reason %S" reason)
            in
            let retry_after_ns =
              match float_of_string_opt retry_after with
              | Some v -> v
              | None ->
                  parse_error lineno
                    (Printf.sprintf "bad retry-after %S" retry_after)
            in
            Event.Req_shed
              { core = int core; tenant = int tenant; reason; retry_after_ns }
        | "EXP", [ core; tenant; waited ] ->
            let waited_ns =
              match float_of_string_opt waited with
              | Some v -> v
              | None ->
                  parse_error lineno (Printf.sprintf "bad wait %S" waited)
            in
            Event.Req_expired { core = int core; tenant = int tenant; waited_ns }
        | "RBX", [ core; tenant; retries ] ->
            Event.Retry_budget_exhausted
              { core = int core; tenant = int tenant; retries = int retries }
        | _ ->
            parse_error lineno
              (Printf.sprintf "unrecognized record %S" (String.concat " " (tag :: fields)))
      in
      (time, ev))
  | _ -> parse_error lineno "short line"

let is_prefix pre s =
  String.length s >= String.length pre
  && String.sub s 0 (String.length pre) = pre

let iter_channel ic f =
  (match input_line ic with
  | h
    when h = header || h = header_v4 || h = header_v3 || h = header_v2
         || h = header_v1 -> ()
  | h -> failwith (Printf.sprintf "unknown history log header %S" h)
  | exception End_of_file ->
      failwith (Printf.sprintf "empty history log: expected %S header" header));
  let count = ref 0 in
  let lineno = ref 1 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if line = "" then ()
       else if line.[0] = '#' then begin
         (* The count footer, when present, must match the events
            seen so far: a mismatch means the log was truncated (or
            grew) after the writer closed it. *)
         if is_prefix footer_prefix line then
           let declared =
             String.sub line (String.length footer_prefix)
               (String.length line - String.length footer_prefix)
           in
           match int_of_string_opt (String.trim declared) with
           | Some n when n = !count -> ()
           | Some n ->
               parse_error !lineno
                 (Printf.sprintf
                    "event-count footer says %d but %d events precede it \
                     (truncated log?)" n !count)
           | None -> parse_error !lineno "malformed event-count footer"
       end
       else begin
         let time, ev = parse_line !lineno line in
         incr count;
         f time ev
       end
     done
   with End_of_file -> ());
  !count

let iter_file path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> iter_channel ic f)

let read ic =
  let events = ref [] in
  let _ = iter_channel ic (fun time ev -> events := (time, ev) :: !events) in
  List.rev !events

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)
