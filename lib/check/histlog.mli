(** Machine-readable history log.

    One event per line: [<timestamp> <TAG> <fields...>], space
    separated, with timestamps and durations in hex-float notation so
    virtual times round-trip exactly. Written by [tm2c-sim --history]
    and replayed by [tm2c-check]. The first line is a version header;
    readers refuse unknown versions (v1–v3 logs are still accepted).

    v4 logs end with an ["# events N"] footer: the streaming writer
    stamps it on close, and readers verify it when present, so a
    truncated log fails loudly instead of being checked short. Both
    directions are streaming — the writer takes events one at a time
    (e.g. straight off the trace sink) and {!iter_file} parses line
    by line without holding the log in memory. *)

open Tm2c_core

val header : string

val write_event : out_channel -> float -> Event.t -> unit

(** Incremental writer: {!create_writer}/{!writer_of_channel} emit
    the header, {!put} appends one event line, {!close_writer} stamps
    the count footer (and closes the channel iff the writer opened
    it). *)
type writer

val writer_of_channel : out_channel -> writer

val create_writer : string -> writer

val put : writer -> float -> Event.t -> unit

(** Events appended so far. *)
val written : writer -> int

val close_writer : writer -> unit

(** Header, one line per driven event, footer. *)
val write : out_channel -> ((float -> Event.t -> unit) -> unit) -> unit

val save : string -> ((float -> Event.t -> unit) -> unit) -> unit

(** Parse a log, calling [f] per event in order; returns the event
    count. Raises [Failure] with the offending line number on
    malformed input or a footer/count mismatch. Blank lines and other
    [#] comments are skipped. *)
val iter_channel : in_channel -> (float -> Event.t -> unit) -> int

val iter_file : string -> (float -> Event.t -> unit) -> int

(** Batch forms of {!iter_channel}/{!iter_file}. *)
val read : in_channel -> (float * Event.t) list

val load : string -> (float * Event.t) list
