(** Machine-readable history log.

    One event per line: [<timestamp> <TAG> <fields...>], space
    separated, with timestamps and durations in hex-float notation so
    virtual times round-trip exactly. Written by [tm2c-sim --history]
    and replayed by [tm2c-check]. The first line is a version header;
    readers refuse unknown versions. *)

open Tm2c_core

val header : string

val write_event : out_channel -> float -> Event.t -> unit

(** Header plus one line per event. *)
val write : out_channel -> (float * Event.t) list -> unit

val save : string -> (float * Event.t) list -> unit

(** Parse a log back into the event stream; raises [Failure] with the
    offending line number on malformed input. Blank lines and [#]
    comments after the header are skipped. *)
val read : in_channel -> (float * Event.t) list

val load : string -> (float * Event.t) list
