(* Seeded: nondeterminism — environment, stdlib Random, hash-order
   traversal, Domain primitives, and an open that unqualifies them. *)

let mode () = Sys.getenv "TM2C_MODE"

let roll () = Random.int 6

let visit t = Hashtbl.iter (fun _ _ -> ()) t

let whoami () = Domain.self ()

open Random

let roll_unqualified () = int 6
