(* Seeded: module-toplevel mutable state of several detected kinds,
   plus a constant table that must be inventoried without a finding. *)

let counter = ref 0

let table : (int, string) Hashtbl.t = Hashtbl.create 64

let names = [| "alpha"; "beta"; "gamma" |]

type cell = { mutable hits : int; label : string }

let seed_cell = { hits = 0; label = "seed" }

let bump () = incr counter

let describe () = ignore seed_cell; Array.length names
