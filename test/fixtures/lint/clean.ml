(* Control: no seeded violations — the analyzer must stay silent. *)

let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)

let label n = Printf.sprintf "fib(%d)" n
