(* Seeded: partiality — crashes that carry no context. *)

let first xs = List.hd xs

let force o = Option.get o

let explode () = failwith "bad"
