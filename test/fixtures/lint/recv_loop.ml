(* Seeded: an untimed blocking receive in a server loop — a lost
   message wedges it forever. *)

let rec serve box handle =
  let msg = Mailbox.recv box in
  handle msg;
  serve box handle
