(* Seeded: an exporter copy whose dispatch hides behind a catch-all —
   eight of the eleven fixture constructors never reach the output. *)

let label ev =
  match ev with
  | Event.Tx_start _ -> "start"
  | Event.Tx_commit _ -> "commit"
  | Event.Tx_abort _ -> "abort"
  | _ -> "other"
