(** Regression fixture: these doc comments name [Sys.time],
    [Obj.magic] and [Unix.gettimeofday], all of which a line-oriented
    scanner flags. The AST rules see no expressions in an interface
    and must report nothing. *)

val elapsed : unit -> float
(** Not implemented with [Sys.time] or [Unix.gettimeofday]. *)

val cast : 'a -> 'a
(** No [Obj.magic] involved, promise. *)
