(* Seeded: wall-clock reads laundered through a module alias and a
   local open. A substring scan for the qualified name sees neither;
   scope-aware resolution catches both. *)

module U = Unix

let stamp () = U.gettimeofday ()

let stamp_opened () =
  let open Unix in
  gettimeofday ()
