(* Fixture event vocabulary for the exporter-exhaustiveness rule:
   eleven constructors, mirroring the shape of the real Event.t. *)

type t =
  | Tx_start of { core : int }
  | Tx_read of { core : int; addr : int }
  | Tx_write of { core : int; addr : int; value : int }
  | Tx_commit of { core : int }
  | Tx_abort of { core : int }
  | Lock_req of { core : int; addr : int }
  | Lock_grant of { core : int; addr : int }
  | Lock_release of { core : int; addr : int }
  | Barrier of { core : int }
  | Core_crash of { core : int }
  | Heartbeat of { core : int }
