(* Tests of the workload drivers and the statistics module: result
   invariants, determinism, and a seed-sweep conservation property. *)

open Tm2c_core
open Tm2c_apps
open Tm2c_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(seed = 42) () =
  {
    Runtime.default_config with
    total_cores = 8;
    service_cores = 4;
    seed;
    mem_words = 1 lsl 18;
  }

(* ---- Stats ---- *)

let test_stats_empty () =
  let s = Stats.create ~n_cores:4 in
  check_int "no commits" 0 (Stats.total_commits s);
  Alcotest.(check bool) "empty commit rate is nan" true
    (Float.is_nan (Stats.commit_rate s));
  check_int "worst attempts" 0 (Stats.worst_attempts s)

let test_stats_accounting () =
  let s = Stats.create ~n_cores:2 in
  let c0 = Stats.core s 0 and c1 = Stats.core s 1 in
  c0.Stats.commits <- 3;
  c0.Stats.aborts_raw <- 1;
  c1.Stats.commits <- 1;
  c1.Stats.aborts_war <- 2;
  c1.Stats.aborts_status <- 1;
  check_int "total commits" 4 (Stats.total_commits s);
  check_int "total aborts" 4 (Stats.total_aborts s);
  Alcotest.(check (float 0.01)) "commit rate" 50.0 (Stats.commit_rate s);
  check_int "per-core aborts" 3 (Stats.aborts c1);
  Stats.reset s;
  check_int "reset" 0 (Stats.total_commits s)

(* ---- Drivers ---- *)

let bank_driver ~seed ~duration_ns =
  let t = Runtime.create (cfg ~seed ()) in
  let bank = Bank.create t ~accounts:32 ~initial:100 in
  let r =
    Workload.drive t ~duration_ns (fun _core ctx prng () ->
        let src = Prng.int prng 32 and dst = Prng.int prng 32 in
        Bank.tx_transfer ctx bank ~src ~dst ~amount:1)
  in
  (r, Bank.total bank)

let test_drive_result_invariants () =
  let r, total = bank_driver ~seed:42 ~duration_ns:8e6 in
  check "ops positive" true (r.Workload.ops > 0);
  check "messages positive" true (r.Workload.messages > 0);
  check "events positive" true (r.Workload.events > 0);
  Alcotest.(check (float 0.01)) "duration" 8.0 r.Workload.duration_ms;
  Alcotest.(check (float 0.5))
    "throughput = ops / duration"
    (float_of_int r.Workload.ops /. r.Workload.duration_ms)
    r.Workload.throughput_ops_ms;
  check "commit rate sane" true (r.Workload.commit_rate > 0.0 && r.Workload.commit_rate <= 100.0);
  (* A transfer op is one transaction: commits >= ops (aborted op
     retries can inflate attempts, never deflate commits). *)
  check "commits >= ops" true (r.Workload.commits >= r.Workload.ops);
  check_int "conserved" 3200 total

let test_drive_deterministic () =
  let summarize (r, total) =
    (r.Workload.ops, r.Workload.commits, r.Workload.aborts, r.Workload.messages, total)
  in
  check "same seed same run" true
    (summarize (bank_driver ~seed:9 ~duration_ns:5e6)
    = summarize (bank_driver ~seed:9 ~duration_ns:5e6))

let test_longer_window_more_ops () =
  let r1, _ = bank_driver ~seed:4 ~duration_ns:4e6 in
  let r2, _ = bank_driver ~seed:4 ~duration_ns:12e6 in
  check "3x window gives roughly 3x ops" true
    (r2.Workload.ops > 2 * r1.Workload.ops && r2.Workload.ops < 4 * r1.Workload.ops)

let conservation_over_seeds =
  QCheck.Test.make ~name:"bank conserved for arbitrary seeds (concurrent)" ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let _, total = bank_driver ~seed ~duration_ns:3e6 in
      total = 3200)

let test_seq_driver () =
  let t = Runtime.create (cfg ()) in
  let bank = Bank.create t ~accounts:16 ~initial:10 in
  let r =
    Workload.drive_seq t ~duration_ns:5e6 (fun ~core prng ->
        let env = Runtime.env t in
        fun () ->
          let src = Prng.int prng 16 and dst = Prng.int prng 16 in
          Bank.seq_transfer env ~core bank ~src ~dst ~amount:1)
  in
  check "seq ops positive" true (r.Workload.ops > 0);
  check_int "seq sends no messages" 0 r.Workload.messages;
  check_int "seq conserved" 160 (Bank.total bank)

let test_run_to_completion_counts_workers () =
  let t = Runtime.create (cfg ()) in
  let r =
    Workload.run_to_completion t (fun _core ctx _prng ->
        Tx.atomic ctx (fun () -> ()))
  in
  check_int "one op per worker" (Array.length (Runtime.app_cores t)) r.Workload.ops

let suite =
  [
    ("stats: empty", `Quick, test_stats_empty);
    ("stats: accounting and reset", `Quick, test_stats_accounting);
    ("drive: result invariants", `Quick, test_drive_result_invariants);
    ("drive: deterministic", `Quick, test_drive_deterministic);
    ("drive: ops scale with window", `Quick, test_longer_window_more_ops);
    QCheck_alcotest.to_alcotest conservation_over_seeds;
    ("drive_seq: no messages, conserved", `Quick, test_seq_driver);
    ("run_to_completion: one op per worker", `Quick, test_run_to_completion_counts_workers);
  ]
