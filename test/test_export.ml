(* The JSON exporter: printer/parser round-trips and the structure of
   an exported run (the fig5a shape: bank workload with contention). *)

open Tm2c_harness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- Json printer/parser ---- *)

let sample =
  Json.Obj
    [
      ("name", Json.String "fig5a");
      ("n", Json.Int 48);
      ("rate", Json.Float 93.25);
      ("ok", Json.Bool true);
      ("none", Json.Null);
      ( "rows",
        Json.List
          [
            Json.List [ Json.Int 1; Json.Float 2.5 ];
            Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ];
          ] );
      ("escaped", Json.String "line\nbreak \"quoted\" back\\slash\ttab");
    ]

let test_roundtrip () =
  check "pretty round-trips" true (Json.of_string (Json.to_string sample) = sample);
  check "compact round-trips" true
    (Json.of_string (Json.to_string ~indent:false sample) = sample)

let test_non_finite () =
  let s = Json.to_string ~indent:false (Json.List [ Json.Float Float.nan ]) in
  check_string "nan serializes as null" "[null]" s;
  let s = Json.to_string ~indent:false (Json.Float Float.infinity) in
  check_string "infinity serializes as null" "null" s

let test_parse_handwritten () =
  let v =
    Json.of_string
      {| { "a": [1, -2.5e1, "xA"], "b": { "c": null }, "d": false } |}
  in
  check "nested path" true (Json.path [ "b"; "c" ] v = Some Json.Null);
  (match Json.member "a" v with
  | Some (Json.List [ Json.Int 1; Json.Float f; Json.String s ]) ->
      Alcotest.(check (float 1e-9)) "exponent" (-25.0) f;
      check_string "unicode escape" "xA" s
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.check_raises "trailing garbage rejected"
    (Json.Parse_error "at 5: trailing garbage") (fun () ->
      ignore (Json.of_string "null x"))

let test_file_roundtrip () =
  let path = Filename.temp_file "tm2c_json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Json.to_file path sample;
      check "file round-trips" true (Json.of_file path = sample))

(* ---- exported run structure ---- *)

(* A small contended bank run — the fig5a workload shape — must export
   every metric family the observability layer promises. *)
let exported_run () =
  let open Tm2c_core in
  let open Tm2c_apps in
  let cfg = Exp.config ~total:8 ~policy:Cm.Fair_cm () in
  let t = Runtime.create cfg in
  let accounts = 32 in
  let bank = Bank.create t ~accounts ~initial:1000 in
  let r =
    Workload.drive t ~duration_ns:1.5e6 (Exp.bank_mix bank ~balance:20)
  in
  Report.run_json t r

let test_export_fields () =
  let v = Json.of_string (Json.to_string (exported_run ())) in
  let int_at p =
    match Option.bind (Json.path p v) Json.to_int_opt with
    | Some i -> i
    | None -> Alcotest.fail (String.concat "." p ^ " missing")
  in
  check "commits positive" true (int_at [ "result"; "commits" ] > 0);
  check "messages positive" true (int_at [ "network"; "sent" ] > 0);
  check "latency samples" true (int_at [ "network"; "latency_ns"; "count" ] > 0);
  (* Causality is recorded at the server's decision; the victim's
     stats abort lands when it observes it. Transactions still in
     flight at the horizon appear in the former only. *)
  check "abort causality covers observed aborts" true
    (int_at [ "aborts"; "total" ] >= int_at [ "result"; "aborts" ]
    && int_at [ "aborts"; "total" ] > 0);
  (match Json.path [ "cores" ] v with
  | Some (Json.List (_ :: _ as cores)) ->
      List.iter
        (fun c ->
          check "per-core commit counter" true (Json.member "commits" c <> None);
          check "per-core abort counter" true (Json.member "aborts" c <> None))
        cores
  | _ -> Alcotest.fail "cores missing");
  (match Json.path [ "dtm" ] v with
  | Some (Json.List (_ :: _ as servers)) ->
      List.iter
        (fun s ->
          check "queue-depth stats" true
            (Json.path [ "queue_depth"; "mean" ] s <> None
            && Json.path [ "queue_depth"; "max" ] s <> None))
        servers
  | _ -> Alcotest.fail "dtm servers missing");
  match Json.path [ "aborts"; "by_conflict" ] v with
  | Some (Json.Obj fields) ->
      Alcotest.(check (list string))
        "per-conflict-type causality counts"
        [ "RAW"; "WAW"; "WAR"; "STATUS" ]
        (List.map fst fields)
  | _ -> Alcotest.fail "by_conflict missing"

let suite =
  [
    ("json: round-trip", `Quick, test_roundtrip);
    ("json: non-finite floats", `Quick, test_non_finite);
    ("json: handwritten input", `Quick, test_parse_handwritten);
    ("json: file round-trip", `Quick, test_file_roundtrip);
    ("export: run structure", `Quick, test_export_fields);
  ]
