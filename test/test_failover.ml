(* Replicated lock service and epoch-based failover: a DS-server crash
   wedges the run without replicas (and the liveness monitor names the
   stuck cores), one replica restores progress through an epoch bump,
   a mid-run crash exercises the replica merge, a stalled-then-healed
   zombie primary is fenced by stale-epoch rejection, the lockset
   checker's epoch-boundary rule is proven by mutation, and the
   server-side response cache stays bounded under duplicate storms. *)

open Tm2c_core
open Tm2c_noc
open Tm2c_check

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let timeout_ns = 60_000.0
let lease_ns = 250_000.0
let stuck_after_ns = 1e6

let cfg ?(total = 16) ?(seed = 1) () =
  {
    Runtime.platform = Platform.scc;
    total_cores = total;
    service_cores = total / 2;
    deployment = Runtime.Dedicated;
    policy = Cm.Fair_cm;
    wmode = Tx.Lazy;
    batching = true;
    max_skew_ns = 3_000.0;
    seed;
    mem_words = 1 lsl 18;
  }

(* The DS server owning the counter word: allocation is deterministic,
   so a probe runtime with the same config and seed finds the same
   partition the workload below will hammer. *)
let owner_server () =
  let t = Runtime.create (cfg ()) in
  let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  let dtm = Runtime.dtm_cores t in
  dtm.(System.owner_hash counter (Array.length dtm))

(* Shared-counter window run with hardening on (failover needs the
   timeout/resend machinery to detect a dead primary), optional
   replication and watchdog, and the collector tapped in. *)
let run_counter ?plan ?(replicas = 0) ?(watchdog = false) ?(seed = 1)
    ?(duration_ms = 5.0) () =
  let t = Runtime.create (cfg ~seed ()) in
  (match plan with Some p -> Runtime.set_fault_plan t p | None -> ());
  Runtime.set_hardening t ~timeout_ns ~lease_ns ();
  if replicas > 0 then Runtime.enable_replication t ~replicas;
  if watchdog then Runtime.enable_watchdog t ~window_ns:1e6 ~stall_windows:2;
  let col = Collector.create () in
  Collector.attach col (Runtime.trace t);
  let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  let r =
    Tm2c_apps.Workload.drive t ~duration_ns:(duration_ms *. 1e6)
      (fun _core ctx _prng () ->
        Tx.atomic ctx (fun () -> Tx.write ctx counter (Tx.read ctx counter + 1)))
  in
  Collector.detach (Runtime.trace t);
  (t, r, Collector.to_list col)

let plan_of_spec s =
  match Fault.of_spec s with
  | Ok p -> p
  | Error m -> Alcotest.failf "of_spec %S: %s" s m

let scrash_plan ~core ~at =
  { Fault.empty with Fault.scrashes = [ { Fault.scrash_core = core; scrash_at_ns = at } ] }

let idx p events =
  let rec go i = function
    | [] -> None
    | (_, ev) :: rest -> if p ev then Some i else go (i + 1) rest
  in
  go 0 events

(* ---- crash without replicas: wedge, watchdog, stuck verdict ---- *)

let test_scrash_wedges_without_replicas () =
  let owner = owner_server () in
  let t, r, events =
    run_counter ~plan:(scrash_plan ~core:owner ~at:0.0) ~watchdog:true ()
  in
  check_int "no commits with the owning server dead from t=0" 0
    r.Tm2c_apps.Workload.commits;
  check "watchdog cut the run short" true (Runtime.wedged t);
  let c = Fault.counters (Runtime.faults t) in
  check_int "one server crash injected" 1 c.Fault.server_crashes;
  check "Server_crashed traced" true
    (List.exists
       (fun (_, ev) ->
         match ev with
         | Event.Server_crashed { server } -> server = owner
         | _ -> false)
       events);
  (* The liveness monitor's stuck detection names the wedged cores. *)
  let res = Check.run_list ~stuck_after_ns events in
  check "stuck cores flagged" true (res.Check.liveness.Liveness.stuck <> []);
  check "a wedge is a liveness failure" true (Check.n_failures res > 0);
  (* ... but only when armed: without [stuck_after_ns] the truncated
     attempts read as ordinary horizon cut-off. *)
  let res' = Check.run_list events in
  check "safety checkers stay green on the wedged run" true
    (Lockset.ok res'.Check.lockset && res'.Check.liveness.Liveness.stuck = [])

(* ---- crash with one replica: epoch bump, failover, progress ---- *)

let test_failover_restores_progress () =
  let owner = owner_server () in
  let t, r, events =
    run_counter ~plan:(scrash_plan ~core:owner ~at:0.0) ~replicas:1
      ~watchdog:true ()
  in
  check "progress restored with one replica" true
    (r.Tm2c_apps.Workload.commits > 0);
  check "not wedged" false (Runtime.wedged t);
  let c = Fault.counters (Runtime.faults t) in
  check "an epoch bump was recorded" true (c.Fault.failovers > 0);
  (* Event sequence: the bump precedes the backup's promotion, which
     precedes some commit. *)
  let bump_i =
    idx (function Event.Epoch_bumped _ -> true | _ -> false) events
  in
  let done_i =
    idx (function Event.Failover_done _ -> true | _ -> false) events
  in
  (match (bump_i, done_i) with
  | Some b, Some d -> check "bump precedes promotion" true (b < d)
  | _ -> Alcotest.fail "missing Epoch_bumped or Failover_done event");
  (match done_i with
  | Some d ->
      check "a commit follows the promotion" true
        (List.exists
           (fun (i, (_, ev)) ->
             i > d && match ev with Event.Tx_committed _ -> true | _ -> false)
           (List.mapi (fun i e -> (i, e)) events))
  | None -> ());
  let res = Check.run_list ~stuck_after_ns events in
  check "all checkers green across the failover" true (Check.passed res)

(* ---- mid-run crash: the replica is warm, the merge runs ---- *)

let test_midrun_failover_merges_replica () =
  let owner = owner_server () in
  let t, r, events =
    run_counter ~plan:(scrash_plan ~core:owner ~at:1.5e6) ~replicas:1
      ~watchdog:true ()
  in
  let c = Fault.counters (Runtime.faults t) in
  check "mutations were replicated before the crash" true
    (c.Fault.replicated > 0);
  check "Replica_applied traced" true
    (List.exists
       (fun (_, ev) ->
         match ev with Event.Replica_applied _ -> true | _ -> false)
       events);
  check "an epoch bump was recorded" true (c.Fault.failovers > 0);
  check "progress across the mid-run failover" true
    (r.Tm2c_apps.Workload.commits > 0);
  let res = Check.run_list ~stuck_after_ns events in
  check "all checkers green" true (Check.passed res)

(* ---- zombie fencing: a healed primary is refused by epoch ---- *)

(* Stall (not crash) the owner long enough that clients bump the epoch
   and fail over; when the stall heals, the zombie primary drains its
   queued requests and must refuse every one of them — each refusal is
   a [Stale_epoch_rejected], never a grant. *)
let test_zombie_stale_epoch_rejected () =
  let owner = owner_server () in
  let t, r, events =
    run_counter
      ~plan:(plan_of_spec (Printf.sprintf "stall=%d@1e5+1.5e6" owner))
      ~replicas:1 ~watchdog:true ()
  in
  let c = Fault.counters (Runtime.faults t) in
  check "clients failed over during the stall" true (c.Fault.failovers > 0);
  check "the healed zombie rejected stale requests" true
    (c.Fault.stale_rejections > 0);
  check "Stale_epoch_rejected traced" true
    (List.exists
       (fun (_, ev) ->
         match ev with
         | Event.Stale_epoch_rejected { server; _ } -> server = owner
         | _ -> false)
       events);
  check "progress" true (r.Tm2c_apps.Workload.commits > 0);
  let res = Check.run_list ~stuck_after_ns events in
  check "no conflicting grant escaped the fence" true (Check.passed res)

(* ---- lockset mutation: stale-epoch double grant rejected ---- *)

(* A broken epoch check would let a zombie primary grant a write lock
   that conflicts with one the new owner granted after the bump.
   Simulate the aftermath: in a clean stream, right after a write
   grant, bump the epoch and have an enemy core receive a conflicting
   grant — the holder's lock predates the bump and was never revoked,
   so the checker must produce the epoch-boundary witness. *)
let test_mutation_stale_epoch_grant_caught () =
  let _, _, events = run_counter () in
  check "unmutated stream is clean" true (Lockset.ok (Lockset.analyze (Check.iter_of_list events)));
  let injected = ref false in
  let mutated =
    List.concat_map
      (fun (time, ev) ->
        match ev with
        | Event.Wlock_granted { core; addrs } when addrs <> [] && not !injected
          ->
            injected := true;
            let enemy = if core = 1 then 3 else 1 in
            [
              (time, ev);
              (time, Event.Epoch_bumped { part = 0; epoch = 1; by = enemy });
              (time, Event.Wlock_granted { core = enemy; addrs });
            ]
        | _ -> [ (time, ev) ])
      events
  in
  check "mutation applied" true !injected;
  let r = Lockset.analyze (Check.iter_of_list mutated) in
  check "stale-epoch grant rejected" false (Lockset.ok r);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  check "witness names the epoch boundary" true
    (List.exists
       (fun v -> contains v.Lockset.v_message "epoch")
       r.Lockset.violations)

(* ---- bounded response cache ---- *)

(* Under a duplicate storm the absorption cache fills with one entry
   per live requester; a requester that dies leaves an entry that can
   never be refreshed, and the sweep must reap it within one idle
   window. The cache therefore stays bounded by the app-core count no
   matter how long the run is. *)
let test_response_cache_bounded () =
  let n_app = Array.length (Runtime.app_cores (Runtime.create (cfg ()))) in
  let run duration_ms =
    let t, r, events =
      run_counter ~plan:(plan_of_spec "dup=0.5,crash=3@5e5") ~duration_ms ()
    in
    let size =
      List.fold_left
        (fun acc s -> max acc (Dtm.resp_cache_size s))
        0 (Runtime.servers t)
    in
    (t, r, events, size)
  in
  let t, r, events, size_long = run 8.0 in
  let _, _, _, size_short = run 2.0 in
  let c = Fault.counters (Runtime.faults t) in
  check "duplicates absorbed" true (c.Fault.absorbed > 0);
  check "the dead requester's entry was evicted" true (c.Fault.cache_evicted > 0);
  check "cache bounded by app-core count (long run)" true (size_long <= n_app);
  check "cache does not grow with run length" true (size_long <= size_short + 1);
  check "progress" true (r.Tm2c_apps.Workload.commits > 0);
  check "checkers pass" true (Check.passed (Check.run_list events))

let suite =
  [
    ( "failover: server crash wedges without replicas",
      `Quick,
      test_scrash_wedges_without_replicas );
    ( "failover: one replica restores progress",
      `Quick,
      test_failover_restores_progress );
    ( "failover: mid-run crash merges the warm replica",
      `Quick,
      test_midrun_failover_merges_replica );
    ( "failover: healed zombie fenced by stale epoch",
      `Quick,
      test_zombie_stale_epoch_rejected );
    ( "failover: mutation: stale-epoch double grant caught",
      `Quick,
      test_mutation_stale_epoch_grant_caught );
    ("failover: response cache stays bounded", `Quick, test_response_cache_bounded);
  ]
