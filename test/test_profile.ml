(* The analysis layer: phase attribution (Span), the simulated-time
   sampler (Timeseries), and the Perfetto timeline exporter. *)

open Tm2c_engine
open Tm2c_core
open Tm2c_harness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- phase attribution ---- *)

(* A contended bank run with profiling on: per app core, the committed
   phase sums must equal the summed committed-attempt durations (the
   instrumentation charges every telescoping segment of an attempt to
   exactly one phase), and the flushed attempt count must equal the
   core's commit counter. *)
let test_span_invariant () =
  let open Tm2c_apps in
  (* Back-off-Retry: the only policy that waits between attempts, so
     the backoff phase is exercised too. *)
  let cfg = Exp.config ~total:8 ~policy:Cm.Backoff_retry () in
  let t = Runtime.create cfg in
  Runtime.enable_profiling t;
  let bank = Bank.create t ~accounts:32 ~initial:1000 in
  let r = Workload.drive t ~duration_ns:1.5e6 (Exp.bank_mix bank ~balance:20) in
  check "run commits" true (r.Workload.commits > 0);
  check "run aborts (contended)" true (r.Workload.aborts > 0);
  let span = Runtime.span_commit t in
  let active = ref 0 in
  for core = 0 to Span.n_cores span - 1 do
    let attempts = Span.attempts span ~core in
    check_int "attempts = per-core commits" (Stats.core (Runtime.stats t) core).Stats.commits
      attempts;
    if attempts > 0 then begin
      incr active;
      let total = Span.attempt_ns span ~core in
      let phases = Span.phase_total span ~core in
      if Float.abs (phases -. total) > 1e-6 *. Float.max total 1.0 then
        Alcotest.failf "core %d: phase sums %.6f ns <> attempt total %.6f ns" core
          phases total;
      (* The sketches see the same samples as the sums (zero-duration
         phases excluded), so their sums reconcile too. *)
      let hist_sum = ref 0.0 in
      for phase = 0 to Span.n_phases span - 1 do
        hist_sum := !hist_sum +. Sketch.sum (Span.sketch span ~core ~phase)
      done;
      check "sketch sums match phase sums" true
        (Float.abs (!hist_sum -. phases) <= 1e-6 *. Float.max phases 1.0)
    end
  done;
  check "several cores committed" true (!active > 1);
  (* Aborted attempts aggregate separately; the contended run produced
     some, and their backoff phase is charged there (and only there). *)
  let ab = Runtime.span_abort t in
  let ab_attempts = ref 0 and backoff = ref 0.0 and commit_backoff = ref 0.0 in
  for core = 0 to Span.n_cores ab - 1 do
    ab_attempts := !ab_attempts + Span.attempts ab ~core;
    backoff := !backoff +. Span.sum ab ~core ~phase:Phase.backoff;
    commit_backoff := !commit_backoff +. Span.sum span ~core ~phase:Phase.backoff
  done;
  check "aborted attempts recorded" true (!ab_attempts > 0);
  check "backoff charged on the abort side" true (!backoff > 0.0);
  check "no backoff inside committed attempts" true (!commit_backoff = 0.0)

(* Profiling is off by default: the same workload accumulates nothing. *)
let test_span_disabled () =
  let open Tm2c_apps in
  let cfg = Exp.config ~total:8 () in
  let t = Runtime.create cfg in
  let bank = Bank.create t ~accounts:32 ~initial:1000 in
  let r = Workload.drive t ~duration_ns:1.0e6 (Exp.bank_mix bank ~balance:20) in
  check "run commits" true (r.Workload.commits > 0);
  let span = Runtime.span_commit t in
  let total = ref 0 in
  for core = 0 to Span.n_cores span - 1 do
    total := !total + Span.attempts span ~core
  done;
  check_int "nothing accumulated when disabled" 0 !total

(* ---- time-series sampler ---- *)

(* Window-boundary exactness: increments at 50/100/150/200/250 with a
   100ns window. Ticks fire at 100/200/300; the simulator's FIFO
   tie-break puts the first edge increment after tick 1 (the tick was
   scheduled earlier) and the second edge increment before tick 2 (it
   was scheduled before the tick existed) — either way each edge event
   lands in exactly ONE window, because consecutive deltas of one
   counter partition its growth. *)
let test_timeseries_windows () =
  let sim = Sim.create () in
  let counter = ref 0 in
  let ts = Timeseries.create ~window_ns:100.0 in
  Timeseries.add_channel ts ~name:"count" Timeseries.Cumulative (fun () ->
      float_of_int !counter);
  Timeseries.add_channel ts ~name:"level" Timeseries.Gauge (fun () ->
      float_of_int !counter);
  Timeseries.start ts sim;
  List.iter
    (fun at -> Sim.schedule sim ~at (fun () -> incr counter))
    [ 50.0; 100.0; 150.0; 200.0; 250.0 ];
  ignore (Sim.run sim ());
  (* The sampler stopped itself once it was alone (Sim.run returned at
     all), after the window covering the last increment. *)
  check_int "windows" 3 (Timeseries.n_windows ts);
  Alcotest.(check (array (float 0.0)))
    "window-end times" [| 100.0; 200.0; 300.0 |] (Timeseries.times ts);
  (match Timeseries.channels ts with
  | [ ("count", Timeseries.Cumulative, deltas); ("level", Timeseries.Gauge, levels) ]
    ->
      Alcotest.(check (array (float 0.0))) "per-window deltas" [| 1.0; 3.0; 1.0 |] deltas;
      check "deltas conserve the total" true
        (Array.fold_left ( +. ) 0.0 deltas = float_of_int !counter);
      Alcotest.(check (array (float 0.0))) "gauge levels" [| 1.0; 4.0; 5.0 |] levels
  | _ -> Alcotest.fail "unexpected channel shape");
  check_int "all increments ran" 5 !counter

(* A sampler on an otherwise-empty simulation records nothing and does
   not keep the run alive. *)
let test_timeseries_idle () =
  let sim = Sim.create () in
  let ts = Timeseries.create ~window_ns:100.0 in
  Timeseries.add_channel ts ~name:"x" Timeseries.Gauge (fun () -> 0.0);
  Timeseries.start ts sim;
  ignore (Sim.run sim ());
  check_int "one window then stop" 1 (Timeseries.n_windows ts);
  check "clock did not run away" true (Sim.now sim <= 100.0)

(* ---- Perfetto export ---- *)

let traced_run () =
  let open Tm2c_apps in
  let cfg = Exp.config ~total:8 ~policy:Cm.Fair_cm () in
  let t = Runtime.create cfg in
  Runtime.enable_tracing t;
  let bank = Bank.create t ~accounts:32 ~initial:1000 in
  ignore (Workload.drive t ~duration_ns:1.0e6 (Exp.bank_mix bank ~balance:20));
  t

let test_perfetto_valid () =
  let t = traced_run () in
  let doc =
    Perfetto.export ~app:(Runtime.app_cores t) ~dtm:(Runtime.dtm_cores t)
      (Runtime.trace t)
  in
  (match Perfetto.validate doc with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "export did not validate: %s" msg);
  (* Round-trip through the serializer too: the validator must accept
     what a consumer would re-parse from disk. *)
  (match Perfetto.validate (Json.of_string (Json.to_string ~indent:false doc)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "serialized export did not validate: %s" msg);
  match Json.member "traceEvents" doc with
  | Some (Json.List evs) ->
      let count ph =
        List.length
          (List.filter (fun e -> Json.member "ph" e = Some (Json.String ph)) evs)
      in
      check "has track metadata" true (count "M" > 2);
      check "has slices" true (count "X" > 0);
      check "has instants" true (count "i" > 0);
      check "flow starts present" true (count "s" > 0);
      check_int "flows pair up" (count "s") (count "f")
  | _ -> Alcotest.fail "traceEvents missing"

let test_perfetto_rejects () =
  let ev ts =
    Json.Obj
      [
        ("ph", Json.String "i");
        ("ts", Json.Float ts);
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("name", Json.String "x");
        ("s", Json.String "t");
      ]
  in
  let doc evs = Json.Obj [ ("traceEvents", Json.List evs) ] in
  check "non-monotone track rejected" true
    (Result.is_error (Perfetto.validate (doc [ ev 5.0; ev 1.0 ])));
  check "monotone track accepted" true
    (Result.is_ok (Perfetto.validate (doc [ ev 1.0; ev 5.0 ])));
  let flow ph =
    Json.Obj
      [
        ("ph", Json.String ph);
        ("ts", Json.Float 1.0);
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("id", Json.Int 7);
      ]
  in
  check "unpaired flow start rejected" true
    (Result.is_error (Perfetto.validate (doc [ flow "s" ])));
  check "unpaired flow finish rejected" true
    (Result.is_error (Perfetto.validate (doc [ flow "f" ])));
  check "paired flow accepted" true
    (Result.is_ok (Perfetto.validate (doc [ flow "s"; flow "f" ])));
  check "missing traceEvents rejected" true
    (Result.is_error (Perfetto.validate (Json.Obj [])))

(* ---- exported run structure (v2 sections) ---- *)

let test_run_json_v2 () =
  let open Tm2c_apps in
  let cfg = Exp.config ~total:8 ~policy:Cm.Fair_cm () in
  let t = Runtime.create cfg in
  Runtime.enable_profiling t;
  Runtime.enable_timeseries t ~window_ns:1e5;
  let bank = Bank.create t ~accounts:32 ~initial:1000 in
  let r = Workload.drive t ~duration_ns:1.5e6 (Exp.bank_mix bank ~balance:20) in
  let v = Json.of_string (Json.to_string (Report.run_json t r)) in
  check "phases enabled" true
    (Json.path [ "phases"; "enabled" ] v = Some (Json.Bool true));
  (match Json.path [ "phases"; "committed" ] v with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "phases.committed empty");
  (match Json.path [ "timeseries"; "channels"; "commits"; "values" ] v with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "timeseries commits channel empty");
  check "trace section reports disabled ring" true
    (Json.path [ "trace"; "enabled" ] v = Some (Json.Bool false));
  check "trace dropped exported" true
    (Json.path [ "trace"; "dropped" ] v = Some (Json.Int 0))

let suite =
  [
    ("span: committed phase sums = attempt totals", `Quick, test_span_invariant);
    ("span: disabled by default", `Quick, test_span_disabled);
    ("timeseries: edge events land in one window", `Quick, test_timeseries_windows);
    ("timeseries: stops when alone", `Quick, test_timeseries_idle);
    ("perfetto: traced run validates", `Quick, test_perfetto_valid);
    ("perfetto: validator rejects malformed docs", `Quick, test_perfetto_rejects);
    ("export: v2 run sections", `Quick, test_run_json_v2);
  ]
