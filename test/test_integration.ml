(* End-to-end protocol tests: whole simulated machines running
   transactional workloads, checking atomicity, conservation,
   starvation-freedom and the elastic variants. *)

open Tm2c_core
open Tm2c_apps
open Tm2c_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(platform = Tm2c_noc.Platform.scc) ?(policy = Cm.Fair_cm) ?(wmode = Tx.Lazy)
    ?(deployment = Runtime.Dedicated) ?(total = 8) ?(service = 4) ?(seed = 42) () =
  {
    Runtime.platform;
    total_cores = total;
    service_cores = service;
    deployment;
    policy;
    wmode;
    batching = true;
    max_skew_ns = 3_000.0;
    seed;
    mem_words = 1 lsl 18;
  }

(* All application cores increment one shared counter [per_core] times
   each; the final value must be exact — lost updates are atomicity
   violations. *)
let run_counter cfg ~per_core =
  let t = Runtime.create cfg in
  let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  Runtime.start_services t;
  Array.iter
    (fun core ->
      let ctx = Runtime.app_ctx t core in
      Runtime.spawn_app t core (fun () ->
          for _ = 1 to per_core do
            Tx.atomic ctx (fun () -> Tx.write ctx counter (Tx.read ctx counter + 1));
            Runtime.poll_service t ~core
          done))
    (Runtime.app_cores t);
  let _ = Runtime.run t ~until:1e12 () in
  (t, Tm2c_memory.Shmem.peek (Runtime.shmem t) counter)

let test_counter_exact () =
  let c = cfg () in
  let t, final = run_counter c ~per_core:50 in
  check_int "no lost updates" (Array.length (Runtime.app_cores t) * 50) final

let test_counter_eager () =
  let c = cfg ~wmode:Tx.Eager () in
  let t, final = run_counter c ~per_core:50 in
  check_int "eager mode exact" (Array.length (Runtime.app_cores t) * 50) final

let test_counter_multitask () =
  let c = cfg ~deployment:Runtime.Multitask ~total:6 ~service:6 () in
  let t, final = run_counter c ~per_core:30 in
  check_int "multitask exact" (Array.length (Runtime.app_cores t) * 30) final

let test_counter_platforms () =
  List.iter
    (fun platform ->
      let c = cfg ~platform () in
      let t, final = run_counter c ~per_core:25 in
      check_int
        (Printf.sprintf "exact on %s" platform.Tm2c_noc.Platform.name)
        (Array.length (Runtime.app_cores t) * 25)
        final)
    Tm2c_noc.Platform.all

let test_counter_starvation_free_cms () =
  (* Wholly and FairCM must complete a fully-conflicting workload. *)
  List.iter
    (fun policy ->
      let c = cfg ~policy ~total:12 ~service:4 () in
      let t, final = run_counter c ~per_core:40 in
      check_int (Cm.name policy ^ " completes") (Array.length (Runtime.app_cores t) * 40) final;
      let worst = Stats.worst_attempts (Runtime.stats t) in
      check (Cm.name policy ^ " attempts bounded") true (worst < 500))
    [ Cm.Wholly; Cm.Fair_cm ]

(* Transactions are atomic: a transfer workload conserves the total. *)
let test_bank_conservation () =
  List.iter
    (fun policy ->
      let c = cfg ~policy ~total:8 ~service:4 () in
      let t = Runtime.create c in
      let bank = Bank.create t ~accounts:32 ~initial:100 in
      let r =
        Workload.drive t ~duration_ns:10e6 (fun _core ctx prng () ->
            if Prng.int prng 10 = 0 then ignore (Bank.tx_balance ctx bank)
            else begin
              let src = Prng.int prng 32 and dst = Prng.int prng 32 in
              if src <> dst then
                Bank.tx_transfer ctx bank ~src ~dst ~amount:(1 + Prng.int prng 5)
            end)
      in
      check_int (Cm.name policy ^ " conserves total") 3200 (Bank.total bank);
      ignore r)
    Cm.all

(* A balance transaction must observe a conserved snapshot even while
   transfers race: opacity of visible reads. *)
let test_bank_consistent_snapshots () =
  let c = cfg ~total:10 ~service:4 () in
  let t = Runtime.create c in
  let bank = Bank.create t ~accounts:24 ~initial:50 in
  let expected = 24 * 50 in
  let bad = ref 0 and reads = ref 0 in
  let r =
    Workload.drive t ~duration_ns:15e6 (fun core ctx prng ->
        if core = (Runtime.app_cores t).(0) then (fun () ->
          let sum = Bank.tx_balance ctx bank in
          incr reads;
          if sum <> expected then incr bad)
        else fun () ->
          let src = Prng.int prng 24 and dst = Prng.int prng 24 in
          if src <> dst then Bank.tx_transfer ctx bank ~src ~dst ~amount:1)
  in
  ignore r;
  check "balance reader ran" true (!reads > 0);
  check_int "every snapshot conserved" 0 !bad

(* Multi-core hash table: per-core accounting of successful operations
   must match the final structure exactly. *)
let test_hashtable_accounting () =
  let c = cfg ~total:10 ~service:4 () in
  let t = Runtime.create c in
  let ht = Hashtable.create t ~n_buckets:16 in
  Hashtable.populate ht (Runtime.fork_prng t) ~n:32 ~key_range:128;
  let initial = Hashtable.size ht in
  let adds = ref 0 and removes = ref 0 in
  Runtime.start_services t;
  Array.iter
    (fun core ->
      let ctx = Runtime.app_ctx t core in
      let prng = Runtime.fork_prng t in
      Runtime.spawn_app t core (fun () ->
          for _ = 1 to 60 do
            let k = Prng.int prng 128 in
            if Prng.bool prng then begin
              if Hashtable.tx_add ctx ht k then incr adds
            end
            else if Hashtable.tx_remove ctx ht k then incr removes
          done))
    (Runtime.app_cores t);
  let _ = Runtime.run t ~until:1e12 () in
  Hashtable.check_invariants ht;
  check_int "size accounting" (initial + !adds - !removes) (Hashtable.size ht)

(* Same accounting for the linked list under each elastic mode. *)
let test_list_accounting () =
  List.iter
    (fun mode ->
      let c = cfg ~total:8 ~service:4 () in
      let t = Runtime.create c in
      let l = Linkedlist.create t in
      Linkedlist.populate l (Runtime.fork_prng t) ~n:24 ~key_range:96;
      let initial = Linkedlist.size l in
      let adds = ref 0 and removes = ref 0 in
      Runtime.start_services t;
      Array.iter
        (fun core ->
          let ctx = Runtime.app_ctx t core in
          let prng = Runtime.fork_prng t in
          Runtime.spawn_app t core (fun () ->
              for _ = 1 to 40 do
                let k = Prng.int prng 96 in
                match Prng.int prng 3 with
                | 0 -> if Linkedlist.tx_add ~mode ctx l k then incr adds
                | 1 -> if Linkedlist.tx_remove ~mode ctx l k then incr removes
                | _ -> ignore (Linkedlist.tx_contains ~mode ctx l k)
              done))
        (Runtime.app_cores t);
      let _ = Runtime.run t ~until:1e12 () in
      Linkedlist.check_invariants l;
      let label =
        match mode with
        | `Normal -> "normal"
        | `Elastic_early -> "elastic-early"
        | `Elastic_read -> "elastic-read"
      in
      check_int (label ^ ": size accounting") (initial + !adds - !removes)
        (Linkedlist.size l))
    [ `Normal; `Elastic_early; `Elastic_read ]

(* Single-core transactional execution must agree with a reference
   model (sequential consistency of the runtime itself). *)
let test_single_core_vs_model () =
  let c = cfg ~total:4 ~service:2 () in
  let t = Runtime.create c in
  let ht = Hashtable.create t ~n_buckets:8 in
  let reference = Hashtbl.create 64 in
  Runtime.start_services t;
  let core = (Runtime.app_cores t).(0) in
  let ctx = Runtime.app_ctx t core in
  let prng = Prng.create ~seed:99 in
  let mismatches = ref 0 in
  Runtime.spawn_app t core (fun () ->
      for _ = 1 to 300 do
        let k = Prng.int prng 64 in
        match Prng.int prng 3 with
        | 0 ->
            let got = Hashtable.tx_add ctx ht k in
            let expect = not (Hashtbl.mem reference k) in
            if expect then Hashtbl.replace reference k ();
            if got <> expect then incr mismatches
        | 1 ->
            let got = Hashtable.tx_remove ctx ht k in
            let expect = Hashtbl.mem reference k in
            Hashtbl.remove reference k;
            if got <> expect then incr mismatches
        | _ ->
            if Hashtable.tx_contains ctx ht k <> Hashtbl.mem reference k then
              incr mismatches
      done);
  let _ = Runtime.run t ~until:1e12 () in
  check_int "matches reference model" 0 !mismatches;
  check_int "final size matches" (Hashtbl.length reference) (Hashtable.size ht)

(* Aborts actually happen and are recorded under contention. *)
let test_abort_stats_recorded () =
  let c = cfg ~total:8 ~service:2 () in
  let t, _ = run_counter c ~per_core:60 in
  let stats = Runtime.stats t in
  check "conflicting workload records aborts" true (Stats.total_aborts stats > 0);
  check "commit rate below 100" true (Stats.commit_rate stats < 100.0)

(* Read-your-writes and read caching inside one transaction. *)
let test_read_your_writes () =
  let c = cfg ~total:4 ~service:2 () in
  let t = Runtime.create c in
  let a = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:2 in
  Tm2c_memory.Shmem.poke (Runtime.shmem t) a 5;
  Runtime.start_services t;
  let core = (Runtime.app_cores t).(0) in
  let ctx = Runtime.app_ctx t core in
  Runtime.spawn_app t core (fun () ->
      Tx.atomic ctx (fun () ->
          check_int "initial read" 5 (Tx.read ctx a);
          Tx.write ctx a 6;
          check_int "read-your-write" 6 (Tx.read ctx a);
          check_int "cached re-read" 6 (Tx.read ctx a)));
  let _ = Runtime.run t ~until:1e12 () in
  check_int "persisted" 6 (Tm2c_memory.Shmem.peek (Runtime.shmem t) a)

let test_tx_outside_atomic_rejected () =
  let c = cfg ~total:4 ~service:2 () in
  let t = Runtime.create c in
  let ctx = Runtime.app_ctx t (Runtime.app_cores t).(0) in
  Alcotest.check_raises "read outside atomic"
    (Invalid_argument "Tx.read: outside atomic") (fun () -> ignore (Tx.read ctx 1));
  Alcotest.check_raises "write outside atomic"
    (Invalid_argument "Tx.write: outside atomic") (fun () -> Tx.write ctx 1 0)

(* Deterministic replay: identical seeds give identical executions. *)
let test_determinism () =
  let run seed =
    let c = cfg ~seed ~total:8 ~service:4 () in
    let t = Runtime.create c in
    let bank = Bank.create t ~accounts:16 ~initial:10 in
    let r =
      Workload.drive t ~duration_ns:5e6 (fun _core ctx prng () ->
          let src = Prng.int prng 16 and dst = Prng.int prng 16 in
          if src <> dst then Bank.tx_transfer ctx bank ~src ~dst ~amount:1)
    in
    (r.Workload.ops, r.Workload.commits, r.Workload.aborts, r.Workload.messages, r.Workload.events)
  in
  check "same seed, same run" true (run 7 = run 7);
  check "different seed, different run" true (run 7 <> run 8)

(* MapReduce produces the exact histogram on every deployment. *)
let test_mapreduce_correct () =
  let c = cfg ~total:8 ~service:1 () in
  let t = Runtime.create c in
  let mr = Mapreduce.create t ~seed:3 ~input_bytes:(96 * 1024) ~chunk_bytes:8192 in
  let r = Workload.run_to_completion t (fun _core ctx _prng -> Mapreduce.worker ctx mr) in
  check "histogram exact" true (Mapreduce.histogram mr = Mapreduce.expected_histogram mr);
  check "all workers finished" true (r.Workload.ops = Array.length (Runtime.app_cores t))

(* The privatization barrier (Section 8): all application cores meet,
   after which pre-barrier transactional data is safely private. *)
let test_barrier () =
  let c = cfg ~total:8 ~service:4 () in
  let t = Runtime.create c in
  let word = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  Runtime.start_services t;
  let before = ref [] and after = ref [] in
  Array.iter
    (fun core ->
      let ctx = Runtime.app_ctx t core in
      Runtime.spawn_app t core (fun () ->
          Tx.atomic ctx (fun () -> Tx.write ctx word (Tx.read ctx word + 1));
          before := Sim.now (Runtime.sim t) :: !before;
          Runtime.barrier t ~core;
          after := Sim.now (Runtime.sim t) :: !after;
          (* Post-barrier: non-transactional access is safe. *)
          if core = (Runtime.app_cores t).(0) then begin
            let v = Tm2c_memory.Shmem.read (Runtime.shmem t) ~core word in
            check_int "all pre-barrier transactions visible"
              (Array.length (Runtime.app_cores t)) v
          end))
    (Runtime.app_cores t);
  let _ = Runtime.run t ~until:1e12 () in
  check_int "all cores passed" (Array.length (Runtime.app_cores t)) (List.length !after);
  (* Nobody exits the barrier before the last one enters it. *)
  let last_enter = List.fold_left Float.max 0.0 !before in
  List.iter (fun x -> check "exit after last entry" true (x >= last_enter)) !after

(* Commits without write-lock batching stay correct (the ablation
   configuration), just costlier. *)
let test_unbatched_commits () =
  let c = { (cfg ~total:8 ~service:4 ()) with Runtime.batching = false } in
  let t = Runtime.create c in
  let arr = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:8 in
  Runtime.start_services t;
  Array.iter
    (fun core ->
      let ctx = Runtime.app_ctx t core in
      Runtime.spawn_app t core (fun () ->
          for _ = 1 to 25 do
            Tx.atomic ctx (fun () ->
                for i = arr to arr + 7 do
                  Tx.write ctx i (Tx.read ctx i + 1)
                done)
          done))
    (Runtime.app_cores t);
  let _ = Runtime.run t ~until:1e12 () in
  let expect = 25 * Array.length (Runtime.app_cores t) in
  for i = arr to arr + 7 do
    check_int "every word exact" expect (Tm2c_memory.Shmem.peek (Runtime.shmem t) i)
  done

(* Irrevocable transactions (the Section 2 extension): mixed with
   normal transactions they stay exact, never abort, and two
   irrevocable transactions do not deadlock. *)
let test_irrevocable () =
  let c = cfg ~total:8 ~service:4 () in
  let t = Runtime.create c in
  let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  let irr_runs = ref 0 in
  Runtime.start_services t;
  Array.iteri
    (fun idx core ->
      let ctx = Runtime.app_ctx t core in
      Runtime.spawn_app t core (fun () ->
          for _ = 1 to 30 do
            if idx < 2 then
              (* Two cores run irrevocable increments, racing both the
                 normal transactions and each other. *)
              Tx.irrevocable ctx (fun () ->
                  incr irr_runs;
                  Tx.write ctx counter (Tx.read ctx counter + 1))
            else
              Tx.atomic ctx (fun () ->
                  Tx.write ctx counter (Tx.read ctx counter + 1))
          done))
    (Runtime.app_cores t);
  let _ = Runtime.run t ~until:1e12 () in
  let expect = 30 * Array.length (Runtime.app_cores t) in
  check_int "no lost updates with irrevocable mix" expect
    (Tm2c_memory.Shmem.peek (Runtime.shmem t) counter);
  (* Irrevocable bodies ran exactly once each: never re-executed. *)
  check_int "irrevocable bodies ran exactly once" (2 * 30) !irr_runs;
  (* Irrevocable cores recorded no aborts. *)
  let stats = Runtime.stats t in
  Array.iteri
    (fun idx core ->
      if idx < 2 then
        check_int "irrevocable core aborts" 0 (Stats.aborts (Stats.core stats core)))
    (Runtime.app_cores t)

(* Nesting is rejected for both transaction kinds. *)
let test_nesting_rejected () =
  let c = cfg ~total:4 ~service:2 () in
  let t = Runtime.create c in
  Runtime.start_services t;
  let core = (Runtime.app_cores t).(0) in
  let ctx = Runtime.app_ctx t core in
  let raised = ref 0 in
  Runtime.spawn_app t core (fun () ->
      Tx.atomic ctx (fun () ->
          (match Tx.atomic ctx (fun () -> ()) with
          | () -> ()
          | exception Invalid_argument _ -> incr raised);
          (match Tx.irrevocable ctx (fun () -> ()) with
          | () -> ()
          | exception Invalid_argument _ -> incr raised)));
  let _ = Runtime.run t ~until:1e9 () in
  check_int "both nestings rejected" 2 !raised

(* Elastic transactions lock normally once the prefix ends: a read
   after the first write acquires a real read lock. *)
let test_elastic_post_prefix_locks () =
  let c = cfg ~total:4 ~service:2 () in
  let t = Runtime.create c in
  let a = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:4 in
  Runtime.start_services t;
  let core = (Runtime.app_cores t).(0) in
  let ctx = Runtime.app_ctx t core in
  Runtime.spawn_app t core (fun () ->
      Tx.atomic ~elastic:Tx.Elastic_read ctx (fun () ->
          ignore (Tx.read ctx a);
          (* Prefix over: *)
          Tx.write ctx (a + 1) 5;
          ignore (Tx.read ctx (a + 2))));
  let _ = Runtime.run t ~until:1e9 () in
  let stats = Stats.core (Runtime.stats t) core in
  (* The post-prefix read took a lock; the prefix read did not. The
     write-lock batch makes at least two lock requests total; what we
     can observe cheaply: the transaction committed and the write
     persisted. *)
  check_int "committed" 1 stats.Stats.commits;
  check_int "write persisted" 5 (Tm2c_memory.Shmem.peek (Runtime.shmem t) (a + 1))

(* Elastic-early uses more messages than normal (extra releases),
   elastic-read far fewer (no lock requests in the prefix). *)
let test_elastic_message_accounting () =
  let run mode =
    let c = cfg ~total:4 ~service:2 () in
    let t = Runtime.create c in
    let l = Linkedlist.create t in
    Linkedlist.populate l (Tm2c_engine.Prng.create ~seed:1) ~n:64 ~key_range:128;
    Runtime.start_services t;
    let core = (Runtime.app_cores t).(0) in
    let ctx = Runtime.app_ctx t core in
    Runtime.spawn_app t core (fun () ->
        for k = 0 to 40 do
          ignore (Linkedlist.tx_contains ~mode ctx l (3 * k))
        done);
    let _ = Runtime.run t ~until:1e12 () in
    Tm2c_noc.Network.sent (Runtime.env t).System.net
  in
  let normal = run `Normal in
  let early = run `Elastic_early in
  let eread = run `Elastic_read in
  check "elastic-early sends more messages (releases)" true (early > normal);
  check "elastic-read sends far fewer" true (eread * 5 < normal)

let suite =
  [
    ("counter: exact under contention", `Quick, test_counter_exact);
    ("counter: eager write acquisition", `Quick, test_counter_eager);
    ("counter: multitask deployment", `Quick, test_counter_multitask);
    ("counter: all platforms", `Quick, test_counter_platforms);
    ("starvation-freedom: Wholly/FairCM complete", `Quick, test_counter_starvation_free_cms);
    ("bank: conservation under every CM", `Quick, test_bank_conservation);
    ("bank: consistent balance snapshots", `Quick, test_bank_consistent_snapshots);
    ("hash table: concurrent accounting", `Quick, test_hashtable_accounting);
    ("linked list: accounting per elastic mode", `Quick, test_list_accounting);
    ("single core vs reference model", `Quick, test_single_core_vs_model);
    ("aborts recorded under contention", `Quick, test_abort_stats_recorded);
    ("read-your-writes", `Quick, test_read_your_writes);
    ("tx ops outside atomic rejected", `Quick, test_tx_outside_atomic_rejected);
    ("deterministic replay", `Quick, test_determinism);
    ("mapreduce: exact histogram", `Quick, test_mapreduce_correct);
    ("privatization barrier", `Quick, test_barrier);
    ("unbatched commits stay atomic", `Quick, test_unbatched_commits);
    ("irrevocable transactions", `Quick, test_irrevocable);
    ("nesting rejected", `Quick, test_nesting_rejected);
    ("elastic: post-prefix reads lock", `Quick, test_elastic_post_prefix_locks);
    ("elastic: message accounting", `Quick, test_elastic_message_accounting);
  ]
