(* The streaming flight recorder: sketch-derived quantiles against the
   exact per-commit samples the trace carries, the telescoping
   windowed-counter invariant, the OpenMetrics-style text stream, and
   the bounded-memory claim (resident size independent of how many
   windows were emitted). *)

open Tm2c_core
open Tm2c_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let duration_ns = 3e6

let config ?(mem = 1 lsl 14) () =
  {
    Runtime.platform = Tm2c_noc.Platform.scc;
    total_cores = 16;
    service_cores = 8;
    deployment = Runtime.Dedicated;
    policy = Cm.Fair_cm;
    wmode = Tx.Lazy;
    batching = true;
    max_skew_ns = 3_000.0;
    seed = 7;
    mem_words = mem;
  }

let drive_bank t =
  let open Tm2c_apps in
  let accounts = 64 in
  let bank = Bank.create t ~accounts ~initial:1000 in
  Workload.drive t ~duration_ns (fun _core ctx prng () ->
      let src = Prng.int prng accounts and dst = Prng.int prng accounts in
      Bank.tx_transfer ctx bank ~src ~dst ~amount:1)

(* A traced, recorded run: the collector keeps the exact event stream
   (the oracle), the recorder streams snapshots into [buf]. *)
let recorded_run () =
  let t = Runtime.create (config ()) in
  let c = Tm2c_check.Collector.create () in
  Tm2c_check.Collector.attach c (Runtime.trace t);
  Runtime.set_sink_high_water t (fun () -> Tm2c_check.Collector.length c);
  let buf = Buffer.create 4096 in
  Runtime.enable_recorder t ~window_ns:(duration_ns /. 8.0)
    ~out:(Buffer.add_string buf) ();
  let r = drive_bank t in
  (t, c, buf, r)

(* ISSUE acceptance: on a seeded reference run, the always-on
   commit-latency sketch's p50/p90/p99/p999 match the exact
   sorted-sample computation over the run's actual per-commit
   durations (from the Tx_committed trace records) within the
   sketch's documented relative-error bound. *)
let test_sketch_matches_exact_samples () =
  let t, c, _, r = recorded_run () in
  let durations = ref [] in
  Tm2c_check.Collector.iter c (fun _ts ev ->
      match ev with
      | Event.Tx_committed { duration_ns = d; _ } -> durations := d :: !durations
      | _ -> ());
  let sorted = Array.of_list !durations in
  Array.sort compare sorted;
  let n = Array.length sorted in
  check "run committed" true (n > 100);
  check_int "one sample per commit" r.Tm2c_apps.Workload.commits n;
  let sk = (Runtime.env t).System.commit_lat in
  check_int "sketch saw every commit" n (Sketch.count sk);
  let rel = Sketch.rel_error sk in
  List.iter
    (fun p ->
      let rank = int_of_float (Float.round (float_of_int n *. p /. 100.0)) in
      let rank = if rank < 1 then 1 else if rank > n then n else rank in
      let exact = sorted.(rank - 1) in
      let est = Sketch.percentile sk p in
      if Float.abs (est -. exact) > (rel *. exact) +. 1e-9 then
        Alcotest.failf "p%g: sketch %.3f vs exact %.3f exceeds ±%g relative" p
          est exact rel)
    [ 50.0; 90.0; 99.0; 99.9 ]

(* Telescoping: after [finish], every counter's emitted windowed
   deltas sum to its total — the windowed stream lost nothing — and
   the headline counters agree with the run result. *)
let test_windowed_sums_telescope () =
  let t, _, _, r = recorded_run () in
  let rec_ = Option.get (Runtime.recorder t) in
  check "several windows" true (Recorder.n_windows rec_ >= 2);
  List.iter
    (fun (name, total, emitted) ->
      if total <> emitted then
        Alcotest.failf "counter %s: windowed sum %.1f <> total %.1f" name
          emitted total)
    (Recorder.counter_totals rec_);
  let total name =
    match
      List.find_opt (fun (n, _, _) -> n = name) (Recorder.counter_totals rec_)
    with
    | Some (_, v, _) -> int_of_float v
    | None -> Alcotest.failf "counter %s missing" name
  in
  check_int "commits counter" r.Tm2c_apps.Workload.commits (total "commits");
  check_int "aborts counter" r.Tm2c_apps.Workload.aborts (total "aborts");
  check_int "ops counter" r.Tm2c_apps.Workload.ops (total "ops");
  (* Trace was on (collector attached), so the tap counted events. *)
  check_int "tx_committed events" r.Tm2c_apps.Workload.commits
    (List.assoc "tx_committed" (Recorder.event_totals rec_));
  (* And finish is idempotent (Workload.collect already called it). *)
  let before = Recorder.n_windows rec_ in
  Runtime.finish_recorder t;
  check_int "no extra window on re-finish" before (Recorder.n_windows rec_)

(* The text stream: one "# window" header per emitted window, the
   promised metric families, and a final "# eof". *)
let test_snapshot_stream_format () =
  let t, _, buf, _ = recorded_run () in
  let s = Buffer.contents buf in
  let occurrences pat =
    let n = String.length s and m = String.length pat in
    let count = ref 0 in
    for i = 0 to n - m do
      if String.sub s i m = pat then incr count
    done;
    !count
  in
  let rec_ = Option.get (Runtime.recorder t) in
  check_int "one header per window" (Recorder.n_windows rec_)
    (occurrences "# window ");
  check "commits total emitted" true (occurrences "tm2c_commits_total " > 0);
  check "windowed delta emitted" true (occurrences "tm2c_commits_window " > 0);
  check "commit-latency quantiles emitted" true
    (occurrences "tm2c_commit_latency_ns{q=\"0.99\"}" > 0);
  check "message-latency sketch emitted" true
    (occurrences "tm2c_msg_latency_ns{q=\"0.5\"}" > 0);
  check "sink high-water emitted" true
    (occurrences "tm2c_trace_sink_high_water " > 0);
  check "dtm gauges emitted" true (occurrences "tm2c_dtm_served_window{" > 0);
  check "event counts emitted" true
    (occurrences "tm2c_trace_events_window{" > 0);
  let eof = "# eof\n" in
  check "eof-terminated" true
    (String.length s >= String.length eof
    && String.sub s (String.length s - String.length eof) (String.length eof)
       = eof)

(* Recorder off the trace: without a collector the tap still counts
   nothing (tracing stays disabled — the recorder never forces it on),
   but counters and sketches work. *)
let test_recorder_without_tracing () =
  let t = Runtime.create (config ()) in
  Runtime.enable_recorder t ~window_ns:(duration_ns /. 8.0) ();
  let r = drive_bank t in
  let rec_ = Option.get (Runtime.recorder t) in
  check "no trace events counted" true
    (List.for_all (fun (_, n) -> n = 0) (Recorder.event_totals rec_));
  check "commits still counted" true
    (List.exists
       (fun (n, v, _) -> n = "commits" && int_of_float v = r.Tm2c_apps.Workload.commits)
       (Recorder.counter_totals rec_));
  check "commit-latency sketch fed" true
    (Sketch.count (Runtime.env t).System.commit_lat = r.Tm2c_apps.Workload.commits)

(* Bounded memory: the same run emitting 16x as many windows must not
   grow the recorder's reachable size — every window is emitted and
   reset, nothing is retained per window. The two runtimes are
   identical (the snapshot tick only reads), so any systematic
   difference would be per-window retention. *)
let test_constant_memory () =
  let run windows =
    let t = Runtime.create (config ()) in
    Runtime.enable_recorder t
      ~window_ns:(duration_ns /. float_of_int windows)
      ~out:(fun _ -> ())
      ();
    ignore (drive_bank t);
    let rec_ = Option.get (Runtime.recorder t) in
    (Recorder.n_windows rec_, Obj.reachable_words (Obj.repr rec_))
  in
  let n_few, words_few = run 8 in
  let n_many, words_many = run 128 in
  check "window counts differ by an order of magnitude" true
    (n_many >= 8 * n_few);
  (* Allow scheduling jitter (the snapshot cadence perturbs wheel
     bucket sizes) but nothing close to linear-in-windows growth. *)
  if words_many > words_few + (words_few / 10) + 4096 then
    Alcotest.failf
      "recorder grew with window count: %d words over %d windows vs %d words \
       over %d windows"
      words_many n_many words_few n_few

let suite =
  [
    ("recorder: sketch quantiles match exact samples", `Quick,
     test_sketch_matches_exact_samples);
    ("recorder: windowed counter sums telescope to totals", `Quick,
     test_windowed_sums_telescope);
    ("recorder: snapshot stream format", `Quick, test_snapshot_stream_format);
    ("recorder: counts nothing when tracing is off", `Quick,
     test_recorder_without_tracing);
    ("recorder: resident memory constant in run length", `Quick,
     test_constant_memory);
  ]
