(* Unit and property tests for the TM2C protocol pieces: status words,
   contention managers, lock table. *)

open Tm2c_core
open Tm2c_core.Types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- Status words ---- *)

let test_status_roundtrip () =
  List.iter
    (fun state ->
      List.iter
        (fun attempt ->
          let a, s = Status.decode (Status.encode ~attempt state) in
          check_int "attempt" attempt a;
          check "state" true (s = state))
        [ 0; 1; 17; 100000 ])
    [ Status.Pending; Status.Committing; Status.Aborted ]

let status_roundtrip_prop =
  QCheck.Test.make ~name:"status encode/decode roundtrip" ~count:300
    QCheck.(pair (int_bound 1000000) (int_bound 2))
    (fun (attempt, si) ->
      let state =
        match si with 0 -> Status.Pending | 1 -> Status.Committing | _ -> Status.Aborted
      in
      Status.decode (Status.encode ~attempt state) = (attempt, state))

(* ---- Contention managers ---- *)

let mk ?(attempt = 0) ?(start = 0.0) ?(committed = 0) ?(effective = 0.0) core =
  {
    h_core = core;
    h_attempt = attempt;
    h_est_start_ns = start;
    h_committed = committed;
    h_effective_ns = effective;
    h_granted_ns = start;
  }

let test_cm_names () =
  List.iter
    (fun p ->
      match Cm.of_string (Cm.name p) with
      | Some p' -> check "name roundtrip" true (p = p')
      | None -> Alcotest.failf "cannot parse %s" (Cm.name p))
    Cm.all;
  check "unknown policy" true (Cm.of_string "bogus" = None)

let test_cm_passive_policies () =
  (* No-CM and Back-off-Retry always abort the requester. *)
  List.iter
    (fun p ->
      check "requester loses" true
        (Cm.decide p ~requester:(mk 0) ~enemies:[ mk 1 ] = Cm.Requester_loses))
    [ Cm.No_cm; Cm.Backoff_retry ]

let test_cm_offset_greedy () =
  (* Older (smaller estimated start) wins. *)
  check "older requester wins" true
    (Cm.decide Cm.Offset_greedy ~requester:(mk ~start:10.0 5)
       ~enemies:[ mk ~start:20.0 1; mk ~start:30.0 2 ]
    = Cm.Enemies_lose);
  check "younger requester loses" true
    (Cm.decide Cm.Offset_greedy ~requester:(mk ~start:25.0 5)
       ~enemies:[ mk ~start:20.0 1; mk ~start:30.0 2 ]
    = Cm.Requester_loses)

let test_cm_wholly () =
  (* The node that committed the most transactions is aborted. *)
  check "fewer commits wins" true
    (Cm.decide Cm.Wholly ~requester:(mk ~committed:1 5) ~enemies:[ mk ~committed:2 1 ]
    = Cm.Enemies_lose);
  check "more commits loses" true
    (Cm.decide Cm.Wholly ~requester:(mk ~committed:3 5) ~enemies:[ mk ~committed:2 1 ]
    = Cm.Requester_loses);
  (* Tie broken by core id. *)
  check "tie: smaller id wins" true
    (Cm.decide Cm.Wholly ~requester:(mk ~committed:2 0) ~enemies:[ mk ~committed:2 1 ]
    = Cm.Enemies_lose)

let test_cm_faircm () =
  (* Less cumulative effective time wins: FairCM penalizes the
     long-transaction core (Section 4.5). *)
  check "short-tx core wins" true
    (Cm.decide Cm.Fair_cm ~requester:(mk ~effective:100.0 5)
       ~enemies:[ mk ~effective:5000.0 1 ]
    = Cm.Enemies_lose);
  check "long-tx core loses" true
    (Cm.decide Cm.Fair_cm ~requester:(mk ~effective:5000.0 5)
       ~enemies:[ mk ~effective:100.0 1 ]
    = Cm.Requester_loses)

let test_cm_must_beat_all () =
  (* The requester must beat every enemy to win. *)
  check "one stronger enemy suffices" true
    (Cm.decide Cm.Fair_cm ~requester:(mk ~effective:50.0 5)
       ~enemies:[ mk ~effective:100.0 1; mk ~effective:10.0 2 ]
    = Cm.Requester_loses)

let test_cm_flags () =
  check "FairCM starvation-free" true (Cm.starvation_free Cm.Fair_cm);
  check "Wholly starvation-free" true (Cm.starvation_free Cm.Wholly);
  check "Offset-Greedy not" false (Cm.starvation_free Cm.Offset_greedy);
  check "backoff only for Back-off-Retry" true
    (Cm.uses_backoff Cm.Backoff_retry && not (Cm.uses_backoff Cm.Fair_cm))

(* Property 1 rule (b): priorities define a total order. *)
let holder_gen =
  QCheck.Gen.(
    map
      (fun (core, start, committed, effective) ->
        mk ~start:(float_of_int start) ~committed
          ~effective:(float_of_int effective) core)
      (tup4 (int_bound 47) (int_bound 100) (int_bound 100) (int_bound 100)))

let holder_arb = QCheck.make ~print:(fun h -> Printf.sprintf "core%d" h.h_core) holder_gen

let cm_total_order =
  QCheck.Test.make ~name:"priorities are a strict total order" ~count:500
    QCheck.(triple holder_arb holder_arb holder_arb)
    (fun (a, b, c) ->
      List.for_all
        (fun p ->
          let beats = Cm.beats p in
          (* Antisymmetry. *)
          (not (beats a b && beats b a))
          (* Totality on distinct cores. *)
          && (a.h_core = b.h_core || beats a b || beats b a)
          (* Transitivity. *)
          && (not (beats a b && beats b c) || beats a c))
        [ Cm.Offset_greedy; Cm.Wholly; Cm.Fair_cm ])

let cm_decide_consistent =
  QCheck.Test.make ~name:"decide wins iff requester beats every enemy" ~count:300
    QCheck.(pair holder_arb (list_of_size (Gen.int_range 1 5) holder_arb))
    (fun (req, enemies) ->
      let enemies = List.filter (fun e -> e.h_core <> req.h_core) enemies in
      QCheck.assume (enemies <> []);
      List.for_all
        (fun p ->
          let expect =
            if List.for_all (fun e -> Cm.beats p req e) enemies then Cm.Enemies_lose
            else Cm.Requester_loses
          in
          Cm.decide p ~requester:req ~enemies = expect)
        Cm.all)

(* ---- Lock table ---- *)

let test_locktable_readers () =
  let lt = Locktable.create () in
  Locktable.add_reader lt 7 (mk ~attempt:1 3);
  Locktable.add_reader lt 7 (mk ~attempt:1 4);
  let e = Locktable.entry lt 7 in
  check_int "two readers" 2 (List.length e.Locktable.readers);
  (* Same core re-acquiring replaces its entry. *)
  Locktable.add_reader lt 7 (mk ~attempt:2 3);
  let e = Locktable.entry lt 7 in
  check_int "still two readers" 2 (List.length e.Locktable.readers);
  check "attempt updated" true
    (List.exists (fun r -> r.h_core = 3 && r.h_attempt = 2) e.Locktable.readers);
  Locktable.check_invariants lt

let test_locktable_release_attempt_checked () =
  let lt = Locktable.create () in
  Locktable.add_reader lt 9 (mk ~attempt:5 2);
  (* A stale release (older attempt) is ignored. *)
  Locktable.remove_reader lt 9 ~core:2 ~attempt:4;
  check_int "stale release ignored" 1 (Locktable.n_locked lt);
  Locktable.remove_reader lt 9 ~core:2 ~attempt:5;
  check_int "matching release applies" 0 (Locktable.n_locked lt)

let test_locktable_writer () =
  let lt = Locktable.create () in
  Locktable.set_writer lt 3 (mk ~attempt:1 6);
  check "writer set" true ((Locktable.entry lt 3).Locktable.writer <> None);
  Locktable.clear_writer lt 3 ~core:6 ~attempt:0;
  check "stale clear ignored" true ((Locktable.entry lt 3).Locktable.writer <> None);
  Locktable.clear_writer lt 3 ~core:6 ~attempt:1;
  check "matching clear applies" true (Locktable.find lt 3 = None)

let test_locktable_revoke () =
  let lt = Locktable.create () in
  Locktable.add_reader lt 1 (mk 2);
  Locktable.add_reader lt 1 (mk 3);
  Locktable.revoke_reader lt 1 ~core:2;
  check_int "one reader left" 1
    (List.length (Locktable.entry lt 1).Locktable.readers);
  Locktable.set_writer lt 1 (mk 4);
  Locktable.revoke_writer lt 1;
  check "writer revoked" true ((Locktable.entry lt 1).Locktable.writer = None)

let test_locktable_readers_excluding () =
  let lt = Locktable.create () in
  Locktable.add_reader lt 2 (mk 1);
  Locktable.add_reader lt 2 (mk 5);
  let e = Locktable.entry lt 2 in
  check_int "excludes self" 1 (List.length (Locktable.readers_excluding e ~core:1));
  check_int "keeps others" 2 (List.length (Locktable.readers_excluding e ~core:9))

let locktable_random_ops =
  QCheck.Test.make ~name:"locktable invariants under random ops" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 60) (tup3 (int_bound 3) (int_bound 7) (int_bound 4)))
    (fun ops ->
      let lt = Locktable.create () in
      List.iter
        (fun (op, core, addr) ->
          match op with
          | 0 -> Locktable.add_reader lt addr (mk ~attempt:core core)
          | 1 -> Locktable.remove_reader lt addr ~core ~attempt:core
          | 2 -> Locktable.set_writer lt addr (mk ~attempt:core core)
          | _ -> Locktable.revoke_writer lt addr)
        ops;
      Locktable.check_invariants lt;
      true)

let suite =
  [
    ("status: roundtrip", `Quick, test_status_roundtrip);
    QCheck_alcotest.to_alcotest status_roundtrip_prop;
    ("cm: names", `Quick, test_cm_names);
    ("cm: passive policies", `Quick, test_cm_passive_policies);
    ("cm: Offset-Greedy", `Quick, test_cm_offset_greedy);
    ("cm: Wholly", `Quick, test_cm_wholly);
    ("cm: FairCM", `Quick, test_cm_faircm);
    ("cm: must beat all enemies", `Quick, test_cm_must_beat_all);
    ("cm: starvation flags", `Quick, test_cm_flags);
    QCheck_alcotest.to_alcotest cm_total_order;
    QCheck_alcotest.to_alcotest cm_decide_consistent;
    ("locktable: readers", `Quick, test_locktable_readers);
    ("locktable: attempt-checked release", `Quick, test_locktable_release_attempt_checked);
    ("locktable: writer", `Quick, test_locktable_writer);
    ("locktable: revocation", `Quick, test_locktable_revoke);
    ("locktable: readers_excluding", `Quick, test_locktable_readers_excluding);
    QCheck_alcotest.to_alcotest locktable_random_ops;
  ]
