(* Open-loop overload tests: arrival/skew generator determinism and
   statistics (qcheck), admission-policy unit behavior, accounting
   invariants, horizon-hit flagging, the closed-loop-reproduction
   guarantee of the labelled PRNG splits, and the retry-storm
   metastability regression (unbounded retries + no admission control
   stay collapsed after a flash crowd ends; admission control + a
   bounded budget recover — both checker-green). *)

open Tm2c_core
open Tm2c_apps
open Tm2c_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(seed = 42) () =
  {
    Runtime.default_config with
    total_cores = 8;
    service_cores = 4;
    seed;
    mem_words = 1 lsl 18;
  }

(* ---- Generators (qcheck) ---- *)

(* Same split, same label, same parameters: the arrival stream is
   bit-identical (structural equality on the float list). *)
let arrivals_deterministic =
  QCheck.Test.make ~name:"same seed => bit-identical arrival stream" ~count:50
    QCheck.(
      make
        Gen.(pair (int_bound 1_000_000) (float_range 0.5 100.0))
        ~print:Print.(pair int float))
    (fun (seed, rate) ->
      let stream () =
        let root = Prng.create ~seed in
        let p = Prng.split_label root ~label:"openloop-arrivals-0" in
        Openloop.arrival_times
          (Openloop.Poisson { rate_per_ms = rate })
          p ~until_ns:(50.0 *. 1e6 /. rate)
      in
      stream () = stream ())

(* The empirical mean interarrival converges to 1/lambda. *)
let mean_interarrival =
  QCheck.Test.make ~name:"Poisson mean interarrival ~ 1/rate" ~count:20
    QCheck.(
      make
        Gen.(pair (int_bound 1_000_000) (float_range 1.0 50.0))
        ~print:Print.(pair int float))
    (fun (seed, rate) ->
      let p = Prng.create ~seed in
      let n = 20_000 in
      let sum = ref 0.0 in
      for _ = 1 to n do
        sum := !sum +. Openloop.interarrival_ns p ~rate_per_ms:rate
      done;
      let mean = !sum /. float_of_int n in
      let expect = 1e6 /. rate in
      Float.abs (mean -. expect) /. expect < 0.05)

(* Zipf weights decrease with rank (the CDF increments are the
   normalized 1/k^s weights; adjacent increments may tie only within
   float cancellation). *)
let zipf_monotone =
  QCheck.Test.make ~name:"Zipf rank weights monotone decreasing" ~count:50
    QCheck.(
      make
        Gen.(pair (float_range 0.3 1.5) (int_range 2 300))
        ~print:Print.(pair float int))
    (fun (s, n) ->
      let cdf = Openloop.zipf_cdf ~s ~n in
      let ok = ref (Float.abs (cdf.(n - 1) -. 1.0) < 1e-9) in
      for k = 1 to n - 1 do
        let w_prev = if k = 1 then cdf.(0) else cdf.(k - 1) -. cdf.(k - 2) in
        let w = cdf.(k) -. cdf.(k - 1) in
        if w > w_prev +. 1e-12 then ok := false
      done;
      !ok)

let test_zipf_empirical () =
  let p = Prng.create ~seed:7 in
  let n = 50 in
  let cdf = Openloop.zipf_cdf ~s:1.0 ~n in
  let counts = Array.make n 0 in
  for _ = 1 to 10_000 do
    let r = Openloop.zipf_draw p cdf in
    counts.(r) <- counts.(r) + 1
  done;
  check "rank 0 beats last rank" true (counts.(0) > counts.(n - 1));
  check "rank 0 dominates" true (counts.(0) > 10_000 / n)

let test_bursty_rate () =
  let a =
    Openloop.Bursty
      {
        base_per_ms = 2.0;
        burst_per_ms = 20.0;
        burst_start_ns = 100.0;
        burst_end_ns = 200.0;
      }
  in
  Alcotest.(check (float 0.0)) "before" 2.0 (Openloop.rate_at a ~now_ns:0.0);
  Alcotest.(check (float 0.0)) "inside" 20.0 (Openloop.rate_at a ~now_ns:100.0);
  Alcotest.(check (float 0.0)) "after" 2.0 (Openloop.rate_at a ~now_ns:200.0)

(* ---- Admission policies ---- *)

let offer adm ~core ~retries =
  Admission.offer adm ~core ~tenant:0 ~payload:0 ~arrival_ns:0.0 ~retries

let is_shed = function Admission.Shed _ -> true | Admission.Admitted -> false

let test_reject_capacity () =
  let t = Runtime.create (cfg ()) in
  let adm =
    Runtime.enable_admission t ~policy:(Admission.Reject { capacity = 2 }) ()
  in
  let core = (Runtime.app_cores t).(0) in
  check "first admitted" false (is_shed (offer adm ~core ~retries:0));
  check "second admitted" false (is_shed (offer adm ~core ~retries:0));
  check "third shed" true (is_shed (offer adm ~core ~retries:0));
  let o = (Runtime.env t).System.overload in
  check_int "offered" 3 o.System.ol_offered;
  check_int "admitted" 2 o.System.ol_admitted;
  check_int "shed" 1 o.System.ol_shed;
  check_int "depth" 2 (Admission.depth adm ~core);
  check "take 1" true (Admission.take adm ~core <> None);
  check "take 2" true (Admission.take adm ~core <> None);
  check "drained" true (Admission.take adm ~core = None);
  check_int "pending" 0 (Admission.pending adm)

let test_token_bucket_refill () =
  let t = Runtime.create (cfg ()) in
  let adm =
    Runtime.enable_admission t
      ~policy:
        (Admission.Token_bucket { capacity = 10; rate_per_ms = 1.0; burst = 2.0 })
      ()
  in
  let core = (Runtime.app_cores t).(0) in
  (* The bucket starts full (= burst): two admits, then dry. *)
  check "t0 first" false (is_shed (offer adm ~core ~retries:0));
  check "t0 second" false (is_shed (offer adm ~core ~retries:0));
  (match offer adm ~core ~retries:0 with
  | Admission.Shed { reason; retry_after_ns } ->
      check "token shed" true (reason = Types.Shed_no_tokens);
      check "retry-after hint positive" true (retry_after_ns > 0.0)
  | Admission.Admitted -> Alcotest.fail "expected a token shed");
  (* 1.5 virtual ms later the bucket holds 1.5 tokens: one more admit,
     then dry again. *)
  let shed_then = ref None in
  Sim.schedule (Runtime.sim t) ~at:1.5e6 (fun () ->
      let a = offer adm ~core ~retries:0 in
      let b = offer adm ~core ~retries:0 in
      shed_then := Some (is_shed a, is_shed b));
  ignore (Runtime.run t ());
  check "refilled then dry" true (!shed_then = Some (false, true))

let test_queue_deadline_expiry () =
  let t = Runtime.create (cfg ()) in
  let adm =
    Runtime.enable_admission t
      ~policy:(Admission.Queue_deadline { capacity = 8; deadline_ns = 1_000.0 })
      ()
  in
  let core = (Runtime.app_cores t).(0) in
  check "admitted" false (is_shed (offer adm ~core ~retries:0));
  let late = ref None in
  Sim.schedule (Runtime.sim t) ~at:5_000.0 (fun () ->
      late := Some (Admission.take adm ~core));
  ignore (Runtime.run t ());
  (* The only entry waited 5 us against a 1 us deadline: dropped at
     dequeue, counted as expired, nothing returned. *)
  check "expired at dequeue" true (!late = Some None);
  let o = (Runtime.env t).System.overload in
  check_int "expired" 1 o.System.ol_expired;
  check_int "executed" 0 o.System.ol_executed

(* ---- Accounting invariants on a real run ---- *)

let test_accounting_invariants () =
  let t = Runtime.create (cfg ()) in
  let ol =
    {
      Openloop.default with
      Openloop.window_ns = 4e5;
      drain_ns = 2e5;
      arrival = Openloop.Poisson { rate_per_ms = 60.0 };
    }
  in
  let r = Openloop.drive t ol in
  let env = Runtime.env t in
  let o = env.System.overload in
  check "some traffic" true (o.System.ol_offered > 0);
  check_int "offered = admitted + shed" o.System.ol_offered
    (o.System.ol_admitted + o.System.ol_shed);
  check "executed + expired <= admitted" true
    (o.System.ol_executed + o.System.ol_expired <= o.System.ol_admitted);
  check "goodput <= completed" true (o.System.ol_goodput <= o.System.ol_completed);
  check "completed <= executed" true
    (o.System.ol_completed <= o.System.ol_executed);
  check_int "stats ops = executed entries" o.System.ol_executed
    r.Workload.ops;
  check_int "e2e sketch counts completions" o.System.ol_completed
    (Sketch.count env.System.e2e_lat);
  check "some goodput" true (o.System.ol_goodput > 0)

(* Two runs, same seed: bit-identical overload accounting. *)
let test_run_deterministic () =
  let snapshot () =
    let t = Runtime.create (cfg ~seed:9 ()) in
    let ol =
      {
        Openloop.default with
        Openloop.window_ns = 3e5;
        drain_ns = 1e5;
        arrival = Openloop.Poisson { rate_per_ms = 80.0 };
      }
    in
    let r = Openloop.drive t ol in
    let o = (Runtime.env t).System.overload in
    ( r.Workload.commits,
      o.System.ol_offered,
      o.System.ol_admitted,
      o.System.ol_goodput,
      o.System.ol_retries )
  in
  check "bit-identical reruns" true (snapshot () = snapshot ())

(* Merely instantiating the open-loop machinery (labelled splits,
   admission queues) must not perturb a closed-loop run: the labelled
   child streams draw nothing from the root. *)
let test_closed_loop_reproduction () =
  let run ~extra =
    let t = Runtime.create (cfg ~seed:13 ()) in
    if extra then begin
      ignore (Runtime.labeled_prng t ~label:"openloop-arrivals-0");
      ignore
        (Runtime.enable_admission t ~policy:(Admission.Reject { capacity = 4 }) ())
    end;
    let ht = Hashtable.create t ~n_buckets:32 in
    Hashtable.populate ht (Runtime.fork_prng t) ~n:64 ~key_range:256;
    let r =
      Workload.drive t ~duration_ns:2e5 (fun _core ctx prng () ->
          let k = Prng.int prng 256 in
          if Prng.int prng 100 < 50 then ignore (Hashtable.tx_add ctx ht k)
          else ignore (Hashtable.tx_remove ctx ht k))
    in
    (r.Workload.ops, r.Workload.commits, r.Workload.aborts)
  in
  check "closed-loop baseline reproduced" true (run ~extra:false = run ~extra:true)

(* ---- horizon_hit ---- *)

let test_completion_horizon_flag () =
  let clean = Runtime.create (cfg ()) in
  let r = Workload.run_to_completion clean (fun _core _ctx _prng -> ()) in
  check "clean completion unflagged" false r.Workload.horizon_hit;
  let t = Runtime.create (cfg ()) in
  let blocked = (Runtime.app_cores t).(0) in
  let r =
    Workload.run_to_completion t ~horizon_ns:1e6 (fun core _ctx _prng ->
        if core = blocked then
          (* Park forever: the resume callback is dropped. *)
          let () = Sim.suspend (fun _resume -> ()) in
          ())
  in
  check "horizon termination flagged" true r.Workload.horizon_hit

let test_openloop_horizon_flag () =
  (* Healthy low load drains clean... *)
  let t = Runtime.create (cfg ()) in
  let ol =
    {
      Openloop.default with
      Openloop.window_ns = 3e5;
      drain_ns = 2e5;
      arrival = Openloop.Poisson { rate_per_ms = 10.0 };
    }
  in
  let r = Openloop.drive t ol in
  check "low load no horizon" false r.Workload.horizon_hit;
  (* ...heavy overload on unbounded queues leaves a backlog. *)
  let t = Runtime.create (cfg ()) in
  let ol =
    {
      ol with
      Openloop.arrival = Openloop.Poisson { rate_per_ms = 400.0 };
      policy = Admission.Unbounded;
      retry_budget = -1;
    }
  in
  let r = Openloop.drive t ol in
  check "overload backlog flagged" true r.Workload.horizon_hit

(* ---- Retry-storm metastability regression ---- *)

(* Measured per-core service capacity for the storm scenario. *)
let probe_sat () =
  let t = Runtime.create (cfg ~seed:5 ()) in
  let window_ns = 5e5 in
  let ol =
    {
      Openloop.default with
      Openloop.arrival = Openloop.Poisson { rate_per_ms = 500.0 };
      window_ns;
      drain_ns = 1e5;
      policy = Admission.Reject { capacity = 32 };
      client_timeout_ns = 0.0;
      retry_budget = 0;
    }
  in
  ignore (Openloop.drive t ol);
  let o = (Runtime.env t).System.overload in
  float_of_int o.System.ol_executed /. (window_ns /. 1e6)
  /. float_of_int (Array.length (Runtime.app_cores t))

let storm_run ~sat ~protected =
  let t = Runtime.create (cfg ~seed:11 ()) in
  let s = Tm2c_check.Stream.create () in
  Tm2c_check.Stream.attach s (Runtime.trace t);
  let window = 2e6 in
  let arrival =
    Openloop.Bursty
      {
        base_per_ms = 0.8 *. sat;
        burst_per_ms = 3.0 *. sat;
        burst_start_ns = window /. 8.0;
        burst_end_ns = 3.0 *. window /. 8.0;
      }
  in
  let deadline_ms = Openloop.default.Openloop.client_deadline_ns /. 1e6 in
  let capacity = max 2 (int_of_float (sat *. deadline_ms /. 2.0)) in
  let ol =
    {
      Openloop.default with
      Openloop.arrival;
      window_ns = window;
      drain_ns = window /. 4.0;
      policy =
        (if protected then
           Admission.Token_bucket
             { capacity; rate_per_ms = 0.8 *. sat; burst = float_of_int capacity }
         else Admission.Unbounded);
      retry_budget = (if protected then 3 else -1);
    }
  in
  (* Goodput snapshot well after the burst ended (burst ends at 3/8 of
     the window; snapshot at 1/2): the tail delta is the recovery
     witness. *)
  let snap = ref 0 in
  Sim.schedule (Runtime.sim t) ~at:(window /. 2.0) (fun () ->
      snap := (Runtime.env t).System.overload.System.ol_goodput);
  let r = Openloop.drive t ol in
  Tm2c_check.Collector.detach (Runtime.trace t);
  let v = Tm2c_check.Stream.finish s in
  let o = (Runtime.env t).System.overload in
  ( Tm2c_check.Stream.n_failures v,
    o.System.ol_goodput,
    o.System.ol_goodput - !snap,
    r.Workload.horizon_hit )

let test_retry_storm_metastability () =
  let sat = probe_sat () in
  check "probe found capacity" true (sat > 1.0);
  let fail_u, total_u, tail_u, horizon_u = storm_run ~sat ~protected:false in
  let fail_p, total_p, tail_p, horizon_p = storm_run ~sat ~protected:true in
  (* Consistency is never the casualty: both runs checker-green. *)
  check_int "unprotected checker-green" 0 fail_u;
  check_int "protected checker-green" 0 fail_p;
  (* Metastable collapse: after the burst ends the unprotected system
     stays buried under its queue backlog and retry amplification —
     the protected one is back to serving the base load. *)
  check "unprotected left a backlog" true horizon_u;
  check "protected drained clean" false horizon_p;
  check
    (Printf.sprintf "tail goodput recovers only with admission (%d vs %d)"
       tail_p tail_u)
    true
    (tail_p >= 2 * max 1 tail_u);
  check
    (Printf.sprintf "total goodput wins with admission (%d vs %d)" total_p
       total_u)
    true
    (float_of_int total_p >= 1.5 *. float_of_int (max 1 total_u))

let suite =
  [
    ("qcheck: arrival stream deterministic", `Quick, fun () ->
        QCheck.Test.check_exn arrivals_deterministic);
    ("qcheck: mean interarrival", `Quick, fun () ->
        QCheck.Test.check_exn mean_interarrival);
    ("qcheck: Zipf weights monotone", `Quick, fun () ->
        QCheck.Test.check_exn zipf_monotone);
    ("Zipf empirical skew", `Quick, test_zipf_empirical);
    ("bursty rate schedule", `Quick, test_bursty_rate);
    ("reject policy: capacity bound", `Quick, test_reject_capacity);
    ("token bucket: drain and refill", `Quick, test_token_bucket_refill);
    ("queue deadline: expiry at dequeue", `Quick, test_queue_deadline_expiry);
    ("accounting invariants", `Quick, test_accounting_invariants);
    ("run determinism", `Quick, test_run_deterministic);
    ("closed-loop baseline reproduction", `Quick, test_closed_loop_reproduction);
    ("run_to_completion horizon flag", `Quick, test_completion_horizon_flag);
    ("openloop horizon flag", `Quick, test_openloop_horizon_flag);
    ("retry-storm metastability", `Quick, test_retry_storm_metastability);
  ]
